/**
 * @file
 * Ablation: large-cardinality reduction (paper Sec. IV-A).
 *
 * The paper's concrete example: the first reduction step of AlexNet
 * accumulates 362 operands per output.  DRAM PIM needs
 * ceil(log2 362) = 9 addition steps of 40 cycles (ELP2IM CLA); with
 * parallel 7->3 carry-save reductions CORUSCANT needs ~5 reduction
 * levels of 4 cycles plus one 16-cycle addition — "circa 10x".
 *
 * This bench reports that analytical tree-depth comparison and the
 * measured single-unit reduceAndSum costs.
 */

#include <cmath>

#include "bench_util.hpp"
#include "core/coruscant_unit.hpp"
#include "util/rng.hpp"

using namespace coruscant;

namespace {

/** Parallel 7->3 reduction tree depth for m operands. */
std::size_t
csaTreeDepth(std::size_t m, std::size_t in, std::size_t out)
{
    std::size_t depth = 0;
    while (m > in) {
        // Every group of `in` rows becomes `out`; leftovers carry over.
        m = (m / in) * out + (m % in);
        ++depth;
    }
    return depth;
}

} // namespace

int
main()
{
    bench::header("Ablation: large-cardinality reduction "
                  "(Sec. IV-A example)");

    bench::subheader("analytical tree-depth model (362 operands)");
    std::size_t depth7 = csaTreeDepth(362, 7, 3);
    double coruscant_cycles = static_cast<double>(depth7) * 4 + 16;
    double dram_cycles = std::ceil(std::log2(362.0)) * 40;
    std::printf("  CORUSCANT: %zu reduction levels x 4 + 16-cycle add"
                " = %.0f cycles\n",
                depth7, coruscant_cycles);
    std::printf("  DRAM CLA : ceil(log2 362) = %.0f steps x 40 = %.0f "
                "cycles\n",
                std::ceil(std::log2(362.0)), dram_cycles);
    bench::row("speedup", dram_cycles / coruscant_cycles, 10.0, "x");

    bench::subheader("largest convolution window (4.5e8 adds)");
    std::size_t depth_big = csaTreeDepth(450000000ull, 7, 3);
    double cor_big = static_cast<double>(depth_big) * 4 + 16;
    double dram_big = std::ceil(std::log2(4.5e8)) * 40;
    std::printf("  CORUSCANT: %zu reduction levels -> %.0f cycles\n",
                depth_big, cor_big);
    std::printf("  DRAM CLA : %.0f steps -> %.0f cycles\n",
                std::ceil(std::log2(4.5e8)), dram_big);
    bench::row("speedup", dram_big / cor_big, 11.0, "x");

    bench::subheader("measured single-unit reduceAndSum (sequential "
                     "in one DBC)");
    for (std::size_t count : {10u, 30u, 60u, 120u}) {
        DeviceParams p = DeviceParams::withTrd(7);
        p.wiresPerDbc = 64;
        CoruscantUnit unit(p);
        Rng rng(count);
        std::vector<BitVector> rows;
        for (std::size_t i = 0; i < count; ++i) {
            BitVector row(64);
            row.insertUint64(0, 32, rng.next() & 0xFF);
            rows.push_back(std::move(row));
        }
        unit.resetCosts();
        unit.reduceAndSum(rows, 32);
        std::printf("  %4zu rows: %6llu cycles (%5.1f per row)\n",
                    count,
                    static_cast<unsigned long long>(
                        unit.ledger().cycles()),
                    static_cast<double>(unit.ledger().cycles()) /
                        static_cast<double>(count));
    }
    return 0;
}
