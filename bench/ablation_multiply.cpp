/**
 * @file
 * Ablation: multiplication strategies (paper Sec. III-D) — optimized
 * CSA vs. arbitrary partial-product grouping vs. CSD constant
 * multiplication, across operand widths and TRD.  Demonstrates the
 * O(n) vs O(n^2/TRD) scaling the paper argues for.
 */

#include "bench_util.hpp"
#include "core/coruscant_unit.hpp"
#include "util/csd.hpp"

using namespace coruscant;

namespace {

std::uint64_t
mulCycles(std::size_t trd, std::size_t bits, MulStrategy strategy)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = 2 * bits;
    CoruscantUnit unit(p);
    auto a = BitVector::fromUint64(2 * bits, (1ULL << bits) - 1);
    unit.resetCosts();
    unit.multiply(a, a, bits, strategy);
    return unit.ledger().cycles();
}

std::uint64_t
constCycles(std::size_t trd, std::size_t bits, std::uint64_t c)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = 2 * bits;
    CoruscantUnit unit(p);
    auto a = BitVector::fromUint64(2 * bits, (1ULL << bits) - 1);
    unit.resetCosts();
    unit.multiplyByConstant(a, c, bits);
    return unit.ledger().cycles();
}

} // namespace

int
main()
{
    bench::header("Ablation: multiplication strategies");

    bench::subheader("optimized CSA vs arbitrary grouping (cycles)");
    std::printf("  %-6s %6s %10s %10s %8s\n", "TRD", "bits", "csa",
                "arbitrary", "gain");
    for (std::size_t trd : {3u, 5u, 7u}) {
        for (std::size_t bits : {4u, 8u, 16u, 24u}) {
            auto csa = mulCycles(trd, bits, MulStrategy::OptimizedCsa);
            auto arb = mulCycles(trd, bits, MulStrategy::Arbitrary);
            std::printf("  %-6zu %6zu %10llu %10llu %7.2fx\n", trd,
                        bits, static_cast<unsigned long long>(csa),
                        static_cast<unsigned long long>(arb),
                        static_cast<double>(arb) /
                            static_cast<double>(csa));
        }
    }

    bench::subheader("CSA scaling is O(n) (cycles per operand bit)");
    for (std::size_t bits : {4u, 8u, 16u, 24u, 32u}) {
        auto csa = mulCycles(7, bits, MulStrategy::OptimizedCsa);
        std::printf("  n=%2zu: %6llu cycles (%5.1f per bit)\n", bits,
                    static_cast<unsigned long long>(csa),
                    static_cast<double>(csa) /
                        static_cast<double>(bits));
    }

    bench::subheader("constant multiplication via CSD (8-bit A, "
                     "TRD=7)");
    for (std::uint64_t c : {3ull, 15ull, 129ull, 515ull, 20061ull}) {
        std::printf("  c=%-6llu weight=%zu add-steps=%zu: %5llu cycles"
                    " (vs %llu arbitrary)\n",
                    static_cast<unsigned long long>(c), csdWeight(c),
                    csdAdditionSteps(c, 5),
                    static_cast<unsigned long long>(
                        constCycles(7, 8, c)),
                    static_cast<unsigned long long>(
                        mulCycles(7, 8, MulStrategy::Arbitrary)));
    }

    bench::subheader("paper reference points");
    bench::row("8-bit mult TRD=7 (cycles)",
               static_cast<double>(
                   mulCycles(7, 8, MulStrategy::OptimizedCsa)),
               64);
    bench::row("8-bit mult TRD=3 (cycles)",
               static_cast<double>(
                   mulCycles(3, 8, MulStrategy::OptimizedCsa)),
               105);
    return 0;
}
