/**
 * @file
 * Ablation: data placement / interleaving vs. DW shift cost.
 *
 * DWM access time depends on how far the target row is from an access
 * port ("S" in paper Table II).  This bench measures total shifts and
 * access cycles for sequential and random line streams under the two
 * interleave policies, plus the effect of the second access port
 * (paper Sec. II-B: extra ports cut the shift distance).
 */

#include "arch/dwm_memory.hpp"
#include "bench_util.hpp"
#include "util/rng.hpp"

using namespace coruscant;

namespace {

struct StreamStats
{
    std::uint64_t cycles;
    std::uint64_t shifts;
};

StreamStats
runStream(Interleave il, bool sequential, std::size_t accesses)
{
    MemoryConfig cfg;
    cfg.interleave = il;
    DwmMainMemory mem(cfg);
    Rng rng(7);
    std::uint64_t span = 1 << 22; // 4 MiB working set
    for (std::size_t i = 0; i < accesses; ++i) {
        std::uint64_t addr = sequential
                                 ? (i * 64) % span
                                 : (rng.next() % span) & ~63ull;
        mem.readLine(addr);
    }
    return {mem.ledger().cycles(), mem.totalShifts()};
}

} // namespace

int
main()
{
    bench::header("Ablation: interleaving policy vs DW shift cost");
    const std::size_t n = 20000;

    for (bool sequential : {true, false}) {
        bench::subheader(sequential ? "sequential stream"
                                    : "random stream");
        auto bank = runStream(Interleave::BankFirst, sequential, n);
        auto row = runStream(Interleave::RowFirst, sequential, n);
        std::printf("  bank-first: %8llu cycles, %8llu shifts "
                    "(%.2f shifts/access)\n",
                    static_cast<unsigned long long>(bank.cycles),
                    static_cast<unsigned long long>(bank.shifts),
                    static_cast<double>(bank.shifts) / n);
        std::printf("  row-first : %8llu cycles, %8llu shifts "
                    "(%.2f shifts/access)\n",
                    static_cast<unsigned long long>(row.cycles),
                    static_cast<unsigned long long>(row.shifts),
                    static_cast<double>(row.shifts) / n);
    }

    bench::subheader("port count vs shift distance (random rows, "
                     "one DBC)");
    Rng rng(3);
    for (std::size_t trd : {1u, 3u, 7u}) {
        DeviceParams p = DeviceParams::withTrd(trd);
        p.wiresPerDbc = 1;
        DomainBlockCluster dbc(p);
        std::uint64_t shifts = 0;
        const int samples = 5000;
        for (int i = 0; i < samples; ++i) {
            std::size_t row = rng.nextBelow(p.domainsPerWire);
            Port port = dbc.canAlign(row, Port::Left) ? Port::Left
                                                      : Port::Right;
            if (dbc.canAlign(row, Port::Left) &&
                dbc.canAlign(row, Port::Right)) {
                auto dl = std::abs(
                    static_cast<long>(dbc.rowAtPort(Port::Left)) -
                    static_cast<long>(row));
                auto dr = std::abs(
                    static_cast<long>(dbc.rowAtPort(Port::Right)) -
                    static_cast<long>(row));
                port = dl <= dr ? Port::Left : Port::Right;
            }
            shifts += dbc.alignRowToPort(row, port);
        }
        std::printf("  TRD=%zu spacing (%zu ports at rows ", trd,
                    trd == 1 ? 1ul : 2ul);
        std::printf("%zu/%zu): %.2f shifts per random access\n",
                    p.leftPortRow(), p.rightPortRow(),
                    static_cast<double>(shifts) / samples);
    }
    return 0;
}
