/**
 * @file
 * Ablation: memory-controller scheduling policy under mixed PIM +
 * regular traffic (discrete-event simulation).
 *
 * The paper's high-throughput mode dispatches instructions "to the
 * different ranks consecutively, in a circular fashion" — effectively
 * bank reordering.  This bench quantifies what that buys over strict
 * in-order issue for Polybench-like PIM workloads and a mixed stream.
 */

#include "apps/polybench/kernels.hpp"
#include "bench_util.hpp"
#include "controller/event_sim.hpp"
#include "core/op_cost.hpp"
#include "util/rng.hpp"

using namespace coruscant;

namespace {

std::vector<SimRequest>
pimWorkload(const OpRecorder &trace, std::size_t banks)
{
    // One DBC-op per tile-lane batch (the Fig. 10 model's granularity),
    // arriving back-to-back, round-robined over banks.
    CoruscantCostModel cost(7);
    auto add = cost.add(2, 32);
    auto mul = cost.multiply(32);
    std::uint64_t add_ops = trace.adds / 16 + 1;
    std::uint64_t mul_ops = trace.muls / 8 + 1;
    std::vector<SimRequest> reqs;
    Rng rng(1);
    std::uint64_t t = 0;
    for (std::uint64_t i = 0; i < add_ops + mul_ops; ++i) {
        bool is_mul = i % (add_ops / (mul_ops + 1) + 1) == 0;
        auto &c = is_mul ? mul : add;
        reqs.push_back({t, static_cast<std::size_t>(
                               rng.nextBelow(banks)),
                        8,
                        static_cast<std::uint32_t>(c.cycles + 36)});
        t += 2; // arrival faster than service: queue pressure
    }
    return reqs;
}

void
report(const char *name, const SimStats &s)
{
    std::printf("  %-12s makespan %9llu  avg-lat %9.0f  max-lat %9llu"
                "  bus %4.0f%%  banks %4.0f%%\n",
                name, static_cast<unsigned long long>(s.makespan),
                s.avgLatency,
                static_cast<unsigned long long>(s.maxLatency),
                100 * s.busUtilization, 100 * s.bankUtilization);
}

} // namespace

int
main()
{
    bench::header("Ablation: controller scheduling policy (DES)");
    const std::size_t banks = 32;
    EventSimulator sim(banks);

    bench::subheader("gemm(32) PIM instruction stream");
    auto reqs = pimWorkload(runGemm(32).trace, banks);
    report("in-order", sim.run(reqs, SchedulePolicy::InOrder));
    report("reorder", sim.run(reqs, SchedulePolicy::BankReorder));

    bench::subheader("hot-bank skew (80% of ops on 4 banks)");
    Rng rng(7);
    std::vector<SimRequest> skew;
    for (int i = 0; i < 20000; ++i) {
        std::size_t bank = rng.nextBool(0.8)
                               ? rng.nextBelow(4)
                               : 4 + rng.nextBelow(banks - 4);
        skew.push_back({static_cast<std::uint64_t>(i), bank, 2, 40});
    }
    report("in-order", sim.run(skew, SchedulePolicy::InOrder));
    report("reorder", sim.run(skew, SchedulePolicy::BankReorder));

    bench::subheader("uniform saturation (reference)");
    std::vector<SimRequest> uni;
    for (int i = 0; i < 20000; ++i)
        uni.push_back({0, static_cast<std::size_t>(i % banks), 2, 40});
    report("in-order", sim.run(uni, SchedulePolicy::InOrder));
    report("reorder", sim.run(uni, SchedulePolicy::BankReorder));
    return 0;
}
