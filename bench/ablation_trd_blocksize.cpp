/**
 * @file
 * Ablation: TRD and blocksize sensitivity for multi-operand addition
 * and bulk-bitwise operations (the paper's sensitivity study uses
 * TRD in {3,5,7}; the cpim ISA allows blocksize in 8..512).
 */

#include "bench_util.hpp"
#include "core/op_cost.hpp"
#include "dwm/area_model.hpp"

using namespace coruscant;

int
main()
{
    bench::header("Ablation: TRD and blocksize sensitivity");

    bench::subheader("addition cycles by TRD and blocksize");
    std::printf("  %-5s", "TRD");
    for (std::size_t b : {8u, 16u, 32u, 64u, 128u, 256u, 512u})
        std::printf(" %7zu", b);
    std::printf("   (max operands)\n");
    for (std::size_t trd : {3u, 4u, 5u, 6u, 7u}) {
        CoruscantCostModel cost(trd);
        std::printf("  %-5zu", trd);
        for (std::size_t b : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
            std::printf(" %7llu",
                        static_cast<unsigned long long>(
                            cost.add(cost.maxAddOperands(), b).cycles));
        }
        std::printf("   %zu\n", cost.maxAddOperands());
    }

    bench::subheader("cycles per summed operand value (8-bit lanes)");
    for (std::size_t trd : {3u, 5u, 7u}) {
        CoruscantCostModel cost(trd);
        std::size_t m = cost.maxAddOperands();
        double per_value =
            static_cast<double>(cost.add(m, 8).cycles) /
            static_cast<double>(m);
        std::printf("  TRD=%zu: %zu operands in %llu cycles = %.1f "
                    "cycles/value\n",
                    trd, m,
                    static_cast<unsigned long long>(
                        cost.add(m, 8).cycles),
                    per_value);
    }

    bench::subheader("bulk-bitwise cycles by operand count (TRD=7)");
    CoruscantCostModel c7(7);
    for (std::size_t m = 1; m <= 7; ++m) {
        std::printf("  %zu operands: %llu cycles (one TR regardless)\n",
                    m,
                    static_cast<unsigned long long>(
                        c7.bulkBitwise(m).cycles));
    }

    bench::subheader("area overhead vs TRD (full ISA)");
    AreaModel area;
    for (std::size_t trd : {3u, 5u, 7u}) {
        PimFeatureSet f{trd, true, trd >= 5, trd >= 5};
        bench::rowPlain("TRD=" + std::to_string(trd),
                        100 * area.memoryOverheadFraction(f), "%");
    }
    return 0;
}
