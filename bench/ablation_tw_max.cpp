/**
 * @file
 * Ablation: transverse write with segmented shifting vs. full-wire
 * shifting in the max function (paper Sec. IV-B claims TW reduces max
 * cycles by 28.5% at TRD = 7).
 */

#include "bench_util.hpp"
#include "core/coruscant_unit.hpp"
#include "util/rng.hpp"

using namespace coruscant;

namespace {

std::uint64_t
maxCycles(std::size_t trd, std::size_t word_bits, bool use_tw)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = word_bits;
    CoruscantUnit unit(p);
    Rng rng(trd);
    std::vector<BitVector> cands;
    for (std::size_t i = 0; i < trd; ++i)
        cands.push_back(
            BitVector::fromUint64(word_bits,
                                  rng.next() &
                                      ((1ULL << word_bits) - 1)));
    unit.resetCosts();
    unit.maxOfRows(cands, word_bits, 0, use_tw);
    return unit.ledger().cycles();
}

} // namespace

int
main()
{
    bench::header("Ablation: transverse write in the max function");
    for (std::size_t trd : {3u, 5u, 7u}) {
        for (std::size_t bits : {8u, 16u, 32u}) {
            auto tw = maxCycles(trd, bits, true);
            auto shift = maxCycles(trd, bits, false);
            double saving =
                100.0 * (1.0 - static_cast<double>(tw) /
                                   static_cast<double>(shift));
            std::printf("  TRD=%zu %2zu-bit: TW %5llu cyc, full-shift "
                        "%5llu cyc, saving %5.1f%%\n",
                        trd, bits, static_cast<unsigned long long>(tw),
                        static_cast<unsigned long long>(shift),
                        saving);
        }
    }
    bench::subheader("paper reference point");
    auto tw = maxCycles(7, 8, true);
    auto shift = maxCycles(7, 8, false);
    bench::row("cycle reduction at TRD=7",
               100.0 * (1.0 - static_cast<double>(tw) /
                                  static_cast<double>(shift)),
               28.5, "%");
    return 0;
}
