/**
 * @file
 * Shared reporting helpers for the table/figure regeneration benches.
 *
 * Every bench prints the rows/series of one paper table or figure,
 * side by side with the paper's published values where the paper
 * states them, so EXPERIMENTS.md can be regenerated from the output.
 */

#ifndef CORUSCANT_BENCH_BENCH_UTIL_HPP
#define CORUSCANT_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>

namespace coruscant::bench {

inline void
header(const std::string &title)
{
    std::printf("\n==========================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("==========================================================\n");
}

inline void
subheader(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/** Print one measured-vs-paper value with the deviation. */
inline void
row(const std::string &label, double measured, double paper,
    const char *unit = "")
{
    if (paper > 0) {
        std::printf("  %-34s %12.4g %s   (paper: %.4g, %+.1f%%)\n",
                    label.c_str(), measured, unit, paper,
                    100.0 * (measured - paper) / paper);
    } else {
        std::printf("  %-34s %12.4g %s\n", label.c_str(), measured,
                    unit);
    }
}

/** Print a measured value with no paper reference. */
inline void
rowPlain(const std::string &label, double measured,
         const char *unit = "")
{
    row(label, measured, -1, unit);
}

} // namespace coruscant::bench

#endif // CORUSCANT_BENCH_BENCH_UTIL_HPP
