/**
 * @file
 * Regenerates paper Fig. 10: normalized DWM latency on the Polybench
 * subset — CPU+DWM and CPU+DRAM latency normalized to CORUSCANT PIM
 * (improvement factors; the paper reports averages of 2.07x and
 * 2.20x).
 */

#include <cmath>

#include "apps/polybench/system_model.hpp"
#include "bench_util.hpp"

using namespace coruscant;

int
main()
{
    bench::header("Fig. 10: normalized latency, Polybench "
                  "(CPU+DWM / PIM and CPU+DRAM / PIM)");
    PolybenchSystemModel model;
    auto runs = runAllPolybench(48);

    std::printf("  %-10s %14s %14s %14s %10s %10s\n", "kernel",
                "cpu-dram[cyc]", "cpu-dwm[cyc]", "pim[cyc]", "dwm/pim",
                "dram/pim");
    double gdwm = 1, gdram = 1;
    for (const auto &run : runs) {
        auto r = model.evaluate(run);
        std::printf("  %-10s %14llu %14llu %14llu %10.2f %10.2f\n",
                    r.kernel.c_str(),
                    static_cast<unsigned long long>(r.cpuDramCycles),
                    static_cast<unsigned long long>(r.cpuDwmCycles),
                    static_cast<unsigned long long>(r.pimCycles),
                    r.latencyGainVsDwm(), r.latencyGainVsDram());
        gdwm *= r.latencyGainVsDwm();
        gdram *= r.latencyGainVsDram();
    }
    double n = static_cast<double>(runs.size());
    bench::subheader("averages");
    bench::row("geomean latency gain vs CPU+DWM", std::pow(gdwm, 1 / n),
               2.07, "x");
    bench::row("geomean latency gain vs CPU+DRAM",
               std::pow(gdram, 1 / n), 2.20, "x");

    auto gemm = model.evaluate(runGemm(48));
    bench::row("PIM queueing share (gemm)", gemm.pimQueueFraction, 0.8);
    return 0;
}
