/**
 * @file
 * Regenerates paper Fig. 11: normalized energy reduction of CORUSCANT
 * PIM over the CPU+DWM system on the Polybench subset (the paper
 * reports >25x on average, dominated by the 1250 pJ/Byte bus
 * transfers).
 */

#include <cmath>

#include "apps/polybench/system_model.hpp"
#include "bench_util.hpp"

using namespace coruscant;

int
main()
{
    bench::header("Fig. 11: normalized energy reduction, Polybench");
    PolybenchSystemModel model;
    auto runs = runAllPolybench(48);

    std::printf("  %-10s %16s %16s %10s\n", "kernel", "cpu[uJ]",
                "pim[uJ]", "gain");
    double ggain = 1;
    for (const auto &run : runs) {
        auto r = model.evaluate(run);
        std::printf("  %-10s %16.2f %16.2f %10.1f\n", r.kernel.c_str(),
                    r.cpuEnergyPj / 1e6, r.pimEnergyPj / 1e6,
                    r.energyGain());
        ggain *= r.energyGain();
    }
    bench::subheader("average");
    bench::row("geomean energy reduction",
               std::pow(ggain, 1.0 / static_cast<double>(runs.size())),
               25.2, "x");
    return 0;
}
