/**
 * @file
 * Regenerates paper Fig. 12: bitmap-index query latency — Ambit,
 * ELP2IM, and CORUSCANT normalized to the CPU+DRAM system, for "male
 * users active in the past w weeks", w in {2,3,4}, 16M users.
 *
 * The paper's stated ratios: CORUSCANT is 1.6x / 2.2x / 3.4x faster
 * than ELP2IM at w = 2 / 3 / 4, with flat CORUSCANT latency.
 */

#include "apps/bitmap/bitmap_index.hpp"
#include "bench_util.hpp"

using namespace coruscant;

int
main()
{
    bench::header("Fig. 12: bitmap index query (16M users)");
    auto db = BitmapDatabase::synthesize(16ull << 20, 4);
    BitmapQueryEngine eng(db);

    std::printf("  %-4s %12s | %10s %10s %10s %10s | %9s\n", "w",
                "matches", "cpu[cyc]", "ambit", "elp2im", "coruscant",
                "cor/elp");
    for (std::size_t w = 2; w <= 4; ++w) {
        auto cpu = eng.runCpuDram(w);
        auto ambit = eng.runAmbit(w);
        auto elp = eng.runElp2im(w);
        auto cor = eng.runCoruscant(w);
        std::printf(
            "  %-4zu %12llu | %10llu %10llu %10llu %10llu | %9.2f\n", w,
            static_cast<unsigned long long>(cor.matches),
            static_cast<unsigned long long>(cpu.cycles),
            static_cast<unsigned long long>(ambit.cycles),
            static_cast<unsigned long long>(elp.cycles),
            static_cast<unsigned long long>(cor.cycles),
            static_cast<double>(elp.cycles) /
                static_cast<double>(cor.cycles));
    }

    bench::subheader("paper ratios (CORUSCANT speedup over ELP2IM)");
    for (std::size_t w = 2; w <= 4; ++w) {
        double paper = w == 2 ? 1.6 : (w == 3 ? 2.2 : 3.4);
        double measured =
            static_cast<double>(eng.runElp2im(w).cycles) /
            static_cast<double>(eng.runCoruscant(w).cycles);
        bench::row("w = " + std::to_string(w), measured, paper, "x");
    }
    bench::subheader("normalized speedup over CPU+DRAM");
    for (std::size_t w = 2; w <= 4; ++w) {
        double cpu = static_cast<double>(eng.runCpuDram(w).cycles);
        bench::rowPlain("Ambit      w=" + std::to_string(w),
                        cpu / static_cast<double>(
                                  eng.runAmbit(w).cycles),
                        "x");
        bench::rowPlain("ELP2IM     w=" + std::to_string(w),
                        cpu / static_cast<double>(
                                  eng.runElp2im(w).cycles),
                        "x");
        bench::rowPlain("CORUSCANT  w=" + std::to_string(w),
                        cpu / static_cast<double>(
                                  eng.runCoruscant(w).cycles),
                        "x");
    }
    return 0;
}
