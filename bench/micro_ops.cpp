/**
 * @file
 * google-benchmark microbenchmarks: host-side simulation throughput of
 * the core device and PIM operations (how fast the *simulator* runs,
 * complementing the modeled device cycles printed by the table
 * benches).
 */

#include <benchmark/benchmark.h>

#include "arch/dwm_memory.hpp"
#include "core/coruscant_unit.hpp"
#include "util/rng.hpp"

using namespace coruscant;

namespace {

DeviceParams
params(std::size_t trd, std::size_t wires = 512)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

BitVector
randomRow(Rng &rng, std::size_t width)
{
    BitVector row(width);
    for (std::size_t w = 0; w < width; ++w)
        row.set(w, rng.nextBool());
    return row;
}

void
BM_TransverseReadAll(benchmark::State &state)
{
    DomainBlockCluster dbc(params(7));
    Rng rng(1);
    for (std::size_t r = 0; r < 32; ++r)
        dbc.pokeRow(r, randomRow(rng, 512));
    for (auto _ : state)
        benchmark::DoNotOptimize(dbc.transverseReadAll());
}
BENCHMARK(BM_TransverseReadAll);

void
BM_BulkAnd7(benchmark::State &state)
{
    CoruscantUnit unit(params(7));
    Rng rng(2);
    std::vector<BitVector> ops;
    for (int i = 0; i < 7; ++i)
        ops.push_back(randomRow(rng, 512));
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.bulkBitwise(BulkOp::And, ops));
}
BENCHMARK(BM_BulkAnd7);

void
BM_FiveOperandAdd(benchmark::State &state)
{
    CoruscantUnit unit(params(7));
    Rng rng(3);
    std::vector<BitVector> ops;
    for (int i = 0; i < 5; ++i)
        ops.push_back(randomRow(rng, 512));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            unit.add(ops, static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_FiveOperandAdd)->Arg(8)->Arg(32)->Arg(512);

void
BM_Multiply8Bit(benchmark::State &state)
{
    CoruscantUnit unit(params(static_cast<std::size_t>(state.range(0))));
    Rng rng(4);
    BitVector a = randomRow(rng, 512);
    BitVector b = randomRow(rng, 512);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.multiply(a, b, 8));
}
BENCHMARK(BM_Multiply8Bit)->Arg(3)->Arg(5)->Arg(7);

void
BM_MaxOfRowsTw(benchmark::State &state)
{
    CoruscantUnit unit(params(7));
    Rng rng(5);
    std::vector<BitVector> cands;
    for (int i = 0; i < 7; ++i)
        cands.push_back(randomRow(rng, 512));
    bool use_tw = state.range(0) != 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.maxOfRows(cands, 8, 0, use_tw));
}
BENCHMARK(BM_MaxOfRowsTw)->Arg(1)->Arg(0);

void
BM_MemoryReadLine(benchmark::State &state)
{
    DwmMainMemory mem;
    Rng rng(6);
    for (int i = 0; i < 64; ++i)
        mem.writeLine((rng.next() % mem.config().capacityBytes())
                          & ~63ull,
                      randomRow(rng, 512));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.readLine(addr));
        addr = (addr + 64) % (1 << 20);
    }
}
BENCHMARK(BM_MemoryReadLine);

void
BM_NmrVote(benchmark::State &state)
{
    CoruscantUnit unit(params(7));
    Rng rng(7);
    std::vector<BitVector> reps(
        static_cast<std::size_t>(state.range(0)));
    for (auto &r : reps)
        r = randomRow(rng, 512);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.nmrVote(reps));
}
BENCHMARK(BM_NmrVote)->Arg(3)->Arg(5)->Arg(7);

} // namespace

BENCHMARK_MAIN();
