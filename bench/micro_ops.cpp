/**
 * @file
 * google-benchmark microbenchmarks: host-side simulation throughput of
 * the core device and PIM operations (how fast the *simulator* runs,
 * complementing the modeled device cycles printed by the table
 * benches).
 *
 * --metrics-json FILE / --trace FILE (stripped before google-benchmark
 * sees the argument list) additionally run ONE instrumented pass of
 * each benchmarked operation and export its modeled primitive counts
 * ("micro_ops/<bench>" components) and span tree.  The timed loops
 * themselves stay uninstrumented, so these flags do not perturb the
 * reported throughput.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "arch/dwm_memory.hpp"
#include "core/coruscant_unit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "util/rng.hpp"

using namespace coruscant;

namespace {

DeviceParams
params(std::size_t trd, std::size_t wires = 512)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

BitVector
randomRow(Rng &rng, std::size_t width)
{
    BitVector row(width);
    for (std::size_t w = 0; w < width; ++w)
        row.set(w, rng.nextBool());
    return row;
}

void
BM_TransverseReadAll(benchmark::State &state)
{
    DomainBlockCluster dbc(params(7));
    Rng rng(1);
    for (std::size_t r = 0; r < 32; ++r)
        dbc.pokeRow(r, randomRow(rng, 512));
    for (auto _ : state)
        benchmark::DoNotOptimize(dbc.transverseReadAll());
}
BENCHMARK(BM_TransverseReadAll);

void
BM_BulkAnd7(benchmark::State &state)
{
    CoruscantUnit unit(params(7));
    Rng rng(2);
    std::vector<BitVector> ops;
    for (int i = 0; i < 7; ++i)
        ops.push_back(randomRow(rng, 512));
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.bulkBitwise(BulkOp::And, ops));
}
BENCHMARK(BM_BulkAnd7);

void
BM_FiveOperandAdd(benchmark::State &state)
{
    CoruscantUnit unit(params(7));
    Rng rng(3);
    std::vector<BitVector> ops;
    for (int i = 0; i < 5; ++i)
        ops.push_back(randomRow(rng, 512));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            unit.add(ops, static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_FiveOperandAdd)->Arg(8)->Arg(32)->Arg(512);

void
BM_Multiply8Bit(benchmark::State &state)
{
    CoruscantUnit unit(params(static_cast<std::size_t>(state.range(0))));
    Rng rng(4);
    BitVector a = randomRow(rng, 512);
    BitVector b = randomRow(rng, 512);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.multiply(a, b, 8));
}
BENCHMARK(BM_Multiply8Bit)->Arg(3)->Arg(5)->Arg(7);

void
BM_MaxOfRowsTw(benchmark::State &state)
{
    CoruscantUnit unit(params(7));
    Rng rng(5);
    std::vector<BitVector> cands;
    for (int i = 0; i < 7; ++i)
        cands.push_back(randomRow(rng, 512));
    bool use_tw = state.range(0) != 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.maxOfRows(cands, 8, 0, use_tw));
}
BENCHMARK(BM_MaxOfRowsTw)->Arg(1)->Arg(0);

void
BM_MemoryReadLine(benchmark::State &state)
{
    DwmMainMemory mem;
    Rng rng(6);
    for (int i = 0; i < 64; ++i)
        mem.writeLine((rng.next() % mem.config().capacityBytes())
                          & ~63ull,
                      randomRow(rng, 512));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.readLine(addr));
        addr = (addr + 64) % (1 << 20);
    }
}
BENCHMARK(BM_MemoryReadLine);

void
BM_NmrVote(benchmark::State &state)
{
    CoruscantUnit unit(params(7));
    Rng rng(7);
    std::vector<BitVector> reps(
        static_cast<std::size_t>(state.range(0)));
    for (auto &r : reps)
        r = randomRow(rng, 512);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.nmrVote(reps));
}
BENCHMARK(BM_NmrVote)->Arg(3)->Arg(5)->Arg(7);

/**
 * One instrumented execution of every benchmarked operation: modeled
 * primitive counts per "micro_ops/<bench>" component, plus spans when
 * tracing.  Deterministic (fixed seeds, single pass).
 */
int
emitObservability(const std::string &metrics_path,
                  const std::string &trace_path)
{
    obs::MetricsRegistry reg;
    obs::TraceSink trace;
    if (!trace_path.empty()) {
        trace.enable();
        trace.processName(0, "micro_ops");
    }
    std::uint32_t tid = 0;
    auto unitFor = [&](const char *name, std::size_t trd) {
        CoruscantUnit unit(params(trd));
        unit.attachMetrics(
            &reg.component(std::string("micro_ops/") + name));
        unit.attachTrace(&trace, 0, tid++);
        return unit;
    };

    {
        DomainBlockCluster dbc(params(7));
        dbc.attachMetrics(
            &reg.component("micro_ops/transverse_read_all"));
        Rng rng(1);
        for (std::size_t r = 0; r < 32; ++r)
            dbc.pokeRow(r, randomRow(rng, 512));
        dbc.transverseReadAll();
    }
    {
        CoruscantUnit unit = unitFor("bulk_and7", 7);
        Rng rng(2);
        std::vector<BitVector> ops;
        for (int i = 0; i < 7; ++i)
            ops.push_back(randomRow(rng, 512));
        unit.bulkBitwise(BulkOp::And, ops);
    }
    {
        CoruscantUnit unit = unitFor("five_operand_add", 7);
        Rng rng(3);
        std::vector<BitVector> ops;
        for (int i = 0; i < 5; ++i)
            ops.push_back(randomRow(rng, 512));
        unit.add(ops, 8);
    }
    {
        CoruscantUnit unit = unitFor("multiply_8bit", 7);
        Rng rng(4);
        BitVector a = randomRow(rng, 512);
        BitVector b = randomRow(rng, 512);
        unit.multiply(a, b, 8);
    }
    {
        CoruscantUnit unit = unitFor("max_of_rows_tw", 7);
        Rng rng(5);
        std::vector<BitVector> cands;
        for (int i = 0; i < 7; ++i)
            cands.push_back(randomRow(rng, 512));
        unit.maxOfRows(cands, 8, 0, true);
    }
    {
        obs::MetricsRegistry mem_reg;
        DwmMainMemory mem;
        mem.attachObs(mem_reg, trace_path.empty() ? nullptr : &trace,
                      tid++);
        Rng rng(6);
        mem.writeLine(0, randomRow(rng, 512));
        mem.readLine(0);
        reg.mergePrefixed(mem_reg, "micro_ops/memory_read_line");
    }
    {
        CoruscantUnit unit = unitFor("nmr_vote3", 7);
        Rng rng(7);
        std::vector<BitVector> reps(3);
        for (auto &r : reps)
            r = randomRow(rng, 512);
        unit.nmrVote(reps);
    }

    if (!metrics_path.empty()) {
        std::ofstream os(metrics_path);
        if (os)
            os << reg.toJson();
        if (!os) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         metrics_path.c_str());
            return 1;
        }
    }
    if (!trace_path.empty()) {
        std::ofstream os(trace_path);
        if (os)
            trace.writeJson(os);
        if (!os) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         trace_path.c_str());
            return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string metrics_path, trace_path;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--metrics-json" || a == "--trace") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "option '%s' requires a value\n",
                             argv[i]);
                return 2;
            }
            (a == "--trace" ? trace_path : metrics_path) = argv[++i];
        } else {
            rest.push_back(argv[i]);
        }
    }
    int rest_argc = static_cast<int>(rest.size());
    benchmark::Initialize(&rest_argc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!metrics_path.empty() || !trace_path.empty())
        return emitObservability(metrics_path, trace_path);
    return 0;
}
