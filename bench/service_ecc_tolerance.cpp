/**
 * @file
 * Data-fault-rate x ECC-mode sweep for the request-service layer: the
 * serving-side degradation surface of the SECDED pipeline.
 *
 * Each point serves the same seeded workload with data-domain faults
 * injected live (per-bit transient flips per line access, optionally
 * retention decay) under one protection mode, and the JSON emitted on
 * stdout gives throughput, tails, the outcome taxonomy, and the ECC
 * counters.  The headline checks:
 *
 *   - SECDED holds SDC at zero across every single-bit-dominated rate
 *     in the sweep (one flip per word corrects in-line; two are a
 *     flagged DUE, never silent);
 *   - unprotected serving shows the same flips as silent corruption —
 *     the delta between the two surfaces is what the check lanes buy;
 *   - correction work appears in the corrected-outcome tail and the
 *     ecc counters, not smeared over clean percentiles.
 *
 * Usage: service_ecc_tolerance [--pdata P] [--ecc none|secded]
 *                              [--retention R] [--duration N]
 *                              [--channels C]
 *   --pdata/--ecc run a single point (CI smoke); default sweeps both
 *   modes over rates {0, 1e-7, 1e-6, 1e-5}.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "service/service_engine.hpp"
#include "util/cli_args.hpp"

using namespace coruscant;

namespace {

void
printPoint(const char *ecc, double pdata, double retention,
           const ServiceStats &s, bool last)
{
    double sdc_rate =
        s.generated == 0
            ? 0.0
            : static_cast<double>(s.outcomes[static_cast<std::size_t>(
                  RequestOutcome::Sdc)]) /
                  static_cast<double>(s.generated);
    const LatencyHistogram &clean =
        s.outcomeLatency[static_cast<std::size_t>(
            RequestOutcome::Clean)];
    const LatencyHistogram &corrected =
        s.outcomeLatency[static_cast<std::size_t>(
            RequestOutcome::Corrected)];
    std::printf(
        "    {\"ecc\": \"%s\", \"pdata\": %g, \"retention\": %g, "
        "\"throughput_per_kcycle\": %.3f, \"p99\": %llu, "
        "\"p99_clean\": %llu, \"p99_corrected\": %llu, "
        "\"outcomes\": {\"clean\": %llu, \"corrected\": %llu, "
        "\"due\": %llu, \"sdc\": %llu, \"rejected\": %llu}, "
        "\"sdc_rate\": %.4g, \"data_faults_injected\": %llu, "
        "\"ecc_corrections\": %llu, \"ecc_due\": %llu, "
        "\"guard_retries\": %llu, \"breaker_trips\": %llu, "
        "\"retired_groups\": %llu, \"maintenance_units\": %llu, "
        "\"capacity_loss\": %.4f}%s\n",
        ecc, pdata, retention, s.throughputPerKcycle(),
        static_cast<unsigned long long>(s.latency.p99()),
        static_cast<unsigned long long>(clean.p99()),
        static_cast<unsigned long long>(corrected.p99()),
        static_cast<unsigned long long>(s.outcomes[0]),
        static_cast<unsigned long long>(s.outcomes[1]),
        static_cast<unsigned long long>(s.outcomes[2]),
        static_cast<unsigned long long>(s.outcomes[3]),
        static_cast<unsigned long long>(s.outcomes[4]), sdc_rate,
        static_cast<unsigned long long>(s.dataFaultsInjected),
        static_cast<unsigned long long>(s.eccCorrections),
        static_cast<unsigned long long>(s.eccDetectedUncorrectable),
        static_cast<unsigned long long>(s.guardRetries),
        static_cast<unsigned long long>(s.breakerTrips),
        static_cast<unsigned long long>(s.retiredGroups),
        static_cast<unsigned long long>(s.maintenanceUnits),
        s.capacityLossFraction, last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    ParsedArgs o =
        parseArgs(std::vector<std::string>(argv + 1, argv + argc),
                  {{"pdata", ArgType::Double},
                   {"ecc", ArgType::String},
                   {"retention", ArgType::Double},
                   {"duration", ArgType::Size},
                   {"channels", ArgType::Size}});
    if (!o.ok()) {
        std::fprintf(stderr, "error: %s\n", o.error().c_str());
        return 2;
    }
    std::vector<std::string> modes = {"none", "secded"};
    std::vector<double> rates = {0.0, 1e-7, 1e-6, 1e-5};
    if (o.has("ecc"))
        modes = {o.getString("ecc", "secded")};
    if (o.has("pdata"))
        rates = {o.getDouble("pdata", 1e-6)};
    double retention = o.getDouble("retention", 0.0);

    ServiceConfig cfg;
    cfg.channels =
        static_cast<std::uint32_t>(o.getSize("channels", 4));
    cfg.threads = 0; // all cores; results are thread-count invariant
    cfg.banksPerChannel = 16;
    cfg.seed = 42;
    cfg.durationCycles = o.getSize("duration", 100000);
    cfg.ratePerKcycle = 16.0;

    std::printf("{\n");
    std::printf(
        "  \"bench\": \"service_ecc_tolerance\",\n"
        "  \"config\": {\"channels\": %u, \"banks\": %u, "
        "\"duration_cycles\": %llu, \"seed\": %llu, "
        "\"rate_per_kcycle\": %.1f, \"mix\": \"%s\"},\n",
        cfg.channels, cfg.banksPerChannel,
        static_cast<unsigned long long>(cfg.durationCycles),
        static_cast<unsigned long long>(cfg.seed), cfg.ratePerKcycle,
        cfg.mix.describe().c_str());
    std::printf("  \"sweep\": [\n");
    std::size_t total = modes.size() * rates.size();
    std::size_t done = 0;
    int rc = 0;
    for (const std::string &mode : modes) {
        EccMode ecc;
        if (mode == "none")
            ecc = EccMode::None;
        else if (mode == "secded")
            ecc = EccMode::Secded;
        else {
            std::fprintf(stderr, "unknown ecc '%s' (none, secded)\n",
                         mode.c_str());
            return 2;
        }
        for (double pdata : rates) {
            cfg.faults = ServiceFaultConfig{};
            cfg.faults.dataFaultRate = pdata;
            cfg.faults.retentionRatePerCycle = retention;
            cfg.faults.ecc = ecc;
            cfg.faults.pimNmr = ecc == EccMode::Secded ? 3 : 1;
            ServiceStats s = runService(cfg);
            ++done;
            printPoint(mode.c_str(), pdata, retention, s,
                       done == total);
            // Headline guarantee: SECDED (plus NMR on the TR path)
            // leaves no single-bit-dominated fault silent.
            if (ecc == EccMode::Secded &&
                s.outcomes[static_cast<std::size_t>(
                    RequestOutcome::Sdc)] != 0) {
                std::fprintf(stderr,
                             "FAIL: SDC under SECDED at pdata=%g\n",
                             pdata);
                rc = 1;
            }
        }
    }
    std::printf("  ]\n}\n");
    return rc;
}
