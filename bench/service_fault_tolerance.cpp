/**
 * @file
 * Fault-rate x guard-policy sweep for the request-service layer: the
 * serving-side counterpart of the table7 campaign.
 *
 * Each point serves the same seeded workload with live shift-fault
 * injection at a flat rate and one guard policy, and the JSON emitted
 * on stdout gives the degradation surface — throughput, clean and
 * corrected tail latencies, the full outcome taxonomy, SDC rate, and
 * the health-machinery counters (breaker trips, retirements, dead
 * groups, steering, capacity loss).  The headline checks:
 *
 *   - per-access guarding holds SDC at zero across the whole sweep
 *     (every fault is caught at the access where it happens);
 *   - unguarded serving degrades gracefully: wrong answers, never a
 *     crash or an unbounded queue;
 *   - correction latency shows up in the corrected-outcome tail, not
 *     smeared over the clean percentiles.
 *
 * Usage: service_fault_tolerance [--pshift P] [--policy NAME]
 *                                [--duration N] [--channels C]
 *   --pshift/--policy run a single point (CI smoke); default sweeps
 *   policies {none, per-access, per-cpim, scrub} over rates
 *   {0, 1e-4, 3e-4, 1e-3, 3e-3}.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "service/service_engine.hpp"
#include "util/cli_args.hpp"

using namespace coruscant;

namespace {

GuardPolicy
policyFromName(const std::string &name, bool &ok)
{
    ok = true;
    if (name == "none")
        return GuardPolicy::None;
    if (name == "per-access")
        return GuardPolicy::PerAccess;
    if (name == "per-cpim")
        return GuardPolicy::PerCpim;
    if (name == "scrub")
        return GuardPolicy::PeriodicScrub;
    ok = false;
    return GuardPolicy::None;
}

void
printPoint(const std::string &policy, double pshift,
           const ServiceStats &s, bool last)
{
    double sdc_rate =
        s.generated == 0
            ? 0.0
            : static_cast<double>(
                  s.outcomes[static_cast<std::size_t>(
                      RequestOutcome::Sdc)]) /
                  static_cast<double>(s.generated);
    const LatencyHistogram &clean =
        s.outcomeLatency[static_cast<std::size_t>(
            RequestOutcome::Clean)];
    const LatencyHistogram &corrected =
        s.outcomeLatency[static_cast<std::size_t>(
            RequestOutcome::Corrected)];
    std::printf(
        "    {\"policy\": \"%s\", \"pshift\": %g, "
        "\"throughput_per_kcycle\": %.3f, \"p99\": %llu, "
        "\"p99_clean\": %llu, \"p99_corrected\": %llu, "
        "\"outcomes\": {\"clean\": %llu, \"corrected\": %llu, "
        "\"due\": %llu, \"sdc\": %llu, \"rejected\": %llu}, "
        "\"sdc_rate\": %.4g, \"injected_faults\": %llu, "
        "\"guard_retries\": %llu, \"breaker_trips\": %llu, "
        "\"retired_groups\": %llu, \"dead_groups\": %llu, "
        "\"steered\": %llu, \"capacity_rejected\": %llu, "
        "\"maintenance_units\": %llu, \"capacity_loss\": %.4f}%s\n",
        policy.c_str(), pshift, s.throughputPerKcycle(),
        static_cast<unsigned long long>(s.latency.p99()),
        static_cast<unsigned long long>(clean.p99()),
        static_cast<unsigned long long>(corrected.p99()),
        static_cast<unsigned long long>(s.outcomes[0]),
        static_cast<unsigned long long>(s.outcomes[1]),
        static_cast<unsigned long long>(s.outcomes[2]),
        static_cast<unsigned long long>(s.outcomes[3]),
        static_cast<unsigned long long>(s.outcomes[4]), sdc_rate,
        static_cast<unsigned long long>(s.injectedFaults),
        static_cast<unsigned long long>(s.guardRetries),
        static_cast<unsigned long long>(s.breakerTrips),
        static_cast<unsigned long long>(s.retiredGroups),
        static_cast<unsigned long long>(s.deadGroups),
        static_cast<unsigned long long>(s.steeredRequests),
        static_cast<unsigned long long>(s.capacityRejections),
        static_cast<unsigned long long>(s.maintenanceUnits),
        s.capacityLossFraction, last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    ParsedArgs o = parseArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        {{"pshift", ArgType::Double},
         {"policy", ArgType::String},
         {"duration", ArgType::Size},
         {"channels", ArgType::Size}});
    if (!o.ok()) {
        std::fprintf(stderr, "error: %s\n", o.error().c_str());
        return 2;
    }
    std::vector<std::string> policies = {"none", "per-access",
                                         "per-cpim", "scrub"};
    std::vector<double> rates = {0.0, 1e-4, 3e-4, 1e-3, 3e-3};
    if (o.has("policy"))
        policies = {o.getString("policy", "per-access")};
    if (o.has("pshift"))
        rates = {o.getDouble("pshift", 1e-3)};

    ServiceConfig cfg;
    cfg.channels = static_cast<std::uint32_t>(o.getSize("channels", 4));
    cfg.threads = 0; // all cores; results are thread-count invariant
    cfg.banksPerChannel = 16;
    cfg.seed = 42;
    cfg.durationCycles = o.getSize("duration", 100000);
    cfg.ratePerKcycle = 16.0;

    std::printf("{\n");
    std::printf(
        "  \"bench\": \"service_fault_tolerance\",\n"
        "  \"config\": {\"channels\": %u, \"banks\": %u, "
        "\"duration_cycles\": %llu, \"seed\": %llu, "
        "\"rate_per_kcycle\": %.1f, \"mix\": \"%s\"},\n",
        cfg.channels, cfg.banksPerChannel,
        static_cast<unsigned long long>(cfg.durationCycles),
        static_cast<unsigned long long>(cfg.seed), cfg.ratePerKcycle,
        cfg.mix.describe().c_str());
    std::printf("  \"sweep\": [\n");
    std::size_t total = policies.size() * rates.size();
    std::size_t done = 0;
    int rc = 0;
    for (const std::string &policy : policies) {
        bool ok = false;
        GuardPolicy gp = policyFromName(policy, ok);
        if (!ok) {
            std::fprintf(stderr, "unknown policy '%s' (none, "
                                 "per-access, per-cpim, scrub)\n",
                         policy.c_str());
            return 2;
        }
        for (double pshift : rates) {
            cfg.faults = ServiceFaultConfig{};
            cfg.faults.shiftFaultRate = pshift;
            cfg.faults.policy = gp;
            ServiceStats s = runService(cfg);
            ++done;
            printPoint(policy, pshift, s, done == total);
            // Headline guarantee: per-access guarding leaves no fault
            // unflagged, at any rate in the sweep.
            if (gp == GuardPolicy::PerAccess &&
                s.outcomes[static_cast<std::size_t>(
                    RequestOutcome::Sdc)] != 0) {
                std::fprintf(stderr,
                             "FAIL: per-access SDC at pshift=%g\n",
                             pshift);
                rc = 1;
            }
        }
    }
    std::printf("  ]\n}\n");
    return rc;
}
