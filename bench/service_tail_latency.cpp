/**
 * @file
 * Tail-latency vs offered-load sweep for the request-service layer
 * (paper Sec. V-C high-throughput mode, PIRM-style multi-operand
 * dispatch).
 *
 * For each offered load the same seeded workload is served twice —
 * with TR-gang batching on and off — and the JSON emitted on stdout
 * gives the full latency-vs-throughput curve (p50/p95/p99/p99.9)
 * plus an iso-p99 comparison: the highest throughput each
 * configuration sustains without exceeding the unbatched
 * configuration's worst p99.
 *
 * Usage: service_tail_latency [--rate R] [--duration N] [--channels C]
 *                             [--metrics-json FILE] [--trace FILE]
 *   --rate runs a single load point (CI smoke); default sweeps.
 *   --metrics-json merges every run's per-component counters into one
 *     registry, prefixed "rate<R>/batched|unbatched".  --trace records
 *     the last batched run (one full sweep of overlapping timelines
 *     would be unreadable).  Both flags add per-request bookkeeping,
 *     so leave them off when measuring simulator throughput.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "service/service_engine.hpp"
#include "util/cli_args.hpp"

using namespace coruscant;

namespace {

struct Point
{
    double rate;
    ServiceStats batched;
    ServiceStats unbatched;
};

void
printStats(const char *key, const ServiceStats &s, bool last)
{
    std::printf(
        "      \"%s\": {\"throughput_per_kcycle\": %.3f, "
        "\"completed\": %llu, \"rejected\": %llu, "
        "\"mean\": %.2f, \"p50\": %llu, \"p95\": %llu, "
        "\"p99\": %llu, \"p999\": %llu, \"max\": %llu, "
        "\"mean_gang_size\": %.2f, \"bus_util\": %.4f, "
        "\"bank_util\": %.4f, \"energy_pj\": %.1f}%s\n",
        key, s.throughputPerKcycle(),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.rejected), s.latency.mean(),
        static_cast<unsigned long long>(s.latency.p50()),
        static_cast<unsigned long long>(s.latency.p95()),
        static_cast<unsigned long long>(s.latency.p99()),
        static_cast<unsigned long long>(s.latency.p999()),
        static_cast<unsigned long long>(s.latency.max()),
        s.batch.meanGangSize(), s.busUtilization, s.bankUtilization,
        s.energyPj, last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    ParsedArgs o = parseArgs(
        std::vector<std::string>(argv + 1, argv + argc),
        {{"rate", ArgType::Double},
         {"duration", ArgType::Size},
         {"channels", ArgType::Size},
         {"metrics-json", ArgType::String},
         {"trace", ArgType::String}});
    if (!o.ok()) {
        std::fprintf(stderr, "error: %s\n", o.error().c_str());
        return 2;
    }
    std::vector<double> rates = {50, 100, 200, 300, 400, 600, 800};
    if (o.has("rate"))
        rates = {o.getDouble("rate", 0.0)};
    std::uint64_t duration = o.getSize("duration", 100000);
    std::uint32_t channels =
        static_cast<std::uint32_t>(o.getSize("channels", 4));
    bool want_metrics = o.has("metrics-json");
    bool want_trace = o.has("trace");

    ServiceConfig cfg;
    cfg.channels = channels;
    cfg.threads = 0; // all cores; results are thread-count invariant
    cfg.banksPerChannel = 16;
    cfg.seed = 42;
    cfg.durationCycles = duration;
    // Bitmap-index serving: bulk-bitwise folds dominate, concentrated
    // on hot accumulator groups — the workload Sec. V-C batches.
    cfg.mix = WorkloadMix::parse("bulk:0.9,read:0.05,write:0.05");

    obs::MetricsRegistry merged;
    obs::TraceSink trace;
    cfg.collectMetrics = want_metrics;
    std::vector<Point> sweep;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        double rate = rates[i];
        Point p;
        p.rate = rate;
        cfg.ratePerKcycle = rate;
        cfg.batching = true;
        cfg.collectTrace = want_trace && i + 1 == rates.size();
        p.batched = runService(cfg);
        cfg.batching = false;
        cfg.collectTrace = false;
        p.unbatched = runService(cfg);
        if (want_metrics) {
            char prefix[64];
            std::snprintf(prefix, sizeof prefix, "rate%g", rate);
            merged.mergePrefixed(p.batched.metrics,
                                 std::string(prefix) + "/batched");
            merged.mergePrefixed(p.unbatched.metrics,
                                 std::string(prefix) + "/unbatched");
        }
        if (want_trace && i + 1 == rates.size())
            trace.append(p.batched.trace);
        sweep.push_back(std::move(p));
    }

    // Iso-p99: cap at the unbatched configuration's worst tail and
    // report the best throughput each mode sustains under that cap.
    std::uint64_t target_p99 = 0;
    for (const Point &p : sweep)
        target_p99 = std::max(target_p99, p.unbatched.latency.p99());
    double best_batched = 0, best_unbatched = 0;
    for (const Point &p : sweep) {
        if (p.batched.latency.p99() <= target_p99)
            best_batched = std::max(
                best_batched, p.batched.throughputPerKcycle());
        if (p.unbatched.latency.p99() <= target_p99)
            best_unbatched = std::max(
                best_unbatched, p.unbatched.throughputPerKcycle());
    }

    std::printf("{\n");
    std::printf(
        "  \"bench\": \"service_tail_latency\",\n"
        "  \"config\": {\"channels\": %u, \"banks\": %u, "
        "\"duration_cycles\": %llu, \"seed\": %llu, \"trd\": %zu, "
        "\"mix\": \"%s\", \"batch_window\": %llu, \"queue_cap\": %zu, "
        "\"hot_groups\": %u},\n",
        cfg.channels, cfg.banksPerChannel,
        static_cast<unsigned long long>(cfg.durationCycles),
        static_cast<unsigned long long>(cfg.seed), cfg.trd,
        cfg.mix.describe().c_str(),
        static_cast<unsigned long long>(cfg.batchWindowCycles),
        cfg.queueCapacity, cfg.bulkHotGroups);
    std::printf("  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        std::printf("    {\"rate_per_kcycle\": %.1f,\n",
                    sweep[i].rate);
        printStats("batched", sweep[i].batched, false);
        printStats("unbatched", sweep[i].unbatched, true);
        std::printf("    }%s\n",
                    i + 1 < sweep.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"iso_p99\": {\"target_p99_cycles\": %llu, "
        "\"batched_max_throughput\": %.3f, "
        "\"unbatched_max_throughput\": %.3f}\n",
        static_cast<unsigned long long>(target_p99), best_batched,
        best_unbatched);
    std::printf("}\n");

    if (want_metrics) {
        std::ofstream os(o.getString("metrics-json", ""));
        if (os)
            os << merged.toJson();
        if (!os) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         o.getString("metrics-json", "").c_str());
            return 1;
        }
    }
    if (want_trace) {
        std::ofstream os(o.getString("trace", ""));
        if (os)
            trace.writeJson(os);
        if (!os) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         o.getString("trace", "").c_str());
            return 1;
        }
    }
    return 0;
}
