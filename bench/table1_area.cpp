/**
 * @file
 * Regenerates paper Table I: PIM area overhead vs. base DWM main
 * memory, one tile per subarray PIM-enabled ("1-PIM").
 */

#include "bench_util.hpp"
#include "dwm/area_model.hpp"

using namespace coruscant;

int
main()
{
    bench::header("Table I: PIM area overhead vs base DWM main memory "
                  "(1-PIM)");
    AreaModel model;
    bench::row("ADD2 (TRD=3 two-op adder)",
               100 * model.memoryOverheadFraction(PimFeatureSet::add2()),
               3.7, "%");
    bench::row("ADD5 (TRD=7 five-op adder)",
               100 * model.memoryOverheadFraction(PimFeatureSet::add5()),
               9.2, "%");
    bench::row(
        "MUL+ADD5",
        100 * model.memoryOverheadFraction(PimFeatureSet::mulAdd5()),
        9.4, "%");
    bench::row(
        "MUL+ADD5+BBO (full ISA)",
        100 * model.memoryOverheadFraction(PimFeatureSet::mulAdd5Bbo()),
        10.0, "%");

    bench::subheader("model internals");
    bench::rowPlain("baseline DBC area", model.baselineDbcAreaUm2(),
                    "um^2");
    bench::rowPlain("PIM extra per DBC (full ISA)",
                    model.pimExtraAreaUm2(PimFeatureSet::mulAdd5Bbo()),
                    "um^2");
    bench::rowPlain("baseline overhead domains/wire",
                    static_cast<double>(model.baselineOverheadDomains()));
    bench::rowPlain("PIM overhead domains/wire (TRD=7)",
                    static_cast<double>(model.pimOverheadDomains(7)));
    return 0;
}
