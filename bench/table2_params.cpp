/**
 * @file
 * Prints paper Table II: the DWM system parameters this reproduction
 * is configured with.
 */

#include "arch/config.hpp"
#include "bench_util.hpp"

using namespace coruscant;

int
main()
{
    bench::header("Table II: DWM system parameters");
    MemoryConfig cfg;
    bench::row("Memory size (GB)",
               static_cast<double>(cfg.capacityBytes()) / (1 << 30), 1.0);
    bench::row("Number of banks", static_cast<double>(cfg.banks), 32);
    bench::row("Subarrays per bank",
               static_cast<double>(cfg.subarraysPerBank), 64);
    bench::row("Tiles per subarray",
               static_cast<double>(cfg.tilesPerSubarray), 16);
    bench::row("DBCs per tile (15 + 1-PIM)",
               static_cast<double>(cfg.dbcsPerTile), 16);
    bench::row("Memory cycle (ns)", cfg.bus.cycleNs, 1.25);
    bench::row("Bus speed (MHz)", 1000.0 / cfg.bus.cycleNs / 0.8, 1000);

    bench::subheader("timing (cycles)");
    auto dram = DdrTiming::dram();
    auto dwm = cfg.dwmTiming;
    std::printf("  DRAM tRAS-tRCD-tRP-tCAS-tWR : %u-%u-%u-%u-%u "
                "(paper: 20-8-8-8-8)\n",
                dram.tRas, dram.tRcd, dram.tRp, dram.tCas, dram.tWr);
    std::printf("  DWM  tRAS-tRCD-S-tCAS-tWR   : %u-%u-S-%u-%u "
                "(paper: 9-4-S-4-4)\n",
                dwm.tRas, dwm.tRcd, dwm.tCas, dwm.tWr);

    bench::subheader("energy constants (paper Table II)");
    bench::row("add 32-bit CPU (pJ/op)", 111.0, 111.0);
    bench::row("mult 32-bit CPU (pJ/op)", 164.0, 164.0);
    bench::row("E_trans (pJ/Byte)", 1250.0, 1250.0);

    bench::subheader("derived PIM geometry");
    bench::rowPlain("total DBCs", static_cast<double>(cfg.totalDbcs()));
    bench::rowPlain("PIM-enabled DBCs",
                    static_cast<double>(cfg.totalPimDbcs()));
    bench::rowPlain("domains per nanowire (TRD=7)",
                    static_cast<double>(cfg.device.totalDomains()));
    return 0;
}
