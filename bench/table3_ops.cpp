/**
 * @file
 * Regenerates paper Table III: 8-bit operation comparison of
 * CORUSCANT (TRD in {3,7}) against DW-NN and SPIM — speed (cycles),
 * energy (pJ), and processing-element area (um^2) — plus the derived
 * headline speedup/energy claims of Sec. V-B.
 */

#include "baselines/dwm_pim_baselines.hpp"
#include "bench_util.hpp"
#include "core/op_cost.hpp"
#include "dwm/area_model.hpp"

using namespace coruscant;

int
main()
{
    bench::header("Table III: operation comparison (8-bit operands)");

    CoruscantCostModel c3(3), c5(5), c7(7);
    auto dwnn = DwmPimBaseline::dwNn();
    auto spim = DwmPimBaseline::spim();

    bench::subheader("CORUSCANT speed (cycles)");
    bench::row("2-op add (TR=3)", c3.add(2, 8).cycles, 19);
    bench::row("2-op add (TR=7)", c7.add(2, 8).cycles, 26);
    bench::row("5-op add (TR=7)", c7.add(5, 8).cycles, 26);
    bench::row("mult (TR=3)", c3.multiply(8).cycles, 105);
    bench::row("mult (TR=5)  [not in paper table]",
               c5.multiply(8).cycles, -1);
    bench::row("mult (TR=7)", c7.multiply(8).cycles, 64);

    bench::subheader("CORUSCANT energy (pJ)");
    bench::row("2-op add (TR=3)", c3.add(2, 8).energyPj, 10.15);
    bench::row("2-op add (TR=7)", c7.add(2, 8).energyPj, 22.14);
    bench::row("5-op add (TR=7)", c7.add(5, 8).energyPj, 22.14);
    bench::row("mult (TR=3)", c3.multiply(8).energyPj, 92.01);
    bench::row("mult (TR=7)", c7.multiply(8).energyPj, 57.39);

    bench::subheader("CORUSCANT area (um^2)");
    bench::row("2-op add (TR=3)", AreaModel::peAreaUm2(3, 2, false),
               2.16);
    bench::row("2-op add (TR=7)", AreaModel::peAreaUm2(7, 2, false),
               3.60);
    bench::row("5-op add (TR=7)", AreaModel::peAreaUm2(7, 5, false),
               4.94);
    bench::row("mult (TR=3)", AreaModel::peAreaUm2(3, 2, true), 3.80);
    bench::row("mult (TR=7)", AreaModel::peAreaUm2(7, 5, true), 5.07);

    bench::subheader("DW-NN (published-cost-calibrated)");
    bench::row("2-op add cycles", dwnn.addCost(8).cycles, 54);
    bench::row("5-op add cycles (area opt.)",
               dwnn.addCost(5, 8, ComposeMode::AreaOptimized).cycles,
               264);
    bench::row("5-op add cycles (lat. opt.)",
               dwnn.addCost(5, 8, ComposeMode::LatencyOptimized).cycles,
               194);
    bench::row("2-op mult cycles", dwnn.multiplyCost(8).cycles, 163);
    bench::row("2-op add energy (pJ)", dwnn.addCost(8).energyPj, 40);
    bench::row("2-op mult energy (pJ)", dwnn.multiplyCost(8).energyPj,
               308);

    bench::subheader("SPIM (published-cost-calibrated)");
    bench::row("2-op add cycles", spim.addCost(8).cycles, 49);
    bench::row("5-op add cycles (area opt.)",
               spim.addCost(5, 8, ComposeMode::AreaOptimized).cycles,
               244);
    bench::row("5-op add cycles (lat. opt.)",
               spim.addCost(5, 8, ComposeMode::LatencyOptimized).cycles,
               179);
    bench::row("2-op mult cycles", spim.multiplyCost(8).cycles, 149);
    bench::row("2-op add energy (pJ)", spim.addCost(8).energyPj, 28);
    bench::row("2-op mult energy (pJ)", spim.multiplyCost(8).energyPj,
               196);

    bench::subheader("Sec. V-B headline ratios vs SPIM (speed)");
    auto ratio = [](double a, double b) { return a / b; };
    bench::row("2-op add speedup",
               ratio(spim.addCost(8).cycles, c7.add(2, 8).cycles), 1.9);
    bench::row(
        "5-op add speedup (area opt.)",
        ratio(spim.addCost(5, 8, ComposeMode::AreaOptimized).cycles,
              c7.add(5, 8).cycles),
        9.4);
    bench::row(
        "5-op add speedup (lat. opt.)",
        ratio(spim.addCost(5, 8, ComposeMode::LatencyOptimized).cycles,
              c7.add(5, 8).cycles),
        6.9);
    bench::row("2-op mult speedup",
               ratio(spim.multiplyCost(8).cycles,
                     c7.multiply(8).cycles),
               2.3);

    bench::subheader("Sec. V-B headline ratios vs SPIM (energy)");
    bench::row("2-op add energy gain (TRD=3 adder)",
               spim.addCost(8).energyPj / c3.add(2, 8).energyPj, 2.2);
    bench::row(
        "5-op add energy gain",
        spim.addCost(5, 8, ComposeMode::AreaOptimized).energyPj /
            c7.add(5, 8).energyPj,
        5.5);
    bench::row("2-op mult energy gain",
               spim.multiplyCost(8).energyPj / c7.multiply(8).energyPj,
               3.4);
    return 0;
}
