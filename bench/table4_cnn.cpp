/**
 * @file
 * Regenerates paper Table IV: CNN inference throughput (FPS) for
 * AlexNet and LeNet-5 across SPIM, ISAAC, Ambit, ELP2IM, and
 * CORUSCANT-{3,5,7} in full-precision, ternary (DrAcc), and binary
 * (NID) modes.
 */

#include <map>
#include <string>

#include "apps/cnn/throughput_model.hpp"
#include "bench_util.hpp"

using namespace coruscant;

namespace {

/** Published Table IV values, keyed by net/mode/scheme. */
double
paperFps(const std::string &net, CnnMode mode, CnnScheme s)
{
    using M = CnnMode;
    using S = CnnScheme;
    static const std::map<std::tuple<std::string, M, S>, double> table =
        {
            {{"alexnet", M::FullPrecision, S::Spim}, 32.1},
            {{"alexnet", M::FullPrecision, S::Coruscant3}, 71.1},
            {{"alexnet", M::FullPrecision, S::Coruscant5}, 84.0},
            {{"alexnet", M::FullPrecision, S::Coruscant7}, 90.5},
            {{"alexnet", M::FullPrecision, S::Isaac}, 34.0},
            {{"lenet5", M::FullPrecision, S::Spim}, 59.0},
            {{"lenet5", M::FullPrecision, S::Coruscant3}, 131.0},
            {{"lenet5", M::FullPrecision, S::Coruscant5}, 153.0},
            {{"lenet5", M::FullPrecision, S::Coruscant7}, 163.0},
            {{"lenet5", M::FullPrecision, S::Isaac}, 2581.0},
            {{"alexnet", M::TernaryWeight, S::Ambit}, 84.8},
            {{"alexnet", M::TernaryWeight, S::Elp2Im}, 96.4},
            {{"alexnet", M::TernaryWeight, S::Coruscant3}, 358.0},
            {{"alexnet", M::TernaryWeight, S::Coruscant5}, 449.0},
            {{"alexnet", M::TernaryWeight, S::Coruscant7}, 490.0},
            {{"lenet5", M::TernaryWeight, S::Ambit}, 7697.0},
            {{"lenet5", M::TernaryWeight, S::Elp2Im}, 8330.0},
            {{"lenet5", M::TernaryWeight, S::Coruscant3}, 22172.0},
            {{"lenet5", M::TernaryWeight, S::Coruscant5}, 26453.0},
            {{"lenet5", M::TernaryWeight, S::Coruscant7}, 32075.0},
            {{"alexnet", M::BinaryWeight, S::Ambit}, 227.0},
            {{"alexnet", M::BinaryWeight, S::Elp2Im}, 253.0},
            {{"lenet5", M::BinaryWeight, S::Ambit}, 7525.0},
            {{"lenet5", M::BinaryWeight, S::Elp2Im}, 9959.0},
        };
    auto it = table.find({net, mode, s});
    return it == table.end() ? -1.0 : it->second;
}

} // namespace

int
main()
{
    bench::header("Table IV: CNN application comparison (FPS)");
    CnnThroughputModel model;

    for (const auto &net :
         {CnnNetwork::alexnet(), CnnNetwork::lenet5()}) {
        std::printf("\n### %s (%.1fM MACs, %.1fM reduction adds)\n",
                    net.name.c_str(),
                    static_cast<double>(net.totalMacs()) / 1e6,
                    static_cast<double>(net.totalReductionAdds()) /
                        1e6);
        for (auto mode :
             {CnnMode::FullPrecision, CnnMode::TernaryWeight,
              CnnMode::BinaryWeight}) {
            bench::subheader(std::string(net.name) + " — " +
                             cnnModeName(mode));
            for (const auto &cell : model.table(net, mode)) {
                bench::row(cnnSchemeName(cell.scheme), cell.fps,
                           paperFps(net.name, mode, cell.scheme),
                           "FPS");
            }
        }
    }

    bench::subheader("speedup summary (AlexNet)");
    auto alex = CnnNetwork::alexnet();
    double c3t = model.fps(alex, CnnScheme::Coruscant3,
                           CnnMode::TernaryWeight);
    bench::row("CORUSCANT-3 TWN / ELP2IM TWN",
               c3t / model.fps(alex, CnnScheme::Elp2Im,
                               CnnMode::TernaryWeight),
               3.7, "x");
    bench::row("CORUSCANT-3 TWN / Ambit TWN",
               c3t / model.fps(alex, CnnScheme::Ambit,
                               CnnMode::TernaryWeight),
               4.2, "x");
    bench::row("CORUSCANT-7 FP / SPIM FP",
               model.fps(alex, CnnScheme::Coruscant7,
                         CnnMode::FullPrecision) /
                   model.fps(alex, CnnScheme::Spim,
                             CnnMode::FullPrecision),
               2.8, "x");
    return 0;
}
