/**
 * @file
 * Regenerates paper Table V: operation reliability — per-bit and
 * per-operation error probabilities at the intrinsic TR fault rate of
 * 1e-6, plus N-modular-redundancy rates — and cross-validates the
 * analytical model with Monte-Carlo fault injection at an elevated
 * rate.
 */

#include "bench_util.hpp"
#include "reliability/error_model.hpp"
#include "reliability/fault_campaign.hpp"

using namespace coruscant;

int
main()
{
    bench::header("Table V: operation reliability (p_TR = 1e-6)");

    TrErrorModel m3(3), m5(5), m7(7);

    bench::subheader("per-bit error probability");
    bench::row("AND/OR/C'  C3", m3.perBitOrAndSuperCarry(), 3.3e-7);
    bench::row("AND/OR/C'  C5", m5.perBitOrAndSuperCarry(), 2.0e-7);
    bench::row("AND/OR/C'  C7", m7.perBitOrAndSuperCarry(), 1.4e-7);
    bench::row("XOR        C3", m3.perBitXor(), 1.0e-6);
    bench::row("XOR        C7", m7.perBitXor(), 1.0e-6);
    bench::row("C          C3", m3.perBitCarry(), 3.3e-7);
    bench::row("C          C5", m5.perBitCarry(), 4.0e-7);
    bench::row("C          C7", m7.perBitCarry(), 4.3e-7);

    bench::subheader("per-operation error probability (8-bit)");
    bench::row("add        C3", m3.addError(8), 8.0e-6);
    bench::row("add        C7", m7.addError(8), 8.0e-6);
    bench::row("multiply   C3", m3.multiplyError(8), 4.1e-4);
    bench::row("multiply   C5", m5.multiplyError(8), 2.1e-4);
    bench::row("multiply   C7", m7.multiplyError(8), 7.6e-5);

    bench::subheader("N-modular redundancy (8-bit, C7 device)");
    bench::row("add  N=3", m7.nmrAddError(3, 8), 4.8e-12);
    bench::row("add  N=5", m7.nmrAddError(5, 8), 4.6e-18);
    bench::row("add  N=7", m7.nmrAddError(7, 8), 5.0e-24);
    bench::row("mult N=3", m7.nmrMultiplyError(3, 8), 4.9e-12);
    bench::row("mult N=5", m7.nmrMultiplyError(5, 8), 4.7e-18);
    bench::row("mult N=7", m7.nmrMultiplyError(7, 8), 6.1e-23);
    bench::row("XOR  N=3 (per 8-bit)",
               m7.nmrError(m7.perBitXor(), 3, 8), 8.7e-14);
    bench::row("AND  N=3 (per 8-bit)",
               m7.nmrError(m7.perBitOrAndSuperCarry(), 3, 8), 1.8e-15);

    bench::subheader(
        "Monte-Carlo cross-validation (elevated p_TR = 1e-3)");
    auto add = FaultCampaign::addCampaign(7, 8, 1e-3, 50000, 42);
    bench::row("add empirical rate", add.empiricalRate(),
               add.analyticalRate);
    auto xor_c = FaultCampaign::bulkCampaign(BulkOp::Xor, 7, 4, 1e-3,
                                             10000, 42);
    bench::row("XOR per-bit empirical rate", xor_c.empiricalRate(),
               xor_c.analyticalRate);
    auto or_c = FaultCampaign::bulkCampaign(BulkOp::Or, 7, 4, 1e-3,
                                            10000, 42);
    bench::row("OR per-bit empirical rate", or_c.empiricalRate(),
               or_c.analyticalRate);
    auto mul = FaultCampaign::multiplyCampaign(7, 8, 1e-4, 20000, 42);
    bench::row("multiply empirical rate", mul.empiricalRate(),
               mul.analyticalRate);
    return 0;
}
