/**
 * @file
 * Regenerates paper Table V: operation reliability — per-bit and
 * per-operation error probabilities at the intrinsic TR fault rate of
 * 1e-6, plus N-modular-redundancy rates — and cross-validates the
 * analytical model with Monte-Carlo fault injection at an elevated
 * rate.
 *
 * Emits the same machine-readable JSON schema as the service_* sweeps
 * (one top-level object, one array of measured-vs-reference points),
 * so the BENCH trajectory and CI artifacts can diff it structurally.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "reliability/error_model.hpp"
#include "reliability/fault_campaign.hpp"

using namespace coruscant;

namespace {

struct Row
{
    std::string section;
    std::string label;
    double measured;
    double paper; ///< < 0 when the paper states no reference value
};

void
printRows(const std::vector<Row> &rows)
{
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf("    {\"section\": \"%s\", \"label\": \"%s\", "
                    "\"measured\": %.6g",
                    r.section.c_str(), r.label.c_str(), r.measured);
        if (r.paper > 0)
            std::printf(", \"paper\": %.6g, \"deviation_pct\": %.2f",
                        r.paper,
                        100.0 * (r.measured - r.paper) / r.paper);
        std::printf("}%s\n", i + 1 == rows.size() ? "" : ",");
    }
}

} // namespace

int
main()
{
    TrErrorModel m3(3), m5(5), m7(7);

    std::vector<Row> rows = {
        {"per_bit", "and_or_supercarry_c3", m3.perBitOrAndSuperCarry(),
         3.3e-7},
        {"per_bit", "and_or_supercarry_c5", m5.perBitOrAndSuperCarry(),
         2.0e-7},
        {"per_bit", "and_or_supercarry_c7", m7.perBitOrAndSuperCarry(),
         1.4e-7},
        {"per_bit", "xor_c3", m3.perBitXor(), 1.0e-6},
        {"per_bit", "xor_c7", m7.perBitXor(), 1.0e-6},
        {"per_bit", "carry_c3", m3.perBitCarry(), 3.3e-7},
        {"per_bit", "carry_c5", m5.perBitCarry(), 4.0e-7},
        {"per_bit", "carry_c7", m7.perBitCarry(), 4.3e-7},
        {"per_op_8bit", "add_c3", m3.addError(8), 8.0e-6},
        {"per_op_8bit", "add_c7", m7.addError(8), 8.0e-6},
        {"per_op_8bit", "multiply_c3", m3.multiplyError(8), 4.1e-4},
        {"per_op_8bit", "multiply_c5", m5.multiplyError(8), 2.1e-4},
        {"per_op_8bit", "multiply_c7", m7.multiplyError(8), 7.6e-5},
        {"nmr_8bit_c7", "add_n3", m7.nmrAddError(3, 8), 4.8e-12},
        {"nmr_8bit_c7", "add_n5", m7.nmrAddError(5, 8), 4.6e-18},
        {"nmr_8bit_c7", "add_n7", m7.nmrAddError(7, 8), 5.0e-24},
        {"nmr_8bit_c7", "mult_n3", m7.nmrMultiplyError(3, 8), 4.9e-12},
        {"nmr_8bit_c7", "mult_n5", m7.nmrMultiplyError(5, 8), 4.7e-18},
        {"nmr_8bit_c7", "mult_n7", m7.nmrMultiplyError(7, 8), 6.1e-23},
        {"nmr_8bit_c7", "xor_n3", m7.nmrError(m7.perBitXor(), 3, 8),
         8.7e-14},
        {"nmr_8bit_c7", "and_n3",
         m7.nmrError(m7.perBitOrAndSuperCarry(), 3, 8), 1.8e-15},
    };

    // Monte-Carlo cross-validation at an elevated rate: the reference
    // for each empirical rate is the analytical model at that rate.
    auto add = FaultCampaign::addCampaign(7, 8, 1e-3, 50000, 42);
    rows.push_back({"cross_validation_p1e-3", "add_empirical",
                    add.empiricalRate(), add.analyticalRate});
    auto xor_c =
        FaultCampaign::bulkCampaign(BulkOp::Xor, 7, 4, 1e-3, 10000, 42);
    rows.push_back({"cross_validation_p1e-3", "xor_per_bit_empirical",
                    xor_c.empiricalRate(), xor_c.analyticalRate});
    auto or_c =
        FaultCampaign::bulkCampaign(BulkOp::Or, 7, 4, 1e-3, 10000, 42);
    rows.push_back({"cross_validation_p1e-3", "or_per_bit_empirical",
                    or_c.empiricalRate(), or_c.analyticalRate});
    auto mul = FaultCampaign::multiplyCampaign(7, 8, 1e-4, 20000, 42);
    rows.push_back({"cross_validation_p1e-4", "multiply_empirical",
                    mul.empiricalRate(), mul.analyticalRate});

    std::printf("{\n");
    std::printf("  \"bench\": \"table5_reliability\",\n"
                "  \"config\": {\"p_tr\": 1e-6, "
                "\"cross_validation_trials\": 50000},\n");
    std::printf("  \"rows\": [\n");
    printRows(rows);
    std::printf("  ]\n}\n");
    return 0;
}
