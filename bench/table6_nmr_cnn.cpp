/**
 * @file
 * Regenerates paper Table VI: CORUSCANT CNN throughput under
 * N-modular redundancy (N in {3,5,7}).
 */

#include "apps/cnn/throughput_model.hpp"
#include "bench_util.hpp"

using namespace coruscant;

namespace {

struct PaperCell
{
    CnnScheme scheme;
    std::size_t n;
    double alexFp, lenetTwnOrFp;
};

} // namespace

int
main()
{
    bench::header("Table VI: CORUSCANT CNN with N-modulo redundancy");
    CnnThroughputModel model;
    auto alex = CnnNetwork::alexnet();
    auto lenet = CnnNetwork::lenet5();

    bench::subheader("AlexNet full precision (FPS)");
    bench::row("N=3 C3",
               model.fpsWithNmr(alex, CnnScheme::Coruscant3,
                                CnnMode::FullPrecision, 3),
               17.7);
    bench::row("N=3 C5",
               model.fpsWithNmr(alex, CnnScheme::Coruscant5,
                                CnnMode::FullPrecision, 3),
               26.9);
    bench::row("N=3 C7",
               model.fpsWithNmr(alex, CnnScheme::Coruscant7,
                                CnnMode::FullPrecision, 3),
               29.0);
    bench::row("N=5 C5",
               model.fpsWithNmr(alex, CnnScheme::Coruscant5,
                                CnnMode::FullPrecision, 5),
               16.2);
    bench::row("N=5 C7",
               model.fpsWithNmr(alex, CnnScheme::Coruscant7,
                                CnnMode::FullPrecision, 5),
               17.5);
    bench::row("N=7 C7",
               model.fpsWithNmr(alex, CnnScheme::Coruscant7,
                                CnnMode::FullPrecision, 7),
               12.5);

    bench::subheader("AlexNet ternary (FPS)");
    bench::row("N=3 C3",
               model.fpsWithNmr(alex, CnnScheme::Coruscant3,
                                CnnMode::TernaryWeight, 3),
               90.2);
    bench::row("N=3 C5",
               model.fpsWithNmr(alex, CnnScheme::Coruscant5,
                                CnnMode::TernaryWeight, 3),
               134.8);
    bench::row("N=3 C7",
               model.fpsWithNmr(alex, CnnScheme::Coruscant7,
                                CnnMode::TernaryWeight, 3),
               155.8);
    bench::row("N=5 C5",
               model.fpsWithNmr(alex, CnnScheme::Coruscant5,
                                CnnMode::TernaryWeight, 5),
               81.1);
    bench::row("N=5 C7",
               model.fpsWithNmr(alex, CnnScheme::Coruscant7,
                                CnnMode::TernaryWeight, 5),
               93.7);
    bench::row("N=7 C7",
               model.fpsWithNmr(alex, CnnScheme::Coruscant7,
                                CnnMode::TernaryWeight, 7),
               67.0);

    bench::subheader("LeNet-5 ternary (FPS)");
    bench::row("N=3 C3",
               model.fpsWithNmr(lenet, CnnScheme::Coruscant3,
                                CnnMode::TernaryWeight, 3),
               5907.0);
    bench::row("N=3 C5",
               model.fpsWithNmr(lenet, CnnScheme::Coruscant5,
                                CnnMode::TernaryWeight, 3),
               8074.0);
    bench::row("N=3 C7",
               model.fpsWithNmr(lenet, CnnScheme::Coruscant7,
                                CnnMode::TernaryWeight, 3),
               9862.0);
    bench::row("N=7 C7",
               model.fpsWithNmr(lenet, CnnScheme::Coruscant7,
                                CnnMode::TernaryWeight, 7),
               4253.0);

    bench::subheader("Sec. V-F: ISO-area TMR vs DRAM PIM without FT "
                     "(ternary AlexNet)");
    double tmr = model.fpsWithNmr(alex, CnnScheme::Coruscant7,
                                  CnnMode::TernaryWeight, 3);
    bench::row("TMR C7 / Ambit (no FT)",
               tmr / model.fps(alex, CnnScheme::Ambit,
                               CnnMode::TernaryWeight),
               1.83, "x");
    bench::row("TMR C7 / ELP2IM (no FT)",
               tmr / model.fps(alex, CnnScheme::Elp2Im,
                               CnnMode::TernaryWeight),
               1.62, "x");
    return 0;
}
