/**
 * @file
 * End-to-end shift-fault tolerance: protected vs unprotected campaign
 * at elevated shifting-fault rates (extends the paper's Sec. V-F
 * reliability story from TR faults to the shifting faults of
 * Sec. II-A).  Each row is one 1000-trial controller campaign; the
 * DUE/SDC taxonomy and coverage are defined in
 * src/reliability/fault_campaign.hpp.
 */

#include "bench_util.hpp"
#include "reliability/fault_campaign.hpp"

using namespace coruscant;

namespace {

void
runRow(const char *label, GuardPolicy policy, double p_shift,
       std::size_t retire_threshold = 0)
{
    ControllerCampaignConfig cfg;
    cfg.policy = policy;
    cfg.shiftFaultRate = p_shift;
    cfg.trials = 1000;
    cfg.seed = 42;
    cfg.retireThreshold = retire_threshold;
    auto r = FaultCampaign::controllerCampaign(cfg);
    std::printf("  %-26s %6llu %9llu %5llu %5llu %9.4f %9.4g %7llu\n",
                label,
                static_cast<unsigned long long>(r.clean),
                static_cast<unsigned long long>(r.corrected),
                static_cast<unsigned long long>(r.due),
                static_cast<unsigned long long>(r.sdc),
                r.coverage(), r.sdcRate(),
                static_cast<unsigned long long>(r.retiredDbcs));
}

} // namespace

int
main()
{
    bench::header(
        "Shift-fault tolerance: protected vs unprotected campaigns");
    std::printf("  %-26s %6s %9s %5s %5s %9s %9s %7s\n", "policy",
                "clean", "corrected", "DUE", "SDC", "coverage",
                "SDCrate", "retired");

    bench::subheader("p_shift = 1e-3 per pulse (1000 trials)");
    runRow("unprotected", GuardPolicy::None, 1e-3);
    runRow("guard per access", GuardPolicy::PerAccess, 1e-3);
    runRow("guard per cpim", GuardPolicy::PerCpim, 1e-3);
    runRow("periodic scrub", GuardPolicy::PeriodicScrub, 1e-3);

    bench::subheader("p_shift = 5e-3 per pulse (1000 trials)");
    runRow("unprotected", GuardPolicy::None, 5e-3);
    runRow("guard per access", GuardPolicy::PerAccess, 5e-3);
    runRow("per access + retire@4", GuardPolicy::PerAccess, 5e-3, 4);
    return 0;
}
