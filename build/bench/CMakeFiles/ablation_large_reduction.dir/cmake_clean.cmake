file(REMOVE_RECURSE
  "CMakeFiles/ablation_large_reduction.dir/ablation_large_reduction.cpp.o"
  "CMakeFiles/ablation_large_reduction.dir/ablation_large_reduction.cpp.o.d"
  "ablation_large_reduction"
  "ablation_large_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_large_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
