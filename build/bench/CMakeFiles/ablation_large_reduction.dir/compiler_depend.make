# Empty compiler generated dependencies file for ablation_large_reduction.
# This may be replaced when dependencies are built.
