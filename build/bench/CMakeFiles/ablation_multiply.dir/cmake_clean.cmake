file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiply.dir/ablation_multiply.cpp.o"
  "CMakeFiles/ablation_multiply.dir/ablation_multiply.cpp.o.d"
  "ablation_multiply"
  "ablation_multiply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
