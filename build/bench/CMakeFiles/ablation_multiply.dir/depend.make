# Empty dependencies file for ablation_multiply.
# This may be replaced when dependencies are built.
