file(REMOVE_RECURSE
  "CMakeFiles/ablation_trd_blocksize.dir/ablation_trd_blocksize.cpp.o"
  "CMakeFiles/ablation_trd_blocksize.dir/ablation_trd_blocksize.cpp.o.d"
  "ablation_trd_blocksize"
  "ablation_trd_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trd_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
