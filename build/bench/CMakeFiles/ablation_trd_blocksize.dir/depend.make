# Empty dependencies file for ablation_trd_blocksize.
# This may be replaced when dependencies are built.
