file(REMOVE_RECURSE
  "CMakeFiles/ablation_tw_max.dir/ablation_tw_max.cpp.o"
  "CMakeFiles/ablation_tw_max.dir/ablation_tw_max.cpp.o.d"
  "ablation_tw_max"
  "ablation_tw_max.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tw_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
