# Empty dependencies file for ablation_tw_max.
# This may be replaced when dependencies are built.
