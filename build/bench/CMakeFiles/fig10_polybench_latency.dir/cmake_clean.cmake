file(REMOVE_RECURSE
  "CMakeFiles/fig10_polybench_latency.dir/fig10_polybench_latency.cpp.o"
  "CMakeFiles/fig10_polybench_latency.dir/fig10_polybench_latency.cpp.o.d"
  "fig10_polybench_latency"
  "fig10_polybench_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_polybench_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
