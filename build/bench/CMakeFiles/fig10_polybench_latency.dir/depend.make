# Empty dependencies file for fig10_polybench_latency.
# This may be replaced when dependencies are built.
