file(REMOVE_RECURSE
  "CMakeFiles/fig11_polybench_energy.dir/fig11_polybench_energy.cpp.o"
  "CMakeFiles/fig11_polybench_energy.dir/fig11_polybench_energy.cpp.o.d"
  "fig11_polybench_energy"
  "fig11_polybench_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_polybench_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
