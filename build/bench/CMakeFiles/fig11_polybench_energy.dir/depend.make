# Empty dependencies file for fig11_polybench_energy.
# This may be replaced when dependencies are built.
