file(REMOVE_RECURSE
  "CMakeFiles/fig12_bitmap.dir/fig12_bitmap.cpp.o"
  "CMakeFiles/fig12_bitmap.dir/fig12_bitmap.cpp.o.d"
  "fig12_bitmap"
  "fig12_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
