# Empty dependencies file for fig12_bitmap.
# This may be replaced when dependencies are built.
