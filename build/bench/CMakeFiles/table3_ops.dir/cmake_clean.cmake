file(REMOVE_RECURSE
  "CMakeFiles/table3_ops.dir/table3_ops.cpp.o"
  "CMakeFiles/table3_ops.dir/table3_ops.cpp.o.d"
  "table3_ops"
  "table3_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
