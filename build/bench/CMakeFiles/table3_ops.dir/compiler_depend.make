# Empty compiler generated dependencies file for table3_ops.
# This may be replaced when dependencies are built.
