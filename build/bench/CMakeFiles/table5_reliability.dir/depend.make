# Empty dependencies file for table5_reliability.
# This may be replaced when dependencies are built.
