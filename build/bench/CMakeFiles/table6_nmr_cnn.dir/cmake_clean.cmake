file(REMOVE_RECURSE
  "CMakeFiles/table6_nmr_cnn.dir/table6_nmr_cnn.cpp.o"
  "CMakeFiles/table6_nmr_cnn.dir/table6_nmr_cnn.cpp.o.d"
  "table6_nmr_cnn"
  "table6_nmr_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_nmr_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
