# Empty compiler generated dependencies file for table6_nmr_cnn.
# This may be replaced when dependencies are built.
