file(REMOVE_RECURSE
  "CMakeFiles/example_bitmap_query.dir/bitmap_query.cpp.o"
  "CMakeFiles/example_bitmap_query.dir/bitmap_query.cpp.o.d"
  "example_bitmap_query"
  "example_bitmap_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bitmap_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
