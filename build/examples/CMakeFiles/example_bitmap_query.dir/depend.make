# Empty dependencies file for example_bitmap_query.
# This may be replaced when dependencies are built.
