file(REMOVE_RECURSE
  "CMakeFiles/example_cnn_inference.dir/cnn_inference.cpp.o"
  "CMakeFiles/example_cnn_inference.dir/cnn_inference.cpp.o.d"
  "example_cnn_inference"
  "example_cnn_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cnn_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
