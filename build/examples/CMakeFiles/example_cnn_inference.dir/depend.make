# Empty dependencies file for example_cnn_inference.
# This may be replaced when dependencies are built.
