file(REMOVE_RECURSE
  "CMakeFiles/example_matrix_math.dir/matrix_math.cpp.o"
  "CMakeFiles/example_matrix_math.dir/matrix_math.cpp.o.d"
  "example_matrix_math"
  "example_matrix_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matrix_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
