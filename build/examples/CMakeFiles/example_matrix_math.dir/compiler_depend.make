# Empty compiler generated dependencies file for example_matrix_math.
# This may be replaced when dependencies are built.
