file(REMOVE_RECURSE
  "CMakeFiles/example_reliability_explorer.dir/reliability_explorer.cpp.o"
  "CMakeFiles/example_reliability_explorer.dir/reliability_explorer.cpp.o.d"
  "example_reliability_explorer"
  "example_reliability_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_reliability_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
