# Empty dependencies file for example_reliability_explorer.
# This may be replaced when dependencies are built.
