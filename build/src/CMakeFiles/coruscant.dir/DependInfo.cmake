
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bitmap/bitmap_index.cpp" "src/CMakeFiles/coruscant.dir/apps/bitmap/bitmap_index.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/apps/bitmap/bitmap_index.cpp.o.d"
  "/root/repo/src/apps/cnn/network.cpp" "src/CMakeFiles/coruscant.dir/apps/cnn/network.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/apps/cnn/network.cpp.o.d"
  "/root/repo/src/apps/cnn/pim_executor.cpp" "src/CMakeFiles/coruscant.dir/apps/cnn/pim_executor.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/apps/cnn/pim_executor.cpp.o.d"
  "/root/repo/src/apps/cnn/quantized_ops.cpp" "src/CMakeFiles/coruscant.dir/apps/cnn/quantized_ops.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/apps/cnn/quantized_ops.cpp.o.d"
  "/root/repo/src/apps/cnn/throughput_model.cpp" "src/CMakeFiles/coruscant.dir/apps/cnn/throughput_model.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/apps/cnn/throughput_model.cpp.o.d"
  "/root/repo/src/apps/polybench/kernels.cpp" "src/CMakeFiles/coruscant.dir/apps/polybench/kernels.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/apps/polybench/kernels.cpp.o.d"
  "/root/repo/src/apps/polybench/system_model.cpp" "src/CMakeFiles/coruscant.dir/apps/polybench/system_model.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/apps/polybench/system_model.cpp.o.d"
  "/root/repo/src/arch/address.cpp" "src/CMakeFiles/coruscant.dir/arch/address.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/arch/address.cpp.o.d"
  "/root/repo/src/arch/dwm_memory.cpp" "src/CMakeFiles/coruscant.dir/arch/dwm_memory.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/arch/dwm_memory.cpp.o.d"
  "/root/repo/src/arch/trace.cpp" "src/CMakeFiles/coruscant.dir/arch/trace.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/arch/trace.cpp.o.d"
  "/root/repo/src/baselines/cpu_system.cpp" "src/CMakeFiles/coruscant.dir/baselines/cpu_system.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/baselines/cpu_system.cpp.o.d"
  "/root/repo/src/baselines/dram_adder.cpp" "src/CMakeFiles/coruscant.dir/baselines/dram_adder.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/baselines/dram_adder.cpp.o.d"
  "/root/repo/src/baselines/dram_pim.cpp" "src/CMakeFiles/coruscant.dir/baselines/dram_pim.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/baselines/dram_pim.cpp.o.d"
  "/root/repo/src/baselines/dram_subarray.cpp" "src/CMakeFiles/coruscant.dir/baselines/dram_subarray.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/baselines/dram_subarray.cpp.o.d"
  "/root/repo/src/baselines/dwm_pim_baselines.cpp" "src/CMakeFiles/coruscant.dir/baselines/dwm_pim_baselines.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/baselines/dwm_pim_baselines.cpp.o.d"
  "/root/repo/src/baselines/dwnn_device.cpp" "src/CMakeFiles/coruscant.dir/baselines/dwnn_device.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/baselines/dwnn_device.cpp.o.d"
  "/root/repo/src/baselines/pinatubo.cpp" "src/CMakeFiles/coruscant.dir/baselines/pinatubo.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/baselines/pinatubo.cpp.o.d"
  "/root/repo/src/baselines/spim_device.cpp" "src/CMakeFiles/coruscant.dir/baselines/spim_device.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/baselines/spim_device.cpp.o.d"
  "/root/repo/src/controller/cpim_isa.cpp" "src/CMakeFiles/coruscant.dir/controller/cpim_isa.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/controller/cpim_isa.cpp.o.d"
  "/root/repo/src/controller/event_sim.cpp" "src/CMakeFiles/coruscant.dir/controller/event_sim.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/controller/event_sim.cpp.o.d"
  "/root/repo/src/controller/memory_controller.cpp" "src/CMakeFiles/coruscant.dir/controller/memory_controller.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/controller/memory_controller.cpp.o.d"
  "/root/repo/src/controller/pim_program.cpp" "src/CMakeFiles/coruscant.dir/controller/pim_program.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/controller/pim_program.cpp.o.d"
  "/root/repo/src/controller/queue_model.cpp" "src/CMakeFiles/coruscant.dir/controller/queue_model.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/controller/queue_model.cpp.o.d"
  "/root/repo/src/core/coruscant_unit.cpp" "src/CMakeFiles/coruscant.dir/core/coruscant_unit.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/core/coruscant_unit.cpp.o.d"
  "/root/repo/src/core/op_cost.cpp" "src/CMakeFiles/coruscant.dir/core/op_cost.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/core/op_cost.cpp.o.d"
  "/root/repo/src/core/pim_logic.cpp" "src/CMakeFiles/coruscant.dir/core/pim_logic.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/core/pim_logic.cpp.o.d"
  "/root/repo/src/core/unit_arith.cpp" "src/CMakeFiles/coruscant.dir/core/unit_arith.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/core/unit_arith.cpp.o.d"
  "/root/repo/src/core/unit_misc.cpp" "src/CMakeFiles/coruscant.dir/core/unit_misc.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/core/unit_misc.cpp.o.d"
  "/root/repo/src/core/unit_multiply.cpp" "src/CMakeFiles/coruscant.dir/core/unit_multiply.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/core/unit_multiply.cpp.o.d"
  "/root/repo/src/dwm/alignment_guard.cpp" "src/CMakeFiles/coruscant.dir/dwm/alignment_guard.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/dwm/alignment_guard.cpp.o.d"
  "/root/repo/src/dwm/area_model.cpp" "src/CMakeFiles/coruscant.dir/dwm/area_model.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/dwm/area_model.cpp.o.d"
  "/root/repo/src/dwm/dbc.cpp" "src/CMakeFiles/coruscant.dir/dwm/dbc.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/dwm/dbc.cpp.o.d"
  "/root/repo/src/dwm/device_params.cpp" "src/CMakeFiles/coruscant.dir/dwm/device_params.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/dwm/device_params.cpp.o.d"
  "/root/repo/src/dwm/nanowire.cpp" "src/CMakeFiles/coruscant.dir/dwm/nanowire.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/dwm/nanowire.cpp.o.d"
  "/root/repo/src/reliability/error_model.cpp" "src/CMakeFiles/coruscant.dir/reliability/error_model.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/reliability/error_model.cpp.o.d"
  "/root/repo/src/reliability/fault_campaign.cpp" "src/CMakeFiles/coruscant.dir/reliability/fault_campaign.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/reliability/fault_campaign.cpp.o.d"
  "/root/repo/src/util/bit_vector.cpp" "src/CMakeFiles/coruscant.dir/util/bit_vector.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/util/bit_vector.cpp.o.d"
  "/root/repo/src/util/csd.cpp" "src/CMakeFiles/coruscant.dir/util/csd.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/util/csd.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/coruscant.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/coruscant.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
