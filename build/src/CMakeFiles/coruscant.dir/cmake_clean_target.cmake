file(REMOVE_RECURSE
  "libcoruscant.a"
)
