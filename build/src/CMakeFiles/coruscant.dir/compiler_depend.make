# Empty compiler generated dependencies file for coruscant.
# This may be replaced when dependencies are built.
