# Empty dependencies file for coruscant.
# This may be replaced when dependencies are built.
