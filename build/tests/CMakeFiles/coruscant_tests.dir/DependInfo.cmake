
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alignment_guard.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_alignment_guard.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_alignment_guard.cpp.o.d"
  "/root/repo/tests/test_area_model.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_area_model.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_area_model.cpp.o.d"
  "/root/repo/tests/test_baseline_devices.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_baseline_devices.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_baseline_devices.cpp.o.d"
  "/root/repo/tests/test_baseline_models.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_baseline_models.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_baseline_models.cpp.o.d"
  "/root/repo/tests/test_bit_vector.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_bit_vector.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_bit_vector.cpp.o.d"
  "/root/repo/tests/test_bitmap.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_bitmap.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_bitmap.cpp.o.d"
  "/root/repo/tests/test_cnn_model.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_cnn_model.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_cnn_model.cpp.o.d"
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_controller.cpp.o.d"
  "/root/repo/tests/test_csd.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_csd.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_csd.cpp.o.d"
  "/root/repo/tests/test_dbc.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_dbc.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_dbc.cpp.o.d"
  "/root/repo/tests/test_device_params.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_device_params.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_device_params.cpp.o.d"
  "/root/repo/tests/test_dram_adder.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_dram_adder.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_dram_adder.cpp.o.d"
  "/root/repo/tests/test_dram_pim.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_dram_pim.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_dram_pim.cpp.o.d"
  "/root/repo/tests/test_event_sim.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_event_sim.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_event_sim.cpp.o.d"
  "/root/repo/tests/test_exhaustive.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_exhaustive.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_nanowire.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_nanowire.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_nanowire.cpp.o.d"
  "/root/repo/tests/test_op_cost.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_op_cost.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_op_cost.cpp.o.d"
  "/root/repo/tests/test_pim_executor.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_pim_executor.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_pim_executor.cpp.o.d"
  "/root/repo/tests/test_pim_logic.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_pim_logic.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_pim_logic.cpp.o.d"
  "/root/repo/tests/test_pim_program.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_pim_program.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_pim_program.cpp.o.d"
  "/root/repo/tests/test_polybench.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_polybench.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_polybench.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_quantized_ops.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_quantized_ops.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_quantized_ops.cpp.o.d"
  "/root/repo/tests/test_reduce_and_sum.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_reduce_and_sum.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_reduce_and_sum.cpp.o.d"
  "/root/repo/tests/test_reliability.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_reliability.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_reliability.cpp.o.d"
  "/root/repo/tests/test_step_voting.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_step_voting.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_step_voting.cpp.o.d"
  "/root/repo/tests/test_timing.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_timing.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_timing.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_unit_add.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_unit_add.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_unit_add.cpp.o.d"
  "/root/repo/tests/test_unit_bulk.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_unit_bulk.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_unit_bulk.cpp.o.d"
  "/root/repo/tests/test_unit_max.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_unit_max.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_unit_max.cpp.o.d"
  "/root/repo/tests/test_unit_multiply.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_unit_multiply.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_unit_multiply.cpp.o.d"
  "/root/repo/tests/test_unit_nmr.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_unit_nmr.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_unit_nmr.cpp.o.d"
  "/root/repo/tests/test_unit_reduce.cpp" "tests/CMakeFiles/coruscant_tests.dir/test_unit_reduce.cpp.o" "gcc" "tests/CMakeFiles/coruscant_tests.dir/test_unit_reduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coruscant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
