# Empty compiler generated dependencies file for coruscant_tests.
# This may be replaced when dependencies are built.
