file(REMOVE_RECURSE
  "CMakeFiles/coruscant_cli.dir/coruscant_cli.cpp.o"
  "CMakeFiles/coruscant_cli.dir/coruscant_cli.cpp.o.d"
  "coruscant_cli"
  "coruscant_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coruscant_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
