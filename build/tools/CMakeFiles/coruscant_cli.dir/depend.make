# Empty dependencies file for coruscant_cli.
# This may be replaced when dependencies are built.
