/**
 * @file
 * Example: database bitmap-index queries in memory.
 *
 * The scenario the paper's introduction motivates: real-time search
 * over user predicates without moving megabytes of bitmaps to the CPU.
 * Synthesizes a user table, answers "how many male users were active
 * in each of the past w weeks" with the multi-operand transverse read,
 * and compares the latency against the CPU and the DRAM PIM baselines.
 */

#include <cstdio>

#include "apps/bitmap/bitmap_index.hpp"

using namespace coruscant;

int
main()
{
    const std::size_t users = 4u << 20; // 4M users for a fast demo
    std::printf("Synthesizing bitmap database: %zu users, 4 weekly "
                "activity bitmaps...\n",
                users);
    auto db = BitmapDatabase::synthesize(users, 4);
    BitmapQueryEngine engine(db);

    std::printf("\n%4s %12s %14s %14s %14s %14s\n", "w", "matches",
                "cpu-dram[cyc]", "ambit[cyc]", "elp2im[cyc]",
                "coruscant[cyc]");
    for (std::size_t w = 2; w <= 4; ++w) {
        auto cpu = engine.runCpuDram(w);
        auto ambit = engine.runAmbit(w);
        auto elp = engine.runElp2im(w);
        auto cor = engine.runCoruscant(w);
        std::printf("%4zu %12llu %14llu %14llu %14llu %14llu\n", w,
                    static_cast<unsigned long long>(cor.matches),
                    static_cast<unsigned long long>(cpu.cycles),
                    static_cast<unsigned long long>(ambit.cycles),
                    static_cast<unsigned long long>(elp.cycles),
                    static_cast<unsigned long long>(cor.cycles));
    }

    std::printf("\nNote how CORUSCANT's latency is flat in w: up to "
                "TRD operand bitmaps are\nevaluated by a single "
                "transverse read per 512-bit chunk, while the DRAM\n"
                "techniques chain two-operand ANDs.\n");

    // Sensitivity: the same query on a TRD = 5 device (w = 4 needs
    // five operands: exactly the window).
    auto cor5 = engine.runCoruscant(4, 5);
    std::printf("\nTRD = 5 device, w = 4: %llu cycles, %llu matches "
                "(same answer)\n",
                static_cast<unsigned long long>(cor5.cycles),
                static_cast<unsigned long long>(cor5.matches));
    return 0;
}
