/**
 * @file
 * Example: quantized CNN inference through the PIM operations.
 *
 * Runs a small LeNet-style network (conv -> relu -> maxpool -> conv ->
 * relu -> maxpool -> fc) on a synthetic 8-bit image, with every
 * multiply, add, max, and ReLU executed functionally by the CORUSCANT
 * unit, then prints the throughput model's Table IV view of the full
 * LeNet-5 / AlexNet workloads.
 */

#include <algorithm>
#include <cstdio>

#include "apps/cnn/pim_executor.hpp"
#include "apps/cnn/throughput_model.hpp"
#include "util/rng.hpp"

using namespace coruscant;

namespace {

std::int8_t
randomInt8(Rng &rng)
{
    return static_cast<std::int8_t>(
        static_cast<int>(rng.nextBelow(255)) - 127);
}

} // namespace

int
main()
{
    Rng rng(2022);
    PimCnnExecutor exec;

    // A 16x16 grayscale "image".
    IntTensor image(16, 16, 1);
    for (auto &v : image.data)
        v = static_cast<std::int32_t>(rng.nextBelow(128));

    // Layer 1: 4 filters of 3x3.
    std::vector<IntTensor> k1;
    for (int oc = 0; oc < 4; ++oc) {
        IntTensor k(3, 3, 1);
        for (auto &v : k.data)
            v = randomInt8(rng);
        k1.push_back(std::move(k));
    }
    auto c1 = exec.conv2d(image, k1, {0, 0, 0, 0});
    exec.reluInPlace(c1);
    for (auto &v : c1.data) // keep pooling lanes in range
        v = std::min(v, (1 << 14) - 1);
    auto p1 = exec.maxPool(c1, 2); // 14x14x4 -> 7x7x4
    std::printf("conv1 + relu + pool: %zux%zux%zu\n", p1.h, p1.w, p1.c);

    // Requantize to int8 for the next layer.
    IntTensor q1(p1.h, p1.w, p1.c);
    for (std::size_t i = 0; i < p1.size(); ++i)
        q1.data[i] = PimCnnExecutor::requantize(p1.data[i], 6);

    // Layer 2: 6 filters of 3x3x4, then classify with a 10-way FC.
    std::vector<IntTensor> k2;
    for (int oc = 0; oc < 6; ++oc) {
        IntTensor k(3, 3, 4);
        for (auto &v : k.data)
            v = randomInt8(rng);
        k2.push_back(std::move(k));
    }
    auto c2 = exec.conv2d(q1, k2, std::vector<std::int32_t>(6, 0));
    exec.reluInPlace(c2);
    std::printf("conv2 + relu       : %zux%zux%zu\n", c2.h, c2.w, c2.c);

    std::vector<std::int8_t> flat;
    for (auto v : c2.data)
        flat.push_back(PimCnnExecutor::requantize(v, 8));
    std::vector<std::vector<std::int8_t>> w(
        10, std::vector<std::int8_t>(flat.size()));
    for (auto &row : w)
        for (auto &v : row)
            v = randomInt8(rng);
    auto logits =
        exec.fullyConnected(flat, w, std::vector<std::int32_t>(10, 0));

    std::size_t best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i)
        if (logits[i] > logits[best])
            best = i;
    std::printf("fc logits          : class %zu wins (logit %d)\n",
                best, logits[best]);
    std::printf("\nmodeled device cost of this inference:\n%s",
                exec.ledger().summary().c_str());

    // ------------------------------------------------------------
    // Throughput view of the paper's workloads (Table IV excerpt).
    // ------------------------------------------------------------
    CnnThroughputModel model;
    std::printf("\nfull-network throughput (frames per second):\n");
    for (const auto &net :
         {CnnNetwork::lenet5(), CnnNetwork::alexnet()}) {
        std::printf("  %-8s full-precision: CORUSCANT-7 %8.1f | "
                    "SPIM %8.1f | ISAAC %8.1f\n",
                    net.name.c_str(),
                    model.fps(net, CnnScheme::Coruscant7,
                              CnnMode::FullPrecision),
                    model.fps(net, CnnScheme::Spim,
                              CnnMode::FullPrecision),
                    model.fps(net, CnnScheme::Isaac,
                              CnnMode::FullPrecision));
        std::printf("  %-8s ternary (DrAcc): CORUSCANT-7 %8.1f | "
                    "ELP2IM %6.1f | Ambit %7.1f\n",
                    net.name.c_str(),
                    model.fps(net, CnnScheme::Coruscant7,
                              CnnMode::TernaryWeight),
                    model.fps(net, CnnScheme::Elp2Im,
                              CnnMode::TernaryWeight),
                    model.fps(net, CnnScheme::Ambit,
                              CnnMode::TernaryWeight));
    }
    return 0;
}
