/**
 * @file
 * Example: offloading matrix arithmetic to memory via the cpim ISA.
 *
 * Shows the full system path the paper describes in Sec. III-E: data
 * lives in the DWM main memory; the host issues cpim instructions; the
 * memory controller gathers operand rows, drives the subarray's PIM
 * unit, and writes results back — no operand ever crosses the memory
 * bus.  Then prints the Polybench-style system comparison (Fig. 10 /
 * Fig. 11 view) for a gemm kernel.
 */

#include <cstdio>

#include "apps/polybench/system_model.hpp"
#include "controller/memory_controller.hpp"

using namespace coruscant;

int
main()
{
    DwmMainMemory mem;
    MemoryController ctrl(mem);

    // ------------------------------------------------------------
    // Element-wise C = A + B over 512 packed 16-bit values using two
    // cpim add instructions (64 lanes of blocksize 16 per row... one
    // row holds 32 lanes; 16 rows of A and B are summed pairwise).
    // ------------------------------------------------------------
    const std::size_t lanes_per_row = 512 / 16;
    const std::uint64_t a_base = 0x100000; // operand DBC
    const std::uint64_t c_base = 0x900000; // result rows

    std::printf("staging A and B into memory rows...\n");
    std::uint64_t expected_total = 0;
    for (std::size_t r = 0; r < 8; ++r) {
        BitVector a_row(512), b_row(512);
        for (std::size_t l = 0; l < lanes_per_row; ++l) {
            std::uint64_t av = (r * 131 + l * 17) % 20000;
            std::uint64_t bv = (r * 97 + l * 29) % 20000;
            a_row.insertUint64(l * 16, 16, av);
            b_row.insertUint64(l * 16, 16, bv);
            expected_total += (av + bv) & 0xFFFF;
        }
        // Operands for one cpim live in consecutive rows of one DBC.
        mem.writeLine(ctrl.operandAddress(a_base + r * 64, 0), a_row);
        mem.writeLine(ctrl.operandAddress(a_base + r * 64, 1), b_row);
    }

    std::printf("issuing cpim add instructions...\n");
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < 8; ++r) {
        CpimInstruction inst;
        inst.op = CpimOp::Add;
        inst.operands = 2;
        inst.blockSize = 16;
        inst.src = a_base + r * 64;
        inst.dst = c_base + r * 64;
        auto row = ctrl.execute(inst);
        for (std::size_t l = 0; l < lanes_per_row; ++l)
            total += row.sliceUint64(l * 16, 16);
    }
    std::printf("sum of all C lanes: %llu (expected %llu) — %s\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(expected_total),
                total == expected_total ? "correct" : "WRONG");
    std::printf("memory-side cost:\n%s", mem.ledger().summary().c_str());

    // ------------------------------------------------------------
    // System-level view: a gemm kernel on CPU+DRAM / CPU+DWM / PIM.
    // ------------------------------------------------------------
    PolybenchSystemModel model;
    auto res = model.evaluate(runGemm(64));
    std::printf("\ngemm(64) system comparison:\n");
    std::printf("  CPU+DRAM : %12llu cycles\n",
                static_cast<unsigned long long>(res.cpuDramCycles));
    std::printf("  CPU+DWM  : %12llu cycles\n",
                static_cast<unsigned long long>(res.cpuDwmCycles));
    std::printf("  CORUSCANT: %12llu cycles  (%.2fx vs DWM, %.2fx vs "
                "DRAM)\n",
                static_cast<unsigned long long>(res.pimCycles),
                res.latencyGainVsDwm(), res.latencyGainVsDram());
    std::printf("  energy   : %.1fx reduction (%.1f uJ -> %.1f uJ)\n",
                res.energyGain(), res.cpuEnergyPj / 1e6,
                res.pimEnergyPj / 1e6);
    return 0;
}
