/**
 * @file
 * Quickstart: the CORUSCANT public API in five minutes.
 *
 * Builds a PIM-enabled domain-block cluster, runs the paper's core
 * operations — a multi-operand bulk AND (one transverse read), a
 * five-operand addition, an 8-bit multiplication, a max, and a
 * triple-modular-redundant vote — and prints the device-cycle/energy
 * cost of each.
 */

#include <cstdio>

#include "core/coruscant_unit.hpp"

using namespace coruscant;

int
main()
{
    // A default device: 512 nanowires x 32 data domains, TRD = 7.
    CoruscantUnit unit(DeviceParams::coruscantDefault());
    std::printf("CORUSCANT quickstart: %zu wires x %zu rows, TRD=%zu\n",
                unit.width(), unit.rows(), unit.params().trd);

    // ------------------------------------------------------------
    // 1. Multi-operand bulk-bitwise: AND of 7 rows in ONE transverse
    //    read (DRAM PIM would need 6 sequential two-operand steps).
    // ------------------------------------------------------------
    std::vector<BitVector> rows;
    for (int i = 0; i < 7; ++i) {
        BitVector row(unit.width(), true);
        row.set(static_cast<std::size_t>(10 + i), false);
        rows.push_back(std::move(row));
    }
    unit.resetCosts();
    auto and_row = unit.bulkBitwise(BulkOp::And, rows);
    std::printf("\n7-operand AND : %llu cycles, %.2f pJ, "
                "%zu zero bits in the result\n",
                static_cast<unsigned long long>(unit.ledger().cycles()),
                unit.ledger().energyPj(),
                unit.width() - and_row.popcount());

    // ------------------------------------------------------------
    // 2. Five-operand addition of packed 8-bit lanes (the paper's
    //    26-cycle showcase: 10 staging + 16 carry-chain cycles).
    // ------------------------------------------------------------
    std::vector<BitVector> operands;
    for (std::uint64_t v : {11ull, 22ull, 33ull, 44ull, 55ull}) {
        BitVector row(unit.width());
        for (std::size_t lane = 0; lane < unit.width() / 8; ++lane)
            row.insertUint64(lane * 8, 8, v + lane);
        operands.push_back(std::move(row));
    }
    unit.resetCosts();
    auto sum = unit.add(operands, /*block_size=*/8);
    std::printf("5-operand add : %llu cycles, %.2f pJ; lane0 sum = "
                "%llu (expected 165)\n",
                static_cast<unsigned long long>(unit.ledger().cycles()),
                unit.ledger().energyPj(),
                static_cast<unsigned long long>(sum.sliceUint64(0, 8)));

    // ------------------------------------------------------------
    // 3. 8-bit multiplication in 16-bit lanes via the carry-save
    //    reduction strategy (the paper's 64-cycle O(n) multiplier).
    // ------------------------------------------------------------
    BitVector a(unit.width()), b(unit.width());
    for (std::size_t lane = 0; lane < unit.width() / 16; ++lane) {
        a.insertUint64(lane * 16, 16, 200);
        b.insertUint64(lane * 16, 16, 123);
    }
    unit.resetCosts();
    auto prod = unit.multiply(a, b, 8);
    std::printf("8-bit multiply: %llu cycles, %.2f pJ; lane0 = %llu "
                "(expected 24600)\n",
                static_cast<unsigned long long>(unit.ledger().cycles()),
                unit.ledger().energyPj(),
                static_cast<unsigned long long>(
                    prod.sliceUint64(0, 16)));

    // ------------------------------------------------------------
    // 4. Max of seven candidates with transverse-write rotation.
    // ------------------------------------------------------------
    std::vector<BitVector> cands;
    for (std::uint64_t v : {17ull, 250ull, 3ull, 99ull, 180ull, 250ull,
                            42ull}) {
        BitVector row(unit.width());
        for (std::size_t lane = 0; lane < unit.width() / 8; ++lane)
            row.insertUint64(lane * 8, 8, v);
        cands.push_back(std::move(row));
    }
    unit.resetCosts();
    auto mx = unit.maxOfRows(cands, 8);
    std::printf("7-way max     : %llu cycles, %.2f pJ; lane0 = %llu "
                "(expected 250)\n",
                static_cast<unsigned long long>(unit.ledger().cycles()),
                unit.ledger().energyPj(),
                static_cast<unsigned long long>(mx.sliceUint64(0, 8)));

    // ------------------------------------------------------------
    // 5. Triple-modular redundancy: a corrupted replica is outvoted.
    // ------------------------------------------------------------
    BitVector truth(unit.width());
    truth.insertUint64(0, 32, 0xDEADBEEF);
    std::vector<BitVector> replicas(3, truth);
    replicas[1].set(5, !truth.get(5)); // inject a fault
    unit.resetCosts();
    auto voted = unit.nmrVote(replicas);
    std::printf("TMR vote      : %llu cycles; corrected = %s\n",
                static_cast<unsigned long long>(unit.ledger().cycles()),
                voted == truth ? "yes" : "NO");
    return 0;
}
