/**
 * @file
 * Example: exploring CORUSCANT's fault-tolerance options.
 *
 * Injects transverse-read faults at an (artificially elevated) rate
 * and compares three protection levels on 8-bit additions:
 *
 *   1. unprotected,
 *   2. end-of-operation triple-modular redundancy (repeat + C' vote),
 *   3. per-step voting (paper Sec. III-F: vote S/C/C' at every bit so
 *      carry-chain errors never propagate),
 *
 * then prints the analytical Table V rates at the paper's intrinsic
 * fault probability (1e-6) where Monte-Carlo is uneconomical.
 */

#include <cstdio>

#include "core/coruscant_unit.hpp"
#include "reliability/error_model.hpp"
#include "util/rng.hpp"

using namespace coruscant;

int
main()
{
    const double p_fault = 2e-3; // elevated so errors are observable
    const int trials = 20000;
    std::printf("Injecting TR faults at p = %g over %d 8-bit "
                "additions...\n\n",
                p_fault, trials);

    DeviceParams dev = DeviceParams::coruscantDefault();
    dev.wiresPerDbc = 8;
    CoruscantUnit plain(dev, p_fault, 1);
    CoruscantUnit tmr(dev, p_fault, 2);
    CoruscantUnit step(dev, p_fault, 3);
    Rng rng(99);

    int plain_err = 0, tmr_err = 0, step_err = 0;
    std::uint64_t plain_cycles = 0, tmr_cycles = 0, step_cycles = 0;
    for (int t = 0; t < trials; ++t) {
        std::uint64_t a = rng.next() & 0xFF, b = rng.next() & 0xFF;
        std::uint64_t expect = (a + b) & 0xFF;
        std::vector<BitVector> ops = {BitVector::fromUint64(8, a),
                                      BitVector::fromUint64(8, b)};

        plain.resetCosts();
        if (plain.add(ops, 8, 8).toUint64() != expect)
            ++plain_err;
        plain_cycles += plain.ledger().cycles();

        tmr.resetCosts();
        auto voted =
            tmr.nmrExecute(3, [&] { return tmr.add(ops, 8, 8); });
        if (voted.toUint64() != expect)
            ++tmr_err;
        tmr_cycles += tmr.ledger().cycles();

        step.resetCosts();
        if (step.addStepVoted(ops, 8, 3).toUint64() != expect)
            ++step_err;
        step_cycles += step.ledger().cycles();
    }

    auto report = [&](const char *name, int errors,
                      std::uint64_t cycles) {
        std::printf("  %-22s error rate %.5f   avg %5.1f cycles/op\n",
                    name, static_cast<double>(errors) / trials,
                    static_cast<double>(cycles) / trials);
    };
    report("unprotected", plain_err, plain_cycles);
    report("end-of-op TMR", tmr_err, tmr_cycles);
    report("per-step voting (N=3)", step_err, step_cycles);

    std::printf("\nAnalytical rates at the intrinsic p = 1e-6 "
                "(paper Table V):\n");
    for (std::size_t trd : {3u, 5u, 7u}) {
        TrErrorModel m(trd);
        std::printf("  TRD=%zu: add %.2g, multiply %.2g, add+TMR "
                    "%.2g, add+N5 %.2g\n",
                    trd, m.addError(8), m.multiplyError(8),
                    m.nmrAddError(3, 8),
                    trd >= 5 ? m.nmrAddError(5, 8) : 0.0);
    }
    std::printf("\n>10-year error-free operation needs N = 5 "
                "(paper Sec. V-F): %.2g per 8-bit add.\n",
                TrErrorModel(7).nmrAddError(5, 8));
    return 0;
}
