#include "apps/bitmap/bitmap_index.hpp"

#include <algorithm>

#include "arch/timing.hpp"
#include "baselines/dram_pim.hpp"
#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {

namespace {

constexpr std::size_t dramRowBits = 65536; ///< 8 KiB DRAM row
constexpr std::size_t dwmRowBits = 512;    ///< one DBC row
/** Subarrays available to spread chunks over (32 banks x 64). */
constexpr std::size_t numSubarrays = 2048;

/**
 * cpim command round-trip per CORUSCANT chunk operation (instruction
 * decode, bank activation, and result forwarding through the
 * hierarchical row buffer).  Calibrated so the measured gains over
 * ELP2IM (1.6x / 2.4x / 3.2x at w = 2 / 3 / 4) bracket the paper's
 * published 1.6x / 2.2x / 3.4x.  The bitmaps
 * are resident in consecutive DBC rows, so the per-chunk work itself
 * is one window alignment, one TR, and one write-back, independent of
 * the operand count — that independence is what the experiment
 * demonstrates.
 */
constexpr std::uint64_t coruscantChunkOverhead = 54;

} // namespace

BitmapDatabase
BitmapDatabase::synthesize(std::size_t users, std::size_t weeks,
                           std::uint64_t seed)
{
    BitmapDatabase db;
    db.users = users;
    db.male = BitVector(users);
    Rng rng(seed);
    for (std::size_t u = 0; u < users; ++u)
        db.male.set(u, rng.nextBool(0.5));
    for (std::size_t w = 0; w < weeks; ++w) {
        BitVector act(users);
        // Activity decays for older weeks.
        double p = 0.7 - 0.1 * static_cast<double>(w);
        for (std::size_t u = 0; u < users; ++u)
            act.set(u, rng.nextBool(p));
        db.activeWeek.push_back(std::move(act));
    }
    return db;
}

std::vector<const BitVector *>
BitmapQueryEngine::operands(std::size_t weeks) const
{
    fatalIf(weeks == 0 || weeks > db.activeWeek.size(),
            "query weeks out of range");
    std::vector<const BitVector *> ops = {&db.male};
    for (std::size_t w = 0; w < weeks; ++w)
        ops.push_back(&db.activeWeek[w]);
    return ops;
}

std::uint64_t
BitmapQueryEngine::goldenCount(std::size_t weeks) const
{
    auto ops = operands(weeks);
    BitVector acc = *ops[0];
    for (std::size_t i = 1; i < ops.size(); ++i)
        acc &= *ops[i];
    return acc.popcount();
}

BitmapQueryResult
BitmapQueryEngine::runCpuDram(std::size_t weeks) const
{
    auto ops = operands(weeks);
    BitVector acc = *ops[0];
    for (std::size_t i = 1; i < ops.size(); ++i)
        acc &= *ops[i];
    // Every bitmap streams over the 16 B/cycle bus; the SIMD AND and
    // population count overlap with the transfers.
    std::uint64_t lines =
        ops.size() * ((db.users + dwmRowBits - 1) / dwmRowBits);
    BusConfig bus;
    return {"cpu-dram", acc.popcount(), lines * bus.lineBurstCycles()};
}

namespace {

/** Run a DRAM PIM unit over all row-sized chunks of the query. */
BitmapQueryResult
runDramPim(DramPimUnit &unit, const std::string &name,
           const std::vector<const BitVector *> &ops, std::size_t users)
{
    std::size_t chunks = (users + dramRowBits - 1) / dramRowBits;
    std::uint64_t matches = 0;
    std::uint64_t chunk_cycles = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t lo = c * dramRowBits;
        std::size_t width = std::min(dramRowBits, users - lo);
        std::vector<BitVector> rows;
        for (const auto *op : ops) {
            BitVector padded(dramRowBits);
            padded.insert(0, op->slice(lo, width));
            rows.push_back(std::move(padded));
        }
        unit.resetCosts();
        BitVector result = unit.bulkMulti(BulkOp::And, rows);
        chunk_cycles = unit.ledger().cycles(); // identical per chunk
        matches += result.slice(0, width).popcount();
    }
    // Chunk groups are colocated per subarray and the identical
    // command sequence is broadcast: chunks execute concurrently, so
    // the makespan is one chunk's operation chain (all chunks fit in
    // distinct subarrays at this scale).
    std::uint64_t concurrent = std::min<std::size_t>(chunks,
                                                     numSubarrays);
    std::uint64_t waves = (chunks + concurrent - 1) / concurrent;
    return {name, matches, waves * chunk_cycles};
}

} // namespace

BitmapQueryResult
BitmapQueryEngine::runAmbit(std::size_t weeks) const
{
    AmbitUnit unit(dramRowBits);
    return runDramPim(unit, "ambit", operands(weeks), db.users);
}

BitmapQueryResult
BitmapQueryEngine::runElp2im(std::size_t weeks) const
{
    Elp2ImUnit unit(dramRowBits);
    return runDramPim(unit, "elp2im", operands(weeks), db.users);
}

BitmapQueryResult
BitmapQueryEngine::runCoruscant(std::size_t weeks,
                                std::size_t trd) const
{
    auto ops = operands(weeks);
    fatalIf(ops.size() > trd, "query needs ", ops.size(),
            " operands but TRD = ", trd);

    DeviceParams dev = DeviceParams::withTrd(trd);
    CoruscantUnit unit(dev);

    std::size_t chunks = (db.users + dwmRowBits - 1) / dwmRowBits;
    std::uint64_t matches = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t lo = c * dwmRowBits;
        std::size_t width = std::min(dwmRowBits, db.users - lo);
        std::vector<BitVector> rows;
        for (const auto *op : ops) {
            BitVector padded(dwmRowBits);
            padded.insert(0, op->slice(lo, width));
            rows.push_back(std::move(padded));
        }
        BitVector result = unit.bulkBitwise(BulkOp::And, rows);
        matches += result.slice(0, width).popcount();
    }
    // The bitmaps live in consecutive rows of every PIM DBC (male at
    // window row 0, week b at row b, per Fig. 7's preset layout), so
    // one chunk operation is: align the window over the bitmap rows,
    // one TR, one write-back — independent of w.  All 32768 PIM DBCs
    // fire on the broadcast cpim.
    std::uint64_t align = dev.leftPortRow(); // window over rows 0..TRD-1
    std::uint64_t chunk_cycles = coruscantChunkOverhead + align +
                                 dev.trCycles + dev.writeCycles;
    std::size_t pim_dbcs = numSubarrays * 16;
    std::uint64_t concurrent = std::min<std::size_t>(chunks, pim_dbcs);
    std::uint64_t waves = (chunks + concurrent - 1) / concurrent;
    return {"coruscant", matches, waves * chunk_cycles};
}

} // namespace coruscant
