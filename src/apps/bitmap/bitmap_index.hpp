/**
 * @file
 * Bitmap-index database query (paper Sec. V-D, Fig. 12).
 *
 * The benchmark from the DRAM PIM literature: a table of `users`
 * records keeps one bitmap per predicate (gender, weekly activity).
 * The query "how many male users were active in each of the last w
 * weeks" ANDs w+1 bitmaps of `users` bits and counts the survivors.
 *
 * Baselines perform the AND as a chain of two-operand bulk operations
 * over 65536-bit DRAM rows (Ambit via triple-row activation, ELP2IM
 * via pseudo-precharge states); CORUSCANT evaluates all w+1 <= TRD
 * operands with a single transverse read per subarray chunk, with the
 * bitmaps laid out in consecutive rows of the PIM DBC windows — so its
 * latency stays flat as w grows while the DRAM techniques scale
 * linearly (the paper's 1.6x / 2.2x / 3.4x over ELP2IM at
 * w = 2 / 3 / 4).
 */

#ifndef CORUSCANT_APPS_BITMAP_BITMAP_INDEX_HPP
#define CORUSCANT_APPS_BITMAP_BITMAP_INDEX_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/bit_vector.hpp"

namespace coruscant {

/** A synthetic user table as predicate bitmaps. */
struct BitmapDatabase
{
    std::size_t users = 0;
    BitVector male;
    std::vector<BitVector> activeWeek; ///< [week] -> activity bitmap

    /** Deterministic synthetic database. */
    static BitmapDatabase synthesize(std::size_t users,
                                     std::size_t weeks,
                                     std::uint64_t seed = 1);
};

/** One technique's result on the query. */
struct BitmapQueryResult
{
    std::string technique;
    std::uint64_t matches = 0; ///< functional query answer
    std::uint64_t cycles = 0;  ///< memory cycles for the bitwise phase
};

/** Runs the query functionally and under each latency model. */
class BitmapQueryEngine
{
  public:
    explicit BitmapQueryEngine(const BitmapDatabase &db)
        : db(db)
    {}

    /** Golden answer (plain CPU evaluation). */
    std::uint64_t goldenCount(std::size_t weeks) const;

    /** CPU + DRAM: stream every bitmap over the bus. */
    BitmapQueryResult runCpuDram(std::size_t weeks) const;

    /** Ambit: chains of TRA-based ANDs over 65536-bit rows. */
    BitmapQueryResult runAmbit(std::size_t weeks) const;

    /** ELP2IM: chains of in-SA ANDs over 65536-bit rows. */
    BitmapQueryResult runElp2im(std::size_t weeks) const;

    /** CORUSCANT: one multi-operand TR per 512-bit row chunk. */
    BitmapQueryResult runCoruscant(std::size_t weeks,
                                   std::size_t trd = 7) const;

  private:
    /** Gather the query's operand bitmaps (male + w weeks). */
    std::vector<const BitVector *> operands(std::size_t weeks) const;

    const BitmapDatabase &db;
};

} // namespace coruscant

#endif // CORUSCANT_APPS_BITMAP_BITMAP_INDEX_HPP
