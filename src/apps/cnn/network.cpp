#include "apps/cnn/network.hpp"

namespace coruscant {

std::uint64_t
CnnLayer::outputs() const
{
    switch (type) {
      case Type::Conv:
      case Type::Pool:
        return static_cast<std::uint64_t>(outH) * outW * outC;
      case Type::FullyConnected:
        return outFeatures;
    }
    return 0;
}

std::uint64_t
CnnLayer::macs() const
{
    switch (type) {
      case Type::Conv:
        return outputs() * kernel * kernel * inC;
      case Type::FullyConnected:
        return static_cast<std::uint64_t>(inFeatures) * outFeatures;
      case Type::Pool:
        return 0;
    }
    return 0;
}

std::uint64_t
CnnLayer::reductionAdds() const
{
    switch (type) {
      case Type::Conv:
        // Paper Eq. 2.
        return outputs() *
               ((kernel * kernel - 1) * inC + (inC - 1));
      case Type::FullyConnected:
        return static_cast<std::uint64_t>(outFeatures) *
               (inFeatures - 1);
      case Type::Pool:
        return 0;
    }
    return 0;
}

std::uint64_t
CnnLayer::poolOps() const
{
    if (type != Type::Pool)
        return 0;
    return outputs() * kernel * kernel;
}

std::uint64_t
CnnNetwork::totalMacs() const
{
    std::uint64_t n = 0;
    for (const auto &l : layers)
        n += l.macs();
    return n;
}

std::uint64_t
CnnNetwork::totalReductionAdds() const
{
    std::uint64_t n = 0;
    for (const auto &l : layers)
        n += l.reductionAdds();
    return n;
}

std::uint64_t
CnnNetwork::totalPoolOps() const
{
    std::uint64_t n = 0;
    for (const auto &l : layers)
        n += l.poolOps();
    return n;
}

namespace {

CnnLayer
conv(std::string name, std::size_t out_h, std::size_t out_w,
     std::size_t out_c, std::size_t k, std::size_t in_c)
{
    CnnLayer l;
    l.type = CnnLayer::Type::Conv;
    l.name = std::move(name);
    l.outH = out_h;
    l.outW = out_w;
    l.outC = out_c;
    l.kernel = k;
    l.inC = in_c;
    return l;
}

CnnLayer
pool(std::string name, std::size_t out_h, std::size_t out_w,
     std::size_t out_c, std::size_t k)
{
    CnnLayer l;
    l.type = CnnLayer::Type::Pool;
    l.name = std::move(name);
    l.outH = out_h;
    l.outW = out_w;
    l.outC = out_c;
    l.kernel = k;
    return l;
}

CnnLayer
fc(std::string name, std::size_t in_f, std::size_t out_f)
{
    CnnLayer l;
    l.type = CnnLayer::Type::FullyConnected;
    l.name = std::move(name);
    l.inFeatures = in_f;
    l.outFeatures = out_f;
    return l;
}

} // namespace

CnnNetwork
CnnNetwork::lenet5()
{
    CnnNetwork net;
    net.name = "lenet5";
    net.layers = {
        conv("C1", 28, 28, 6, 5, 1),
        pool("S2", 14, 14, 6, 2),
        conv("C3", 10, 10, 16, 5, 6),
        pool("S4", 5, 5, 16, 2),
        conv("C5", 1, 1, 120, 5, 16),
        fc("F6", 120, 84),
        fc("OUT", 84, 10),
    };
    return net;
}

CnnNetwork
CnnNetwork::alexnet()
{
    CnnNetwork net;
    net.name = "alexnet";
    net.layers = {
        conv("conv1", 55, 55, 96, 11, 3),
        pool("pool1", 27, 27, 96, 3),
        conv("conv2", 27, 27, 256, 5, 48), // grouped (2 groups)
        pool("pool2", 13, 13, 256, 3),
        conv("conv3", 13, 13, 384, 3, 256),
        conv("conv4", 13, 13, 384, 3, 192), // grouped
        conv("conv5", 13, 13, 256, 3, 192), // grouped
        pool("pool5", 6, 6, 256, 3),
        fc("fc6", 9216, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    };
    return net;
}

} // namespace coruscant
