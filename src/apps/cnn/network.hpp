/**
 * @file
 * CNN layer specifications and operation counting (paper Sec. IV, V-E).
 *
 * The paper evaluates LeNet-5 and AlexNet.  Inference throughput is a
 * function of the layer shapes — the multiply/accumulate counts, the
 * reduction structure (paper Eq. 2), and the pooling windows — not of
 * trained weights, so the networks are carried as shape specifications
 * with exact operation counts.
 */

#ifndef CORUSCANT_APPS_CNN_NETWORK_HPP
#define CORUSCANT_APPS_CNN_NETWORK_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace coruscant {

/** One CNN layer (shape only). */
struct CnnLayer
{
    enum class Type { Conv, Pool, FullyConnected } type;
    std::string name;

    // Conv / Pool fields
    std::size_t outH = 0, outW = 0, outC = 0;
    std::size_t kernel = 0; ///< K (square)
    std::size_t inC = 0;

    // FullyConnected fields
    std::size_t inFeatures = 0, outFeatures = 0;

    /** Output values Os of this layer. */
    std::uint64_t outputs() const;

    /** Multiply-accumulates (full-precision mode). */
    std::uint64_t macs() const;

    /**
     * Additions for the binary/ternary reduction (paper Eq. 2):
     * Na = Os * ((K^2 - 1) * Ic + (Ic - 1)) for conv layers.
     */
    std::uint64_t reductionAdds() const;

    /** Pooling comparisons (max over kernel^2 windows). */
    std::uint64_t poolOps() const;
};

/** A named network: ordered layers. */
struct CnnNetwork
{
    std::string name;
    std::vector<CnnLayer> layers;

    std::uint64_t totalMacs() const;
    std::uint64_t totalReductionAdds() const;
    std::uint64_t totalPoolOps() const;

    /** LeNet-5 (32x32x1 input; LeCun et al. 1998). */
    static CnnNetwork lenet5();

    /** AlexNet (227x227x3 input; Krizhevsky et al. 2012). */
    static CnnNetwork alexnet();
};

} // namespace coruscant

#endif // CORUSCANT_APPS_CNN_NETWORK_HPP
