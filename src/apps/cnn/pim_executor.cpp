#include "apps/cnn/pim_executor.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace coruscant {

PimCnnExecutor::PimCnnExecutor(const DeviceParams &params)
    : unit(params)
{}

std::uint64_t
PimCnnExecutor::pimMultiplyU8(std::uint64_t a, std::uint64_t b)
{
    fatalIf(a > 0xFF || b > 0xFF, "magnitude exceeds 8 bits");
    BitVector ar(unit.width()), br(unit.width());
    ar.insertUint64(0, 16, a);
    br.insertUint64(0, 16, b);
    auto prod = unit.multiply(ar, br, 8, MulStrategy::OptimizedCsa, 16);
    return prod.sliceUint64(0, 16);
}

std::uint64_t
PimCnnExecutor::pimSumU32(const std::vector<std::uint64_t> &values)
{
    if (values.empty())
        return 0;
    std::vector<std::uint64_t> pending = values;
    std::size_t arity = unit.params().maxAddOperands();
    while (pending.size() > 1) {
        std::vector<std::uint64_t> next;
        for (std::size_t i = 0; i < pending.size(); i += arity) {
            std::size_t m =
                std::min(arity, pending.size() - i);
            if (m == 1) {
                next.push_back(pending[i]);
                continue;
            }
            std::vector<BitVector> rows;
            for (std::size_t j = 0; j < m; ++j) {
                BitVector row(unit.width());
                row.insertUint64(0, 32, pending[i + j] & 0xFFFFFFFF);
                rows.push_back(std::move(row));
            }
            auto sum = unit.add(rows, 32, 32);
            next.push_back(sum.sliceUint64(0, 32));
        }
        pending = std::move(next);
    }
    return pending[0] & 0xFFFFFFFF;
}

std::int32_t
PimCnnExecutor::dotProduct(const std::vector<std::int8_t> &a,
                           const std::vector<std::int8_t> &b)
{
    fatalIf(a.size() != b.size(), "dot product length mismatch");
    const std::size_t lane_w = 16;
    const std::size_t lanes = unit.width() / lane_w;

    // Batched magnitude products: up to `lanes` pairs per PIM multiply.
    std::vector<std::uint64_t> addends;
    addends.reserve(a.size());
    for (std::size_t base = 0; base < a.size(); base += lanes) {
        std::size_t m = std::min(lanes, a.size() - base);
        BitVector ar(unit.width()), br(unit.width());
        std::vector<bool> negative(m);
        for (std::size_t j = 0; j < m; ++j) {
            std::int32_t av = a[base + j];
            std::int32_t bv = b[base + j];
            negative[j] = (av < 0) != (bv < 0);
            ar.insertUint64(j * lane_w, lane_w,
                            static_cast<std::uint64_t>(std::abs(av)));
            br.insertUint64(j * lane_w, lane_w,
                            static_cast<std::uint64_t>(std::abs(bv)));
        }
        auto prod = unit.multiply(ar, br, 8, MulStrategy::OptimizedCsa);
        for (std::size_t j = 0; j < m; ++j) {
            std::uint64_t mag = prod.sliceUint64(j * lane_w, lane_w);
            // Two's complement in the 32-bit accumulator domain.
            addends.push_back(negative[j]
                                  ? ((~mag + 1) & 0xFFFFFFFF)
                                  : mag);
        }
    }
    std::uint64_t total = pimSumU32(addends);
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(total));
}

IntTensor
PimCnnExecutor::conv2d(const IntTensor &input,
                       const std::vector<IntTensor> &kernels,
                       const std::vector<std::int32_t> &bias)
{
    fatalIf(kernels.empty(), "conv needs at least one kernel");
    std::size_t k = kernels[0].h;
    fatalIf(kernels[0].w != k || kernels[0].c != input.c,
            "kernel shape mismatch");
    fatalIf(bias.size() != kernels.size(), "bias per output channel");
    fatalIf(input.h < k || input.w < k, "input smaller than kernel");

    IntTensor out(input.h - k + 1, input.w - k + 1, kernels.size());
    for (std::size_t oc = 0; oc < kernels.size(); ++oc) {
        // im2col row for this kernel.
        std::vector<std::int8_t> kvec;
        kvec.reserve(k * k * input.c);
        for (std::size_t ki = 0; ki < k; ++ki)
            for (std::size_t kj = 0; kj < k; ++kj)
                for (std::size_t kc = 0; kc < input.c; ++kc)
                    kvec.push_back(static_cast<std::int8_t>(
                        kernels[oc].at(ki, kj, kc)));
        for (std::size_t i = 0; i < out.h; ++i) {
            for (std::size_t j = 0; j < out.w; ++j) {
                std::vector<std::int8_t> window;
                window.reserve(kvec.size());
                for (std::size_t ki = 0; ki < k; ++ki)
                    for (std::size_t kj = 0; kj < k; ++kj)
                        for (std::size_t kc = 0; kc < input.c; ++kc)
                            window.push_back(static_cast<std::int8_t>(
                                input.at(i + ki, j + kj, kc)));
                out.at(i, j, oc) =
                    dotProduct(window, kvec) + bias[oc];
            }
        }
    }
    return out;
}

IntTensor
PimCnnExecutor::maxPool(const IntTensor &input, std::size_t k)
{
    fatalIf(k == 0 || input.h % k != 0 || input.w % k != 0,
            "pool window must tile the input");
    const std::size_t word = 16;
    const std::size_t lanes = unit.width() / word;
    const std::size_t trd = unit.params().trd;

    IntTensor out(input.h / k, input.w / k, input.c);
    // Gather windows and process up to `lanes` of them in parallel,
    // chunking candidates into TR-window-sized groups.
    struct Window
    {
        std::size_t i, j, c;
        std::vector<std::uint64_t> values;
    };
    std::vector<Window> windows;
    for (std::size_t i = 0; i < out.h; ++i) {
        for (std::size_t j = 0; j < out.w; ++j) {
            for (std::size_t c = 0; c < input.c; ++c) {
                Window win{i, j, c, {}};
                for (std::size_t pi = 0; pi < k; ++pi) {
                    for (std::size_t pj = 0; pj < k; ++pj) {
                        std::int32_t v =
                            input.at(i * k + pi, j * k + pj, c);
                        fatalIf(v < 0 || v >= (1 << 16),
                                "pool values must be in [0, 2^16)");
                        win.values.push_back(
                            static_cast<std::uint64_t>(v));
                    }
                }
                windows.push_back(std::move(win));
            }
        }
    }

    for (std::size_t base = 0; base < windows.size(); base += lanes) {
        std::size_t m = std::min(lanes, windows.size() - base);
        // Current best per window; refined in candidate chunks.
        std::vector<std::uint64_t> best(m, 0);
        std::size_t depth = windows[base].values.size();
        for (std::size_t lo = 0; lo < depth; lo += trd - 1) {
            std::size_t cand =
                std::min<std::size_t>(trd - 1, depth - lo);
            std::vector<BitVector> rows;
            // One row per candidate index + the running best.
            for (std::size_t r = 0; r < cand; ++r) {
                BitVector row(unit.width());
                for (std::size_t l = 0; l < m; ++l)
                    row.insertUint64(l * word, word,
                                     windows[base + l].values[lo + r]);
                rows.push_back(std::move(row));
            }
            BitVector carry(unit.width());
            for (std::size_t l = 0; l < m; ++l)
                carry.insertUint64(l * word, word, best[l]);
            rows.push_back(std::move(carry));
            auto mx = unit.maxOfRows(rows, word);
            for (std::size_t l = 0; l < m; ++l)
                best[l] = mx.sliceUint64(l * word, word);
        }
        for (std::size_t l = 0; l < m; ++l) {
            const auto &win = windows[base + l];
            out.at(win.i, win.j, win.c) =
                static_cast<std::int32_t>(best[l]);
        }
    }
    return out;
}

IntTensor
PimCnnExecutor::avgPool(const IntTensor &input, std::size_t k)
{
    fatalIf(k == 0 || input.h % k != 0 || input.w % k != 0,
            "pool window must tile the input");
    fatalIf((k & (k - 1)) != 0,
            "average pooling divides by shifting: k must be a power "
            "of two");
    unsigned shift = 0;
    for (std::size_t v = k * k; v > 1; v >>= 1)
        ++shift;

    const std::size_t lane_w = 32;
    const std::size_t lanes = unit.width() / lane_w;
    IntTensor out(input.h / k, input.w / k, input.c);

    // Batch `lanes` windows per addition round.
    struct Slot
    {
        std::size_t i, j, c;
    };
    std::vector<Slot> slots;
    for (std::size_t i = 0; i < out.h; ++i)
        for (std::size_t j = 0; j < out.w; ++j)
            for (std::size_t c = 0; c < input.c; ++c)
                slots.push_back({i, j, c});

    const std::size_t depth = k * k;
    const std::size_t arity = unit.params().maxAddOperands();
    for (std::size_t base = 0; base < slots.size(); base += lanes) {
        std::size_t m = std::min(lanes, slots.size() - base);
        // Accumulate the k^2 addends in groups of the adder arity.
        std::vector<std::uint64_t> acc(m, 0);
        bool have = false;
        std::size_t d = 0;
        while (d < depth) {
            std::vector<BitVector> rows;
            if (have) {
                BitVector carry(unit.width());
                for (std::size_t l = 0; l < m; ++l)
                    carry.insertUint64(l * lane_w, lane_w, acc[l]);
                rows.push_back(std::move(carry));
            }
            while (rows.size() < arity && d < depth) {
                BitVector row(unit.width());
                for (std::size_t l = 0; l < m; ++l) {
                    const auto &s = slots[base + l];
                    std::int32_t v = input.at(s.i * k + d / k,
                                              s.j * k + d % k, s.c);
                    fatalIf(v < 0, "average pooling expects "
                                   "non-negative activations");
                    row.insertUint64(l * lane_w, lane_w,
                                     static_cast<std::uint32_t>(v));
                }
                rows.push_back(std::move(row));
                ++d;
            }
            auto sum = unit.add(rows, lane_w);
            for (std::size_t l = 0; l < m; ++l)
                acc[l] = sum.sliceUint64(l * lane_w, lane_w);
            have = true;
        }
        for (std::size_t l = 0; l < m; ++l) {
            const auto &s = slots[base + l];
            out.at(s.i, s.j, s.c) =
                static_cast<std::int32_t>(acc[l] >> shift);
        }
    }
    return out;
}

std::vector<std::int32_t>
PimCnnExecutor::fullyConnected(
    const std::vector<std::int8_t> &x,
    const std::vector<std::vector<std::int8_t>> &w,
    const std::vector<std::int32_t> &bias)
{
    fatalIf(w.size() != bias.size(), "bias per output");
    std::vector<std::int32_t> out;
    out.reserve(w.size());
    for (std::size_t o = 0; o < w.size(); ++o) {
        fatalIf(w[o].size() != x.size(), "weight row length mismatch");
        out.push_back(dotProduct(x, w[o]) + bias[o]);
    }
    return out;
}

void
PimCnnExecutor::reluInPlace(IntTensor &t)
{
    const std::size_t lane_w = 32;
    const std::size_t lanes = unit.width() / lane_w;
    for (std::size_t base = 0; base < t.size(); base += lanes) {
        std::size_t m = std::min(lanes, t.size() - base);
        BitVector row(unit.width());
        for (std::size_t l = 0; l < m; ++l) {
            row.insertUint64(l * lane_w, lane_w,
                             static_cast<std::uint32_t>(
                                 t.data[base + l]));
        }
        auto relued = unit.relu(row, lane_w);
        for (std::size_t l = 0; l < m; ++l) {
            t.data[base + l] = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(
                    relued.sliceUint64(l * lane_w, lane_w)));
        }
    }
}

std::int8_t
PimCnnExecutor::requantize(std::int32_t v, unsigned shift)
{
    std::int32_t scaled = v >> shift;
    return static_cast<std::int8_t>(std::clamp(scaled, -127, 127));
}

} // namespace coruscant
