/**
 * @file
 * Functional quantized CNN inference through the CORUSCANT PIM ops.
 *
 * The throughput model answers "how fast"; this executor answers "does
 * it compute the right thing": convolution, pooling, fully-connected,
 * and ReLU layers run end-to-end through CoruscantUnit multiply /
 * add / max / relu operations on 8-bit quantized data, checked against
 * plain integer references in the tests.
 *
 * Mapping (paper Sec. IV): convolutions are lowered to dot products
 * (im2col); products are computed 8-bit x 8-bit in 16-bit lanes and
 * accumulated into 32-bit lanes with multi-operand additions; pooling
 * uses the TR max function with transverse-write rotation; ReLU is the
 * predicated row refresh.
 */

#ifndef CORUSCANT_APPS_CNN_PIM_EXECUTOR_HPP
#define CORUSCANT_APPS_CNN_PIM_EXECUTOR_HPP

#include <cstdint>
#include <vector>

#include "core/coruscant_unit.hpp"

namespace coruscant {

/** Simple dense tensor of int values with an explicit shape. */
struct IntTensor
{
    std::size_t h = 0, w = 0, c = 0; ///< HWC layout (h=1,w=1 for fc)
    std::vector<std::int32_t> data;

    IntTensor() = default;
    IntTensor(std::size_t h, std::size_t w, std::size_t c)
        : h(h), w(w), c(c), data(h * w * c, 0)
    {}

    std::int32_t &
    at(std::size_t i, std::size_t j, std::size_t k)
    {
        return data[(i * w + j) * c + k];
    }

    std::int32_t
    at(std::size_t i, std::size_t j, std::size_t k) const
    {
        return data[(i * w + j) * c + k];
    }

    std::size_t size() const { return data.size(); }
};

/** Runs quantized layers through a CoruscantUnit. */
class PimCnnExecutor
{
  public:
    explicit PimCnnExecutor(const DeviceParams &params =
                                DeviceParams::coruscantDefault());

    /**
     * Dot product of two int8 vectors via PIM multiply + accumulate.
     * Values must fit in [-128, 127]; the result is exact int32.
     */
    std::int32_t dotProduct(const std::vector<std::int8_t> &a,
                            const std::vector<std::int8_t> &b);

    /**
     * Valid-padding stride-1 convolution of an int8 HWC input with
     * int8 kernels [oc][k][k][ic], plus int32 bias per output channel.
     */
    IntTensor conv2d(const IntTensor &input,
                     const std::vector<IntTensor> &kernels,
                     const std::vector<std::int32_t> &bias);

    /** kxk max pooling with stride k (each channel independently). */
    IntTensor maxPool(const IntTensor &input, std::size_t k);

    /**
     * kxk average pooling with stride k: window sums via multi-operand
     * PIM additions, then a logical right shift for the division
     * (k must be a power of two so k^2 divides by shifting).
     */
    IntTensor avgPool(const IntTensor &input, std::size_t k);

    /** Fully connected: out[o] = sum_i w[o][i]*x[i] + b[o]. */
    std::vector<std::int32_t>
    fullyConnected(const std::vector<std::int8_t> &x,
                   const std::vector<std::vector<std::int8_t>> &w,
                   const std::vector<std::int32_t> &bias);

    /** ReLU over int32 values via the predicated row refresh. */
    void reluInPlace(IntTensor &t);

    /** Requantize int32 accumulators to int8 by a power-of-two shift. */
    static std::int8_t requantize(std::int32_t v, unsigned shift);

    /** Cost accounting across all executed layers. */
    const CostLedger &ledger() const { return unit.ledger(); }

  private:
    /** Unsigned PIM multiply helper on magnitudes < 2^8. */
    std::uint64_t pimMultiplyU8(std::uint64_t a, std::uint64_t b);

    /** Sum a list of uint32 magnitudes via PIM multi-operand adds. */
    std::uint64_t pimSumU32(const std::vector<std::uint64_t> &values);

    CoruscantUnit unit;
};

} // namespace coruscant

#endif // CORUSCANT_APPS_CNN_PIM_EXECUTOR_HPP
