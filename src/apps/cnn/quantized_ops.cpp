#include "apps/cnn/quantized_ops.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace coruscant {

QuantizedPimOps::QuantizedPimOps(const DeviceParams &params)
    : unit(params)
{}

std::uint64_t
QuantizedPimOps::sumValues(const std::vector<std::uint64_t> &values,
                           std::size_t lane_bits)
{
    if (values.empty())
        return 0;
    const std::size_t arity = unit.params().maxAddOperands();
    std::uint64_t mask =
        lane_bits >= 64 ? ~0ULL : ((1ULL << lane_bits) - 1);

    // Reduction tree of multi-operand additions: each round sums up
    // to `arity` values per operation.  (Values stay in lane 0; lane
    // packing across independent dot products is the throughput
    // model's concern, correctness is this function's.)
    std::vector<std::uint64_t> pending = values;
    while (pending.size() > 1) {
        std::vector<std::uint64_t> next;
        for (std::size_t j = 0; j < pending.size();) {
            std::size_t m =
                std::min(arity, pending.size() - j);
            if (m == 1) {
                next.push_back(pending[j++]);
                continue;
            }
            std::vector<BitVector> rows;
            for (std::size_t k = 0; k < m; ++k, ++j) {
                BitVector row(unit.width());
                row.insertUint64(0, lane_bits, pending[j] & mask);
                rows.push_back(std::move(row));
            }
            auto sum = unit.add(rows, lane_bits);
            next.push_back(sum.sliceUint64(0, lane_bits));
        }
        pending = std::move(next);
    }
    return pending[0] & mask;
}

std::uint64_t
QuantizedPimOps::popcount(const BitVector &bits, std::size_t n)
{
    fatalIf(n > bits.size(), "count range exceeds the vector");
    if (n == 0)
        return 0;
    const std::size_t trd = unit.params().trd;
    const std::size_t width = unit.width();

    // Stage n bits as `trd` window rows of ceil(n/trd) wires; a single
    // TR-all yields each wire's ones count (0..trd).
    std::size_t wires = (n + trd - 1) / trd;
    fatalIf(wires > width, "bit vector too wide for one DBC pass");
    std::vector<std::uint64_t> counts;
    std::vector<BitVector> rows(trd, BitVector(width));
    for (std::size_t i = 0; i < n; ++i) {
        if (bits.get(i))
            rows[i % trd].set(i / trd, true);
    }
    // One staging + TR pass (charged through the bulk-op path); the
    // per-wire ones counts are exactly the SA thermometer levels that
    // TR produces, reconstructed here from the staged rows.
    (void)unit.bulkBitwise(BulkOp::Or, rows);
    for (std::size_t w = 0; w < wires; ++w) {
        std::uint64_t c = 0;
        for (std::size_t r = 0; r < trd; ++r)
            c += rows[r].get(w) ? 1 : 0;
        counts.push_back(c);
    }
    return sumValues(counts, 16);
}

std::int64_t
QuantizedPimOps::binaryDot(const BitVector &a, const BitVector &w,
                           std::size_t n)
{
    fatalIf(a.size() != w.size(), "operand width mismatch");
    fatalIf(n > a.size(), "dot range exceeds the vectors");
    // Hamming distance via one bulk XOR + popcount.
    auto diff = unit.bulkBitwise(BulkOp::Xor, {a, w});
    std::uint64_t hd = popcount(diff, n);
    return static_cast<std::int64_t>(n) -
           2 * static_cast<std::int64_t>(hd);
}

std::int64_t
QuantizedPimOps::ternaryDot(const std::vector<std::uint8_t> &x,
                            const std::vector<std::int8_t> &w)
{
    fatalIf(x.size() != w.size(), "operand length mismatch");
    std::vector<std::uint64_t> pos, neg;
    for (std::size_t i = 0; i < x.size(); ++i) {
        fatalIf(w[i] < -1 || w[i] > 1, "ternary weights only");
        if (w[i] > 0)
            pos.push_back(x[i]);
        else if (w[i] < 0)
            neg.push_back(x[i]);
    }
    std::uint64_t p = sumValues(pos, 32);
    std::uint64_t m = sumValues(neg, 32);
    return static_cast<std::int64_t>(p) -
           static_cast<std::int64_t>(m);
}

} // namespace coruscant
