/**
 * @file
 * Functional binary / ternary network primitives through PIM ops
 * (paper Sec. IV, the DrAcc and NID modes of Table IV).
 *
 * Binary (XNOR-net / NID flavor): activations and weights in {-1,+1}
 * are bit-encoded; a dot product is n - 2*popcount(a XOR w), with the
 * XOR computed by one transverse read and the popcount by the
 * in-memory reduction: bit chunks are staged as TR-window rows, one
 * TR-all counts each wire's ones (0..7), and the per-wire counts are
 * summed with multi-operand additions.
 *
 * Ternary (DrAcc flavor): weights in {-1,0,+1} select activations
 * into a positive and a negative accumulation group; both groups are
 * summed with multi-operand additions and subtracted via the
 * complement trick (no multiplier anywhere).
 */

#ifndef CORUSCANT_APPS_CNN_QUANTIZED_OPS_HPP
#define CORUSCANT_APPS_CNN_QUANTIZED_OPS_HPP

#include <cstdint>
#include <vector>

#include "core/coruscant_unit.hpp"

namespace coruscant {

/** Binary/ternary dot products and small conv layers on PIM. */
class QuantizedPimOps
{
  public:
    explicit QuantizedPimOps(const DeviceParams &params =
                                 DeviceParams::coruscantDefault());

    /**
     * Population count of the low @p n bits of @p bits via staged
     * TR-window chunks plus addition of the per-wire counts.
     */
    std::uint64_t popcount(const BitVector &bits, std::size_t n);

    /**
     * Dot product of two {-1,+1} vectors bit-encoded in @p a and
     * @p w ('1' bit = +1): returns sum_i a_i * w_i = n - 2*HD(a,w).
     */
    std::int64_t binaryDot(const BitVector &a, const BitVector &w,
                           std::size_t n);

    /**
     * Ternary dot product: sum of x[i]*w[i] with w[i] in {-1,0,+1}
     * and x[i] unsigned 8-bit, computed with multi-operand additions
     * only.
     */
    std::int64_t ternaryDot(const std::vector<std::uint8_t> &x,
                            const std::vector<std::int8_t> &w);

    /**
     * One binary convolution output: the window and kernel are
     * {-1,+1} planes of size k*k*c (bit-encoded, index-aligned).
     */
    std::int64_t
    binaryConvOutput(const BitVector &window, const BitVector &kernel,
                     std::size_t elems)
    {
        return binaryDot(window, kernel, elems);
    }

    const CostLedger &ledger() const { return unit.ledger(); }
    void resetCosts() { unit.resetCosts(); }

  private:
    /** Sum a list of unsigned values via packed-lane PIM additions. */
    std::uint64_t sumValues(const std::vector<std::uint64_t> &values,
                            std::size_t lane_bits);

    CoruscantUnit unit;
};

} // namespace coruscant

#endif // CORUSCANT_APPS_CNN_QUANTIZED_OPS_HPP
