#include "apps/cnn/throughput_model.hpp"

#include <cmath>

#include "baselines/cpu_system.hpp"
#include "baselines/dwm_pim_baselines.hpp"
#include "core/op_cost.hpp"
#include "util/logging.hpp"

namespace coruscant {

const char *
cnnSchemeName(CnnScheme s)
{
    switch (s) {
      case CnnScheme::Coruscant3: return "CORUSCANT-3";
      case CnnScheme::Coruscant5: return "CORUSCANT-5";
      case CnnScheme::Coruscant7: return "CORUSCANT-7";
      case CnnScheme::Spim: return "SPIM";
      case CnnScheme::Ambit: return "Ambit";
      case CnnScheme::Elp2Im: return "ELP2IM";
      case CnnScheme::Isaac: return "ISAAC";
    }
    return "?";
}

const char *
cnnModeName(CnnMode m)
{
    switch (m) {
      case CnnMode::FullPrecision: return "full-precision";
      case CnnMode::TernaryWeight: return "ternary (DrAcc)";
      case CnnMode::BinaryWeight: return "binary (NID)";
    }
    return "?";
}

namespace {

// ---------------------------------------------------------------------
// Dispatch/marshaling constants (documented calibration):
//  - dwmDispatchOverhead: per-item command/queueing cost in the DWM
//    PIM high-throughput mode; fitted from the paper's CORUSCANT-3 vs
//    CORUSCANT-7 full-precision ratio (71.1 vs 90.5 FPS on AlexNet
//    implies ~86 cycles of per-item overhead around the 105- vs
//    64-cycle multiplies).
//  - spimDispatchOverhead: SPIM moves operands into its dedicated
//    skyrmion computing units and back; fitted from the paper's SPIM
//    vs CORUSCANT-7 ratio (32.1 vs 90.5 FPS).
//  - dwmMarshalPerOperand / dramMarshalPerOperand: cycles to stage one
//    partial-sum operand row in the quantized modes; fitted from the
//    CORUSCANT-3 vs CORUSCANT-7 ternary ratio and the ELP2IM ternary
//    cell respectively.
//  - bwnReductionFactor: NID's popcount tree is shallower than the
//    DrAcc accumulation (binary instead of ternary partial sums).
// ---------------------------------------------------------------------
constexpr double dwmDispatchOverhead = 86.0;
constexpr double spimDispatchOverhead = 225.0;
constexpr double dwmMarshalPerOperand = 4.3;
constexpr double dramMarshalPerOperand = 26.3;
constexpr double bwnReductionFactor = 0.35;

// Anchor cells: one published Table IV value per (network, mode).
struct Anchor
{
    const char *network;
    CnnMode mode;
    CnnScheme scheme;
    double fps;
};

constexpr Anchor anchors[] = {
    {"alexnet", CnnMode::FullPrecision, CnnScheme::Coruscant7, 90.5},
    {"lenet5", CnnMode::FullPrecision, CnnScheme::Coruscant7, 163.0},
    {"alexnet", CnnMode::TernaryWeight, CnnScheme::Coruscant3, 358.0},
    {"lenet5", CnnMode::TernaryWeight, CnnScheme::Coruscant3, 22172.0},
    {"alexnet", CnnMode::BinaryWeight, CnnScheme::Elp2Im, 253.0},
    {"lenet5", CnnMode::BinaryWeight, CnnScheme::Elp2Im, 9959.0},
};

std::size_t
schemeTrd(CnnScheme s)
{
    switch (s) {
      case CnnScheme::Coruscant3: return 3;
      case CnnScheme::Coruscant5: return 5;
      case CnnScheme::Coruscant7: return 7;
      default: return 0;
    }
}

/** 8-bit multiply latency per scheme (measured / published). */
double
multiplyCycles(CnnScheme s)
{
    switch (s) {
      case CnnScheme::Coruscant3:
      case CnnScheme::Coruscant5:
      case CnnScheme::Coruscant7: {
        static const double c3 =
            CoruscantCostModel(3).multiply(8).cycles;
        static const double c5 =
            CoruscantCostModel(5).multiply(8).cycles;
        static const double c7 =
            CoruscantCostModel(7).multiply(8).cycles;
        return s == CnnScheme::Coruscant3 ? c3
               : s == CnnScheme::Coruscant5 ? c5
                                            : c7;
      }
      case CnnScheme::Spim: {
        // Bit-serial multiply plus the amortized accumulation share
        // (latency-optimized five-operand adds consume four values).
        auto spim = DwmPimBaseline::spim();
        return static_cast<double>(spim.multiplyCost(8).cycles) +
               static_cast<double>(
                   spim.addCost(5, 8, ComposeMode::LatencyOptimized)
                       .cycles) /
                   4.0;
      }
      default:
        panic("multiply not modeled for ", cnnSchemeName(s));
    }
}

/**
 * Cost of reducing m partial-sum operands to one value (quantized
 * modes), excluding marshaling.
 */
double
reductionCycles(CnnScheme s, double m)
{
    if (m <= 1)
        return 0;
    switch (s) {
      case CnnScheme::Coruscant7:
        // 7->3 steps consume four operands each, then one addition.
        return std::ceil(std::max(0.0, m - 5.0) / 4.0) * 4.0 + 26.0;
      case CnnScheme::Coruscant5:
        return std::ceil(std::max(0.0, m - 3.0) / 2.0) * 4.0 + 22.0;
      case CnnScheme::Coruscant3:
        return std::max(0.0, m - 2.0) * 3.0 + 19.0;
      case CnnScheme::Elp2Im:
        // Paper Sec. IV: one CLA addition step = 40 cycles; the
        // pairwise tree needs ceil(log2 m) steps.
        return std::ceil(std::log2(m)) * 40.0;
      case CnnScheme::Ambit:
        // Same tree with Ambit's AAP-based step (4 AAP vs 2 AP ops:
        // 3.43x the ELP2IM step).
        return std::ceil(std::log2(m)) * 137.0;
      default:
        panic("reduction not modeled for ", cnnSchemeName(s));
    }
}

double
dispatchOverhead(CnnScheme s)
{
    switch (s) {
      case CnnScheme::Spim:
        return spimDispatchOverhead;
      default:
        return dwmDispatchOverhead;
    }
}

double
marshalPerOperand(CnnScheme s)
{
    return (s == CnnScheme::Ambit || s == CnnScheme::Elp2Im)
               ? dramMarshalPerOperand
               : dwmMarshalPerOperand;
}

/** Operands per output value for a layer (partial products + bias). */
double
operandsPerOutput(const CnnLayer &l)
{
    switch (l.type) {
      case CnnLayer::Type::Conv:
        return static_cast<double>(l.kernel * l.kernel * l.inC) +
               static_cast<double>(l.inC - 1);
      case CnnLayer::Type::FullyConnected:
        return static_cast<double>(l.inFeatures);
      case CnnLayer::Type::Pool:
        return static_cast<double>(l.kernel * l.kernel);
    }
    return 0;
}

} // namespace

bool
CnnThroughputModel::supported(CnnScheme s, CnnMode m)
{
    switch (m) {
      case CnnMode::FullPrecision:
        return s == CnnScheme::Coruscant3 || s == CnnScheme::Coruscant5
               || s == CnnScheme::Coruscant7 || s == CnnScheme::Spim
               || s == CnnScheme::Isaac;
      case CnnMode::TernaryWeight:
        return s == CnnScheme::Coruscant3 || s == CnnScheme::Coruscant5
               || s == CnnScheme::Coruscant7 || s == CnnScheme::Ambit
               || s == CnnScheme::Elp2Im;
      case CnnMode::BinaryWeight:
        return s == CnnScheme::Ambit || s == CnnScheme::Elp2Im;
    }
    return false;
}

double
CnnThroughputModel::work(const CnnNetwork &net, CnnScheme scheme,
                         CnnMode mode) const
{
    fatalIf(!supported(scheme, mode), cnnSchemeName(scheme),
            " is not part of the ", cnnModeName(mode), " comparison");
    double total = 0;
    switch (mode) {
      case CnnMode::FullPrecision: {
        double per_mac =
            multiplyCycles(scheme) + dispatchOverhead(scheme);
        total = static_cast<double>(net.totalMacs()) * per_mac;
        break;
      }
      case CnnMode::TernaryWeight:
      case CnnMode::BinaryWeight: {
        double factor =
            mode == CnnMode::BinaryWeight ? bwnReductionFactor : 1.0;
        for (const auto &l : net.layers) {
            if (l.type == CnnLayer::Type::Pool)
                continue;
            double m = operandsPerOutput(l);
            double per_output =
                factor * reductionCycles(scheme, m) +
                marshalPerOperand(scheme) * m +
                dispatchOverhead(scheme);
            total += static_cast<double>(l.outputs()) * per_output;
        }
        break;
      }
    }
    return total;
}

double
CnnThroughputModel::anchorScale(const CnnNetwork &net,
                                CnnMode mode) const
{
    for (const auto &a : anchors) {
        if (net.name == a.network && mode == a.mode)
            return a.fps * work(net, a.scheme, a.mode);
    }
    fatal("no throughput anchor for network ", net.name);
}

double
CnnThroughputModel::fps(const CnnNetwork &net, CnnScheme scheme,
                        CnnMode mode) const
{
    if (scheme == CnnScheme::Isaac) {
        // Published crossbar throughput (paper cites ISAAC directly).
        if (net.name == "alexnet")
            return IsaacModel::alexnetFps;
        if (net.name == "lenet5")
            return IsaacModel::lenet5Fps;
        return IsaacModel::estimateFps(
            static_cast<double>(net.totalMacs()));
    }
    return anchorScale(net, mode) / work(net, scheme, mode);
}

double
CnnThroughputModel::fpsWithNmr(const CnnNetwork &net, CnnScheme scheme,
                               CnnMode mode, std::size_t n) const
{
    std::size_t trd = schemeTrd(scheme);
    fatalIf(trd == 0, "N-modular redundancy is a CORUSCANT capability");
    fatalIf(n != 3 && n != 5 && n != 7, "N must be 3, 5, or 7");
    fatalIf(n > trd, "N = ", n, " does not fit in TRD = ", trd);
    // Every operation repeats N times; each repetition group adds a
    // vote (3 cycles) plus the re-staging of the N replica rows.
    double base_op = mode == CnnMode::FullPrecision
                         ? multiplyCycles(scheme)
                         : reductionCycles(scheme, 25.0);
    double vote = 3.0 + 2.0 * static_cast<double>(n);
    double factor = static_cast<double>(n) *
                    (1.0 + vote / (base_op + dispatchOverhead(scheme)));
    return fps(net, scheme, mode) / factor;
}

std::vector<CnnCell>
CnnThroughputModel::table(const CnnNetwork &net, CnnMode mode) const
{
    std::vector<CnnCell> cells;
    for (CnnScheme s :
         {CnnScheme::Spim, CnnScheme::Isaac, CnnScheme::Ambit,
          CnnScheme::Elp2Im, CnnScheme::Coruscant3,
          CnnScheme::Coruscant5, CnnScheme::Coruscant7}) {
        if (s == CnnScheme::Isaac && mode != CnnMode::FullPrecision)
            continue;
        if (!supported(s, mode) && s != CnnScheme::Isaac)
            continue;
        cells.push_back({s, mode, fps(net, s, mode)});
    }
    return cells;
}

} // namespace coruscant
