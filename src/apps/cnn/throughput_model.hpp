/**
 * @file
 * CNN inference throughput model (paper Table IV and Table VI).
 *
 * The model computes, per network and inference mode, a work figure
 *
 *     W(scheme) = sum over layers of
 *                   (work items) x (per-item op cost + marshaling)
 *
 * and converts it to FPS by anchoring ONE cell of each
 * (network, mode) group on the paper's published value; every other
 * cell in the group is then emergent from the schemes' operation
 * costs:
 *
 *   - full precision: per-MAC cost = the scheme's 8-bit multiply
 *     latency (+ amortized accumulation) + a per-item dispatch
 *     overhead;
 *   - ternary weights (DrAcc): per-output cost = the reduction of the
 *     m = K^2*Ic (+Ic-1) partial sums — CSA 7->3/3->2 steps for
 *     CORUSCANT, 40-cycle CLA steps for ELP2IM (paper Sec. IV), their
 *     TRA-scaled equivalent for Ambit — plus per-operand marshaling;
 *   - binary weights (NID): like ternary with the shallower popcount
 *     reduction.
 *
 * Anchor cells and the dispatch/marshaling constants are documented
 * in throughput_model.cpp; EXPERIMENTS.md reports paper-vs-measured
 * for every cell.
 */

#ifndef CORUSCANT_APPS_CNN_THROUGHPUT_MODEL_HPP
#define CORUSCANT_APPS_CNN_THROUGHPUT_MODEL_HPP

#include <string>
#include <vector>

#include "apps/cnn/network.hpp"

namespace coruscant {

/** Inference modes of paper Table IV. */
enum class CnnMode
{
    FullPrecision, ///< 8-bit integer MACs
    TernaryWeight, ///< DrAcc-style (w in {-1,0,1})
    BinaryWeight,  ///< NID-style (w in {0,1})
};

/** Schemes compared in Table IV. */
enum class CnnScheme
{
    Coruscant3,
    Coruscant5,
    Coruscant7,
    Spim,
    Ambit,
    Elp2Im,
    Isaac,
};

const char *cnnSchemeName(CnnScheme s);
const char *cnnModeName(CnnMode m);

/** Table IV cell. */
struct CnnCell
{
    CnnScheme scheme;
    CnnMode mode;
    double fps = 0.0;
};

/** Throughput model for both CNNs across schemes and modes. */
class CnnThroughputModel
{
  public:
    CnnThroughputModel() = default;

    /** Whether a scheme participates in a mode (Table IV structure). */
    static bool supported(CnnScheme s, CnnMode m);

    /** Frames per second for one cell. */
    double fps(const CnnNetwork &net, CnnScheme scheme,
               CnnMode mode) const;

    /**
     * FPS under N-modular redundancy (paper Table VI): the operation
     * stream is replicated N times plus voting steps.
     * @param n 3, 5, or 7; requires a CORUSCANT scheme with TRD >= n
     */
    double fpsWithNmr(const CnnNetwork &net, CnnScheme scheme,
                      CnnMode mode, std::size_t n) const;

    /** All supported cells for a network/mode. */
    std::vector<CnnCell> table(const CnnNetwork &net, CnnMode mode) const;

    /** Work figure (cycles per effective lane); exposed for tests. */
    double work(const CnnNetwork &net, CnnScheme scheme,
                CnnMode mode) const;

  private:
    double anchorScale(const CnnNetwork &net, CnnMode mode) const;
};

} // namespace coruscant

#endif // CORUSCANT_APPS_CNN_THROUGHPUT_MODEL_HPP
