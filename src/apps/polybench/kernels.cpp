#include "apps/polybench/kernels.hpp"

#include <cmath>

namespace coruscant {

namespace {

/** Deterministic pseudo-data so checksums are reproducible. */
double
seed(std::size_t i, std::size_t j, std::size_t n)
{
    return static_cast<double>((i * j + 1) % n) / static_cast<double>(n);
}

double
seedv(std::size_t i, std::size_t n)
{
    return static_cast<double>(i % n) / static_cast<double>(n);
}

using Matrix = std::vector<std::vector<double>>;

Matrix
makeMatrix(std::size_t n, std::size_t salt = 0)
{
    Matrix m(n, std::vector<double>(n));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m[i][j] = seed(i + salt, j + 2 * salt + 1, n);
    return m;
}

std::vector<double>
makeVector(std::size_t n, std::size_t salt = 0)
{
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = seedv(i + salt, n);
    return v;
}

double
checksum(const Matrix &m)
{
    double s = 0;
    for (const auto &row : m)
        for (double v : row)
            s += v;
    return s;
}

double
checksum(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return s;
}

/** C = alpha*A*B + beta*C with trace recording. */
void
gemmInto(Matrix &c, const Matrix &a, const Matrix &b, double alpha,
         double beta, OpRecorder &rec)
{
    std::size_t n = c.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            rec.loads += 1; // C[i][j]
            double acc = beta * c[i][j];
            rec.muls += 1;
            for (std::size_t k = 0; k < n; ++k) {
                rec.loads += 2; // A[i][k], B[k][j]
                acc += alpha * a[i][k] * b[k][j];
                rec.muls += 2;
                rec.adds += 1;
            }
            c[i][j] = acc;
            rec.stores += 1;
        }
    }
}

/** y = A*x (or A^T*x) with trace recording. */
void
matvecInto(std::vector<double> &y, const Matrix &a,
           const std::vector<double> &x, bool transpose, OpRecorder &rec)
{
    std::size_t n = y.size();
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0;
        for (std::size_t j = 0; j < n; ++j) {
            rec.loads += 2;
            acc += (transpose ? a[j][i] : a[i][j]) * x[j];
            rec.muls += 1;
            rec.adds += 1;
        }
        y[i] += acc;
        rec.loads += 1;
        rec.adds += 1;
        rec.stores += 1;
    }
}

} // namespace

KernelRun
runGemm(std::size_t n)
{
    KernelRun run{"gemm", {}, 0};
    Matrix a = makeMatrix(n, 1), b = makeMatrix(n, 2),
           c = makeMatrix(n, 3);
    gemmInto(c, a, b, 1.5, 1.2, run.trace);
    run.checksum = checksum(c);
    return run;
}

KernelRun
run2mm(std::size_t n)
{
    KernelRun run{"2mm", {}, 0};
    Matrix a = makeMatrix(n, 1), b = makeMatrix(n, 2),
           c = makeMatrix(n, 3), d = makeMatrix(n, 4);
    Matrix tmp(n, std::vector<double>(n, 0.0));
    gemmInto(tmp, a, b, 1.1, 0.0, run.trace);
    gemmInto(d, tmp, c, 1.0, 1.3, run.trace);
    run.checksum = checksum(d);
    return run;
}

KernelRun
run3mm(std::size_t n)
{
    KernelRun run{"3mm", {}, 0};
    Matrix a = makeMatrix(n, 1), b = makeMatrix(n, 2),
           c = makeMatrix(n, 3), d = makeMatrix(n, 4);
    Matrix e(n, std::vector<double>(n, 0.0));
    Matrix f(n, std::vector<double>(n, 0.0));
    Matrix g(n, std::vector<double>(n, 0.0));
    gemmInto(e, a, b, 1.0, 0.0, run.trace);
    gemmInto(f, c, d, 1.0, 0.0, run.trace);
    gemmInto(g, e, f, 1.0, 0.0, run.trace);
    run.checksum = checksum(g);
    return run;
}

KernelRun
runGemver(std::size_t n)
{
    KernelRun run{"gemver", {}, 0};
    Matrix a = makeMatrix(n, 1);
    auto u1 = makeVector(n, 1), v1 = makeVector(n, 2),
         u2 = makeVector(n, 3), v2 = makeVector(n, 4),
         y = makeVector(n, 5), z = makeVector(n, 6);
    std::vector<double> x(n, 0.0), w(n, 0.0);
    auto &rec = run.trace;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            rec.loads += 5;
            a[i][j] += u1[i] * v1[j] + u2[i] * v2[j];
            rec.muls += 2;
            rec.adds += 2;
            rec.stores += 1;
        }
    }
    matvecInto(x, a, y, true, rec);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] += z[i];
        rec.loads += 2;
        rec.adds += 1;
        rec.stores += 1;
    }
    matvecInto(w, a, x, false, rec);
    run.checksum = checksum(w);
    return run;
}

KernelRun
runGesummv(std::size_t n)
{
    KernelRun run{"gesummv", {}, 0};
    Matrix a = makeMatrix(n, 1), b = makeMatrix(n, 2);
    auto x = makeVector(n, 3);
    std::vector<double> tmp(n, 0.0), y(n, 0.0);
    auto &rec = run.trace;
    matvecInto(tmp, a, x, false, rec);
    matvecInto(y, b, x, false, rec);
    for (std::size_t i = 0; i < n; ++i) {
        y[i] = 1.4 * tmp[i] + 1.2 * y[i];
        rec.loads += 2;
        rec.muls += 2;
        rec.adds += 1;
        rec.stores += 1;
    }
    run.checksum = checksum(y);
    return run;
}

KernelRun
runAtax(std::size_t n)
{
    KernelRun run{"atax", {}, 0};
    Matrix a = makeMatrix(n, 1);
    auto x = makeVector(n, 2);
    std::vector<double> tmp(n, 0.0), y(n, 0.0);
    matvecInto(tmp, a, x, false, run.trace);
    matvecInto(y, a, tmp, true, run.trace);
    run.checksum = checksum(y);
    return run;
}

KernelRun
runBicg(std::size_t n)
{
    KernelRun run{"bicg", {}, 0};
    Matrix a = makeMatrix(n, 1);
    auto p = makeVector(n, 2), r = makeVector(n, 3);
    std::vector<double> q(n, 0.0), s(n, 0.0);
    matvecInto(q, a, p, false, run.trace);
    matvecInto(s, a, r, true, run.trace);
    run.checksum = checksum(q) + checksum(s);
    return run;
}

KernelRun
runMvt(std::size_t n)
{
    KernelRun run{"mvt", {}, 0};
    Matrix a = makeMatrix(n, 1);
    auto y1 = makeVector(n, 2), y2 = makeVector(n, 3);
    std::vector<double> x1(n, 0.0), x2(n, 0.0);
    matvecInto(x1, a, y1, false, run.trace);
    matvecInto(x2, a, y2, true, run.trace);
    run.checksum = checksum(x1) + checksum(x2);
    return run;
}

KernelRun
runSyrk(std::size_t n)
{
    KernelRun run{"syrk", {}, 0};
    Matrix a = makeMatrix(n, 1), c = makeMatrix(n, 2);
    auto &rec = run.trace;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            rec.loads += 1;
            double acc = 1.2 * c[i][j];
            rec.muls += 1;
            for (std::size_t k = 0; k < n; ++k) {
                rec.loads += 2;
                acc += 1.5 * a[i][k] * a[j][k];
                rec.muls += 2;
                rec.adds += 1;
            }
            c[i][j] = acc;
            rec.stores += 1;
        }
    }
    run.checksum = checksum(c);
    return run;
}

KernelRun
runSyr2k(std::size_t n)
{
    KernelRun run{"syr2k", {}, 0};
    Matrix a = makeMatrix(n, 1), b = makeMatrix(n, 2),
           c = makeMatrix(n, 3);
    auto &rec = run.trace;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            rec.loads += 1;
            double acc = 1.2 * c[i][j];
            rec.muls += 1;
            for (std::size_t k = 0; k < n; ++k) {
                rec.loads += 4;
                acc += 1.5 * (a[i][k] * b[j][k] + b[i][k] * a[j][k]);
                rec.muls += 3;
                rec.adds += 2;
            }
            c[i][j] = acc;
            rec.stores += 1;
        }
    }
    run.checksum = checksum(c);
    return run;
}

KernelRun
runTrmm(std::size_t n)
{
    KernelRun run{"trmm", {}, 0};
    Matrix a = makeMatrix(n, 1), b = makeMatrix(n, 2);
    auto &rec = run.trace;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0;
            for (std::size_t k = i + 1; k < n; ++k) {
                rec.loads += 2;
                acc += a[k][i] * b[k][j];
                rec.muls += 1;
                rec.adds += 1;
            }
            b[i][j] = 1.1 * (b[i][j] + acc);
            rec.loads += 1;
            rec.muls += 1;
            rec.adds += 1;
            rec.stores += 1;
        }
    }
    run.checksum = checksum(b);
    return run;
}

KernelRun
runDoitgen(std::size_t n)
{
    // Contraction over the innermost dimension of an n x n x n tensor
    // (Polybench doitgen with nr = nq = np = n).
    KernelRun run{"doitgen", {}, 0};
    auto &rec = run.trace;
    Matrix c4 = makeMatrix(n, 1);
    std::vector<double> sum(n);
    double cs = 0;
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t q = 0; q < n; ++q) {
            for (std::size_t p = 0; p < n; ++p) {
                double acc = 0;
                for (std::size_t s = 0; s < n; ++s) {
                    rec.loads += 2;
                    acc += seed(r + q, s, n) * c4[s][p];
                    rec.muls += 1;
                    rec.adds += 1;
                }
                sum[p] = acc;
                rec.stores += 1;
            }
            for (std::size_t p = 0; p < n; ++p)
                cs += sum[p];
        }
    }
    run.checksum = cs;
    return run;
}

std::vector<KernelRun>
runAllPolybench(std::size_t n)
{
    return {runGemm(n),  run2mm(n),    run3mm(n),  runGemver(n),
            runGesummv(n), runAtax(n), runBicg(n), runMvt(n),
            runSyrk(n),  runSyr2k(n),  runTrmm(n), runDoitgen(n)};
}

} // namespace coruscant
