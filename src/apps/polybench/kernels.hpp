/**
 * @file
 * Polybench kernels with operation recording (paper Sec. V-C).
 *
 * The paper extracted Polybench traces with an Intel Pin tool and
 * mapped the addition/multiplication operations to PIM.  We rebuild
 * the equivalent: each kernel is implemented directly (computing real
 * results on real data) and instrumented with an OpRecorder that
 * counts the arithmetic operations and the element loads/stores a
 * trace would contain.  The selected kernels are the
 * addition/multiplication-heavy subset the paper targets: linear
 * algebra (2mm, 3mm, gemm, gemver, gesummv, atax, bicg, mvt, syrk,
 * syr2k, trmm) and the doitgen stencil-like contraction.
 */

#ifndef CORUSCANT_APPS_POLYBENCH_KERNELS_HPP
#define CORUSCANT_APPS_POLYBENCH_KERNELS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace coruscant {

/** Pin-tool-equivalent operation/access counts for one kernel run. */
struct OpRecorder
{
    std::uint64_t adds = 0;   ///< floating add/sub operations
    std::uint64_t muls = 0;   ///< floating multiply operations
    std::uint64_t loads = 0;  ///< element loads
    std::uint64_t stores = 0; ///< element stores

    void
    merge(const OpRecorder &o)
    {
        adds += o.adds;
        muls += o.muls;
        loads += o.loads;
        stores += o.stores;
    }
};

/** A named kernel run: its trace and a checksum of the real output. */
struct KernelRun
{
    std::string name;
    OpRecorder trace;
    double checksum = 0.0; ///< sum of output elements (functional check)
};

/** All Polybench kernels in the reproduction, run at size @p n. */
std::vector<KernelRun> runAllPolybench(std::size_t n);

/** Individual kernels (sizes: square matrices / vectors of @p n). */
KernelRun runGemm(std::size_t n);
KernelRun run2mm(std::size_t n);
KernelRun run3mm(std::size_t n);
KernelRun runGemver(std::size_t n);
KernelRun runGesummv(std::size_t n);
KernelRun runAtax(std::size_t n);
KernelRun runBicg(std::size_t n);
KernelRun runMvt(std::size_t n);
KernelRun runSyrk(std::size_t n);
KernelRun runSyr2k(std::size_t n);
KernelRun runTrmm(std::size_t n);
KernelRun runDoitgen(std::size_t n);

} // namespace coruscant

#endif // CORUSCANT_APPS_POLYBENCH_KERNELS_HPP
