#include "apps/polybench/system_model.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/cpu_system.hpp"

namespace coruscant {

PolybenchSystemModel::PolybenchSystemModel(const MemoryConfig &config,
                                           const SystemModelParams &params)
    : cfg(config), p(params), cost(config.device.trd)
{}

std::uint64_t
PolybenchSystemModel::cpuLatency(const OpRecorder &trace,
                                 const DdrTiming &timing) const
{
    double accesses =
        static_cast<double>(trace.loads + trace.stores);
    if (accesses == 0)
        return 0;
    // Effective lines: unit-stride accesses amortize 16 elements per
    // 64 B line; strided accesses move a line per element.
    double elements_per_line = 64.0 / 4.0;
    double lines = accesses * ((1.0 - p.strideFraction)
                               / elements_per_line
                               + p.strideFraction);
    double t_mem =
        static_cast<double>(timing.readCycles(p.cpuDwmAvgShift)) +
        p.controllerOverhead;
    double per_access = p.cacheHitFraction * p.cacheLatency +
                        (1.0 - p.cacheHitFraction) * t_mem;
    // Latency-bound: bounded miss overlap.  Bandwidth-bound: miss
    // traffic on the 16 B/cycle data bus.
    double latency_bound =
        accesses * per_access / p.memoryLevelParallelism;
    double bus_bound =
        lines * (1.0 - p.cacheHitFraction) * 4.0; // 4 cycles per line
    return static_cast<std::uint64_t>(
        std::llround(std::max(latency_bound, bus_bound)));
}

PolybenchResult
PolybenchSystemModel::evaluate(const KernelRun &run) const
{
    PolybenchResult res;
    res.kernel = run.name;
    const OpRecorder &t = run.trace;

    res.cpuDramCycles = cpuLatency(t, DdrTiming::dram());
    res.cpuDwmCycles = cpuLatency(t, DdrTiming::dwm());

    // ------------------------------------------------------------------
    // PIM latency: lane-pack the adds and multiplies, dispatch over the
    // PIM tiles in high-throughput mode.
    // ------------------------------------------------------------------
    std::size_t add_lanes = cfg.device.wiresPerDbc / p.dataBits;
    std::size_t mul_lanes = cfg.device.wiresPerDbc / (2 * p.dataBits);
    std::uint64_t add_ops = (t.adds + add_lanes - 1) / add_lanes;
    std::uint64_t mul_ops = (t.muls + mul_lanes - 1) / mul_lanes;

    OpCost add_cost = cost.add(2, p.dataBits);
    OpCost mul_cost = cost.multiply(p.dataBits);
    // Operand marshaling through the subarray row buffer.
    std::uint64_t marshal =
        static_cast<std::uint64_t>(p.marshaledRows) *
        (cfg.dwmTiming.readCycles(1) + cfg.dwmTiming.writeCycles(1));

    std::size_t pim_tiles =
        cfg.banks * cfg.subarraysPerBank; // one PIM tile per subarray

    // A PIM tile fires its 16 DBC lanes as one unit; issue commands
    // are per tile-op.
    std::uint64_t add_tile_ops =
        (add_ops + cfg.pimDbcsPerSubarray - 1) / cfg.pimDbcsPerSubarray;
    std::uint64_t mul_tile_ops =
        (mul_ops + cfg.pimDbcsPerSubarray - 1) / cfg.pimDbcsPerSubarray;
    CommandQueueModel q2(pim_tiles);
    auto sa = q2.runUniform(
        add_tile_ops, add_cost.cycles + marshal,
        static_cast<std::uint64_t>(std::llround(p.issueCmdsPerTileOp)));
    CommandQueueModel q3(pim_tiles);
    auto sm = q3.runUniform(
        mul_tile_ops, mul_cost.cycles + marshal,
        static_cast<std::uint64_t>(std::llround(p.issueCmdsPerTileOp)));
    res.pimCycles = sa.makespanCycles + sm.makespanCycles;
    double issue_total = static_cast<double>(sa.issueCycles
                                             + sm.issueCycles);
    res.pimQueueFraction =
        res.pimCycles > 0
            ? std::min(1.0, issue_total
                                / static_cast<double>(res.pimCycles))
            : 0.0;

    // ------------------------------------------------------------------
    // Energy (Fig. 11): CPU system moves every operand over the bus at
    // line granularity and computes in the ALU; PIM computes in place.
    // ------------------------------------------------------------------
    CpuSystem cpu(DdrTiming::dwm());
    double accesses = static_cast<double>(t.loads + t.stores);
    double lines = accesses * ((1.0 - p.strideFraction) / 16.0
                               + p.strideFraction);
    AccessSummary s;
    s.linesRead = static_cast<std::uint64_t>(
        lines * static_cast<double>(t.loads) / accesses);
    s.linesWritten = static_cast<std::uint64_t>(
        lines * static_cast<double>(t.stores) / accesses);
    s.adds32 = t.adds;
    s.muls32 = t.muls;
    res.cpuEnergyPj = cpu.energyPj(s);

    double marshal_energy =
        static_cast<double>(p.marshaledRows) * 512.0 *
        (cfg.device.readEnergyPj + cfg.device.writeEnergyPj);
    res.pimEnergyPj =
        static_cast<double>(add_ops)
            * (add_cost.energyPj * static_cast<double>(add_lanes)
               + marshal_energy) +
        static_cast<double>(mul_ops)
            * (mul_cost.energyPj * static_cast<double>(mul_lanes)
               + marshal_energy);
    return res;
}

std::vector<PolybenchResult>
PolybenchSystemModel::evaluateAll(
    const std::vector<KernelRun> &runs) const
{
    std::vector<PolybenchResult> out;
    out.reserve(runs.size());
    for (const auto &run : runs)
        out.push_back(evaluate(run));
    return out;
}

} // namespace coruscant
