/**
 * @file
 * System-level latency/energy model for the Polybench experiments
 * (paper Fig. 10 and Fig. 11).
 *
 * Three systems are compared on the same kernel trace:
 *   - CPU + DRAM and CPU + DWM: the trace's loads/stores stream
 *     through the cache hierarchy; misses pay the technology's access
 *     time.  The CPU sustains a bounded number of outstanding misses
 *     (memory-level parallelism), which bounds how much latency
 *     overlaps.
 *   - CORUSCANT PIM: additions and multiplications execute in the
 *     PIM-enabled DBCs.  Every PIM tile processes one 512-bit row per
 *     operation (16 32-bit lanes), operand rows are marshaled through
 *     the subarray row buffer, and the per-channel command bus issues
 *     the address-bearing commands — the paper's "high throughput
 *     mode", whose queuing delay dominates (~80%) the PIM runtime.
 *
 * Modeling constants below are documented calibration points; the
 * relative results across kernels are emergent from the traces.
 */

#ifndef CORUSCANT_APPS_POLYBENCH_SYSTEM_MODEL_HPP
#define CORUSCANT_APPS_POLYBENCH_SYSTEM_MODEL_HPP

#include "apps/polybench/kernels.hpp"
#include "arch/config.hpp"
#include "controller/queue_model.hpp"
#include "core/op_cost.hpp"

namespace coruscant {

/** Calibration constants for the system model. */
struct SystemModelParams
{
    // CPU side -------------------------------------------------------
    double cacheHitFraction = 0.87; ///< accesses served on chip
    double cacheLatency = 8.0;      ///< cycles for a cache hit
    double memoryLevelParallelism = 5.5; ///< sustained outstanding misses
    double controllerOverhead = 16.0; ///< per-miss queue/bus overhead
    unsigned cpuDwmAvgShift = 4;    ///< average S for CPU-side accesses
    /** Fraction of accesses with no spatial locality (strided operand
     *  walks): these move a whole 64 B line per element. */
    double strideFraction = 0.30;

    // PIM side -------------------------------------------------------
    std::size_t dataBits = 32;      ///< lane width for polybench data
    /** Address-bearing commands per PIM-tile operation (16 lanes x
     *  one DBC row per tile): each lane op needs ACT+CAS pairs for two
     *  operand copies, the compute trigger, and the write-back. */
    double issueCmdsPerTileOp = 128.0;
    /** Operand/result rows marshaled per operation through the
     *  subarray row buffer. */
    std::size_t marshaledRows = 3;
};

/** Per-kernel results for Fig. 10 / Fig. 11. */
struct PolybenchResult
{
    std::string kernel;
    std::uint64_t cpuDramCycles = 0;
    std::uint64_t cpuDwmCycles = 0;
    std::uint64_t pimCycles = 0;
    double cpuEnergyPj = 0.0; ///< data movement + CPU ALU (DWM system)
    double pimEnergyPj = 0.0;
    double pimQueueFraction = 0.0; ///< share of PIM time issue-bound

    double
    latencyGainVsDwm() const
    {
        return static_cast<double>(cpuDwmCycles) /
               static_cast<double>(pimCycles);
    }

    double
    latencyGainVsDram() const
    {
        return static_cast<double>(cpuDramCycles) /
               static_cast<double>(pimCycles);
    }

    double
    energyGain() const
    {
        return cpuEnergyPj / pimEnergyPj;
    }
};

/** Evaluates kernel traces on the three systems. */
class PolybenchSystemModel
{
  public:
    explicit PolybenchSystemModel(
        const MemoryConfig &cfg = MemoryConfig{},
        const SystemModelParams &params = SystemModelParams{});

    PolybenchResult evaluate(const KernelRun &run) const;

    /** Evaluate all kernels plus the geometric means. */
    std::vector<PolybenchResult>
    evaluateAll(const std::vector<KernelRun> &runs) const;

    const SystemModelParams &params() const { return p; }

  private:
    std::uint64_t cpuLatency(const OpRecorder &trace,
                             const DdrTiming &timing) const;

    MemoryConfig cfg;
    SystemModelParams p;
    CoruscantCostModel cost;
};

} // namespace coruscant

#endif // CORUSCANT_APPS_POLYBENCH_SYSTEM_MODEL_HPP
