#include "arch/config.hpp"

#include "util/logging.hpp"

namespace coruscant {

const char *
guardPolicyName(GuardPolicy policy)
{
    switch (policy) {
      case GuardPolicy::None: return "none";
      case GuardPolicy::PerAccess: return "per-access";
      case GuardPolicy::PerCpim: return "per-cpim";
      case GuardPolicy::PeriodicScrub: return "periodic-scrub";
    }
    return "?";
}

const char *
eccModeName(EccMode mode)
{
    switch (mode) {
      case EccMode::None: return "none";
      case EccMode::Secded: return "secded";
    }
    return "?";
}

LineAddress
AddressMap::decode(std::uint64_t byte_addr) const
{
    fatalIf(byte_addr >= config.capacityBytes(), "address 0x",
            byte_addr, " beyond capacity");
    std::uint64_t line = byte_addr / config.rowBytes();
    LineAddress loc;
    if (config.interleave == Interleave::BankFirst) {
        loc.bank = line % config.banks;
        line /= config.banks;
        loc.subarray = line % config.subarraysPerBank;
        line /= config.subarraysPerBank;
        loc.tile = line % config.tilesPerSubarray;
        line /= config.tilesPerSubarray;
        loc.dbc = line % config.dbcsPerTile;
        line /= config.dbcsPerTile;
        loc.row = line;
    } else { // RowFirst
        loc.row = line % config.device.domainsPerWire;
        line /= config.device.domainsPerWire;
        loc.dbc = line % config.dbcsPerTile;
        line /= config.dbcsPerTile;
        loc.tile = line % config.tilesPerSubarray;
        line /= config.tilesPerSubarray;
        loc.subarray = line % config.subarraysPerBank;
        line /= config.subarraysPerBank;
        loc.bank = line;
        panicIf(loc.bank >= config.banks, "bank decode out of range");
    }
    panicIf(loc.row >= config.device.domainsPerWire,
            "row decode out of range");
    return loc;
}

std::uint64_t
AddressMap::encode(const LineAddress &loc) const
{
    std::uint64_t line;
    if (config.interleave == Interleave::BankFirst) {
        line = loc.row;
        line = line * config.dbcsPerTile + loc.dbc;
        line = line * config.tilesPerSubarray + loc.tile;
        line = line * config.subarraysPerBank + loc.subarray;
        line = line * config.banks + loc.bank;
    } else {
        line = loc.bank;
        line = line * config.subarraysPerBank + loc.subarray;
        line = line * config.tilesPerSubarray + loc.tile;
        line = line * config.dbcsPerTile + loc.dbc;
        line = line * config.device.domainsPerWire + loc.row;
    }
    return line * config.rowBytes();
}

std::uint64_t
AddressMap::dbcId(const LineAddress &loc) const
{
    std::uint64_t id = loc.bank;
    id = id * config.subarraysPerBank + loc.subarray;
    id = id * config.tilesPerSubarray + loc.tile;
    id = id * config.dbcsPerTile + loc.dbc;
    return id;
}

} // namespace coruscant
