/**
 * @file
 * System-level memory organization (paper Table II / Fig. 2).
 *
 * A 1 GB (8 Gb) DWM main memory presenting a DDR3-1600 interface:
 * 32 banks x 64 subarrays x 16 tiles; each 512x512 tile holds 16 DBCs
 * of 512 nanowires x 32 data domains.  One tile's worth of DBCs per
 * subarray is PIM-enabled ("1-PIM": 15 + 1-PIM DBCs per tile).
 */

#ifndef CORUSCANT_ARCH_CONFIG_HPP
#define CORUSCANT_ARCH_CONFIG_HPP

#include <cstddef>
#include <cstdint>

#include "arch/timing.hpp"
#include "dwm/device_params.hpp"

namespace coruscant {

/**
 * Address interleaving policy: how consecutive cache lines map onto
 * the hierarchy.  BankFirst maximizes bank-level parallelism for
 * streams (each line a different bank; rows within a DBC are revisited
 * with stride 1, keeping DW shifts short).  RowFirst walks the rows of
 * one DBC before moving on — minimal shifting, no bank overlap — the
 * data-placement trade-off studied by the ShiftsReduce line of work
 * the paper builds on.
 */
enum class Interleave
{
    BankFirst,
    RowFirst,
};

/**
 * When the memory verifies DBC alignment with its guard wires
 * (paper Sec. II-D: TR-based misalignment detection).
 */
enum class GuardPolicy
{
    None,          ///< no checks: shifting faults corrupt data silently
    PerAccess,     ///< check the target DBC before every line access
    PerCpim,       ///< controller checks src/dst DBCs around each cpim
    PeriodicScrub, ///< sweep all materialized DBCs every N accesses
};

const char *guardPolicyName(GuardPolicy policy);

/**
 * In-memory ECC protecting the *contents* of stored lines (the guard
 * policies above protect their *position*).  Secded stores extended
 * Hamming check bits in dedicated check-lane nanowires of each DBC and
 * corrects/detects on every port read; it cannot cover in-situ PIM
 * ops, which sense raw operand lanes — those fall back to NMR voting
 * (see ReliabilityConfig::pimNmr).
 */
enum class EccMode
{
    None,   ///< stored bits are returned as-is
    Secded, ///< per-word SECDED over every line read/write
};

const char *eccModeName(EccMode mode);

/** Shift-fault injection and guarded-execution configuration. */
struct ReliabilityConfig
{
    /** Probability that a single shift pulse over-/under-shifts. */
    double shiftFaultRate = 0.0;

    /** Fraction of shift faults that are over-shifts. */
    double overShiftFraction = 0.5;

    /** RNG seed for the shift-fault injector. */
    std::uint64_t shiftFaultSeed = 1;

    /**
     * Also attach the injector to the PIM units' internal DBCs.  Their
     * staging shifts then misalign without any guard to catch it (the
     * controller's recompute rung is the only protection), so this is
     * off by default and exists to study unprotected PIM compute.
     */
    bool faultPimUnits = false;

    /** Alignment-check cadence. */
    GuardPolicy guardPolicy = GuardPolicy::None;

    /** Accesses between sweeps under GuardPolicy::PeriodicScrub. */
    std::size_t scrubInterval = 256;

    /** Retry-ladder depth for guarded cpim execution. */
    std::size_t maxRetries = 2;

    /**
     * Idle cycles charged before the first ladder re-execution,
     * doubling with each further attempt (exponential backoff lets a
     * transient disturbance decay before the retry).  0 retries
     * immediately, preserving the pre-backoff cost accounting.
     */
    std::uint64_t retryBackoffCycles = 0;

    /**
     * Corrected-fault count at which a DBC is retired and its
     * addresses remapped to a spare (0 disables retirement).
     */
    std::uint64_t retireThreshold = 0;

    /** Spare DBCs available for remapping retired clusters. */
    std::size_t spareDbcs = 64;

    /** Per-bit transient data-flip probability per line access. */
    double dataFaultRate = 0.0;

    /** Fraction of domains manufactured stuck-at. */
    double stuckAtFraction = 0.0;

    /** Per-bit per-cycle retention decay rate. */
    double retentionRatePerCycle = 0.0;

    /** RNG seed for the data-fault injector. */
    std::uint64_t dataFaultSeed = 1;

    /** Content protection for stored lines. */
    EccMode eccMode = EccMode::None;

    /** Protected word width for EccMode::Secded ((72,64) default). */
    std::size_t eccWordBits = 64;

    /**
     * NMR replication factor for PIM ops when data faults are enabled
     * (ECC cannot cover in-situ compute).  1 = no voting.
     */
    std::size_t pimNmr = 1;

    bool guarded() const { return guardPolicy != GuardPolicy::None; }

    bool
    dataFaultsEnabled() const
    {
        return dataFaultRate > 0.0 || stuckAtFraction > 0.0 ||
               retentionRatePerCycle > 0.0;
    }

    bool eccEnabled() const { return eccMode != EccMode::None; }
};

/** Geometry and interface of the CORUSCANT main memory. */
struct MemoryConfig
{
    Interleave interleave = Interleave::BankFirst;

    ReliabilityConfig reliability;

    std::size_t banks = 32;
    std::size_t subarraysPerBank = 64;
    std::size_t tilesPerSubarray = 16;
    std::size_t dbcsPerTile = 16;
    std::size_t pimDbcsPerSubarray = 16; ///< one PIM tile's worth

    DeviceParams device = DeviceParams::coruscantDefault();
    DdrTiming dwmTiming = DdrTiming::dwm();
    BusConfig bus;

    /** Bits stored per DBC. */
    std::size_t
    bitsPerDbc() const
    {
        return device.wiresPerDbc * device.domainsPerWire;
    }

    /** All DBCs in the memory. */
    std::size_t
    totalDbcs() const
    {
        return banks * subarraysPerBank * tilesPerSubarray * dbcsPerTile;
    }

    /** PIM-enabled DBCs (paper: 32768 for the default config). */
    std::size_t
    totalPimDbcs() const
    {
        return banks * subarraysPerBank * pimDbcsPerSubarray;
    }

    /** Memory capacity in bytes (1 GiB for the defaults). */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(totalDbcs()) * bitsPerDbc() / 8;
    }

    /** Bytes in one DBC row (one 512-bit cache line). */
    std::size_t
    rowBytes() const
    {
        return device.wiresPerDbc / 8;
    }
};

/** Physical location of one cache-line-sized row. */
struct LineAddress
{
    std::size_t bank;
    std::size_t subarray;
    std::size_t tile;
    std::size_t dbc;
    std::size_t row;

    bool
    operator==(const LineAddress &o) const
    {
        return bank == o.bank && subarray == o.subarray &&
               tile == o.tile && dbc == o.dbc && row == o.row;
    }
};

/**
 * Byte address -> line location.  Lines interleave across banks first
 * (bank bits lowest) so streaming accesses exploit bank parallelism,
 * then walk rows within a DBC to keep shifts short.
 */
class AddressMap
{
  public:
    explicit AddressMap(const MemoryConfig &cfg)
        : config(cfg)
    {}

    /** Decompose @p byte_addr; must be line-aligned capacity-wise. */
    LineAddress decode(std::uint64_t byte_addr) const;

    /** Inverse of decode. */
    std::uint64_t encode(const LineAddress &loc) const;

    /** Flat DBC index for sparse storage keys. */
    std::uint64_t dbcId(const LineAddress &loc) const;

  private:
    MemoryConfig config;
};

} // namespace coruscant

#endif // CORUSCANT_ARCH_CONFIG_HPP
