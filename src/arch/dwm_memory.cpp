#include "arch/dwm_memory.hpp"

#include "util/logging.hpp"

namespace coruscant {

DwmMainMemory::DwmMainMemory(const MemoryConfig &config)
    : cfg(config), amap(config)
{
    cfg.device.validate();
}

DomainBlockCluster &
DwmMainMemory::dbcFor(const LineAddress &loc)
{
    std::uint64_t id = amap.dbcId(loc);
    auto it = dbcs.find(id);
    if (it == dbcs.end()) {
        it = dbcs.emplace(id, std::make_unique<DomainBlockCluster>(
                                  cfg.device))
                 .first;
    }
    return *it->second;
}

unsigned
DwmMainMemory::alignForAccess(DomainBlockCluster &dbc, std::size_t row)
{
    // Pick the port that can reach the row with the shorter shift.
    Port port;
    if (dbc.canAlign(row, Port::Left) && dbc.canAlign(row, Port::Right)) {
        auto dist = [&](Port p) {
            auto cur = static_cast<long>(dbc.rowAtPort(p));
            return std::abs(static_cast<long>(row) - cur);
        };
        port = dist(Port::Left) <= dist(Port::Right) ? Port::Left
                                                     : Port::Right;
    } else if (dbc.canAlign(row, Port::Left)) {
        port = Port::Left;
    } else {
        port = Port::Right;
    }
    std::size_t shifts = dbc.alignRowToPort(row, port);
    shiftSteps += shifts;
    return static_cast<unsigned>(shifts);
}

BitVector
DwmMainMemory::readLine(std::uint64_t byte_addr)
{
    LineAddress loc = amap.decode(byte_addr);
    DomainBlockCluster &dbc = dbcFor(loc);
    unsigned shifts = alignForAccess(dbc, loc.row);
    costs.charge("read", cfg.dwmTiming.readCycles(shifts),
                 static_cast<double>(cfg.device.wiresPerDbc)
                         * cfg.device.readEnergyPj +
                     static_cast<double>(shifts)
                         * static_cast<double>(cfg.device.wiresPerDbc)
                         * cfg.device.shiftEnergyPj);
    // After alignment the row sits under one of the ports.
    Port port = dbc.rowAtPort(Port::Left) == loc.row ? Port::Left
                                                     : Port::Right;
    return dbc.readRowAtPort(port);
}

void
DwmMainMemory::writeLine(std::uint64_t byte_addr, const BitVector &data)
{
    fatalIf(data.size() != cfg.device.wiresPerDbc,
            "line width mismatch");
    LineAddress loc = amap.decode(byte_addr);
    DomainBlockCluster &dbc = dbcFor(loc);
    unsigned shifts = alignForAccess(dbc, loc.row);
    costs.charge("write", cfg.dwmTiming.writeCycles(shifts),
                 static_cast<double>(cfg.device.wiresPerDbc)
                         * cfg.device.writeEnergyPj +
                     static_cast<double>(shifts)
                         * static_cast<double>(cfg.device.wiresPerDbc)
                         * cfg.device.shiftEnergyPj);
    Port port = dbc.rowAtPort(Port::Left) == loc.row ? Port::Left
                                                     : Port::Right;
    dbc.writeRowAtPort(port, data);
}

void
DwmMainMemory::copyLine(std::uint64_t src_addr, std::uint64_t dst_addr)
{
    // Data movement within the memory (paper Sec. III-A): copies
    // within a subarray ride the local row buffer; crossing a
    // subarray or bank uses the hierarchical row-buffer path, which
    // occupies the internal bus for a line burst.
    LineAddress src = amap.decode(src_addr);
    LineAddress dst = amap.decode(dst_addr);
    BitVector line = readLine(src_addr);
    if (src.bank != dst.bank || src.subarray != dst.subarray) {
        costs.charge("interlink", cfg.bus.lineBurstCycles(),
                     64.0 * 2.0); // internal link energy per byte x2
    }
    writeLine(dst_addr, line);
    costs.charge("rowclone", 0, 0); // marker for reporting
}

CoruscantUnit &
DwmMainMemory::pimUnit(std::size_t bank, std::size_t subarray,
                       std::size_t pim_index)
{
    fatalIf(bank >= cfg.banks, "bank out of range");
    fatalIf(subarray >= cfg.subarraysPerBank, "subarray out of range");
    fatalIf(pim_index >= cfg.pimDbcsPerSubarray,
            "PIM DBC index out of range");
    std::uint64_t id =
        (bank * cfg.subarraysPerBank + subarray) * cfg.pimDbcsPerSubarray
        + pim_index;
    auto it = pimUnits.find(id);
    if (it == pimUnits.end()) {
        it = pimUnits
                 .emplace(id,
                          std::make_unique<CoruscantUnit>(cfg.device))
                 .first;
    }
    return *it->second;
}

} // namespace coruscant
