#include "arch/dwm_memory.hpp"

#include <algorithm>
#include <vector>

#include "util/logging.hpp"

namespace coruscant {

DwmMainMemory::DwmMainMemory(const MemoryConfig &config)
    : cfg(config), amap(config), dbcParams(config.device)
{
    cfg.device.validate();
    const ReliabilityConfig &rel = cfg.reliability;
    if (rel.eccEnabled()) {
        // Check-bit lanes are extra nanowires of the same DBC: they
        // shift with the data under the shared controller signal and
        // come back in the same port access as the line they protect.
        ecc.emplace(cfg.device.wiresPerDbc, rel.eccWordBits);
        eccLanes = ecc->checkLanes();
        dbcParams.wiresPerDbc += eccLanes;
    }
    if (rel.guarded()) {
        // One extra nanowire per DBC carries the alignment-guard ramp
        // pattern; the data and check lanes stay fully usable.
        dbcParams.wiresPerDbc += 1;
        guard.emplace(dbcParams, dbcParams.wiresPerDbc - 1);
    }
    if (rel.shiftFaultRate > 0.0) {
        shiftInjector = std::make_unique<ShiftFaultModel>(
            rel.shiftFaultRate, rel.shiftFaultSeed,
            rel.overShiftFraction);
    }
    if (rel.dataFaultsEnabled()) {
        DataFaultConfig dfc;
        dfc.transientFlipRate = rel.dataFaultRate;
        dfc.stuckAtFraction = rel.stuckAtFraction;
        dfc.retentionRatePerCycle = rel.retentionRatePerCycle;
        dfc.seed = rel.dataFaultSeed;
        dataInjector = std::make_unique<DataFaultModel>(dfc);
    }
}

void
DwmMainMemory::attachObs(obs::MetricsRegistry &reg, obs::TraceSink *trace,
                         std::uint32_t pid)
{
    memMetrics = &reg.component("memory");
    dbcMetrics = &reg.component("memory/dbc");
    pimMetrics = &reg.component("memory/pim");
    guardMetrics = &reg.component("guard");
    eccMetrics = &reg.component("ecc");
    traceSink = trace;
    tracePid = pid;
    for (auto &[id, state] : dbcs)
        state->dbc.attachMetrics(dbcMetrics);
    for (auto &[id, unit] : pimUnits) {
        unit->attachMetrics(pimMetrics);
        unit->attachTrace(trace, pid, static_cast<std::uint32_t>(id));
    }
}

DwmMainMemory::MemDbc &
DwmMainMemory::materialize(std::uint64_t physical_id,
                           std::uint64_t logical_id)
{
    auto it = dbcs.emplace(physical_id,
                           std::make_unique<MemDbc>(dbcParams))
                  .first;
    MemDbc &state = *it->second;
    state.logicalId = logical_id;
    state.physicalId = physical_id;
    if (dataInjector &&
        dataInjector->config().retentionRatePerCycle > 0.0) {
        // The retention clock starts when the cluster first holds data.
        state.rowRefreshCycle.assign(cfg.device.domainsPerWire,
                                     costs.cycles());
    }
    if (guard)
        guard->install(state.dbc);
    if (shiftInjector)
        state.dbc.attachShiftFaults(shiftInjector.get());
    if (dbcMetrics)
        state.dbc.attachMetrics(dbcMetrics);
    return state;
}

DwmMainMemory::MemDbc &
DwmMainMemory::dbcFor(const LineAddress &loc)
{
    std::uint64_t logical = amap.dbcId(loc);
    auto rm = remap.find(logical);
    std::uint64_t physical = rm == remap.end() ? logical : rm->second;
    auto it = dbcs.find(physical);
    if (it != dbcs.end())
        return *it->second;
    return materialize(physical, logical);
}

unsigned
DwmMainMemory::alignForAccess(DomainBlockCluster &dbc, std::size_t row)
{
    // Pick the port that can reach the row with the shorter shift.
    Port port;
    if (dbc.canAlign(row, Port::Left) && dbc.canAlign(row, Port::Right)) {
        auto dist = [&](Port p) {
            auto cur = static_cast<long>(dbc.rowAtPort(p));
            return std::abs(static_cast<long>(row) - cur);
        };
        port = dist(Port::Left) <= dist(Port::Right) ? Port::Left
                                                     : Port::Right;
    } else if (dbc.canAlign(row, Port::Left)) {
        port = Port::Left;
    } else {
        port = Port::Right;
    }
    std::size_t shifts = dbc.alignRowToPort(row, port);
    shiftSteps += shifts;
    return static_cast<unsigned>(shifts);
}

DwmMainMemory::MemDbc &
DwmMainMemory::guardMaintain(MemDbc &state, GuardReport *report)
{
    if (!guard)
        return state;
    GuardCorrection r = guard->correct(state.dbc);
    ++guardChecks_;
    double guard_pj = static_cast<double>(r.guardTrs)
                      * cfg.device.trEnergyPj(cfg.device.trd);
    costs.charge("guard", r.guardTrs * cfg.device.trCycles, guard_pj);
    if (guardMetrics) {
        guardMetrics->add(obs::Counter::TrPulses, r.guardTrs);
        guardMetrics->addEnergy(guard_pj);
    }
    std::size_t fix_shifts = r.correctiveShifts;
    if (fix_shifts > 0) {
        double fix_pj = static_cast<double>(fix_shifts)
                        * static_cast<double>(dbcParams.wiresPerDbc)
                        * cfg.device.shiftEnergyPj;
        costs.charge("guard_fix", fix_shifts * cfg.device.shiftCycles,
                     fix_pj);
        if (guardMetrics) {
            guardMetrics->add(obs::Counter::Shifts, fix_shifts);
            guardMetrics->addEnergy(fix_pj);
        }
    }
    bool misaligned = r.initial != AlignmentStatus::Aligned;
    if (misaligned)
        ++detected_;
    if (r.aligned) {
        corrected_ += r.correctiveShifts;
        if (guardMetrics && r.corrected)
            guardMetrics->add(obs::Counter::MisalignCorrections);
    } else {
        ++uncorrectable_;
    }
    if (!r.aligned || r.patternDamaged) {
        // Rewrite the guard track at the believed alignment.  For a
        // damaged pattern (the edge guard bit an over-shift at maximum
        // excursion pushed off the wire) this is plain repair of a
        // cluster the ladder proved aligned.  For an uncorrectable
        // cluster it is a structure reset: the event is flagged (data
        // must be treated as lost, like a remapped bad sector), and
        // bookkeeping, pattern, and future accesses are consistent
        // again from here on instead of false-alarming forever.
        guard->install(state.dbc);
        std::size_t rows = cfg.device.domainsPerWire;
        double reset_pj = static_cast<double>(rows)
                          * (cfg.device.shiftEnergyPj
                             + cfg.device.writeEnergyPj);
        costs.charge("guard_reset",
                     rows * (cfg.device.shiftCycles
                             + cfg.device.writeCycles),
                     reset_pj);
        if (guardMetrics)
            guardMetrics->addEnergy(reset_pj);
    }
    state.corrected += r.corrected ? r.correctiveShifts : 0;
    if (report) {
        report->checked = true;
        report->misaligned = misaligned;
        report->corrected = r.corrected;
        report->uncorrectable = !r.aligned;
    }
    const ReliabilityConfig &rel = cfg.reliability;
    bool wear_out = rel.retireThreshold > 0 &&
                    state.corrected >= rel.retireThreshold;
    if (wear_out || (!r.aligned && rel.retireThreshold > 0)) {
        if (MemDbc *fresh = retire(state))
            return *fresh;
        // Spare pool exhausted: the worn cluster stays in service.
        // Surface the capacity shortfall so callers can degrade
        // (reject/steer) instead of retrying a hopeless retirement.
        if (report)
            report->sparesExhausted = true;
    }
    return state;
}

DwmMainMemory::MemDbc *
DwmMainMemory::retire(MemDbc &state)
{
    if (sparesUsed >= cfg.reliability.spareDbcs) {
        ++retireFailures;
        return nullptr;
    }
    std::uint64_t logical = state.logicalId;
    auto rm = remap.find(logical);
    std::uint64_t old_physical = rm == remap.end() ? logical
                                                   : rm->second;
    std::uint64_t spare_id = cfg.totalDbcs() + sparesUsed;
    ++sparesUsed;
    MemDbc &fresh = materialize(spare_id, logical);
    // Best-effort migration: if the old cluster is still misaligned
    // the copied rows are off by the residual misalignment — the
    // retirement saved the cluster, not necessarily its contents.
    std::size_t rows = cfg.device.domainsPerWire;
    for (std::size_t r = 0; r < rows; ++r)
        fresh.dbc.pokeRow(r, state.dbc.peekRow(r));
    double retire_pj = static_cast<double>(rows)
                       * static_cast<double>(dbcParams.wiresPerDbc)
                       * (cfg.device.readEnergyPj
                          + cfg.device.writeEnergyPj);
    costs.charge("retire",
                 rows * (cfg.device.readCycles + cfg.device.writeCycles),
                 retire_pj);
    if (guardMetrics)
        guardMetrics->addEnergy(retire_pj);
    remap[logical] = spare_id;
    dbcs.erase(old_physical); // invalidates `state`
    return &fresh;
}

void
DwmMainMemory::tickAccess()
{
    ++accesses;
    const ReliabilityConfig &rel = cfg.reliability;
    bool scrub_tick =
        rel.scrubInterval > 0 && accesses % rel.scrubInterval == 0;
    if (rel.guardPolicy == GuardPolicy::PeriodicScrub && scrub_tick)
        scrubAll();
    // Retention decay accumulates silently between touches; with ECC
    // on, the same cadence sweeps stored lines so single-bit decay is
    // rewritten before a second flip turns the word into a DUE.
    if (scrub_tick && ecc && dataInjector &&
        dataInjector->config().retentionRatePerCycle > 0.0)
        scrubEcc();
}

GuardReport
DwmMainMemory::checkLine(std::uint64_t byte_addr)
{
    GuardReport report;
    if (!guard)
        return report;
    LineAddress loc = amap.decode(byte_addr);
    guardMaintain(dbcFor(loc), &report);
    return report;
}

ScrubReport
DwmMainMemory::scrubAll()
{
    ScrubReport report;
    if (!guard)
        return report;
    std::uint64_t scrub_start = costs.cycles();
    // unordered_map order is not deterministic; sweep sorted so runs
    // with a fixed seed are bit-identical.
    std::vector<std::uint64_t> ids;
    ids.reserve(dbcs.size());
    for (const auto &[id, _] : dbcs)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) {
        auto it = dbcs.find(id);
        if (it == dbcs.end())
            continue; // retired earlier in this sweep
        GuardReport one;
        guardMaintain(*it->second, &one);
        ++report.scanned;
        if (one.corrected)
            ++report.corrected;
        if (one.uncorrectable)
            ++report.uncorrectable;
    }
    if (traceSink) {
        traceSink->span("guard_scrub", "guard", scrub_start,
                        costs.cycles() - scrub_start, tracePid, 0,
                        "scanned",
                        static_cast<double>(report.scanned));
    }
    return report;
}

EccScrubReport
DwmMainMemory::scrubEcc()
{
    EccScrubReport report;
    if (!ecc)
        return report;
    std::uint64_t scrub_start = costs.cycles();
    std::size_t data_wires = cfg.device.wiresPerDbc;
    std::size_t payload_wires = data_wires + eccLanes;
    const ReliabilityConfig &rel = cfg.reliability;
    // unordered_map order is not deterministic; sweep sorted so runs
    // with a fixed seed are bit-identical.
    std::vector<std::uint64_t> ids;
    ids.reserve(dbcs.size());
    for (const auto &[id, _] : dbcs)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) {
        auto it = dbcs.find(id);
        if (it == dbcs.end())
            continue; // retired earlier in this sweep
        MemDbc &state = *it->second;
        std::size_t rows = cfg.device.domainsPerWire;
        std::size_t rewritten = 0;
        for (std::size_t r = 0; r < rows; ++r) {
            if (dataInjector)
                applyRetention(state, r);
            // The sweep reads via the maintenance path (backdoor):
            // it sees stored bits, so it cleans persistent faults
            // (retention) — transient read disturbance and stuck-at
            // sensing belong to demand reads, not to scrubbing.
            BitVector stored = state.dbc.peekRow(r);
            BitVector data = stored.slice(0, data_wires);
            BitVector check = stored.slice(data_wires, eccLanes);
            LineSecded::Result res = ecc->correct(data, check);
            ++report.scannedRows;
            if (res.correctedWords > 0) {
                eccCorrections_ += res.correctedWords;
                if (eccMetrics)
                    eccMetrics->add(obs::Counter::EccCorrections,
                                    res.correctedWords);
                stored.insert(0, data);
                stored.insert(data_wires, check);
                state.dbc.pokeRow(r, stored);
                if (!state.rowRefreshCycle.empty())
                    state.rowRefreshCycle[r] = costs.cycles();
                ++report.correctedRows;
                ++rewritten;
            }
            if (res.uncorrectableWords > 0) {
                eccDue_ += res.uncorrectableWords;
                state.eccDue += res.uncorrectableWords;
                if (eccMetrics)
                    eccMetrics->add(
                        obs::Counter::EccDetectedUncorrectable,
                        res.uncorrectableWords);
                ++report.uncorrectableRows;
            }
        }
        // Sweep cost: every row is sensed, corrected rows rewritten.
        double sweep_pj =
            static_cast<double>(rows) *
                static_cast<double>(payload_wires) *
                cfg.device.readEnergyPj +
            static_cast<double>(rewritten) *
                static_cast<double>(payload_wires) *
                cfg.device.writeEnergyPj;
        costs.charge("ecc_scrub",
                     rows * cfg.device.readCycles +
                         rewritten * cfg.device.writeCycles,
                     sweep_pj);
        if (eccMetrics)
            eccMetrics->addEnergy(sweep_pj);
        if (rel.retireThreshold > 0 &&
            state.eccDue >= rel.retireThreshold)
            retire(state); // best effort; spares may be exhausted
    }
    if (traceSink) {
        traceSink->span("ecc_scrub", "ecc", scrub_start,
                        costs.cycles() - scrub_start, tracePid, 0,
                        "scanned",
                        static_cast<double>(report.scannedRows));
    }
    return report;
}

DwmMainMemory::MemDbc &
DwmMainMemory::alignChecked(const LineAddress &loc, unsigned &shifts)
{
    MemDbc *state = &dbcFor(loc);
    shifts = alignForAccess(state->dbc, loc.row);
    if (cfg.reliability.guardPolicy == GuardPolicy::PerAccess) {
        // Verify alignment after the access shifts and before the port
        // touches the row: an over-/under-shift during the alignment
        // burst is caught here, so the access never lands on a
        // neighbouring row.  The check never moves the window, but it
        // may retire the cluster (the replacement starts at offset
        // zero); then realign and re-check, bounded in case the
        // realignment shifts fault too.
        for (int round = 0; round < 3; ++round) {
            state = &guardMaintain(*state, nullptr);
            if (state->dbc.rowAtPort(Port::Left) == loc.row ||
                state->dbc.rowAtPort(Port::Right) == loc.row)
                break;
            shifts += alignForAccess(state->dbc, loc.row);
        }
    }
    // The rounds above are best-effort; the access below must not
    // land on an arbitrary port row, so guarantee the alignment even
    // if the last check was skipped or the cluster was just retired.
    if (state->dbc.rowAtPort(Port::Left) != loc.row &&
        state->dbc.rowAtPort(Port::Right) != loc.row)
        shifts += alignForAccess(state->dbc, loc.row);
    return *state;
}

BitVector
DwmMainMemory::readLine(std::uint64_t byte_addr)
{
    LineAddress loc = amap.decode(byte_addr);
    tickAccess();
    unsigned shifts = 0;
    MemDbc &state = alignChecked(loc, shifts);
    if (dataInjector)
        applyRetention(state, loc.row);
    DomainBlockCluster &dbc = state.dbc;
    double read_pj = static_cast<double>(cfg.device.wiresPerDbc)
                         * cfg.device.readEnergyPj +
                     static_cast<double>(shifts)
                         * static_cast<double>(cfg.device.wiresPerDbc)
                         * cfg.device.shiftEnergyPj;
    costs.charge("read", cfg.dwmTiming.readCycles(shifts), read_pj);
    if (eccLanes > 0) {
        // Check lanes ride the same shift pulses and the same port
        // access as the data; extra wires, not extra cycles.
        double ecc_pj =
            static_cast<double>(eccLanes) *
            (cfg.device.readEnergyPj +
             static_cast<double>(shifts) * cfg.device.shiftEnergyPj);
        costs.charge("ecc", 0, ecc_pj);
        if (eccMetrics)
            eccMetrics->addEnergy(ecc_pj);
    }
    if (memMetrics) {
        memMetrics->add(obs::Counter::Reads);
        memMetrics->add(obs::Counter::Shifts, shifts);
        memMetrics->addEnergy(read_pj);
    }
    // After alignment the row sits under one of the ports.
    Port port = dbc.rowAtPort(Port::Left) == loc.row ? Port::Left
                                                     : Port::Right;
    BitVector row = dbc.readRowAtPort(port);
    std::size_t data_wires = cfg.device.wiresPerDbc;
    if (!dataInjector && !ecc) {
        if (guard)
            return row.slice(0, data_wires);
        return row;
    }
    // Data + check lanes as sensed by the port (guard wire excluded:
    // its ramp bit is the alignment story, not the data story).
    std::size_t payload_wires = data_wires + eccLanes;
    BitVector payload = row.size() == payload_wires
                            ? std::move(row)
                            : row.slice(0, payload_wires);
    if (dataInjector) {
        std::uint64_t injected =
            dataInjector->applyStuckAt(payload, state.physicalId,
                                       static_cast<std::uint32_t>(
                                           loc.row)) +
            dataInjector->perturbTransient(payload);
        if (injected > 0) {
            if (memMetrics)
                memMetrics->add(obs::Counter::DataFaultsInjected,
                                injected);
            if (traceSink)
                traceSink->instant("data_fault", "ecc",
                                   costs.cycles(), tracePid, 0);
        }
    }
    if (ecc) {
        BitVector data = payload.slice(0, data_wires);
        BitVector check = payload.slice(data_wires, eccLanes);
        eccDecode(state, loc.row, data, check);
        return data;
    }
    return payload;
}

void
DwmMainMemory::applyRetention(MemDbc &state, std::size_t row)
{
    if (dataInjector->config().retentionRatePerCycle <= 0.0)
        return;
    std::uint64_t now = costs.cycles();
    std::uint64_t &stamp = state.rowRefreshCycle[row];
    std::uint64_t elapsed = now > stamp ? now - stamp : 0;
    stamp = now;
    if (elapsed == 0)
        return;
    // Decay mutates the stored bits (unlike a read disturbance): the
    // flip persists until a write or an ECC scrub rewrites the row.
    BitVector stored = state.dbc.peekRow(row);
    std::size_t payload_wires = cfg.device.wiresPerDbc + eccLanes;
    BitVector payload = stored.slice(0, payload_wires);
    std::uint64_t flips = dataInjector->decay(payload, elapsed);
    if (flips == 0)
        return;
    stored.insert(0, payload);
    state.dbc.pokeRow(row, stored);
    if (memMetrics)
        memMetrics->add(obs::Counter::DataFaultsInjected, flips);
    if (traceSink)
        traceSink->instant("retention_decay", "ecc", costs.cycles(),
                           tracePid, 0);
}

DwmMainMemory::MemDbc &
DwmMainMemory::eccDecode(MemDbc &state, std::size_t row,
                         BitVector &data, BitVector &check)
{
    (void)row;
    LineSecded::Result res = ecc->correct(data, check);
    if (res.correctedWords > 0) {
        eccCorrections_ += res.correctedWords;
        if (eccMetrics)
            eccMetrics->add(obs::Counter::EccCorrections,
                            res.correctedWords);
        if (traceSink)
            traceSink->instant("ecc_correct", "ecc", costs.cycles(),
                               tracePid, 0);
    }
    if (res.uncorrectableWords > 0) {
        eccDue_ += res.uncorrectableWords;
        state.eccDue += res.uncorrectableWords;
        if (eccMetrics)
            eccMetrics->add(obs::Counter::EccDetectedUncorrectable,
                            res.uncorrectableWords);
        if (traceSink)
            traceSink->instant("ecc_due", "ecc", costs.cycles(),
                               tracePid, 0);
        // Repeated DUEs mark a weak cluster: escalate into the same
        // retirement path the alignment guard uses.
        const ReliabilityConfig &rel = cfg.reliability;
        if (rel.retireThreshold > 0 &&
            state.eccDue >= rel.retireThreshold) {
            if (MemDbc *fresh = retire(state))
                return *fresh;
        }
    }
    return state;
}

void
DwmMainMemory::writeLine(std::uint64_t byte_addr, const BitVector &data)
{
    fatalIf(data.size() != cfg.device.wiresPerDbc,
            "line width mismatch");
    LineAddress loc = amap.decode(byte_addr);
    tickAccess();
    unsigned shifts = 0;
    MemDbc &state = alignChecked(loc, shifts);
    DomainBlockCluster &dbc = state.dbc;
    double write_pj = static_cast<double>(cfg.device.wiresPerDbc)
                          * cfg.device.writeEnergyPj +
                      static_cast<double>(shifts)
                          * static_cast<double>(cfg.device.wiresPerDbc)
                          * cfg.device.shiftEnergyPj;
    costs.charge("write", cfg.dwmTiming.writeCycles(shifts), write_pj);
    if (eccLanes > 0) {
        double ecc_pj =
            static_cast<double>(eccLanes) *
            (cfg.device.writeEnergyPj +
             static_cast<double>(shifts) * cfg.device.shiftEnergyPj);
        costs.charge("ecc", 0, ecc_pj);
        if (eccMetrics)
            eccMetrics->addEnergy(ecc_pj);
    }
    if (memMetrics) {
        memMetrics->add(obs::Counter::Writes);
        memMetrics->add(obs::Counter::Shifts, shifts);
        memMetrics->addEnergy(write_pj);
    }
    Port port = dbc.rowAtPort(Port::Left) == loc.row ? Port::Left
                                                     : Port::Right;
    if (!guard && !ecc && !dataInjector) {
        dbc.writeRowAtPort(port, data);
        return;
    }
    BitVector padded(dbcParams.wiresPerDbc);
    padded.insert(0, data);
    if (ecc) {
        // The encoder sees the incoming (correct) data; disturbances
        // below hit the stored codeword, which is what a read decodes.
        padded.insert(cfg.device.wiresPerDbc, ecc->encodeCheck(data));
    }
    if (dataInjector) {
        std::size_t payload_wires = cfg.device.wiresPerDbc + eccLanes;
        BitVector payload = padded.slice(0, payload_wires);
        std::uint64_t flips = dataInjector->perturbTransient(payload);
        if (flips > 0) {
            padded.insert(0, payload);
            if (memMetrics)
                memMetrics->add(obs::Counter::DataFaultsInjected,
                                flips);
            if (traceSink)
                traceSink->instant("data_fault", "ecc",
                                   costs.cycles(), tracePid, 0);
        }
        if (dataInjector->config().retentionRatePerCycle > 0.0)
            state.rowRefreshCycle[loc.row] = costs.cycles();
    }
    if (guard) {
        // Preserve the guard wire's ramp bit for this row.
        padded.set(dbcParams.wiresPerDbc - 1,
                   guard->patternBit(loc.row));
    }
    dbc.writeRowAtPort(port, padded);
}

void
DwmMainMemory::copyLine(std::uint64_t src_addr, std::uint64_t dst_addr)
{
    // Data movement within the memory (paper Sec. III-A): copies
    // within a subarray ride the local row buffer; crossing a
    // subarray or bank uses the hierarchical row-buffer path, which
    // occupies the internal bus for a line burst.
    LineAddress src = amap.decode(src_addr);
    LineAddress dst = amap.decode(dst_addr);
    BitVector line = readLine(src_addr);
    if (src.bank != dst.bank || src.subarray != dst.subarray) {
        costs.charge("interlink", cfg.bus.lineBurstCycles(),
                     64.0 * 2.0); // internal link energy per byte x2
        if (memMetrics)
            memMetrics->addEnergy(64.0 * 2.0);
    }
    writeLine(dst_addr, line);
    costs.charge("rowclone", 0, 0); // marker for reporting
}

void
DwmMainMemory::injectShiftFaultAt(std::uint64_t byte_addr,
                                  bool toward_left)
{
    LineAddress loc = amap.decode(byte_addr);
    dbcFor(loc).dbc.injectShiftFault(toward_left);
}

DomainBlockCluster &
DwmMainMemory::dbcAt(std::uint64_t byte_addr)
{
    return dbcFor(amap.decode(byte_addr)).dbc;
}

CoruscantUnit &
DwmMainMemory::pimUnit(std::size_t bank, std::size_t subarray,
                       std::size_t pim_index)
{
    fatalIf(bank >= cfg.banks, "bank out of range");
    fatalIf(subarray >= cfg.subarraysPerBank, "subarray out of range");
    fatalIf(pim_index >= cfg.pimDbcsPerSubarray,
            "PIM DBC index out of range");
    std::uint64_t id =
        (bank * cfg.subarraysPerBank + subarray) * cfg.pimDbcsPerSubarray
        + pim_index;
    auto it = pimUnits.find(id);
    if (it == pimUnits.end()) {
        it = pimUnits
                 .emplace(id,
                          std::make_unique<CoruscantUnit>(cfg.device))
                 .first;
        if (shiftInjector && cfg.reliability.faultPimUnits)
            it->second->attachShiftFaults(shiftInjector.get());
        if (pimMetrics) {
            it->second->attachMetrics(pimMetrics);
            it->second->attachTrace(traceSink, tracePid,
                                    static_cast<std::uint32_t>(id));
        }
    }
    return *it->second;
}

} // namespace coruscant
