/**
 * @file
 * DWM main memory: the full bank/subarray/tile/DBC hierarchy with
 * shift-aware access timing (paper Fig. 2, Table II).
 *
 * Storage is sparse: DBC state is materialized on first touch, so a
 * 1 GB memory can be modeled without allocating a gigabyte.  Every
 * access charges the DWM DDR timing, with the precharge slot replaced
 * by the actual DW shift distance between the DBC's current port
 * alignment and the requested row — the "S" of Table II.
 *
 * Reliability pipeline (paper Sec. II-A, II-D, V-F): when
 * MemoryConfig::reliability enables it, every shift pulse may over- or
 * under-shift (ShiftFaultModel), each DBC dedicates one extra nanowire
 * to the AlignmentGuard ramp pattern, and the memory checks/corrects
 * alignment at the configured cadence (per access, per cpim via the
 * controller, or by periodic scrubbing), charging guard TRs and
 * corrective shifts to the cost ledger.  DBCs whose corrected-fault
 * count crosses a threshold are retired: their rows are migrated to a
 * spare DBC and the address transparently remapped.
 */

#ifndef CORUSCANT_ARCH_DWM_MEMORY_HPP
#define CORUSCANT_ARCH_DWM_MEMORY_HPP

#include <memory>
#include <optional>
#include <unordered_map>

#include "arch/config.hpp"
#include "core/coruscant_unit.hpp"
#include "dwm/alignment_guard.hpp"
#include "dwm/data_fault.hpp"
#include "dwm/dbc.hpp"
#include "dwm/shift_fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "reliability/ecc/secded.hpp"
#include "util/stats.hpp"

namespace coruscant {

/** Outcome of a guard check on one line's DBC. */
struct GuardReport
{
    bool checked = false;       ///< a guard policy was active
    bool misaligned = false;    ///< the check found a misalignment
    bool corrected = false;     ///< corrective pulses restored alignment
    bool uncorrectable = false; ///< cluster could not be realigned
    bool sparesExhausted = false; ///< retirement wanted, no spare left
};

/** Outcome of a full scrub sweep. */
struct ScrubReport
{
    std::size_t scanned = 0;       ///< DBCs checked
    std::size_t corrected = 0;     ///< DBCs realigned by the sweep
    std::size_t uncorrectable = 0; ///< DBCs left misaligned
};

/** Outcome of an ECC scrub sweep over stored lines. */
struct EccScrubReport
{
    std::size_t scannedRows = 0;       ///< rows decoded
    std::size_t correctedRows = 0;     ///< rows corrected + rewritten
    std::size_t uncorrectableRows = 0; ///< rows with DUE words
};

/** Sparse, shift-aware DWM main memory with PIM-enabled DBCs. */
class DwmMainMemory
{
  public:
    explicit DwmMainMemory(const MemoryConfig &cfg = MemoryConfig{});

    const MemoryConfig &config() const { return cfg; }
    const AddressMap &addressMap() const { return amap; }

    /** Read the 512-bit line at @p byte_addr (charges DWM timing). */
    BitVector readLine(std::uint64_t byte_addr);

    /** Write the 512-bit line at @p byte_addr (charges DWM timing). */
    void writeLine(std::uint64_t byte_addr, const BitVector &data);

    /**
     * In-memory row copy between two locations in the same subarray
     * via the shared row buffer (RowClone-style; paper Sec. III-A):
     * one read plus one write, no bus transfer.
     */
    void copyLine(std::uint64_t src_addr, std::uint64_t dst_addr);

    /**
     * PIM unit serving a location's subarray.  Lazily materialized;
     * each subarray has `pimDbcsPerSubarray` PIM DBCs, selected by
     * @p pim_index.
     */
    CoruscantUnit &pimUnit(std::size_t bank, std::size_t subarray,
                           std::size_t pim_index = 0);

    // --- Guarded execution ----------------------------------------------

    /**
     * Guard-check (and correct) the DBC holding @p byte_addr.  Used by
     * the controller around cpim instructions (GuardPolicy::PerCpim)
     * and by tests; a no-op returning checked = false when no guard is
     * configured.  May retire the DBC (remapping its addresses).
     */
    GuardReport checkLine(std::uint64_t byte_addr);

    /** Guard-check every materialized DBC (deterministic order). */
    ScrubReport scrubAll();

    /**
     * ECC scrub: decode every stored row of every materialized DBC
     * (after applying pending retention decay) and rewrite the rows
     * SECDED can still correct, so single-bit retention flips are
     * cleaned before a second flip makes the word uncorrectable.
     * A no-op returning zeros when ECC is off.
     */
    EccScrubReport scrubEcc();

    // --- Observability ---------------------------------------------------

    /**
     * Attach observability.  Components created in @p reg:
     *  - "memory": modeled line accesses (Reads/Writes at line
     *    granularity, access shifts, access energy);
     *  - "memory/dbc": functional device primitives of every
     *    materialized DBC (existing and future), whatever triggered
     *    them;
     *  - "memory/pim": modeled primitives charged by the PIM units;
     *  - "guard": guard TRs, corrective shifts, corrected
     *    misalignments, and reliability-pipeline energy.
     * "memory" and "memory/dbc" observe the same accesses at different
     * abstraction levels, so compare counters within a component, not
     * across them.  Scrub sweeps and PIM ops emit spans on @p trace
     * (process row @p pid) when given.  Both are non-owning.
     */
    void attachObs(obs::MetricsRegistry &reg,
                   obs::TraceSink *trace = nullptr, std::uint32_t pid = 0);

    // --- Reliability statistics -----------------------------------------

    /** Guard checks performed (line checks + scrub entries). */
    std::uint64_t guardChecks() const { return guardChecks_; }

    /** Checks that found the cluster misaligned. */
    std::uint64_t detectedMisalignments() const { return detected_; }

    /** Single-position misalignments corrected (corrective pulses). */
    std::uint64_t correctedMisalignments() const { return corrected_; }

    /** Checks that could not restore alignment. */
    std::uint64_t uncorrectableEvents() const { return uncorrectable_; }

    /** DBCs retired to spares so far. */
    std::size_t retiredDbcs() const { return sparesUsed; }

    /** Retirements refused because the spare pool was exhausted. */
    std::uint64_t retirementFailures() const { return retireFailures; }

    /** Shift faults injected into this memory's DBCs so far. */
    std::uint64_t
    injectedShiftFaults() const
    {
        return shiftInjector ? shiftInjector->injectedFaults() : 0;
    }

    const ShiftFaultModel *shiftFaultInjector() const
    {
        return shiftInjector.get();
    }

    /** SECDED words corrected on reads and scrubs. */
    std::uint64_t eccCorrections() const { return eccCorrections_; }

    /** SECDED words flagged uncorrectable (DUE). */
    std::uint64_t eccDetectedUncorrectable() const { return eccDue_; }

    /** Data-domain faults injected into this memory so far. */
    std::uint64_t
    injectedDataFaults() const
    {
        return dataInjector ? dataInjector->injectedFaults() : 0;
    }

    const DataFaultModel *dataFaultInjector() const
    {
        return dataInjector.get();
    }

    /** Check-bit lanes added to each DBC by the active ECC mode. */
    std::size_t eccCheckLanes() const { return eccLanes; }

    // --- Test / campaign backdoors --------------------------------------

    /** Physically misalign the DBC holding @p byte_addr by one step. */
    void injectShiftFaultAt(std::uint64_t byte_addr, bool toward_left);

    /** Direct access to the (possibly remapped) DBC for @p byte_addr. */
    DomainBlockCluster &dbcAt(std::uint64_t byte_addr);

    /** Aggregate access cost (timing charged in memory cycles). */
    const CostLedger &ledger() const { return costs; }
    void resetCosts() { costs.reset(); }

    /**
     * Charge the controller's retry-ladder backoff wait (cycles spent
     * idle between a detected fault and the re-execution) so guarded
     * retries appear in the same ledger as the work they delay.
     */
    void
    chargeRetryBackoff(std::uint64_t cycles)
    {
        if (cycles > 0)
            costs.charge("retry_backoff", cycles, 0.0);
    }

    /** Total DW shift steps performed by accesses so far. */
    std::uint64_t totalShifts() const { return shiftSteps; }

    /** DBCs materialized so far (sparse footprint). */
    std::size_t touchedDbcs() const { return dbcs.size(); }

  private:
    /** One materialized DBC plus its reliability bookkeeping. */
    struct MemDbc
    {
        explicit MemDbc(const DeviceParams &params) : dbc(params) {}
        DomainBlockCluster dbc;
        std::uint64_t logicalId = 0;  ///< pre-remap dbcId
        std::uint64_t physicalId = 0; ///< sparse-storage key (defect map)
        std::uint64_t corrected = 0;  ///< corrective pulses applied here
        std::uint64_t eccDue = 0;     ///< DUE words observed here
        /** Ledger cycle of each row's last write/scrub (retention). */
        std::vector<std::uint64_t> rowRefreshCycle;
    };

    MemDbc &dbcFor(const LineAddress &loc);
    MemDbc &materialize(std::uint64_t physical_id,
                        std::uint64_t logical_id);
    unsigned alignForAccess(DomainBlockCluster &dbc, std::size_t row);

    /**
     * Align the DBC for @p loc and, under GuardPolicy::PerAccess,
     * guard-check it after the alignment shifts (so a faulty shift is
     * corrected before the port touches the row).  Returns the serving
     * state and accumulates the shift count into @p shifts.
     */
    MemDbc &alignChecked(const LineAddress &loc, unsigned &shifts);

    /**
     * Run one guard correct() pass on @p state, charge its costs, and
     * retire the cluster if warranted.  Returns the state serving the
     * logical DBC afterwards (the replacement, if retired).
     */
    MemDbc &guardMaintain(MemDbc &state, GuardReport *report);

    /** Periodic-scrub hook, called once per line access. */
    void tickAccess();

    /** Migrate @p state to a spare DBC; returns the replacement. */
    MemDbc *retire(MemDbc &state);

    /**
     * Materialize pending retention decay on @p state's row @p row
     * (flips applied to the stored bits) and stamp it refreshed.
     */
    void applyRetention(MemDbc &state, std::size_t row);

    /**
     * SECDED-decode the payload read back from @p state's row: correct
     * @p data (width wiresPerDbc) against @p check in place, account
     * counters/energy, and escalate repeated DUEs into retirement.
     * Returns the state serving the logical DBC afterwards.
     */
    MemDbc &eccDecode(MemDbc &state, std::size_t row, BitVector &data,
                      BitVector &check);

    MemoryConfig cfg;
    AddressMap amap;
    DeviceParams dbcParams; ///< cfg.device plus check/guard lanes
    std::optional<AlignmentGuard> guard;
    std::optional<LineSecded> ecc;
    std::size_t eccLanes = 0;
    std::unique_ptr<ShiftFaultModel> shiftInjector;
    std::unique_ptr<DataFaultModel> dataInjector;
    std::unordered_map<std::uint64_t, std::unique_ptr<MemDbc>> dbcs;
    std::unordered_map<std::uint64_t, std::uint64_t> remap; ///< logical->physical
    std::unordered_map<std::uint64_t, std::unique_ptr<CoruscantUnit>>
        pimUnits;
    CostLedger costs;
    obs::ComponentMetrics *memMetrics = nullptr;   ///< non-owning
    obs::ComponentMetrics *dbcMetrics = nullptr;   ///< non-owning
    obs::ComponentMetrics *pimMetrics = nullptr;   ///< non-owning
    obs::ComponentMetrics *guardMetrics = nullptr; ///< non-owning
    obs::ComponentMetrics *eccMetrics = nullptr;   ///< non-owning
    obs::TraceSink *traceSink = nullptr;           ///< non-owning
    std::uint32_t tracePid = 0;
    std::uint64_t shiftSteps = 0;
    std::uint64_t accesses = 0;
    std::uint64_t guardChecks_ = 0;
    std::uint64_t detected_ = 0;
    std::uint64_t corrected_ = 0;
    std::uint64_t uncorrectable_ = 0;
    std::size_t sparesUsed = 0;
    std::uint64_t retireFailures = 0;
    std::uint64_t eccCorrections_ = 0;
    std::uint64_t eccDue_ = 0;
};

} // namespace coruscant

#endif // CORUSCANT_ARCH_DWM_MEMORY_HPP
