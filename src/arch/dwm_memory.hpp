/**
 * @file
 * DWM main memory: the full bank/subarray/tile/DBC hierarchy with
 * shift-aware access timing (paper Fig. 2, Table II).
 *
 * Storage is sparse: DBC state is materialized on first touch, so a
 * 1 GB memory can be modeled without allocating a gigabyte.  Every
 * access charges the DWM DDR timing, with the precharge slot replaced
 * by the actual DW shift distance between the DBC's current port
 * alignment and the requested row — the "S" of Table II.
 */

#ifndef CORUSCANT_ARCH_DWM_MEMORY_HPP
#define CORUSCANT_ARCH_DWM_MEMORY_HPP

#include <memory>
#include <unordered_map>

#include "arch/config.hpp"
#include "core/coruscant_unit.hpp"
#include "dwm/dbc.hpp"
#include "util/stats.hpp"

namespace coruscant {

/** Sparse, shift-aware DWM main memory with PIM-enabled DBCs. */
class DwmMainMemory
{
  public:
    explicit DwmMainMemory(const MemoryConfig &cfg = MemoryConfig{});

    const MemoryConfig &config() const { return cfg; }
    const AddressMap &addressMap() const { return amap; }

    /** Read the 512-bit line at @p byte_addr (charges DWM timing). */
    BitVector readLine(std::uint64_t byte_addr);

    /** Write the 512-bit line at @p byte_addr (charges DWM timing). */
    void writeLine(std::uint64_t byte_addr, const BitVector &data);

    /**
     * In-memory row copy between two locations in the same subarray
     * via the shared row buffer (RowClone-style; paper Sec. III-A):
     * one read plus one write, no bus transfer.
     */
    void copyLine(std::uint64_t src_addr, std::uint64_t dst_addr);

    /**
     * PIM unit serving a location's subarray.  Lazily materialized;
     * each subarray has `pimDbcsPerSubarray` PIM DBCs, selected by
     * @p pim_index.
     */
    CoruscantUnit &pimUnit(std::size_t bank, std::size_t subarray,
                           std::size_t pim_index = 0);

    /** Aggregate access cost (timing charged in memory cycles). */
    const CostLedger &ledger() const { return costs; }
    void resetCosts() { costs.reset(); }

    /** Total DW shift steps performed by accesses so far. */
    std::uint64_t totalShifts() const { return shiftSteps; }

    /** DBCs materialized so far (sparse footprint). */
    std::size_t touchedDbcs() const { return dbcs.size(); }

  private:
    DomainBlockCluster &dbcFor(const LineAddress &loc);
    unsigned alignForAccess(DomainBlockCluster &dbc, std::size_t row);

    MemoryConfig cfg;
    AddressMap amap;
    std::unordered_map<std::uint64_t, std::unique_ptr<DomainBlockCluster>>
        dbcs;
    std::unordered_map<std::uint64_t, std::unique_ptr<CoruscantUnit>>
        pimUnits;
    CostLedger costs;
    std::uint64_t shiftSteps = 0;
};

} // namespace coruscant

#endif // CORUSCANT_ARCH_DWM_MEMORY_HPP
