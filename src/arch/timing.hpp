/**
 * @file
 * DDR-style timing parameters for the DRAM and DWM main memories.
 *
 * Paper Table II: DDR3-1600 interface, 1000 MHz bus, 1.25 ns memory
 * cycle; DRAM tRAS-tRCD-tRP-tCAS-tWR = 20-8-8-8-8 cycles; DWM =
 * 9-4-S-4-4, where the precharge slot is replaced by the data-dependent
 * shift time S (spintronic memory needs no precharge).
 */

#ifndef CORUSCANT_ARCH_TIMING_HPP
#define CORUSCANT_ARCH_TIMING_HPP

#include <cstdint>

namespace coruscant {

/** Row-level timing of one memory technology, in memory cycles. */
struct DdrTiming
{
    unsigned tRas;  ///< activate-to-precharge
    unsigned tRcd;  ///< activate-to-column
    unsigned tRp;   ///< precharge (DWM: replaced by shifting, see below)
    unsigned tCas;  ///< column access (read latency)
    unsigned tWr;   ///< write recovery
    bool shiftBased; ///< tRp slot is a per-access DW shift time

    /** Paper Table II DRAM timing. */
    static constexpr DdrTiming
    dram()
    {
        return {20, 8, 8, 8, 8, false};
    }

    /** Paper Table II DWM timing (S = shift cycles per access). */
    static constexpr DdrTiming
    dwm()
    {
        return {9, 4, 0, 4, 4, true};
    }

    /** Closed-page access cost for a read with @p shift_cycles of S. */
    unsigned
    readCycles(unsigned shift_cycles = 1) const
    {
        return tRcd + tCas + (shiftBased ? shift_cycles : tRp);
    }

    /** Closed-page access cost for a write. */
    unsigned
    writeCycles(unsigned shift_cycles = 1) const
    {
        return tRcd + tWr + (shiftBased ? shift_cycles : tRp);
    }

    /** Full activate/restore row cycle (row-wide in-memory ops). */
    unsigned
    rowCycle(unsigned shift_cycles = 1) const
    {
        return tRas + (shiftBased ? shift_cycles : tRp);
    }
};

/** System-level interface constants (paper Table II). */
struct BusConfig
{
    double cycleNs = 1.25;        ///< memory cycle (DDR3-1600)
    std::size_t busBytesPerCycle = 16; ///< 64-bit DDR: 16 B per cycle
    std::size_t lineBytes = 64;   ///< cache-line transfer granularity

    /** Bus cycles to move one cache line. */
    std::size_t
    lineBurstCycles() const
    {
        return lineBytes / busBytesPerCycle;
    }
};

} // namespace coruscant

#endif // CORUSCANT_ARCH_TIMING_HPP
