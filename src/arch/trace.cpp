#include "arch/trace.hpp"

#include "controller/queue_model.hpp"
#include "util/rng.hpp"

namespace coruscant {

MemoryTrace
MemoryTrace::sequential(std::uint64_t base, std::size_t lines)
{
    MemoryTrace t;
    for (std::size_t i = 0; i < lines; ++i)
        t.append(MemEvent::Type::Load, base + i * 64);
    return t;
}

MemoryTrace
MemoryTrace::strided(std::uint64_t base, std::size_t lines,
                     std::uint64_t stride)
{
    MemoryTrace t;
    for (std::size_t i = 0; i < lines; ++i)
        t.append(MemEvent::Type::Load, base + i * stride);
    return t;
}

MemoryTrace
MemoryTrace::random(std::uint64_t span, std::size_t count,
                    std::uint64_t seed)
{
    MemoryTrace t;
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i)
        t.append(MemEvent::Type::Load, rng.next() % span);
    return t;
}

MemoryTrace
MemoryTrace::readModifyWrite(std::uint64_t base, std::size_t lines)
{
    MemoryTrace t;
    for (std::size_t i = 0; i < lines; ++i) {
        t.append(MemEvent::Type::Load, base + i * 64);
        t.append(MemEvent::Type::Store, base + i * 64);
    }
    return t;
}

ReplayResult
TraceReplayer::replay(const MemoryTrace &trace)
{
    ReplayResult res;
    std::uint64_t shifts_before = mem.totalShifts();

    // Replay functionally, collecting per-access service times from
    // the shift-aware timing model.
    std::vector<QueueItem> items;
    items.reserve(trace.size());
    const BitVector zero(mem.config().device.wiresPerDbc);
    for (const auto &e : trace.events()) {
        std::uint64_t before = mem.ledger().cycles();
        LineAddress loc = mem.addressMap().decode(e.addr);
        if (e.type == MemEvent::Type::Load) {
            (void)mem.readLine(e.addr);
        } else {
            mem.writeLine(e.addr, zero);
        }
        std::uint64_t service = mem.ledger().cycles() - before;
        items.push_back({loc.bank, service, 1});
        res.serialCycles += service;
    }

    CommandQueueModel queue(mem.config().banks);
    auto sched = queue.run(items);
    res.makespanCycles = sched.makespanCycles;
    res.totalShifts = mem.totalShifts() - shifts_before;
    if (!trace.events().empty()) {
        res.avgShiftPerAccess =
            static_cast<double>(res.totalShifts) /
            static_cast<double>(trace.size());
    }
    if (res.makespanCycles > 0) {
        res.bankUtilization =
            static_cast<double>(res.serialCycles) /
            (static_cast<double>(res.makespanCycles) *
             static_cast<double>(mem.config().banks));
    }
    return res;
}

} // namespace coruscant
