/**
 * @file
 * Memory event traces and trace-driven replay.
 *
 * The aggregate OpRecorder counts drive the Fig. 10/11 models; this
 * module provides the finer-grained equivalent of a pintool's event
 * stream: explicit load/store sequences replayed through the DWM main
 * memory, exercising the shift-aware timing access by access and
 * producing a bank-parallel makespan through the command-queue model.
 * Generators cover the access patterns that stress DWM differently
 * (sequential streams keep ports aligned; strides and random access
 * pay shift penalties).
 */

#ifndef CORUSCANT_ARCH_TRACE_HPP
#define CORUSCANT_ARCH_TRACE_HPP

#include <cstdint>
#include <vector>

#include "arch/dwm_memory.hpp"

namespace coruscant {

/** One memory event. */
struct MemEvent
{
    enum class Type { Load, Store } type;
    std::uint64_t addr; ///< line-aligned byte address
};

/** A replayable event sequence. */
class MemoryTrace
{
  public:
    const std::vector<MemEvent> &events() const { return seq; }
    std::size_t size() const { return seq.size(); }

    void
    append(MemEvent::Type type, std::uint64_t addr)
    {
        seq.push_back({type, addr & ~63ull});
    }

    /** Sequential read stream over [base, base + lines*64). */
    static MemoryTrace sequential(std::uint64_t base,
                                  std::size_t lines);

    /** Strided reads: base, base+stride, ... (stride in bytes). */
    static MemoryTrace strided(std::uint64_t base, std::size_t lines,
                               std::uint64_t stride);

    /** Uniform random reads within [0, span). */
    static MemoryTrace random(std::uint64_t span, std::size_t count,
                              std::uint64_t seed = 1);

    /** Read-modify-write stream (load + store per line). */
    static MemoryTrace readModifyWrite(std::uint64_t base,
                                       std::size_t lines);

  private:
    std::vector<MemEvent> seq;
};

/** Result of replaying a trace. */
struct ReplayResult
{
    std::uint64_t makespanCycles = 0; ///< bank-parallel completion
    std::uint64_t serialCycles = 0;   ///< summed service times
    std::uint64_t totalShifts = 0;
    double avgShiftPerAccess = 0.0;
    double bankUtilization = 0.0; ///< serial / (makespan * banks)
};

/**
 * Replays a trace through a DWM main memory: functional effects apply
 * to the memory state, per-access service times come from the
 * shift-aware timing, and the makespan assumes in-order issue with
 * bank-level parallelism (one command cycle per access on the shared
 * bus).
 */
class TraceReplayer
{
  public:
    explicit TraceReplayer(DwmMainMemory &memory)
        : mem(memory)
    {}

    ReplayResult replay(const MemoryTrace &trace);

  private:
    DwmMainMemory &mem;
};

} // namespace coruscant

#endif // CORUSCANT_ARCH_TRACE_HPP
