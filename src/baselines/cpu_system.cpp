#include "baselines/cpu_system.hpp"

#include <algorithm>

namespace coruscant {

std::uint64_t
CpuSystem::latencyCycles(const AccessSummary &s) const
{
    std::uint64_t lines = s.linesRead + s.linesWritten;
    if (lines == 0)
        return 0;
    // Data-bus occupancy: every line crosses the bus once.
    std::uint64_t bus_cycles = lines * bus.lineBurstCycles();
    // Bank occupancy: each access holds its bank for the closed-page
    // access time; banks run in parallel.
    std::uint64_t bank_cycles =
        s.linesRead * timing_.readCycles(avgShift) +
        s.linesWritten * timing_.writeCycles(avgShift);
    std::uint64_t bank_limited =
        (bank_cycles + banks_ - 1) / banks_;
    // The stream cannot finish before its last access completes.
    std::uint64_t tail = timing_.readCycles(avgShift);
    return std::max(bus_cycles, bank_limited) + tail;
}

double
CpuSystem::energyPj(const AccessSummary &s) const
{
    double bytes =
        static_cast<double>(s.linesRead + s.linesWritten) * 64.0;
    return bytes * energy.transferPjPerByte +
           static_cast<double>(s.adds32) * energy.add32Pj +
           static_cast<double>(s.muls32) * energy.mul32Pj;
}

} // namespace coruscant
