/**
 * @file
 * CPU + main-memory baseline (paper Table II, Sec. V-C).
 *
 * Models the non-PIM alternative: operands stream over the DDR3-1600
 * bus to an Intel Xeon X5670-class processor and results stream back.
 * Latency is the memory-system makespan of the access stream (the
 * workloads are memory bound); energy is the paper's transfer cost of
 * 1250 pJ/Byte plus the CPU ALU energies (111 pJ per 32-bit add,
 * 164 pJ per 32-bit multiply).
 */

#ifndef CORUSCANT_BASELINES_CPU_SYSTEM_HPP
#define CORUSCANT_BASELINES_CPU_SYSTEM_HPP

#include <cstdint>

#include "arch/timing.hpp"

namespace coruscant {

/** Energy constants from paper Table II. */
struct CpuEnergy
{
    double transferPjPerByte = 1250.0;
    double add32Pj = 111.0;
    double mul32Pj = 164.0;
};

/** Streamed access trace summary. */
struct AccessSummary
{
    std::uint64_t linesRead = 0;    ///< 64-byte lines fetched
    std::uint64_t linesWritten = 0; ///< 64-byte lines stored
    std::uint64_t adds32 = 0;       ///< 32-bit CPU additions
    std::uint64_t muls32 = 0;       ///< 32-bit CPU multiplications
};

/** CPU system over either DRAM or DWM main memory. */
class CpuSystem
{
  public:
    /**
     * @param timing memory-technology timing (DdrTiming::dram()/dwm())
     * @param banks bank-level parallelism (paper: 32)
     * @param avg_shift average DW shift per DWM access (ignored for
     *        DRAM); sequential streams keep ports near the data
     */
    CpuSystem(DdrTiming timing, std::size_t banks = 32,
              unsigned avg_shift = 4)
        : timing_(timing), banks_(banks), avgShift(avg_shift)
    {}

    /**
     * Memory-system makespan for an access stream, in memory cycles.
     *
     * The stream is bandwidth-limited: requests interleave over the
     * banks, so the makespan is the larger of the data-bus occupancy
     * and the per-bank service time divided by the bank parallelism.
     */
    std::uint64_t latencyCycles(const AccessSummary &s) const;

    /** Same in nanoseconds (paper: 1.25 ns memory cycle). */
    double
    latencyNs(const AccessSummary &s) const
    {
        return static_cast<double>(latencyCycles(s)) * bus.cycleNs;
    }

    /** Data-movement plus ALU energy, in pJ. */
    double energyPj(const AccessSummary &s) const;

    const DdrTiming &timing() const { return timing_; }

  private:
    DdrTiming timing_;
    std::size_t banks_;
    unsigned avgShift;
    BusConfig bus;
    CpuEnergy energy;
};

/**
 * ISAAC ReRAM crossbar accelerator (Shafiee et al., ISCA 2016), as a
 * published-throughput analytical stand-in for paper Table IV.
 *
 * The paper cites ISAAC's CNN inference throughput directly; we carry
 * those numbers plus a MAC-rate extrapolation for other networks.
 */
struct IsaacModel
{
    // Published comparison points used in paper Table IV.
    static constexpr double alexnetFps = 34.0;
    static constexpr double lenet5Fps = 2581.0;

    /** Rough FPS for a network with @p macs multiply-accumulates. */
    static double
    estimateFps(double macs)
    {
        // Calibrated on the AlexNet point (~666M MACs per inference).
        constexpr double effectiveMacsPerSec = 34.0 * 666e6;
        return effectiveMacsPerSec / macs;
    }
};

} // namespace coruscant

#endif // CORUSCANT_BASELINES_CPU_SYSTEM_HPP
