#include "baselines/dram_adder.hpp"

#include "util/logging.hpp"

namespace coruscant {

BitSliceOperand
BitSliceOperand::pack(const std::vector<std::uint64_t> &values,
                      std::size_t bits, std::size_t row_width)
{
    fatalIf(values.size() > row_width,
            "more values than bitline columns");
    BitSliceOperand op;
    op.slices.assign(bits, BitVector(row_width));
    for (std::size_t v = 0; v < values.size(); ++v)
        for (std::size_t b = 0; b < bits; ++b)
            op.slices[b].set(v, (values[v] >> b) & 1);
    return op;
}

std::uint64_t
BitSliceOperand::unpack(std::size_t idx) const
{
    std::uint64_t out = 0;
    for (std::size_t b = 0; b < slices.size(); ++b)
        if (slices[b].get(idx))
            out |= 1ULL << b;
    return out;
}

std::size_t
DramBitSliceAdder::opsPerAddition(std::size_t bits)
{
    // Per bit: G (and), P (xor), P & C (and), G | PC (or), S (xor);
    // bit 0 needs no carry-in terms.
    return 5 * bits - 3;
}

BitSliceOperand
DramBitSliceAdder::add(const BitSliceOperand &a,
                       const BitSliceOperand &b)
{
    fatalIf(a.bits() != b.bits(), "operand width mismatch");
    fatalIf(a.bits() == 0, "empty operands");
    std::size_t n = a.bits();

    BitSliceOperand sum;
    sum.slices.reserve(n);

    // Bit 0: S_0 = A_0 ^ B_0, C_1 = A_0 & B_0.
    BitVector carry = pim.bulk2(BulkOp::And, a.slices[0], b.slices[0]);
    sum.slices.push_back(
        pim.bulk2(BulkOp::Xor, a.slices[0], b.slices[0]));

    for (std::size_t i = 1; i < n; ++i) {
        BitVector g = pim.bulk2(BulkOp::And, a.slices[i], b.slices[i]);
        BitVector p = pim.bulk2(BulkOp::Xor, a.slices[i], b.slices[i]);
        sum.slices.push_back(pim.bulk2(BulkOp::Xor, p, carry));
        BitVector pc = pim.bulk2(BulkOp::And, p, carry);
        carry = pim.bulk2(BulkOp::Or, g, pc);
    }
    return sum;
}

} // namespace coruscant
