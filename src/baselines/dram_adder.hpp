/**
 * @file
 * Bit-slice addition on DRAM PIM (the DrAcc adder, paper Sec. IV).
 *
 * DRAM bulk-bitwise PIM operates on whole rows, so arithmetic uses a
 * transposed ("bit-slice") layout: row i holds bit i of thousands of
 * packed values.  Addition of two such operands follows paper Eq. 3:
 *
 *   1. G_i = A_i & B_i          (generate)
 *   2. P_i = A_i ^ B_i          (propagate)
 *   3. C_{i+1} = G_i | (P_i & C_i)
 *   4. S_i = P_i ^ C_i
 *
 * Every step is a bulk operation over a full row, so one n-bit
 * addition step costs a fixed command sequence regardless of how many
 * values are packed — the "40 cycles using ELP2IM" the paper quotes
 * for one addition step, against which CORUSCANT's 7->3 reductions
 * are compared.
 *
 * The adder here executes the real operation chains on an Ambit or
 * ELP2IM unit (bit-exact results) and reports the emergent cycle
 * cost from the units' command models.
 */

#ifndef CORUSCANT_BASELINES_DRAM_ADDER_HPP
#define CORUSCANT_BASELINES_DRAM_ADDER_HPP

#include <cstdint>
#include <vector>

#include "baselines/dram_pim.hpp"

namespace coruscant {

/** Values packed column-wise: slice[i] holds bit i of every value. */
struct BitSliceOperand
{
    std::vector<BitVector> slices; ///< [bit] -> row across values

    std::size_t bits() const { return slices.size(); }

    std::size_t
    count() const
    {
        return slices.empty() ? 0 : slices[0].size();
    }

    /** Transpose packed integers into the bit-slice layout. */
    static BitSliceOperand
    pack(const std::vector<std::uint64_t> &values, std::size_t bits,
         std::size_t row_width);

    /** Recover value @p idx. */
    std::uint64_t unpack(std::size_t idx) const;
};

/** Ripple addition over bit-sliced rows on a DRAM PIM unit. */
class DramBitSliceAdder
{
  public:
    explicit DramBitSliceAdder(DramPimUnit &unit)
        : pim(unit)
    {}

    /**
     * S = A + B (mod 2^bits), all packed values at once.
     * Eq. 3 evaluated with the unit's bulk operations.
     */
    BitSliceOperand add(const BitSliceOperand &a,
                        const BitSliceOperand &b);

    /** Bulk-op invocations for one n-bit addition (for the tests). */
    static std::size_t opsPerAddition(std::size_t bits);

  private:
    DramPimUnit &pim;
};

} // namespace coruscant

#endif // CORUSCANT_BASELINES_DRAM_ADDER_HPP
