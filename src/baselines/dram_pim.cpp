#include "baselines/dram_pim.hpp"

#include "util/logging.hpp"

namespace coruscant {

namespace {

// DRAM row-activation energy at the 8 KiB row scale, used for the
// energy columns of the comparison benches.  Derived from typical
// DDR3 activation energy (~0.9 nJ per activation) as cited in the
// RowClone/Ambit literature.
constexpr double activationEnergyPj = 909.0;

} // namespace

void
DramPimUnit::chargeAap()
{
    costs.charge("aap", 2u * timing.tRas + timing.tRp,
                 2.0 * activationEnergyPj);
}

void
DramPimUnit::chargeAp()
{
    costs.charge("ap", timing.tRas + timing.tRp, activationEnergyPj);
}

BitVector
DramPimUnit::bulkMulti(BulkOp op, const std::vector<BitVector> &ops)
{
    fatalIf(ops.empty(), "bulk op needs at least one operand");
    if (ops.size() == 1) {
        if (op == BulkOp::Not || op == BulkOp::Nand ||
            op == BulkOp::Nor || op == BulkOp::Xnor) {
            return bulkNot(ops[0]);
        }
        return ops[0];
    }
    // Compose with the non-inverting op, inverting once at the end.
    BulkOp inner = op;
    bool invert = false;
    switch (op) {
      case BulkOp::Nand:
        inner = BulkOp::And;
        invert = true;
        break;
      case BulkOp::Nor:
        inner = BulkOp::Or;
        invert = true;
        break;
      case BulkOp::Xnor:
        inner = BulkOp::Xor;
        invert = true;
        break;
      default:
        break;
    }
    BitVector acc = ops[0];
    for (std::size_t i = 1; i < ops.size(); ++i)
        acc = bulk2(inner, acc, ops[i]);
    if (invert)
        acc = bulkNot(acc);
    return acc;
}

// ---------------------------------------------------------------------
// Ambit
// ---------------------------------------------------------------------

AmbitUnit::AmbitUnit(std::size_t row_bits)
    : DramPimUnit(row_bits), scratch(8, row_bits)
{
    scratch.setRow(4, BitVector(row_bits, false)); // C0
    scratch.setRow(5, BitVector(row_bits, true));  // C1
}

std::size_t
AmbitUnit::aapCount(BulkOp op)
{
    // Published command sequences (Ambit, MICRO 2017): and/or need the
    // two operand copies, the control copy, and the fused TRA+result
    // copy; the inverting variants add a DCC pass; xor composes two
    // ANDs with negated operands plus an OR.
    switch (op) {
      case BulkOp::And:
      case BulkOp::Or:
        return 4;
      case BulkOp::Nand:
      case BulkOp::Nor:
        return 5;
      case BulkOp::Xor:
      case BulkOp::Xnor:
        return 7;
      case BulkOp::Not:
        return 3;
      default:
        fatal("Ambit does not implement ", bulkOpName(op));
    }
}

BitVector
AmbitUnit::bulk2(BulkOp op, const BitVector &a, const BitVector &b)
{
    fatalIf(a.size() != rowBits || b.size() != rowBits,
            "row width mismatch");
    for (std::size_t i = 0; i < aapCount(op); ++i)
        chargeAap();

    // Functional execution through the real mechanisms.
    scratch.setRow(6, a);
    scratch.setRow(7, b);
    auto tra = [&](std::size_t ctrl) {
        scratch.rowClone(6, 0);
        scratch.rowClone(7, 1);
        scratch.rowClone(ctrl, 2);
        return scratch.tripleRowActivate(0, 1, 2);
    };
    switch (op) {
      case BulkOp::And:
        return tra(4);
      case BulkOp::Or:
        return tra(5);
      case BulkOp::Nand: {
        auto r = tra(4);
        scratch.setRow(3, r);
        return scratch.readInverted(3);
      }
      case BulkOp::Nor: {
        auto r = tra(5);
        scratch.setRow(3, r);
        return scratch.readInverted(3);
      }
      case BulkOp::Xor:
      case BulkOp::Xnor: {
        // k = A AND NOT B; k' = NOT A AND B; result = k OR k'.
        scratch.setRow(3, b);
        BitVector nb = scratch.readInverted(3);
        scratch.setRow(3, a);
        BitVector na = scratch.readInverted(3);
        scratch.setRow(6, a);
        scratch.setRow(7, nb);
        BitVector k = tra(4);
        scratch.setRow(6, na);
        scratch.setRow(7, b);
        BitVector kp = tra(4);
        scratch.setRow(6, k);
        scratch.setRow(7, kp);
        BitVector x = tra(5);
        if (op == BulkOp::Xor)
            return x;
        scratch.setRow(3, x);
        return scratch.readInverted(3);
      }
      default:
        fatal("Ambit does not implement ", bulkOpName(op));
    }
}

BitVector
AmbitUnit::bulkNot(const BitVector &a)
{
    for (std::size_t i = 0; i < aapCount(BulkOp::Not); ++i)
        chargeAap();
    scratch.setRow(3, a);
    return scratch.readInverted(3);
}

// ---------------------------------------------------------------------
// ELP2IM
// ---------------------------------------------------------------------

Elp2ImUnit::Elp2ImUnit(std::size_t row_bits)
    : DramPimUnit(row_bits)
{}

std::size_t
Elp2ImUnit::phaseCount(BulkOp op)
{
    // ELP2IM performs a two-operand op as a short sequence of
    // pseudo-precharge state changes plus row activations: two row
    // phases for and/or, three when an inversion or xor composition is
    // needed (HPCA 2020, Sec. IV).
    switch (op) {
      case BulkOp::And:
      case BulkOp::Or:
        return 2;
      case BulkOp::Nand:
      case BulkOp::Nor:
      case BulkOp::Xor:
        return 3;
      case BulkOp::Xnor:
        return 4;
      case BulkOp::Not:
        return 1;
      default:
        fatal("ELP2IM does not implement ", bulkOpName(op));
    }
}

BitVector
Elp2ImUnit::bulk2(BulkOp op, const BitVector &a, const BitVector &b)
{
    fatalIf(a.size() != rowBits || b.size() != rowBits,
            "row width mismatch");
    for (std::size_t i = 0; i < phaseCount(op); ++i)
        chargeAp();
    switch (op) {
      case BulkOp::And:
        return a & b;
      case BulkOp::Or:
        return a | b;
      case BulkOp::Nand:
        return ~(a & b);
      case BulkOp::Nor:
        return ~(a | b);
      case BulkOp::Xor:
        return a ^ b;
      case BulkOp::Xnor:
        return ~(a ^ b);
      default:
        fatal("ELP2IM does not implement ", bulkOpName(op));
    }
}

BitVector
Elp2ImUnit::bulkNot(const BitVector &a)
{
    for (std::size_t i = 0; i < phaseCount(BulkOp::Not); ++i)
        chargeAp();
    return ~a;
}

} // namespace coruscant
