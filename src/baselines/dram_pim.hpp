/**
 * @file
 * DRAM bulk-bitwise PIM baselines: Ambit and ELP2IM.
 *
 * Ambit (Seshadri et al., MICRO 2017) computes two-operand bulk ops by
 * RowClone-ing the operands into a designated row group, opening three
 * rows at once (majority), and using dual-contact cells for negation.
 * Every step is an AAP (ACTIVATE-ACTIVATE-PRECHARGE) command sequence.
 *
 * ELP2IM (Xin et al., HPCA 2020) instead manipulates the sense
 * amplifier's pseudo-precharge state so the logic happens in the SA,
 * avoiding the operand copies; it needs a short sequence of row
 * activations per operation and is ~3.2x faster than Ambit on bitmap
 * scans.
 *
 * Costs are expressed in DDR3-1600 memory cycles with the paper
 * Table II DRAM timing; command counts follow each paper's published
 * sequences.  Both models are functional: they produce bit-exact
 * results via the DramSubarray mechanisms.
 */

#ifndef CORUSCANT_BASELINES_DRAM_PIM_HPP
#define CORUSCANT_BASELINES_DRAM_PIM_HPP

#include <vector>

#include "arch/timing.hpp"
#include "baselines/dram_subarray.hpp"
#include "core/pim_logic.hpp"
#include "util/stats.hpp"

namespace coruscant {

/** Common interface for the two DRAM PIM baselines. */
class DramPimUnit
{
  public:
    explicit DramPimUnit(std::size_t row_bits)
        : timing(DdrTiming::dram()), rowBits(row_bits)
    {}
    virtual ~DramPimUnit() = default;

    /** Two-operand bulk-bitwise operation. */
    virtual BitVector bulk2(BulkOp op, const BitVector &a,
                            const BitVector &b) = 0;

    /** NOT of one row. */
    virtual BitVector bulkNot(const BitVector &a) = 0;

    /**
     * Multi-operand operation composed from two-operand steps (these
     * designs have no multi-operand primitive).
     */
    BitVector bulkMulti(BulkOp op, const std::vector<BitVector> &ops);

    const CostLedger &ledger() const { return costs; }
    void resetCosts() { costs.reset(); }

  protected:
    /** Charge one AAP (ACTIVATE-ACTIVATE-PRECHARGE). */
    void chargeAap();

    /** Charge one AP (ACTIVATE-PRECHARGE). */
    void chargeAp();

    DdrTiming timing;
    std::size_t rowBits;
    CostLedger costs;
};

/** Ambit: TRA + RowClone + DCC over a scratch subarray. */
class AmbitUnit : public DramPimUnit
{
  public:
    explicit AmbitUnit(std::size_t row_bits);

    BitVector bulk2(BulkOp op, const BitVector &a,
                    const BitVector &b) override;
    BitVector bulkNot(const BitVector &a) override;

    /** AAP count for a two-operand op (published sequences). */
    static std::size_t aapCount(BulkOp op);

  private:
    // Scratch subarray: rows 0..2 = T0..T2 (TRA group), 3 = DCC,
    // 4 = constant zero, 5 = constant one, 6/7 = operand staging.
    DramSubarray scratch;
};

/** ELP2IM: pseudo-precharge in-SA logic, no operand copies. */
class Elp2ImUnit : public DramPimUnit
{
  public:
    explicit Elp2ImUnit(std::size_t row_bits);

    BitVector bulk2(BulkOp op, const BitVector &a,
                    const BitVector &b) override;
    BitVector bulkNot(const BitVector &a) override;

    /** Row-activation phases for a two-operand op. */
    static std::size_t phaseCount(BulkOp op);
};

} // namespace coruscant

#endif // CORUSCANT_BASELINES_DRAM_PIM_HPP
