#include "baselines/dram_subarray.hpp"

#include "util/logging.hpp"

namespace coruscant {

DramSubarray::DramSubarray(std::size_t rows, std::size_t row_bits)
    : numRows(rows), bits(row_bits), data(rows, BitVector(row_bits))
{
    fatalIf(rows == 0 || row_bits == 0, "empty DRAM subarray");
}

const BitVector &
DramSubarray::row(std::size_t r) const
{
    fatalIf(r >= numRows, "row ", r, " out of range");
    return data[r];
}

void
DramSubarray::setRow(std::size_t r, const BitVector &v)
{
    fatalIf(r >= numRows, "row ", r, " out of range");
    fatalIf(v.size() != bits, "row width mismatch");
    data[r] = v;
}

void
DramSubarray::rowClone(std::size_t src, std::size_t dst)
{
    fatalIf(src >= numRows || dst >= numRows, "row out of range");
    data[dst] = data[src];
}

BitVector
DramSubarray::tripleRowActivate(std::size_t a, std::size_t b,
                                std::size_t c)
{
    fatalIf(a >= numRows || b >= numRows || c >= numRows,
            "row out of range");
    BitVector maj = (data[a] & data[b]) | (data[b] & data[c]) |
                    (data[a] & data[c]);
    data[a] = maj;
    data[b] = maj;
    data[c] = maj;
    return maj;
}

BitVector
DramSubarray::readInverted(std::size_t r) const
{
    fatalIf(r >= numRows, "row ", r, " out of range");
    return ~data[r];
}

} // namespace coruscant
