/**
 * @file
 * Functional DRAM subarray for the Ambit / ELP2IM baselines.
 *
 * Models the three mechanisms the DRAM PIM proposals rely on:
 *  - RowClone FPM: copy a row to another row within the subarray by
 *    back-to-back activations (Seshadri et al., MICRO 2013);
 *  - triple-row activation (TRA): simultaneously opening three rows
 *    drives every bitline to the majority of the three cells
 *    (Ambit, MICRO 2017) — destructive: all three rows end up holding
 *    the majority value;
 *  - dual-contact cells (DCC): rows readable through BL-bar, yielding
 *    the negated value.
 */

#ifndef CORUSCANT_BASELINES_DRAM_SUBARRAY_HPP
#define CORUSCANT_BASELINES_DRAM_SUBARRAY_HPP

#include <cstddef>
#include <vector>

#include "util/bit_vector.hpp"

namespace coruscant {

/** One DRAM subarray with designated compute rows. */
class DramSubarray
{
  public:
    /**
     * @param rows number of rows
     * @param row_bits bits per row (paper-scale: 8 KiB = 65536)
     */
    DramSubarray(std::size_t rows, std::size_t row_bits);

    std::size_t rows() const { return numRows; }
    std::size_t rowBits() const { return bits; }

    const BitVector &row(std::size_t r) const;
    void setRow(std::size_t r, const BitVector &v);

    /** RowClone: copy row @p src over row @p dst. */
    void rowClone(std::size_t src, std::size_t dst);

    /**
     * Triple-row activation: rows @p a, @p b, @p c are all driven to
     * their bitwise majority (destructive, like the real mechanism).
     * @return the majority row
     */
    BitVector tripleRowActivate(std::size_t a, std::size_t b,
                                std::size_t c);

    /** Read row @p r through the DCC negated port. */
    BitVector readInverted(std::size_t r) const;

  private:
    std::size_t numRows;
    std::size_t bits;
    std::vector<BitVector> data;
};

} // namespace coruscant

#endif // CORUSCANT_BASELINES_DRAM_SUBARRAY_HPP
