#include "baselines/dwm_pim_baselines.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace coruscant {

// ---------------------------------------------------------------------
// Calibration.  The designs are bit-serial; their per-bit constants are
// pinned so the published 8-bit costs (paper Table III) come out
// exactly:
//
//   DW-NN: 2-op add 54 cyc / 40 pJ; 5-op add 264 (area) / 194 (lat)
//          cyc, 169.6 pJ; 2-op mult 163 cyc / 308 pJ.
//     add: 6 cyc/bit + 6 setup;  energy 4.5 pJ/bit + 4
//     5-op serial: 4 adds + 16-cycle re-stage per intermediate
//     5-op tree: ceil(log2 5) = 3 levels + 32 cycles of muxing
//     mult: 2.3 cyc/bit^2 + 15.8;  energy 4.5 pJ/bit^2 + 20
//
//   SPIM:  2-op add 49 cyc / 28 pJ; 5-op add 244 / 179 cyc, 121.6 pJ;
//          2-op mult 149 cyc / 196 pJ.
//     add: 5.5 cyc/bit + 5;  energy 3 pJ/bit + 4
//     mult: 2.0 cyc/bit^2 + 21;  energy 2.8 pJ/bit^2 + 16.8
//
// Both share the composition overheads (16-cycle re-stage, 32-cycle
// tree mux, 3.2 pJ per intermediate), which the published numbers
// imply for each design independently.
// ---------------------------------------------------------------------

namespace {

constexpr double restageEnergyPj = 3.2;

} // namespace

DwmPimBaseline
DwmPimBaseline::dwNn()
{
    return DwmPimBaseline({/*addPerBit=*/6.0, /*addSetup=*/6.0,
                           /*serialRestage=*/16.0, /*treeOverhead=*/32.0,
                           /*mulPerBitSq=*/2.3, /*mulSetup=*/15.8,
                           /*ePerBitAdd=*/4.5, /*eAddSetup=*/4.0,
                           /*eMulPerBitSq=*/4.5, /*eMulSetup=*/20.0,
                           /*areaAdd2=*/2.6, /*areaAdd5Area=*/2.6,
                           /*areaAdd5Latency=*/5.2, /*areaMul=*/18.9});
}

DwmPimBaseline
DwmPimBaseline::spim()
{
    return DwmPimBaseline({/*addPerBit=*/5.5, /*addSetup=*/5.0,
                           /*serialRestage=*/16.0, /*treeOverhead=*/32.0,
                           /*mulPerBitSq=*/2.0, /*mulSetup=*/21.0,
                           /*ePerBitAdd=*/3.0, /*eAddSetup=*/4.0,
                           /*eMulPerBitSq=*/2.8, /*eMulSetup=*/16.8,
                           /*areaAdd2=*/2.0, /*areaAdd5Area=*/2.0,
                           /*areaAdd5Latency=*/4.0, /*areaMul=*/16.8});
}

OpCost
DwmPimBaseline::addCost(std::size_t bits) const
{
    OpCost c;
    c.cycles = static_cast<std::uint64_t>(
        cal.addPerBit * static_cast<double>(bits) + cal.addSetup);
    c.energyPj = cal.ePerBitAdd * static_cast<double>(bits)
                 + cal.eAddSetup;
    return c;
}

OpCost
DwmPimBaseline::addCost(std::size_t operands, std::size_t bits,
                        ComposeMode mode) const
{
    fatalIf(operands == 0, "addition needs at least one operand");
    if (operands <= 2)
        return addCost(bits);
    OpCost two = addCost(bits);
    OpCost c;
    std::size_t adds = operands - 1;
    // Energy is the same either way: the same additions happen.
    c.energyPj = static_cast<double>(adds) * two.energyPj +
                 static_cast<double>(operands - 2) * restageEnergyPj;
    if (mode == ComposeMode::AreaOptimized) {
        c.cycles = adds * two.cycles +
                   static_cast<std::uint64_t>(
                       static_cast<double>(operands - 2)
                       * cal.serialRestage);
    } else {
        auto depth = static_cast<std::size_t>(
            std::ceil(std::log2(static_cast<double>(operands))));
        c.cycles = depth * two.cycles +
                   static_cast<std::uint64_t>(cal.treeOverhead);
    }
    return c;
}

OpCost
DwmPimBaseline::multiplyCost(std::size_t bits) const
{
    double b2 = static_cast<double>(bits) * static_cast<double>(bits);
    OpCost c;
    c.cycles = static_cast<std::uint64_t>(
        std::llround(cal.mulPerBitSq * b2 + cal.mulSetup));
    c.energyPj = cal.eMulPerBitSq * b2 + cal.eMulSetup;
    return c;
}

double
DwmPimBaseline::areaUm2(std::size_t operands, bool multiply,
                        ComposeMode mode) const
{
    if (multiply)
        return cal.areaMul;
    if (operands <= 2)
        return cal.areaAdd2;
    return mode == ComposeMode::AreaOptimized ? cal.areaAdd5Area
                                              : cal.areaAdd5Latency;
}

} // namespace coruscant
