/**
 * @file
 * Prior DWM processing-in-memory proposals: DW-NN and SPIM.
 *
 * DW-NN (Yu et al., ASP-DAC 2014) builds a PIM processing element with
 * dedicated circuitry that passes current through two stacked domains,
 * measuring the aggregate giant magnetoresistance to compute XOR; a
 * precharge sense amplifier over three nanowires derives the carry.
 * Both sum and carry are computed bit-serially, with the operands
 * shifted into alignment for every bit.
 *
 * SPIM (Liu et al., ISPA 2017) extends DWM storage with dedicated
 * skyrmion-based computing units: custom ferromagnetic domains joined
 * by channels that implement OR/AND, composed into full adders.
 *
 * Neither design's RTL is available; the paper compares against their
 * published 8-bit operation costs (Table III).  These models carry
 * bit-serial cost formulas whose per-bit constants are calibrated to
 * reproduce the published 8-bit values exactly, and both compute real
 * results so they can stand in as functional baselines.
 */

#ifndef CORUSCANT_BASELINES_DWM_PIM_BASELINES_HPP
#define CORUSCANT_BASELINES_DWM_PIM_BASELINES_HPP

#include <cstdint>
#include <vector>

#include "core/op_cost.hpp"

namespace coruscant {

/** How a five-operand addition is composed from two-operand units. */
enum class ComposeMode
{
    AreaOptimized,    ///< one adder reused serially
    LatencyOptimized, ///< replicated adders in a tree
};

/** Cost/functional model of one prior DWM PIM design. */
class DwmPimBaseline
{
  public:
    /** Per-design calibration constants (see the .cpp). */
    struct Calibration
    {
        // addition: cycles = addPerBit * bits + addSetup
        double addPerBit;
        double addSetup;
        // m-operand composition overheads
        double serialRestage;  ///< extra cycles per intermediate result
        double treeOverhead;   ///< latency-optimized extra cycles
        // multiplication: cycles = mulPerBitSq * bits^2 + mulSetup
        double mulPerBitSq;
        double mulSetup;
        // energy: pJ = ePerBitAdd * bits + eAddSetup (per 2-op add)
        double ePerBitAdd;
        double eAddSetup;
        double eMulPerBitSq;
        double eMulSetup;
        // areas (um^2) for Table III
        double areaAdd2;
        double areaAdd5Area;
        double areaAdd5Latency;
        double areaMul;
    };

    explicit DwmPimBaseline(Calibration c)
        : cal(c)
    {}

    /** Published-cost-calibrated DW-NN model. */
    static DwmPimBaseline dwNn();

    /** Published-cost-calibrated SPIM model. */
    static DwmPimBaseline spim();

    /** Two-operand addition cost for `bits`-bit words. */
    OpCost addCost(std::size_t bits) const;

    /**
     * Multi-operand addition composed from two-operand additions
     * (these designs have no multi-operand primitive).
     */
    OpCost addCost(std::size_t operands, std::size_t bits,
                   ComposeMode mode) const;

    /** Two-operand multiplication cost (shift-and-add, O(n^2)). */
    OpCost multiplyCost(std::size_t bits) const;

    /** Processing-element area for Table III. */
    double areaUm2(std::size_t operands, bool multiply,
                   ComposeMode mode = ComposeMode::AreaOptimized) const;

    // Functional execution (bit-exact; the devices compute normal
    // binary arithmetic, only slower).
    std::uint64_t
    execAdd(const std::vector<std::uint64_t> &ops, std::size_t bits) const
    {
        std::uint64_t mask =
            bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
        std::uint64_t s = 0;
        for (auto v : ops)
            s += v & mask;
        return s & mask;
    }

    std::uint64_t
    execMultiply(std::uint64_t a, std::uint64_t b, std::size_t bits) const
    {
        std::uint64_t mask =
            bits >= 32 ? ~0ULL : ((1ULL << (2 * bits)) - 1);
        return (a * b) & mask;
    }

  private:
    Calibration cal;
};

} // namespace coruscant

#endif // CORUSCANT_BASELINES_DWM_PIM_BASELINES_HPP
