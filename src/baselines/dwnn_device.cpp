#include "baselines/dwnn_device.hpp"

#include "util/logging.hpp"

namespace coruscant {

namespace {

// Primitive costs calibrated so the emergent 8-bit addition lands on
// the published 54 cycles / 40 pJ: per bit 2 shifts + 2 GMR reads +
// 1 PCSA + 1 write = 6 cycles and 4.5 pJ; setup (stage both operand
// wires, clear the carry latch, precharge) 6 cycles and 4 pJ.
constexpr double shiftEnergyPj = 0.3;
constexpr double gmrEnergyPj = 1.2;
constexpr double pcsaEnergyPj = 0.9;
constexpr double writeEnergyPj = 0.6;

} // namespace

void
DwNnDevice::chargeShift()
{
    costs.charge("shift", 1, shiftEnergyPj);
}

void
DwNnDevice::chargeWrite()
{
    costs.charge("write", 1, writeEnergyPj);
}

bool
DwNnDevice::gmrXor(bool top, bool bottom)
{
    costs.charge("gmr", 1, gmrEnergyPj);
    return top != bottom; // anti-parallel stack reads '1'
}

bool
DwNnDevice::pcsaMajority(bool a, bool b, bool c)
{
    // PCSA(A,B,C) > PCSA(~A,~B,~C): more ones discharge faster.
    costs.charge("pcsa", 1, pcsaEnergyPj);
    int ones = (a ? 1 : 0) + (b ? 1 : 0) + (c ? 1 : 0);
    return ones >= 2;
}

std::uint64_t
DwNnDevice::add(std::uint64_t a, std::uint64_t b, std::size_t bits)
{
    fatalIf(bits == 0 || bits > 63, "bits must be in [1, 63]");
    // Setup: write both operands to their wires (2), align the stacked
    // region (2 shifts), clear the carry latch (1), precharge (1).
    chargeWrite();
    chargeWrite();
    chargeShift();
    chargeShift();
    costs.charge("latch", 1, writeEnergyPj);
    costs.charge("precharge", 1, 1.6); // PCSA precharge of both banks

    std::uint64_t result = 0;
    bool carry = false;
    for (std::size_t k = 0; k < bits; ++k) {
        bool av = (a >> k) & 1;
        bool bv = (b >> k) & 1;
        chargeShift(); // advance wire A under the stack
        chargeShift(); // advance wire B
        bool t = gmrXor(av, bv);
        bool s = gmrXor(t, carry);
        carry = pcsaMajority(av, bv, carry);
        if (s)
            result |= 1ULL << k;
        chargeWrite(); // S into the result wire
    }
    if (carry)
        result |= 1ULL << bits;
    return result;
}

std::uint64_t
DwNnDevice::multiply(std::uint64_t a, std::uint64_t b,
                     std::size_t bits)
{
    fatalIf(bits == 0 || bits > 31, "bits must be in [1, 31]");
    // Shift-and-add: operand A is logically shifted within its
    // nanowire; each set multiplier bit triggers a bit-serial
    // accumulate over the (growing) product width.
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bits; ++i) {
        chargeShift(); // advance the multiplier wire
        if ((b >> i) & 1)
            acc = add(acc, a << i, 2 * bits);
    }
    std::uint64_t mask = (bits >= 32) ? ~0ULL
                                      : ((1ULL << (2 * bits)) - 1);
    return acc & mask;
}

} // namespace coruscant
