/**
 * @file
 * DW-NN device-level functional model (Yu et al., ASP-DAC 2014).
 *
 * DW-NN augments DWM with a processing element that passes current
 * through two stacked domains at once and measures the aggregate giant
 * magnetoresistance (GMR): parallel magnetization reads '0',
 * anti-parallel reads '1' — an XOR of the two stacked bits.  A
 * precharge sense amplifier (PCSA) compares three nanowires' access
 * ports; C_out = PCSA(A,B,C_in) > PCSA(~A,~B,~C_in) is the majority.
 * Operands live in consecutive bits of a single nanowire and must be
 * shifted into alignment for every bit, so addition is bit-serial:
 *
 *   per bit: shift A wire, shift B wire, GMR XOR (t = a^b),
 *            GMR XOR (s = t^c), PCSA majority (c'), write S
 *
 * which is 6 cycles/bit + 6 setup cycles = the published 54 cycles for
 * 8-bit addition.  Multiplication is shift-and-add over the same
 * datapath.
 *
 * This model executes the actual datapath (explicit wire state, GMR
 * and PCSA primitives) and charges each primitive; the emergent add
 * cost reproduces the published 54 cycles, while the emergent
 * multiply cost is reported alongside the published 163 (which
 * assumes sum/carry pipelining the paper does not detail).
 */

#ifndef CORUSCANT_BASELINES_DWNN_DEVICE_HPP
#define CORUSCANT_BASELINES_DWNN_DEVICE_HPP

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace coruscant {

/** Functional DW-NN processing element. */
class DwNnDevice
{
  public:
    DwNnDevice() = default;

    /**
     * Bit-serial addition of two k-bit values through the GMR/PCSA
     * datapath.  Result is k+1 bits (carry out preserved).
     */
    std::uint64_t add(std::uint64_t a, std::uint64_t b,
                      std::size_t bits);

    /** Shift-and-add multiplication (2k-bit product). */
    std::uint64_t multiply(std::uint64_t a, std::uint64_t b,
                           std::size_t bits);

    const CostLedger &ledger() const { return costs; }
    void resetCosts() { costs.reset(); }

    // --- Device primitives (public for the tests) ---------------------

    /** GMR read across two stacked domains: XOR. */
    bool gmrXor(bool top, bool bottom);

    /** PCSA three-way comparison: the majority of three ports. */
    bool pcsaMajority(bool a, bool b, bool c);

  private:
    void chargeShift();
    void chargeWrite();

    CostLedger costs;
};

} // namespace coruscant

#endif // CORUSCANT_BASELINES_DWNN_DEVICE_HPP
