#include "baselines/pinatubo.hpp"

#include "util/logging.hpp"

namespace coruscant {

namespace {

// PCM-class cost constants (paper Sec. I and its references [13],
// [14]): reads are DRAM-like, writes are slow and expensive.
constexpr unsigned senseCycles = 10;   ///< multi-row activate + sense
constexpr unsigned writeCycles = 120;  ///< PCM SET/RESET latency
constexpr double readEnergyPjPerBit = 0.08;
constexpr double writeEnergyPjPerBit = 29.7; ///< paper-cited worst case

} // namespace

PinatuboUnit::PinatuboUnit(std::size_t row_bits,
                           std::size_t max_operands)
    : rowBits(row_bits), maxOps(max_operands)
{
    fatalIf(row_bits == 0, "row width must be positive");
    fatalIf(max_operands < 2, "Pinatubo senses at least two rows");
}

BitVector
PinatuboUnit::senseGroup(BulkOp op, const std::vector<BitVector> &ops)
{
    // One activation of all group rows; the threshold position selects
    // the operation.
    costs.charge("sense", senseCycles,
                 static_cast<double>(rowBits * ops.size())
                     * readEnergyPjPerBit);
    BitVector acc = ops[0];
    for (std::size_t i = 1; i < ops.size(); ++i) {
        switch (op) {
          case BulkOp::And:
            acc &= ops[i];
            break;
          case BulkOp::Or:
            acc |= ops[i];
            break;
          case BulkOp::Xor:
            // XOR needs the two-pass scheme (both thresholds).
            acc ^= ops[i];
            break;
          default:
            fatal("Pinatubo models AND/OR/XOR cores");
        }
    }
    if (op == BulkOp::Xor) {
        costs.charge("sense", senseCycles,
                     static_cast<double>(rowBits * ops.size())
                         * readEnergyPjPerBit);
    }
    return acc;
}

BitVector
PinatuboUnit::bulk(BulkOp op, const std::vector<BitVector> &ops)
{
    fatalIf(ops.empty(), "bulk op needs operands");
    for (const auto &r : ops)
        fatalIf(r.size() != rowBits, "row width mismatch");

    BulkOp core = op;
    bool invert = false;
    if (op == BulkOp::Nand) {
        core = BulkOp::And;
        invert = true;
    } else if (op == BulkOp::Nor) {
        core = BulkOp::Or;
        invert = true;
    } else if (op == BulkOp::Xnor) {
        core = BulkOp::Xor;
        invert = true;
    }

    // Chain groups of maxOps operands; each intermediate result is
    // written back to the array before the next activation — this is
    // the endurance cost CORUSCANT's paper highlights.
    BitVector acc;
    bool have = false;
    std::size_t i = 0;
    while (i < ops.size() || !have) {
        std::vector<BitVector> group;
        if (have)
            group.push_back(acc);
        while (group.size() < maxOps && i < ops.size())
            group.push_back(ops[i++]);
        if (group.size() == 1) {
            acc = group[0];
        } else {
            acc = senseGroup(core, group);
        }
        have = true;
        // Intermediate / final write-back.
        costs.charge("write", writeCycles,
                     static_cast<double>(rowBits)
                         * writeEnergyPjPerBit);
        ++wear;
        if (i >= ops.size())
            break;
    }
    if (invert) {
        acc = ~acc;
        costs.charge("write", writeCycles,
                     static_cast<double>(rowBits)
                         * writeEnergyPjPerBit);
        ++wear;
    }
    return acc;
}

} // namespace coruscant
