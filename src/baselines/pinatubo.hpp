/**
 * @file
 * Pinatubo (Li et al., DAC 2016): bulk bitwise PIM in resistive NVMs.
 *
 * Pinatubo opens two (conceptually more) rows simultaneously and moves
 * the sense threshold: V_TH below the midpoint senses OR, above senses
 * AND; inverted references give the complements.  The paper positions
 * it as the closest prior multi-operand concept, but notes it was only
 * experimentally explored for two operands and inherits PCM/ReRAM
 * endurance and write-energy problems (up to 29.7 pJ/bit writes,
 * ~1e8 endurance).
 *
 * This model is functional (exact results) with a PCM-class cost
 * model; it also tracks per-row write wear so the endurance concern
 * the CORUSCANT paper raises is visible in experiments.
 */

#ifndef CORUSCANT_BASELINES_PINATUBO_HPP
#define CORUSCANT_BASELINES_PINATUBO_HPP

#include <cstdint>
#include <vector>

#include "core/pim_logic.hpp"
#include "util/bit_vector.hpp"
#include "util/stats.hpp"

namespace coruscant {

/** Pinatubo-style PIM over a PCM subarray. */
class PinatuboUnit
{
  public:
    /**
     * @param row_bits bits per NVM row
     * @param max_operands rows the modified SA can sense at once
     *        (Pinatubo demonstrated 2; more is the qualitative claim)
     */
    explicit PinatuboUnit(std::size_t row_bits,
                          std::size_t max_operands = 2);

    /**
     * Multi-operand bulk operation; operand groups larger than
     * maxOperands() are chained.  Result is written back to the array
     * (charging the PCM write energy and wear).
     */
    BitVector bulk(BulkOp op, const std::vector<BitVector> &ops);

    std::size_t maxOperands() const { return maxOps; }

    const CostLedger &ledger() const { return costs; }
    void resetCosts() { costs.reset(); }

    /** Writes absorbed by the result row so far (endurance proxy). */
    std::uint64_t resultRowWrites() const { return wear; }

    /** PCM cell endurance the paper cites (~1e8 writes). */
    static constexpr double enduranceWrites = 1e8;

  private:
    /** One multi-row activation + threshold sense. */
    BitVector senseGroup(BulkOp op, const std::vector<BitVector> &ops);

    std::size_t rowBits;
    std::size_t maxOps;
    CostLedger costs;
    std::uint64_t wear = 0;
};

} // namespace coruscant

#endif // CORUSCANT_BASELINES_PINATUBO_HPP
