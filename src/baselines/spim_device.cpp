#include "baselines/spim_device.hpp"

#include "util/logging.hpp"

namespace coruscant {

namespace {

// Gate events: each skyrmion channel operation nucleates/steers a
// skyrmion.  Costs calibrated so the emergent 8-bit ripple addition
// lands on the published 49 cycles / 28 pJ: a full-adder cell settles
// in 5.5 cycles (the gates of one cell partially overlap) and the
// unit needs 5 cycles of setup (operand injection + chain reset).
constexpr double gateEnergyPj = 0.35;

} // namespace

bool
SpimDevice::orGate(bool a, bool b)
{
    costs.charge("or", 0, gateEnergyPj); // overlapped within the cell
    return a || b;
}

bool
SpimDevice::andGate(bool a, bool b)
{
    costs.charge("and", 0, gateEnergyPj);
    return a && b;
}

bool
SpimDevice::notGate(bool a)
{
    costs.charge("not", 0, gateEnergyPj);
    return !a;
}

SpimDevice::FullAdderOut
SpimDevice::fullAdder(bool a, bool b, bool c)
{
    // XOR from AND/OR/NOT:  a^b = (a|b) & !(a&b).
    bool ab_or = orGate(a, b);
    bool ab_and = andGate(a, b);
    bool ab_xor = andGate(ab_or, notGate(ab_and));
    bool s_or = orGate(ab_xor, c);
    bool s_and = andGate(ab_xor, c);
    bool sum = andGate(s_or, notGate(s_and));
    // carry = ab | c(a^b)
    bool carry = orGate(ab_and, s_and);
    // The cell's nine gates settle as one pipelined event.
    costs.charge("fa-settle", 5, 0.0);
    return {sum, carry};
}

std::uint64_t
SpimDevice::add(std::uint64_t a, std::uint64_t b, std::size_t bits)
{
    fatalIf(bits == 0 || bits > 63, "bits must be in [1, 63]");
    // Setup: inject both operand skyrmion trains and reset the chain.
    // Each cell settles in 5 cycles; a result latch fires once per
    // pair of cells (5.5 cycles/bit amortized): the published
    // 49-cycle 8-bit add = 5 setup + 8 x 5 + 4 latches.
    costs.charge("inject", 5, 2.0);
    std::uint64_t result = 0;
    bool carry = false;
    for (std::size_t k = 0; k < bits; ++k) {
        auto out = fullAdder((a >> k) & 1, (b >> k) & 1, carry);
        if (out.sum)
            result |= 1ULL << k;
        carry = out.carry;
        if (k % 2 == 1)
            costs.charge("latch", 1, 0.2);
    }
    if (carry)
        result |= 1ULL << bits;
    return result;
}

std::uint64_t
SpimDevice::multiply(std::uint64_t a, std::uint64_t b,
                     std::size_t bits)
{
    fatalIf(bits == 0 || bits > 31, "bits must be in [1, 31]");
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bits; ++i) {
        costs.charge("shift", 1, 0.1);
        if ((b >> i) & 1)
            acc = add(acc, a << i, 2 * bits);
    }
    std::uint64_t mask = (bits >= 32) ? ~0ULL
                                      : ((1ULL << (2 * bits)) - 1);
    return acc & mask;
}

} // namespace coruscant
