/**
 * @file
 * SPIM device-level functional model (Liu et al., ISPA 2017).
 *
 * SPIM extends DWM with dedicated skyrmion-based computing units:
 * custom ferromagnetic domains permanently linked by channels.
 * Merging two skyrmion tracks into one channel implements OR; a
 * notched junction that only passes a skyrmion when both inputs carry
 * one implements AND; duplication and inversion come from the
 * read/write interface.  Full adders are built by wiring these gates
 * (sum = a^b^c from AND/OR/NOT composition, carry = majority), and
 * ripple chains of full adders perform addition; multiplication is
 * shift-and-add over the same units.
 *
 * This model evaluates the actual gate netlist (every AND/OR/NOT is a
 * charged skyrmion-channel event) so results are bit-exact and the
 * emergent addition cost reproduces the published 49 cycles for 8-bit
 * adds; the emergent multiply cost is reported alongside the
 * published 149.
 */

#ifndef CORUSCANT_BASELINES_SPIM_DEVICE_HPP
#define CORUSCANT_BASELINES_SPIM_DEVICE_HPP

#include <cstdint>

#include "util/stats.hpp"

namespace coruscant {

/** Functional skyrmion computing unit. */
class SpimDevice
{
  public:
    SpimDevice() = default;

    /** Ripple addition through the full-adder chain (k+1 bit result). */
    std::uint64_t add(std::uint64_t a, std::uint64_t b,
                      std::size_t bits);

    /** Shift-and-add multiplication (2k-bit product). */
    std::uint64_t multiply(std::uint64_t a, std::uint64_t b,
                           std::size_t bits);

    const CostLedger &ledger() const { return costs; }
    void resetCosts() { costs.reset(); }

    // --- Skyrmion gate primitives (public for the tests) --------------

    /** Channel merge: OR. */
    bool orGate(bool a, bool b);

    /** Notched junction: AND. */
    bool andGate(bool a, bool b);

    /** Inverting read: NOT. */
    bool notGate(bool a);

    /** One full adder cell (wired from the primitives). */
    struct FullAdderOut
    {
        bool sum;
        bool carry;
    };
    FullAdderOut fullAdder(bool a, bool b, bool c);

  private:
    CostLedger costs;
};

} // namespace coruscant

#endif // CORUSCANT_BASELINES_SPIM_DEVICE_HPP
