#include "controller/cpim_isa.hpp"

#include <bit>

#include "util/logging.hpp"

namespace coruscant {

const char *
cpimOpName(CpimOp op)
{
    switch (op) {
      case CpimOp::And: return "and";
      case CpimOp::Nand: return "nand";
      case CpimOp::Or: return "or";
      case CpimOp::Nor: return "nor";
      case CpimOp::Xor: return "xor";
      case CpimOp::Xnor: return "xnor";
      case CpimOp::Not: return "not";
      case CpimOp::Add: return "add";
      case CpimOp::Reduce: return "reduce";
      case CpimOp::Multiply: return "mult";
      case CpimOp::Max: return "max";
      case CpimOp::Relu: return "relu";
      case CpimOp::Vote: return "vote";
      case CpimOp::Copy: return "copy";
    }
    return "?";
}

bool
cpimIsBulk(CpimOp op)
{
    switch (op) {
      case CpimOp::And:
      case CpimOp::Nand:
      case CpimOp::Or:
      case CpimOp::Nor:
      case CpimOp::Xor:
      case CpimOp::Xnor:
      case CpimOp::Not:
        return true;
      default:
        return false;
    }
}

std::string
CpimInstruction::validate(std::size_t trd) const
{
    if (blockSize == 0 || (blockSize & (blockSize - 1)) != 0 ||
        blockSize < 8 || blockSize > 512) {
        return "blocksize must be a power of two in [8, 512]";
    }
    if (operands == 0)
        return "at least one operand required";
    if (cpimIsBulk(op) && operands > trd)
        return "bulk operations take at most TRD operands";
    if (op == CpimOp::Add) {
        std::size_t arity = trd <= 3 ? 2 : trd - 2;
        if (operands > arity)
            return "addition takes at most TRD-2 operands";
    }
    if (op == CpimOp::Vote &&
        (operands != 3 && operands != 5 && operands != 7)) {
        return "vote requires N in {3,5,7}";
    }
    return "";
}

std::uint32_t
CpimInstruction::packControl() const
{
    auto log2_block = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint32_t>(blockSize)));
    return (static_cast<std::uint32_t>(op) & 0xF) |
           ((static_cast<std::uint32_t>(operands) & 0x7) << 4) |
           ((log2_block & 0xF) << 7);
}

CpimInstruction
CpimInstruction::unpackControl(std::uint32_t word)
{
    CpimInstruction inst;
    inst.op = static_cast<CpimOp>(word & 0xF);
    inst.operands = static_cast<std::uint8_t>((word >> 4) & 0x7);
    inst.blockSize =
        static_cast<std::uint16_t>(1u << ((word >> 7) & 0xF));
    return inst;
}

} // namespace coruscant
