/**
 * @file
 * The cpim instruction (paper Sec. III-E).
 *
 * CORUSCANT reserves part of the physical address space for PIM and
 * adds an instruction the core hands to the memory controller:
 *
 *     cpim  src, op, blocksize
 *
 * src names the DBC and nanowire position to align with the leftmost
 * access port; op selects the PIM operation; blocksize in
 * {8,16,32,64,128,256,512} tells the controller where to mask the
 * bitlines that form carry chains.  This module defines the
 * instruction, its operation encoding, and a packed 64-bit binary
 * encode/decode pair for ISA-level tests.
 */

#ifndef CORUSCANT_CONTROLLER_CPIM_ISA_HPP
#define CORUSCANT_CONTROLLER_CPIM_ISA_HPP

#include <cstdint>
#include <string>

namespace coruscant {

/** PIM operations addressable from the cpim instruction. */
enum class CpimOp : std::uint8_t
{
    And = 0,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
    Not,
    Add,
    Reduce,
    Multiply,
    Max,
    Relu,
    Vote,
    Copy, ///< row-buffer data movement into/out of PIM DBCs
};

const char *cpimOpName(CpimOp op);

/** Whether the op is a single-TR bulk-bitwise operation. */
bool cpimIsBulk(CpimOp op);

/** One cpim instruction. */
struct CpimInstruction
{
    CpimOp op = CpimOp::And;
    std::uint64_t src = 0;      ///< byte address of the first operand row
    std::uint8_t operands = 2;  ///< operand rows at src, src+stride, ...
    std::uint16_t blockSize = 512; ///< carry-chain lane width
    std::uint64_t dst = 0;      ///< result row byte address

    /** Validate against the ISA limits; returns an error or "". */
    std::string validate(std::size_t trd) const;

    /**
     * Pack into the 64-bit control word handed to the controller
     * (op:4 | operands:3 | log2(blockSize):4 plus the row coordinates;
     * addresses travel on the address bus and are not packed here).
     */
    std::uint32_t packControl() const;

    /** Inverse of packControl for the fields it carries. */
    static CpimInstruction unpackControl(std::uint32_t word);
};

} // namespace coruscant

#endif // CORUSCANT_CONTROLLER_CPIM_ISA_HPP
