#include "controller/event_sim.hpp"

#include <algorithm>
#include <deque>

#include "util/logging.hpp"

namespace coruscant {

SimStats
EventSimulator::run(std::vector<SimRequest> requests,
                    SchedulePolicy policy, obs::TraceSink *trace,
                    std::uint32_t pid) const
{
    SimStats stats;
    stats.requests = requests.size();
    if (requests.empty())
        return stats;

    std::stable_sort(requests.begin(), requests.end(),
                     [](const SimRequest &a, const SimRequest &b) {
                         return a.arrival < b.arrival;
                     });
    for (const auto &r : requests)
        fatalIf(r.bank >= numBanks, "bank out of range");

    std::vector<std::uint64_t> bank_free(numBanks, 0);
    std::uint64_t bus_free = 0;
    std::uint64_t issued_cmds = 0;
    std::uint64_t busy_total = 0;
    double latency_sum = 0;
    // Queue-depth tracking: dispatch start times are monotone (each
    // dispatch advances bus_free past its start), so a single pointer
    // over the arrival-sorted array counts arrivals <= now.
    std::vector<std::uint64_t> arrivals;
    std::size_t arrived = 0, dispatched = 0;
    if (trace && trace->on()) {
        arrivals.reserve(requests.size());
        for (const auto &r : requests)
            arrivals.push_back(r.arrival);
    }

    auto start_for = [&](const SimRequest &r) {
        // Commands can only be accepted once the bank is free (the
        // activation begins the service) and the bus has a slot.
        return std::max({r.arrival, bus_free, bank_free[r.bank]});
    };

    auto dispatch = [&](const SimRequest &r) {
        std::uint64_t start = start_for(r);
        bus_free = start + r.issueCmds;
        std::uint64_t completion = start + r.issueCmds
                                   + r.serviceCycles;
        bank_free[r.bank] = completion;
        issued_cmds += r.issueCmds;
        busy_total += r.serviceCycles;
        std::uint64_t latency = completion - r.arrival;
        latency_sum += static_cast<double>(latency);
        stats.latency.record(latency);
        stats.maxLatency = std::max(stats.maxLatency, latency);
        stats.makespan = std::max(stats.makespan, completion);
        if (trace && trace->on()) {
            trace->span("request", "memchan", start,
                        r.issueCmds + r.serviceCycles, pid,
                        static_cast<std::uint32_t>(r.bank), "latency",
                        static_cast<double>(latency));
            while (arrived < arrivals.size() &&
                   arrivals[arrived] <= start)
                ++arrived;
            ++dispatched;
            trace->counter("queue_depth", start, pid,
                           static_cast<double>(arrived - dispatched));
        }
    };

    if (policy == SchedulePolicy::InOrder) {
        for (const auto &r : requests)
            dispatch(r);
    } else {
        // Per-bank FIFOs preserve intra-bank order; across banks the
        // scheduler picks the request that can start earliest (oldest
        // arrival breaking ties).
        std::vector<std::deque<SimRequest>> queues(numBanks);
        for (const auto &r : requests)
            queues[r.bank].push_back(r);
        std::size_t remaining = requests.size();
        while (remaining > 0) {
            std::size_t best = numBanks;
            std::uint64_t best_start = ~0ull;
            std::uint64_t best_arrival = ~0ull;
            for (std::size_t b = 0; b < numBanks; ++b) {
                if (queues[b].empty())
                    continue;
                const auto &head = queues[b].front();
                std::uint64_t s = start_for(head);
                if (s < best_start ||
                    (s == best_start && head.arrival < best_arrival)) {
                    best = b;
                    best_start = s;
                    best_arrival = head.arrival;
                }
            }
            dispatch(queues[best].front());
            queues[best].pop_front();
            --remaining;
        }
    }

    stats.avgLatency =
        latency_sum / static_cast<double>(requests.size());
    if (stats.makespan > 0) {
        stats.busUtilization =
            static_cast<double>(issued_cmds) /
            static_cast<double>(stats.makespan);
        stats.bankUtilization =
            static_cast<double>(busy_total) /
            (static_cast<double>(stats.makespan) *
             static_cast<double>(numBanks));
    }
    return stats;
}

} // namespace coruscant
