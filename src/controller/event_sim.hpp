/**
 * @file
 * Discrete-event memory-channel simulator.
 *
 * A finer-grained companion to the closed-form CommandQueueModel: each
 * request arrives at a cycle, needs command-bus slots to issue (the
 * shared per-channel bus serializes at one command per memory cycle),
 * and then occupies its bank for a service time.  Banks work in
 * parallel; the scheduler picks which pending request to issue next.
 *
 * Two policies:
 *  - InOrder: strict arrival order (head-of-line blocking when the
 *    next request's bank is busy);
 *  - BankReorder: FR-FCFS-lite — the oldest request whose bank can
 *    start earliest (the reordering real controllers and the paper's
 *    high-throughput mode rely on).
 *
 * Used by the scheduling ablation and available to the system models;
 * the closed-form model remains the fast path and is cross-checked
 * against this simulator in the tests.
 */

#ifndef CORUSCANT_CONTROLLER_EVENT_SIM_HPP
#define CORUSCANT_CONTROLLER_EVENT_SIM_HPP

#include <cstdint>
#include <vector>

#include "obs/trace_sink.hpp"
#include "util/stats.hpp"

namespace coruscant {

/** One memory/PIM request. */
struct SimRequest
{
    std::uint64_t arrival = 0;     ///< cycle the request enters the queue
    std::size_t bank = 0;          ///< executing bank
    std::uint32_t issueCmds = 1;   ///< command-bus cycles to launch
    std::uint32_t serviceCycles = 0; ///< bank occupancy after issue
};

/** Scheduling policy. */
enum class SchedulePolicy
{
    InOrder,
    BankReorder,
};

/** Aggregate results of one simulation. */
struct SimStats
{
    std::uint64_t makespan = 0;      ///< last completion cycle
    double avgLatency = 0.0;         ///< mean (completion - arrival)
    std::uint64_t maxLatency = 0;
    double busUtilization = 0.0;     ///< issued cmds / makespan
    double bankUtilization = 0.0;    ///< busy cycles / (makespan*banks)
    std::uint64_t requests = 0;
    LatencyHistogram latency;        ///< full latency distribution
};

/** Event-driven channel simulation. */
class EventSimulator
{
  public:
    explicit EventSimulator(std::size_t banks)
        : numBanks(banks)
    {}

    /**
     * Run @p requests (any order; sorted internally by arrival) under
     * @p policy.  When @p trace is given, every dispatched request
     * emits a complete span on row (@p pid, bank) and the pending
     * queue depth is sampled as a counter track at each dispatch.
     */
    SimStats run(std::vector<SimRequest> requests, SchedulePolicy policy,
                 obs::TraceSink *trace = nullptr,
                 std::uint32_t pid = 0) const;

  private:
    std::size_t numBanks;
};

} // namespace coruscant

#endif // CORUSCANT_CONTROLLER_EVENT_SIM_HPP
