#include "controller/memory_controller.hpp"

#include <iomanip>
#include <sstream>

#include "util/logging.hpp"

namespace coruscant {

namespace {

std::string
hexAddr(std::uint64_t addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

/** One-line instruction summary for diagnostics. */
std::string
describe(const CpimInstruction &inst)
{
    std::ostringstream os;
    os << "cpim " << cpimOpName(inst.op) << " src="
       << hexAddr(inst.src) << " dst=" << hexAddr(inst.dst)
       << " operands=" << static_cast<unsigned>(inst.operands)
       << " blocksize=" << inst.blockSize;
    return os.str();
}

} // namespace

std::uint64_t
MemoryController::operandAddress(std::uint64_t src, std::size_t i) const
{
    LineAddress loc = mem.addressMap().decode(src);
    loc.row += i;
    fatalIf(loc.row >= mem.config().device.domainsPerWire,
            "operand row ", i, " of src=", hexAddr(src),
            " (DBC row ", loc.row, ") runs past the end of the DBC (",
            mem.config().device.domainsPerWire, " rows)");
    return mem.addressMap().encode(loc);
}

BitVector
MemoryController::computeResult(const CpimInstruction &inst)
{
    LineAddress src = mem.addressMap().decode(inst.src);
    CoruscantUnit &unit = mem.pimUnit(src.bank, src.subarray);

    // Gather operand rows (charges DWM access timing per row).
    std::vector<BitVector> ops;
    ops.reserve(inst.operands);
    for (std::size_t i = 0; i < inst.operands; ++i)
        ops.push_back(mem.readLine(operandAddress(inst.src, i)));

    BitVector result;
    switch (inst.op) {
      case CpimOp::And:
        result = unit.bulkBitwise(BulkOp::And, ops);
        break;
      case CpimOp::Nand:
        result = unit.bulkBitwise(BulkOp::Nand, ops);
        break;
      case CpimOp::Or:
        result = unit.bulkBitwise(BulkOp::Or, ops);
        break;
      case CpimOp::Nor:
        result = unit.bulkBitwise(BulkOp::Nor, ops);
        break;
      case CpimOp::Xor:
        result = unit.bulkBitwise(BulkOp::Xor, ops);
        break;
      case CpimOp::Xnor:
        result = unit.bulkBitwise(BulkOp::Xnor, ops);
        break;
      case CpimOp::Not:
        result = unit.bulkBitwise(BulkOp::Not, {ops[0]});
        break;
      case CpimOp::Add:
        result = unit.add(ops, inst.blockSize);
        break;
      case CpimOp::Reduce: {
        auto red = unit.reduce(ops, inst.blockSize);
        result = red.sum; // carry rows remain resident in the DBC
        break;
      }
      case CpimOp::Multiply:
        fatalIf(ops.size() != 2, describe(inst),
                ": mult takes exactly two operand rows");
        result = unit.multiply(ops[0], ops[1], inst.blockSize / 2);
        break;
      case CpimOp::Max:
        result = unit.maxOfRows(ops, inst.blockSize);
        break;
      case CpimOp::Relu:
        result = unit.relu(ops[0], inst.blockSize);
        break;
      case CpimOp::Vote:
        result = unit.nmrVote(ops);
        break;
      case CpimOp::Copy:
        result = ops[0];
        break;
    }

    return result;
}

BitVector
MemoryController::computeOnce(const CpimInstruction &inst)
{
    const ReliabilityConfig &rel = mem.config().reliability;
    // ECC protects lines crossing the port, but in-situ compute senses
    // raw operand lanes with transverse reads — check bits mean
    // nothing to a TR.  When data faults are live, PIM ops fall back
    // to whole-op N-modular redundancy (paper Sec. III-F): each
    // replica re-reads its operands (re-sampling any transient
    // disturbance) and the unit majority-votes the replica rows.
    bool nmr = rel.pimNmr > 1 && rel.dataFaultsEnabled() &&
               inst.op != CpimOp::Copy;
    BitVector result;
    if (nmr) {
        fatalIf(rel.pimNmr != 3 && rel.pimNmr != 5 && rel.pimNmr != 7,
                "pimNmr must be 1, 3, 5, or 7 (got ", rel.pimNmr, ")");
        LineAddress src = mem.addressMap().decode(inst.src);
        CoruscantUnit &unit = mem.pimUnit(src.bank, src.subarray);
        result = unit.nmrExecute(rel.pimNmr,
                                 [&] { return computeResult(inst); });
    } else {
        result = computeResult(inst);
    }
    mem.writeLine(inst.dst, result);
    return result;
}

ExecReport
MemoryController::executeGuarded(const CpimInstruction &inst)
{
    std::string err = inst.validate(mem.config().device.trd);
    fatalIf(!err.empty(), describe(inst), ": ", err);

    ++executed;
    std::uint64_t cycles_before = mem.ledger().cycles();
    ExecReport report;
    const ReliabilityConfig &rel = mem.config().reliability;
    if (rel.guardPolicy != GuardPolicy::PerCpim) {
        // Per-access and scrub policies run inside the memory itself;
        // an unguarded memory executes single-shot.  Surface any
        // uncorrectable event the memory hit during this instruction.
        std::uint64_t due_before = mem.uncorrectableEvents();
        std::uint64_t fix_before = mem.correctedMisalignments();
        std::uint64_t exhausted_before = mem.retirementFailures();
        std::uint64_t ecc_due_before = mem.eccDetectedUncorrectable();
        std::uint64_t ecc_fix_before = mem.eccCorrections();
        report.result = computeOnce(inst);
        if (mem.retirementFailures() > exhausted_before) {
            report.outcome = ExecOutcome::SparesExhausted;
            ++spareExhaustedCount;
        } else if (mem.uncorrectableEvents() > due_before ||
                   mem.eccDetectedUncorrectable() > ecc_due_before) {
            report.outcome = ExecOutcome::Uncorrectable;
            ++uncorrectableCount;
        } else if (mem.correctedMisalignments() > fix_before ||
                   mem.eccCorrections() > ecc_fix_before) {
            report.outcome = ExecOutcome::Corrected;
        }
        noteExecution(inst, report, cycles_before);
        return report;
    }

    // Rung 1: realign the source and destination clusters up front so
    // the operand reads start from a known-good position.
    std::uint64_t last_operand =
        operandAddress(inst.src, inst.operands - 1);
    GuardReport pre_src = mem.checkLine(inst.src);
    GuardReport pre_dst = mem.checkLine(inst.dst);
    bool corrected = pre_src.corrected || pre_dst.corrected;
    bool uncorrectable =
        pre_src.uncorrectable || pre_dst.uncorrectable;
    bool spares_exhausted =
        pre_src.sparesExhausted || pre_dst.sparesExhausted;
    (void)last_operand; // operands share the source DBC by the ISA

    // Rungs 2-3: execute, then re-check; a fault that struck between
    // the pre-check and the post-check may have corrupted the operand
    // reads or the result write, so re-read and recompute — after an
    // exponentially growing backoff wait when one is configured.
    for (unsigned attempt = 0;; ++attempt) {
        std::uint64_t ecc_due_before = mem.eccDetectedUncorrectable();
        std::uint64_t ecc_fix_before = mem.eccCorrections();
        report.result = computeOnce(inst);
        GuardReport post_src = mem.checkLine(inst.src);
        GuardReport post_dst = mem.checkLine(inst.dst);
        uncorrectable |=
            post_src.uncorrectable || post_dst.uncorrectable;
        spares_exhausted |=
            post_src.sparesExhausted || post_dst.sparesExhausted;
        if (uncorrectable)
            break;
        corrected |= mem.eccCorrections() > ecc_fix_before;
        // An ECC DUE during this attempt means an operand or the
        // result crossed the port unprotected; like a mid-instruction
        // misalignment it warrants a re-execution — transient flips
        // re-sample clean, and only persistent damage survives the
        // ladder to become a DUE.
        bool ecc_due =
            mem.eccDetectedUncorrectable() > ecc_due_before;
        if (!post_src.misaligned && !post_dst.misaligned && !ecc_due)
            break; // executed against healthy clusters end to end
        corrected |= post_src.misaligned || post_dst.misaligned;
        if (attempt >= rel.maxRetries) {
            // Ladder exhausted; keep the last (suspect) result.  A
            // still-uncorrectable ECC word is a DUE, not a retry.
            uncorrectable |= ecc_due;
            break;
        }
        mem.chargeRetryBackoff(rel.retryBackoffCycles << attempt);
        ++report.retries;
    }

    if (report.retries > 0)
        ++retried;
    // Rung 4: escalate.  An uncorrectable misalignment means the
    // cluster (and possibly the operand data) is beyond the guard's
    // reach; the caller must treat the result as untrusted.  When the
    // escalation itself failed for capacity (no spare to retire onto),
    // report the typed capacity error so callers shed load instead of
    // hammering a cluster that can never be replaced.
    if (uncorrectable || spares_exhausted) {
        if (spares_exhausted) {
            report.outcome = ExecOutcome::SparesExhausted;
            ++spareExhaustedCount;
        } else {
            report.outcome = ExecOutcome::Uncorrectable;
            ++uncorrectableCount;
        }
    } else if (corrected) {
        report.outcome = ExecOutcome::Corrected;
    }
    noteExecution(inst, report, cycles_before);
    return report;
}

void
MemoryController::noteExecution(const CpimInstruction &inst,
                                const ExecReport &report,
                                std::uint64_t cycles_before)
{
    if (metrics) {
        metrics->add(obs::Counter::Requests);
        metrics->add(obs::Counter::Retries, report.retries);
    }
    if (traceSink && traceSink->on()) {
        LineAddress src = mem.addressMap().decode(inst.src);
        traceSink->span(cpimOpName(inst.op), "cpim", cycles_before,
                        mem.ledger().cycles() - cycles_before, tracePid,
                        static_cast<std::uint32_t>(src.bank), "retries",
                        static_cast<double>(report.retries));
    }
}

BitVector
MemoryController::execute(const CpimInstruction &inst)
{
    return executeGuarded(inst).result;
}

} // namespace coruscant
