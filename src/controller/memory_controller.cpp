#include "controller/memory_controller.hpp"

#include "util/logging.hpp"

namespace coruscant {

std::uint64_t
MemoryController::operandAddress(std::uint64_t src, std::size_t i) const
{
    LineAddress loc = mem.addressMap().decode(src);
    loc.row += i;
    fatalIf(loc.row >= mem.config().device.domainsPerWire,
            "operand rows run past the end of the DBC");
    return mem.addressMap().encode(loc);
}

BitVector
MemoryController::execute(const CpimInstruction &inst)
{
    std::string err = inst.validate(mem.config().device.trd);
    fatalIf(!err.empty(), "cpim: ", err);

    LineAddress src = mem.addressMap().decode(inst.src);
    CoruscantUnit &unit = mem.pimUnit(src.bank, src.subarray);
    ++executed;

    // Gather operand rows (charges DWM access timing per row).
    std::vector<BitVector> ops;
    ops.reserve(inst.operands);
    for (std::size_t i = 0; i < inst.operands; ++i)
        ops.push_back(mem.readLine(operandAddress(inst.src, i)));

    BitVector result;
    switch (inst.op) {
      case CpimOp::And:
        result = unit.bulkBitwise(BulkOp::And, ops);
        break;
      case CpimOp::Nand:
        result = unit.bulkBitwise(BulkOp::Nand, ops);
        break;
      case CpimOp::Or:
        result = unit.bulkBitwise(BulkOp::Or, ops);
        break;
      case CpimOp::Nor:
        result = unit.bulkBitwise(BulkOp::Nor, ops);
        break;
      case CpimOp::Xor:
        result = unit.bulkBitwise(BulkOp::Xor, ops);
        break;
      case CpimOp::Xnor:
        result = unit.bulkBitwise(BulkOp::Xnor, ops);
        break;
      case CpimOp::Not:
        result = unit.bulkBitwise(BulkOp::Not, {ops[0]});
        break;
      case CpimOp::Add:
        result = unit.add(ops, inst.blockSize);
        break;
      case CpimOp::Reduce: {
        auto red = unit.reduce(ops, inst.blockSize);
        result = red.sum; // carry rows remain resident in the DBC
        break;
      }
      case CpimOp::Multiply:
        fatalIf(ops.size() != 2, "cpim mult takes two operand rows");
        result = unit.multiply(ops[0], ops[1], inst.blockSize / 2);
        break;
      case CpimOp::Max:
        result = unit.maxOfRows(ops, inst.blockSize);
        break;
      case CpimOp::Relu:
        result = unit.relu(ops[0], inst.blockSize);
        break;
      case CpimOp::Vote:
        result = unit.nmrVote(ops);
        break;
      case CpimOp::Copy:
        result = ops[0];
        break;
    }

    mem.writeLine(inst.dst, result);
    return result;
}

} // namespace coruscant
