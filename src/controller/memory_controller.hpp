/**
 * @file
 * The CORUSCANT memory controller: executes cpim instructions against
 * the DWM main memory (paper Sec. III-E).
 *
 * For each cpim the controller:
 *   1. validates the instruction against the ISA limits;
 *   2. reads the operand rows from their home locations (operands are
 *      consecutive rows of one DBC at the source address; the memory
 *      charges shift-aware DWM timing for each);
 *   3. drives the subarray's PIM unit, which charges its own staging
 *      and compute costs; and
 *   4. writes the result row to the destination address.
 *
 * Ordinary load/store traffic bypasses the PIM unit entirely (the
 * orange path of paper Fig. 4(a)) via DwmMainMemory::read/writeLine.
 *
 * Guarded execution (GuardPolicy::PerCpim): the controller wraps each
 * cpim in a bounded retry ladder —
 *
 *   1. guard-check (and realign) the source and destination DBCs;
 *   2. read operands, compute, write the result;
 *   3. guard-check both DBCs again; if a misalignment was detected
 *      and corrected mid-instruction, the operands may have been read
 *      corrupt, so re-read, recompute, and rewrite (up to
 *      ReliabilityConfig::maxRetries times);
 *   4. if a check reports an uncorrectable misalignment, escalate:
 *      the instruction is classified detected-uncorrectable (a DUE in
 *      the DUE/SDC taxonomy) — its result cannot be trusted and the
 *      source data may be lost.
 */

#ifndef CORUSCANT_CONTROLLER_MEMORY_CONTROLLER_HPP
#define CORUSCANT_CONTROLLER_MEMORY_CONTROLLER_HPP

#include <cstdint>

#include "arch/dwm_memory.hpp"
#include "controller/cpim_isa.hpp"

namespace coruscant {

/** How a guarded cpim instruction completed. */
enum class ExecOutcome
{
    Clean,         ///< no misalignment observed anywhere
    Corrected,     ///< misalignments detected and corrected (retried)
    Uncorrectable, ///< a DBC could not be realigned; result untrusted
    SparesExhausted, ///< untrusted AND retirement found no spare left:
                     ///< a typed capacity error — the serving layer
                     ///< rejects/steers instead of retrying forever
};

/** Result of one guarded cpim execution. */
struct ExecReport
{
    BitVector result;
    ExecOutcome outcome = ExecOutcome::Clean;
    unsigned retries = 0; ///< full re-executions after post-checks
};

/** Executes cpim instructions end to end. */
class MemoryController
{
  public:
    explicit MemoryController(DwmMainMemory &memory)
        : mem(memory)
    {}

    /**
     * Execute @p inst and return the result row.  Throws FatalError
     * for ISA violations.  Equivalent to executeGuarded(inst).result.
     */
    BitVector execute(const CpimInstruction &inst);

    /**
     * Execute @p inst under the memory's guard policy and report how
     * the retry ladder resolved it.  With GuardPolicy::None or no
     * guard configured this is a plain single-shot execution.
     */
    ExecReport executeGuarded(const CpimInstruction &inst);

    /** Byte address of operand row @p i for an instruction at @p src. */
    std::uint64_t operandAddress(std::uint64_t src, std::size_t i) const;

    /**
     * Attach observability: each cpim counts one Request (plus its
     * ladder Retries) into @p m, and emits one complete span on
     * @p trace covering the instruction's slice of the memory's cycle
     * timeline, on row (@p pid, source bank).  Non-owning.
     */
    void
    attachObs(obs::ComponentMetrics *m, obs::TraceSink *trace = nullptr,
              std::uint32_t pid = 0)
    {
        metrics = m;
        traceSink = trace;
        tracePid = pid;
    }

    /** Total instructions executed. */
    std::uint64_t executedInstructions() const { return executed; }

    /** Instructions that needed at least one ladder retry. */
    std::uint64_t retriedInstructions() const { return retried; }

    /** Instructions that ended detected-uncorrectable. */
    std::uint64_t uncorrectableInstructions() const
    {
        return uncorrectableCount;
    }

    /** Instructions that hit an exhausted spare pool. */
    std::uint64_t spareExhaustedInstructions() const
    {
        return spareExhaustedCount;
    }

  private:
    /** Read operands and compute; no result write, no NMR. */
    BitVector computeResult(const CpimInstruction &inst);

    /**
     * One full execution: compute (replicated + voted when
     * ReliabilityConfig::pimNmr routes PIM ops through NMR under data
     * faults) and write the result row.
     */
    BitVector computeOnce(const CpimInstruction &inst);

    /** Record counters and the instruction span after an execution. */
    void noteExecution(const CpimInstruction &inst,
                       const ExecReport &report,
                       std::uint64_t cycles_before);

    DwmMainMemory &mem;
    obs::ComponentMetrics *metrics = nullptr; ///< non-owning, optional
    obs::TraceSink *traceSink = nullptr;      ///< non-owning, optional
    std::uint32_t tracePid = 0;
    std::uint64_t executed = 0;
    std::uint64_t retried = 0;
    std::uint64_t uncorrectableCount = 0;
    std::uint64_t spareExhaustedCount = 0;
};

} // namespace coruscant

#endif // CORUSCANT_CONTROLLER_MEMORY_CONTROLLER_HPP
