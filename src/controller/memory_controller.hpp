/**
 * @file
 * The CORUSCANT memory controller: executes cpim instructions against
 * the DWM main memory (paper Sec. III-E).
 *
 * For each cpim the controller:
 *   1. validates the instruction against the ISA limits;
 *   2. reads the operand rows from their home locations (operands are
 *      consecutive rows of one DBC at the source address; the memory
 *      charges shift-aware DWM timing for each);
 *   3. drives the subarray's PIM unit, which charges its own staging
 *      and compute costs; and
 *   4. writes the result row to the destination address.
 *
 * Ordinary load/store traffic bypasses the PIM unit entirely (the
 * orange path of paper Fig. 4(a)) via DwmMainMemory::read/writeLine.
 */

#ifndef CORUSCANT_CONTROLLER_MEMORY_CONTROLLER_HPP
#define CORUSCANT_CONTROLLER_MEMORY_CONTROLLER_HPP

#include <cstdint>

#include "arch/dwm_memory.hpp"
#include "controller/cpim_isa.hpp"

namespace coruscant {

/** Executes cpim instructions end to end. */
class MemoryController
{
  public:
    explicit MemoryController(DwmMainMemory &memory)
        : mem(memory)
    {}

    /**
     * Execute @p inst and return the result row.  Throws FatalError
     * for ISA violations.
     */
    BitVector execute(const CpimInstruction &inst);

    /** Byte address of operand row @p i for an instruction at @p src. */
    std::uint64_t operandAddress(std::uint64_t src, std::size_t i) const;

    /** Total instructions executed. */
    std::uint64_t executedInstructions() const { return executed; }

  private:
    DwmMainMemory &mem;
    std::uint64_t executed = 0;
};

} // namespace coruscant

#endif // CORUSCANT_CONTROLLER_MEMORY_CONTROLLER_HPP
