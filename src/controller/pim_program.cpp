#include "controller/pim_program.hpp"

#include <unordered_map>

#include "controller/memory_controller.hpp"
#include "util/logging.hpp"

namespace coruscant {

PimProgram::Value
PimProgram::addNode(Node n)
{
    for (Value v : n.operands)
        fatalIf(v >= nodes.size(), "operand value out of range");
    nodes.push_back(std::move(n));
    return nodes.size() - 1;
}

PimProgram::Value
PimProgram::load(std::uint64_t addr)
{
    Node n;
    n.kind = Node::Kind::Load;
    n.addr = addr;
    return addNode(std::move(n));
}

PimProgram::Value
PimProgram::bulkOp(BulkOp op, const std::vector<Value> &operands)
{
    fatalIf(operands.empty(), "bulk op needs operands");
    Node n;
    n.kind = Node::Kind::Bulk;
    n.op = op;
    n.operands = operands;
    return addNode(std::move(n));
}

PimProgram::Value
PimProgram::add(const std::vector<Value> &operands,
                std::uint16_t block_size)
{
    fatalIf(operands.empty(), "addition needs operands");
    Node n;
    n.kind = Node::Kind::Add;
    n.blockSize = block_size;
    n.operands = operands;
    return addNode(std::move(n));
}

PimProgram::Value
PimProgram::multiply(Value a, Value b, std::uint16_t block_size)
{
    Node n;
    n.kind = Node::Kind::Multiply;
    n.blockSize = block_size;
    n.operands = {a, b};
    return addNode(std::move(n));
}

PimProgram::Value
PimProgram::maxOf(const std::vector<Value> &candidates,
                  std::uint16_t block_size)
{
    fatalIf(candidates.empty(), "max needs candidates");
    Node n;
    n.kind = Node::Kind::Max;
    n.blockSize = block_size;
    n.operands = candidates;
    return addNode(std::move(n));
}

void
PimProgram::store(Value v, std::uint64_t addr)
{
    fatalIf(v >= nodes.size(), "stored value out of range");
    stores.push_back({v, addr});
}

namespace {

/** Bump allocator over consecutive rows of consecutive scratch DBCs. */
class ScratchAllocator
{
  public:
    ScratchAllocator(const MemoryConfig &cfg, std::uint64_t base)
        : cfg(cfg), amap(cfg), loc(amap.decode(base)), row(loc.row)
    {}

    /** Allocate @p n contiguous rows in one DBC; returns addresses. */
    std::vector<std::uint64_t>
    allocate(std::size_t n)
    {
        fatalIf(n > cfg.device.domainsPerWire,
                "operand group larger than a DBC");
        if (row + n > cfg.device.domainsPerWire)
            hopDbc();
        std::vector<std::uint64_t> out;
        for (std::size_t i = 0; i < n; ++i) {
            LineAddress a = loc;
            a.row = row + i;
            out.push_back(amap.encode(a));
        }
        row += n;
        used += n;
        return out;
    }

    std::size_t rowsUsed() const { return used; }

  private:
    void
    hopDbc()
    {
        row = 0;
        if (++loc.dbc >= cfg.dbcsPerTile) {
            loc.dbc = 0;
            fatalIf(++loc.tile >= cfg.tilesPerSubarray,
                    "scratch space exhausted in the subarray");
        }
    }

    MemoryConfig cfg;
    AddressMap amap;
    LineAddress loc;
    std::size_t row;
    std::size_t used = 0;
};

CpimOp
bulkToCpim(BulkOp op)
{
    switch (op) {
      case BulkOp::And: return CpimOp::And;
      case BulkOp::Nand: return CpimOp::Nand;
      case BulkOp::Or: return CpimOp::Or;
      case BulkOp::Nor: return CpimOp::Nor;
      case BulkOp::Xor: return CpimOp::Xor;
      case BulkOp::Xnor: return CpimOp::Xnor;
      case BulkOp::Not: return CpimOp::Not;
      default:
        fatal("no cpim encoding for ", bulkOpName(op));
    }
}

} // namespace

PimProgram::Compiled
PimProgram::compile(const MemoryConfig &cfg,
                    std::uint64_t scratch_base) const
{
    Compiled out;
    ScratchAllocator alloc(cfg, scratch_base);
    std::unordered_map<Value, std::uint64_t> location;

    auto emitCopy = [&](std::uint64_t src, std::uint64_t dst) {
        if (src == dst)
            return;
        CpimInstruction c;
        c.op = CpimOp::Copy;
        c.operands = 1;
        c.src = src;
        c.dst = dst;
        out.instructions.push_back(c);
        ++out.copyCount;
    };

    for (Value v = 0; v < nodes.size(); ++v) {
        const Node &n = nodes[v];
        if (n.kind == Node::Kind::Load) {
            location[v] = n.addr;
            continue;
        }
        // Gather operands into consecutive scratch rows.
        std::size_t m = n.operands.size();
        auto group = alloc.allocate(m);
        for (std::size_t i = 0; i < m; ++i)
            emitCopy(location.at(n.operands[i]), group[i]);
        auto result = alloc.allocate(1);

        CpimInstruction inst;
        switch (n.kind) {
          case Node::Kind::Bulk:
            inst.op = bulkToCpim(n.op);
            break;
          case Node::Kind::Add:
            inst.op = CpimOp::Add;
            break;
          case Node::Kind::Multiply:
            inst.op = CpimOp::Multiply;
            break;
          case Node::Kind::Max:
            inst.op = CpimOp::Max;
            break;
          case Node::Kind::Load:
            panic("unreachable");
        }
        inst.operands = static_cast<std::uint8_t>(m);
        inst.blockSize = n.blockSize;
        inst.src = group[0];
        inst.dst = result[0];
        std::string err = inst.validate(cfg.device.trd);
        fatalIf(!err.empty(), "node ", v, ": ", err);
        out.instructions.push_back(inst);
        location[v] = result[0];
    }

    for (const auto &s : stores)
        emitCopy(location.at(s.value), s.addr);
    out.scratchRowsUsed = alloc.rowsUsed();
    return out;
}

std::size_t
PimProgramRunner::run(const PimProgram::Compiled &program)
{
    for (const auto &inst : program.instructions)
        ctrl.execute(inst);
    return program.instructions.size();
}

} // namespace coruscant
