#include "controller/queue_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace coruscant {

QueueResult
CommandQueueModel::run(const std::vector<QueueItem> &items)
{
    std::fill(servers.begin(), servers.end(), 0);
    QueueResult res;
    std::uint64_t issue_clock = 0;
    for (const auto &item : items) {
        panicIf(item.server >= servers.size(), "server out of range");
        issue_clock += item.issueCmds;
        res.issueCycles += item.issueCmds;
        std::uint64_t start = std::max(issue_clock,
                                       servers[item.server]);
        std::uint64_t end = start + item.busyCycles;
        servers[item.server] = end;
        res.busyCycles += item.busyCycles;
        res.makespanCycles = std::max(res.makespanCycles, end);
    }
    if (res.makespanCycles > 0) {
        res.issueBoundFraction =
            static_cast<double>(
                std::min(res.issueCycles, res.makespanCycles)) /
            static_cast<double>(res.makespanCycles);
    }
    return res;
}

QueueResult
CommandQueueModel::runUniform(std::uint64_t count,
                              std::uint64_t busy_cycles,
                              std::uint64_t issue_cmds)
{
    QueueResult res;
    if (count == 0)
        return res;
    std::uint64_t n_servers = servers.size();
    res.issueCycles = count * issue_cmds;
    res.busyCycles = count * busy_cycles;
    // Round-robin: item i goes to server i % n.  Each server's items
    // are spaced n*issue_cmds apart on the bus; if that spacing covers
    // busy_cycles, the schedule is purely issue-bound, else each
    // server serializes its own items.
    std::uint64_t per_server = (count + n_servers - 1) / n_servers;
    std::uint64_t issue_bound = count * issue_cmds + busy_cycles;
    std::uint64_t server_bound =
        std::min<std::uint64_t>(count, n_servers) * issue_cmds +
        per_server * busy_cycles;
    res.makespanCycles = std::max(issue_bound, server_bound);
    res.issueBoundFraction =
        static_cast<double>(
            std::min(res.issueCycles, res.makespanCycles)) /
        static_cast<double>(res.makespanCycles);
    return res;
}

} // namespace coruscant
