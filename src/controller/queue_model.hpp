/**
 * @file
 * Command-issue / bank-occupancy queueing model.
 *
 * System-level experiments (Polybench, bitmap indices, CNNs) are
 * makespan problems: a single per-channel command bus issues commands
 * in order at one per memory cycle, while banks/subarrays execute
 * their operations concurrently.  The paper's "high throughput mode"
 * dispatches instructions to the ranks consecutively, circularly
 * (Sec. V-C); with thousands of subarrays, the command bus is the
 * usual bottleneck and execution overlaps behind it — the queuing
 * delay the paper reports as ~80% of PIM runtime.
 */

#ifndef CORUSCANT_CONTROLLER_QUEUE_MODEL_HPP
#define CORUSCANT_CONTROLLER_QUEUE_MODEL_HPP

#include <cstdint>
#include <vector>

namespace coruscant {

/** One unit of work bound to a specific server (bank or subarray). */
struct QueueItem
{
    std::size_t server;       ///< executing bank/subarray id
    std::uint64_t busyCycles; ///< how long the server is occupied
    std::uint64_t issueCmds;  ///< command-bus cycles to launch it
};

/** Result of a makespan computation. */
struct QueueResult
{
    std::uint64_t makespanCycles = 0;
    std::uint64_t issueCycles = 0;   ///< total command-bus occupancy
    std::uint64_t busyCycles = 0;    ///< summed server occupancy
    double issueBoundFraction = 0.0; ///< share of makespan spent
                                     ///< issue-limited (queuing delay)
};

/**
 * Greedy in-order dispatch: items are issued in sequence over the
 * command bus; each starts on its server once both the bus has issued
 * it and the server is free.
 */
class CommandQueueModel
{
  public:
    explicit CommandQueueModel(std::size_t num_servers)
        : servers(num_servers, 0)
    {}

    /** Dispatch @p items in order; returns the schedule statistics. */
    QueueResult run(const std::vector<QueueItem> &items);

    /**
     * Closed-form fast path for @p count identical items round-robined
     * over all servers (the common bulk-dispatch case; avoids
     * materializing millions of QueueItems).
     */
    QueueResult runUniform(std::uint64_t count, std::uint64_t busy_cycles,
                           std::uint64_t issue_cmds);

  private:
    std::vector<std::uint64_t> servers; ///< next-free time per server
};

} // namespace coruscant

#endif // CORUSCANT_CONTROLLER_QUEUE_MODEL_HPP
