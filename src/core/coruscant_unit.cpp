/**
 * @file
 * CoruscantUnit construction, charged primitives, and bulk-bitwise ops.
 */

#include "core/coruscant_unit.hpp"

#include "util/logging.hpp"

namespace coruscant {

CoruscantUnit::CoruscantUnit(const DeviceParams &params,
                             double fault_probability, std::uint64_t seed)
    : dev(params), dbc(params), faults(fault_probability, seed)
{
    dev.validate();
}

void
CoruscantUnit::loadRow(std::size_t row, const BitVector &value)
{
    dbc.pokeRow(row, value);
}

BitVector
CoruscantUnit::peekRow(std::size_t row) const
{
    return dbc.peekRow(row);
}

std::size_t
CoruscantUnit::resolveActive(std::size_t active_wires) const
{
    if (active_wires == 0)
        return dev.wiresPerDbc;
    fatalIf(active_wires > dev.wiresPerDbc, "active wires ", active_wires,
            " exceed DBC width ", dev.wiresPerDbc);
    return active_wires;
}

// ---------------------------------------------------------------------
// Charged device primitives
// ---------------------------------------------------------------------

std::size_t
CoruscantUnit::chargedAlignWindow(std::size_t start_row,
                                  std::size_t active_wires)
{
    std::size_t shifts = dbc.alignWindowStart(start_row);
    if (shifts > 0)
        chargeShifts(shifts, active_wires);
    return shifts;
}

void
CoruscantUnit::chargeTrAll(std::size_t active_wires)
{
    double pj = static_cast<double>(active_wires)
                * (dev.trEnergyPj(dev.trd) + dev.pimLogicEnergyPj);
    costs.charge("tr", dev.trCycles, pj);
    noteCost(obs::Counter::TrPulses, 1, pj);
}

void
CoruscantUnit::chargeTrLanes(std::size_t lanes)
{
    double pj = static_cast<double>(lanes)
                * (dev.trEnergyPj(dev.trd) + dev.pimLogicEnergyPj);
    costs.charge("tr", dev.trCycles, pj);
    noteCost(obs::Counter::TrPulses, 1, pj);
}

void
CoruscantUnit::chargeRowWrite(std::size_t active_wires)
{
    double pj = static_cast<double>(active_wires) * dev.writeEnergyPj;
    costs.charge("write", dev.writeCycles, pj);
    noteCost(obs::Counter::Writes, 1, pj);
}

void
CoruscantUnit::chargeRowRead(std::size_t active_wires)
{
    double pj = static_cast<double>(active_wires) * dev.readEnergyPj;
    costs.charge("read", dev.readCycles, pj);
    noteCost(obs::Counter::Reads, 1, pj);
}

void
CoruscantUnit::chargeBitWrites(std::size_t bits)
{
    double pj = static_cast<double>(bits) * dev.writeEnergyPj;
    costs.charge("write", dev.writeCycles, pj);
    noteCost(obs::Counter::Writes, 1, pj);
}

void
CoruscantUnit::chargeShifts(std::size_t steps, std::size_t active_wires)
{
    if (steps == 0)
        return;
    double pj = static_cast<double>(steps)
                * static_cast<double>(active_wires) * dev.shiftEnergyPj;
    costs.charge("shift", steps * dev.shiftCycles, pj);
    noteCost(obs::Counter::Shifts, steps, pj);
}

void
CoruscantUnit::chargeTwRow(std::size_t active_wires)
{
    double pj = static_cast<double>(active_wires) * dev.twEnergyPj;
    costs.charge("tw", dev.twCycles, pj);
    noteCost(obs::Counter::TwPulses, 1, pj);
}

// ---------------------------------------------------------------------
// Window staging
// ---------------------------------------------------------------------

std::size_t
CoruscantUnit::stageWindow(const std::vector<BitVector> &interior_rows,
                           bool pad_ones, std::size_t /*active_wires*/,
                           std::size_t interior_offset)
{
    // Functional placement of operand rows into the TR window.  The
    // cycle/energy cost of staging is charged by the calling operation
    // (it depends on the choreography); padding rows are the preset
    // constants of paper Fig. 7 and cost nothing to "write".
    std::size_t ws = dbc.rowAtPort(Port::Left);
    panicIf(ws + dev.trd > dev.domainsPerWire,
            "TR window extends past the data rows");
    BitVector pad(dev.wiresPerDbc, pad_ones);
    for (std::size_t r = 0; r < dev.trd; ++r)
        dbc.pokeRow(ws + r, pad);
    for (std::size_t i = 0; i < interior_rows.size(); ++i) {
        fatalIf(interior_rows[i].size() != dev.wiresPerDbc,
                "operand row width mismatch");
        dbc.pokeRow(ws + interior_offset + i, interior_rows[i]);
    }
    return ws;
}

std::vector<std::uint16_t>
CoruscantUnit::segmentedPopcount()
{
    OpSpan span(*this, "segmented_popcount");
    std::size_t act = dev.wiresPerDbc;
    auto window = dbc.transverseReadAll(&faults);
    chargeTrAll(act);
    auto left = dbc.transverseReadOutsideAll(Port::Left);
    auto right = dbc.transverseReadOutsideAll(Port::Right);
    // Both outer segments share one TR cycle (disjoint current paths;
    // paper Fig. 3's simultaneous red arrows).  Energy scales with the
    // longer segment.
    std::size_t longest = std::max(dev.leftOverhead()
                                       + dev.leftPortRow(),
                                   dev.totalDomains()
                                       - dev.leftOverhead()
                                       - dev.rightPortRow() - 1);
    double outer_pj = static_cast<double>(act)
                      * (dev.trEnergyPj(longest) + dev.pimLogicEnergyPj);
    costs.charge("tr", dev.trCycles, outer_pj);
    noteCost(obs::Counter::TrPulses, 1, outer_pj);
    std::vector<std::uint16_t> totals(act, 0);
    for (std::size_t w = 0; w < act; ++w) {
        totals[w] = static_cast<std::uint16_t>(
            left[w] + window[w] + right[w]);
    }
    return totals;
}

// ---------------------------------------------------------------------
// Bulk-bitwise operations
// ---------------------------------------------------------------------

BitVector
CoruscantUnit::bulkBitwise(BulkOp op, const std::vector<BitVector> &operands,
                           std::size_t active_wires, bool write_back,
                           bool use_tw)
{
    OpSpan span(*this, "bulk_bitwise");
    std::size_t act = resolveActive(active_wires);
    std::size_t m = operands.size();
    fatalIf(m == 0, "bulk op needs at least one operand");
    fatalIf(m > dev.trd, "bulk op limited to TRD = ", dev.trd,
            " operands, got ", m);
    fatalIf(op == BulkOp::Not && m != 1, "NOT takes exactly one operand");
    fatalIf(op == BulkOp::Maj && m != dev.trd,
            "MAJ is the full-window majority; use nmrVote for voting");

    // Padding identity: '1' rows for AND/NAND, '0' rows otherwise
    // (paper Fig. 7(a)/(b)).
    bool pad_ones = (op == BulkOp::And || op == BulkOp::Nand);
    stageWindow(operands, pad_ones, act, 0);

    // Staging cost: each operand is written at an access port and
    // shifted into place; padding rows are preset.  With transverse
    // writes the segment shift is fused with the write, halving the
    // staging cycles (paper Sec. IV-B).
    for (std::size_t i = 0; i < m; ++i) {
        if (use_tw) {
            chargeTwRow(act);
        } else {
            chargeRowWrite(act);
            chargeShifts(1, act);
        }
    }

    // One transverse read evaluates every wire; the PIM block (or the
    // orange direct path, for OR) selects the output.
    auto counts = dbc.transverseReadAll(&faults);
    chargeTrAll(act);

    BitVector result(dev.wiresPerDbc);
    for (std::size_t w = 0; w < dev.wiresPerDbc; ++w) {
        // The effective window for AND is the operand count plus the
        // '1' padding, i.e. all TRD domains must read '1'.
        PimOutputs out = evalPimLogic(counts[w], dev.trd);
        result.set(w, selectBulkOp(op, out));
    }

    if (write_back) {
        dbc.writeRowAtPort(Port::Left, result);
        chargeRowWrite(act);
    }
    return result;
}

} // namespace coruscant
