/**
 * @file
 * CoruscantUnit: one PIM-enabled domain-block cluster.
 *
 * This is the paper's core contribution (Section III): a DBC whose two
 * access ports are spaced at the transverse-read distance, a
 * seven-level sense amplifier per nanowire, and the PIM block of
 * Fig. 4(b).  The unit executes:
 *
 *   - multi-operand bulk-bitwise logic (Sec. III-B): one TR evaluates
 *     up to TRD operand rows at once;
 *   - multi-operand addition (Sec. III-C): a sequential carry chain
 *     across nanowires, S/C/C' written through the inter-wire
 *     connections, all blocksize-lanes advancing in parallel;
 *   - 7->3 carry-save reduction and three multiplication strategies
 *     (Sec. III-D): constant (CSD/Booth), arbitrary (partial-product
 *     groups), and optimized (CSA reduction, O(n));
 *   - the max function with transverse-write segmented shifting
 *     (Sec. IV-B) and ReLU (Sec. IV-C);
 *   - N-modular-redundancy majority voting (Sec. III-F).
 *
 * Every operation manipulates real bits in the underlying
 * DomainBlockCluster (so results are checkable against golden
 * arithmetic) and charges cycles/energy for each device primitive to a
 * CostLedger, using the per-primitive constants in DeviceParams.
 *
 * Data layout: a DBC row is an X-bit bit-slice across the nanowires.
 * Arithmetic interprets rows as packed lanes of `blockSize` bits; an
 * operand word's bit k lives in wire (lane*blockSize + k), exactly as
 * in paper Fig. 6 where bit_0 of all operands is evaluated by a TR of
 * dwm_0.
 */

#ifndef CORUSCANT_CORE_CORUSCANT_UNIT_HPP
#define CORUSCANT_CORE_CORUSCANT_UNIT_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "core/pim_logic.hpp"
#include "dwm/dbc.hpp"
#include "dwm/device_params.hpp"
#include "dwm/fault_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "util/bit_vector.hpp"
#include "util/stats.hpp"

namespace coruscant {

/** Multiplication strategies of paper Section III-D. */
enum class MulStrategy
{
    Arbitrary,    ///< partial products summed in adder-arity groups
    OptimizedCsa, ///< 7->3 reductions, then one final addition
};

/** Result of a 7->3 (or 3->2) operand reduction. */
struct CsaRows
{
    BitVector sum;        ///< weight-1 row (S)
    BitVector carry;      ///< weight-2 row, already shifted one wire
    BitVector superCarry; ///< weight-4 row, already shifted two wires
    bool hasSuperCarry = true; ///< false for TRD = 3 (3->2 reduction)
};

/** A PIM-enabled DBC executing CORUSCANT operations. */
class CoruscantUnit
{
  public:
    /**
     * @param params device configuration (TRD, geometry, energies)
     * @param fault_probability per-TR +/-1 level fault rate (0 = off)
     * @param seed fault-injection RNG seed
     */
    explicit CoruscantUnit(const DeviceParams &params,
                           double fault_probability = 0.0,
                           std::uint64_t seed = 1);

    const DeviceParams &params() const { return dev; }

    /** Bits per row. */
    std::size_t width() const { return dev.wiresPerDbc; }

    /** Data rows. */
    std::size_t rows() const { return dev.domainsPerWire; }

    /** Cost accounting for all operations since the last reset. */
    const CostLedger &ledger() const { return costs; }
    CostLedger &ledger() { return costs; }
    void resetCosts() { costs.reset(); }

    /** Faults injected into TRs so far. */
    std::uint64_t injectedFaults() const { return faults.injectedFaults(); }

    /**
     * Attach a shifting-fault injector to the unit's internal DBC:
     * staging/alignment shifts inside PIM operations may then silently
     * over- or under-shift (non-owning; nullptr detaches).
     */
    void
    attachShiftFaults(ShiftFaultModel *model)
    {
        dbc.attachShiftFaults(model);
    }

    /**
     * Attach an observability counter set: the charged primitives
     * (shift pulses, TRs, TWs, port reads/writes) and their energy
     * are mirrored into it.  Counts reflect the *modeled* cost — one
     * pulse per charge — not the functional simulation's internal
     * accesses, so the unit's internal DBC is deliberately left
     * uninstrumented (attaching both would double-count).
     * Non-owning; nullptr detaches.
     */
    void attachMetrics(obs::ComponentMetrics *m) { metrics = m; }

    /**
     * Attach a trace sink: every public operation emits one complete
     * span on row (@p pid, @p tid) covering its slice of the modeled
     * cycle timeline (the ledger's cycle counter is the clock).
     * Non-owning; nullptr detaches.
     */
    void
    attachTrace(obs::TraceSink *sink, std::uint32_t pid = 0,
                std::uint32_t tid = 0)
    {
        trace = sink;
        tracePid = pid;
        traceTid = tid;
    }

    // ------------------------------------------------------------------
    // Backdoor data staging (tests and data load; charges nothing)
    // ------------------------------------------------------------------
    void loadRow(std::size_t row, const BitVector &value);
    BitVector peekRow(std::size_t row) const;

    // ------------------------------------------------------------------
    // Bulk-bitwise operations (Sec. III-B)
    // ------------------------------------------------------------------

    /**
     * Multi-operand bulk-bitwise operation over up to TRD operand rows.
     *
     * Operands are staged into the TR window (unused slots padded with
     * the operation's identity value as in paper Fig. 7), one TR
     * evaluates all wires, and the PIM block selects the result.
     *
     * @param op the logic operation
     * @param operands 1..TRD rows of width() bits
     * @param active_wires wires carrying data (energy attribution);
     *        defaults to the full row
     * @param write_back also write the result row back at the left port
     * @param use_tw stage operands with transverse writes, fusing each
     *        operand write with its alignment shift (paper Sec. IV-B:
     *        "TW can also reduce the cycles required for padding
     *        operations where the number of operands < TRD")
     * @return the result row
     */
    BitVector bulkBitwise(BulkOp op, const std::vector<BitVector> &operands,
                          std::size_t active_wires = 0,
                          bool write_back = false, bool use_tw = false);

    /**
     * Per-wire ones count over the whole DBC using segmented
     * transverse reads (paper Fig. 3): one TR covers the window, a
     * second TR covers both outer segments in parallel (disjoint
     * current paths).  Two TR cycles regardless of Y.
     */
    std::vector<std::uint16_t> segmentedPopcount();

    // ------------------------------------------------------------------
    // Multi-operand addition (Sec. III-C)
    // ------------------------------------------------------------------

    /**
     * Add up to maxAddOperands() operand rows, treating each row as
     * packed `block_size`-bit lanes.  Lane sums are modulo
     * 2^block_size (carries are masked at lane boundaries, as the
     * memory controller masks bitlines per the cpim blocksize).
     *
     * Cost model: staging writes one interior slot per cycle pair
     * (write + shift), then each bit position costs one TR plus one
     * parallel S/C/C' write — the paper's 10 + 16 = 26 cycles for the
     * 8-bit five-operand case.
     *
     * @return the result row (sums in each lane)
     */
    BitVector add(const std::vector<BitVector> &operands,
                  std::size_t block_size, std::size_t active_wires = 0);

    // ------------------------------------------------------------------
    // Carry-save reduction and multiplication (Sec. III-D)
    // ------------------------------------------------------------------

    /**
     * Reduce up to TRD operand rows to 3 (TRD >= 5) or 2 (TRD = 3)
     * rows of equal total sum, in O(1) time (paper: 4 cycles).
     * Carries crossing a lane boundary are masked.
     */
    CsaRows reduce(const std::vector<BitVector> &rows,
                   std::size_t block_size, std::size_t active_wires = 0);

    /**
     * Sum an arbitrary number of operand rows (large-cardinality
     * addition, paper Sec. III-D.3): rows are collapsed with 7->3
     * (or 3->2) carry-save reductions until at most the adder arity
     * remains, then one multi-operand addition finishes — O(n) in the
     * row count, vs. the O(n log n) chains of grouped additions.
     */
    BitVector reduceAndSum(std::vector<BitVector> rows,
                           std::size_t block_size,
                           std::size_t active_wires = 0);

    /**
     * Multiply packed lanes: each lane holds an `operand_bits`-bit
     * value of A (low bits) in a lane of width 2*operand_bits; the
     * product fills the lane.
     *
     * @param a_row multiplicand lanes
     * @param b_row multiplier lanes (same packing)
     * @param operand_bits n; lanes are 2n wide
     * @param strategy partial-product summation strategy
     */
    BitVector multiply(const BitVector &a_row, const BitVector &b_row,
                       std::size_t operand_bits,
                       MulStrategy strategy = MulStrategy::OptimizedCsa,
                       std::size_t active_wires = 0);

    /**
     * Multiply packed lanes by a compile-time constant using CSD
     * (Booth) recoding (paper Sec. III-D.1).  Negative digits are
     * realized as one's complement plus a correction row.
     */
    BitVector multiplyByConstant(const BitVector &a_row,
                                 std::uint64_t constant,
                                 std::size_t operand_bits,
                                 std::size_t active_wires = 0);

    // ------------------------------------------------------------------
    // Max / ReLU (Sec. IV-B, IV-C)
    // ------------------------------------------------------------------

    /**
     * Lane-wise maximum of up to TRD candidate rows, MSB-to-LSB with
     * predicated elimination.
     *
     * @param candidates 1..TRD rows of packed `word_bits` lanes
     * @param use_tw rotate candidates with transverse writes
     *        (paper's segmented shifting) instead of full-DBC shifts
     */
    BitVector maxOfRows(const std::vector<BitVector> &candidates,
                        std::size_t word_bits,
                        std::size_t active_wires = 0, bool use_tw = true);

    /**
     * Lane-wise ReLU on two's-complement lanes: lanes with the sign
     * bit set are zeroed by a predicated row refresh.
     */
    BitVector relu(const BitVector &row, std::size_t block_size,
                   std::size_t active_wires = 0);

    // ------------------------------------------------------------------
    // N-modular redundancy (Sec. III-F)
    // ------------------------------------------------------------------

    /**
     * Majority vote over N = 3, 5, or 7 replica rows using the C'
     * (>= 4 of 7) circuit with the padding configuration of paper
     * Fig. 7 (TRD = 7) or the thermometer threshold for smaller TRD.
     */
    BitVector nmrVote(const std::vector<BitVector> &replicas,
                      std::size_t active_wires = 0);

    /**
     * Multi-operand addition with per-step voting (paper Sec. III-F):
     * at every bit position the transverse read is performed N times
     * and each of S / C / C' is majority-voted before being written,
     * so single-TR faults cannot propagate down the carry chain.
     * Costs N TRs plus one voting cycle per bit position instead of
     * one TR — the reliability end of the paper's trade-off (vs.
     * repeating the whole addition and voting once at the end).
     */
    BitVector addStepVoted(const std::vector<BitVector> &operands,
                           std::size_t block_size, std::size_t n,
                           std::size_t active_wires = 0);

    /**
     * Execute @p op N times and vote.  Models the paper's
     * reliability/performance trade-off: the full operation is
     * repeated and the vote appended.
     */
    template <typename Op>
    BitVector
    nmrExecute(std::size_t n, Op op)
    {
        std::vector<BitVector> replicas;
        replicas.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            replicas.push_back(op());
        return nmrVote(replicas);
    }

  private:
    friend class CoruscantUnitTestPeer;

    /**
     * RAII span over a public operation: captures the ledger's cycle
     * counter on entry and emits a complete trace event on exit.
     * Nested operations (multiply -> reduce -> add) produce properly
     * nested spans because they share the same modeled clock.
     */
    class OpSpan
    {
      public:
        OpSpan(CoruscantUnit &u, const char *name)
            : unit(u), opName(name),
              active(u.trace != nullptr && u.trace->on()),
              start(active ? u.costs.cycles() : 0)
        {
        }

        ~OpSpan()
        {
            if (active)
                unit.trace->span(opName, "cpim", start,
                                 unit.costs.cycles() - start,
                                 unit.tracePid, unit.traceTid);
        }

        OpSpan(const OpSpan &) = delete;
        OpSpan &operator=(const OpSpan &) = delete;

      private:
        CoruscantUnit &unit;
        const char *opName;
        bool active;
        std::uint64_t start;
    };

    /** Mirror a charged primitive into the attached counter set. */
    void
    noteCost(obs::Counter c, std::uint64_t n, double energy_pj)
    {
        if (metrics) {
            metrics->add(c, n);
            metrics->addEnergy(energy_pj);
        }
    }

    // Charged device primitives (implementation helpers).
    std::size_t chargedAlignWindow(std::size_t start_row,
                                   std::size_t active_wires);
    void chargeTrAll(std::size_t active_wires);
    void chargeTrLanes(std::size_t lanes);
    void chargeRowWrite(std::size_t active_wires);
    void chargeRowRead(std::size_t active_wires);
    void chargeBitWrites(std::size_t bits);
    void chargeShifts(std::size_t steps, std::size_t active_wires);
    void chargeTwRow(std::size_t active_wires);
    void chargeCopy(std::size_t active_wires);

    /** Stage operand rows into the TR window; returns window start. */
    std::size_t stageWindow(const std::vector<BitVector> &interior_rows,
                            bool pad_ones, std::size_t active_wires,
                            std::size_t interior_offset);

    std::size_t resolveActive(std::size_t active_wires) const;

    /** Sum a list of operand rows with grouped additions. */
    BitVector addMany(std::vector<BitVector> rows, std::size_t block_size,
                      std::size_t active_wires);

    DeviceParams dev;
    DomainBlockCluster dbc;
    TrFaultModel faults;
    CostLedger costs;
    obs::ComponentMetrics *metrics = nullptr; ///< non-owning, optional
    obs::TraceSink *trace = nullptr;          ///< non-owning, optional
    std::uint32_t tracePid = 0;
    std::uint32_t traceTid = 0;
};

} // namespace coruscant

#endif // CORUSCANT_CORE_CORUSCANT_UNIT_HPP
