#include "core/op_cost.hpp"

namespace coruscant {

namespace {

/** Key field 0: which operation the remaining fields parameterize. */
enum OpKind : std::uint64_t
{
    kAdd = 1,
    kMultiply,
    kBulkBitwise,
    kReduce,
    kMax,
    kNmrVote,
};

DeviceParams
paramsFor(std::size_t trd, std::size_t wires)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

/** Ledger totals plus the primitive counts the run accumulated. */
OpCost
fromRun(const CoruscantUnit &unit, const obs::ComponentMetrics &m)
{
    return {unit.ledger().cycles(), unit.ledger().energyPj(), m.prims()};
}

} // namespace

CoruscantCostModel::CoruscantCostModel(const CoruscantCostModel &o)
    : trd_(o.trd_)
{
    std::lock_guard<std::mutex> lock(o.mutex_);
    cache_ = o.cache_;
    measurements_ = o.measurements_;
    cacheHits_ = o.cacheHits_;
    registry_ = o.registry_;
}

CoruscantCostModel &
CoruscantCostModel::operator=(const CoruscantCostModel &o)
{
    if (this == &o)
        return *this;
    std::scoped_lock lock(mutex_, o.mutex_);
    trd_ = o.trd_;
    cache_ = o.cache_;
    measurements_ = o.measurements_;
    cacheHits_ = o.cacheHits_;
    registry_ = o.registry_;
    return *this;
}

std::uint64_t
CoruscantCostModel::measurements() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return measurements_;
}

std::uint64_t
CoruscantCostModel::cacheHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cacheHits_;
}

OpCost
CoruscantCostModel::lookup(const Key &key, const char *name,
                           const std::function<OpCost()> &measure) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++cacheHits_;
        return it->second;
    }
    OpCost cost = measure();
    ++measurements_;
    if (registry_) {
        auto &c = registry_->component(std::string("opcost/") + name);
        c.addPrims(cost.prims);
        c.addEnergy(cost.energyPj);
    }
    cache_.emplace(key, cost);
    return cost;
}

OpCost
CoruscantCostModel::add(std::size_t operands, std::size_t bits) const
{
    return lookup({kAdd, operands, bits, 0}, "add", [&] {
        CoruscantUnit unit(paramsFor(trd_, bits));
        obs::ComponentMetrics m;
        unit.attachMetrics(&m);
        std::vector<BitVector> ops(operands, BitVector(bits, true));
        unit.add(ops, bits, bits);
        return fromRun(unit, m);
    });
}

OpCost
CoruscantCostModel::multiply(std::size_t bits, MulStrategy strategy) const
{
    return lookup(
        {kMultiply, bits, static_cast<std::uint64_t>(strategy), 0},
        "multiply", [&] {
            CoruscantUnit unit(paramsFor(trd_, 2 * bits));
            obs::ComponentMetrics m;
            unit.attachMetrics(&m);
            BitVector a =
                BitVector::fromUint64(2 * bits, (1ULL << bits) - 1);
            BitVector b = a;
            unit.multiply(a, b, bits, strategy, 2 * bits);
            return fromRun(unit, m);
        });
}

OpCost
CoruscantCostModel::bulkBitwise(std::size_t operands) const
{
    return lookup({kBulkBitwise, operands, 0, 0}, "bulk_bitwise", [&] {
        CoruscantUnit unit(paramsFor(trd_, 512));
        obs::ComponentMetrics m;
        unit.attachMetrics(&m);
        std::vector<BitVector> ops(operands, BitVector(512, true));
        unit.bulkBitwise(BulkOp::And, ops);
        return fromRun(unit, m);
    });
}

OpCost
CoruscantCostModel::reduce() const
{
    return lookup({kReduce, 0, 0, 0}, "reduce", [&] {
        CoruscantUnit unit(paramsFor(trd_, 512));
        obs::ComponentMetrics m;
        unit.attachMetrics(&m);
        std::vector<BitVector> rows(trd_, BitVector(512, true));
        unit.reduce(rows, 512);
        return fromRun(unit, m);
    });
}

OpCost
CoruscantCostModel::max(std::size_t candidates, std::size_t bits,
                        bool use_tw) const
{
    return lookup(
        {kMax, candidates, bits, use_tw ? 1u : 0u}, "max", [&] {
            CoruscantUnit unit(paramsFor(trd_, bits));
            obs::ComponentMetrics m;
            unit.attachMetrics(&m);
            std::vector<BitVector> cands(candidates,
                                         BitVector(bits, true));
            unit.maxOfRows(cands, bits, bits, use_tw);
            return fromRun(unit, m);
        });
}

OpCost
CoruscantCostModel::nmrVote(std::size_t n) const
{
    return lookup({kNmrVote, n, 0, 0}, "nmr_vote", [&] {
        CoruscantUnit unit(paramsFor(trd_, 512));
        obs::ComponentMetrics m;
        unit.attachMetrics(&m);
        std::vector<BitVector> replicas(n, BitVector(512, true));
        unit.nmrVote(replicas);
        return fromRun(unit, m);
    });
}

} // namespace coruscant
