#include "core/op_cost.hpp"

namespace coruscant {

namespace {

DeviceParams
paramsFor(std::size_t trd, std::size_t wires)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

OpCost
fromLedger(const CostLedger &l)
{
    return {l.cycles(), l.energyPj()};
}

} // namespace

OpCost
CoruscantCostModel::add(std::size_t operands, std::size_t bits) const
{
    CoruscantUnit unit(paramsFor(trd_, bits));
    std::vector<BitVector> ops(operands, BitVector(bits, true));
    unit.add(ops, bits, bits);
    return fromLedger(unit.ledger());
}

OpCost
CoruscantCostModel::multiply(std::size_t bits, MulStrategy strategy) const
{
    CoruscantUnit unit(paramsFor(trd_, 2 * bits));
    BitVector a = BitVector::fromUint64(2 * bits, (1ULL << bits) - 1);
    BitVector b = a;
    unit.multiply(a, b, bits, strategy, 2 * bits);
    return fromLedger(unit.ledger());
}

OpCost
CoruscantCostModel::bulkBitwise(std::size_t operands) const
{
    CoruscantUnit unit(paramsFor(trd_, 512));
    std::vector<BitVector> ops(operands, BitVector(512, true));
    unit.bulkBitwise(BulkOp::And, ops);
    return fromLedger(unit.ledger());
}

OpCost
CoruscantCostModel::reduce() const
{
    CoruscantUnit unit(paramsFor(trd_, 512));
    std::vector<BitVector> rows(trd_, BitVector(512, true));
    unit.reduce(rows, 512);
    return fromLedger(unit.ledger());
}

OpCost
CoruscantCostModel::max(std::size_t candidates, std::size_t bits,
                        bool use_tw) const
{
    CoruscantUnit unit(paramsFor(trd_, bits));
    std::vector<BitVector> cands(candidates, BitVector(bits, true));
    unit.maxOfRows(cands, bits, bits, use_tw);
    return fromLedger(unit.ledger());
}

OpCost
CoruscantCostModel::nmrVote(std::size_t n) const
{
    CoruscantUnit unit(paramsFor(trd_, 512));
    std::vector<BitVector> replicas(n, BitVector(512, true));
    unit.nmrVote(replicas);
    return fromLedger(unit.ledger());
}

} // namespace coruscant
