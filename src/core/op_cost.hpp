/**
 * @file
 * Operation-level cost summaries for CORUSCANT.
 *
 * System-level models (Polybench, bitmap indices, CNNs) need the
 * latency/energy of whole PIM operations as numbers.  Rather than
 * duplicating formulas, this model *measures* them by running the
 * functional simulator on a representative microbenchmark and reading
 * its ledger — a single source of truth with the unit tests that pin
 * the paper's published composites.
 */

#ifndef CORUSCANT_CORE_OP_COST_HPP
#define CORUSCANT_CORE_OP_COST_HPP

#include <cstdint>

#include "core/coruscant_unit.hpp"

namespace coruscant {

/** Latency and energy of one operation instance. */
struct OpCost
{
    std::uint64_t cycles = 0;
    double energyPj = 0.0;
};

/** Measured CORUSCANT operation costs for a given TRD. */
class CoruscantCostModel
{
  public:
    explicit CoruscantCostModel(std::size_t trd)
        : trd_(trd)
    {}

    std::size_t trd() const { return trd_; }

    /** m-operand addition of `bits`-bit words (one lane). */
    OpCost add(std::size_t operands, std::size_t bits) const;

    /** Two-operand multiply of `bits`-bit words (one 2n-wide lane). */
    OpCost multiply(std::size_t bits,
                    MulStrategy strategy = MulStrategy::OptimizedCsa) const;

    /** m-operand bulk-bitwise op over a full 512-bit row. */
    OpCost bulkBitwise(std::size_t operands) const;

    /** One 7->3 (or 3->2) reduction over a full row. */
    OpCost reduce() const;

    /** Max of m `bits`-bit candidates (one lane). */
    OpCost max(std::size_t candidates, std::size_t bits,
               bool use_tw = true) const;

    /** N-modular redundancy vote over a full row. */
    OpCost nmrVote(std::size_t n) const;

    /** Adder arity for this TRD. */
    std::size_t
    maxAddOperands() const
    {
        return DeviceParams::withTrd(trd_).maxAddOperands();
    }

  private:
    std::size_t trd_;
};

} // namespace coruscant

#endif // CORUSCANT_CORE_OP_COST_HPP
