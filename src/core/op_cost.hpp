/**
 * @file
 * Operation-level cost summaries for CORUSCANT.
 *
 * System-level models (Polybench, bitmap indices, CNNs) need the
 * latency/energy of whole PIM operations as numbers.  Rather than
 * duplicating formulas, this model *measures* them by running the
 * functional simulator on a representative microbenchmark and reading
 * its ledger — a single source of truth with the unit tests that pin
 * the paper's published composites.
 *
 * Measurements are memoized: the functional run (a CoruscantUnit plus
 * real BitVector data) happens once per distinct (op, operands, bits,
 * strategy) key — the model itself is per-TRD — and every repeated
 * query from the queue model or event simulator is an O(log n) map
 * lookup.  Each measurement also captures the device-primitive counts
 * behind the composite, so downstream layers can attribute shift/TR/TW
 * activity without re-running the simulation.
 */

#ifndef CORUSCANT_CORE_OP_COST_HPP
#define CORUSCANT_CORE_OP_COST_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

#include "core/coruscant_unit.hpp"
#include "obs/metrics.hpp"

namespace coruscant {

/** Latency, energy, and primitive activity of one operation instance. */
struct OpCost
{
    std::uint64_t cycles = 0;
    double energyPj = 0.0;
    obs::PrimCounts prims; ///< device primitives behind the measurement
};

/** Measured (and memoized) CORUSCANT operation costs for a given TRD. */
class CoruscantCostModel
{
  public:
    explicit CoruscantCostModel(std::size_t trd)
        : trd_(trd)
    {}

    // The memo cache travels with the model; the mutex does not.
    CoruscantCostModel(const CoruscantCostModel &o);
    CoruscantCostModel &operator=(const CoruscantCostModel &o);

    std::size_t trd() const { return trd_; }

    /** m-operand addition of `bits`-bit words (one lane). */
    OpCost add(std::size_t operands, std::size_t bits) const;

    /** Two-operand multiply of `bits`-bit words (one 2n-wide lane). */
    OpCost multiply(std::size_t bits,
                    MulStrategy strategy = MulStrategy::OptimizedCsa) const;

    /** m-operand bulk-bitwise op over a full 512-bit row. */
    OpCost bulkBitwise(std::size_t operands) const;

    /** One 7->3 (or 3->2) reduction over a full row. */
    OpCost reduce() const;

    /** Max of m `bits`-bit candidates (one lane). */
    OpCost max(std::size_t candidates, std::size_t bits,
               bool use_tw = true) const;

    /** N-modular redundancy vote over a full row. */
    OpCost nmrVote(std::size_t n) const;

    /** Adder arity for this TRD. */
    std::size_t
    maxAddOperands() const
    {
        return DeviceParams::withTrd(trd_).maxAddOperands();
    }

    /** Functional-sim runs performed so far (cache misses). */
    std::uint64_t measurements() const;

    /** Queries served from the memo cache. */
    std::uint64_t cacheHits() const;

    /**
     * Attach a registry: each distinct operation records its primitive
     * counts and energy under "opcost/<op>" when first measured.
     * Non-owning; nullptr detaches.
     */
    void attachMetrics(obs::MetricsRegistry *r) { registry_ = r; }

  private:
    /** Memo key: (op kind, up to three operand/flag fields). */
    using Key = std::array<std::uint64_t, 4>;

    OpCost lookup(const Key &key, const char *name,
                  const std::function<OpCost()> &measure) const;

    std::size_t trd_;
    mutable std::mutex mutex_;
    mutable std::map<Key, OpCost> cache_;
    mutable std::uint64_t measurements_ = 0;
    mutable std::uint64_t cacheHits_ = 0;
    obs::MetricsRegistry *registry_ = nullptr; ///< non-owning, optional
};

} // namespace coruscant

#endif // CORUSCANT_CORE_OP_COST_HPP
