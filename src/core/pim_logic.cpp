#include "core/pim_logic.hpp"

#include "util/logging.hpp"

namespace coruscant {

const char *
bulkOpName(BulkOp op)
{
    switch (op) {
      case BulkOp::And: return "AND";
      case BulkOp::Nand: return "NAND";
      case BulkOp::Or: return "OR";
      case BulkOp::Nor: return "NOR";
      case BulkOp::Xor: return "XOR";
      case BulkOp::Xnor: return "XNOR";
      case BulkOp::Not: return "NOT";
      case BulkOp::Maj: return "MAJ";
    }
    return "?";
}

PimOutputs
evalPimLogic(std::size_t count, std::size_t window)
{
    PimOutputs o;
    o.orOut = count >= 1;
    o.andOut = count >= window;
    o.xorOut = (count & 1) != 0;
    o.sum = o.xorOut;
    o.carry = (count >> 1) & 1;
    o.superCarry = (count >> 2) & 1;
    return o;
}

bool
selectBulkOp(BulkOp op, const PimOutputs &out)
{
    switch (op) {
      case BulkOp::And: return out.andOut;
      case BulkOp::Nand: return !out.andOut;
      case BulkOp::Or: return out.orOut;
      case BulkOp::Nor: return !out.orOut;
      case BulkOp::Xor: return out.xorOut;
      case BulkOp::Xnor: return !out.xorOut;
      case BulkOp::Not: return !out.orOut; // single operand, 0-padded
      case BulkOp::Maj: return out.superCarry; // >= 4 of 7
    }
    panic("unknown bulk op");
}

} // namespace coruscant
