/**
 * @file
 * Combinational PIM logic fed by the transverse-read sense amplifier.
 *
 * Paper Fig. 4(b): each nanowire's modified sense amplifier outputs a
 * seven-level thermometer code (SA[j] = 1 iff the TR counted >= j ones,
 * j in 1..7).  The PIM block decodes that code into the bulk-bitwise
 * results and the addition outputs:
 *
 *   OR   = t >= 1              NOR  = !OR
 *   AND  = t >= window         NAND = !AND
 *   XOR  = t odd               XNOR = !XOR
 *   S    = t & 1   (sum; equals XOR)
 *   C    = (t >> 1) & 1  ("above two and not above four, or above six")
 *   C'   = (t >> 2) & 1  ("above four")
 *
 * These are pure functions of the ones count; the hardware realizes
 * them with a small NAND/NAND network whose energy/area is captured in
 * DeviceParams / AreaModel.
 */

#ifndef CORUSCANT_CORE_PIM_LOGIC_HPP
#define CORUSCANT_CORE_PIM_LOGIC_HPP

#include <array>
#include <cstddef>
#include <string>

namespace coruscant {

/** Bulk-bitwise operations CORUSCANT computes in a single TR. */
enum class BulkOp { And, Nand, Or, Nor, Xor, Xnor, Not, Maj };

/** Human-readable op name (for reports and traces). */
const char *bulkOpName(BulkOp op);

/** Seven-level thermometer code produced by the modified SA. */
struct SenseLevels
{
    std::array<bool, 7> geq{}; ///< geq[j-1] == (count >= j)

    /** Build from a raw ones count. */
    static SenseLevels
    fromCount(std::size_t count)
    {
        SenseLevels s;
        for (std::size_t j = 1; j <= 7; ++j)
            s.geq[j - 1] = count >= j;
        return s;
    }

    /** Decode back to the count (thermometer property). */
    std::size_t
    count() const
    {
        std::size_t c = 0;
        for (bool b : geq)
            c += b ? 1 : 0;
        return c;
    }
};

/** Decoded outputs of one PIM block evaluation. */
struct PimOutputs
{
    bool orOut;
    bool andOut;
    bool xorOut;
    bool sum;        ///< S  (== xorOut)
    bool carry;      ///< C  (weight 2)
    bool superCarry; ///< C' (weight 4); doubles as >=4-of-7 majority
};

/**
 * Evaluate the PIM block for a TR ones count.
 *
 * @param count ones counted by the TR
 * @param window number of domains spanned by the TR (for AND)
 */
PimOutputs evalPimLogic(std::size_t count, std::size_t window);

/** Select a single bulk-bitwise result bit from the PIM outputs. */
bool selectBulkOp(BulkOp op, const PimOutputs &out);

} // namespace coruscant

#endif // CORUSCANT_CORE_PIM_LOGIC_HPP
