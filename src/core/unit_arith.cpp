/**
 * @file
 * CoruscantUnit multi-operand addition and 7->3 reduction.
 *
 * Addition (paper Sec. III-C, Fig. 6): operand words lie across
 * nanowires (bit k in wire lane*B + k).  The carry chain walks bit
 * positions; at step k a TR evaluates C'(k-2), the operand bits, and
 * C(k-1); the PIM block emits S into the left-port row of wire k, C
 * into the right-port row of wire k+1, and C' into the left-port row
 * of wire k+2.  All blocksize lanes advance in the same step, so the
 * loop costs 2 cycles per bit position regardless of how many words
 * are packed in the row.
 *
 * Layouts:
 *  - TRD >= 5: operands occupy the TRD-2 interior window rows (zero
 *    padded), C' and S share the left-port row, C the right-port row.
 *    Staging costs (TRD-2) write+shift pairs: the paper's 10-cycle
 *    setup for TRD = 7.
 *  - TRD = 3: two operands at the left-port and interior rows, the
 *    carry rides the right-port row, no super carry (counts <= 3).
 *    Staging is write/shift/write: the paper's 19-cycle 8-bit total.
 */

#include <algorithm>

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"

namespace coruscant {

BitVector
CoruscantUnit::add(const std::vector<BitVector> &operands,
                   std::size_t block_size, std::size_t active_wires)
{
    OpSpan span(*this, "add");
    std::size_t act = resolveActive(active_wires);
    std::size_t m = operands.size();
    fatalIf(m == 0, "addition needs at least one operand");
    fatalIf(m > dev.maxAddOperands(), "TRD = ", dev.trd, " supports ",
            dev.maxAddOperands(), "-operand addition, got ", m);
    fatalIf(block_size == 0, "block size must be positive");
    fatalIf(act % block_size != 0,
            "active wires must be a whole number of lanes");

    const bool compact = dev.trd < 5; // no super carry possible/needed
    const std::size_t interior_off = compact ? 0 : 1;
    std::size_t ws = stageWindow(operands, false, act, interior_off);

    // Staging cost (see file header).
    if (compact) {
        for (std::size_t i = 0; i < m; ++i) {
            chargeRowWrite(act);
            if (i + 1 < m)
                chargeShifts(1, act);
        }
    } else {
        for (std::size_t i = 0; i < dev.trd - 2; ++i) {
            chargeRowWrite(act);
            chargeShifts(1, act);
        }
    }

    const std::size_t s_row = ws; // S always lands in the left-port row
    const std::size_t c_row = ws + dev.trd - 1;
    const bool has_super = !compact;
    const std::size_t lanes = act / block_size;

    for (std::size_t k = 0; k < block_size; ++k) {
        std::size_t bits_written = 0;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            std::size_t w = lane * block_size + k;
            std::size_t t = dbc.transverseReadWire(w, &faults);
            PimOutputs out = evalPimLogic(t, dev.trd);
            dbc.pokeBit(s_row, w, out.sum);
            ++bits_written;
            if (k + 1 < block_size) {
                dbc.pokeBit(c_row, w + 1, out.carry);
                ++bits_written;
            }
            if (has_super && k + 2 < block_size) {
                dbc.pokeBit(s_row, w + 2, out.superCarry);
                ++bits_written;
            }
        }
        chargeTrLanes(lanes);
        chargeBitWrites(bits_written);
    }

    return dbc.peekRow(s_row);
}

CsaRows
CoruscantUnit::reduce(const std::vector<BitVector> &rows,
                      std::size_t block_size, std::size_t active_wires)
{
    OpSpan span(*this, "reduce");
    std::size_t act = resolveActive(active_wires);
    std::size_t m = rows.size();
    const bool has_super = dev.trd >= 5;
    // Without the super-carry output (TRD < 5) the per-wire count must
    // stay below 4 or the weight-4 bit would be lost: 3->2 reduction.
    std::size_t max_rows = has_super ? dev.trd : 3;
    fatalIf(m == 0, "reduction needs at least one row");
    fatalIf(m > max_rows, "TRD = ", dev.trd, " reduces at most ",
            max_rows, " rows, got ", m);
    fatalIf(block_size == 0, "block size must be positive");
    std::size_t ws = stageWindow(rows, false, act, 0);

    auto counts = dbc.transverseReadAll(&faults);
    chargeTrAll(act);

    CsaRows out;
    out.sum = BitVector(dev.wiresPerDbc);
    out.carry = BitVector(dev.wiresPerDbc);
    out.superCarry = BitVector(dev.wiresPerDbc);
    out.hasSuperCarry = has_super;

    for (std::size_t w = 0; w < dev.wiresPerDbc; ++w) {
        PimOutputs o = evalPimLogic(counts[w], dev.trd);
        out.sum.set(w, o.sum);
        // Weight-2 carry lands one wire up, weight-4 two wires up;
        // carries may not cross a lane boundary (the controller masks
        // bitlines at the cpim blocksize).
        if (o.carry && w + 1 < dev.wiresPerDbc &&
            (w + 1) / block_size == w / block_size) {
            out.carry.set(w + 1, true);
        }
        if (has_super && o.superCarry && w + 2 < dev.wiresPerDbc &&
            (w + 2) / block_size == w / block_size) {
            out.superCarry.set(w + 2, true);
        }
    }

    // Write-back phases: S at the left port, C at the right port, C'
    // after a one-domain shift (paper: 4 cycles total per reduction).
    dbc.pokeRow(ws, out.sum);
    chargeRowWrite(act);
    dbc.pokeRow(ws + dev.trd - 1, out.carry);
    chargeRowWrite(act);
    if (has_super) {
        dbc.pokeRow(ws + 1, out.superCarry);
        chargeRowWrite(act);
    }
    return out;
}

BitVector
CoruscantUnit::reduceAndSum(std::vector<BitVector> rows,
                            std::size_t block_size,
                            std::size_t active_wires)
{
    OpSpan span(*this, "reduce_and_sum");
    std::size_t act = resolveActive(active_wires);
    fatalIf(rows.empty(), "reduceAndSum needs at least one row");
    // Below TRD = 5 the reduction has no super carry: 3->2 only.
    const std::size_t max_batch = dev.trd >= 5 ? dev.trd : 3;
    std::size_t round = 0;
    while (rows.size() > dev.maxAddOperands()) {
        std::size_t batch = std::min(max_batch, rows.size());
        // Re-align the window, and gather rows that are neither a
        // freshly laid contiguous run (round 0) nor outputs of the
        // previous reduction.
        chargeShifts(1, act);
        std::size_t outputs_in_window =
            round == 0 ? max_batch : (dev.trd >= 5 ? 3 : 2);
        if (batch > outputs_in_window) {
            for (std::size_t g = outputs_in_window; g < batch; ++g) {
                chargeCopy(act);
                chargeShifts(1, act);
            }
        }
        std::vector<BitVector> group(rows.begin(),
                                     rows.begin() + batch);
        rows.erase(rows.begin(), rows.begin() + batch);
        CsaRows red = reduce(group, block_size, act);
        rows.push_back(red.sum);
        rows.push_back(red.carry);
        if (red.hasSuperCarry)
            rows.push_back(red.superCarry);
        ++round;
    }
    return addMany(std::move(rows), block_size, act);
}

BitVector
CoruscantUnit::addStepVoted(const std::vector<BitVector> &operands,
                            std::size_t block_size, std::size_t n,
                            std::size_t active_wires)
{
    OpSpan span(*this, "add_step_voted");
    std::size_t act = resolveActive(active_wires);
    std::size_t m = operands.size();
    fatalIf(n != 3 && n != 5 && n != 7,
            "per-step voting supports N in {3, 5, 7}");
    fatalIf(m == 0 || m > dev.maxAddOperands(),
            "operand count out of range for TRD = ", dev.trd);
    fatalIf(block_size == 0 || act % block_size != 0,
            "active wires must be a whole number of lanes");

    const bool compact = dev.trd < 5;
    const std::size_t interior_off = compact ? 0 : 1;
    std::size_t ws = stageWindow(operands, false, act, interior_off);
    if (compact) {
        for (std::size_t i = 0; i < m; ++i) {
            chargeRowWrite(act);
            if (i + 1 < m)
                chargeShifts(1, act);
        }
    } else {
        for (std::size_t i = 0; i < dev.trd - 2; ++i) {
            chargeRowWrite(act);
            chargeShifts(1, act);
        }
    }

    const std::size_t s_row = ws;
    const std::size_t c_row = ws + dev.trd - 1;
    const bool has_super = !compact;
    const std::size_t lanes = act / block_size;

    for (std::size_t k = 0; k < block_size; ++k) {
        std::size_t bits_written = 0;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            std::size_t w = lane * block_size + k;
            // N independent TR samples; majority per output bit.
            std::size_t s_votes = 0, c_votes = 0, sc_votes = 0;
            for (std::size_t r = 0; r < n; ++r) {
                std::size_t t = dbc.transverseReadWire(w, &faults);
                PimOutputs o = evalPimLogic(t, dev.trd);
                s_votes += o.sum ? 1 : 0;
                c_votes += o.carry ? 1 : 0;
                sc_votes += o.superCarry ? 1 : 0;
            }
            std::size_t maj = (n + 1) / 2;
            dbc.pokeBit(s_row, w, s_votes >= maj);
            ++bits_written;
            if (k + 1 < block_size) {
                dbc.pokeBit(c_row, w + 1, c_votes >= maj);
                ++bits_written;
            }
            if (has_super && k + 2 < block_size) {
                dbc.pokeBit(s_row, w + 2, sc_votes >= maj);
                ++bits_written;
            }
        }
        for (std::size_t r = 0; r < n; ++r)
            chargeTrLanes(lanes);
        // One voting-logic cycle plus the parallel write.
        double vote_pj =
            static_cast<double>(lanes) * dev.pimLogicEnergyPj;
        costs.charge("vote", 1, vote_pj);
        if (metrics)
            metrics->addEnergy(vote_pj);
        chargeBitWrites(bits_written);
    }
    return dbc.peekRow(s_row);
}

BitVector
CoruscantUnit::addMany(std::vector<BitVector> rows, std::size_t block_size,
                       std::size_t active_wires)
{
    fatalIf(rows.empty(), "addMany needs at least one row");
    std::size_t arity = dev.maxAddOperands();
    // First group takes `arity` rows; later groups reserve one slot
    // for the running partial sum.
    BitVector acc;
    bool have_acc = false;
    std::size_t i = 0;
    while (i < rows.size() || !have_acc) {
        std::vector<BitVector> group;
        if (have_acc)
            group.push_back(acc);
        while (group.size() < arity && i < rows.size())
            group.push_back(rows[i++]);
        acc = add(group, block_size, active_wires);
        have_acc = true;
        if (i >= rows.size())
            break;
    }
    return acc;
}

} // namespace coruscant
