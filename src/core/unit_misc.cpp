/**
 * @file
 * CoruscantUnit max function, ReLU, and N-modular-redundancy voting.
 *
 * Max (paper Sec. IV-B, Fig. 8): candidate words are rows between the
 * access ports.  For each bit position, MSB to LSB, a TR counts how
 * many candidates carry a '1'; if any does, every candidate is rotated
 * through the right port, lanes whose bit is '0' are eliminated by a
 * predicated row-buffer reset, and the (possibly zeroed) word re-enters
 * through the left port with a transverse write, whose segmented shift
 * returns each word to its original slot.  Without TW each rotation
 * needs a full-DBC shift plus a separate write (the paper's 28.5%
 * cycle-saving ablation).
 *
 * NMR voting (Sec. III-F, Fig. 7(c)/(d)): N in {3,5,7} replica rows are
 * placed between the heads with (7-N)/2 preset '1' rows and as many
 * '0' rows; the C' (>= 4-of-7) output is then exactly the majority.
 */

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"

namespace coruscant {

BitVector
CoruscantUnit::maxOfRows(const std::vector<BitVector> &candidates,
                         std::size_t word_bits, std::size_t active_wires,
                         bool use_tw)
{
    OpSpan span(*this, "max_of_rows");
    std::size_t act = resolveActive(active_wires);
    std::size_t m = candidates.size();
    fatalIf(m == 0, "max needs at least one candidate");
    fatalIf(m > dev.trd, "max compares at most TRD = ", dev.trd,
            " candidates, got ", m);
    fatalIf(word_bits == 0, "word size must be positive");
    fatalIf(act % word_bits != 0,
            "active wires must be a whole number of word lanes");
    const std::size_t lanes = act / word_bits;

    stageWindow(candidates, false, act, 0);
    for (std::size_t i = 0; i < m; ++i) {
        chargeRowWrite(act);
        chargeShifts(1, act);
    }

    for (std::size_t bit = word_bits; bit-- > 0;) {
        // TR across the candidates' bits at this position, per lane.
        std::vector<bool> any_one(lanes);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            std::size_t w = lane * word_bits + bit;
            any_one[lane] = dbc.transverseReadWire(w, &faults) > 0;
        }
        chargeTrLanes(lanes);

        // Rotate all TRD window rows through the ports, eliminating
        // lanes that have a '0' where some candidate has a '1'.
        for (std::size_t rot = 0; rot < dev.trd; ++rot) {
            BitVector row = dbc.readRowAtPort(Port::Right);
            chargeRowRead(act);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
                if (any_one[lane] && !row.get(lane * word_bits + bit)) {
                    // Predicated row-buffer reset for this lane.
                    for (std::size_t b = 0; b < word_bits; ++b)
                        row.set(lane * word_bits + b, false);
                }
            }
            dbc.transverseWriteRow(row);
            if (use_tw) {
                chargeTwRow(act);
            } else {
                // Full-wire shift plus an ordinary port write.
                chargeShifts(1, act);
                chargeRowWrite(act);
            }
        }
    }

    // Survivors all equal the maximum (or everything is zero); a final
    // TR reads the max out as the per-wire OR, regardless of which
    // slot holds it.
    auto counts = dbc.transverseReadAll(&faults);
    chargeTrAll(act);
    BitVector result(dev.wiresPerDbc);
    for (std::size_t w = 0; w < act; ++w)
        result.set(w, counts[w] >= 1);
    chargeRowRead(act);
    return result;
}

BitVector
CoruscantUnit::relu(const BitVector &row, std::size_t block_size,
                    std::size_t active_wires)
{
    OpSpan span(*this, "relu");
    std::size_t act = resolveActive(active_wires);
    fatalIf(block_size == 0, "block size must be positive");
    fatalIf(act % block_size != 0,
            "active wires must be a whole number of lanes");
    fatalIf(row.size() != dev.wiresPerDbc, "row width mismatch");
    const std::size_t lanes = act / block_size;

    // Sign test on the MSB wires, then a predicated row refresh
    // (paper Sec. IV-C): 2 cycles.
    BitVector result = row;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (row.get(lane * block_size + block_size - 1)) {
            for (std::size_t b = 0; b < block_size; ++b)
                result.set(lane * block_size + b, false);
        }
    }
    chargeTrLanes(lanes);
    chargeRowWrite(act);
    std::size_t ws = dbc.rowAtPort(Port::Left);
    dbc.pokeRow(ws, result);
    return result;
}

BitVector
CoruscantUnit::nmrVote(const std::vector<BitVector> &replicas,
                       std::size_t active_wires)
{
    OpSpan span(*this, "nmr_vote");
    std::size_t act = resolveActive(active_wires);
    std::size_t n = replicas.size();
    fatalIf(n != 3 && n != 5 && n != 7,
            "N-modular redundancy supports N in {3, 5, 7}, got ", n);
    fatalIf(n > dev.trd, "N = ", n, " exceeds TRD = ", dev.trd);

    std::vector<BitVector> rows = replicas;
    std::size_t threshold;
    if (dev.trd == 7) {
        // Paper Fig. 7: (7-N)/2 preset '1' rows and '0' rows make the
        // C' (>= 4 of 7) output the exact majority.
        std::size_t ones_pad = (7 - n) / 2;
        for (std::size_t i = 0; i < ones_pad; ++i)
            rows.emplace_back(dev.wiresPerDbc, true);
        threshold = 4;
    } else {
        // Smaller windows: zero padding and the thermometer level at
        // the majority threshold.
        threshold = (n + 1) / 2;
    }

    stageWindow(rows, false, act, 0);
    // Replicas are outputs of prior PIM steps already resident in the
    // DBC; cost is one alignment shift, the TR, and the result write.
    chargeShifts(1, act);
    auto counts = dbc.transverseReadAll(&faults);
    chargeTrAll(act);

    BitVector result(dev.wiresPerDbc);
    for (std::size_t w = 0; w < act; ++w)
        result.set(w, counts[w] >= threshold);
    dbc.writeRowAtPort(Port::Left, result);
    chargeRowWrite(act);
    return result;
}

} // namespace coruscant
