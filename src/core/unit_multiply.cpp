/**
 * @file
 * CoruscantUnit multiplication (paper Sec. III-D).
 *
 * Lanes: an n-bit multiplicand occupies the low bits of a 2n-wire lane
 * so the product fits the lane.  Partial products are shifted copies
 * of A generated through the inter-wire forwarding path (one "shifted
 * read/write" per copy, one DW shift to advance the destination row),
 * predicated on the multiplier bits held in the row buffer.
 *
 * Strategies:
 *  - Arbitrary: partial products summed in groups of the adder arity
 *    (paper Sec. III-D.2); O(n^2 / TRD) addition steps.
 *  - OptimizedCsa: 7->3 reductions collapse the partial products to at
 *    most the adder arity, then one final addition (Sec. III-D.3);
 *    O(n) total.
 *
 * Constant multiplication (Sec. III-D.1) recodes the constant in
 * canonical-signed-digit form; negative digits become one's-complement
 * rows plus a single correction row holding the count of negative
 * terms (the "+1"s of the two's complements).
 */

#include <algorithm>

#include "core/coruscant_unit.hpp"
#include "util/csd.hpp"
#include "util/logging.hpp"

namespace coruscant {

void
CoruscantUnit::chargeCopy(std::size_t active_wires)
{
    // Fused shifted read/write through the inter-wire brown path.
    double pj = static_cast<double>(active_wires)
                * (dev.readEnergyPj + dev.writeEnergyPj);
    costs.charge("copy", dev.readCycles, pj);
    if (metrics) {
        metrics->add(obs::Counter::Reads);
        metrics->add(obs::Counter::Writes);
        metrics->addEnergy(pj);
    }
}

namespace {

/** Extract lane @p lane of width @p lane_w from @p row. */
std::uint64_t
laneValue(const BitVector &row, std::size_t lane, std::size_t lane_w)
{
    return row.sliceUint64(lane * lane_w, lane_w);
}

} // namespace

BitVector
CoruscantUnit::multiply(const BitVector &a_row, const BitVector &b_row,
                        std::size_t operand_bits, MulStrategy strategy,
                        std::size_t active_wires)
{
    OpSpan span(*this, "multiply");
    std::size_t act = resolveActive(active_wires);
    fatalIf(operand_bits == 0 || operand_bits > 32,
            "operand bits must be in [1, 32]");
    const std::size_t lane_w = 2 * operand_bits;
    fatalIf(act % lane_w != 0,
            "active wires must be a whole number of 2n-wide lanes");
    fatalIf(a_row.size() != dev.wiresPerDbc ||
                b_row.size() != dev.wiresPerDbc,
            "operand row width mismatch");
    const std::size_t lanes = act / lane_w;

    // ------------------------------------------------------------------
    // Partial-product generation: bring B into the row buffer (1 read),
    // then for each multiplier bit produce a predicated shifted copy of
    // A (1 fused read/write) and advance the destination row (1 shift):
    // 2n + 1 cycles total.
    // ------------------------------------------------------------------
    chargeRowRead(act);
    std::vector<BitVector> pps;
    pps.reserve(operand_bits);
    for (std::size_t i = 0; i < operand_bits; ++i) {
        BitVector pp(dev.wiresPerDbc);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            std::uint64_t a = laneValue(a_row, lane, lane_w);
            std::uint64_t b = laneValue(b_row, lane, lane_w);
            if ((b >> i) & 1ULL)
                pp.insertUint64(lane * lane_w, lane_w, a << i);
        }
        pps.push_back(std::move(pp));
        chargeCopy(act);
        chargeShifts(1, act);
    }

    switch (strategy) {
      case MulStrategy::OptimizedCsa:
        // Carry-save collapse of the partial products, then one
        // final addition (paper Sec. III-D.3).
        return reduceAndSum(std::move(pps), lane_w, act);
      case MulStrategy::Arbitrary:
        return addMany(std::move(pps), lane_w, act);
    }
    panic("unknown multiplication strategy");
}

BitVector
CoruscantUnit::multiplyByConstant(const BitVector &a_row,
                                  std::uint64_t constant,
                                  std::size_t operand_bits,
                                  std::size_t active_wires)
{
    OpSpan span(*this, "multiply_by_constant");
    std::size_t act = resolveActive(active_wires);
    fatalIf(operand_bits == 0 || operand_bits > 32,
            "operand bits must be in [1, 32]");
    const std::size_t lane_w = 2 * operand_bits;
    fatalIf(act % lane_w != 0,
            "active wires must be a whole number of 2n-wide lanes");
    const std::size_t lanes = act / lane_w;
    const std::uint64_t lane_mask =
        lane_w >= 64 ? ~0ULL : ((1ULL << lane_w) - 1);

    if (constant == 0) {
        chargeRowWrite(act);
        return BitVector(dev.wiresPerDbc);
    }

    auto terms = csdRecode(constant);
    std::vector<BitVector> rows;
    std::size_t neg_terms = 0;
    std::size_t max_shift = 0;
    for (const auto &term : terms) {
        if (term.shift >= lane_w)
            continue; // contributes a multiple of 2^lane_w: zero mod lane
        max_shift = std::max<std::size_t>(max_shift, term.shift);
        BitVector row(dev.wiresPerDbc);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            std::uint64_t a = laneValue(a_row, lane, lane_w);
            std::uint64_t v = (a << term.shift) & lane_mask;
            if (term.sign < 0)
                v = ~v & lane_mask; // one's complement; +1 corrected below
            row.insertUint64(lane * lane_w, lane_w, v);
        }
        if (term.sign < 0)
            ++neg_terms;
        rows.push_back(std::move(row));
    }

    // Shifted-copy generation cost (paper Sec. III-D): max_shift fused
    // shifted read/writes plus one DW shift per retained copy.
    for (std::size_t s = 0; s < max_shift; ++s)
        chargeCopy(act);
    chargeShifts(rows.size(), act);

    if (neg_terms > 0) {
        // One correction row adds the "+1" of each two's complement.
        BitVector corr(dev.wiresPerDbc);
        for (std::size_t lane = 0; lane < lanes; ++lane)
            corr.insertUint64(lane * lane_w, lane_w, neg_terms);
        rows.push_back(std::move(corr));
        chargeRowWrite(act);
    }

    if (rows.empty()) { // every CSD digit above the lane width
        chargeRowWrite(act);
        return BitVector(dev.wiresPerDbc);
    }
    if (rows.size() == 1)
        return rows.front();
    return addMany(std::move(rows), lane_w, act);
}

} // namespace coruscant
