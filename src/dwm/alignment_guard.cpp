#include "dwm/alignment_guard.hpp"

#include "util/logging.hpp"

namespace coruscant {

AlignmentGuard::AlignmentGuard(const DeviceParams &params,
                               std::size_t guard_wire)
    : dev(params), wire(guard_wire)
{
    fatalIf(guard_wire >= params.wiresPerDbc,
            "guard wire out of range");
    fatalIf(params.trd < 2,
            "alignment guard needs a multi-domain TR window");
}

bool
AlignmentGuard::patternBit(std::size_t row) const
{
    // Triangle ramp with period 2*TRD: the sliding-window ones count
    // changes by exactly one per position between peaks.
    return (row % (2 * dev.trd)) < dev.trd;
}

void
AlignmentGuard::install(DomainBlockCluster &dbc) const
{
    for (std::size_t r = 0; r < dev.domainsPerWire; ++r)
        dbc.pokeBit(r, wire, patternBit(r));
}

std::size_t
AlignmentGuard::expectedCount(std::size_t window_start) const
{
    std::size_t c = 0;
    for (std::size_t i = 0; i < dev.trd; ++i)
        c += patternBit(window_start + i) ? 1 : 0;
    return c;
}

AlignmentStatus
AlignmentGuard::check(const DomainBlockCluster &dbc) const
{
    std::size_t ws = dbc.windowStartRow();
    std::size_t measured = dbc.transverseReadWire(wire);
    if (measured == expectedCount(ws))
        return AlignmentStatus::Aligned;
    // A one-position fault shows the neighbouring window's count.
    bool plus = measured == expectedCount(ws + 1);
    bool minus = ws > 0 && measured == expectedCount(ws - 1);
    if (plus && !minus)
        return AlignmentStatus::OffByPlusOne;
    if (minus && !plus)
        return AlignmentStatus::OffByMinusOne;
    return AlignmentStatus::Unknown;
}

bool
AlignmentGuard::checkAndCorrect(DomainBlockCluster &dbc) const
{
    switch (check(dbc)) {
      case AlignmentStatus::Aligned:
        return true;
      case AlignmentStatus::OffByPlusOne:
        // Data sits one position too far toward the left extremity:
        // a corrective pulse moves it back right.
        dbc.injectShiftFault(false);
        break;
      case AlignmentStatus::OffByMinusOne:
        dbc.injectShiftFault(true);
        break;
      case AlignmentStatus::Unknown:
        return false;
    }
    return check(dbc) == AlignmentStatus::Aligned;
}

} // namespace coruscant
