#include "dwm/alignment_guard.hpp"

#include "util/logging.hpp"

namespace coruscant {

AlignmentGuard::AlignmentGuard(const DeviceParams &params,
                               std::size_t guard_wire)
    : dev(params), wire(guard_wire)
{
    fatalIf(guard_wire >= params.wiresPerDbc,
            "guard wire out of range");
    fatalIf(params.trd < 2,
            "alignment guard needs a multi-domain TR window");
}

bool
AlignmentGuard::patternBit(std::size_t row) const
{
    // Triangle ramp with period 2*TRD.  Because patternBit(r + trd) is
    // always the complement of patternBit(r), the sliding-window ones
    // count changes by exactly one at EVERY window position — so a
    // single-position misalignment is always detectable, never just
    // between peaks.
    return (row % (2 * dev.trd)) < dev.trd;
}

void
AlignmentGuard::install(DomainBlockCluster &dbc) const
{
    for (std::size_t r = 0; r < dev.domainsPerWire; ++r)
        dbc.pokeBit(r, wire, patternBit(r));
}

std::size_t
AlignmentGuard::expectedCount(std::size_t window_start) const
{
    std::size_t c = 0;
    for (std::size_t i = 0; i < dev.trd; ++i)
        c += patternBit(window_start + i) ? 1 : 0;
    return c;
}

bool
AlignmentGuard::edgeAliasPossible(std::size_t window_start) const
{
    // At the last window position an over-shift pulls a blank overhead
    // domain into the window; the count then aliases the aligned value
    // exactly when the row shifted out carried a 0.  (The mirror case
    // at window_start == 0 cannot occur: an under-shift pushes
    // patternBit(trd - 1) out, and the phase-0 ramp has that bit set.)
    return window_start + dev.trd == dev.domainsPerWire &&
           !patternBit(window_start);
}

std::size_t
AlignmentGuard::expectedOutsideLeft(std::size_t window_start) const
{
    // Overhead domains left of the data are zero by construction (the
    // zero-fill invariant of shifting), so the outer-left segment sees
    // exactly the guard bits of the data rows before the window.
    std::size_t c = 0;
    for (std::size_t r = 0; r < window_start; ++r)
        c += patternBit(r) ? 1 : 0;
    return c;
}

AlignmentStatus
AlignmentGuard::checkCounted(const DomainBlockCluster &dbc,
                             std::size_t &trs, bool &edge) const
{
    edge = false;
    std::size_t ws = dbc.windowStartRow();
    std::size_t measured = dbc.transverseReadWire(wire);
    ++trs;
    if (measured == expectedCount(ws)) {
        if (edgeAliasPossible(ws)) {
            // Disambiguate with the outer-left segmented TR: an
            // over-shift moves one pattern 1 (patternBit(0) = 1 at
            // least) past the left port, so the segment count drops
            // below its expected value.
            std::size_t outside =
                dbc.transverseReadOutsideWire(wire, Port::Left);
            ++trs;
            if (outside < expectedOutsideLeft(ws)) {
                edge = true;
                return AlignmentStatus::OffByPlusOne;
            }
        }
        return AlignmentStatus::Aligned;
    }
    // A one-position fault shows a neighbouring window's count; at the
    // ramp's peaks both neighbours share it and the direction is
    // ambiguous (Unknown) — correct() resolves that by guess-and-verify.
    // At window position 0 the minus neighbour's window reaches one
    // blank overhead domain, so its count is expectedCount(0) minus the
    // patternBit(trd - 1) the window no longer covers.
    std::size_t minus_expected =
        ws > 0 ? expectedCount(ws - 1)
               : expectedCount(0) - (patternBit(dev.trd - 1) ? 1 : 0);
    bool plus = measured == expectedCount(ws + 1);
    bool minus = measured == minus_expected;
    if (plus && !minus)
        return AlignmentStatus::OffByPlusOne;
    if (minus && !plus)
        return AlignmentStatus::OffByMinusOne;
    return AlignmentStatus::Unknown;
}

AlignmentStatus
AlignmentGuard::check(const DomainBlockCluster &dbc) const
{
    std::size_t trs = 0;
    bool edge = false;
    return checkCounted(dbc, trs, edge);
}

GuardCorrection
AlignmentGuard::correct(DomainBlockCluster &dbc) const
{
    GuardCorrection r;
    bool edge = false;
    r.initial = checkCounted(dbc, r.guardTrs, edge);
    if (r.initial == AlignmentStatus::Aligned) {
        r.aligned = true;
        return r;
    }
    // Guess-and-verify pulse ladder, never moving the window: pulse in
    // the indicated (or guessed) direction, re-check, reverse a failed
    // guess.  Single-position faults need at most three pulses (wrong
    // guess, undo, right direction); the bound leaves headroom for a
    // corrective pulse itself faulting under the injector.
    AlignmentStatus status = r.initial;
    // First guess points away from the nearer wire extremity: a wrong
    // guess then lands in overhead slack instead of pushing the
    // outermost data row off the wire.
    bool primary_left = dbc.shiftOffset() < 0;
    bool guessed = false;
    for (int pulse = 0; pulse < 6; ++pulse) {
        bool toward_left;
        if (status == AlignmentStatus::OffByPlusOne) {
            // One position too far toward the left extremity: move back
            // right.
            toward_left = false;
        } else if (status == AlignmentStatus::OffByMinusOne) {
            toward_left = true;
        } else {
            // Direction unknown (ramp peak): guess the primary
            // direction once, then the opposite until the re-check
            // verifies a guess.
            toward_left = guessed ? !primary_left : primary_left;
            guessed = true;
        }
        bool was_edge = edge;
        dbc.injectShiftFault(toward_left);
        ++r.correctiveShifts;
        status = checkCounted(dbc, r.guardTrs, edge);
        if (status == AlignmentStatus::Aligned) {
            r.aligned = true;
            r.corrected = true;
            return r;
        }
        if (was_edge && !toward_left &&
            status == AlignmentStatus::OffByMinusOne) {
            // The outer segmented TR claimed an over-shift, yet one
            // right pulse made the WINDOW count read under-shifted: the
            // cluster was in fact aligned and the outer deficit is a
            // destroyed guard bit (the edge domain an earlier maximum-
            // excursion over-shift pushed off the wire).  Undo the
            // pulse and report the damage; re-checking would only trip
            // the same false alarm until the pattern is rewritten.
            dbc.injectShiftFault(true);
            ++r.correctiveShifts;
            r.aligned = true;
            r.corrected = true;
            r.patternDamaged = true;
            return r;
        }
    }
    return r;
}

bool
AlignmentGuard::checkAndCorrect(DomainBlockCluster &dbc) const
{
    return correct(dbc).aligned;
}

} // namespace coruscant
