/**
 * @file
 * TR-based shift-alignment guard.
 *
 * DWM shifting is imprecise: a current pulse can over- or under-shift
 * ("shifting faults", paper Sec. II-A).  The transverse read was
 * originally proposed exactly for this (paper Sec. II-D, and the
 * DSN'19 / TNANO'20 work it cites): dedicate a position-encoding
 * pattern and compare its TR ones-count against the expected value —
 * a one-position misalignment changes the count by exactly one.
 *
 * This guard dedicates one nanowire of the DBC to a triangle-ramp
 * pattern whose sliding-window ones count changes by exactly one per
 * window position, so a single TR of the guard wire detects any
 * single-position misalignment at every window position.  At the
 * ramp's peaks and troughs both neighbour positions share a count, so
 * the fault *direction* is ambiguous there; correction resolves it by
 * guess-and-verify pulses (the corrective pulse is re-checked, and
 * reversed if the count did not return to the expected value).  The
 * one structural blind spot — at the last window position an
 * over-shift can alias as aligned, because the domain entering the
 * window from the overhead region carries no pattern — is closed with
 * a segmented TR over the guard wire's outer-left segment (paper
 * Fig. 3), which sees the missing edge row.  No check ever moves the
 * window, so guarded accesses keep their alignment.  The mechanism is
 * orthogonal to the PIM operations (the paper assumes such protection
 * reaches >10-year MTTF at <1% overhead).
 */

#ifndef CORUSCANT_DWM_ALIGNMENT_GUARD_HPP
#define CORUSCANT_DWM_ALIGNMENT_GUARD_HPP

#include <cstdint>

#include "dwm/dbc.hpp"

namespace coruscant {

/** Result of an alignment check. */
enum class AlignmentStatus
{
    Aligned,      ///< guard count matches the expected position
    OffByPlusOne, ///< cluster sits one position too far left-shifted
    OffByMinusOne, ///< one position under-shifted
    Unknown,      ///< count deviates but the direction is ambiguous
};

/**
 * Detailed outcome of one checkAndCorrect pass, so the memory
 * controller can charge the guard TRs and the corrective pulses to
 * its cost ledger.
 */
struct GuardCorrection
{
    AlignmentStatus initial = AlignmentStatus::Aligned;
    bool aligned = false;   ///< cluster observed aligned at the end
    bool corrected = false; ///< at least one corrective pulse verified
    /**
     * The ladder proved the cluster aligned but the guard pattern
     * itself damaged (an over-shift at maximum excursion pushes the
     * edge domain off the wire, guard bit included).  The owner should
     * rewrite the guard track or later edge checks will false-alarm.
     */
    bool patternDamaged = false;
    std::size_t guardTrs = 0;          ///< guard-wire transverse reads
    std::size_t correctiveShifts = 0;  ///< untracked corrective pulses
};

/** Guard-pattern management and misalignment detection. */
class AlignmentGuard
{
  public:
    /**
     * @param params device geometry
     * @param guard_wire which nanowire carries the pattern
     */
    explicit AlignmentGuard(const DeviceParams &params,
                            std::size_t guard_wire = 0);

    std::size_t guardWire() const { return wire; }

    /** Write the ramp pattern into the guard wire of @p dbc. */
    void install(DomainBlockCluster &dbc) const;

    /** Pattern bit for data row @p row. */
    bool patternBit(std::size_t row) const;

    /** Expected guard TR count when the window starts at @p row. */
    std::size_t expectedCount(std::size_t window_start) const;

    /**
     * Check the cluster against its own believed window position
     * (dbc.windowStartRow()): one TR of the guard wire, plus one
     * segmented outer TR at the edge-aliasing window position.
     */
    AlignmentStatus check(const DomainBlockCluster &dbc) const;

    /**
     * Check and, if a misalignment is detected, issue corrective
     * pulses until the cluster is verified aligned again (bounded
     * attempts).  At direction-ambiguous positions the first pulse is
     * a guess that is reversed when the follow-up check does not
     * converge.  A misalignment of two or more positions usually
     * cannot be attributed and is reported uncorrectable
     * (aligned = false), though the guess ladder may still recover it.
     */
    GuardCorrection correct(DomainBlockCluster &dbc) const;

    /** Convenience wrapper: @return correct(dbc).aligned. */
    bool checkAndCorrect(DomainBlockCluster &dbc) const;

  private:
    /**
     * Whether, at @p window_start, an over-shifted cluster shows the
     * aligned window count (the structural edge alias the segmented
     * outer TR resolves).
     */
    bool edgeAliasPossible(std::size_t window_start) const;

    /** Guard ones over data rows [0, window_start). */
    std::size_t expectedOutsideLeft(std::size_t window_start) const;

    /**
     * check() with TR accounting; @p edge reports whether the verdict
     * came from the segmented outer TR rather than the window count
     * (the correction ladder treats those differently: a persistent
     * outer deficit on an aligned window is pattern damage).
     */
    AlignmentStatus checkCounted(const DomainBlockCluster &dbc,
                                 std::size_t &trs, bool &edge) const;

    DeviceParams dev;
    std::size_t wire;
};

} // namespace coruscant

#endif // CORUSCANT_DWM_ALIGNMENT_GUARD_HPP
