/**
 * @file
 * TR-based shift-alignment guard.
 *
 * DWM shifting is imprecise: a current pulse can over- or under-shift
 * ("shifting faults", paper Sec. II-A).  The transverse read was
 * originally proposed exactly for this (paper Sec. II-D, and the
 * DSN'19 / TNANO'20 work it cites): dedicate a position-encoding
 * pattern and compare its TR ones-count against the expected value —
 * a one-position misalignment changes the count by exactly one.
 *
 * This guard dedicates one nanowire of the DBC to a triangle-ramp
 * pattern whose sliding-window ones count is strictly monotone between
 * peaks, so a single TR of the guard wire reveals both that the
 * cluster is misaligned and in which direction, letting the controller
 * issue the corrective shift.  The mechanism is orthogonal to the PIM
 * operations (the paper assumes such protection reaches >10-year MTTF
 * at <1% overhead).
 */

#ifndef CORUSCANT_DWM_ALIGNMENT_GUARD_HPP
#define CORUSCANT_DWM_ALIGNMENT_GUARD_HPP

#include <cstdint>

#include "dwm/dbc.hpp"

namespace coruscant {

/** Result of an alignment check. */
enum class AlignmentStatus
{
    Aligned,      ///< guard count matches the expected position
    OffByPlusOne, ///< cluster sits one position too far left-shifted
    OffByMinusOne, ///< one position under-shifted
    Unknown,      ///< count deviates but the direction is ambiguous
};

/** Guard-pattern management and misalignment detection. */
class AlignmentGuard
{
  public:
    /**
     * @param params device geometry
     * @param guard_wire which nanowire carries the pattern
     */
    explicit AlignmentGuard(const DeviceParams &params,
                            std::size_t guard_wire = 0);

    std::size_t guardWire() const { return wire; }

    /** Write the ramp pattern into the guard wire of @p dbc. */
    void install(DomainBlockCluster &dbc) const;

    /** Pattern bit for data row @p row. */
    bool patternBit(std::size_t row) const;

    /** Expected guard TR count when the window starts at @p row. */
    std::size_t expectedCount(std::size_t window_start) const;

    /**
     * Check the cluster against its own believed window position
     * (dbc.windowStartRow()): one TR of the guard wire.
     */
    AlignmentStatus check(const DomainBlockCluster &dbc) const;

    /**
     * Check and, if a one-position fault is detected, issue the
     * corrective shift.  @return true if the cluster ends aligned.
     */
    bool checkAndCorrect(DomainBlockCluster &dbc) const;

  private:
    DeviceParams dev;
    std::size_t wire;
};

} // namespace coruscant

#endif // CORUSCANT_DWM_ALIGNMENT_GUARD_HPP
