#include "dwm/area_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace coruscant {

PimFeatureSet
PimFeatureSet::add2()
{
    return {3, true, false, false};
}

PimFeatureSet
PimFeatureSet::add5()
{
    return {7, true, false, false};
}

PimFeatureSet
PimFeatureSet::mulAdd5()
{
    return {7, true, true, false};
}

PimFeatureSet
PimFeatureSet::mulAdd5Bbo()
{
    return {7, true, true, true};
}

// ---------------------------------------------------------------------
// Per-wire circuit constants (um^2 at F = 32 nm), calibrated so the
// 1-PIM memory overhead reproduces paper Table I exactly:
//   ADD2 3.7%, ADD5 9.2%, MUL+ADD5 9.4%, MUL+ADD5+BBO 10.0%
// with a baseline DBC area of cells (48 domains x 512 wires x 2F^2)
// plus a 20 um^2 periphery share (sense amplifiers, write drivers,
// local decode) per DBC.  Derivation in DESIGN.md Section 3.
// ---------------------------------------------------------------------

namespace {

constexpr double peripheryPerDbcUm2 = 20.0;
constexpr double carryLogicUm2 = 0.02;        // C computation per wire
constexpr double superCarryLogicUm2 = 0.05;   // C' computation per wire
constexpr double multShiftPathUm2 = 0.004395; // inter-wire shift mux
constexpr double bboDecodeUm2 = 0.013184;     // full bulk-bitwise decode

/** Multi-level TR sense circuit per wire, by TRD. */
double
senseUpgradeUm2(std::size_t trd)
{
    if (trd <= 3)
        return 0.03469;
    if (trd <= 5)
        return 0.07423;
    return 0.11377;
}

} // namespace

AreaModel::AreaModel(double feature_size_nm, std::size_t wires_per_dbc,
                     std::size_t domains_per_wire,
                     std::size_t tiles_per_subarray)
    : featureUm(feature_size_nm / 1000.0), wires(wires_per_dbc),
      domains(domains_per_wire), tilesPerSubarray(tiles_per_subarray)
{
    fatalIf(tiles_per_subarray == 0, "need at least one tile");
}

double
AreaModel::cellAreaUm2() const
{
    return 2.0 * featureUm * featureUm; // DWM: 2 F^2 per domain
}

std::size_t
AreaModel::baselineOverheadDomains() const
{
    // Two ports at the optimal quarter positions: every data row is
    // within Y/4 of a port, so Y/2 overhead domains suffice
    // (paper Sec. III-A: "reduces overhead domains from 31 to 16").
    return domains / 2;
}

std::size_t
AreaModel::pimOverheadDomains(std::size_t trd) const
{
    // Ports moved to TR spacing: overhead grows to Y - TRD
    // (25 for Y = 32, TRD = 7, matching the paper).
    return domains - trd;
}

double
AreaModel::baselineDbcAreaUm2() const
{
    double cells = static_cast<double>(
                       wires * (domains + baselineOverheadDomains())) *
                   cellAreaUm2();
    return cells + peripheryPerDbcUm2;
}

double
AreaModel::pimExtraAreaUm2(const PimFeatureSet &f) const
{
    std::size_t extra_domains =
        pimOverheadDomains(f.trd) > baselineOverheadDomains()
            ? pimOverheadDomains(f.trd) - baselineOverheadDomains()
            : 0;
    double area = static_cast<double>(wires * extra_domains)
                  * cellAreaUm2();
    double per_wire = senseUpgradeUm2(f.trd);
    if (f.addition) {
        per_wire += carryLogicUm2;
        if (f.trd >= 5)
            per_wire += superCarryLogicUm2;
    }
    if (f.multiplication)
        per_wire += multShiftPathUm2;
    if (f.bulkBitwise)
        per_wire += bboDecodeUm2;
    return area + per_wire * static_cast<double>(wires);
}

double
AreaModel::memoryOverheadFraction(const PimFeatureSet &f) const
{
    // One PIM tile per subarray of `tilesPerSubarray` tiles; every DBC
    // in the PIM tile carries the extension, so the fraction of DBCs
    // extended is 1 / tilesPerSubarray.
    double frac_pim = 1.0 / static_cast<double>(tilesPerSubarray);
    return frac_pim * pimExtraAreaUm2(f) / baselineDbcAreaUm2();
}

double
AreaModel::peAreaUm2(std::size_t trd, std::size_t operands, bool multiply)
{
    // Published synthesis results (paper Table III), with linear
    // interpolation for TRD = 5 which the paper's table omits.
    // Components: sense circuit grows with TRD; the five-operand
    // configuration adds the super-carry logic; the multiplier
    // configuration adds the inter-wire shift path.
    auto base = [](std::size_t t) {
        // two-operand adder slice
        if (t <= 3)
            return 2.16;
        if (t <= 5)
            return 2.88;
        return 3.60;
    };
    double area = base(trd);
    if (operands > 2 && trd >= 5)
        area += 1.34; // super-carry logic (5-op adder)
    if (multiply)
        area += trd <= 3 ? 1.64 : (trd <= 5 ? 0.885 : 0.13);
    return area;
}

} // namespace coruscant
