/**
 * @file
 * Area model for the CORUSCANT PIM extensions (paper Table I, Table III).
 *
 * Two granularities:
 *
 *  1. Processing-element areas (Table III): the standalone area of one
 *     CORUSCANT arithmetic slice, comparable against DW-NN and SPIM
 *     processing elements.  The paper reports these from FreePDK45
 *     synthesis scaled to F = 32 nm; we carry the published values and
 *     a component decomposition.
 *
 *  2. Main-memory overhead (Table I): the fractional area added to a
 *     1 GB DWM main memory when one tile per subarray is PIM-enabled
 *     ("1-PIM").  Modeled bottom-up from cell area (2F^2), the extra
 *     overhead domains required to move the ports to TR spacing, the
 *     added access port, the multi-level sense circuit, and the PIM
 *     logic; per-wire circuit constants are calibrated against the
 *     paper's published percentages (see area_model.cpp).
 */

#ifndef CORUSCANT_DWM_AREA_MODEL_HPP
#define CORUSCANT_DWM_AREA_MODEL_HPP

#include <cstddef>

namespace coruscant {

/** Which PIM capabilities a design includes (paper Table I columns). */
struct PimFeatureSet
{
    std::size_t trd = 7;     ///< transverse read distance
    bool addition = true;    ///< multi-operand addition (carry chain)
    bool multiplication = true; ///< logical-shift path + reduction
    bool bulkBitwise = true; ///< full bulk-bitwise op decoding

    /** Paper Table I columns. */
    static PimFeatureSet add2();       ///< TRD = 3 two-operand adder
    static PimFeatureSet add5();       ///< TRD = 7 five-operand adder
    static PimFeatureSet mulAdd5();    ///< + multiplication
    static PimFeatureSet mulAdd5Bbo(); ///< + bulk-bitwise ops
};

/** Area accounting for DWM with CORUSCANT extensions. */
class AreaModel
{
  public:
    /**
     * @param feature_size_nm lithographic F (paper scales to 32 nm)
     * @param wires_per_dbc X
     * @param domains_per_wire Y
     * @param tiles_per_subarray tiles sharing one PIM tile
     */
    AreaModel(double feature_size_nm = 32.0,
              std::size_t wires_per_dbc = 512,
              std::size_t domains_per_wire = 32,
              std::size_t tiles_per_subarray = 16);

    /** Cell area in um^2 (DWM: 2 F^2 per domain). */
    double cellAreaUm2() const;

    /** Baseline DBC area (two optimally placed ports), um^2. */
    double baselineDbcAreaUm2() const;

    /** Extra area a PIM-enabled DBC adds over the baseline, um^2. */
    double pimExtraAreaUm2(const PimFeatureSet &f) const;

    /**
     * Fractional overhead of PIM-enabling one tile per subarray
     * (paper Table I row "Area Overhead 1-PIM").
     */
    double memoryOverheadFraction(const PimFeatureSet &f) const;

    /**
     * Standalone processing-element area for Table III.
     * @param trd 3, 5, or 7
     * @param operands 2 or 5 (adder arity class)
     * @param multiply whether the slice is the multiplier configuration
     */
    static double peAreaUm2(std::size_t trd, std::size_t operands,
                            bool multiply);

    /** Overhead domains per wire for ports at TR spacing. */
    std::size_t pimOverheadDomains(std::size_t trd) const;

    /** Overhead domains per wire with two optimally spaced ports. */
    std::size_t baselineOverheadDomains() const;

  private:
    double featureUm;
    std::size_t wires;
    std::size_t domains;
    std::size_t tilesPerSubarray;
};

} // namespace coruscant

#endif // CORUSCANT_DWM_AREA_MODEL_HPP
