/**
 * @file
 * Data-domain fault injection.
 *
 * ShiftFaultModel perturbs *positions*; this model perturbs the
 * *contents* of the domains themselves, covering the three data
 * failure modes of DWM storage:
 *
 *  - transient flips: a read/write/shift disturbs a domain and its
 *    read-back value flips (soft error, per-bit Bernoulli);
 *  - stuck-at domains: a manufacturing-weak domain always senses the
 *    same value regardless of what was written.  Sites are a fixed,
 *    sticky property of the array — derived from a stateless hash of
 *    (seed, dbc, row, wire) so the same seed yields the same defect
 *    map in every run and at every thread count;
 *  - retention decay: a stored domain loses its value over time with
 *    per-cycle rate lambda, so a row untouched for t cycles sees each
 *    bit flip with p = 1 - exp(-lambda * t).
 *
 * Transient and retention sampling use a sequential SplitMix64 stream
 * (same discipline as ShiftFaultModel): one model per channel/memory,
 * seeded from the run seed, with per-bit probabilities realized by
 * geometric gap sampling so a disabled or low-rate model costs O(flips)
 * instead of O(bits).
 *
 * Matching repair mechanisms: SECDED ECC (reliability/ecc) for port
 * reads, NMR voting for in-situ PIM, scrubbing for retention.
 */

#ifndef CORUSCANT_DWM_DATA_FAULT_HPP
#define CORUSCANT_DWM_DATA_FAULT_HPP

#include <cmath>
#include <cstdint>

#include "util/bit_vector.hpp"
#include "util/rng.hpp"

namespace coruscant {

/** Knobs for the data-domain fault model. */
struct DataFaultConfig
{
    /** Per-bit transient flip probability per line access. */
    double transientFlipRate = 0.0;
    /** Fraction of domains manufactured stuck-at (sticky sites). */
    double stuckAtFraction = 0.0;
    /** Per-bit per-cycle retention decay rate lambda. */
    double retentionRatePerCycle = 0.0;
    /** Seed; same seed => same fault sites at any thread count. */
    std::uint64_t seed = 0x00d47afau;

    bool
    enabled() const
    {
        return transientFlipRate > 0.0 || stuckAtFraction > 0.0 ||
               retentionRatePerCycle > 0.0;
    }
};

/**
 * Injects data-domain faults into rows as they move through the
 * memory.  A default-constructed (all-zero-rate) model is inert.
 */
class DataFaultModel
{
  public:
    DataFaultModel() = default;

    explicit DataFaultModel(const DataFaultConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {}

    bool enabled() const { return cfg_.enabled(); }
    const DataFaultConfig &config() const { return cfg_; }

    /**
     * Transient disturbance of one accessed row: flips each bit with
     * transientFlipRate.  Returns the number of flips.
     */
    std::uint64_t
    perturbTransient(BitVector &row)
    {
        std::uint64_t flips =
            flipBernoulli(row, cfg_.transientFlipRate);
        transientFlips_ += flips;
        return flips;
    }

    /**
     * Force the sticky stuck-at sites of (@p dbc_id, @p row_index)
     * onto @p row.  Site membership and stuck polarity come from a
     * stateless hash, so the defect map never depends on access order.
     * Returns the number of bits the defects actually changed.
     */
    std::uint64_t
    applyStuckAt(BitVector &row, std::uint64_t dbc_id,
                 std::uint32_t row_index)
    {
        if (cfg_.stuckAtFraction <= 0.0)
            return 0;
        std::uint64_t changed = 0;
        for (std::size_t wire = 0; wire < row.size(); ++wire) {
            std::uint64_t h = siteHash(dbc_id, row_index, wire);
            // Low 53 bits -> uniform [0,1) site draw; bit 63 is the
            // independent stuck polarity.
            double u = static_cast<double>(h >> 11) * 0x1.0p-53;
            if (u >= cfg_.stuckAtFraction)
                continue;
            bool stuckValue = (h >> 63) != 0;
            if (row.get(wire) != stuckValue) {
                row.set(wire, stuckValue);
                ++changed;
            }
        }
        stuckAtActivations_ += changed;
        return changed;
    }

    /** Whether any site of (@p dbc_id, @p row_index) is stuck-at. */
    bool
    hasStuckSite(std::uint64_t dbc_id, std::uint32_t row_index,
                 std::size_t wires) const
    {
        if (cfg_.stuckAtFraction <= 0.0)
            return false;
        for (std::size_t wire = 0; wire < wires; ++wire) {
            std::uint64_t h = siteHash(dbc_id, row_index, wire);
            double u = static_cast<double>(h >> 11) * 0x1.0p-53;
            if (u < cfg_.stuckAtFraction)
                return true;
        }
        return false;
    }

    /**
     * Retention decay of a stored row untouched for @p elapsed_cycles:
     * each bit flips with p = 1 - exp(-lambda * t).  Returns flips.
     */
    std::uint64_t
    decay(BitVector &row, std::uint64_t elapsed_cycles)
    {
        if (cfg_.retentionRatePerCycle <= 0.0 || elapsed_cycles == 0)
            return 0;
        double p = 1.0 - std::exp(-cfg_.retentionRatePerCycle *
                                  static_cast<double>(elapsed_cycles));
        std::uint64_t flips = flipBernoulli(row, p);
        retentionFlips_ += flips;
        return flips;
    }

    /** Per-bit flip probability after @p elapsed_cycles unrefreshed. */
    double
    retentionFlipProbability(std::uint64_t elapsed_cycles) const
    {
        if (cfg_.retentionRatePerCycle <= 0.0 || elapsed_cycles == 0)
            return 0.0;
        return 1.0 - std::exp(-cfg_.retentionRatePerCycle *
                              static_cast<double>(elapsed_cycles));
    }

    std::uint64_t transientFlips() const { return transientFlips_; }
    std::uint64_t stuckAtActivations() const
    {
        return stuckAtActivations_;
    }
    std::uint64_t retentionFlips() const { return retentionFlips_; }

    /** All data faults injected so far. */
    std::uint64_t
    injectedFaults() const
    {
        return transientFlips_ + stuckAtActivations_ +
               retentionFlips_;
    }

    /**
     * Change the transient rate mid-stream (chaos ramps).  The RNG
     * stream is untouched, so runs stay reproducible for a fixed seed.
     */
    void setTransientRate(double p) { cfg_.transientFlipRate = p; }

  private:
    /**
     * Flip each bit of @p row independently with probability @p p via
     * geometric gap sampling: O(expected flips), not O(bits).
     */
    std::uint64_t
    flipBernoulli(BitVector &row, double p)
    {
        if (p <= 0.0 || row.size() == 0)
            return 0;
        if (p >= 1.0) {
            for (std::size_t i = 0; i < row.size(); ++i)
                row.set(i, !row.get(i));
            return row.size();
        }
        std::uint64_t flips = 0;
        double logq = std::log1p(-p);
        std::size_t idx = 0;
        while (true) {
            double u = rng_.nextDouble();
            // Gap to the next success of a Bernoulli(p) run.
            double gap = std::floor(std::log1p(-u) / logq);
            if (gap >= static_cast<double>(row.size() - idx))
                break;
            idx += static_cast<std::size_t>(gap);
            row.set(idx, !row.get(idx));
            ++flips;
            ++idx;
            if (idx >= row.size())
                break;
        }
        return flips;
    }

    /** Stateless per-site hash (SplitMix64 finalizer over the key). */
    std::uint64_t
    siteHash(std::uint64_t dbc_id, std::uint32_t row_index,
             std::size_t wire) const
    {
        std::uint64_t z = cfg_.seed ^
                          (dbc_id * 0x9e3779b97f4a7c15ULL) ^
                          ((static_cast<std::uint64_t>(row_index)
                            << 32) |
                           static_cast<std::uint64_t>(wire));
        z += 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    DataFaultConfig cfg_;
    Rng rng_;
    std::uint64_t transientFlips_ = 0;
    std::uint64_t stuckAtActivations_ = 0;
    std::uint64_t retentionFlips_ = 0;
};

} // namespace coruscant

#endif // CORUSCANT_DWM_DATA_FAULT_HPP
