#include "dwm/dbc.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace coruscant {

DomainBlockCluster::DomainBlockCluster(const DeviceParams &params)
    : dev(params),
      physRows(params.totalDomains(), BitVector(params.wiresPerDbc))
{
    dev.validate();
}

void
DomainBlockCluster::shiftLeft()
{
    panicIf(!canShiftLeft(), "shift would push data off the left end");
    note(obs::Counter::Shifts);
    ++offset;
    perturbShift(true);
}

void
DomainBlockCluster::shiftRight()
{
    panicIf(!canShiftRight(), "shift would push data off the right end");
    note(obs::Counter::Shifts);
    --offset;
    perturbShift(false);
}

void
DomainBlockCluster::perturbShift(bool toward_left)
{
    ShiftOutcome outcome =
        shiftFaults ? shiftFaults->sample() : ShiftOutcome::Normal;
    if (outcome != ShiftOutcome::Normal)
        note(obs::Counter::FaultsInjected);
    // The bookkeeping (offset) always advances by one; what the pulse
    // physically did depends on the outcome.
    if (outcome != ShiftOutcome::UnderShift)
        injectShiftFault(toward_left);
    if (outcome == ShiftOutcome::OverShift)
        injectShiftFault(toward_left);
}

bool
DomainBlockCluster::canShiftLeft() const
{
    return offset < static_cast<int>(dev.leftOverhead());
}

bool
DomainBlockCluster::canShiftRight() const
{
    return offset > -static_cast<int>(dev.rightOverhead());
}

std::size_t
DomainBlockCluster::portPhysical(Port port) const
{
    std::size_t base = dev.leftOverhead();
    return port == Port::Left ? base + dev.leftPortRow()
                              : base + dev.rightPortRow();
}

std::size_t
DomainBlockCluster::physicalIndex(std::size_t row) const
{
    panicIf(row >= dev.domainsPerWire, "row out of range");
    return dev.leftOverhead() + row - offset;
}

std::size_t
DomainBlockCluster::rowAtPort(Port port) const
{
    std::size_t base_row =
        port == Port::Left ? dev.leftPortRow() : dev.rightPortRow();
    return base_row + offset;
}

bool
DomainBlockCluster::canAlign(std::size_t row, Port port) const
{
    if (row >= dev.domainsPerWire)
        return false;
    std::size_t base_row =
        port == Port::Left ? dev.leftPortRow() : dev.rightPortRow();
    int needed = static_cast<int>(row) - static_cast<int>(base_row);
    return needed >= -static_cast<int>(dev.rightOverhead()) &&
           needed <= static_cast<int>(dev.leftOverhead());
}

std::size_t
DomainBlockCluster::alignRowToPort(std::size_t row, Port port)
{
    fatalIf(!canAlign(row, port), "row ", row,
            " cannot be aligned with the requested port");
    std::size_t base_row =
        port == Port::Left ? dev.leftPortRow() : dev.rightPortRow();
    int needed = static_cast<int>(row) - static_cast<int>(base_row);
    std::size_t shifts = 0;
    while (offset < needed) {
        shiftLeft();
        ++shifts;
    }
    while (offset > needed) {
        shiftRight();
        ++shifts;
    }
    return shifts;
}

std::size_t
DomainBlockCluster::alignWindowStart(std::size_t row)
{
    fatalIf(row + dev.trd > dev.domainsPerWire,
            "window [", row, ", ", row + dev.trd, ") exceeds data rows");
    return alignRowToPort(row, Port::Left);
}

BitVector
DomainBlockCluster::readRowAtPort(Port port) const
{
    note(obs::Counter::Reads);
    return physRows[portPhysical(port)];
}

void
DomainBlockCluster::writeRowAtPort(Port port, const BitVector &row)
{
    fatalIf(row.size() != dev.wiresPerDbc,
            "row width ", row.size(), " != DBC width ", dev.wiresPerDbc);
    note(obs::Counter::Writes);
    physRows[portPhysical(port)] = row;
}

bool
DomainBlockCluster::readBitAtPort(std::size_t wire, Port port) const
{
    note(obs::Counter::Reads);
    return physRows[portPhysical(port)].get(wire);
}

void
DomainBlockCluster::writeBitAtPort(std::size_t wire, Port port, bool value)
{
    note(obs::Counter::Writes);
    physRows[portPhysical(port)].set(wire, value);
}

std::size_t
DomainBlockCluster::transverseReadWire(std::size_t wire,
                                       TrFaultModel *faults) const
{
    note(obs::Counter::TrPulses);
    std::size_t lo = portPhysical(Port::Left);
    std::size_t hi = portPhysical(Port::Right);
    std::size_t count = 0;
    for (std::size_t i = lo; i <= hi; ++i)
        count += physRows[i].get(wire) ? 1 : 0;
    if (faults) {
        std::size_t observed = faults->perturb(count, dev.trd);
        if (observed != count)
            note(obs::Counter::FaultsInjected);
        return observed;
    }
    return count;
}

std::vector<std::uint8_t>
DomainBlockCluster::transverseReadAll(TrFaultModel *faults) const
{
    note(obs::Counter::TrPulses);
    std::size_t lo = portPhysical(Port::Left);
    std::size_t hi = portPhysical(Port::Right);
    std::vector<std::uint8_t> counts(dev.wiresPerDbc, 0);
    for (std::size_t i = lo; i <= hi; ++i) {
        const BitVector &row = physRows[i];
        for (std::size_t w = 0; w < dev.wiresPerDbc; ++w)
            counts[w] += row.get(w) ? 1 : 0;
    }
    if (faults) {
        for (auto &c : counts) {
            auto observed =
                static_cast<std::uint8_t>(faults->perturb(c, dev.trd));
            if (observed != c)
                note(obs::Counter::FaultsInjected);
            c = observed;
        }
    }
    return counts;
}

std::vector<std::uint16_t>
DomainBlockCluster::transverseReadOutsideAll(Port side) const
{
    note(obs::Counter::TrPulses);
    std::vector<std::uint16_t> counts(dev.wiresPerDbc, 0);
    std::size_t lo, hi; // physical range [lo, hi)
    if (side == Port::Left) {
        lo = 0;
        hi = portPhysical(Port::Left);
    } else {
        lo = portPhysical(Port::Right) + 1;
        hi = physRows.size();
    }
    for (std::size_t i = lo; i < hi; ++i) {
        const BitVector &row = physRows[i];
        for (std::size_t w = 0; w < dev.wiresPerDbc; ++w)
            counts[w] += row.get(w) ? 1 : 0;
    }
    return counts;
}

std::size_t
DomainBlockCluster::transverseReadOutsideWire(std::size_t wire,
                                              Port side) const
{
    note(obs::Counter::TrPulses);
    std::size_t lo, hi; // physical range [lo, hi)
    if (side == Port::Left) {
        lo = 0;
        hi = portPhysical(Port::Left);
    } else {
        lo = portPhysical(Port::Right) + 1;
        hi = physRows.size();
    }
    std::size_t count = 0;
    for (std::size_t i = lo; i < hi; ++i)
        count += physRows[i].get(wire) ? 1 : 0;
    return count;
}

void
DomainBlockCluster::transverseWriteRow(const BitVector &row)
{
    fatalIf(row.size() != dev.wiresPerDbc,
            "row width ", row.size(), " != DBC width ", dev.wiresPerDbc);
    note(obs::Counter::TwPulses);
    std::size_t lo = portPhysical(Port::Left);
    std::size_t hi = portPhysical(Port::Right);
    for (std::size_t i = hi; i > lo; --i)
        physRows[i] = physRows[i - 1];
    physRows[lo] = row;
}

void
DomainBlockCluster::transverseWriteWire(std::size_t wire, bool value)
{
    note(obs::Counter::TwPulses);
    std::size_t lo = portPhysical(Port::Left);
    std::size_t hi = portPhysical(Port::Right);
    for (std::size_t i = hi; i > lo; --i)
        physRows[i].set(wire, physRows[i - 1].get(wire));
    physRows[lo].set(wire, value);
}

void
DomainBlockCluster::injectShiftFault(bool toward_left)
{
    if (toward_left) {
        std::rotate(physRows.begin(), physRows.begin() + 1,
                    physRows.end());
        physRows.back().fill(false);
    } else {
        std::rotate(physRows.begin(), physRows.end() - 1,
                    physRows.end());
        physRows.front().fill(false);
    }
    // Deliberately no offset update: the controller's bookkeeping is
    // now wrong, which is exactly what a shifting fault means.
}

BitVector
DomainBlockCluster::peekRow(std::size_t row) const
{
    return physRows[physicalIndex(row)];
}

void
DomainBlockCluster::pokeRow(std::size_t row, const BitVector &value)
{
    fatalIf(value.size() != dev.wiresPerDbc,
            "row width ", value.size(), " != DBC width ", dev.wiresPerDbc);
    physRows[physicalIndex(row)] = value;
}

bool
DomainBlockCluster::peekBit(std::size_t row, std::size_t wire) const
{
    return physRows[physicalIndex(row)].get(wire);
}

void
DomainBlockCluster::pokeBit(std::size_t row, std::size_t wire, bool value)
{
    physRows[physicalIndex(row)].set(wire, value);
}

} // namespace coruscant
