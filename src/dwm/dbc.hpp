/**
 * @file
 * Domain-block cluster: X nanowires ganged under one shift controller.
 *
 * A DBC (paper Fig. 2(d)) is the unit of PIM: X parallel nanowires of Y
 * data domains each.  Row r of the DBC is the bit-slice at domain
 * position r across all wires (an X-bit word).  All wires shift
 * together; each wire has its own sense amplifier, so transverse reads
 * happen on all wires simultaneously.
 *
 * Representation: rows are stored as X-bit BitVectors indexed by
 * physical domain position, which makes row-wide operations (the common
 * case) cheap.  Per-wire column access supports the sequential carry
 * chain of multi-operand addition.  The representation is
 * property-tested against the explicit per-wire Nanowire model.
 */

#ifndef CORUSCANT_DWM_DBC_HPP
#define CORUSCANT_DWM_DBC_HPP

#include <cstdint>
#include <vector>

#include "dwm/device_params.hpp"
#include "dwm/fault_model.hpp"
#include "dwm/nanowire.hpp"
#include "dwm/shift_fault.hpp"
#include "obs/metrics.hpp"
#include "util/bit_vector.hpp"

namespace coruscant {

/** X nanowires x Y data rows with a shared shift offset. */
class DomainBlockCluster
{
  public:
    explicit DomainBlockCluster(const DeviceParams &params);

    const DeviceParams &params() const { return dev; }

    /** Bits per row (number of nanowires, X). */
    std::size_t width() const { return dev.wiresPerDbc; }

    /** Data rows (distinct row addresses, Y). */
    std::size_t rows() const { return dev.domainsPerWire; }

    /**
     * Attach a shifting-fault injector: every subsequent shiftLeft /
     * shiftRight pulse is sampled and may silently over- or
     * under-shift the whole cluster (non-owning; nullptr detaches).
     */
    void attachShiftFaults(ShiftFaultModel *model) { shiftFaults = model; }

    ShiftFaultModel *shiftFaultModel() const { return shiftFaults; }

    /**
     * Attach an observability counter set: every device primitive
     * (shift pulse, TR pulse, TW pulse, port read/write) increments it.
     * A cluster-wide operation counts as one pulse — all wires act
     * under the shared controller signal.  Non-owning; nullptr
     * detaches, and a detached cluster pays one branch per primitive.
     */
    void attachMetrics(obs::ComponentMetrics *m) { metrics = m; }

    // --- Shifting (all wires together) -----------------------------------

    void shiftLeft();
    void shiftRight();
    bool canShiftLeft() const;
    bool canShiftRight() const;
    int shiftOffset() const { return offset; }

    /** Data row currently aligned with @p port. */
    std::size_t rowAtPort(Port port) const;

    /** Whether @p row can be aligned with @p port within shift range. */
    bool canAlign(std::size_t row, Port port) const;

    /** Align @p row with @p port; returns shifts performed. */
    std::size_t alignRowToPort(std::size_t row, Port port);

    /** Align the TR window with rows [row, row+TRD); returns shifts. */
    std::size_t alignWindowStart(std::size_t row);

    /** First data row currently inside the TR window. */
    std::size_t windowStartRow() const { return rowAtPort(Port::Left); }

    // --- Row-wide port access --------------------------------------------

    /** Read the X-bit row under @p port. */
    BitVector readRowAtPort(Port port) const;

    /** Write the X-bit row under @p port. */
    void writeRowAtPort(Port port, const BitVector &row);

    // --- Per-wire access (carry chains) ----------------------------------

    /** Read the bit of wire @p wire under @p port. */
    bool readBitAtPort(std::size_t wire, Port port) const;

    /** Write the bit of wire @p wire under @p port. */
    void writeBitAtPort(std::size_t wire, Port port, bool value);

    // --- Transverse access ------------------------------------------------

    /**
     * Transverse read on a single wire: ones count over the TRD-domain
     * window between the ports (inclusive), optionally fault-perturbed.
     */
    std::size_t transverseReadWire(std::size_t wire,
                                   TrFaultModel *faults = nullptr) const;

    /**
     * Transverse read on every wire at once (each wire has its own
     * sense circuit).  @return per-wire ones counts, size width().
     */
    std::vector<std::uint8_t>
    transverseReadAll(TrFaultModel *faults = nullptr) const;

    /**
     * Segmented transverse read (paper Fig. 3) on every wire: ones
     * counts of the region between an extremity and the nearer port,
     * exclusive of the port domain.  Both outer segments can be read
     * in the same cycle as their current paths are disjoint.
     */
    std::vector<std::uint16_t>
    transverseReadOutsideAll(Port side) const;

    /** Segmented transverse read of one outer segment on one wire. */
    std::size_t transverseReadOutsideWire(std::size_t wire,
                                          Port side) const;

    /**
     * Row-wide transverse write with segmented shift: on every wire the
     * window advances one domain toward the right port (the row under
     * the right port is pushed out) and @p row is written under the
     * left port.
     */
    void transverseWriteRow(const BitVector &row);

    /** Single-wire transverse write (predicated max-function steps). */
    void transverseWriteWire(std::size_t wire, bool value);

    // --- Backdoor (data load / verification; no device semantics) ---------

    /**
     * Physically move every domain one position WITHOUT updating the
     * shift bookkeeping: models a shifting fault (an over- or
     * under-shift the controller is unaware of), and equally the
     * corrective pulse that undoes one.  Domains pushed past an
     * extremity are lost.
     */
    void injectShiftFault(bool toward_left);

    BitVector peekRow(std::size_t row) const;
    void pokeRow(std::size_t row, const BitVector &value);
    bool peekBit(std::size_t row, std::size_t wire) const;
    void pokeBit(std::size_t row, std::size_t wire, bool value);

  private:
    std::size_t portPhysical(Port port) const;
    std::size_t physicalIndex(std::size_t row) const;

    void perturbShift(bool toward_left);

    /** Count one device primitive if a counter set is attached. */
    void
    note(obs::Counter c) const
    {
        if (metrics)
            metrics->add(c);
    }

    DeviceParams dev;
    std::vector<BitVector> physRows; ///< indexed by physical position
    int offset = 0;                  ///< net left shifts applied
    ShiftFaultModel *shiftFaults = nullptr; ///< non-owning, optional
    obs::ComponentMetrics *metrics = nullptr; ///< non-owning, optional
};

} // namespace coruscant

#endif // CORUSCANT_DWM_DBC_HPP
