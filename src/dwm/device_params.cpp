#include "dwm/device_params.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace coruscant {

// ---------------------------------------------------------------------
// Energy calibration.
//
// Fixed by physical reports in the paper and its device references:
//   writeEnergyPj  = 0.1   (paper Sec. I: "circa 0.1 pJ per write")
//   shiftEnergyPj  = 0.02  (shift current pulse, small vs. write)
//   pimLogicEnergyPj = 0.35 (FreePDK45-synthesized PIM block, scaled)
//
// The TR energies are then pinned by the Table III composites:
//   2-op add, TRD = 3, 8 bits, 10.15 pJ total:
//     setup 2 row writes (16 bits) + 1 shift (8 wires), loop 8 TRs +
//     15 carry-chain bit writes (the final carry is masked)
//       =>  tr3 = 0.51125 pJ
//   5-op add, TRD = 7, 8 bits, 22.14 pJ total:
//     setup 5 row writes (40 bits) + 5 shifts, loop 8 TRs + 21 bit
//     writes (8 S + 7 C + 6 C')
//       =>  tr7 = 1.555 pJ
//
// Between/beyond those points we interpolate linearly in the window
// length (TR current rises with the series resistance of the segment).
// ---------------------------------------------------------------------

namespace {

constexpr double trSlope = (1.555 - 0.51125) / 4.0;      // per domain
constexpr double trIntercept = 0.51125 - 3.0 * trSlope;  // at window 0

} // namespace

double
DeviceParams::trEnergyPj(std::size_t window) const
{
    if (window <= 1)
        return readEnergyPj; // degenerate TR == normal port read
    return std::max(0.1, trIntercept + trSlope
                    * static_cast<double>(window));
}

std::size_t
DeviceParams::leftPortRow() const
{
    // Centered-ish window; matches the paper's ports at data rows
    // 14 and 20 for Y = 32, TRD = 7 (Section III-A).
    std::size_t slack = domainsPerWire - trd;
    return std::min(slack / 2 + 2, slack);
}

std::size_t
DeviceParams::leftOverhead() const
{
    // Rows to the right of the right port must be able to shift left
    // into it; the data then extends into the left overhead region.
    return (domainsPerWire - 1) - rightPortRow();
}

std::size_t
DeviceParams::rightOverhead() const
{
    // Mirror: rows left of the left port shift right into it.
    return leftPortRow();
}

DeviceParams
DeviceParams::coruscantDefault()
{
    DeviceParams p;
    p.validate();
    return p;
}

DeviceParams
DeviceParams::withTrd(std::size_t trd)
{
    DeviceParams p;
    p.trd = trd;
    p.validate();
    return p;
}

void
DeviceParams::validate() const
{
    fatalIf(wiresPerDbc == 0, "DBC must have at least one nanowire");
    fatalIf(domainsPerWire == 0, "nanowire must store at least one row");
    fatalIf(trd == 0, "TRD must be positive");
    fatalIf(trd > domainsPerWire,
            "TRD (", trd, ") exceeds data domains (", domainsPerWire, ")");
    fatalIf(cycleNs <= 0, "cycle time must be positive");
}

} // namespace coruscant
