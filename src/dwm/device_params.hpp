/**
 * @file
 * Device-level timing, energy, and geometry parameters for DWM.
 *
 * The paper (Section V-A) derives these from NVSim, LTSPICE sense-circuit
 * simulation, FreePDK45 synthesis scaled to F = 32 nm, and LLG
 * micromagnetics.  None of those tools ship with the paper, so this
 * reproduction embeds the *derived* per-primitive constants, calibrated so
 * the composite operation costs published in the paper (Table III and the
 * 26-cycle 8-bit five-operand add walk-through in Section V-B) are
 * reproduced.  See DESIGN.md Section 3 "Calibration".
 */

#ifndef CORUSCANT_DWM_DEVICE_PARAMS_HPP
#define CORUSCANT_DWM_DEVICE_PARAMS_HPP

#include <cstddef>

namespace coruscant {

/**
 * Per-primitive latency (cycles), energy (pJ), and geometry for a DWM
 * nanowire array with transverse access.
 *
 * All latencies are in memory cycles.  The paper uses a 1 ns device
 * cycle for DBC-level microbenchmarks (Section V-B) and a 1.25 ns
 * DDR3-1600 memory cycle at system level (Table II).
 */
struct DeviceParams
{
    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------
    /** Nanowires ganged in a domain-block cluster (bits per row). */
    std::size_t wiresPerDbc = 512;

    /** Data domains per nanowire (distinct row addresses), Y. */
    std::size_t domainsPerWire = 32;

    /** Maximum transverse read distance (domains per TR), TRD. */
    std::size_t trd = 7;

    // ------------------------------------------------------------------
    // Latency (cycles; 1 cycle = cycleNs nanoseconds)
    // ------------------------------------------------------------------
    double cycleNs = 1.0;       ///< DBC-level cycle time (paper: 1 ns)

    unsigned shiftCycles = 1;   ///< one-domain DW shift of the cluster
    unsigned readCycles = 1;    ///< access-port read of one row
    unsigned writeCycles = 1;   ///< access-port (shift-based) write
    unsigned trCycles = 1;      ///< transverse read across the window
    unsigned twCycles = 1;      ///< transverse write + segmented shift

    // ------------------------------------------------------------------
    // Energy (pJ).  Row-level primitives touch `wiresPerDbc` wires; the
    // per-bit values below are multiplied by the number of active wires.
    // Calibration (see device_params.cpp): with the paper's ~0.1 pJ/bit
    // write, the Table III composites for 2-op add (TRD = 3, 10.15 pJ)
    // and 5-op add (TRD = 7, 22.14 pJ) pin the remaining constants.
    // ------------------------------------------------------------------
    double writeEnergyPj = 0.1;   ///< per bit written at a port
    double readEnergyPj = 0.05;   ///< per bit read at a port
    double shiftEnergyPj = 0.02;  ///< per wire per one-domain shift
    double pimLogicEnergyPj = 0.35; ///< PIM block evaluation per wire
    double twEnergyPj = 0.14;     ///< transverse write per wire

    /** TR energy per wire as a function of the window length. */
    double trEnergyPj(std::size_t window) const;

    // ------------------------------------------------------------------
    // Derived geometry for the two-port PIM nanowire (paper Sec. III-A):
    // ports are spaced so the inclusive window spans `trd` domains;
    // overhead domains let every data row reach a port.
    // ------------------------------------------------------------------

    /** Data-row index aligned with the left port at shift offset 0. */
    std::size_t leftPortRow() const;

    /** Data-row index aligned with the right port at shift offset 0. */
    std::size_t rightPortRow() const { return leftPortRow() + trd - 1; }

    /** Overhead domains on the left extremity. */
    std::size_t leftOverhead() const;

    /** Overhead domains on the right extremity. */
    std::size_t rightOverhead() const;

    /** Total physical domains per nanowire. */
    std::size_t
    totalDomains() const
    {
        return domainsPerWire + leftOverhead() + rightOverhead();
    }

    /** Maximum addition operands for this TRD (ports carry C / C'). */
    std::size_t
    maxAddOperands() const
    {
        return trd <= 3 ? 2 : trd - 2;
    }

    /** Preset matching the paper's defaults (TRD = 7, 512 x 32 DBC). */
    static DeviceParams coruscantDefault();

    /** Preset with a different transverse read distance. */
    static DeviceParams withTrd(std::size_t trd);

    /** Validate invariants; throws FatalError on a bad configuration. */
    void validate() const;
};

} // namespace coruscant

#endif // CORUSCANT_DWM_DEVICE_PARAMS_HPP
