/**
 * @file
 * Transverse-read fault injection.
 *
 * The paper's reliability analysis (Section V-F) models a TR fault as
 * the aggregate count being read one level too high or too low, with
 * probability ~1e-6 per TR; faults of two or more levels are negligible.
 * This hook lets the nanowire / DBC models perturb TR results so the
 * analytical error model (src/reliability) can be cross-validated by
 * Monte-Carlo injection at elevated rates.
 */

#ifndef CORUSCANT_DWM_FAULT_MODEL_HPP
#define CORUSCANT_DWM_FAULT_MODEL_HPP

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace coruscant {

/**
 * Injects +/-1 level errors into transverse reads.
 *
 * A disabled model (probability 0) is the default and adds no overhead.
 */
class TrFaultModel
{
  public:
    TrFaultModel() = default;

    /**
     * @param probability chance a single TR misreads by one level
     * @param seed RNG seed for reproducibility
     */
    TrFaultModel(double probability, std::uint64_t seed)
        : faultProbability(probability), rng(seed)
    {}

    /**
     * Possibly perturb a TR result.
     *
     * @param true_count the fault-free ones count
     * @param window the TR window length (count is clamped to [0,window])
     * @return the observed count
     */
    std::size_t
    perturb(std::size_t true_count, std::size_t window)
    {
        if (faultProbability <= 0.0)
            return true_count;
        if (!rng.nextBool(faultProbability))
            return true_count;
        ++injected;
        bool up = rng.nextBool(0.5);
        // Direction is flipped at the range limits: a saturated read
        // can only err inward.
        if (true_count == 0)
            up = true;
        else if (true_count == window)
            up = false;
        return up ? true_count + 1 : true_count - 1;
    }

    /** Number of faults injected so far. */
    std::uint64_t injectedFaults() const { return injected; }

    double probability() const { return faultProbability; }

  private:
    double faultProbability = 0.0;
    Rng rng;
    std::uint64_t injected = 0;
};

} // namespace coruscant

#endif // CORUSCANT_DWM_FAULT_MODEL_HPP
