#include "dwm/nanowire.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace coruscant {

Nanowire::Nanowire(const DeviceParams &params)
    : dev(params), domains(params.totalDomains(), 0)
{
    dev.validate();
}

void
Nanowire::shiftLeft()
{
    panicIf(!canShiftLeft(), "shift would push data off the left end");
    note(obs::Counter::Shifts);
    ++offset;
    perturbShift(true);
}

void
Nanowire::shiftRight()
{
    panicIf(!canShiftRight(), "shift would push data off the right end");
    note(obs::Counter::Shifts);
    --offset;
    perturbShift(false);
}

void
Nanowire::injectShiftFault(bool toward_left)
{
    if (toward_left) {
        std::rotate(domains.begin(), domains.begin() + 1, domains.end());
        domains.back() = 0;
    } else {
        std::rotate(domains.begin(), domains.end() - 1, domains.end());
        domains.front() = 0;
    }
    // Deliberately no offset update: the controller's bookkeeping is
    // now wrong, which is exactly what a shifting fault means.
}

void
Nanowire::perturbShift(bool toward_left)
{
    ShiftOutcome outcome =
        shiftFaults ? shiftFaults->sample() : ShiftOutcome::Normal;
    // The bookkeeping (offset) always advances by one; what the pulse
    // physically did depends on the outcome.
    if (outcome != ShiftOutcome::UnderShift)
        injectShiftFault(toward_left);
    if (outcome == ShiftOutcome::OverShift)
        injectShiftFault(toward_left);
}

bool
Nanowire::canShiftLeft() const
{
    return offset < static_cast<int>(dev.leftOverhead());
}

bool
Nanowire::canShiftRight() const
{
    return offset > -static_cast<int>(dev.rightOverhead());
}

std::size_t
Nanowire::portPhysical(Port port) const
{
    std::size_t base = dev.leftOverhead();
    return port == Port::Left ? base + dev.leftPortRow()
                              : base + dev.rightPortRow();
}

std::size_t
Nanowire::physicalIndex(std::size_t row) const
{
    panicIf(row >= dev.domainsPerWire, "row out of range");
    return dev.leftOverhead() + row - offset;
}

std::size_t
Nanowire::rowAtPort(Port port) const
{
    std::size_t base_row =
        port == Port::Left ? dev.leftPortRow() : dev.rightPortRow();
    return base_row + offset;
}

bool
Nanowire::canAlign(std::size_t row, Port port) const
{
    if (row >= dev.domainsPerWire)
        return false;
    std::size_t base_row =
        port == Port::Left ? dev.leftPortRow() : dev.rightPortRow();
    int needed = static_cast<int>(row) - static_cast<int>(base_row);
    return needed >= -static_cast<int>(dev.rightOverhead()) &&
           needed <= static_cast<int>(dev.leftOverhead());
}

std::size_t
Nanowire::alignRowToPort(std::size_t row, Port port)
{
    fatalIf(!canAlign(row, port), "row ", row,
            " cannot be aligned with the requested port");
    std::size_t base_row =
        port == Port::Left ? dev.leftPortRow() : dev.rightPortRow();
    int needed = static_cast<int>(row) - static_cast<int>(base_row);
    std::size_t shifts = 0;
    while (offset < needed) {
        shiftLeft();
        ++shifts;
    }
    while (offset > needed) {
        shiftRight();
        ++shifts;
    }
    return shifts;
}

std::size_t
Nanowire::alignWindowStart(std::size_t row)
{
    fatalIf(row + dev.trd > dev.domainsPerWire,
            "window [", row, ", ", row + dev.trd, ") exceeds data rows");
    return alignRowToPort(row, Port::Left);
}

bool
Nanowire::readAtPort(Port port) const
{
    note(obs::Counter::Reads);
    return domains[portPhysical(port)] != 0;
}

void
Nanowire::writeAtPort(Port port, bool value)
{
    note(obs::Counter::Writes);
    domains[portPhysical(port)] = value ? 1 : 0;
}

std::size_t
Nanowire::transverseRead(TrFaultModel *faults) const
{
    note(obs::Counter::TrPulses);
    std::size_t lo = portPhysical(Port::Left);
    std::size_t hi = portPhysical(Port::Right);
    std::size_t count = 0;
    for (std::size_t i = lo; i <= hi; ++i)
        count += domains[i];
    if (faults)
        return faults->perturb(count, dev.trd);
    return count;
}

void
Nanowire::transverseWrite(bool value)
{
    note(obs::Counter::TwPulses);
    std::size_t lo = portPhysical(Port::Left);
    std::size_t hi = portPhysical(Port::Right);
    // The domain under the right port is pushed to ground; everything
    // between the heads advances one position toward the right port.
    for (std::size_t i = hi; i > lo; --i)
        domains[i] = domains[i - 1];
    domains[lo] = value ? 1 : 0;
}

std::size_t
Nanowire::transverseReadOutside(Port side, TrFaultModel *faults) const
{
    note(obs::Counter::TrPulses);
    std::size_t count = 0;
    if (side == Port::Left) {
        std::size_t hi = portPhysical(Port::Left);
        for (std::size_t i = 0; i < hi; ++i)
            count += domains[i];
        if (faults)
            return faults->perturb(count, hi);
    } else {
        std::size_t lo = portPhysical(Port::Right);
        for (std::size_t i = lo + 1; i < domains.size(); ++i)
            count += domains[i];
        if (faults)
            return faults->perturb(count, domains.size() - lo - 1);
    }
    return count;
}

bool
Nanowire::peekRow(std::size_t row) const
{
    return domains[physicalIndex(row)] != 0;
}

void
Nanowire::pokeRow(std::size_t row, bool value)
{
    domains[physicalIndex(row)] = value ? 1 : 0;
}

} // namespace coruscant
