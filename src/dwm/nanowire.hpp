/**
 * @file
 * Single DWM nanowire with two access ports and transverse access.
 *
 * Models one racetrack: a line of magnetic domains, a shift offset, two
 * read/write access ports spaced TRD domains apart (inclusive), overhead
 * domains at both extremities so any data row can reach a port, a
 * transverse read (count of '1's between the ports), and the paper's
 * transverse write with segmented shift (Section IV-B, Fig. 9).
 *
 * The DomainBlockCluster is the workhorse used by the PIM layer; this
 * class exists as the reference device model and is property-tested for
 * equivalence with the cluster representation.
 */

#ifndef CORUSCANT_DWM_NANOWIRE_HPP
#define CORUSCANT_DWM_NANOWIRE_HPP

#include <cstdint>
#include <vector>

#include "dwm/device_params.hpp"
#include "dwm/fault_model.hpp"
#include "dwm/shift_fault.hpp"
#include "obs/metrics.hpp"

namespace coruscant {

/** The two access ports of a PIM-enabled nanowire. */
enum class Port { Left, Right };

/** One ferromagnetic nanowire with explicit domain state. */
class Nanowire
{
  public:
    explicit Nanowire(const DeviceParams &params);

    /** Geometry in use. */
    const DeviceParams &params() const { return dev; }

    /**
     * Attach a shifting-fault injector: every subsequent shift pulse
     * may silently over- or under-shift (non-owning; nullptr detaches).
     */
    void attachShiftFaults(ShiftFaultModel *model) { shiftFaults = model; }

    /**
     * Attach an observability counter set: every device primitive
     * (shift pulse, TR pulse, TW pulse, port read/write) increments
     * it.  Non-owning; nullptr detaches.
     */
    void attachMetrics(obs::ComponentMetrics *m) { metrics = m; }

    // --- Shifting ------------------------------------------------------

    /**
     * Shift every domain one position toward the left extremity
     * (data that was at physical index i moves to i-1).
     * @pre canShiftLeft()
     */
    void shiftLeft();

    /** Shift every domain one position toward the right extremity. */
    void shiftRight();

    /** Whether a further left shift keeps all data rows on the wire. */
    bool canShiftLeft() const;

    /** Whether a further right shift keeps all data rows on the wire. */
    bool canShiftRight() const;

    /**
     * Net left shifts applied (negative = net right).  Zero means data
     * row leftPortRow() is aligned with the left port.
     */
    int shiftOffset() const { return offset; }

    /** Data row currently aligned with @p port. */
    std::size_t rowAtPort(Port port) const;

    /**
     * Shift until data row @p row is aligned with @p port.
     * @return number of single-domain shifts performed
     */
    std::size_t alignRowToPort(std::size_t row, Port port);

    /**
     * Shift until the TR window covers data rows
     * [row, row + TRD - 1].
     * @return number of single-domain shifts performed
     */
    std::size_t alignWindowStart(std::size_t row);

    /** Whether aligning @p row with @p port is within shift range. */
    bool canAlign(std::size_t row, Port port) const;

    // --- Port access ----------------------------------------------------

    /** Read the bit under @p port. */
    bool readAtPort(Port port) const;

    /** Shift-based write of @p value under @p port. */
    void writeAtPort(Port port, bool value);

    // --- Transverse access ----------------------------------------------

    /**
     * Transverse read: number of '1's in the TRD domains between the
     * ports, inclusive.  Perturbed by @p faults when provided.
     */
    std::size_t transverseRead(TrFaultModel *faults = nullptr) const;

    /**
     * Transverse write with segmented shift: domains between the ports
     * advance one position toward the right port (the bit under the
     * right port is pushed out to ground), and @p value is written
     * under the left port.  Domains outside the window are untouched.
     */
    void transverseWrite(bool value);

    /**
     * Segmented transverse read (paper Fig. 3): ones count of the
     * region between an extremity and the nearer port, exclusive of
     * the port domain itself.  The left and right outer segments can
     * be read simultaneously (disjoint current paths), so one TR
     * cycle covers both; together with the window TR this queries the
     * full nanowire in two TR operations.
     *
     * @param side which extremity's segment to count
     */
    std::size_t transverseReadOutside(Port side,
                                      TrFaultModel *faults
                                      = nullptr) const;

    /** Total ones on the wire (both outer segments + the window). */
    std::size_t
    totalOnes() const
    {
        return transverseReadOutside(Port::Left) + transverseRead() +
               transverseReadOutside(Port::Right);
    }

    // --- Backdoor (testing / data load; no device semantics) -------------

    /**
     * Physically move every domain one position WITHOUT updating the
     * shift bookkeeping: models a shifting fault, and equally the
     * corrective pulse that undoes one.  Domains pushed past an
     * extremity are lost.
     */
    void injectShiftFault(bool toward_left);

    /** Read data row @p row regardless of alignment. */
    bool peekRow(std::size_t row) const;

    /** Write data row @p row regardless of alignment. */
    void pokeRow(std::size_t row, bool value);

    /** Physical index of data row @p row at the current offset. */
    std::size_t physicalIndex(std::size_t row) const;

  private:
    std::size_t portPhysical(Port port) const;
    void perturbShift(bool toward_left);

    /** Count one device primitive if a counter set is attached. */
    void
    note(obs::Counter c) const
    {
        if (metrics)
            metrics->add(c);
    }

    DeviceParams dev;
    std::vector<std::uint8_t> domains; ///< physical positions, 0 = left
    int offset = 0;                    ///< net left shifts applied
    ShiftFaultModel *shiftFaults = nullptr; ///< non-owning, optional
    obs::ComponentMetrics *metrics = nullptr; ///< non-owning, optional
};

} // namespace coruscant

#endif // CORUSCANT_DWM_NANOWIRE_HPP
