/**
 * @file
 * Shifting-fault injection.
 *
 * Over- and under-shifting is the dominant DWM failure mode (paper
 * Sec. II-A): the current pulse that moves every domain wall one
 * position can move them two positions (over-shift) or fail to move
 * them at all (under-shift).  Either way the controller's position
 * bookkeeping is silently wrong afterwards and every subsequent access
 * reads or writes the neighbouring row — a misalignment, not a bit
 * flip, which is why TR-based detection (AlignmentGuard) is the
 * matching repair mechanism.
 *
 * This hook lets the nanowire / DBC shift paths perturb individual
 * shift pulses so end-to-end campaigns (src/reliability) can measure
 * the detected/corrected/silent breakdown of the full pipeline at
 * elevated rates.
 */

#ifndef CORUSCANT_DWM_SHIFT_FAULT_HPP
#define CORUSCANT_DWM_SHIFT_FAULT_HPP

#include <cstdint>

#include "util/rng.hpp"

namespace coruscant {

/** What a single shift pulse actually did. */
enum class ShiftOutcome
{
    Normal,     ///< moved exactly one position
    OverShift,  ///< moved two positions
    UnderShift, ///< did not move at all
};

/**
 * Probabilistically turns single-domain shifts into over-/under-shifts.
 *
 * A disabled model (probability 0) is the default and adds no overhead.
 * Corrective pulses issued by the alignment guard are modeled through
 * the same backdoor as the faults themselves and are NOT re-sampled.
 */
class ShiftFaultModel
{
  public:
    ShiftFaultModel() = default;

    /**
     * @param probability chance a single shift pulse misbehaves
     * @param seed RNG seed for reproducibility
     * @param over_fraction fraction of faults that are over-shifts
     *        (the rest are under-shifts)
     */
    ShiftFaultModel(double probability, std::uint64_t seed,
                    double over_fraction = 0.5)
        : faultProbability(probability), overFraction(over_fraction),
          rng(seed)
    {}

    /** Sample the outcome of one shift pulse. */
    ShiftOutcome
    sample()
    {
        if (faultProbability <= 0.0)
            return ShiftOutcome::Normal;
        if (!rng.nextBool(faultProbability))
            return ShiftOutcome::Normal;
        if (rng.nextBool(overFraction)) {
            ++overShiftCount;
            return ShiftOutcome::OverShift;
        }
        ++underShiftCount;
        return ShiftOutcome::UnderShift;
    }

    /** Faults injected so far (over + under). */
    std::uint64_t
    injectedFaults() const
    {
        return overShiftCount + underShiftCount;
    }

    std::uint64_t overShifts() const { return overShiftCount; }
    std::uint64_t underShifts() const { return underShiftCount; }

    double probability() const { return faultProbability; }

    /**
     * Change the fault rate mid-stream (chaos ramps).  The RNG stream
     * is untouched, so runs remain reproducible for a fixed seed.
     */
    void setProbability(double p) { faultProbability = p; }

  private:
    double faultProbability = 0.0;
    double overFraction = 0.5;
    Rng rng;
    std::uint64_t overShiftCount = 0;
    std::uint64_t underShiftCount = 0;
};

} // namespace coruscant

#endif // CORUSCANT_DWM_SHIFT_FAULT_HPP
