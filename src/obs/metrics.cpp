#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

#include "util/logging.hpp"

namespace coruscant::obs {

const char *
counterName(Counter c)
{
    switch (c) {
    case Counter::Shifts:
        return "shifts";
    case Counter::TrPulses:
        return "tr_pulses";
    case Counter::TwPulses:
        return "tw_pulses";
    case Counter::Reads:
        return "reads";
    case Counter::Writes:
        return "writes";
    case Counter::MisalignCorrections:
        return "misalign_corrections";
    case Counter::Retries:
        return "retries";
    case Counter::Requests:
        return "requests";
    case Counter::Gangs:
        return "gangs";
    case Counter::BreakerTrips:
        return "breaker_trips";
    case Counter::Retirements:
        return "retirements";
    case Counter::FaultsInjected:
        return "faults_injected";
    case Counter::DataFaultsInjected:
        return "data_faults_injected";
    case Counter::EccCorrections:
        return "ecc_corrections";
    case Counter::EccDetectedUncorrectable:
        return "ecc_detected_uncorrectable";
    }
    return "?";
}

ComponentMetrics
ComponentMetrics::delta(const ComponentMetrics &earlier) const
{
    ComponentMetrics d;
    for (std::size_t i = 0; i < kCounterKinds; ++i) {
        auto c = static_cast<Counter>(i);
        std::uint64_t now = get(c), then = earlier.get(c);
        panicIf(now < then, "counter ", counterName(c),
                " went backwards across a snapshot");
        d.add(c, now - then);
    }
    d.addEnergy(energyPj_ - earlier.energyPj_);
    return d;
}

ComponentMetrics &
MetricsRegistry::component(const std::string &path)
{
    return components_[path];
}

const ComponentMetrics *
MetricsRegistry::find(const std::string &path) const
{
    auto it = components_.find(path);
    return it == components_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry &o)
{
    for (const auto &[path, m] : o.components_)
        components_[path].merge(m);
}

void
MetricsRegistry::mergePrefixed(const MetricsRegistry &o,
                               const std::string &prefix)
{
    for (const auto &[path, m] : o.components_)
        components_[prefix + "/" + path].merge(m);
}

MetricsRegistry
MetricsRegistry::delta(const MetricsRegistry &earlier) const
{
    MetricsRegistry d;
    static const ComponentMetrics kZero;
    for (const auto &[path, m] : components_) {
        const ComponentMetrics *base = earlier.find(path);
        ComponentMetrics diff = m.delta(base ? *base : kZero);
        if (!diff.empty())
            d.components_[path] = diff;
    }
    return d;
}

std::uint64_t
MetricsRegistry::total(Counter c) const
{
    std::uint64_t sum = 0;
    for (const auto &[path, m] : components_)
        sum += m.get(c);
    return sum;
}

double
MetricsRegistry::totalEnergyPj() const
{
    // Path-ordered summation: deterministic regardless of how the
    // registry was assembled.
    double sum = 0.0;
    for (const auto &[path, m] : components_)
        sum += m.energyPj();
    return sum;
}

namespace {

void
emitComponent(std::ostringstream &os, const ComponentMetrics &m)
{
    os << "{";
    bool first = true;
    for (std::size_t i = 0; i < kCounterKinds; ++i) {
        auto c = static_cast<Counter>(i);
        if (m.get(c) == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << counterName(c) << "\": " << m.get(c);
    }
    if (m.energyPj() != 0.0) {
        if (!first)
            os << ", ";
        first = false;
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.17g", m.energyPj());
        os << "\"energy_pj\": " << buf;
    }
    if (first)
        os << "\"empty\": true";
    os << "}";
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"components\": {";
    bool first = true;
    for (const auto &[path, m] : components_) {
        os << (first ? "\n" : ",\n") << "    \"" << path << "\": ";
        first = false;
        emitComponent(os, m);
    }
    os << (first ? "},\n" : "\n  },\n");
    ComponentMetrics totals;
    for (const auto &[path, m] : components_)
        totals.merge(m);
    os << "  \"totals\": ";
    emitComponent(os, totals);
    os << "\n}\n";
    return os.str();
}

} // namespace coruscant::obs
