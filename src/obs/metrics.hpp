/**
 * @file
 * MetricsRegistry: hierarchical, mergeable activity counters.
 *
 * Every CORUSCANT result the repo reproduces bottoms out in
 * per-primitive activity — shift pulses, transverse reads/writes, port
 * accesses, guard corrections — and the energy they cost.  The
 * CostLedger aggregates cycles/energy per *category*; this registry
 * complements it with per-*component* counts keyed by a slash-separated
 * path ("channel0/dispatch", "memory/dbc", "guard"), so a wrong end
 * total can be localized to the component that produced it.
 *
 * Design constraints, in order:
 *  - near-zero hot-path cost: instrumented objects hold a raw
 *    ComponentMetrics pointer (null when observability is off) and an
 *    increment is one array add — component lookup happens once, at
 *    wiring time, never per event;
 *  - deterministic merging: components live in an ordered map and
 *    registries merge component-by-component, so per-channel
 *    registries merged in channel order give bit-identical aggregates
 *    (including the floating-point energy sums) regardless of how many
 *    worker threads produced them;
 *  - machine-readable export: toJson() emits a stable, sorted document
 *    for the BENCH_*.json trajectory and the CLI --metrics-json flag.
 */

#ifndef CORUSCANT_OBS_METRICS_HPP
#define CORUSCANT_OBS_METRICS_HPP

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace coruscant::obs {

/** Fixed counter kinds (array-indexed on the hot path). */
enum class Counter : std::uint8_t
{
    Shifts = 0,           ///< single-domain shift pulses
    TrPulses,             ///< transverse-read pulses
    TwPulses,             ///< transverse-write pulses
    Reads,                ///< port / line reads
    Writes,               ///< port / line writes
    MisalignCorrections,  ///< guard-corrected misalignments
    Retries,              ///< guarded-execution re-runs / backoffs
    Requests,             ///< service requests completed
    Gangs,                ///< TR gangs dispatched
    BreakerTrips,         ///< DBC-health circuit-breaker openings
    Retirements,          ///< DBC groups retired to spares
    FaultsInjected,       ///< shift/TR faults injected by the models
    DataFaultsInjected,   ///< data-domain bit faults injected
    EccCorrections,       ///< SECDED single-bit words corrected
    EccDetectedUncorrectable, ///< SECDED double-bit words (DUE)
};

inline constexpr std::size_t kCounterKinds = 15;

/** Stable JSON key for @p c. */
const char *counterName(Counter c);

/**
 * Primitive-activity summary of one measured operation (a value type
 * carried alongside OpCost / RequestCost so the service layer can
 * attribute device activity without re-running the functional sim).
 */
struct PrimCounts
{
    std::uint64_t shifts = 0;
    std::uint64_t trPulses = 0;
    std::uint64_t twPulses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    PrimCounts
    scaled(std::uint64_t n) const
    {
        return {shifts * n, trPulses * n, twPulses * n, reads * n,
                writes * n};
    }

    bool
    operator==(const PrimCounts &o) const
    {
        return shifts == o.shifts && trPulses == o.trPulses &&
               twPulses == o.twPulses && reads == o.reads &&
               writes == o.writes;
    }
};

/** One component's counters plus its energy accumulator. */
class ComponentMetrics
{
  public:
    /** Add @p n to counter @p c (the hot-path operation). */
    void
    add(Counter c, std::uint64_t n = 1)
    {
        counts_[static_cast<std::size_t>(c)] += n;
    }

    /** Charge @p pj picojoules to this component. */
    void addEnergy(double pj) { energyPj_ += pj; }

    /** Add a whole primitive-count summary at once. */
    void
    addPrims(const PrimCounts &p)
    {
        add(Counter::Shifts, p.shifts);
        add(Counter::TrPulses, p.trPulses);
        add(Counter::TwPulses, p.twPulses);
        add(Counter::Reads, p.reads);
        add(Counter::Writes, p.writes);
    }

    std::uint64_t
    get(Counter c) const
    {
        return counts_[static_cast<std::size_t>(c)];
    }

    double energyPj() const { return energyPj_; }

    /** Snapshot of the device-primitive counters. */
    PrimCounts
    prims() const
    {
        return {get(Counter::Shifts), get(Counter::TrPulses),
                get(Counter::TwPulses), get(Counter::Reads),
                get(Counter::Writes)};
    }

    void
    merge(const ComponentMetrics &o)
    {
        for (std::size_t i = 0; i < kCounterKinds; ++i)
            counts_[i] += o.counts_[i];
        energyPj_ += o.energyPj_;
    }

    /** This minus @p earlier (counters are monotone within a run). */
    ComponentMetrics delta(const ComponentMetrics &earlier) const;

    bool
    empty() const
    {
        if (energyPj_ != 0.0)
            return false;
        for (std::uint64_t v : counts_)
            if (v)
                return false;
        return true;
    }

    bool
    operator==(const ComponentMetrics &o) const
    {
        return counts_ == o.counts_ && energyPj_ == o.energyPj_;
    }

  private:
    std::array<std::uint64_t, kCounterKinds> counts_{};
    double energyPj_ = 0.0;
};

/** Ordered collection of components keyed by slash-separated path. */
class MetricsRegistry
{
  public:
    /**
     * Find-or-create the component at @p path.  The returned reference
     * is stable for the registry's lifetime (std::map nodes do not
     * move), so instrumented objects cache it once at wiring time.
     */
    ComponentMetrics &component(const std::string &path);

    /** Component at @p path, or nullptr when absent. */
    const ComponentMetrics *find(const std::string &path) const;

    const std::map<std::string, ComponentMetrics> &
    components() const
    {
        return components_;
    }

    /** Merge @p o component-by-component (path union, counts added). */
    void merge(const MetricsRegistry &o);

    /** Merge @p o with every path prefixed by "@p prefix/". */
    void mergePrefixed(const MetricsRegistry &o,
                       const std::string &prefix);

    /** Copy of the current state (for later delta()). */
    MetricsRegistry snapshot() const { return *this; }

    /**
     * Per-component difference against an earlier snapshot; components
     * unchanged since the snapshot are omitted.
     */
    MetricsRegistry delta(const MetricsRegistry &earlier) const;

    /** Sum of counter @p c over all components. */
    std::uint64_t total(Counter c) const;

    /** Sum of energy over all components. */
    double totalEnergyPj() const;

    bool empty() const { return components_.empty(); }

    /**
     * Stable JSON document:
     * { "components": { "<path>": { "<counter>": n, ...,
     *   "energy_pj": x }, ... }, "totals": { ... } }.
     * Zero-valued counters are omitted; paths sort lexicographically;
     * doubles print with full round-trip precision, so two registries
     * compare equal iff their JSON strings compare equal.
     */
    std::string toJson() const;

  private:
    std::map<std::string, ComponentMetrics> components_;
};

} // namespace coruscant::obs

#endif // CORUSCANT_OBS_METRICS_HPP
