#include "obs/trace_sink.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace coruscant::obs {

void
TraceSink::append(const TraceSink &o)
{
    if (o.enabled_)
        enabled_ = true;
    events_.insert(events_.end(), o.events_.begin(), o.events_.end());
}

namespace {

/** Minimal JSON string escape (names are simple, but be safe). */
void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
TraceSink::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    char buf[48];
    for (const TraceEvent &e : events_) {
        os << (first ? "\n" : ",\n");
        first = false;
        if (e.phase == 'M') {
            // Metadata: name the process row.
            os << "{\"ph\": \"M\", \"name\": \"process_name\", "
                  "\"pid\": "
               << e.pid << ", \"tid\": 0, \"args\": {\"name\": ";
            writeEscaped(os, e.name);
            os << "}}";
            continue;
        }
        os << "{\"ph\": \"" << e.phase << "\", \"name\": ";
        writeEscaped(os, e.name);
        os << ", \"cat\": ";
        writeEscaped(os, e.cat);
        os << ", \"ts\": " << e.ts;
        if (e.phase == 'X')
            os << ", \"dur\": " << e.dur;
        if (e.phase == 'i')
            os << ", \"s\": \"t\"";
        os << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid;
        if (e.argKey) {
            std::snprintf(buf, sizeof buf, "%.17g", e.argValue);
            os << ", \"args\": {\"" << e.argKey << "\": " << buf
               << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

std::string
TraceSink::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace coruscant::obs
