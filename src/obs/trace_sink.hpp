/**
 * @file
 * TraceSink: Chrome trace-event recording for the simulators.
 *
 * Emits the JSON object format of the Trace Event specification, which
 * chrome://tracing and Perfetto both load directly: complete spans
 * (ph "X") for CPIM operations, gang dispatches, and guard scrubs;
 * counter tracks (ph "C") for queue depths; and metadata events
 * (ph "M") naming the process/thread rows.  Timestamps are modeled
 * cycles used as the spec's microsecond field — a trace viewer's
 * "1 µs" is one simulated memory cycle.
 *
 * The sink is disabled by default and every recording call starts
 * with an inline `enabled` check, so a null/disabled sink costs one
 * predictable branch per call site — the property the <2% bench
 * overhead acceptance bound relies on.  Sinks buffer events in memory
 * and are concatenated with append() in channel order, keeping
 * threaded runs bit-identical to single-threaded ones.
 */

#ifndef CORUSCANT_OBS_TRACE_SINK_HPP
#define CORUSCANT_OBS_TRACE_SINK_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace coruscant::obs {

/** One buffered trace event (internal representation). */
struct TraceEvent
{
    char phase = 'X';     ///< 'X' span, 'C' counter, 'i' instant, 'M' meta
    std::string name;
    std::string cat;
    std::uint64_t ts = 0;  ///< modeled cycles
    std::uint64_t dur = 0; ///< span length (phase 'X' only)
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    const char *argKey = nullptr; ///< optional numeric argument
    double argValue = 0.0;
};

/** Buffering Chrome-trace event sink with a disabled fast path. */
class TraceSink
{
  public:
    /** Construct disabled; recording calls are no-ops until enable(). */
    TraceSink() = default;

    void enable() { enabled_ = true; }
    bool on() const { return enabled_; }

    /** Complete span: [@p ts, @p ts + @p dur) on row (@p pid, @p tid). */
    void
    span(const char *name, const char *cat, std::uint64_t ts,
         std::uint64_t dur, std::uint32_t pid, std::uint32_t tid,
         const char *arg_key = nullptr, double arg_value = 0.0)
    {
        if (!enabled_)
            return;
        push({'X', name, cat, ts, dur, pid, tid, arg_key, arg_value});
    }

    /** Counter sample: one track per (@p pid, @p name). */
    void
    counter(const char *name, std::uint64_t ts, std::uint32_t pid,
            double value)
    {
        if (!enabled_)
            return;
        push({'C', name, "counter", ts, 0, pid, 0, "value", value});
    }

    /** Instantaneous event (a vertical tick in the viewer). */
    void
    instant(const char *name, const char *cat, std::uint64_t ts,
            std::uint32_t pid, std::uint32_t tid)
    {
        if (!enabled_)
            return;
        push({'i', name, cat, ts, 0, pid, tid, nullptr, 0.0});
    }

    /** Name the process row @p pid (metadata event). */
    void
    processName(std::uint32_t pid, const std::string &name)
    {
        if (!enabled_)
            return;
        push({'M', name, "__metadata", 0, 0, pid, 0, nullptr, 0.0});
    }

    /**
     * Concatenate @p o's buffered events after this sink's.  Used to
     * merge per-channel sinks in channel order; enables this sink if
     * @p o is enabled so merged traces survive the disabled fast path.
     */
    void append(const TraceSink &o);

    std::size_t events() const { return events_.size(); }
    const std::vector<TraceEvent> &buffered() const { return events_; }
    void clear() { events_.clear(); }

    /** Write the Trace Event JSON object format to @p os. */
    void writeJson(std::ostream &os) const;

    /** writeJson into a string (tests and small traces). */
    std::string toJson() const;

  private:
    void push(TraceEvent e) { events_.push_back(std::move(e)); }

    bool enabled_ = false;
    std::vector<TraceEvent> events_;
};

} // namespace coruscant::obs

#endif // CORUSCANT_OBS_TRACE_SINK_HPP
