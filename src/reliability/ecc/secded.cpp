#include "reliability/ecc/secded.hpp"

#include <cassert>

namespace coruscant {

namespace {

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SecdedCode::SecdedCode(std::size_t data_bits) : dataBits_(data_bits)
{
    assert(data_bits >= 1);
    // Smallest r with 2^r >= data + r + 1 (positions 1..data+r, the
    // power-of-two ones reserved for checks).
    hammingBits_ = 0;
    while ((std::size_t{1} << hammingBits_) <
           data_bits + hammingBits_ + 1)
        ++hammingBits_;

    // Map flat data index -> 1-based codeword position (skipping the
    // power-of-two check positions) and the inverse map position ->
    // flat codeword index in our [data | checks | parity] layout.
    std::size_t totalPositions = data_bits + hammingBits_;
    posToFlat_.assign(totalPositions + 1, 0);
    dataPos_.reserve(data_bits);
    std::size_t nextData = 0;
    std::size_t nextCheck = 0;
    for (std::size_t pos = 1; pos <= totalPositions; ++pos) {
        if (isPowerOfTwo(pos)) {
            posToFlat_[pos] = data_bits + nextCheck++;
        } else {
            posToFlat_[pos] = nextData;
            dataPos_.push_back(pos);
            ++nextData;
        }
    }
    assert(nextData == data_bits && nextCheck == hammingBits_);
}

BitVector
SecdedCode::checkBitsFor(const BitVector &data) const
{
    assert(data.size() == dataBits_);
    // Syndrome-style accumulation: XOR the positions of all set data
    // bits; bit k of the result is check bit 2^k before the check
    // bits themselves are folded in — which is exactly the value each
    // check bit must take to zero the fault-free syndrome.
    std::size_t acc = 0;
    std::size_t ones = 0;
    for (std::size_t i = 0; i < dataBits_; ++i) {
        if (data.get(i)) {
            acc ^= dataPos_[i];
            ++ones;
        }
    }
    BitVector check(hammingBits_ + 1);
    std::size_t checkOnes = 0;
    for (std::size_t k = 0; k < hammingBits_; ++k) {
        bool bit = (acc >> k) & 1u;
        check.set(k, bit);
        checkOnes += bit ? 1 : 0;
    }
    // Overall parity covers data + hamming checks + itself -> even.
    check.set(hammingBits_, ((ones + checkOnes) & 1u) != 0);
    return check;
}

BitVector
SecdedCode::encode(const BitVector &data) const
{
    BitVector code(codeBits());
    for (std::size_t i = 0; i < dataBits_; ++i)
        code.set(i, data.get(i));
    BitVector check = checkBitsFor(data);
    for (std::size_t k = 0; k < check.size(); ++k)
        code.set(dataBits_ + k, check.get(k));
    return code;
}

SecdedCode::Decoded
SecdedCode::decode(BitVector &data, BitVector &check) const
{
    assert(data.size() == dataBits_);
    assert(check.size() == checkBits());

    std::size_t syndrome = 0;
    std::size_t ones = 0;
    for (std::size_t i = 0; i < dataBits_; ++i) {
        if (data.get(i)) {
            syndrome ^= dataPos_[i];
            ++ones;
        }
    }
    for (std::size_t k = 0; k < hammingBits_; ++k) {
        if (check.get(k)) {
            syndrome ^= std::size_t{1} << k;
            ++ones;
        }
    }
    bool parityOdd =
        ((ones + (check.get(hammingBits_) ? 1 : 0)) & 1u) != 0;

    Decoded out;
    if (syndrome == 0 && !parityOdd)
        return out; // clean

    if (!parityOdd) {
        // Non-zero syndrome with even overall parity: an even number
        // of flips (>= 2).  Report, never touch the word.
        out.status = EccStatus::Uncorrectable;
        return out;
    }
    if (syndrome == 0) {
        // Only the overall parity bit flipped.
        check.set(hammingBits_, !check.get(hammingBits_));
        out.status = EccStatus::Corrected;
        out.correctedBit = dataBits_ + hammingBits_;
        return out;
    }
    if (syndrome >= posToFlat_.size()) {
        // Syndrome points outside the codeword: only reachable with
        // multiple flips whose positions XOR past the end.
        out.status = EccStatus::Uncorrectable;
        return out;
    }
    std::size_t flat = posToFlat_[syndrome];
    if (flat < dataBits_)
        data.set(flat, !data.get(flat));
    else
        check.set(flat - dataBits_, !check.get(flat - dataBits_));
    out.status = EccStatus::Corrected;
    out.correctedBit = flat;
    return out;
}

LineSecded::LineSecded(std::size_t line_bits, std::size_t word_bits)
    : lineBits_(line_bits), code_(word_bits)
{
    assert(word_bits >= 1 && line_bits % word_bits == 0);
}

BitVector
LineSecded::encodeCheck(const BitVector &line) const
{
    assert(line.size() == lineBits_);
    BitVector lanes(checkLanes());
    std::size_t cb = code_.checkBits();
    for (std::size_t w = 0; w < words(); ++w) {
        BitVector word = line.slice(w * wordBits(), wordBits());
        BitVector check = code_.checkBitsFor(word);
        for (std::size_t k = 0; k < cb; ++k)
            lanes.set(w * cb + k, check.get(k));
    }
    return lanes;
}

LineSecded::Result
LineSecded::correct(BitVector &line, BitVector &check) const
{
    assert(line.size() == lineBits_);
    assert(check.size() == checkLanes());
    Result res;
    std::size_t cb = code_.checkBits();
    for (std::size_t w = 0; w < words(); ++w) {
        BitVector word = line.slice(w * wordBits(), wordBits());
        BitVector wcheck = check.slice(w * cb, cb);
        SecdedCode::Decoded d = code_.decode(word, wcheck);
        if (d.status == EccStatus::Clean)
            continue;
        if (d.status == EccStatus::Uncorrectable) {
            ++res.uncorrectableWords;
            continue;
        }
        ++res.correctedWords;
        for (std::size_t i = 0; i < wordBits(); ++i)
            line.set(w * wordBits() + i, word.get(i));
        for (std::size_t k = 0; k < cb; ++k)
            check.set(w * cb + k, wcheck.get(k));
    }
    return res;
}

} // namespace coruscant
