/**
 * @file
 * Hamming SECDED (single-error-correct, double-error-detect) codes
 * over DWM lines.
 *
 * The alignment guard (PR 1) protects the *position* of a DBC's
 * domains; nothing so far protects their *contents*.  This module adds
 * the data-domain half of the reliability story: an extended Hamming
 * code per data word, with the check bits stored in dedicated
 * nanowires of the same DBC, so a line read returns data and check
 * lanes in one port access and the decoder can correct any single
 * flipped bit per word and flag (never miscorrect) any double flip.
 *
 * Code construction (standard extended Hamming):
 *  - codeword positions are numbered 1..m; positions that are powers
 *    of two hold check bits, the rest hold data bits in order;
 *  - check bit at position 2^k is the parity of all positions whose
 *    index has bit k set;
 *  - one extra overall-parity bit (position 0) covers the whole
 *    codeword and turns SEC into SECDED.
 *
 * Decoding: syndrome S = XOR of the indices of all set positions,
 * overall parity P of the stored codeword.
 *   S == 0, P even  -> clean
 *   S == 0, P odd   -> the overall parity bit itself flipped (correct)
 *   S != 0, P odd   -> single-bit error at position S (correct)
 *   S != 0, P even  -> double-bit error (detected uncorrectable)
 * A syndrome pointing past the codeword length is likewise a detected
 * uncorrectable pattern (only reachable with >= 2 flips).
 *
 * ECC deliberately does NOT cover in-situ PIM: transverse reads sense
 * raw operand lanes across words, so check bits are meaningless to a
 * TR — PIM results are protected by the paper's NMR voting instead
 * (reliability/error_model, CoruscantUnit::nmrVote).  See
 * EXPERIMENTS.md "Data-fault tolerance and ECC".
 */

#ifndef CORUSCANT_RELIABILITY_ECC_SECDED_HPP
#define CORUSCANT_RELIABILITY_ECC_SECDED_HPP

#include <cstdint>
#include <vector>

#include "util/bit_vector.hpp"

namespace coruscant {

/** How a SECDED decode resolved. */
enum class EccStatus : std::uint8_t
{
    Clean = 0,     ///< syndrome zero, parity even
    Corrected,     ///< single-bit error located and flipped back
    Uncorrectable, ///< double-bit (or detectable multi-bit) pattern
};

/** Extended Hamming code over one data word. */
class SecdedCode
{
  public:
    /** Build the code for @p data_bits-wide words (>= 1). */
    explicit SecdedCode(std::size_t data_bits);

    std::size_t dataBits() const { return dataBits_; }

    /** Hamming check bits plus the overall parity bit. */
    std::size_t checkBits() const { return hammingBits_ + 1; }

    /** Stored codeword width: data + check. */
    std::size_t codeBits() const { return dataBits_ + checkBits(); }

    /**
     * Encode @p data (size dataBits()) into a codeword laid out as
     * [data | hamming checks | overall parity] — data bits keep their
     * positions, so a fault-free codeword's data slice is the word
     * itself and the check lanes can live in separate nanowires.
     */
    BitVector encode(const BitVector &data) const;

    /** Just the checkBits() check-bit vector for @p data. */
    BitVector checkBitsFor(const BitVector &data) const;

    /** Outcome of decoding one codeword. */
    struct Decoded
    {
        EccStatus status = EccStatus::Clean;
        /**
         * Flat codeword index of the corrected bit ([0, dataBits) =
         * data, beyond = check lanes); only valid when status is
         * Corrected.
         */
        std::size_t correctedBit = 0;
    };

    /**
     * Decode in place: @p data (size dataBits()) and @p check (size
     * checkBits()) as read from the array.  A single-bit error is
     * flipped back (in whichever of the two vectors it lies);
     * a double-bit error leaves both untouched and reports
     * Uncorrectable — SECDED never miscorrects a double error.
     */
    Decoded decode(BitVector &data, BitVector &check) const;

  private:
    /** Positional (1-based) codeword index of flat data bit @p i. */
    std::size_t dataPosition(std::size_t i) const { return dataPos_[i]; }

    std::size_t dataBits_;
    std::size_t hammingBits_;
    std::vector<std::size_t> dataPos_;  ///< flat data idx -> position
    std::vector<std::size_t> posToFlat_; ///< position -> flat code idx
};

/**
 * SECDED over a whole DWM line: the line is split into equal words,
 * each independently protected, and the concatenated check bits form
 * the extra "check lanes" appended to the line's data nanowires.
 *
 * For the default 512-bit line and 64-bit words this is the classic
 * (72, 64) organization: 8 words x 8 check bits = 64 check lanes, a
 * 12.5 % capacity overhead per protected DBC.
 */
class LineSecded
{
  public:
    /**
     * @param line_bits data bits per line (multiple of @p word_bits)
     * @param word_bits protected word width
     */
    LineSecded(std::size_t line_bits, std::size_t word_bits);

    std::size_t lineBits() const { return lineBits_; }
    std::size_t wordBits() const { return code_.dataBits(); }
    std::size_t words() const { return lineBits_ / wordBits(); }

    /** Check lanes appended to the line: words() x code.checkBits(). */
    std::size_t checkLanes() const
    {
        return words() * code_.checkBits();
    }

    const SecdedCode &code() const { return code_; }

    /** Check-lane contents for @p line (size lineBits()). */
    BitVector encodeCheck(const BitVector &line) const;

    /** Aggregate outcome of decoding one line. */
    struct Result
    {
        std::uint32_t correctedWords = 0;
        std::uint32_t uncorrectableWords = 0;

        EccStatus
        status() const
        {
            if (uncorrectableWords)
                return EccStatus::Uncorrectable;
            return correctedWords ? EccStatus::Corrected
                                  : EccStatus::Clean;
        }
    };

    /**
     * Decode @p line (size lineBits()) against @p check (size
     * checkLanes()), correcting single-bit errors in place word by
     * word.  Words with double-bit errors are left untouched and
     * counted uncorrectable.
     */
    Result correct(BitVector &line, BitVector &check) const;

  private:
    std::size_t lineBits_;
    SecdedCode code_;
};

} // namespace coruscant

#endif // CORUSCANT_RELIABILITY_ECC_SECDED_HPP
