#include "reliability/error_model.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace coruscant {

namespace {

double
binomial(std::size_t n, std::size_t k)
{
    double r = 1;
    for (std::size_t i = 0; i < k; ++i)
        r = r * static_cast<double>(n - i) / static_cast<double>(i + 1);
    return r;
}

} // namespace

TrErrorModel::TrErrorModel(std::size_t trd, double p_fault)
    : trd_(trd), p(p_fault)
{
    fatalIf(trd == 0, "TRD must be positive");
    fatalIf(p_fault < 0 || p_fault > 1, "fault rate must be in [0, 1]");
}

double
TrErrorModel::perBitOrAndSuperCarry() const
{
    return p / static_cast<double>(trd_);
}

double
TrErrorModel::perBitXor() const
{
    return p;
}

double
TrErrorModel::perBitCarry() const
{
    auto flip_pairs = static_cast<double>((trd_ - 1) / 2);
    return flip_pairs * p / static_cast<double>(trd_);
}

double
TrErrorModel::addError(std::size_t bits) const
{
    // One TR per bit position; any fault corrupts the sum (directly
    // via S, or downstream via C/C').  First order in p.
    return static_cast<double>(bits) * p;
}

std::size_t
TrErrorModel::multiplyTrOpportunities(std::size_t bits) const
{
    // Optimized CSA multiply of k-bit operands (2k-bit product):
    // every reduction round transverse-reads all 2k product wires;
    // the final addition reads one wire per product bit.
    std::size_t product_bits = 2 * bits;
    std::size_t arity = trd_ <= 3 ? 2 : trd_ - 2;
    std::size_t consumed_per_round = trd_ >= 5 ? trd_ - 3 : 1;
    std::size_t rows = bits; // partial products
    std::size_t rounds = 0;
    while (rows > arity) {
        rows -= consumed_per_round;
        ++rounds;
    }
    return rounds * product_bits + product_bits;
}

double
TrErrorModel::multiplyError(std::size_t bits) const
{
    return static_cast<double>(multiplyTrOpportunities(bits)) * p;
}

double
TrErrorModel::nmrError(double per_bit_error, std::size_t n,
                       std::size_t bits) const
{
    fatalIf(n != 3 && n != 5 && n != 7, "N must be 3, 5, or 7");
    std::size_t k = (n + 1) / 2; // replicas that must agree wrongly
    // All k failures must hit the same bit with the same polarity
    // (1/2 per extra replica), and the agreeing polarity must be the
    // one that swings the vote (another 1/2) — the paper's "two
    // faults in the same bit position" condition.
    double same_polarity = std::pow(0.5, static_cast<double>(k));
    double majority = binomial(n, k)
                      * std::pow(per_bit_error,
                                 static_cast<double>(k))
                      * same_polarity;
    // Or: k-1 replica failures plus a fault in sensing the C' vote.
    double vote_fault = binomial(n, k - 1)
                        * std::pow(per_bit_error,
                                   static_cast<double>(k - 1))
                        * std::pow(0.5, static_cast<double>(k - 1))
                        * perBitOrAndSuperCarry();
    return static_cast<double>(bits) * (majority + vote_fault);
}

double
TrErrorModel::nmrAddError(std::size_t n, std::size_t bits) const
{
    return nmrError(addError(bits) / static_cast<double>(bits), n,
                    bits);
}

double
TrErrorModel::nmrMultiplyError(std::size_t n, std::size_t bits) const
{
    // The paper votes between reduction steps (Sec. V-F), so errors do
    // not accumulate across the multiply: each protected step sees the
    // raw per-TR rate, over the 2k product bits.
    return nmrError(p, n, 2 * bits);
}

} // namespace coruscant
