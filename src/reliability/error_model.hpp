/**
 * @file
 * Analytical reliability model for CORUSCANT operations (paper
 * Sec. V-F, Table V).
 *
 * Device ground truth (from the paper's LLG micromagnetics + total
 * differential analysis): a transverse read misreads its ones count by
 * exactly one level with probability ~1e-6; two-or-more-level faults
 * are negligible.
 *
 * Per-bit error rates follow from which level transitions flip each
 * output, with counts assumed uniformly distributed over the TRD
 * levels and fault direction symmetric:
 *
 *   OR / AND / C'  : one boundary level pair     -> p / TRD
 *   XOR (= S)      : every fault flips parity    -> p
 *   C              : floor((TRD-1)/2) flip pairs -> that / TRD * p
 *
 * These reproduce the paper's Table V per-bit rows exactly.
 * Operation-level rates multiply by the number of TR opportunities;
 * N-modular redundancy requires a majority of replicas to fail in the
 * same bit position with the same polarity (plus a fault in sensing
 * the C' vote itself).
 */

#ifndef CORUSCANT_RELIABILITY_ERROR_MODEL_HPP
#define CORUSCANT_RELIABILITY_ERROR_MODEL_HPP

#include <cstddef>

namespace coruscant {

/** Analytical error rates as a function of TRD and the TR fault rate. */
class TrErrorModel
{
  public:
    explicit TrErrorModel(std::size_t trd, double p_fault = 1e-6);

    std::size_t trd() const { return trd_; }
    double faultRate() const { return p; }

    // --- Per-bit rates (Table V, top block) ---------------------------

    /** OR, AND, and C' share the single-boundary structure. */
    double perBitOrAndSuperCarry() const;

    /** XOR / sum: any one-level fault flips the parity. */
    double perBitXor() const;

    /** Carry C = bit 1 of the count. */
    double perBitCarry() const;

    // --- Operation rates (Table V, middle block) ----------------------

    /** k-bit addition: one TR per bit position. */
    double addError(std::size_t bits) const;

    /**
     * k-bit multiplication via the optimized CSA strategy: per-wire TR
     * opportunities accumulate over the reduction rounds and the final
     * addition; smaller TRDs need more rounds, hence the paper's
     * higher error at C3/C5.
     */
    double multiplyError(std::size_t bits) const;

    /** Per-wire TR opportunities in a k-bit multiply (exposed). */
    std::size_t multiplyTrOpportunities(std::size_t bits) const;

    // --- N-modular redundancy (Table V, bottom block) ------------------

    /**
     * Probability an N-modular-redundant k-bit result is wrong:
     * ceil(N/2) replicas must fail at the same bit with the same
     * polarity, or enough replicas fail alongside a fault in the
     * voting TR itself.
     *
     * @param per_bit_error the protected operation's per-bit rate
     */
    double nmrError(double per_bit_error, std::size_t n,
                    std::size_t bits) const;

    /** Convenience: N-modular add / multiply error for k bits. */
    double nmrAddError(std::size_t n, std::size_t bits) const;
    double nmrMultiplyError(std::size_t n, std::size_t bits) const;

  private:
    std::size_t trd_;
    double p;
};

} // namespace coruscant

#endif // CORUSCANT_RELIABILITY_ERROR_MODEL_HPP
