#include "reliability/fault_campaign.hpp"

#include "core/coruscant_unit.hpp"
#include "reliability/error_model.hpp"
#include "util/rng.hpp"

namespace coruscant {

namespace {

DeviceParams
paramsFor(std::size_t trd, std::size_t wires)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

} // namespace

CampaignResult
FaultCampaign::addCampaign(std::size_t trd, std::size_t bits,
                           double p_fault, std::uint64_t trials,
                           std::uint64_t seed)
{
    CampaignResult res;
    res.trials = trials;
    res.analyticalRate =
        TrErrorModel(trd, p_fault).addError(bits);
    CoruscantUnit unit(paramsFor(trd, bits), p_fault, seed);
    Rng rng(seed * 7919 + 13);
    std::uint64_t mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::uint64_t a = rng.next() & mask;
        std::uint64_t b = rng.next() & mask;
        auto sum = unit.add({BitVector::fromUint64(bits, a),
                             BitVector::fromUint64(bits, b)},
                            bits, bits);
        if (sum.toUint64() != ((a + b) & mask))
            ++res.errors;
    }
    res.injectedFaults = unit.injectedFaults();
    return res;
}

CampaignResult
FaultCampaign::bulkCampaign(BulkOp op, std::size_t trd,
                            std::size_t operands, double p_fault,
                            std::uint64_t trials, std::uint64_t seed)
{
    CampaignResult res;
    const std::size_t wires = 64;
    res.trials = trials * wires; // per-bit rate
    TrErrorModel model(trd, p_fault);
    res.analyticalRate = (op == BulkOp::Xor || op == BulkOp::Xnor)
                             ? model.perBitXor()
                             : model.perBitOrAndSuperCarry();
    CoruscantUnit unit(paramsFor(trd, wires), p_fault, seed);
    CoruscantUnit golden(paramsFor(trd, wires));
    Rng rng(seed * 104729 + 7);
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::vector<BitVector> ops;
        for (std::size_t i = 0; i < operands; ++i) {
            BitVector row(wires);
            for (std::size_t w = 0; w < wires; ++w)
                row.set(w, rng.nextBool());
            ops.push_back(std::move(row));
        }
        auto noisy = unit.bulkBitwise(op, ops);
        auto clean = golden.bulkBitwise(op, ops);
        res.errors += (noisy ^ clean).popcount();
    }
    res.injectedFaults = unit.injectedFaults();
    return res;
}

CampaignResult
FaultCampaign::multiplyCampaign(std::size_t trd, std::size_t bits,
                                double p_fault, std::uint64_t trials,
                                std::uint64_t seed)
{
    CampaignResult res;
    res.trials = trials;
    res.analyticalRate =
        TrErrorModel(trd, p_fault).multiplyError(bits);
    const std::size_t lane = 2 * bits;
    CoruscantUnit unit(paramsFor(trd, lane), p_fault, seed);
    Rng rng(seed * 31337 + 3);
    std::uint64_t mask = (1ULL << bits) - 1;
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::uint64_t a = rng.next() & mask;
        std::uint64_t b = rng.next() & mask;
        auto prod = unit.multiply(BitVector::fromUint64(lane, a),
                                  BitVector::fromUint64(lane, b), bits);
        if (prod.toUint64() != a * b)
            ++res.errors;
    }
    res.injectedFaults = unit.injectedFaults();
    return res;
}

CampaignResult
FaultCampaign::nmrAddCampaign(std::size_t trd, std::size_t n,
                              std::size_t bits, double p_fault,
                              std::uint64_t trials, std::uint64_t seed)
{
    CampaignResult res;
    res.trials = trials;
    res.analyticalRate =
        TrErrorModel(trd, p_fault).nmrAddError(n, bits);
    CoruscantUnit unit(paramsFor(trd, bits), p_fault, seed);
    Rng rng(seed * 27644437 + 11);
    std::uint64_t mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::uint64_t a = rng.next() & mask;
        std::uint64_t b = rng.next() & mask;
        auto voted = unit.nmrExecute(n, [&] {
            return unit.add({BitVector::fromUint64(bits, a),
                             BitVector::fromUint64(bits, b)},
                            bits, bits);
        });
        if (voted.slice(0, bits).toUint64() != ((a + b) & mask))
            ++res.errors;
    }
    res.injectedFaults = unit.injectedFaults();
    return res;
}

} // namespace coruscant
