#include "reliability/fault_campaign.hpp"

#include "arch/dwm_memory.hpp"
#include "controller/memory_controller.hpp"
#include "core/coruscant_unit.hpp"
#include "reliability/error_model.hpp"
#include "util/rng.hpp"

namespace coruscant {

namespace {

DeviceParams
paramsFor(std::size_t trd, std::size_t wires)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

} // namespace

CampaignResult
FaultCampaign::addCampaign(std::size_t trd, std::size_t bits,
                           double p_fault, std::uint64_t trials,
                           std::uint64_t seed)
{
    CampaignResult res;
    res.trials = trials;
    res.analyticalRate =
        TrErrorModel(trd, p_fault).addError(bits);
    CoruscantUnit unit(paramsFor(trd, bits), p_fault, seed);
    Rng rng(seed * 7919 + 13);
    std::uint64_t mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::uint64_t a = rng.next() & mask;
        std::uint64_t b = rng.next() & mask;
        auto sum = unit.add({BitVector::fromUint64(bits, a),
                             BitVector::fromUint64(bits, b)},
                            bits, bits);
        if (sum.toUint64() != ((a + b) & mask))
            ++res.errors;
    }
    res.injectedFaults = unit.injectedFaults();
    return res;
}

CampaignResult
FaultCampaign::bulkCampaign(BulkOp op, std::size_t trd,
                            std::size_t operands, double p_fault,
                            std::uint64_t trials, std::uint64_t seed)
{
    CampaignResult res;
    const std::size_t wires = 64;
    res.trials = trials * wires; // per-bit rate
    TrErrorModel model(trd, p_fault);
    res.analyticalRate = (op == BulkOp::Xor || op == BulkOp::Xnor)
                             ? model.perBitXor()
                             : model.perBitOrAndSuperCarry();
    CoruscantUnit unit(paramsFor(trd, wires), p_fault, seed);
    CoruscantUnit golden(paramsFor(trd, wires));
    Rng rng(seed * 104729 + 7);
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::vector<BitVector> ops;
        for (std::size_t i = 0; i < operands; ++i) {
            BitVector row(wires);
            for (std::size_t w = 0; w < wires; ++w)
                row.set(w, rng.nextBool());
            ops.push_back(std::move(row));
        }
        auto noisy = unit.bulkBitwise(op, ops);
        auto clean = golden.bulkBitwise(op, ops);
        res.errors += (noisy ^ clean).popcount();
    }
    res.injectedFaults = unit.injectedFaults();
    return res;
}

CampaignResult
FaultCampaign::multiplyCampaign(std::size_t trd, std::size_t bits,
                                double p_fault, std::uint64_t trials,
                                std::uint64_t seed)
{
    CampaignResult res;
    res.trials = trials;
    res.analyticalRate =
        TrErrorModel(trd, p_fault).multiplyError(bits);
    const std::size_t lane = 2 * bits;
    CoruscantUnit unit(paramsFor(trd, lane), p_fault, seed);
    Rng rng(seed * 31337 + 3);
    std::uint64_t mask = (1ULL << bits) - 1;
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::uint64_t a = rng.next() & mask;
        std::uint64_t b = rng.next() & mask;
        auto prod = unit.multiply(BitVector::fromUint64(lane, a),
                                  BitVector::fromUint64(lane, b), bits);
        if (prod.toUint64() != a * b)
            ++res.errors;
    }
    res.injectedFaults = unit.injectedFaults();
    return res;
}

CampaignResult
FaultCampaign::nmrAddCampaign(std::size_t trd, std::size_t n,
                              std::size_t bits, double p_fault,
                              std::uint64_t trials, std::uint64_t seed)
{
    CampaignResult res;
    res.trials = trials;
    res.analyticalRate =
        TrErrorModel(trd, p_fault).nmrAddError(n, bits);
    CoruscantUnit unit(paramsFor(trd, bits), p_fault, seed);
    Rng rng(seed * 27644437 + 11);
    std::uint64_t mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::uint64_t a = rng.next() & mask;
        std::uint64_t b = rng.next() & mask;
        auto voted = unit.nmrExecute(n, [&] {
            return unit.add({BitVector::fromUint64(bits, a),
                             BitVector::fromUint64(bits, b)},
                            bits, bits);
        });
        if (voted.slice(0, bits).toUint64() != ((a + b) & mask))
            ++res.errors;
    }
    res.injectedFaults = unit.injectedFaults();
    return res;
}

ControllerCampaignResult
FaultCampaign::controllerCampaign(const ControllerCampaignConfig &ccfg)
{
    // A deliberately small memory: the campaign revisits the same few
    // DBCs so wear accumulates and retirement is reachable.
    MemoryConfig mcfg;
    mcfg.banks = 2;
    mcfg.subarraysPerBank = 2;
    mcfg.tilesPerSubarray = 2;
    mcfg.dbcsPerTile = 2;
    mcfg.pimDbcsPerSubarray = 1;
    mcfg.device.wiresPerDbc = 64;
    mcfg.reliability.shiftFaultRate = ccfg.shiftFaultRate;
    mcfg.reliability.shiftFaultSeed = ccfg.seed;
    mcfg.reliability.guardPolicy = ccfg.policy;
    mcfg.reliability.maxRetries = ccfg.maxRetries;
    mcfg.reliability.retireThreshold = ccfg.retireThreshold;
    mcfg.reliability.dataFaultRate = ccfg.dataFaultRate;
    mcfg.reliability.stuckAtFraction = ccfg.stuckAtFraction;
    mcfg.reliability.retentionRatePerCycle =
        ccfg.retentionRatePerCycle;
    mcfg.reliability.dataFaultSeed = ccfg.seed ^ 0xda7af17u;
    mcfg.reliability.eccMode = ccfg.ecc;
    mcfg.reliability.pimNmr = ccfg.pimNmr;

    DwmMainMemory mem(mcfg);
    MemoryController ctrl(mem);
    if (ccfg.metrics != nullptr) {
        mem.attachObs(*ccfg.metrics, ccfg.trace);
        ctrl.attachObs(&ccfg.metrics->component("controller"),
                       ccfg.trace);
    } else if (ccfg.trace != nullptr) {
        ctrl.attachObs(nullptr, ccfg.trace);
    }
    Rng rng(ccfg.seed * 6364136223846793005ULL + 1442695040888963407ULL);

    const std::size_t wires = mcfg.device.wiresPerDbc;
    const std::size_t rows = mcfg.device.domainsPerWire;
    const std::size_t lanes = wires / ccfg.blockSize;
    const std::uint64_t lane_mask =
        ccfg.blockSize >= 64 ? ~0ULL : ((1ULL << ccfg.blockSize) - 1);

    ControllerCampaignResult res;
    res.trials = ccfg.trials;
    for (std::uint64_t t = 0; t < ccfg.trials; ++t) {
        // Operands occupy consecutive rows of one random DBC; the
        // destination row sits just past them so ladder re-reads never
        // see a partially overwritten operand.
        std::uint64_t fix0 = mem.correctedMisalignments();
        std::uint64_t due0 = mem.uncorrectableEvents();
        std::uint64_t ecc_fix0 = mem.eccCorrections();
        std::uint64_t ecc_due0 = mem.eccDetectedUncorrectable();
        LineAddress loc;
        loc.bank = rng.next() % mcfg.banks;
        loc.subarray = rng.next() % mcfg.subarraysPerBank;
        loc.tile = rng.next() % mcfg.tilesPerSubarray;
        loc.dbc = rng.next() % mcfg.dbcsPerTile;
        loc.row = rng.next() % (rows - ccfg.operands);

        std::vector<std::uint64_t> golden(lanes, 0);
        std::uint64_t src = 0;
        for (std::size_t i = 0; i < ccfg.operands; ++i) {
            BitVector row(wires);
            for (std::size_t l = 0; l < lanes; ++l) {
                std::uint64_t v = rng.next() & lane_mask;
                row.insertUint64(l * ccfg.blockSize, ccfg.blockSize, v);
                golden[l] = (golden[l] + v) & lane_mask;
            }
            LineAddress op_loc = loc;
            op_loc.row = loc.row + i;
            std::uint64_t addr = mem.addressMap().encode(op_loc);
            if (i == 0)
                src = addr;
            mem.writeLine(addr, row);
        }
        LineAddress dst_loc = loc;
        dst_loc.row = loc.row + ccfg.operands;
        std::uint64_t dst = mem.addressMap().encode(dst_loc);

        CpimInstruction inst;
        inst.op = CpimOp::Add;
        inst.src = src;
        inst.dst = dst;
        inst.operands = static_cast<std::uint8_t>(ccfg.operands);
        inst.blockSize = static_cast<std::uint16_t>(ccfg.blockSize);
        ExecReport rep = ctrl.executeGuarded(inst);

        BitVector got = mem.readLine(dst);
        bool match = true;
        for (std::size_t l = 0; l < lanes && match; ++l)
            match = got.sliceUint64(l * ccfg.blockSize,
                                    ccfg.blockSize) == golden[l];

        // DUE/SDC taxonomy over the whole trial (staging writes,
        // execution, readback): a flagged trial is a DUE whether or
        // not the result happens to be right; an unflagged wrong
        // result is the silent corruption the guard exists to prevent.
        bool flagged = rep.outcome == ExecOutcome::Uncorrectable ||
                       rep.outcome == ExecOutcome::SparesExhausted ||
                       mem.uncorrectableEvents() > due0 ||
                       mem.eccDetectedUncorrectable() > ecc_due0;
        bool fixed = rep.outcome == ExecOutcome::Corrected ||
                     mem.correctedMisalignments() > fix0 ||
                     mem.eccCorrections() > ecc_fix0;
        if (flagged)
            ++res.due;
        else if (!match)
            ++res.sdc;
        else if (fixed)
            ++res.corrected;
        else
            ++res.clean;
    }

    ScrubReport sweep = mem.scrubAll();
    res.residualAfterScrub = sweep.uncorrectable;
    res.injectedFaults = mem.injectedShiftFaults();
    res.guardChecks = mem.guardChecks();
    res.correctivePulses = mem.correctedMisalignments();
    res.retiredDbcs = mem.retiredDbcs();
    res.dataFaultsInjected = mem.injectedDataFaults();
    res.eccCorrections = mem.eccCorrections();
    res.eccDue = mem.eccDetectedUncorrectable();
    return res;
}

} // namespace coruscant
