/**
 * @file
 * Monte-Carlo fault-injection campaigns.
 *
 * Cross-validates the analytical TrErrorModel: operations run on the
 * functional simulator with the TR fault injector enabled at an
 * elevated rate (1e-6 is uneconomical to sample), and the empirical
 * error rate is compared against the analytical prediction evaluated
 * at the same rate.
 */

#ifndef CORUSCANT_RELIABILITY_FAULT_CAMPAIGN_HPP
#define CORUSCANT_RELIABILITY_FAULT_CAMPAIGN_HPP

#include <cstdint>

#include "arch/config.hpp"
#include "core/pim_logic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace coruscant {

/** Outcome of one injection campaign. */
struct CampaignResult
{
    std::uint64_t trials = 0;
    std::uint64_t errors = 0;
    std::uint64_t injectedFaults = 0;
    double analyticalRate = 0.0;

    double
    empiricalRate() const
    {
        return trials == 0 ? 0.0
                           : static_cast<double>(errors) /
                                 static_cast<double>(trials);
    }
};

/**
 * Configuration of an end-to-end controller campaign: cpim packed
 * additions executed through the full memory + controller stack with
 * shifting faults injected at @ref shiftFaultRate per pulse.
 */
struct ControllerCampaignConfig
{
    double shiftFaultRate = 1e-3;
    GuardPolicy policy = GuardPolicy::PerAccess;
    std::uint64_t trials = 500;
    std::uint64_t seed = 1;
    std::size_t operands = 5;       ///< rows summed per cpim add
    std::size_t blockSize = 8;      ///< packed-lane width
    std::size_t maxRetries = 2;
    std::uint64_t retireThreshold = 0; ///< 0 disables DBC retirement

    // Data-domain fault axis (ISSUE 5): content faults + protection.
    double dataFaultRate = 0.0;     ///< per-bit transient flip / access
    double stuckAtFraction = 0.0;   ///< fraction of domains stuck-at
    double retentionRatePerCycle = 0.0; ///< per-bit per-cycle decay
    EccMode ecc = EccMode::None;    ///< line protection
    std::size_t pimNmr = 1;         ///< PIM replication (1/3/5/7)

    /**
     * Optional observability (non-owning): when set, the campaign's
     * internal memory and controller attach to these, so the caller
     * sees per-component primitive counters ("memory", "memory/dbc",
     * "guard", "controller") and per-cpim spans for the whole run.
     */
    obs::MetricsRegistry *metrics = nullptr;
    obs::TraceSink *trace = nullptr;
};

/**
 * Classified outcome of an end-to-end controller campaign
 * (the DUE/SDC taxonomy; see EXPERIMENTS.md "Reliability pipeline").
 */
struct ControllerCampaignResult
{
    std::uint64_t trials = 0;
    std::uint64_t clean = 0;     ///< correct result, nothing detected
    std::uint64_t corrected = 0; ///< correct result after detect+correct
    std::uint64_t due = 0;       ///< flagged detected-uncorrectable
    std::uint64_t sdc = 0;       ///< wrong result, nothing flagged

    std::uint64_t injectedFaults = 0; ///< shift faults injected
    std::uint64_t guardChecks = 0;
    std::uint64_t correctivePulses = 0;
    std::uint64_t retiredDbcs = 0;
    std::uint64_t residualAfterScrub = 0; ///< uncorrectable in final sweep

    std::uint64_t dataFaultsInjected = 0; ///< data-domain bit faults
    std::uint64_t eccCorrections = 0;     ///< SECDED words corrected
    std::uint64_t eccDue = 0;             ///< SECDED words flagged DUE

    /** Faulty trials resolved correctly: corrected / (all non-clean). */
    double
    coverage() const
    {
        std::uint64_t faulty = corrected + due + sdc;
        return faulty == 0 ? 1.0
                           : static_cast<double>(corrected) /
                                 static_cast<double>(faulty);
    }

    /** Silent-data-corruption rate over all trials. */
    double
    sdcRate() const
    {
        return trials == 0 ? 0.0
                           : static_cast<double>(sdc) /
                                 static_cast<double>(trials);
    }
};

/** Campaign drivers for the core operations. */
class FaultCampaign
{
  public:
    /**
     * Random two-operand k-bit additions under injected TR faults.
     * An "error" is any wrong lane sum in a trial.
     */
    static CampaignResult addCampaign(std::size_t trd, std::size_t bits,
                                      double p_fault,
                                      std::uint64_t trials,
                                      std::uint64_t seed = 1);

    /** Random m-operand bulk ops under injected faults (per-bit). */
    static CampaignResult bulkCampaign(BulkOp op, std::size_t trd,
                                       std::size_t operands,
                                       double p_fault,
                                       std::uint64_t trials,
                                       std::uint64_t seed = 1);

    /** Random k-bit multiplications under injected faults. */
    static CampaignResult multiplyCampaign(std::size_t trd,
                                           std::size_t bits,
                                           double p_fault,
                                           std::uint64_t trials,
                                           std::uint64_t seed = 1);

    /** N-modular-redundant additions under injected faults. */
    static CampaignResult nmrAddCampaign(std::size_t trd, std::size_t n,
                                         std::size_t bits,
                                         double p_fault,
                                         std::uint64_t trials,
                                         std::uint64_t seed = 1);

    /**
     * End-to-end controller campaign: each trial stages random operand
     * rows through DwmMainMemory::writeLine, executes a cpim packed
     * add via MemoryController::executeGuarded, reads the result back,
     * and classifies the trial as clean, detected-corrected,
     * detected-uncorrectable (DUE), or silent data corruption (SDC)
     * against a software golden sum.  Deterministic for a fixed seed.
     */
    static ControllerCampaignResult
    controllerCampaign(const ControllerCampaignConfig &cfg);
};

} // namespace coruscant

#endif // CORUSCANT_RELIABILITY_FAULT_CAMPAIGN_HPP
