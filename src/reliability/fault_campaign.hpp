/**
 * @file
 * Monte-Carlo fault-injection campaigns.
 *
 * Cross-validates the analytical TrErrorModel: operations run on the
 * functional simulator with the TR fault injector enabled at an
 * elevated rate (1e-6 is uneconomical to sample), and the empirical
 * error rate is compared against the analytical prediction evaluated
 * at the same rate.
 */

#ifndef CORUSCANT_RELIABILITY_FAULT_CAMPAIGN_HPP
#define CORUSCANT_RELIABILITY_FAULT_CAMPAIGN_HPP

#include <cstdint>

#include "core/pim_logic.hpp"

namespace coruscant {

/** Outcome of one injection campaign. */
struct CampaignResult
{
    std::uint64_t trials = 0;
    std::uint64_t errors = 0;
    std::uint64_t injectedFaults = 0;
    double analyticalRate = 0.0;

    double
    empiricalRate() const
    {
        return trials == 0 ? 0.0
                           : static_cast<double>(errors) /
                                 static_cast<double>(trials);
    }
};

/** Campaign drivers for the core operations. */
class FaultCampaign
{
  public:
    /**
     * Random two-operand k-bit additions under injected TR faults.
     * An "error" is any wrong lane sum in a trial.
     */
    static CampaignResult addCampaign(std::size_t trd, std::size_t bits,
                                      double p_fault,
                                      std::uint64_t trials,
                                      std::uint64_t seed = 1);

    /** Random m-operand bulk ops under injected faults (per-bit). */
    static CampaignResult bulkCampaign(BulkOp op, std::size_t trd,
                                       std::size_t operands,
                                       double p_fault,
                                       std::uint64_t trials,
                                       std::uint64_t seed = 1);

    /** Random k-bit multiplications under injected faults. */
    static CampaignResult multiplyCampaign(std::size_t trd,
                                           std::size_t bits,
                                           double p_fault,
                                           std::uint64_t trials,
                                           std::uint64_t seed = 1);

    /** N-modular-redundant additions under injected faults. */
    static CampaignResult nmrAddCampaign(std::size_t trd, std::size_t n,
                                         std::size_t bits,
                                         double p_fault,
                                         std::uint64_t trials,
                                         std::uint64_t seed = 1);
};

} // namespace coruscant

#endif // CORUSCANT_RELIABILITY_FAULT_CAMPAIGN_HPP
