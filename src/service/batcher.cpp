#include "service/batcher.hpp"

#include "util/logging.hpp"

namespace coruscant {

namespace {

std::uint64_t
groupKey(std::uint32_t bank, std::uint32_t group)
{
    return (static_cast<std::uint64_t>(bank) << 32) | group;
}

} // namespace

GangBatcher::GangBatcher(std::size_t max_members,
                         std::uint64_t window_cycles)
    : maxMembers_(max_members), windowCycles_(window_cycles)
{
    fatalIf(max_members == 0, "a gang needs at least one member");
}

TrGang
GangBatcher::close(std::uint64_t key, OpenGang &&open, bool full,
                   std::uint64_t now)
{
    TrGang g;
    g.bank = static_cast<std::uint32_t>(key >> 32);
    g.dbcGroup = static_cast<std::uint32_t>(key & 0xffffffffu);
    g.readyAt = now;
    g.members = std::move(open.members);
    pending_ -= g.members.size();
    stats_.gangs += 1;
    stats_.gangedRequests += g.members.size();
    if (full)
        stats_.fullCloses += 1;
    else
        stats_.windowCloses += 1;
    return g;
}

TrGang
GangBatcher::add(const ServiceRequest &req)
{
    fatalIf(req.cls != RequestClass::BulkBitwise,
            "only bulk-bitwise requests gang");
    std::uint64_t key = groupKey(req.bank, req.dbcGroup);
    auto [it, inserted] = open_.try_emplace(key);
    if (inserted)
        it->second.deadline = req.arrival + windowCycles_;
    it->second.members.push_back(req);
    ++pending_;
    if (it->second.members.size() >= maxMembers_) {
        OpenGang g = std::move(it->second);
        open_.erase(it);
        return close(key, std::move(g), true, req.arrival);
    }
    return {};
}

std::uint64_t
GangBatcher::nextDeadline() const
{
    std::uint64_t best = ~0ull;
    for (const auto &[key, g] : open_)
        best = std::min(best, g.deadline);
    return best;
}

std::vector<TrGang>
GangBatcher::flushDue(std::uint64_t now)
{
    std::vector<TrGang> out;
    for (auto it = open_.begin(); it != open_.end();) {
        if (it->second.deadline <= now) {
            std::uint64_t key = it->first;
            std::uint64_t deadline = it->second.deadline;
            OpenGang g = std::move(it->second);
            it = open_.erase(it);
            out.push_back(close(key, std::move(g), false, deadline));
        } else {
            ++it;
        }
    }
    return out;
}

std::vector<TrGang>
GangBatcher::flushGroup(std::uint32_t bank, std::uint32_t group,
                        std::uint64_t now)
{
    std::vector<TrGang> out;
    auto it = open_.find(groupKey(bank, group));
    if (it != open_.end()) {
        std::uint64_t key = it->first;
        OpenGang g = std::move(it->second);
        open_.erase(it);
        out.push_back(close(key, std::move(g), false, now));
    }
    return out;
}

std::vector<TrGang>
GangBatcher::flushAll(std::uint64_t now)
{
    std::vector<TrGang> out;
    for (auto it = open_.begin(); it != open_.end();) {
        std::uint64_t key = it->first;
        OpenGang g = std::move(it->second);
        it = open_.erase(it);
        out.push_back(close(key, std::move(g), false, now));
    }
    return out;
}

} // namespace coruscant
