/**
 * @file
 * TR-gang batching of compatible bulk-bitwise requests.
 *
 * CORUSCANT's bulk-bitwise operation evaluates up to TRD operand rows
 * in a single transverse read (paper Sec. III-C); PIRM dispatches such
 * multi-operand operations circularly across subarrays to hide the
 * command bus.  The batcher exploits that: bulk-bitwise requests bound
 * to the same (bank, DBC alignment group) — i.e., operand rows already
 * resident under the same access-port window — are coalesced into one
 * gang of up to TRD-1 member rows plus the group's accumulator row,
 * issued as a single cpim instruction.
 *
 * A gang closes when it is full or when its oldest member has waited
 * `windowCycles` (the batching delay bound); the engine then dispatches
 * it as one unit of work.  Under load the window rarely expires —
 * gangs fill from the queue — so batching trades a bounded added
 * queueing delay at low load for a ~(TRD-1)x reduction in both
 * command-bus slots and bank occupancy per request at high load.
 */

#ifndef CORUSCANT_SERVICE_BATCHER_HPP
#define CORUSCANT_SERVICE_BATCHER_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "service/request.hpp"

namespace coruscant {

/** A closed gang, ready for dispatch as one bus/bank unit. */
struct TrGang
{
    std::uint32_t bank = 0;
    std::uint32_t dbcGroup = 0;
    std::uint64_t readyAt = 0; ///< cycle the gang closed
    std::vector<ServiceRequest> members;
};

/** Aggregate batching counters (mergeable across channels). */
struct BatchStats
{
    std::uint64_t gangs = 0;          ///< gangs dispatched
    std::uint64_t gangedRequests = 0; ///< members across all gangs
    std::uint64_t fullCloses = 0;     ///< gangs closed by capacity
    std::uint64_t windowCloses = 0;   ///< gangs closed by the window

    void
    merge(const BatchStats &o)
    {
        gangs += o.gangs;
        gangedRequests += o.gangedRequests;
        fullCloses += o.fullCloses;
        windowCloses += o.windowCloses;
    }

    double
    meanGangSize() const
    {
        return gangs ? static_cast<double>(gangedRequests) /
                           static_cast<double>(gangs)
                     : 0.0;
    }
};

/**
 * Accumulates bulk-bitwise requests into TR gangs per alignment group.
 *
 * One batcher per channel; the engine feeds it admitted bulk-bitwise
 * requests in arrival order and collects closed gangs.
 */
class GangBatcher
{
  public:
    /**
     * @param max_members  operand rows per gang (TRD - 1)
     * @param window_cycles max wait of the oldest member; 0 batches
     *                      only what is simultaneously pending
     */
    GangBatcher(std::size_t max_members, std::uint64_t window_cycles);

    /**
     * Add @p req (arriving at @p req.arrival).  Returns the closed
     * gang if this member filled it, else an empty-member gang.
     */
    TrGang add(const ServiceRequest &req);

    /** Earliest window deadline among open gangs; ~0ull when none. */
    std::uint64_t nextDeadline() const;

    /** Close and return every gang whose deadline is <= @p now. */
    std::vector<TrGang> flushDue(std::uint64_t now);

    /** Close and return all open gangs (end of run). */
    std::vector<TrGang> flushAll(std::uint64_t now);

    /**
     * Close and return the open gang bound to (@p bank, @p group), if
     * any.  Used when the group's circuit breaker opens mid-window:
     * the gang was formed before the failure and must leave the
     * batcher before new admissions are steered elsewhere.
     */
    std::vector<TrGang> flushGroup(std::uint32_t bank,
                                   std::uint32_t group,
                                   std::uint64_t now);

    const BatchStats &stats() const { return stats_; }

    /** Requests currently held in open gangs. */
    std::uint64_t pending() const { return pending_; }

  private:
    struct OpenGang
    {
        std::uint64_t deadline = 0;
        std::vector<ServiceRequest> members;
    };

    TrGang close(std::uint64_t key, OpenGang &&open, bool full,
                 std::uint64_t now);

    std::size_t maxMembers_;
    std::uint64_t windowCycles_;
    // std::map keeps deterministic iteration order (flushes happen in
    // (bank, group) key order at equal deadlines).
    std::map<std::uint64_t, OpenGang> open_;
    std::uint64_t pending_ = 0;
    BatchStats stats_;
};

} // namespace coruscant

#endif // CORUSCANT_SERVICE_BATCHER_HPP
