#include "service/fault_service.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "arch/dwm_memory.hpp"
#include "util/bit_vector.hpp"
#include "util/logging.hpp"

namespace coruscant {

const char *
requestOutcomeName(RequestOutcome o)
{
    switch (o) {
    case RequestOutcome::Clean:
        return "clean";
    case RequestOutcome::Corrected:
        return "corrected";
    case RequestOutcome::Due:
        return "due";
    case RequestOutcome::Sdc:
        return "sdc";
    case RequestOutcome::Rejected:
        return "rejected";
    }
    return "?";
}

double
ServiceFaultConfig::rateAt(std::uint64_t cycle) const
{
    double rate = shiftFaultRate;
    for (const FaultRampStep &step : ramp) {
        if (step.startCycle > cycle)
            break;
        rate = step.rate;
    }
    return rate;
}

std::vector<FaultRampStep>
ServiceFaultConfig::chaosRamp(double base, std::uint64_t duration)
{
    fatalIf(base <= 0.0, "chaos ramp needs a positive base fault rate");
    return {{0, base},
            {duration / 4, 4.0 * base},
            {duration / 2, 10.0 * base},
            {3 * (duration / 4), base}};
}

GuardServiceCosts
GuardServiceCosts::measure()
{
    // A minimal guarded memory: PerCpim keeps implicit per-access
    // checks out of the way so each checkLine charge below isolates
    // exactly one guard event; retireThreshold 1 makes the corrected
    // check below also migrate the cluster, exposing the retire charge.
    MemoryConfig mc;
    mc.banks = 1;
    mc.subarraysPerBank = 1;
    mc.tilesPerSubarray = 1;
    mc.dbcsPerTile = 2;
    mc.pimDbcsPerSubarray = 1;
    mc.reliability.guardPolicy = GuardPolicy::PerCpim;
    mc.reliability.retireThreshold = 1;
    mc.reliability.spareDbcs = 1;

    DwmMainMemory mem(mc);
    mem.writeLine(0, BitVector(mc.device.wiresPerDbc));

    GuardServiceCosts out;
    auto category = [&](const char *what) {
        auto it = mem.ledger().byCategory().find(what);
        return it == mem.ledger().byCategory().end() ? CostLedger::Entry{}
                                                     : it->second;
    };

    mem.resetCosts();
    GuardReport clean = mem.checkLine(0);
    panicIf(!clean.checked || clean.misaligned,
            "guard cost measurement: clean check misbehaved");
    out.checkCycles =
        static_cast<std::uint32_t>(category("guard").cycles);
    out.checkEnergyPj = category("guard").energyPj;

    mem.injectShiftFaultAt(0, true);
    mem.resetCosts();
    GuardReport fixed = mem.checkLine(0);
    panicIf(!fixed.corrected,
            "guard cost measurement: injected misalignment not corrected");
    out.correctCycles = static_cast<std::uint32_t>(
        category("guard").cycles + category("guard_fix").cycles);
    out.correctEnergyPj =
        category("guard").energyPj + category("guard_fix").energyPj;
    out.retireCycles =
        static_cast<std::uint32_t>(category("retire").cycles);
    out.retireEnergyPj = category("retire").energyPj;
    panicIf(out.retireCycles == 0,
            "guard cost measurement: retirement did not trigger");

    // Guard-track reset after an uncorrectable check: the structure
    // rewrite DwmMainMemory charges as "guard_reset" (rows x
    // (shift + write)); deterministic, so computed from the same
    // device parameters rather than provoking an uncorrectable state.
    std::size_t rows = mc.device.domainsPerWire;
    out.resetCycles = static_cast<std::uint32_t>(
        rows * (mc.device.shiftCycles + mc.device.writeCycles));
    out.resetEnergyPj =
        static_cast<double>(rows) *
        (mc.device.shiftEnergyPj + mc.device.writeEnergyPj);

    // ECC charges through a SECDED-enabled memory: the "ecc" category
    // is the check-lane energy riding one port access, "ecc_scrub" one
    // full sweep of the single materialized DBC (= one group's share).
    MemoryConfig emc = mc;
    emc.reliability = ReliabilityConfig{};
    emc.reliability.eccMode = EccMode::Secded;
    DwmMainMemory emem(emc);
    auto ecategory = [&](const char *what) {
        auto it = emem.ledger().byCategory().find(what);
        return it == emem.ledger().byCategory().end()
                   ? CostLedger::Entry{}
                   : it->second;
    };
    BitVector line(emc.device.wiresPerDbc);
    emem.writeLine(0, line);
    emem.resetCosts();
    emem.readLine(0);
    out.eccReadEnergyPj = ecategory("ecc").energyPj;
    emem.resetCosts();
    emem.writeLine(0, line);
    out.eccWriteEnergyPj = ecategory("ecc").energyPj;
    emem.resetCosts();
    emem.scrubEcc();
    out.eccScrubGroupCycles =
        static_cast<std::uint32_t>(ecategory("ecc_scrub").cycles);
    out.eccScrubGroupEnergyPj = ecategory("ecc_scrub").energyPj;
    panicIf(out.eccReadEnergyPj <= 0.0 || out.eccScrubGroupCycles == 0,
            "ECC cost measurement: SECDED charges did not register");
    return out;
}

ChannelDataFaultInjector::ChannelDataFaultInjector(
    const ServiceFaultConfig &cfg, std::uint64_t channel_seed,
    std::size_t line_bits, std::size_t word_bits)
    : cfg_(cfg), lineBits_(line_bits), wordBits_(word_bits),
      rng_(channel_seed)
{
    fatalIf(line_bits == 0 || word_bits == 0,
            "data fault injector needs positive line/word widths");
}

ChannelDataFaultInjector::Sample
ChannelDataFaultInjector::sample(std::uint64_t line_accesses,
                                 std::uint64_t idle_cycles)
{
    Sample s;
    // Key = flat bit position / word width, so two flips only share a
    // codeword when they land in the same word of the same access.
    std::map<std::uint64_t, std::uint32_t> words;
    auto draw = [&](std::uint64_t bits, double prob) {
        if (bits == 0 || prob <= 0.0)
            return;
        if (prob >= 1.0) {
            for (std::uint64_t pos = 0; pos < bits; ++pos)
                ++words[pos / wordBits_];
            s.flips += bits;
            injected_ += bits;
            return;
        }
        // Geometric gaps between Bernoulli successes: O(flips).
        const double denom = std::log1p(-prob);
        std::uint64_t pos = 0;
        while (true) {
            double gap =
                std::floor(std::log1p(-rng_.nextDouble()) / denom);
            if (gap >= static_cast<double>(bits - pos))
                break;
            pos += static_cast<std::uint64_t>(gap);
            ++words[pos / wordBits_];
            ++s.flips;
            ++injected_;
            if (++pos >= bits)
                break;
        }
    };
    // Retention flips materialize in the stored line and are decoded
    // by the first access, so they share access 0's codeword keyspace.
    if (cfg_.retentionRatePerCycle > 0.0 && idle_cycles > 0)
        draw(lineBits_,
             -std::expm1(-cfg_.retentionRatePerCycle *
                         static_cast<double>(idle_cycles)));
    draw(line_accesses * lineBits_,
         cfg_.dataFaultRate + 0.5 * cfg_.stuckAtFraction);
    const bool secded = cfg_.ecc == EccMode::Secded;
    for (const auto &[word, count] : words) {
        (void)word;
        if (!secded)
            ++s.sdcWords;
        else if (count == 1)
            ++s.correctedWords;
        else if (count == 2)
            ++s.dueWords;
        else
            ++s.sdcWords;
    }
    return s;
}

ChannelFaultInjector::ChannelFaultInjector(const ServiceFaultConfig &cfg,
                                           std::uint64_t channel_seed)
    : cfg_(cfg),
      model_(cfg.rateAt(0) > 0.0 ? cfg.rateAt(0) : cfg.shiftFaultRate,
             channel_seed, cfg.overShiftFraction)
{}

ChannelFaultInjector::Sample
ChannelFaultInjector::sample(std::uint64_t shifts, std::uint64_t cycle)
{
    Sample s;
    model_.setProbability(cfg_.rateAt(cycle));
    for (std::uint64_t i = 0; i < shifts; ++i) {
        switch (model_.sample()) {
        case ShiftOutcome::Normal:
            break;
        case ShiftOutcome::OverShift:
            ++s.faults;
            ++s.net;
            break;
        case ShiftOutcome::UnderShift:
            ++s.faults;
            --s.net;
            break;
        }
    }
    return s;
}

DbcHealthTracker::DbcHealthTracker(const ServiceFaultConfig &cfg,
                                   std::uint32_t banks,
                                   std::uint32_t groups)
    : cfg_(cfg), banks_(banks), groupsPerBank_(groups),
      groups_(static_cast<std::size_t>(banks) * groups),
      sparesLeft_(cfg.sparesPerChannel)
{
    fatalIf(banks == 0 || groups == 0,
            "health tracker needs at least one (bank, group)");
}

DbcHealthTracker::GroupState &
DbcHealthTracker::at(std::uint32_t bank, std::uint32_t group)
{
    return groups_[static_cast<std::size_t>(bank) * groupsPerBank_ +
                   group];
}

const DbcHealthTracker::GroupState &
DbcHealthTracker::at(std::uint32_t bank, std::uint32_t group) const
{
    return groups_[static_cast<std::size_t>(bank) * groupsPerBank_ +
                   group];
}

bool
DbcHealthTracker::available(std::uint32_t bank, std::uint32_t group,
                            std::uint64_t cycle) const
{
    const GroupState &g = at(bank, group);
    if (g.dead)
        return false;
    return !(cycle >= g.openedAt && cycle < g.openUntil);
}

bool
DbcHealthTracker::steer(std::uint32_t &bank, std::uint32_t &group,
                        std::uint64_t cycle)
{
    if (available(bank, group, cycle))
        return true;
    // Deterministic scan: sibling groups of the home bank preserve
    // bank-level parallelism; then fall back to any live group.
    for (std::uint32_t g = 0; g < groupsPerBank_; ++g) {
        if (g != group && available(bank, g, cycle)) {
            group = g;
            ++steered_;
            return true;
        }
    }
    for (std::uint32_t b = 0; b < banks_; ++b) {
        if (b == bank)
            continue;
        for (std::uint32_t g = 0; g < groupsPerBank_; ++g) {
            if (available(b, g, cycle)) {
                bank = b;
                group = g;
                ++steered_;
                return true;
            }
        }
    }
    return false;
}

DbcHealthTracker::ErrorAction
DbcHealthTracker::recordError(std::uint32_t bank, std::uint32_t group,
                              std::uint64_t cycle, bool due)
{
    ErrorAction action;
    GroupState &g = at(bank, group);
    if (g.dead)
        return action;
    std::uint64_t horizon =
        cycle >= cfg_.healthWindowCycles
            ? cycle - cfg_.healthWindowCycles
            : 0;
    g.errorCycles.erase(
        std::remove_if(g.errorCycles.begin(), g.errorCycles.end(),
                       [&](std::uint64_t c) { return c < horizon; }),
        g.errorCycles.end());
    g.errorCycles.push_back(cycle);
    bool trip =
        due || g.errorCycles.size() >= cfg_.breakerThreshold;
    if (!trip)
        return action;

    g.errorCycles.clear();
    g.trips += 1;
    g.openedAt = cycle;
    g.openUntil = cycle + cfg_.breakerCooldownCycles;
    ++breakerTrips_;
    action.breakerOpened = true;
    if (g.trips < cfg_.tripsToRetire)
        return action;

    if (sparesLeft_ > 0) {
        // Retired to a spare: the group comes back fresh once the
        // engine's migration hold (holdUntil) elapses.
        --sparesLeft_;
        ++retired_;
        g.trips = 0;
        g.misalign = 0;
        action.retired = true;
    } else {
        g.dead = true;
        ++dead_;
        action.died = true;
    }
    return action;
}

void
DbcHealthTracker::holdUntil(std::uint32_t bank, std::uint32_t group,
                            std::uint64_t cycle)
{
    GroupState &g = at(bank, group);
    g.openUntil = std::max(g.openUntil, cycle);
}

int &
DbcHealthTracker::misalign(std::uint32_t bank, std::uint32_t group)
{
    return at(bank, group).misalign;
}

} // namespace coruscant
