/**
 * @file
 * Reliability machinery for the live request-service path.
 *
 * PR 1 built the device-level pipeline — ShiftFaultModel injection,
 * AlignmentGuard detection/correction, bounded controller retry, DBC
 * retirement — but only exercised it offline through FaultCampaign.
 * This header puts the same machinery under traffic:
 *
 *  - RequestOutcome: every request completes with a typed verdict
 *    (clean / corrected / detected-uncorrectable / silent corruption /
 *    rejected), the serving-side mirror of the campaign taxonomy;
 *  - ServiceFaultConfig: per-run fault rate (optionally a chaos ramp
 *    that changes the rate mid-run), guard policy, retry ladder, and
 *    DBC-health/circuit-breaker knobs;
 *  - GuardServiceCosts: check/correct/reset/retire latencies measured
 *    through the real DwmMainMemory + AlignmentGuard (costs are not
 *    invented here — same principle as ServiceCostTable);
 *  - ChannelFaultInjector: a per-channel ShiftFaultModel sampling the
 *    shift pulses of each dispatched unit, seeded from (seed, channel)
 *    so runs are bit-identical across worker-thread counts;
 *  - DbcHealthTracker: sliding-window error rate per (bank, DBC
 *    alignment group) -> circuit breaker -> retirement to spares, plus
 *    the degradation-aware steering that keeps gang formation off
 *    broken groups and accounts for lost capacity.
 *
 * Everything here is deterministic per channel: health state advances
 * on request arrival/completion cycles, never on wall-clock or thread
 * identity, which is what keeps `serve --threads N` bit-identical.
 */

#ifndef CORUSCANT_SERVICE_FAULT_SERVICE_HPP
#define CORUSCANT_SERVICE_FAULT_SERVICE_HPP

#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "dwm/shift_fault.hpp"
#include "util/rng.hpp"

namespace coruscant {

/** Typed verdict of one service request (campaign taxonomy, online). */
enum class RequestOutcome : std::uint8_t
{
    Clean = 0, ///< completed, no fault observed
    Corrected, ///< fault(s) detected and corrected (maybe retried)
    Due,       ///< detected uncorrectable; result untrusted
    Sdc,       ///< completed on a misaligned cluster, nothing flagged
    Rejected,  ///< never served: backpressure or capacity exhaustion
};

/** Number of request outcomes (array sizing). */
inline constexpr std::size_t kRequestOutcomes = 5;

/** Short stable name for reports and JSON. */
const char *requestOutcomeName(RequestOutcome o);

/** One step of a fault-rate schedule: @ref rate from @ref startCycle on. */
struct FaultRampStep
{
    std::uint64_t startCycle = 0;
    double rate = 0.0;
};

/** Reliability configuration of one service run. */
struct ServiceFaultConfig
{
    /** Probability a single shift pulse over-/under-shifts. */
    double shiftFaultRate = 0.0;

    /** Fraction of faults that are over-shifts. */
    double overShiftFraction = 0.5;

    /**
     * Chaos schedule: when non-empty, overrides shiftFaultRate with a
     * piecewise-constant rate over the run (steps sorted by cycle).
     */
    std::vector<FaultRampStep> ramp;

    /** Alignment-check cadence applied to dispatched units. */
    GuardPolicy policy = GuardPolicy::PerAccess;

    /** Bounded per-request retry ladder depth. */
    std::size_t maxRetries = 2;

    /** First retry waits this long; doubles per further attempt. */
    std::uint64_t retryBackoffCycles = 64;

    /** Sliding window for the per-group detected-error rate. */
    std::uint64_t healthWindowCycles = 20000;

    /** Detected errors within the window that open the breaker. */
    std::uint32_t breakerThreshold = 8;

    /** Cycles a tripped breaker keeps its group out of steering. */
    std::uint64_t breakerCooldownCycles = 10000;

    /** Breaker trips after which the group is retired to a spare. */
    std::uint32_t tripsToRetire = 3;

    /** Spare DBC groups available per channel for retirement. */
    std::uint32_t sparesPerChannel = 4;

    /** Cycles between scrub sweeps under GuardPolicy::PeriodicScrub. */
    std::uint64_t scrubIntervalCycles = 4096;

    // --- Data-domain faults (content, not alignment) -----------------

    /** Per-bit transient flip probability per line access. */
    double dataFaultRate = 0.0;

    /** Fraction of domains frozen stuck-at (stationary population). */
    double stuckAtFraction = 0.0;

    /** Per-bit retention-decay rate per idle cycle. */
    double retentionRatePerCycle = 0.0;

    /** SECDED line protection on the port path (TRs bypass it). */
    EccMode ecc = EccMode::None;

    /** PIM replication factor (1/3/5/7) under data faults. */
    std::size_t pimNmr = 1;

    /** Whether any data-domain fault source is active. */
    bool
    dataFaultsEnabled() const
    {
        return dataFaultRate > 0.0 || stuckAtFraction > 0.0 ||
               retentionRatePerCycle > 0.0;
    }

    /** Whether the fault pipeline is active for a run. */
    bool
    enabled() const
    {
        return shiftFaultRate > 0.0 || !ramp.empty() ||
               dataFaultsEnabled();
    }

    /** Fault rate in effect at @p cycle (ramp, else the flat rate). */
    double rateAt(std::uint64_t cycle) const;

    /**
     * Built-in chaos schedule for `serve --chaos`: quarters of the run
     * at base, 4x, 10x, and back to base — a mid-run fault storm the
     * breaker/retirement machinery must absorb and recover from.
     */
    static std::vector<FaultRampStep> chaosRamp(double base,
                                                std::uint64_t duration);
};

/**
 * Guard-maintenance latencies/energies for the service timing model,
 * measured once per engine run through the real reliability pipeline
 * (a guarded DwmMainMemory with an injected misalignment), so the
 * service layer folds the same correction costs into request latency
 * that the cycle-accurate campaigns charge.
 */
struct GuardServiceCosts
{
    std::uint32_t checkCycles = 0;   ///< one clean guard check
    double checkEnergyPj = 0.0;
    std::uint32_t correctCycles = 0; ///< detect + fix one misalignment
    double correctEnergyPj = 0.0;
    std::uint32_t resetCycles = 0;   ///< guard-track rewrite after a DUE
    double resetEnergyPj = 0.0;
    std::uint32_t retireCycles = 0;  ///< migrate a DBC group to a spare
    double retireEnergyPj = 0.0;

    // ECC charges, measured through a SECDED-enabled DwmMainMemory.
    // Check lanes ride the data's shift pulses and port strobe, so
    // per-access protection costs energy, not cycles; the scrub sweep
    // occupies the bank like any maintenance unit.
    double eccReadEnergyPj = 0.0;  ///< check-lane energy per line read
    double eccWriteEnergyPj = 0.0; ///< check-lane energy per line write
    std::uint32_t eccScrubGroupCycles = 0; ///< ECC-sweep one DBC group
    double eccScrubGroupEnergyPj = 0.0;

    /** Measure against the default guarded device configuration. */
    static GuardServiceCosts measure();
};

/**
 * Per-channel shift-fault source: one ShiftFaultModel sampling every
 * shift pulse of every dispatched unit, with the chaos ramp applied by
 * dispatch cycle.  Seeded from (seed, channel) — never from the worker
 * thread — so the fault stream a channel sees is a pure function of
 * the configuration.
 */
class ChannelFaultInjector
{
  public:
    ChannelFaultInjector(const ServiceFaultConfig &cfg,
                         std::uint64_t channel_seed);

    /** What the faults of one dispatched unit amount to. */
    struct Sample
    {
        std::uint32_t faults = 0; ///< misbehaving pulses
        int net = 0;              ///< net misalignment (+over, -under)
    };

    /** Sample @p shifts pulses of a unit dispatched at @p cycle. */
    Sample sample(std::uint64_t shifts, std::uint64_t cycle);

    /** Faults injected into this channel so far. */
    std::uint64_t injected() const { return model_.injectedFaults(); }

  private:
    const ServiceFaultConfig &cfg_;
    ShiftFaultModel model_;
};

/**
 * Per-channel data-domain fault source: the statistical mirror of the
 * device-level DataFaultModel for the service timing model.  Every
 * line access of a dispatched unit exposes the line's bits to
 * transient flips plus the half of the stationary stuck-at population
 * whose frozen polarity disagrees with the stored data; the first
 * access additionally pays retention decay accumulated while the
 * (bank, group) sat idle.  Flips are placed by geometric gap sampling
 * (O(flips), not O(bits)) and classified per SECDED codeword: one
 * flip corrects in-line, two are a detected-uncorrectable, three or
 * more alias the syndrome — silent corruption.  With ECC off every
 * flipped word is silent.  Seeded from (seed, channel), never from
 * the worker thread, so `serve --threads N` stays bit-identical.
 */
class ChannelDataFaultInjector
{
  public:
    ChannelDataFaultInjector(const ServiceFaultConfig &cfg,
                             std::uint64_t channel_seed,
                             std::size_t line_bits,
                             std::size_t word_bits);

    /** Per-codeword classification of one unit's data faults. */
    struct Sample
    {
        std::uint64_t flips = 0;          ///< raw bits flipped
        std::uint32_t correctedWords = 0; ///< single-bit, SECDED fixes
        std::uint32_t dueWords = 0;       ///< double-bit, detected
        std::uint32_t sdcWords = 0;       ///< >=3 bits, or ECC off
    };

    /**
     * Sample the faults of one unit making @p line_accesses port
     * accesses, the first of which lands on a line idle for
     * @p idle_cycles (retention exposure).
     */
    Sample sample(std::uint64_t line_accesses,
                  std::uint64_t idle_cycles);

    /** Data-domain bit flips injected into this channel so far. */
    std::uint64_t injected() const { return injected_; }

  private:
    const ServiceFaultConfig &cfg_;
    std::size_t lineBits_;
    std::size_t wordBits_;
    Rng rng_;
    std::uint64_t injected_ = 0;
};

/**
 * Health and capacity state of one channel's (bank, DBC-group) homes.
 *
 * Detected errors (corrections and DUEs) are recorded per group with
 * their completion cycle; when a group accumulates
 * `breakerThreshold` errors within `healthWindowCycles`, its circuit
 * breaker opens for `breakerCooldownCycles` and steering routes new
 * requests to surviving groups.  After `tripsToRetire` trips the group
 * is retired: migrated to a spare when one is left (capacity
 * preserved, migration charged by the engine), or marked dead when the
 * pool is exhausted — a permanent capacity loss surfaced as typed
 * Rejected outcomes once no live group remains.
 */
class DbcHealthTracker
{
  public:
    DbcHealthTracker(const ServiceFaultConfig &cfg, std::uint32_t banks,
                     std::uint32_t groups);

    /** Whether (bank, group) can accept new work at @p cycle. */
    bool available(std::uint32_t bank, std::uint32_t group,
                   std::uint64_t cycle) const;

    /**
     * Route (@p bank, @p group) to an available home at @p cycle,
     * preferring the original, then sibling groups of the same bank,
     * then other banks (deterministic scan order).  Returns false when
     * every group in the channel is dead or breaker-open — the typed
     * capacity-rejection path.
     */
    bool steer(std::uint32_t &bank, std::uint32_t &group,
               std::uint64_t cycle);

    /** What recording an error decided (for accounting and tracing). */
    struct ErrorAction
    {
        bool breakerOpened = false;
        bool retired = false;  ///< group replaced by a spare
        bool died = false;     ///< spare pool exhausted; group lost
    };

    /**
     * Record a detected error on (bank, group) at completion
     * @p cycle.  A DUE trips the breaker immediately; corrected errors
     * trip it when the sliding window fills.
     */
    ErrorAction recordError(std::uint32_t bank, std::uint32_t group,
                            std::uint64_t cycle, bool due);

    /** Keep (bank, group) out of steering until @p cycle (migration). */
    void holdUntil(std::uint32_t bank, std::uint32_t group,
                   std::uint64_t cycle);

    /**
     * Net physical misalignment of the group's cluster — the sticky
     * state unguarded traffic accumulates and scrub sweeps clear.
     */
    int &misalign(std::uint32_t bank, std::uint32_t group);

    std::uint64_t breakerTrips() const { return breakerTrips_; }
    std::uint64_t retiredGroups() const { return retired_; }
    std::uint64_t deadGroups() const { return dead_; }
    std::uint64_t steeredRequests() const { return steered_; }
    std::uint32_t sparesLeft() const { return sparesLeft_; }

    /** Fraction of the channel's groups permanently lost. */
    double
    capacityLossFraction() const
    {
        return groups_.empty()
                   ? 0.0
                   : static_cast<double>(dead_) /
                         static_cast<double>(groups_.size());
    }

  private:
    struct GroupState
    {
        std::vector<std::uint64_t> errorCycles; ///< recent, pruned
        std::uint64_t openedAt = ~0ull; ///< breaker/migration start
        std::uint64_t openUntil = 0;    ///< unavailable before this
        std::uint32_t trips = 0;
        bool dead = false;
        int misalign = 0;
    };

    GroupState &at(std::uint32_t bank, std::uint32_t group);
    const GroupState &at(std::uint32_t bank, std::uint32_t group) const;

    const ServiceFaultConfig &cfg_;
    std::uint32_t banks_ = 0;
    std::uint32_t groupsPerBank_ = 0;
    std::vector<GroupState> groups_;
    std::uint64_t breakerTrips_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t dead_ = 0;
    std::uint64_t steered_ = 0;
    std::uint32_t sparesLeft_ = 0;
};

} // namespace coruscant

#endif // CORUSCANT_SERVICE_FAULT_SERVICE_HPP
