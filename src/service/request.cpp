#include "service/request.hpp"

#include "arch/timing.hpp"
#include "core/op_cost.hpp"
#include "util/logging.hpp"

namespace coruscant {

const char *
requestClassName(RequestClass cls)
{
    switch (cls) {
    case RequestClass::Read:
        return "read";
    case RequestClass::Write:
        return "write";
    case RequestClass::BulkBitwise:
        return "bulk";
    case RequestClass::MultiOpAdd:
        return "add";
    case RequestClass::Reduce:
        return "reduce";
    case RequestClass::MacTile:
        return "mac";
    }
    return "?";
}

ServiceCostTable
ServiceCostTable::build(std::size_t trd)
{
    fatalIf(trd < 2, "service cost table needs TRD >= 2");
    ServiceCostTable t;
    t.trd_ = trd;
    CoruscantCostModel cost(trd);

    // Plain line traffic: paper Table II DWM timing with an average
    // shift distance of a quarter of the wire (random row targets).
    const DdrTiming dwm = DdrTiming::dwm();
    const unsigned avg_shift = 8; // domainsPerWire / 4
    t.readLine_ = {1, dwm.readCycles(avg_shift), 0.05 * 512};
    t.writeLine_ = {1, dwm.writeCycles(avg_shift), 0.1 * 512};
    t.readPrims_ = {avg_shift, 0, 0, 1, 0};
    t.writePrims_ = {avg_shift, 0, 0, 0, 1};

    // A k-member gang folds k operand rows plus the accumulator row
    // into one (k+1)-operand bulk op; one cpim command issues it.
    t.gang_.resize(trd - 1);
    t.gangPrims_.resize(trd - 1);
    for (std::size_t k = 1; k + 1 <= trd; ++k) {
        OpCost c = cost.bulkBitwise(k + 1);
        t.gang_[k - 1] = {1, static_cast<std::uint32_t>(c.cycles),
                          c.energyPj};
        t.gangPrims_[k - 1] = c.prims;
    }

    std::size_t max_add = cost.maxAddOperands();
    t.addByOperands_.resize(max_add);
    t.addPrims_.resize(max_add);
    t.addByOperands_[0] = {1, 0, 0.0}; // 1-operand add never issued
    for (std::size_t m = 2; m <= max_add; ++m) {
        OpCost c = cost.add(m, 8);
        t.addByOperands_[m - 1] = {1,
                                   static_cast<std::uint32_t>(c.cycles),
                                   c.energyPj};
        t.addPrims_[m - 1] = c.prims;
    }

    OpCost red = cost.reduce();
    t.reduce_ = {1, static_cast<std::uint32_t>(red.cycles),
                 red.energyPj};
    t.reducePrims_ = red.prims;

    // One MAC lane = an 8-bit multiply plus the accumulate add; each
    // lane is its own cpim instruction on the command bus.
    OpCost mul = cost.multiply(8);
    OpCost acc = cost.add(2, 8);
    t.macPrims_ = {mul.prims.shifts + acc.prims.shifts,
                   mul.prims.trPulses + acc.prims.trPulses,
                   mul.prims.twPulses + acc.prims.twPulses,
                   mul.prims.reads + acc.prims.reads,
                   mul.prims.writes + acc.prims.writes};
    t.macLane_ = {2, static_cast<std::uint32_t>(mul.cycles + acc.cycles),
                  mul.energyPj + acc.energyPj};
    return t;
}

RequestCost
ServiceCostTable::cost(const ServiceRequest &req) const
{
    std::uint32_t n = req.size ? req.size : 1;
    switch (req.cls) {
    case RequestClass::Read:
        return {readLine_.issueCmds * n, readLine_.serviceCycles * n,
                readLine_.energyPj * n};
    case RequestClass::Write:
        return {writeLine_.issueCmds * n, writeLine_.serviceCycles * n,
                writeLine_.energyPj * n};
    case RequestClass::BulkBitwise:
        return gangCost(1); // alone, a request is a 2-operand fold
    case RequestClass::MultiOpAdd:
        return addCost(n);
    case RequestClass::Reduce:
        return reduce_;
    case RequestClass::MacTile:
        return {macLane_.issueCmds * n, macLane_.serviceCycles * n,
                macLane_.energyPj * n};
    }
    fatal("unknown request class");
}

RequestCost
ServiceCostTable::gangCost(std::size_t members) const
{
    fatalIf(members == 0 || members > gang_.size(),
            "gang size out of range");
    return gang_[members - 1];
}

RequestCost
ServiceCostTable::addCost(std::size_t operands) const
{
    fatalIf(operands < 2 || operands > addByOperands_.size(),
            "add operand count out of range");
    return addByOperands_[operands - 1];
}

obs::PrimCounts
ServiceCostTable::prims(const ServiceRequest &req) const
{
    std::uint32_t n = req.size ? req.size : 1;
    switch (req.cls) {
    case RequestClass::Read:
        return readPrims_.scaled(n);
    case RequestClass::Write:
        return writePrims_.scaled(n);
    case RequestClass::BulkBitwise:
        return gangPrims(1); // alone, a request is a 2-operand fold
    case RequestClass::MultiOpAdd:
        fatalIf(n < 2 || n > addPrims_.size(),
                "add operand count out of range");
        return addPrims_[n - 1];
    case RequestClass::Reduce:
        return reducePrims_;
    case RequestClass::MacTile:
        return macPrims_.scaled(n);
    }
    fatal("unknown request class");
}

obs::PrimCounts
ServiceCostTable::gangPrims(std::size_t members) const
{
    fatalIf(members == 0 || members > gangPrims_.size(),
            "gang size out of range");
    return gangPrims_[members - 1];
}

} // namespace coruscant
