/**
 * @file
 * Typed requests for the PIM service layer.
 *
 * The service layer models sustained traffic against a CORUSCANT
 * memory system: a stream of independent requests, each bound to a
 * (channel, bank, DBC alignment group) home and carrying enough
 * typing for the batcher to recognize coalescing opportunities.
 *
 * Request classes mirror the workloads the repo already reproduces in
 * closed form:
 *  - Read/Write      ordinary DWM line traffic (paper Fig. 4(a) orange
 *                    path), shift-aware DDR timing;
 *  - BulkBitwise     one operand row folded into an associative AND/OR
 *                    accumulator resident in the request's DBC group
 *                    (the bitmap-index pattern of Fig. 12) — the
 *                    batchable class: k compatible requests become one
 *                    (k+1)-operand transverse-read gang;
 *  - MultiOpAdd      an m-operand addition (Sec. V-B);
 *  - Reduce          a TRD->3 row reduction;
 *  - MacTile         a CNN tile of multiply-accumulate lanes
 *                    (Table IV workloads).
 *
 * Costs are not invented here: ServiceCostTable measures each class
 * through CoruscantCostModel (the functional simulator's ledger) and
 * the paper's Table II DWM DDR timing, so the service layer and the
 * closed-form experiments charge identical cycle counts.
 */

#ifndef CORUSCANT_SERVICE_REQUEST_HPP
#define CORUSCANT_SERVICE_REQUEST_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace coruscant {

/** Request taxonomy of the service layer. */
enum class RequestClass : std::uint8_t
{
    Read = 0,
    Write,
    BulkBitwise,
    MultiOpAdd,
    Reduce,
    MacTile,
};

/** Number of request classes (array sizing). */
inline constexpr std::size_t kRequestClasses = 6;

/** Short stable name for reports and the CLI mix syntax. */
const char *requestClassName(RequestClass cls);

/** One request in flight through the service layer. */
struct ServiceRequest
{
    std::uint64_t id = 0;       ///< unique within its channel
    RequestClass cls = RequestClass::Read;
    std::uint64_t arrival = 0;  ///< cycle the request enters the queue
    std::uint32_t bank = 0;     ///< home bank/subarray in its channel
    std::uint32_t dbcGroup = 0; ///< DBC alignment group within the bank
    std::uint32_t size = 1;     ///< class-specific size (lines,
                                ///< operands, or MAC lanes)
};

/**
 * Issue/occupancy cost of one dispatched unit of work.
 *
 * Deliberately small: one of these is built per dispatched request on
 * the engine's hot path. The device primitives behind a cost are kept
 * in parallel tables and fetched via ServiceCostTable::prims() /
 * gangPrims() only when metrics collection is enabled.
 */
struct RequestCost
{
    std::uint32_t issueCmds = 1;      ///< command-bus slots
    std::uint32_t serviceCycles = 0;  ///< bank occupancy after issue
    double energyPj = 0.0;
};

/**
 * Measured per-class costs for one device configuration.
 *
 * Built once per engine run (the functional-simulator measurements are
 * not free) and shared read-only across worker threads.
 */
class ServiceCostTable
{
  public:
    /** Measure costs for a TRD-@p trd device. */
    static ServiceCostTable build(std::size_t trd);

    /** Cost of @p req when dispatched alone (no ganging). */
    RequestCost cost(const ServiceRequest &req) const;

    /**
     * Cost of a TR gang folding @p members operand rows into a DBC
     * accumulator with one multi-operand bulk-bitwise op
     * (1 <= members <= maxGangOperands()).
     */
    RequestCost gangCost(std::size_t members) const;

    /** Largest number of requests one gang can absorb (TRD - 1). */
    std::size_t maxGangOperands() const { return gang_.size(); }

    std::size_t trd() const { return trd_; }

    /** Largest operand count a MultiOpAdd request may carry. */
    std::size_t maxAddOperands() const { return addByOperands_.size(); }

    /** Cost of an m-operand add (2 <= m <= maxAddOperands()). */
    RequestCost addCost(std::size_t operands) const;

    /**
     * Device primitives behind cost(@p req). Kept off the RequestCost
     * hot path; call only when metrics collection is enabled.
     */
    obs::PrimCounts prims(const ServiceRequest &req) const;

    /** Device primitives behind gangCost(@p members). */
    obs::PrimCounts gangPrims(std::size_t members) const;

  private:
    std::size_t trd_ = 0;
    RequestCost readLine_;
    RequestCost writeLine_;
    std::vector<RequestCost> gang_;          ///< [k-1] = k-member gang
    std::vector<RequestCost> addByOperands_; ///< [m-1] = m-operand add
    RequestCost reduce_;
    RequestCost macLane_;
    // Device primitives per table entry, parallel to the costs above.
    obs::PrimCounts readPrims_;
    obs::PrimCounts writePrims_;
    std::vector<obs::PrimCounts> gangPrims_;
    std::vector<obs::PrimCounts> addPrims_;
    obs::PrimCounts reducePrims_;
    obs::PrimCounts macPrims_;
};

} // namespace coruscant

#endif // CORUSCANT_SERVICE_REQUEST_HPP
