#include "service/service_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <functional>
#include <optional>
#include <queue>
#include <sstream>
#include <thread>
#include <vector>

#include "util/logging.hpp"

namespace coruscant {

void
ClassStats::merge(const ClassStats &o)
{
    generated += o.generated;
    admitted += o.admitted;
    rejected += o.rejected;
    completed += o.completed;
    maxQueueDepth = std::max(maxQueueDepth, o.maxQueueDepth);
    latency.merge(o.latency);
}

double
ServiceStats::throughputPerKcycle() const
{
    return makespan ? 1000.0 * static_cast<double>(completed) /
                          static_cast<double>(makespan)
                    : 0.0;
}

std::string
ServiceStats::report() const
{
    std::ostringstream os;
    os << "channels=" << channels << " makespan=" << makespan
       << " cycles\n";
    os << "requests: generated=" << generated
       << " admitted=" << admitted << " rejected=" << rejected
       << " completed=" << completed << "\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "throughput: %.3f req/kcycle  bus util %.3f  "
                  "bank util %.3f  energy %.3f uJ\n",
                  throughputPerKcycle(), busUtilization,
                  bankUtilization, energyPj * 1e-6);
    os << buf;
    os << "latency (cycles): " << latency.summary() << "\n";
    std::snprintf(buf, sizeof buf,
                  "batching: units=%llu gangs=%llu mean-size=%.2f "
                  "full-closes=%llu window-closes=%llu\n",
                  static_cast<unsigned long long>(dispatchedUnits),
                  static_cast<unsigned long long>(batch.gangs),
                  batch.meanGangSize(),
                  static_cast<unsigned long long>(batch.fullCloses),
                  static_cast<unsigned long long>(batch.windowCloses));
    os << buf;
    os << "per-class:\n";
    std::snprintf(buf, sizeof buf, "  %-7s %10s %10s %9s %10s %6s %8s %8s\n",
                  "class", "generated", "admitted", "rejected",
                  "completed", "maxQ", "p50", "p99");
    os << buf;
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
        const ClassStats &pc = perClass[c];
        if (pc.generated == 0)
            continue;
        std::snprintf(
            buf, sizeof buf,
            "  %-7s %10llu %10llu %9llu %10llu %6llu %8llu %8llu\n",
            requestClassName(static_cast<RequestClass>(c)),
            static_cast<unsigned long long>(pc.generated),
            static_cast<unsigned long long>(pc.admitted),
            static_cast<unsigned long long>(pc.rejected),
            static_cast<unsigned long long>(pc.completed),
            static_cast<unsigned long long>(pc.maxQueueDepth),
            static_cast<unsigned long long>(pc.latency.p50()),
            static_cast<unsigned long long>(pc.latency.p99()));
        os << buf;
    }
    os << "outcomes:";
    for (std::size_t k = 0; k < kRequestOutcomes; ++k)
        os << " "
           << requestOutcomeName(static_cast<RequestOutcome>(k)) << "="
           << outcomes[k];
    os << "\n";
    bool faulty = injectedFaults || guardRetries || breakerTrips ||
                  retiredGroups || deadGroups || steeredRequests ||
                  capacityRejections || maintenanceUnits ||
                  dataFaultsInjected || eccCorrections ||
                  eccDetectedUncorrectable;
    if (faulty) {
        std::snprintf(
            buf, sizeof buf,
            "faults: injected=%llu retries=%llu breaker-trips=%llu "
            "retired=%llu dead=%llu steered=%llu "
            "capacity-rejected=%llu maintenance-units=%llu "
            "capacity-loss=%.4f\n",
            static_cast<unsigned long long>(injectedFaults),
            static_cast<unsigned long long>(guardRetries),
            static_cast<unsigned long long>(breakerTrips),
            static_cast<unsigned long long>(retiredGroups),
            static_cast<unsigned long long>(deadGroups),
            static_cast<unsigned long long>(steeredRequests),
            static_cast<unsigned long long>(capacityRejections),
            static_cast<unsigned long long>(maintenanceUnits),
            capacityLossFraction);
        os << buf;
        if (dataFaultsInjected || eccCorrections ||
            eccDetectedUncorrectable) {
            std::snprintf(
                buf, sizeof buf,
                "ecc: data-faults=%llu corrections=%llu "
                "detected-uncorrectable=%llu\n",
                static_cast<unsigned long long>(dataFaultsInjected),
                static_cast<unsigned long long>(eccCorrections),
                static_cast<unsigned long long>(
                    eccDetectedUncorrectable));
            os << buf;
        }
        for (std::size_t k = 0; k < kRequestOutcomes; ++k) {
            if (outcomeLatency[k].count() == 0)
                continue;
            os << "  "
               << requestOutcomeName(static_cast<RequestOutcome>(k))
               << " latency: " << outcomeLatency[k].summary() << "\n";
        }
    }
    return os.str();
}

namespace {

WorkloadConfig
workloadConfigOf(const ServiceConfig &cfg, std::size_t max_add)
{
    WorkloadConfig w;
    w.mix = cfg.mix;
    w.process = cfg.process;
    w.ratePerKcycle = cfg.ratePerKcycle;
    w.durationCycles = cfg.durationCycles;
    w.banks = cfg.banksPerChannel;
    w.dbcGroups = cfg.dbcGroupsPerBank;
    w.burstFactor = cfg.burstFactor;
    w.burstFraction = cfg.burstFraction;
    w.bulkHotGroups = cfg.bulkHotGroups;
    w.maxAddOperands = max_add;
    return w;
}

/**
 * Combine two unit verdicts.  A flagged detected-uncorrectable
 * dominates silent corruption (campaign taxonomy: a flagged trial is
 * a DUE whether or not the data happens to be right), which dominates
 * corrected, which dominates clean.
 */
RequestOutcome
worseOutcome(RequestOutcome a, RequestOutcome b)
{
    auto rank = [](RequestOutcome o) {
        switch (o) {
        case RequestOutcome::Due:
            return 3;
        case RequestOutcome::Sdc:
            return 2;
        case RequestOutcome::Corrected:
            return 1;
        default:
            return 0;
        }
    };
    return rank(a) >= rank(b) ? a : b;
}

/**
 * Simulates one channel: admission, batching, and in-order dispatch,
 * then replays the dispatched trace through EventSimulator so the
 * channel's utilization/makespan come from the existing simulator
 * (and cross-checks that both agree cycle-for-cycle).
 */
class ChannelSim
{
  public:
    ChannelSim(const ServiceConfig &cfg, const ServiceCostTable &costs,
               const GuardServiceCosts &guard_costs,
               std::uint32_t channel)
        : cfg_(cfg), costs_(costs), guardCosts_(guard_costs),
          channel_(channel),
          gen_(workloadConfigOf(cfg, costs.maxAddOperands()), cfg.seed,
               channel),
          batcher_(costs.maxGangOperands(), cfg.batchWindowCycles),
          bankFree_(cfg.banksPerChannel, 0)
    {
        if (cfg.faults.enabled()) {
            faultsOn_ = true;
            // A distinct per-channel stream, salted so the fault RNG
            // never correlates with the workload generator's.
            injector_.emplace(cfg.faults,
                              channelSeed(cfg.seed ^ 0xfa175eedull,
                                          channel));
            health_.emplace(cfg.faults, cfg.banksPerChannel,
                            cfg.dbcGroupsPerBank);
            nextScrub_ = cfg.faults.scrubIntervalCycles;
            if (cfg.faults.dataFaultsEnabled()) {
                // Its own salted stream: data faults never correlate
                // with the shift-fault or workload generators.
                dataInjector_.emplace(
                    cfg.faults,
                    channelSeed(cfg.seed ^ 0x00ecc5eedull, channel),
                    DeviceParams::withTrd(cfg.trd).wiresPerDbc,
                    ReliabilityConfig{}.eccWordBits);
                lastTouch_.assign(
                    static_cast<std::size_t>(cfg.banksPerChannel) *
                        cfg.dbcGroupsPerBank,
                    0);
            }
        }
        if (cfg.collectMetrics) {
            std::string base = "channel" + std::to_string(channel);
            chMetrics_ = &stats_.metrics.component(base);
            batchMetrics_ =
                &stats_.metrics.component(base + "/batcher");
            if (faultsOn_)
                guardMetrics_ =
                    &stats_.metrics.component(base + "/guard");
            if (dataInjector_)
                eccMetrics_ =
                    &stats_.metrics.component(base + "/ecc");
        }
        if (cfg.collectTrace) {
            stats_.trace.enable();
            stats_.trace.processName(
                channel, "channel " + std::to_string(channel));
        }
    }

    ServiceStats
    run()
    {
        stats_.channels = 1;
        if (cfg_.process == ArrivalProcess::ClosedLoop)
            runClosedLoop();
        else
            runOpenLoop();
        finishFlush();
        stats_.makespan = makespan_;
        stats_.batch = batcher_.stats();
        if (faultsOn_) {
            stats_.injectedFaults = injector_->injected();
            if (guardMetrics_)
                guardMetrics_->add(obs::Counter::FaultsInjected,
                                   injector_->injected());
            stats_.breakerTrips = health_->breakerTrips();
            stats_.retiredGroups = health_->retiredGroups();
            stats_.deadGroups = health_->deadGroups();
            stats_.steeredRequests = health_->steeredRequests();
            stats_.capacityLossFraction =
                health_->capacityLossFraction();
            if (dataInjector_) {
                stats_.dataFaultsInjected = dataInjector_->injected();
                stats_.eccCorrections = eccCorrections_;
                stats_.eccDetectedUncorrectable = eccDue_;
            }
        }

        EventSimulator sim(cfg_.banksPerChannel);
        SimStats replay = sim.run(trace_, SchedulePolicy::InOrder);
        panicIf(replay.makespan != makespan_,
                "service engine disagrees with EventSimulator: ",
                replay.makespan, " vs ", makespan_);
        panicIf(replay.requests != stats_.dispatchedUnits,
                "service engine lost dispatch units");
        stats_.busUtilization = replay.busUtilization;
        stats_.bankUtilization = replay.bankUtilization;
        return stats_;
    }

  private:
    struct Completion
    {
        std::uint64_t cycle;
        std::uint8_t cls;
        bool
        operator>(const Completion &o) const
        {
            return cycle > o.cycle;
        }
    };

    /** Retire completions up to @p now from the outstanding counts. */
    void
    settle(std::uint64_t now)
    {
        while (!inFlight_.empty() && inFlight_.top().cycle <= now) {
            --outstanding_[inFlight_.top().cls];
            inFlight_.pop();
        }
    }

    bool
    admit(const ServiceRequest &r, std::uint64_t now)
    {
        auto c = static_cast<std::size_t>(r.cls);
        stats_.generated += 1;
        stats_.perClass[c].generated += 1;
        settle(now);
        std::uint64_t depth = outstanding_[c];
        if (cfg_.queueCapacity > 0 && depth >= cfg_.queueCapacity) {
            stats_.rejected += 1;
            stats_.perClass[c].rejected += 1;
            stats_.outcomes[static_cast<std::size_t>(
                RequestOutcome::Rejected)] += 1;
            return false;
        }
        outstanding_[c] += 1;
        stats_.admitted += 1;
        stats_.perClass[c].admitted += 1;
        stats_.perClass[c].maxQueueDepth =
            std::max(stats_.perClass[c].maxQueueDepth, depth + 1);
        return true;
    }

    /**
     * Degradation-aware admission: route the request's (bank, group)
     * home around breaker-open/retiring/dead groups before it can
     * reach the batcher — broken groups never join gang formation.
     * When no live group remains the request is a typed capacity
     * rejection, not an abort.
     */
    bool
    admitSteered(ServiceRequest &r, std::uint64_t now)
    {
        if (health_) {
            std::uint32_t bank = r.bank;
            std::uint32_t group = r.dbcGroup;
            if (!health_->steer(bank, group, now)) {
                auto c = static_cast<std::size_t>(r.cls);
                stats_.generated += 1;
                stats_.perClass[c].generated += 1;
                stats_.rejected += 1;
                stats_.perClass[c].rejected += 1;
                stats_.outcomes[static_cast<std::size_t>(
                    RequestOutcome::Rejected)] += 1;
                stats_.capacityRejections += 1;
                return false;
            }
            r.bank = bank;
            r.dbcGroup = group;
        }
        return admit(r, now);
    }

    /** What the fault pipeline decided about one dispatched unit. */
    struct FaultVerdict
    {
        std::uint64_t extraCycles = 0; ///< folded into service time
        double extraEnergyPj = 0.0;
        RequestOutcome outcome = RequestOutcome::Clean;
        std::uint32_t retries = 0;     ///< re-executions after detection
        std::uint32_t corrections = 0; ///< misalignments fixed
        bool detected = false;         ///< health-tracker relevant
        bool due = false;
    };

    /**
     * Run one unit's shift pulses through the channel's fault injector
     * under the configured guard policy.  Detection/correction charges
     * come from GuardServiceCosts (measured through the real device
     * pipeline); re-executions re-pay the unit's base service time
     * after an exponential backoff.
     */
    FaultVerdict
    applyFaults(std::uint64_t now, std::uint32_t bank,
                std::uint32_t group, const RequestCost &cost,
                std::uint64_t shifts, bool pim_class)
    {
        FaultVerdict v;
        const ServiceFaultConfig &fc = cfg_.faults;
        const GuardServiceCosts &g = guardCosts_;
        if (fc.policy == GuardPolicy::PerAccess) {
            // Every access's alignment burst is guard-checked before
            // the port touches data, so each fault is caught where it
            // happens: corrections add latency, nothing survives
            // silently and nothing accumulates.
            v.extraCycles += g.checkCycles;
            v.extraEnergyPj += g.checkEnergyPj;
            ChannelFaultInjector::Sample s =
                injector_->sample(shifts, now);
            if (s.faults) {
                v.extraCycles += s.faults * g.correctCycles;
                v.extraEnergyPj += s.faults * g.correctEnergyPj;
                v.corrections += s.faults;
                v.detected = true;
                v.outcome = RequestOutcome::Corrected;
            }
            return v;
        }
        bool guarded = fc.policy == GuardPolicy::PerCpim && pim_class;
        if (!guarded) {
            // Silent path (None, scrub-between-sweeps, or non-cpim
            // traffic under PerCpim): faults land unobserved and the
            // group's misalignment sticks until something checks it.
            int &mis = health_->misalign(bank, group);
            bool dirty = mis != 0;
            ChannelFaultInjector::Sample s =
                injector_->sample(shifts, now);
            mis += s.net;
            if (dirty || s.faults)
                v.outcome = RequestOutcome::Sdc;
            return v;
        }
        // PerCpim: check around the whole unit, correct, and re-execute
        // under the bounded retry ladder.  First clear anything earlier
        // unguarded traffic left behind on this group.
        {
            int &mis = health_->misalign(bank, group);
            v.extraCycles += g.checkCycles;
            v.extraEnergyPj += g.checkEnergyPj;
            if (mis != 0) {
                if (mis == 1 || mis == -1) {
                    v.extraCycles += g.correctCycles;
                    v.extraEnergyPj += g.correctEnergyPj;
                    v.corrections += 1;
                    v.outcome = RequestOutcome::Corrected;
                } else {
                    v.extraCycles += g.resetCycles;
                    v.extraEnergyPj += g.resetEnergyPj;
                    v.due = true;
                    v.outcome = RequestOutcome::Due;
                }
                v.detected = true;
                mis = 0;
            }
        }
        if (v.due)
            return v;
        for (std::size_t attempt = 0;; ++attempt) {
            ChannelFaultInjector::Sample s =
                injector_->sample(shifts, now);
            if (s.faults == 0) {
                if (attempt > 0)
                    v.outcome = RequestOutcome::Corrected;
                return v;
            }
            if (s.net == 0) {
                // Over- and under-shifts cancelled within the unit:
                // the post-check sees an aligned cluster, but rows
                // touched between the bad pulses were wrong — the
                // blind spot of the coarse check cadence.
                v.extraCycles += g.checkCycles;
                v.extraEnergyPj += g.checkEnergyPj;
                v.outcome = RequestOutcome::Sdc;
                return v;
            }
            v.detected = true;
            if (s.net == 1 || s.net == -1) {
                v.extraCycles += g.correctCycles;
                v.extraEnergyPj += g.correctEnergyPj;
                v.corrections += 1;
            } else {
                v.extraCycles += g.checkCycles + g.resetCycles;
                v.extraEnergyPj += g.checkEnergyPj + g.resetEnergyPj;
                v.due = true;
                v.outcome = RequestOutcome::Due;
                return v;
            }
            if (attempt >= fc.maxRetries) {
                v.due = true;
                v.outcome = RequestOutcome::Due;
                return v;
            }
            v.extraCycles +=
                (fc.retryBackoffCycles << attempt) + cost.serviceCycles;
            v.extraEnergyPj += cost.energyPj;
            v.retries += 1;
        }
    }

    /**
     * Data-domain faults of one dispatched unit, classified per SECDED
     * codeword.  ECC check-lane energy rides every port access whether
     * or not a fault lands.  PIM-class units sense raw operand lanes
     * with transverse reads — check bits mean nothing to a TR — so
     * under pimNmr > 1 they run N-modular-redundant instead: the
     * replicas are charged in full and the vote masks transient
     * corruption.  Port-path DUE words re-execute under the bounded
     * retry ladder (transient flips re-sample clean); words still
     * uncorrectable after the ladder escalate to the health tracker.
     */
    FaultVerdict
    applyDataFaults(std::uint64_t now, std::uint32_t bank,
                    std::uint32_t group, const RequestCost &cost,
                    const obs::PrimCounts &prims, bool pim_class)
    {
        FaultVerdict v;
        const ServiceFaultConfig &fc = cfg_.faults;
        const GuardServiceCosts &g = guardCosts_;
        const bool secded = fc.ecc == EccMode::Secded;
        std::uint64_t accesses = prims.reads + prims.writes;
        if (secded)
            v.extraEnergyPj +=
                static_cast<double>(prims.reads) * g.eccReadEnergyPj +
                static_cast<double>(prims.writes) * g.eccWriteEnergyPj;
        std::size_t slot =
            static_cast<std::size_t>(bank) * cfg_.dbcGroupsPerBank +
            group;
        std::uint64_t idle = now - std::min(now, lastTouch_[slot]);
        lastTouch_[slot] = now;
        const bool nmr = pim_class && fc.pimNmr > 1;
        if (nmr) {
            std::uint64_t extra =
                static_cast<std::uint64_t>(fc.pimNmr) - 1;
            v.extraCycles += extra * cost.serviceCycles;
            v.extraEnergyPj +=
                static_cast<double>(extra) * cost.energyPj;
            accesses *= fc.pimNmr;
        }
        ChannelDataFaultInjector::Sample s =
            dataInjector_->sample(accesses, idle);
        std::uint64_t flips = s.flips;
        if (flips == 0) {
            if (eccMetrics_ && v.extraEnergyPj != 0.0)
                eccMetrics_->addEnergy(v.extraEnergyPj);
            return v;
        }
        if (nmr) {
            // Replicated execution: the majority vote absorbs what the
            // flips corrupted; the unit completes corrected, not SDC.
            v.outcome = RequestOutcome::Corrected;
            v.corrections += 1;
            v.detected = true;
        } else if (!secded) {
            // Unprotected port path: flips land silently.
            v.outcome = RequestOutcome::Sdc;
        } else {
            std::uint32_t corrected = s.correctedWords;
            std::uint32_t due = s.dueWords;
            std::uint32_t sdc = s.sdcWords;
            for (std::size_t attempt = 0;
                 due > 0 && attempt < fc.maxRetries; ++attempt) {
                v.extraCycles += (fc.retryBackoffCycles << attempt) +
                                 cost.serviceCycles;
                v.extraEnergyPj += cost.energyPj;
                v.retries += 1;
                ChannelDataFaultInjector::Sample rs =
                    dataInjector_->sample(accesses, 0);
                flips += rs.flips;
                corrected += rs.correctedWords;
                due = rs.dueWords;
                sdc += rs.sdcWords;
            }
            if (corrected > 0) {
                eccCorrections_ += corrected;
                v.corrections += corrected;
                v.detected = true;
                v.outcome = RequestOutcome::Corrected;
                if (eccMetrics_)
                    eccMetrics_->add(obs::Counter::EccCorrections,
                                     corrected);
            }
            if (sdc > 0)
                v.outcome =
                    worseOutcome(v.outcome, RequestOutcome::Sdc);
            if (due > 0) {
                eccDue_ += due;
                v.due = true;
                v.detected = true;
                v.outcome = RequestOutcome::Due;
                if (eccMetrics_)
                    eccMetrics_->add(
                        obs::Counter::EccDetectedUncorrectable, due);
            }
        }
        if (eccMetrics_) {
            eccMetrics_->add(obs::Counter::DataFaultsInjected, flips);
            if (v.extraEnergyPj != 0.0)
                eccMetrics_->addEnergy(v.extraEnergyPj);
        }
        if (stats_.trace.on())
            stats_.trace.instant("data_fault", "ecc", now, channel_,
                                 bank);
        return v;
    }

    /**
     * Non-request bank work (scrub sweeps, retirement migration):
     * occupies the command bus and the bank like any dispatched unit,
     * so the EventSimulator replay accounts for it cycle-for-cycle.
     */
    std::uint64_t
    dispatchMaintenance(const char *name, std::uint64_t now,
                        std::uint32_t bank,
                        std::uint32_t service_cycles, double energy_pj)
    {
        std::uint64_t start =
            std::max({now, busFree_, bankFree_[bank]});
        busFree_ = start + 1;
        std::uint64_t completion = start + 1 + service_cycles;
        bankFree_[bank] = completion;
        trace_.push_back({now, bank, 1, service_cycles});
        stats_.dispatchedUnits += 1;
        stats_.maintenanceUnits += 1;
        stats_.energyPj += energy_pj;
        makespan_ = std::max(makespan_, completion);
        if (guardMetrics_)
            guardMetrics_->addEnergy(energy_pj);
        if (stats_.trace.on())
            stats_.trace.span(name, "maintenance", start,
                              1 + service_cycles, channel_, bank);
        return completion;
    }

    /**
     * Feed a detected error into the health tracker and act on its
     * verdict: breaker-open trace/metrics, retirement migration (a
     * maintenance unit holding the group until the copy completes),
     * and eviction of any gang formed before the breaker opened.
     */
    void
    handleHealthEvent(std::uint32_t bank, std::uint32_t group,
                      std::uint64_t completion, bool due,
                      std::uint64_t now)
    {
        DbcHealthTracker::ErrorAction act =
            health_->recordError(bank, group, completion, due);
        if (!act.breakerOpened)
            return;
        if (guardMetrics_)
            guardMetrics_->add(obs::Counter::BreakerTrips);
        if (stats_.trace.on())
            stats_.trace.instant("breaker_open", "health", now,
                                 channel_, bank);
        if (act.retired) {
            std::uint64_t done = dispatchMaintenance(
                "migrate", now, bank, guardCosts_.retireCycles,
                guardCosts_.retireEnergyPj);
            health_->holdUntil(bank, group, done);
            if (guardMetrics_)
                guardMetrics_->add(obs::Counter::Retirements);
            if (stats_.trace.on())
                stats_.trace.instant("dbc_retire", "health", now,
                                     channel_, bank);
        } else if (act.died) {
            if (stats_.trace.on())
                stats_.trace.instant("dbc_dead", "health", now,
                                     channel_, bank);
        }
        for (const TrGang &g : batcher_.flushGroup(bank, group, now))
            dispatchGang(g);
    }

    /** Dispatch one bus/bank unit carrying @p members requests. */
    std::uint64_t
    dispatch(std::uint64_t now, std::uint32_t bank, std::uint32_t group,
             RequestCost cost,
             const std::vector<ServiceRequest> &members)
    {
        FaultVerdict verdict;
        if (faultsOn_) {
            obs::PrimCounts prims =
                members.size() > 1
                    ? costs_.gangPrims(members.size())
                    : costs_.prims(members.front());
            bool pim = members.front().cls != RequestClass::Read &&
                       members.front().cls != RequestClass::Write;
            verdict = applyFaults(now, bank, group, cost,
                                  prims.shifts, pim);
            if (dataInjector_) {
                FaultVerdict dv = applyDataFaults(now, bank, group,
                                                  cost, prims, pim);
                verdict.extraCycles += dv.extraCycles;
                verdict.extraEnergyPj += dv.extraEnergyPj;
                verdict.retries += dv.retries;
                verdict.corrections += dv.corrections;
                verdict.detected |= dv.detected;
                verdict.due |= dv.due;
                verdict.outcome =
                    worseOutcome(verdict.outcome, dv.outcome);
            }
            cost.serviceCycles +=
                static_cast<std::uint32_t>(verdict.extraCycles);
            cost.energyPj += verdict.extraEnergyPj;
        }
        std::uint64_t start =
            std::max({now, busFree_, bankFree_[bank]});
        busFree_ = start + cost.issueCmds;
        std::uint64_t completion =
            start + cost.issueCmds + cost.serviceCycles;
        bankFree_[bank] = completion;
        trace_.push_back({now, bank, cost.issueCmds,
                          cost.serviceCycles});
        stats_.dispatchedUnits += 1;
        stats_.energyPj += cost.energyPj;
        makespan_ = std::max(makespan_, completion);
        if (chMetrics_) {
            chMetrics_->add(obs::Counter::Requests, members.size());
            chMetrics_->addPrims(members.size() > 1
                                     ? costs_.gangPrims(members.size())
                                     : costs_.prims(members.front()));
            chMetrics_->addEnergy(cost.energyPj);
        }
        if (stats_.trace.on()) {
            const char *name =
                members.size() > 1
                    ? "gang"
                    : requestClassName(members.front().cls);
            stats_.trace.span(name, "dispatch", start,
                              cost.issueCmds + cost.serviceCycles,
                              channel_, bank, "members",
                              static_cast<double>(members.size()));
        }
        auto oidx = static_cast<std::size_t>(verdict.outcome);
        for (const ServiceRequest &m : members) {
            auto c = static_cast<std::size_t>(m.cls);
            std::uint64_t lat = completion - m.arrival;
            stats_.latency.record(lat);
            stats_.perClass[c].latency.record(lat);
            stats_.perClass[c].completed += 1;
            stats_.completed += 1;
            stats_.outcomes[oidx] += 1;
            stats_.outcomeLatency[oidx].record(lat);
            inFlight_.push({completion, static_cast<std::uint8_t>(c)});
            if (closedLoop_)
                slots_.push(completion);
        }
        if (faultsOn_) {
            stats_.guardRetries += verdict.retries;
            if (guardMetrics_) {
                guardMetrics_->add(obs::Counter::MisalignCorrections,
                                   verdict.corrections);
                guardMetrics_->add(obs::Counter::Retries,
                                   verdict.retries);
                if (verdict.extraEnergyPj != 0.0)
                    guardMetrics_->addEnergy(verdict.extraEnergyPj);
            }
            if (verdict.detected)
                handleHealthEvent(bank, group, completion, verdict.due,
                                  now);
        }
        return completion;
    }

    void
    dispatchGang(const TrGang &g)
    {
        if (batchMetrics_)
            batchMetrics_->add(obs::Counter::Gangs);
        dispatch(g.readyAt, g.bank, g.dbcGroup,
                 costs_.gangCost(g.members.size()), g.members);
    }

    /** Route an admitted request to the batcher or straight out. */
    void
    handleAdmitted(const ServiceRequest &r)
    {
        if (cfg_.batching && r.cls == RequestClass::BulkBitwise) {
            TrGang g = batcher_.add(r);
            if (!g.members.empty())
                dispatchGang(g);
        } else {
            dispatch(r.arrival, r.bank, r.dbcGroup, costs_.cost(r),
                     {r});
        }
    }

    /** Whether the ECC scrub sweep rides the scrub cadence. */
    bool
    eccScrubOn() const
    {
        return dataInjector_.has_value() &&
               cfg_.faults.ecc != EccMode::None;
    }

    /** Whether a scrub sweep is due before the run's duration ends. */
    bool
    scrubDue() const
    {
        if (!faultsOn_ || cfg_.faults.scrubIntervalCycles == 0 ||
            nextScrub_ >= cfg_.durationCycles)
            return false;
        return cfg_.faults.policy == GuardPolicy::PeriodicScrub ||
               eccScrubOn();
    }

    /**
     * One scrub sweep: every (bank, group) pays a guard check, sticky
     * misalignments are corrected (or reset when multi-step) and fed
     * to the health tracker, and each bank's share is dispatched as a
     * maintenance unit occupying it.  With SECDED on, the same sweep
     * re-reads the group's stored lines, rewrites correctable
     * retention decay before a second flip turns it into a DUE, and
     * refreshes the group's retention clock.
     */
    void
    runScrub()
    {
        std::uint64_t at = nextScrub_;
        nextScrub_ += cfg_.faults.scrubIntervalCycles;
        const bool align =
            cfg_.faults.policy == GuardPolicy::PeriodicScrub;
        const bool ecc = eccScrubOn();
        for (std::uint32_t bank = 0; bank < cfg_.banksPerChannel;
             ++bank) {
            std::uint32_t cycles = 0;
            double pj = 0.0;
            for (std::uint32_t grp = 0; grp < cfg_.dbcGroupsPerBank;
                 ++grp) {
                if (align) {
                    cycles += guardCosts_.checkCycles;
                    pj += guardCosts_.checkEnergyPj;
                    int mis = health_->misalign(bank, grp);
                    if (mis != 0) {
                        bool due = mis < -1 || mis > 1;
                        if (due) {
                            cycles += guardCosts_.resetCycles;
                            pj += guardCosts_.resetEnergyPj;
                        } else {
                            cycles += guardCosts_.correctCycles;
                            pj += guardCosts_.correctEnergyPj;
                            if (guardMetrics_)
                                guardMetrics_->add(
                                    obs::Counter::
                                        MisalignCorrections);
                        }
                        health_->misalign(bank, grp) = 0;
                        handleHealthEvent(bank, grp, at + cycles, due,
                                          at);
                    }
                }
                if (ecc)
                    scrubEccGroup(bank, grp, at, cycles, pj);
            }
            dispatchMaintenance("scrub", at, bank, cycles, pj);
        }
    }

    /** ECC share of one (bank, group)'s scrub visit. */
    void
    scrubEccGroup(std::uint32_t bank, std::uint32_t grp,
                  std::uint64_t at, std::uint32_t &cycles, double &pj)
    {
        cycles += guardCosts_.eccScrubGroupCycles;
        pj += guardCosts_.eccScrubGroupEnergyPj;
        std::size_t slot =
            static_cast<std::size_t>(bank) * cfg_.dbcGroupsPerBank +
            grp;
        std::uint64_t idle = at - std::min(at, lastTouch_[slot]);
        lastTouch_[slot] = at;
        ChannelDataFaultInjector::Sample s =
            dataInjector_->sample(0, idle);
        if (s.flips == 0)
            return;
        if (eccMetrics_)
            eccMetrics_->add(obs::Counter::DataFaultsInjected,
                             s.flips);
        if (s.correctedWords > 0) {
            eccCorrections_ += s.correctedWords;
            if (eccMetrics_)
                eccMetrics_->add(obs::Counter::EccCorrections,
                                 s.correctedWords);
        }
        std::uint32_t lost = s.dueWords + s.sdcWords;
        if (lost > 0) {
            // Decay past SECDED's reach: the sweep flags the line (the
            // decoder sees it — no silent path here) and escalates to
            // the breaker/retirement machinery.
            eccDue_ += lost;
            if (eccMetrics_)
                eccMetrics_->add(
                    obs::Counter::EccDetectedUncorrectable, lost);
            handleHealthEvent(bank, grp, at + cycles, true, at);
        }
        if (stats_.trace.on())
            stats_.trace.instant("ecc_scrub", "ecc", at, channel_,
                                 bank);
    }

    void
    runOpenLoop()
    {
        ServiceRequest next;
        bool have = gen_.next(next);
        while (have || batcher_.pending() > 0 || scrubDue()) {
            std::uint64_t flush_at = batcher_.pending() > 0
                                         ? batcher_.nextDeadline()
                                         : ~0ull;
            std::uint64_t scrub_at = scrubDue() ? nextScrub_ : ~0ull;
            if (have &&
                next.arrival < std::min(flush_at, scrub_at)) {
                if (admitSteered(next, next.arrival))
                    handleAdmitted(next);
                have = gen_.next(next);
            } else if (scrub_at <= flush_at) {
                runScrub();
            } else {
                for (const TrGang &g : batcher_.flushDue(flush_at))
                    dispatchGang(g);
            }
        }
    }

    void
    runClosedLoop()
    {
        closedLoop_ = true;
        for (std::uint32_t i = 0; i < cfg_.closedLoopWindow; ++i)
            slots_.push(0);
        const std::uint64_t backoff =
            std::max<std::uint64_t>(1, cfg_.retryBackoffCycles);
        while (true) {
            std::uint64_t slot_at = slots_.empty() ? ~0ull
                                                   : slots_.top();
            if (scrubDue() && nextScrub_ <= slot_at &&
                (batcher_.pending() == 0 ||
                 nextScrub_ <= batcher_.nextDeadline())) {
                runScrub();
                continue;
            }
            if (batcher_.pending() > 0) {
                std::uint64_t dl = batcher_.nextDeadline();
                if (slots_.empty() || dl <= slots_.top()) {
                    for (const TrGang &g : batcher_.flushDue(dl))
                        dispatchGang(g);
                    continue;
                }
            }
            if (slots_.empty())
                break;
            std::uint64_t arrival = slots_.top();
            slots_.pop();
            if (arrival >= cfg_.durationCycles)
                continue; // this client retires
            ServiceRequest r = gen_.sampleAt(arrival);
            if (admitSteered(r, arrival))
                handleAdmitted(r);
            else
                slots_.push(arrival + backoff);
        }
    }

    /** Dispatch whatever the batcher still holds at end of run. */
    void
    finishFlush()
    {
        while (batcher_.pending() > 0)
            for (const TrGang &g :
                 batcher_.flushDue(batcher_.nextDeadline()))
                dispatchGang(g);
    }

    const ServiceConfig &cfg_;
    const ServiceCostTable &costs_;
    const GuardServiceCosts &guardCosts_;
    std::uint32_t channel_ = 0;
    obs::ComponentMetrics *chMetrics_ = nullptr;    ///< into stats_
    obs::ComponentMetrics *batchMetrics_ = nullptr; ///< into stats_
    obs::ComponentMetrics *guardMetrics_ = nullptr; ///< into stats_
    WorkloadGenerator gen_;
    GangBatcher batcher_;
    bool closedLoop_ = false;
    bool faultsOn_ = false;
    std::optional<ChannelFaultInjector> injector_;
    std::optional<DbcHealthTracker> health_;
    std::optional<ChannelDataFaultInjector> dataInjector_;
    std::vector<std::uint64_t> lastTouch_; ///< retention clock/(b,g)
    obs::ComponentMetrics *eccMetrics_ = nullptr; ///< into stats_
    std::uint64_t eccCorrections_ = 0;
    std::uint64_t eccDue_ = 0;
    std::uint64_t nextScrub_ = 0;

    std::uint64_t busFree_ = 0;
    std::vector<std::uint64_t> bankFree_;
    std::uint64_t makespan_ = 0;
    std::vector<SimRequest> trace_;
    std::array<std::uint64_t, kRequestClasses> outstanding_{};
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        inFlight_;
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<std::uint64_t>>
        slots_;
    ServiceStats stats_;
};

} // namespace

ServiceEngine::ServiceEngine(const ServiceConfig &cfg)
    : cfg_(cfg), costs_(ServiceCostTable::build(cfg.trd))
{
    fatalIf(cfg_.channels == 0, "service needs at least one channel");
    fatalIf(cfg_.banksPerChannel == 0,
            "service needs at least one bank per channel");
    fatalIf(cfg_.process == ArrivalProcess::ClosedLoop &&
                cfg_.closedLoopWindow == 0,
            "closed loop needs a positive window");
}

ServiceStats
ServiceEngine::run() const
{
    std::uint32_t n_threads = cfg_.threads;
    if (n_threads == 0) {
        n_threads = std::thread::hardware_concurrency();
        if (n_threads == 0)
            n_threads = 1;
    }
    n_threads = std::min(n_threads, cfg_.channels);

    // Guard maintenance costs are measured once through the real
    // device pipeline and shared read-only by every channel worker.
    GuardServiceCosts guard_costs;
    if (cfg_.faults.enabled())
        guard_costs = GuardServiceCosts::measure();

    std::vector<ServiceStats> per_channel(cfg_.channels);
    auto worker = [&](std::uint32_t first) {
        for (std::uint32_t ch = first; ch < cfg_.channels;
             ch += n_threads)
            per_channel[ch] =
                ChannelSim(cfg_, costs_, guard_costs, ch).run();
    };

    if (n_threads <= 1) {
        worker(0);
    } else {
        // Channels are data-independent; each worker owns a strided
        // subset and writes only its own per_channel slots.  The join
        // is the merge barrier.
        std::vector<std::exception_ptr> errors(n_threads);
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (std::uint32_t t = 0; t < n_threads; ++t) {
            pool.emplace_back([&, t]() {
                try {
                    worker(t);
                } catch (...) {
                    errors[t] = std::current_exception();
                }
            });
        }
        for (auto &th : pool)
            th.join();
        for (auto &e : errors)
            if (e)
                std::rethrow_exception(e);
    }

    // Merge in channel order: the aggregate is a pure function of the
    // per-channel results, independent of worker count or timing.
    ServiceStats out;
    out.channels = cfg_.channels;
    double issued_cycles = 0, busy_weight = 0;
    for (const ServiceStats &c : per_channel) {
        out.makespan = std::max(out.makespan, c.makespan);
        out.generated += c.generated;
        out.admitted += c.admitted;
        out.rejected += c.rejected;
        out.completed += c.completed;
        out.dispatchedUnits += c.dispatchedUnits;
        out.energyPj += c.energyPj;
        out.batch.merge(c.batch);
        out.latency.merge(c.latency);
        out.metrics.merge(c.metrics);
        out.trace.append(c.trace);
        for (std::size_t k = 0; k < kRequestClasses; ++k)
            out.perClass[k].merge(c.perClass[k]);
        for (std::size_t k = 0; k < kRequestOutcomes; ++k) {
            out.outcomes[k] += c.outcomes[k];
            out.outcomeLatency[k].merge(c.outcomeLatency[k]);
        }
        out.injectedFaults += c.injectedFaults;
        out.guardRetries += c.guardRetries;
        out.breakerTrips += c.breakerTrips;
        out.retiredGroups += c.retiredGroups;
        out.deadGroups += c.deadGroups;
        out.steeredRequests += c.steeredRequests;
        out.capacityRejections += c.capacityRejections;
        out.maintenanceUnits += c.maintenanceUnits;
        out.capacityLossFraction += c.capacityLossFraction;
        out.dataFaultsInjected += c.dataFaultsInjected;
        out.eccCorrections += c.eccCorrections;
        out.eccDetectedUncorrectable += c.eccDetectedUncorrectable;
        issued_cycles +=
            c.busUtilization * static_cast<double>(c.makespan);
        busy_weight +=
            c.bankUtilization * static_cast<double>(c.makespan);
    }
    double span_sum = 0;
    for (const ServiceStats &c : per_channel)
        span_sum += static_cast<double>(c.makespan);
    if (span_sum > 0) {
        out.busUtilization = issued_cycles / span_sum;
        out.bankUtilization = busy_weight / span_sum;
    }
    if (cfg_.channels > 0)
        out.capacityLossFraction /= cfg_.channels;
    return out;
}

ServiceStats
runService(const ServiceConfig &cfg)
{
    return ServiceEngine(cfg).run();
}

} // namespace coruscant
