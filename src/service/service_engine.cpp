#include "service/service_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <functional>
#include <queue>
#include <sstream>
#include <thread>
#include <vector>

#include "util/logging.hpp"

namespace coruscant {

void
ClassStats::merge(const ClassStats &o)
{
    generated += o.generated;
    admitted += o.admitted;
    rejected += o.rejected;
    completed += o.completed;
    maxQueueDepth = std::max(maxQueueDepth, o.maxQueueDepth);
    latency.merge(o.latency);
}

double
ServiceStats::throughputPerKcycle() const
{
    return makespan ? 1000.0 * static_cast<double>(completed) /
                          static_cast<double>(makespan)
                    : 0.0;
}

std::string
ServiceStats::report() const
{
    std::ostringstream os;
    os << "channels=" << channels << " makespan=" << makespan
       << " cycles\n";
    os << "requests: generated=" << generated
       << " admitted=" << admitted << " rejected=" << rejected
       << " completed=" << completed << "\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "throughput: %.3f req/kcycle  bus util %.3f  "
                  "bank util %.3f  energy %.3f uJ\n",
                  throughputPerKcycle(), busUtilization,
                  bankUtilization, energyPj * 1e-6);
    os << buf;
    os << "latency (cycles): " << latency.summary() << "\n";
    std::snprintf(buf, sizeof buf,
                  "batching: units=%llu gangs=%llu mean-size=%.2f "
                  "full-closes=%llu window-closes=%llu\n",
                  static_cast<unsigned long long>(dispatchedUnits),
                  static_cast<unsigned long long>(batch.gangs),
                  batch.meanGangSize(),
                  static_cast<unsigned long long>(batch.fullCloses),
                  static_cast<unsigned long long>(batch.windowCloses));
    os << buf;
    os << "per-class:\n";
    std::snprintf(buf, sizeof buf, "  %-7s %10s %10s %9s %10s %6s %8s %8s\n",
                  "class", "generated", "admitted", "rejected",
                  "completed", "maxQ", "p50", "p99");
    os << buf;
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
        const ClassStats &pc = perClass[c];
        if (pc.generated == 0)
            continue;
        std::snprintf(
            buf, sizeof buf,
            "  %-7s %10llu %10llu %9llu %10llu %6llu %8llu %8llu\n",
            requestClassName(static_cast<RequestClass>(c)),
            static_cast<unsigned long long>(pc.generated),
            static_cast<unsigned long long>(pc.admitted),
            static_cast<unsigned long long>(pc.rejected),
            static_cast<unsigned long long>(pc.completed),
            static_cast<unsigned long long>(pc.maxQueueDepth),
            static_cast<unsigned long long>(pc.latency.p50()),
            static_cast<unsigned long long>(pc.latency.p99()));
        os << buf;
    }
    return os.str();
}

namespace {

WorkloadConfig
workloadConfigOf(const ServiceConfig &cfg, std::size_t max_add)
{
    WorkloadConfig w;
    w.mix = cfg.mix;
    w.process = cfg.process;
    w.ratePerKcycle = cfg.ratePerKcycle;
    w.durationCycles = cfg.durationCycles;
    w.banks = cfg.banksPerChannel;
    w.dbcGroups = cfg.dbcGroupsPerBank;
    w.burstFactor = cfg.burstFactor;
    w.burstFraction = cfg.burstFraction;
    w.bulkHotGroups = cfg.bulkHotGroups;
    w.maxAddOperands = max_add;
    return w;
}

/**
 * Simulates one channel: admission, batching, and in-order dispatch,
 * then replays the dispatched trace through EventSimulator so the
 * channel's utilization/makespan come from the existing simulator
 * (and cross-checks that both agree cycle-for-cycle).
 */
class ChannelSim
{
  public:
    ChannelSim(const ServiceConfig &cfg, const ServiceCostTable &costs,
               std::uint32_t channel)
        : cfg_(cfg), costs_(costs), channel_(channel),
          gen_(workloadConfigOf(cfg, costs.maxAddOperands()), cfg.seed,
               channel),
          batcher_(costs.maxGangOperands(), cfg.batchWindowCycles),
          bankFree_(cfg.banksPerChannel, 0)
    {
        if (cfg.collectMetrics) {
            std::string base = "channel" + std::to_string(channel);
            chMetrics_ = &stats_.metrics.component(base);
            batchMetrics_ =
                &stats_.metrics.component(base + "/batcher");
        }
        if (cfg.collectTrace) {
            stats_.trace.enable();
            stats_.trace.processName(
                channel, "channel " + std::to_string(channel));
        }
    }

    ServiceStats
    run()
    {
        stats_.channels = 1;
        if (cfg_.process == ArrivalProcess::ClosedLoop)
            runClosedLoop();
        else
            runOpenLoop();
        finishFlush();
        stats_.makespan = makespan_;
        stats_.batch = batcher_.stats();

        EventSimulator sim(cfg_.banksPerChannel);
        SimStats replay = sim.run(trace_, SchedulePolicy::InOrder);
        panicIf(replay.makespan != makespan_,
                "service engine disagrees with EventSimulator: ",
                replay.makespan, " vs ", makespan_);
        panicIf(replay.requests != stats_.dispatchedUnits,
                "service engine lost dispatch units");
        stats_.busUtilization = replay.busUtilization;
        stats_.bankUtilization = replay.bankUtilization;
        return stats_;
    }

  private:
    struct Completion
    {
        std::uint64_t cycle;
        std::uint8_t cls;
        bool
        operator>(const Completion &o) const
        {
            return cycle > o.cycle;
        }
    };

    /** Retire completions up to @p now from the outstanding counts. */
    void
    settle(std::uint64_t now)
    {
        while (!inFlight_.empty() && inFlight_.top().cycle <= now) {
            --outstanding_[inFlight_.top().cls];
            inFlight_.pop();
        }
    }

    bool
    admit(const ServiceRequest &r, std::uint64_t now)
    {
        auto c = static_cast<std::size_t>(r.cls);
        stats_.generated += 1;
        stats_.perClass[c].generated += 1;
        settle(now);
        std::uint64_t depth = outstanding_[c];
        if (cfg_.queueCapacity > 0 && depth >= cfg_.queueCapacity) {
            stats_.rejected += 1;
            stats_.perClass[c].rejected += 1;
            return false;
        }
        outstanding_[c] += 1;
        stats_.admitted += 1;
        stats_.perClass[c].admitted += 1;
        stats_.perClass[c].maxQueueDepth =
            std::max(stats_.perClass[c].maxQueueDepth, depth + 1);
        return true;
    }

    /** Dispatch one bus/bank unit carrying @p members requests. */
    std::uint64_t
    dispatch(std::uint64_t now, std::uint32_t bank,
             const RequestCost &cost,
             const std::vector<ServiceRequest> &members)
    {
        std::uint64_t start =
            std::max({now, busFree_, bankFree_[bank]});
        busFree_ = start + cost.issueCmds;
        std::uint64_t completion =
            start + cost.issueCmds + cost.serviceCycles;
        bankFree_[bank] = completion;
        trace_.push_back({now, bank, cost.issueCmds,
                          cost.serviceCycles});
        stats_.dispatchedUnits += 1;
        stats_.energyPj += cost.energyPj;
        makespan_ = std::max(makespan_, completion);
        if (chMetrics_) {
            chMetrics_->add(obs::Counter::Requests, members.size());
            chMetrics_->addPrims(members.size() > 1
                                     ? costs_.gangPrims(members.size())
                                     : costs_.prims(members.front()));
            chMetrics_->addEnergy(cost.energyPj);
        }
        if (stats_.trace.on()) {
            const char *name =
                members.size() > 1
                    ? "gang"
                    : requestClassName(members.front().cls);
            stats_.trace.span(name, "dispatch", start,
                              cost.issueCmds + cost.serviceCycles,
                              channel_, bank, "members",
                              static_cast<double>(members.size()));
        }
        for (const ServiceRequest &m : members) {
            auto c = static_cast<std::size_t>(m.cls);
            std::uint64_t lat = completion - m.arrival;
            stats_.latency.record(lat);
            stats_.perClass[c].latency.record(lat);
            stats_.perClass[c].completed += 1;
            stats_.completed += 1;
            inFlight_.push({completion, static_cast<std::uint8_t>(c)});
            if (closedLoop_)
                slots_.push(completion);
        }
        return completion;
    }

    void
    dispatchGang(const TrGang &g)
    {
        if (batchMetrics_)
            batchMetrics_->add(obs::Counter::Gangs);
        dispatch(g.readyAt, g.bank, costs_.gangCost(g.members.size()),
                 g.members);
    }

    /** Route an admitted request to the batcher or straight out. */
    void
    handleAdmitted(const ServiceRequest &r)
    {
        if (cfg_.batching && r.cls == RequestClass::BulkBitwise) {
            TrGang g = batcher_.add(r);
            if (!g.members.empty())
                dispatchGang(g);
        } else {
            dispatch(r.arrival, r.bank, costs_.cost(r), {r});
        }
    }

    void
    runOpenLoop()
    {
        ServiceRequest next;
        bool have = gen_.next(next);
        while (have || batcher_.pending() > 0) {
            std::uint64_t deadline = batcher_.pending() > 0
                                         ? batcher_.nextDeadline()
                                         : ~0ull;
            if (have && next.arrival < deadline) {
                if (admit(next, next.arrival))
                    handleAdmitted(next);
                have = gen_.next(next);
            } else {
                for (const TrGang &g : batcher_.flushDue(deadline))
                    dispatchGang(g);
            }
        }
    }

    void
    runClosedLoop()
    {
        closedLoop_ = true;
        for (std::uint32_t i = 0; i < cfg_.closedLoopWindow; ++i)
            slots_.push(0);
        const std::uint64_t backoff =
            std::max<std::uint64_t>(1, cfg_.retryBackoffCycles);
        while (true) {
            if (batcher_.pending() > 0) {
                std::uint64_t dl = batcher_.nextDeadline();
                if (slots_.empty() || dl <= slots_.top()) {
                    for (const TrGang &g : batcher_.flushDue(dl))
                        dispatchGang(g);
                    continue;
                }
            }
            if (slots_.empty())
                break;
            std::uint64_t arrival = slots_.top();
            slots_.pop();
            if (arrival >= cfg_.durationCycles)
                continue; // this client retires
            ServiceRequest r = gen_.sampleAt(arrival);
            if (admit(r, arrival))
                handleAdmitted(r);
            else
                slots_.push(arrival + backoff);
        }
    }

    /** Dispatch whatever the batcher still holds at end of run. */
    void
    finishFlush()
    {
        while (batcher_.pending() > 0)
            for (const TrGang &g :
                 batcher_.flushDue(batcher_.nextDeadline()))
                dispatchGang(g);
    }

    const ServiceConfig &cfg_;
    const ServiceCostTable &costs_;
    std::uint32_t channel_ = 0;
    obs::ComponentMetrics *chMetrics_ = nullptr;    ///< into stats_
    obs::ComponentMetrics *batchMetrics_ = nullptr; ///< into stats_
    WorkloadGenerator gen_;
    GangBatcher batcher_;
    bool closedLoop_ = false;

    std::uint64_t busFree_ = 0;
    std::vector<std::uint64_t> bankFree_;
    std::uint64_t makespan_ = 0;
    std::vector<SimRequest> trace_;
    std::array<std::uint64_t, kRequestClasses> outstanding_{};
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        inFlight_;
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<std::uint64_t>>
        slots_;
    ServiceStats stats_;
};

} // namespace

ServiceEngine::ServiceEngine(const ServiceConfig &cfg)
    : cfg_(cfg), costs_(ServiceCostTable::build(cfg.trd))
{
    fatalIf(cfg_.channels == 0, "service needs at least one channel");
    fatalIf(cfg_.banksPerChannel == 0,
            "service needs at least one bank per channel");
    fatalIf(cfg_.process == ArrivalProcess::ClosedLoop &&
                cfg_.closedLoopWindow == 0,
            "closed loop needs a positive window");
}

ServiceStats
ServiceEngine::run() const
{
    std::uint32_t n_threads = cfg_.threads;
    if (n_threads == 0) {
        n_threads = std::thread::hardware_concurrency();
        if (n_threads == 0)
            n_threads = 1;
    }
    n_threads = std::min(n_threads, cfg_.channels);

    std::vector<ServiceStats> per_channel(cfg_.channels);
    auto worker = [&](std::uint32_t first) {
        for (std::uint32_t ch = first; ch < cfg_.channels;
             ch += n_threads)
            per_channel[ch] = ChannelSim(cfg_, costs_, ch).run();
    };

    if (n_threads <= 1) {
        worker(0);
    } else {
        // Channels are data-independent; each worker owns a strided
        // subset and writes only its own per_channel slots.  The join
        // is the merge barrier.
        std::vector<std::exception_ptr> errors(n_threads);
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (std::uint32_t t = 0; t < n_threads; ++t) {
            pool.emplace_back([&, t]() {
                try {
                    worker(t);
                } catch (...) {
                    errors[t] = std::current_exception();
                }
            });
        }
        for (auto &th : pool)
            th.join();
        for (auto &e : errors)
            if (e)
                std::rethrow_exception(e);
    }

    // Merge in channel order: the aggregate is a pure function of the
    // per-channel results, independent of worker count or timing.
    ServiceStats out;
    out.channels = cfg_.channels;
    double issued_cycles = 0, busy_weight = 0;
    for (const ServiceStats &c : per_channel) {
        out.makespan = std::max(out.makespan, c.makespan);
        out.generated += c.generated;
        out.admitted += c.admitted;
        out.rejected += c.rejected;
        out.completed += c.completed;
        out.dispatchedUnits += c.dispatchedUnits;
        out.energyPj += c.energyPj;
        out.batch.merge(c.batch);
        out.latency.merge(c.latency);
        out.metrics.merge(c.metrics);
        out.trace.append(c.trace);
        for (std::size_t k = 0; k < kRequestClasses; ++k)
            out.perClass[k].merge(c.perClass[k]);
        issued_cycles +=
            c.busUtilization * static_cast<double>(c.makespan);
        busy_weight +=
            c.bankUtilization * static_cast<double>(c.makespan);
    }
    double span_sum = 0;
    for (const ServiceStats &c : per_channel)
        span_sum += static_cast<double>(c.makespan);
    if (span_sum > 0) {
        out.busUtilization = issued_cycles / span_sum;
        out.bankUtilization = busy_weight / span_sum;
    }
    return out;
}

ServiceStats
runService(const ServiceConfig &cfg)
{
    return ServiceEngine(cfg).run();
}

} // namespace coruscant
