/**
 * @file
 * Sharded multi-channel request-service engine.
 *
 * Layered on the existing controller stack, this subsystem turns the
 * repo's closed-form/per-kernel simulators into a load-serving system
 * model:
 *
 *   WorkloadGenerator --> admission (bounded per-class queues)
 *       --> GangBatcher (bulk-bitwise TR gangs, Sec. III-C / PIRM)
 *       --> per-channel dispatch (command bus + bank occupancy,
 *           identical math to EventSimulator's in-order policy)
 *       --> EventSimulator replay (authoritative SimStats per channel)
 *       --> merged ServiceStats with log-bucketed tail latencies.
 *
 * Sharding: memory channels are independent in the modeled system
 * (per-channel command bus and banks), so the engine partitions
 * channels across a std::thread worker pool.  Every channel derives
 * its RNG stream from (seed, channel) — never from the thread that
 * happens to simulate it — and per-channel results are merged in
 * channel order after a join barrier.  A run with N threads is
 * therefore bit-identical to the single-threaded run for a fixed
 * seed; a regression test and the CLI acceptance check both pin this.
 *
 * Admission control: each request class has a bounded queue of
 * admitted-but-incomplete requests per channel.  Arrivals beyond the
 * bound are rejected (open loop) or retried after a backoff (closed
 * loop), and per-class backpressure counters report drops and peak
 * depth — under overload the engine degrades by shedding load, not by
 * growing queues without bound.
 */

#ifndef CORUSCANT_SERVICE_SERVICE_ENGINE_HPP
#define CORUSCANT_SERVICE_SERVICE_ENGINE_HPP

#include <array>
#include <cstdint>
#include <string>

#include "controller/event_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "service/batcher.hpp"
#include "service/fault_service.hpp"
#include "service/request.hpp"
#include "service/workload.hpp"
#include "util/stats.hpp"

namespace coruscant {

/** Full configuration of one service run. */
struct ServiceConfig
{
    std::uint32_t channels = 8;
    std::uint32_t threads = 1;  ///< worker threads; 0 = hardware
    std::uint32_t banksPerChannel = 16;
    std::uint32_t dbcGroupsPerBank = 4;
    std::size_t trd = 7;
    std::uint64_t seed = 1;

    WorkloadMix mix = WorkloadMix::pimServing();
    ArrivalProcess process = ArrivalProcess::Poisson;
    double ratePerKcycle = 8.0;   ///< offered load per channel
    std::uint64_t durationCycles = 100000;
    double burstFactor = 4.0;
    double burstFraction = 0.2;
    std::uint32_t bulkHotGroups = 8; ///< see WorkloadConfig

    bool batching = true;
    std::uint64_t batchWindowCycles = 256;

    std::size_t queueCapacity = 64;  ///< per class per channel; 0 = inf
    std::uint32_t closedLoopWindow = 8; ///< clients per channel
    std::uint64_t retryBackoffCycles = 256; ///< closed-loop reject wait

    bool collectMetrics = false; ///< fill ServiceStats::metrics
    bool collectTrace = false;   ///< fill ServiceStats::trace

    /**
     * Live reliability: shift-fault injection, guard-policy handling
     * with correction latency folded into service times, DBC health
     * tracking, and degradation-aware steering.  Inactive (zero cost,
     * bit-identical results to a fault-free build) unless
     * faults.enabled().
     */
    ServiceFaultConfig faults;
};

/** Per-class service counters plus the class latency distribution. */
struct ClassStats
{
    std::uint64_t generated = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;  ///< backpressure drops
    std::uint64_t completed = 0;
    std::uint64_t maxQueueDepth = 0; ///< peak admitted-incomplete
    LatencyHistogram latency;

    void merge(const ClassStats &o);
};

/** Merged results of a service run. */
struct ServiceStats
{
    std::uint32_t channels = 0;
    std::uint64_t makespan = 0;   ///< max over channels
    std::uint64_t generated = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t dispatchedUnits = 0; ///< singles + gangs on the bus
    double busUtilization = 0.0;  ///< issued cmds / cycle, per channel
    double bankUtilization = 0.0;
    double energyPj = 0.0;
    BatchStats batch;
    LatencyHistogram latency;     ///< all classes
    std::array<ClassStats, kRequestClasses> perClass{};

    /**
     * Typed per-request verdicts.  Every generated request lands in
     * exactly one bin (completions split into Clean/Corrected/Due/Sdc;
     * drops of any kind are Rejected), so the bins always sum to
     * `generated` — with faults disabled everything is Clean/Rejected.
     */
    std::array<std::uint64_t, kRequestOutcomes> outcomes{};

    /**
     * Completion latency per outcome (Rejected stays empty), so clean
     * and corrected tails are reportable separately; per-outcome
     * histograms merge element-wise like every other histogram here.
     */
    std::array<LatencyHistogram, kRequestOutcomes> outcomeLatency{};

    // --- Reliability counters (all zero when faults are disabled) ----
    std::uint64_t injectedFaults = 0;  ///< misbehaving shift pulses
    std::uint64_t guardRetries = 0;    ///< re-executions after detection
    std::uint64_t breakerTrips = 0;    ///< DBC circuit-breaker openings
    std::uint64_t retiredGroups = 0;   ///< groups migrated to spares
    std::uint64_t deadGroups = 0;      ///< groups lost (no spare left)
    std::uint64_t steeredRequests = 0; ///< admissions routed off home
    std::uint64_t capacityRejections = 0; ///< no live group available
    std::uint64_t maintenanceUnits = 0; ///< scrub/migration bus units
    double capacityLossFraction = 0.0; ///< mean dead fraction/channel

    // --- Data-domain fault / ECC counters (zero unless enabled) ------
    std::uint64_t dataFaultsInjected = 0; ///< data-domain bit flips
    std::uint64_t eccCorrections = 0; ///< SECDED words fixed in-line
    std::uint64_t eccDetectedUncorrectable = 0; ///< SECDED DUE words

    /**
     * Per-channel activity counters ("channel<N>", "channel<N>/batcher"
     * components), populated when ServiceConfig::collectMetrics is set.
     * Channels own disjoint component paths and are merged in channel
     * order, so the registry (energy sums included) is bit-identical
     * across worker-thread counts for a fixed seed.
     */
    obs::MetricsRegistry metrics;

    /**
     * Dispatch spans (pid = channel, tid = bank), populated when
     * ServiceConfig::collectTrace is set; concatenated in channel
     * order.
     */
    obs::TraceSink trace;

    /** Completed requests per 1000 cycles (all channels combined). */
    double throughputPerKcycle() const;

    /** Multi-line human-readable report. */
    std::string report() const;
};

/** Runs the sharded service simulation. */
class ServiceEngine
{
  public:
    explicit ServiceEngine(const ServiceConfig &cfg);

    /** Simulate all channels and merge their results. */
    ServiceStats run() const;

  private:
    ServiceConfig cfg_;
    ServiceCostTable costs_;
};

/** Convenience wrapper: build an engine and run it. */
ServiceStats runService(const ServiceConfig &cfg);

} // namespace coruscant

#endif // CORUSCANT_SERVICE_SERVICE_ENGINE_HPP
