#include "service/workload.hpp"

#include <cmath>
#include <sstream>

#include "util/logging.hpp"

namespace coruscant {

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
    case ArrivalProcess::Poisson:
        return "poisson";
    case ArrivalProcess::Bursty:
        return "bursty";
    case ArrivalProcess::ClosedLoop:
        return "closed";
    }
    return "?";
}

WorkloadMix
WorkloadMix::uniform()
{
    WorkloadMix m;
    m.weight.fill(1.0);
    return m;
}

WorkloadMix
WorkloadMix::pimServing()
{
    WorkloadMix m;
    m.weight[static_cast<std::size_t>(RequestClass::Read)] = 0.15;
    m.weight[static_cast<std::size_t>(RequestClass::Write)] = 0.10;
    m.weight[static_cast<std::size_t>(RequestClass::BulkBitwise)] = 0.50;
    m.weight[static_cast<std::size_t>(RequestClass::MultiOpAdd)] = 0.15;
    m.weight[static_cast<std::size_t>(RequestClass::Reduce)] = 0.05;
    m.weight[static_cast<std::size_t>(RequestClass::MacTile)] = 0.05;
    return m;
}

WorkloadMix
WorkloadMix::parse(const std::string &text)
{
    WorkloadMix m;
    std::istringstream is(text);
    std::string part;
    while (std::getline(is, part, ',')) {
        if (part.empty())
            continue;
        auto colon = part.find(':');
        fatalIf(colon == std::string::npos, "mix entry '", part,
                "' is not name:weight");
        std::string name = part.substr(0, colon);
        double w = 0;
        try {
            w = std::stod(part.substr(colon + 1));
        } catch (const std::exception &) {
            fatal("mix entry '", part, "' has a malformed weight");
        }
        fatalIf(w < 0, "mix weight for '", name, "' is negative");
        bool known = false;
        for (std::size_t c = 0; c < kRequestClasses; ++c) {
            if (name == requestClassName(static_cast<RequestClass>(c))) {
                m.weight[c] = w;
                known = true;
                break;
            }
        }
        fatalIf(!known, "unknown request class '", name,
                "' (read, write, bulk, add, reduce, mac)");
    }
    double total = 0;
    for (double w : m.weight)
        total += w;
    fatalIf(total <= 0, "mix '", text, "' has no positive weight");
    return m;
}

std::string
WorkloadMix::describe() const
{
    std::ostringstream os;
    double total = 0;
    for (double w : weight)
        total += w;
    bool first = true;
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
        if (weight[c] <= 0)
            continue;
        if (!first)
            os << ",";
        os << requestClassName(static_cast<RequestClass>(c)) << ":"
           << weight[c] / total;
        first = false;
    }
    return os.str();
}

std::uint64_t
channelSeed(std::uint64_t seed, std::uint32_t channel)
{
    // SplitMix64 finalizer over the pair: well-separated streams for
    // adjacent channels even with small user seeds.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                                 (static_cast<std::uint64_t>(channel) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig &cfg,
                                     std::uint64_t seed,
                                     std::uint32_t channel)
    : cfg_(cfg), rng_(channelSeed(seed, channel))
{
    fatalIf(cfg_.banks == 0, "workload needs at least one bank");
    fatalIf(cfg_.dbcGroups == 0, "workload needs a DBC group");
    fatalIf(cfg_.ratePerKcycle <= 0 &&
                cfg_.process != ArrivalProcess::ClosedLoop,
            "open-loop workload needs a positive rate");
    double total = 0;
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
        total += cfg_.mix.weight[c];
        cumulative_[c] = total;
    }
    fatalIf(total <= 0, "workload mix has no positive weight");
    if (cfg_.process == ArrivalProcess::Bursty) {
        burstOn_ = rng_.nextBool(cfg_.burstFraction);
        burstLeft_ = exponential(
            burstOn_ ? cfg_.meanBurstCycles
                     : cfg_.meanBurstCycles *
                           (1.0 - cfg_.burstFraction) /
                           cfg_.burstFraction);
    }
}

double
WorkloadGenerator::exponential(double mean_cycles)
{
    // Inverse-CDF with u in (0,1]: never log(0).
    double u = 1.0 - rng_.nextDouble();
    return -mean_cycles * std::log(u);
}

void
WorkloadGenerator::advanceClock()
{
    if (cfg_.process == ArrivalProcess::Poisson) {
        clock_ += exponential(1000.0 / cfg_.ratePerKcycle);
        return;
    }
    // Two-state modulated Poisson: the on state runs at burstFactor
    // times the base rate; the off state absorbs the difference so the
    // long-run offered rate stays ratePerKcycle (clamped at zero when
    // burstFraction * burstFactor > 1).
    const double f = cfg_.burstFraction;
    const double on_rate = cfg_.ratePerKcycle * cfg_.burstFactor;
    const double off_rate =
        std::max(0.0, cfg_.ratePerKcycle * (1.0 - f * cfg_.burstFactor) /
                          (1.0 - f));
    for (;;) {
        if (burstLeft_ <= 0) {
            burstOn_ = !burstOn_;
            burstLeft_ = exponential(
                burstOn_ ? cfg_.meanBurstCycles
                         : cfg_.meanBurstCycles * (1.0 - f) / f);
        }
        double rate = burstOn_ ? on_rate : off_rate;
        if (rate <= 1e-12) {
            clock_ += burstLeft_;
            burstLeft_ = 0;
            continue;
        }
        double dt = exponential(1000.0 / rate);
        if (dt <= burstLeft_) {
            clock_ += dt;
            burstLeft_ -= dt;
            return;
        }
        // Memoryless: discard the draw past the state boundary and
        // resample in the next state.
        clock_ += burstLeft_;
        burstLeft_ = 0;
    }
}

ServiceRequest
WorkloadGenerator::sampleBody()
{
    ServiceRequest r;
    r.id = produced_;
    double u = rng_.nextDouble() * cumulative_[kRequestClasses - 1];
    std::size_t c = 0;
    while (c + 1 < kRequestClasses && u >= cumulative_[c])
        ++c;
    r.cls = static_cast<RequestClass>(c);
    if (r.cls == RequestClass::BulkBitwise && cfg_.bulkHotGroups > 0) {
        std::uint32_t hot = static_cast<std::uint32_t>(
            rng_.nextBelow(cfg_.bulkHotGroups));
        r.bank = hot % cfg_.banks;
        r.dbcGroup = (hot / cfg_.banks) % cfg_.dbcGroups;
    } else {
        r.bank = static_cast<std::uint32_t>(rng_.nextBelow(cfg_.banks));
        r.dbcGroup = static_cast<std::uint32_t>(
            rng_.nextBelow(cfg_.dbcGroups));
    }
    switch (r.cls) {
    case RequestClass::Read:
    case RequestClass::Write:
        r.size = 1 + static_cast<std::uint32_t>(rng_.nextBelow(4));
        break;
    case RequestClass::MultiOpAdd:
        r.size = 2 + static_cast<std::uint32_t>(rng_.nextBelow(
                         cfg_.maxAddOperands - 1));
        break;
    case RequestClass::MacTile:
        r.size = 1 + static_cast<std::uint32_t>(rng_.nextBelow(4));
        break;
    case RequestClass::BulkBitwise:
    case RequestClass::Reduce:
        r.size = 1;
        break;
    }
    return r;
}

bool
WorkloadGenerator::next(ServiceRequest &out)
{
    fatalIf(cfg_.process == ArrivalProcess::ClosedLoop,
            "closed-loop arrivals are driven by completions; "
            "use sampleAt()");
    advanceClock();
    std::uint64_t arrival = static_cast<std::uint64_t>(clock_);
    if (arrival >= cfg_.durationCycles)
        return false;
    out = sampleBody();
    out.arrival = arrival;
    ++produced_;
    return true;
}

ServiceRequest
WorkloadGenerator::sampleAt(std::uint64_t arrival)
{
    ServiceRequest r = sampleBody();
    r.arrival = arrival;
    ++produced_;
    return r;
}

} // namespace coruscant
