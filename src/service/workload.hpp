/**
 * @file
 * Multi-class load generation for the service layer.
 *
 * Open-loop streams model front-end traffic that does not wait for
 * the memory system (arrivals keep coming under overload — the regime
 * where tail latency lives):
 *  - Poisson: exponential inter-arrivals at the offered rate;
 *  - Bursty: a two-state (on/off) modulated Poisson process — bursts
 *    arrive at a multiple of the base rate, idle gaps in between, same
 *    long-run offered rate.
 *
 * Closed-loop streams model a fixed population of clients with one
 * outstanding request each: a new request is issued only when a window
 * slot frees (the engine drives those arrivals from completions).
 *
 * Each channel owns one generator seeded from (seed, channel), so the
 * stream a channel sees is a pure function of the configuration — not
 * of which worker thread simulates it.  That is what makes the sharded
 * engine bit-identical to the single-threaded run.
 */

#ifndef CORUSCANT_SERVICE_WORKLOAD_HPP
#define CORUSCANT_SERVICE_WORKLOAD_HPP

#include <array>
#include <cstdint>
#include <string>

#include "service/request.hpp"
#include "util/rng.hpp"

namespace coruscant {

/** Arrival process of the generated stream. */
enum class ArrivalProcess
{
    Poisson,
    Bursty,
    ClosedLoop,
};

const char *arrivalProcessName(ArrivalProcess p);

/** Per-class traffic weights (need not be normalized). */
struct WorkloadMix
{
    std::array<double, kRequestClasses> weight{};

    /** All classes equally likely. */
    static WorkloadMix uniform();

    /** Paper-flavoured default: bulk-heavy PIM serving mix. */
    static WorkloadMix pimServing();

    /**
     * Parse "read:0.2,bulk:0.5,add:0.2,mac:0.1" (class names from
     * requestClassName(); omitted classes get weight 0).  Throws
     * FatalError on unknown names or malformed weights.
     */
    static WorkloadMix parse(const std::string &text);

    std::string describe() const;
};

/** Configuration of one generated stream. */
struct WorkloadConfig
{
    WorkloadMix mix = WorkloadMix::pimServing();
    ArrivalProcess process = ArrivalProcess::Poisson;
    double ratePerKcycle = 8.0;   ///< offered requests per 1000 cycles
    std::uint64_t durationCycles = 100000; ///< arrivals beyond stop
    std::uint32_t banks = 16;     ///< banks per channel
    std::uint32_t dbcGroups = 4;  ///< alignment groups per bank
    double burstFactor = 4.0;     ///< on-state rate multiplier
    double burstFraction = 0.2;   ///< long-run fraction of time on
    double meanBurstCycles = 2000; ///< mean on-state dwell
    std::size_t maxAddOperands = 5; ///< size-dist cap for MultiOpAdd

    /**
     * Bulk-bitwise requests fold into shared accumulators (the bitmap
     * base-column pattern), so they concentrate on this many hot
     * (bank, DBC group) homes instead of spreading uniformly; 0
     * spreads them like every other class.
     */
    std::uint32_t bulkHotGroups = 8;
};

/**
 * Deterministic per-channel request stream.
 *
 * next() returns requests with non-decreasing arrival cycles until the
 * configured duration is exhausted (open-loop), or forever at caller-
 * chosen arrival times (closed-loop, via sampleAt()).
 */
class WorkloadGenerator
{
  public:
    WorkloadGenerator(const WorkloadConfig &cfg, std::uint64_t seed,
                      std::uint32_t channel);

    /**
     * Open-loop: produce the next arrival.  Returns false once the
     * next arrival would fall past the duration.
     * @pre cfg.process != ClosedLoop
     */
    bool next(ServiceRequest &out);

    /** Closed-loop: materialize a request arriving at @p arrival. */
    ServiceRequest sampleAt(std::uint64_t arrival);

    /** Requests produced so far. */
    std::uint64_t produced() const { return produced_; }

  private:
    double exponential(double mean_cycles);
    void advanceClock();
    ServiceRequest sampleBody();

    WorkloadConfig cfg_;
    Rng rng_;
    std::array<double, kRequestClasses> cumulative_{};
    double clock_ = 0.0;        ///< continuous arrival clock
    bool burstOn_ = false;
    double burstLeft_ = 0.0;    ///< cycles left in the current state
    std::uint64_t produced_ = 0;
};

/** Deterministic per-channel seed derivation (SplitMix of the pair). */
std::uint64_t channelSeed(std::uint64_t seed, std::uint32_t channel);

} // namespace coruscant

#endif // CORUSCANT_SERVICE_WORKLOAD_HPP
