#include "util/bit_vector.hpp"

#include <bit>
#include <cassert>

namespace coruscant {

BitVector::BitVector(std::size_t size, bool value)
    : numBits(size), words(wordCount(size), value ? ~0ULL : 0ULL)
{
    clearPadding();
}

BitVector
BitVector::fromUint64(std::size_t size, std::uint64_t bits)
{
    BitVector v(size);
    if (!v.words.empty()) {
        v.words[0] = bits;
        v.clearPadding();
    }
    return v;
}

BitVector
BitVector::fromString(const std::string &s)
{
    BitVector v(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[s.size() - 1 - i];
        assert(c == '0' || c == '1');
        v.set(i, c == '1');
    }
    return v;
}

bool
BitVector::get(std::size_t idx) const
{
    assert(idx < numBits);
    return (words[idx / bitsPerWord] >> (idx % bitsPerWord)) & 1ULL;
}

void
BitVector::set(std::size_t idx, bool value)
{
    assert(idx < numBits);
    std::uint64_t mask = 1ULL << (idx % bitsPerWord);
    if (value)
        words[idx / bitsPerWord] |= mask;
    else
        words[idx / bitsPerWord] &= ~mask;
}

void
BitVector::fill(bool value)
{
    for (auto &w : words)
        w = value ? ~0ULL : 0ULL;
    clearPadding();
}

std::size_t
BitVector::popcount() const
{
    std::size_t n = 0;
    for (auto w : words)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

BitVector
BitVector::shiftedLeft(std::size_t n) const
{
    BitVector out(numBits);
    if (n >= numBits)
        return out;
    const std::size_t word_shift = n / bitsPerWord;
    const std::size_t bit_shift = n % bitsPerWord;
    for (std::size_t i = words.size(); i-- > 0;) {
        std::uint64_t w = 0;
        if (i >= word_shift) {
            w = words[i - word_shift] << bit_shift;
            if (bit_shift > 0 && i > word_shift)
                w |= words[i - word_shift - 1] >> (bitsPerWord - bit_shift);
        }
        out.words[i] = w;
    }
    out.clearPadding();
    return out;
}

BitVector
BitVector::shiftedRight(std::size_t n) const
{
    BitVector out(numBits);
    if (n >= numBits)
        return out;
    const std::size_t word_shift = n / bitsPerWord;
    const std::size_t bit_shift = n % bitsPerWord;
    for (std::size_t i = 0; i < words.size(); ++i) {
        std::uint64_t w = 0;
        if (i + word_shift < words.size()) {
            w = words[i + word_shift] >> bit_shift;
            if (bit_shift > 0 && i + word_shift + 1 < words.size())
                w |= words[i + word_shift + 1] << (bitsPerWord - bit_shift);
        }
        out.words[i] = w;
    }
    out.clearPadding();
    return out;
}

BitVector
BitVector::operator~() const
{
    BitVector out(*this);
    for (auto &w : out.words)
        w = ~w;
    out.clearPadding();
    return out;
}

BitVector
BitVector::operator&(const BitVector &o) const
{
    BitVector out(*this);
    out &= o;
    return out;
}

BitVector
BitVector::operator|(const BitVector &o) const
{
    BitVector out(*this);
    out |= o;
    return out;
}

BitVector
BitVector::operator^(const BitVector &o) const
{
    BitVector out(*this);
    out ^= o;
    return out;
}

BitVector &
BitVector::operator&=(const BitVector &o)
{
    assert(numBits == o.numBits);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] &= o.words[i];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &o)
{
    assert(numBits == o.numBits);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] |= o.words[i];
    return *this;
}

BitVector &
BitVector::operator^=(const BitVector &o)
{
    assert(numBits == o.numBits);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] ^= o.words[i];
    return *this;
}

bool
BitVector::operator==(const BitVector &o) const
{
    return numBits == o.numBits && words == o.words;
}

std::uint64_t
BitVector::sliceUint64(std::size_t offset, std::size_t width) const
{
    assert(width <= 64);
    assert(offset + width <= numBits);
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < width; ++i)
        if (get(offset + i))
            out |= 1ULL << i;
    return out;
}

std::uint64_t
BitVector::toUint64() const
{
    return sliceUint64(0, numBits);
}

void
BitVector::insertUint64(std::size_t offset, std::size_t width,
                        std::uint64_t value)
{
    assert(offset + width <= numBits);
    for (std::size_t i = 0; i < width; ++i)
        set(offset + i, (value >> i) & 1ULL);
}

BitVector
BitVector::slice(std::size_t offset, std::size_t width) const
{
    assert(offset + width <= numBits);
    BitVector out(width);
    for (std::size_t i = 0; i < width; ++i)
        out.set(i, get(offset + i));
    return out;
}

void
BitVector::insert(std::size_t offset, const BitVector &src)
{
    assert(offset + src.size() <= numBits);
    for (std::size_t i = 0; i < src.size(); ++i)
        set(offset + i, src.get(i));
}

std::string
BitVector::toString() const
{
    std::string s;
    s.reserve(numBits);
    for (std::size_t i = numBits; i-- > 0;)
        s.push_back(get(i) ? '1' : '0');
    return s;
}

void
BitVector::clearPadding()
{
    std::size_t rem = numBits % bitsPerWord;
    if (rem != 0 && !words.empty())
        words.back() &= (1ULL << rem) - 1;
}

} // namespace coruscant
