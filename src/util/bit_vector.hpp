/**
 * @file
 * Dynamic bit vector used to model memory rows and operand words.
 *
 * Rows in the simulated DWM/DRAM arrays are bit-slices across nanowires
 * (typically 512 bits); BitVector provides the packed storage, bitwise
 * combinators, shifting, population count, and integer packing helpers
 * used throughout the simulator.
 */

#ifndef CORUSCANT_UTIL_BIT_VECTOR_HPP
#define CORUSCANT_UTIL_BIT_VECTOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace coruscant {

/**
 * A fixed-size-after-construction vector of bits with value semantics.
 *
 * Bit index 0 is the least-significant bit when the vector is viewed as
 * an integer (e.g. by toUint64()).  All binary operators require equal
 * sizes and assert on mismatch.
 */
class BitVector
{
  public:
    /** Construct an empty (size 0) vector. */
    BitVector() = default;

    /** Construct @p size bits, all initialized to @p value. */
    explicit BitVector(std::size_t size, bool value = false);

    /**
     * Build a vector from the low @p size bits of @p bits.
     * @param size number of bits (may exceed 64; upper bits are zero)
     * @param bits source integer, bit 0 maps to index 0
     */
    static BitVector fromUint64(std::size_t size, std::uint64_t bits);

    /** Build from a string of '0'/'1' characters, index 0 = last char. */
    static BitVector fromString(const std::string &s);

    /** Number of bits. */
    std::size_t size() const { return numBits; }

    /** Whether the vector holds zero bits. */
    bool empty() const { return numBits == 0; }

    /** Read the bit at @p idx. */
    bool get(std::size_t idx) const;

    /** Set the bit at @p idx to @p value. */
    void set(std::size_t idx, bool value);

    /** Set all bits to @p value. */
    void fill(bool value);

    /** Number of '1' bits. */
    std::size_t popcount() const;

    /** True if any bit is '1'. */
    bool any() const { return popcount() > 0; }

    /** True if every bit is '1'. */
    bool all() const { return popcount() == numBits; }

    /** Logical left shift by @p n (toward higher indices), zero fill. */
    BitVector shiftedLeft(std::size_t n) const;

    /** Logical right shift by @p n (toward lower indices), zero fill. */
    BitVector shiftedRight(std::size_t n) const;

    /** Bitwise NOT. */
    BitVector operator~() const;

    BitVector operator&(const BitVector &o) const;
    BitVector operator|(const BitVector &o) const;
    BitVector operator^(const BitVector &o) const;

    BitVector &operator&=(const BitVector &o);
    BitVector &operator|=(const BitVector &o);
    BitVector &operator^=(const BitVector &o);

    bool operator==(const BitVector &o) const;
    bool operator!=(const BitVector &o) const { return !(*this == o); }

    /**
     * Interpret bits [offset, offset+width) as an unsigned integer.
     * @pre width <= 64 and offset+width <= size()
     */
    std::uint64_t sliceUint64(std::size_t offset, std::size_t width) const;

    /** Interpret the whole vector (must be <= 64 bits) as unsigned. */
    std::uint64_t toUint64() const;

    /**
     * Write the low @p width bits of @p value into
     * bits [offset, offset+width).
     */
    void insertUint64(std::size_t offset, std::size_t width,
                      std::uint64_t value);

    /** Extract bits [offset, offset+width) as a new vector. */
    BitVector slice(std::size_t offset, std::size_t width) const;

    /** Overwrite bits [offset, offset+src.size()) with @p src. */
    void insert(std::size_t offset, const BitVector &src);

    /** Render as a '0'/'1' string, most-significant bit first. */
    std::string toString() const;

  private:
    static constexpr std::size_t bitsPerWord = 64;

    static std::size_t wordCount(std::size_t bits)
    {
        return (bits + bitsPerWord - 1) / bitsPerWord;
    }

    /** Zero any bits in the final word beyond numBits. */
    void clearPadding();

    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace coruscant

#endif // CORUSCANT_UTIL_BIT_VECTOR_HPP
