#include "util/cli_args.hpp"

#include <cerrno>
#include <cstdlib>

namespace coruscant {

namespace {

/** Whole-string unsigned parse: no sign, no trailing junk. */
bool
parseSizeStrict(const std::string &s, std::size_t &out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = static_cast<std::size_t>(v);
    return true;
}

/** Whole-string floating-point parse (scientific notation allowed). */
bool
parseDoubleStrict(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

const char *
typeName(ArgType t)
{
    switch (t) {
      case ArgType::Size:
        return "unsigned integer";
      case ArgType::Double:
        return "number";
      case ArgType::String:
        return "string";
    }
    return "value";
}

} // namespace

std::size_t
ParsedArgs::getSize(const std::string &name, std::size_t dflt) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return dflt;
    std::size_t v = 0;
    parseSizeStrict(it->second, v); // validated at parse time
    return v;
}

double
ParsedArgs::getDouble(const std::string &name, double dflt) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return dflt;
    double v = 0.0;
    parseDoubleStrict(it->second, v); // validated at parse time
    return v;
}

std::string
ParsedArgs::getString(const std::string &name,
                      const std::string &dflt) const
{
    auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second;
}

ParsedArgs
parseArgs(const std::vector<std::string> &args,
          const std::vector<ArgSpec> &specs)
{
    ParsedArgs parsed;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &tok = args[i];
        if (tok.rfind("--", 0) != 0) {
            parsed.error_ = "unexpected argument '" + tok + "'";
            return parsed;
        }
        std::string name = tok.substr(2);
        const ArgSpec *spec = nullptr;
        for (const ArgSpec &s : specs)
            if (name == s.name) {
                spec = &s;
                break;
            }
        if (spec == nullptr) {
            parsed.error_ = "unknown option '" + tok + "'";
            return parsed;
        }
        if (i + 1 >= args.size()) {
            parsed.error_ = "option '" + tok + "' requires a value";
            return parsed;
        }
        const std::string &value = args[++i];
        bool valid = true;
        if (spec->type == ArgType::Size) {
            std::size_t v = 0;
            valid = parseSizeStrict(value, v);
        } else if (spec->type == ArgType::Double) {
            double v = 0.0;
            valid = parseDoubleStrict(value, v);
        }
        if (!valid) {
            parsed.error_ = "invalid value '" + value +
                            "' for option '" + tok + "' (expected " +
                            typeName(spec->type) + ")";
            return parsed;
        }
        parsed.values_[name] = value;
    }
    return parsed;
}

} // namespace coruscant
