/**
 * @file
 * Strict `--key value` command-line parsing.
 *
 * Each subcommand declares the options it accepts as a table of
 * ArgSpec entries; parseArgs() then rejects anything outside that
 * contract instead of silently falling back to defaults:
 *
 *   - an option not in the table      -> "unknown option '--x'"
 *   - a flag with no value following  -> "option '--x' requires a value"
 *   - a value the type cannot parse   -> "invalid value 'y' for ..."
 *   - a bare token without "--"       -> "unexpected argument 'y'"
 *
 * Values are validated eagerly at parse time (full-string numeric
 * consumption, no sign on unsigned sizes), so the typed getters on a
 * successful ParsedArgs cannot fail.  Repeated options keep the last
 * occurrence, matching common CLI convention.
 */

#ifndef CORUSCANT_UTIL_CLI_ARGS_HPP
#define CORUSCANT_UTIL_CLI_ARGS_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace coruscant {

/** How an option's value string is validated and read back. */
enum class ArgType
{
    Size,   ///< unsigned integer (std::size_t)
    Double, ///< floating point, scientific notation accepted
    String, ///< free-form text
};

/** One accepted option of a subcommand. */
struct ArgSpec
{
    const char *name; ///< option name without the leading "--"
    ArgType type;
};

/** Outcome of a strict parse: either valid options or a diagnostic. */
class ParsedArgs
{
  public:
    /** True when every argument matched the spec table. */
    bool ok() const { return error_.empty(); }

    /** Diagnostic for the first offending argument (empty when ok). */
    const std::string &error() const { return error_; }

    /** True when the option appeared on the command line. */
    bool has(const std::string &name) const
    {
        return values_.count(name) != 0;
    }

    /** Value of a Size option, or @p dflt when absent. */
    std::size_t getSize(const std::string &name, std::size_t dflt) const;

    /** Value of a Double option, or @p dflt when absent. */
    double getDouble(const std::string &name, double dflt) const;

    /** Value of a String option, or @p dflt when absent. */
    std::string getString(const std::string &name,
                          const std::string &dflt) const;

  private:
    friend ParsedArgs parseArgs(const std::vector<std::string> &args,
                                const std::vector<ArgSpec> &specs);

    std::map<std::string, std::string> values_;
    std::string error_;
};

/**
 * Parse @p args (the tokens after the subcommand name) against
 * @p specs.  Never exits; callers inspect ok()/error() and decide the
 * exit code, which keeps the parser unit-testable in-process.
 */
ParsedArgs parseArgs(const std::vector<std::string> &args,
                     const std::vector<ArgSpec> &specs);

} // namespace coruscant

#endif // CORUSCANT_UTIL_CLI_ARGS_HPP
