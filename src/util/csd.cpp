#include "util/csd.hpp"

#include <cassert>

namespace coruscant {

std::vector<CsdTerm>
csdRecode(std::uint64_t value)
{
    // Classic non-adjacent-form recoding: examine pairs of bits of
    // value; a run of ones ...0111...1 becomes +2^(k+len) - 2^k.
    std::vector<CsdTerm> terms;
    unsigned shift = 0;
    // Work on a wide accumulator so the +1 carry out of bit 63 is kept.
    unsigned __int128 v = value;
    while (v != 0) {
        if (v & 1) {
            // Digit is nonzero; choose sign so the remaining value is
            // divisible by 4 (yields the non-adjacent form).
            if ((v & 3) == 3) {
                terms.push_back({-1, shift});
                v += 1;
            } else {
                terms.push_back({+1, shift});
                v -= 1;
            }
        }
        v >>= 1;
        ++shift;
    }
    return terms;
}

std::size_t
csdWeight(std::uint64_t value)
{
    return csdRecode(value).size();
}

std::string
csdToString(std::uint64_t value)
{
    auto terms = csdRecode(value);
    unsigned width = 0;
    for (const auto &t : terms)
        width = std::max(width, t.shift + 1);
    if (width == 0)
        return "O";
    std::string s(width, 'O');
    for (const auto &t : terms)
        s[width - 1 - t.shift] = t.sign > 0 ? 'P' : 'N';
    return s;
}

std::size_t
csdAdditionSteps(std::uint64_t value, std::size_t max_operands)
{
    assert(max_operands >= 2);
    std::size_t remaining = csdWeight(value);
    if (remaining <= 1)
        return 0; // power of two (or zero): shifts only, no addition
    std::size_t steps = 0;
    // First step consumes up to max_operands terms; each later step
    // consumes the partial sum plus up to max_operands - 1 new terms.
    remaining -= std::min(remaining, max_operands);
    ++steps;
    while (remaining > 0) {
        remaining -= std::min(remaining, max_operands - 1);
        ++steps;
    }
    return steps;
}

} // namespace coruscant
