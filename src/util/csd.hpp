/**
 * @file
 * Canonical-signed-digit (Booth) recoding for constant multiplication.
 *
 * CORUSCANT's constant-multiplication strategy (paper Section III-D.1)
 * encodes the constant multiplier with digits in {-1, 0, +1} ("N", "O",
 * "P" in the paper) so the product is a short sum/difference of shifted
 * copies of the multiplicand.  This module provides the recoding and a
 * term-decomposition planner that groups the digits into addition steps
 * of at most a given arity (TRD - 2 operands per CORUSCANT addition).
 */

#ifndef CORUSCANT_UTIL_CSD_HPP
#define CORUSCANT_UTIL_CSD_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace coruscant {

/** One signed power-of-two term: sign * 2^shift. */
struct CsdTerm
{
    int sign = 1;       ///< +1 or -1
    unsigned shift = 0; ///< power-of-two exponent

    bool operator==(const CsdTerm &o) const
    {
        return sign == o.sign && shift == o.shift;
    }
};

/**
 * Recode @p value into canonical signed digit form.
 *
 * The result is the unique minimal-weight representation with no two
 * adjacent nonzero digits.  Terms are returned in increasing shift
 * order and satisfy sum(sign * 2^shift) == value.
 */
std::vector<CsdTerm> csdRecode(std::uint64_t value);

/** Number of nonzero digits in the CSD form of @p value. */
std::size_t csdWeight(std::uint64_t value);

/**
 * Render the CSD digits of @p value as a P/O/N string (MSB first),
 * matching the paper's notation (P = +1, O = 0, N = -1).
 */
std::string csdToString(std::uint64_t value);

/**
 * Group CSD terms of @p value into addition steps of at most
 * @p max_operands terms each (the first step has no accumulated partial
 * sum; later steps reserve one slot for the running total).
 *
 * @return number of CORUSCANT addition steps needed to multiply by
 *         @p value given an adder of arity @p max_operands.
 */
std::size_t csdAdditionSteps(std::uint64_t value, std::size_t max_operands);

} // namespace coruscant

#endif // CORUSCANT_UTIL_CSD_HPP
