/**
 * @file
 * Minimal Q-format fixed-point helpers for the CNN case study.
 *
 * The paper's full-precision CNN mode is 8-bit integer arithmetic; the
 * functional CNN executor quantizes float tensors to signed 8-bit with a
 * per-tensor scale, runs integer convolution through the PIM model, and
 * dequantizes for accuracy comparison.
 */

#ifndef CORUSCANT_UTIL_FIXED_POINT_HPP
#define CORUSCANT_UTIL_FIXED_POINT_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace coruscant {

/** Symmetric linear quantization of a float array to int8. */
struct QuantizedTensor
{
    std::vector<std::int8_t> values;
    double scale = 1.0; ///< real = scale * quantized

    /** Quantize @p data symmetrically into [-127, 127]. */
    static QuantizedTensor
    quantize(const std::vector<float> &data)
    {
        QuantizedTensor q;
        float max_abs = 0.0f;
        for (float v : data)
            max_abs = std::max(max_abs, std::abs(v));
        q.scale = max_abs > 0 ? max_abs / 127.0 : 1.0;
        q.values.reserve(data.size());
        for (float v : data) {
            int iv = static_cast<int>(std::lround(v / q.scale));
            q.values.push_back(static_cast<std::int8_t>(
                std::clamp(iv, -127, 127)));
        }
        return q;
    }

    /** Recover the approximate real value at @p i. */
    double
    dequantize(std::size_t i) const
    {
        return scale * static_cast<double>(values[i]);
    }
};

} // namespace coruscant

#endif // CORUSCANT_UTIL_FIXED_POINT_HPP
