/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user/configuration errors the simulation cannot
 * continue past; panic() is for internal invariant violations (bugs).
 */

#ifndef CORUSCANT_UTIL_LOGGING_HPP
#define CORUSCANT_UTIL_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace coruscant {

/** Thrown for invalid configurations or arguments (user's fault). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Thrown for internal invariant violations (simulator bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

} // namespace detail

/** Raise a FatalError built from the streamed arguments. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Raise a PanicError built from the streamed arguments. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** fatal() unless @p cond holds. */
template <typename... Args>
void
fatalIf(bool cond, const Args &...args)
{
    if (cond)
        fatal(args...);
}

/** panic() unless @p cond holds. */
template <typename... Args>
void
panicIf(bool cond, const Args &...args)
{
    if (cond)
        panic(args...);
}

} // namespace coruscant

#endif // CORUSCANT_UTIL_LOGGING_HPP
