/**
 * @file
 * Deterministic pseudo-random number generation for the simulators.
 *
 * A thin wrapper over a SplitMix64/xoshiro-style generator so simulation
 * runs are reproducible regardless of the standard library in use.
 */

#ifndef CORUSCANT_UTIL_RNG_HPP
#define CORUSCANT_UTIL_RNG_HPP

#include <cstdint>

namespace coruscant {

/** Small fast deterministic RNG (SplitMix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed)
    {}

    /** Next 64 uniformly random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    nextBool(double p = 0.5)
    {
        return nextDouble() < p;
    }

  private:
    std::uint64_t state;
};

} // namespace coruscant

#endif // CORUSCANT_UTIL_RNG_HPP
