#include "util/stats.hpp"

#include <sstream>

namespace coruscant {

std::string
CostLedger::summary() const
{
    std::ostringstream os;
    os << "total: " << totalCycles_ << " cycles, " << totalEnergyPj_
       << " pJ\n";
    for (const auto &[k, v] : byCategory_) {
        os << "  " << k << ": " << v.count << " ops, " << v.cycles
           << " cycles, " << v.energyPj << " pJ\n";
    }
    return os.str();
}

} // namespace coruscant
