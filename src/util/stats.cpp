#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace coruscant {

std::uint64_t
LatencyHistogram::bucketUpperEdge(std::size_t idx)
{
    if (idx < (1ull << kLinearBits))
        return idx;
    std::size_t rel = idx - (1ull << kLinearBits);
    std::size_t octave = kLinearBits + rel / (1ull << kSubBits);
    std::size_t sub = rel % (1ull << kSubBits);
    std::uint64_t step = 1ull << (octave - kSubBits);
    std::uint64_t lower = (1ull << octave) + sub * step;
    return lower + step - 1;
}

std::uint64_t
LatencyHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            // The covering bucket only bounds the order statistic to
            // [lower, upper]; its upper edge can exceed every recorded
            // observation (a single sample of 64 lands in [64, 65]).
            // No observation lies outside [min_, max_], so clamping
            // tightens the estimate without ever undershooting a
            // value that was actually observed alone in its bucket.
            return std::clamp(bucketUpperEdge(i), min_, max_);
    }
    return max_;
}

std::string
LatencyHistogram::summary() const
{
    std::ostringstream os;
    os << "n=" << count_ << " mean=" << mean() << " p50=" << p50()
       << " p95=" << p95() << " p99=" << p99() << " p99.9=" << p999()
       << " max=" << max_;
    return os.str();
}

std::string
CostLedger::summary() const
{
    std::ostringstream os;
    os << "total: " << totalCycles_ << " cycles, " << totalEnergyPj_
       << " pJ\n";
    for (const auto &[k, v] : byCategory_) {
        os << "  " << k << ": " << v.count << " ops, " << v.cycles
           << " cycles, " << v.energyPj << " pJ\n";
    }
    return os.str();
}

} // namespace coruscant
