/**
 * @file
 * Cycle and energy accounting for the simulators.
 *
 * Every modeled component charges its primitive operations to a
 * CostLedger.  Ledgers are cheap value types that can be merged, so a
 * composite operation's cost is the sum of its primitives' costs.
 */

#ifndef CORUSCANT_UTIL_STATS_HPP
#define CORUSCANT_UTIL_STATS_HPP

#include <cstdint>
#include <map>
#include <string>

namespace coruscant {

/**
 * Accumulates cycles and energy (picojoules), with per-category
 * breakdowns for reporting.
 */
class CostLedger
{
  public:
    /** Charge @p cycles cycles and @p energy_pj picojoules to @p what. */
    void
    charge(const std::string &what, std::uint64_t cycles, double energy_pj)
    {
        totalCycles_ += cycles;
        totalEnergyPj_ += energy_pj;
        auto &e = byCategory_[what];
        e.cycles += cycles;
        e.energyPj += energy_pj;
        e.count += 1;
    }

    /** Charge energy only (parallel activity hidden under other cycles). */
    void
    chargeEnergy(const std::string &what, double energy_pj)
    {
        charge(what, 0, energy_pj);
    }

    /** Merge another ledger's totals into this one. */
    void
    merge(const CostLedger &o)
    {
        totalCycles_ += o.totalCycles_;
        totalEnergyPj_ += o.totalEnergyPj_;
        for (const auto &[k, v] : o.byCategory_) {
            auto &e = byCategory_[k];
            e.cycles += v.cycles;
            e.energyPj += v.energyPj;
            e.count += v.count;
        }
    }

    void
    reset()
    {
        totalCycles_ = 0;
        totalEnergyPj_ = 0;
        byCategory_.clear();
    }

    std::uint64_t cycles() const { return totalCycles_; }
    double energyPj() const { return totalEnergyPj_; }

    /** Per-category entry. */
    struct Entry
    {
        std::uint64_t cycles = 0;
        double energyPj = 0;
        std::uint64_t count = 0;
    };

    const std::map<std::string, Entry> &byCategory() const
    {
        return byCategory_;
    }

    /** Human-readable multi-line summary. */
    std::string summary() const;

  private:
    std::uint64_t totalCycles_ = 0;
    double totalEnergyPj_ = 0;
    std::map<std::string, Entry> byCategory_;
};

} // namespace coruscant

#endif // CORUSCANT_UTIL_STATS_HPP
