/**
 * @file
 * Cycle and energy accounting for the simulators.
 *
 * Every modeled component charges its primitive operations to a
 * CostLedger.  Ledgers are cheap value types that can be merged, so a
 * composite operation's cost is the sum of its primitives' costs.
 *
 * LatencyHistogram is the companion for distributions: a log-bucketed
 * (HdrHistogram-style) histogram of cycle counts with bounded relative
 * error, cheap to merge across channels/threads, reporting the tail
 * quantiles (p50/p95/p99/p99.9) that means hide.
 */

#ifndef CORUSCANT_UTIL_STATS_HPP
#define CORUSCANT_UTIL_STATS_HPP

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace coruscant {

/**
 * Log-bucketed latency histogram.
 *
 * Values below 2^kLinearBits are recorded exactly; above that each
 * power-of-two octave is split into 2^kSubBits sub-buckets, so any
 * reported quantile's bucket edge is within 1/2^kSubBits (~3%) of the
 * true value.  Buckets are value-indexed and fixed, so merging two
 * histograms is element-wise addition and is order-independent —
 * per-channel histograms merged in any grouping give bit-identical
 * aggregates (the property the sharded service engine relies on).
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kLinearBits = 6; ///< exact below 64
    static constexpr std::size_t kSubBits = 5;    ///< 32 buckets/octave

    /** Record @p n observations of @p value cycles. */
    void
    record(std::uint64_t value, std::uint64_t n = 1)
    {
        if (n == 0)
            return;
        std::size_t idx = bucketIndex(value);
        if (idx >= buckets_.size())
            buckets_.resize(idx + 1, 0);
        buckets_[idx] += n;
        count_ += n;
        sum_ += static_cast<double>(value) * static_cast<double>(n);
        if (value > max_)
            max_ = value;
        if (count_ == n || value < min_)
            min_ = value;
    }

    /** Element-wise merge of @p o into this histogram. */
    void
    merge(const LatencyHistogram &o)
    {
        if (o.buckets_.size() > buckets_.size())
            buckets_.resize(o.buckets_.size(), 0);
        for (std::size_t i = 0; i < o.buckets_.size(); ++i)
            buckets_[i] += o.buckets_[i];
        if (o.count_ > 0 && (count_ == 0 || o.min_ < min_))
            min_ = o.min_;
        count_ += o.count_;
        sum_ += o.sum_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Value @p q of the way through the distribution (q in [0,1]).
     * Returns the upper edge of the covering bucket, clamped to the
     * exact observed [min, max]; 0 when empty.
     *
     * Error bound: values below 2^kLinearBits are exact.  Above that,
     * the true order statistic lies in the covering bucket, whose
     * width is 1/2^kSubBits of its octave, so the reported value
     * over-estimates by at most one sub-bucket — a relative error
     * <= 1/2^kSubBits (1/32 ~ 3.1%) — and never under-estimates.
     * Without the [min, max] clamp the bucket upper edge could exceed
     * every recorded observation (a single sample of 64 would report
     * 65); the clamp restores exactness whenever the covering bucket's
     * occupants are the distribution's extremes.
     */
    std::uint64_t percentile(double q) const;

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }
    std::uint64_t p999() const { return percentile(0.999); }

    /** One-line "p50=... p95=... p99=... p99.9=... max=..." summary. */
    std::string summary() const;

  private:
    static std::size_t
    bucketIndex(std::uint64_t v)
    {
        if (v < (1ull << kLinearBits))
            return static_cast<std::size_t>(v);
        std::size_t msb =
            static_cast<std::size_t>(std::bit_width(v)) - 1;
        std::size_t sub = static_cast<std::size_t>(
            (v >> (msb - kSubBits)) & ((1ull << kSubBits) - 1));
        return (1ull << kLinearBits) +
               (msb - kLinearBits) * (1ull << kSubBits) + sub;
    }

    /** Largest value mapping to bucket @p idx. */
    static std::uint64_t bucketUpperEdge(std::size_t idx);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = 0;
    double sum_ = 0.0;
};

/**
 * Accumulates cycles and energy (picojoules), with per-category
 * breakdowns for reporting.
 */
class CostLedger
{
  public:
    /** Charge @p cycles cycles and @p energy_pj picojoules to @p what. */
    void
    charge(const std::string &what, std::uint64_t cycles, double energy_pj)
    {
        totalCycles_ += cycles;
        totalEnergyPj_ += energy_pj;
        auto &e = byCategory_[what];
        e.cycles += cycles;
        e.energyPj += energy_pj;
        e.count += 1;
    }

    /** Charge energy only (parallel activity hidden under other cycles). */
    void
    chargeEnergy(const std::string &what, double energy_pj)
    {
        charge(what, 0, energy_pj);
    }

    /** Merge another ledger's totals into this one. */
    void
    merge(const CostLedger &o)
    {
        totalCycles_ += o.totalCycles_;
        totalEnergyPj_ += o.totalEnergyPj_;
        for (const auto &[k, v] : o.byCategory_) {
            auto &e = byCategory_[k];
            e.cycles += v.cycles;
            e.energyPj += v.energyPj;
            e.count += v.count;
        }
    }

    void
    reset()
    {
        totalCycles_ = 0;
        totalEnergyPj_ = 0;
        byCategory_.clear();
    }

    std::uint64_t cycles() const { return totalCycles_; }
    double energyPj() const { return totalEnergyPj_; }

    /** Per-category entry. */
    struct Entry
    {
        std::uint64_t cycles = 0;
        double energyPj = 0;
        std::uint64_t count = 0;
    };

    const std::map<std::string, Entry> &byCategory() const
    {
        return byCategory_;
    }

    /** Human-readable multi-line summary. */
    std::string summary() const;

  private:
    std::uint64_t totalCycles_ = 0;
    double totalEnergyPj_ = 0;
    std::map<std::string, Entry> byCategory_;
};

} // namespace coruscant

#endif // CORUSCANT_UTIL_STATS_HPP
