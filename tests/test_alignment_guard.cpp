/**
 * @file
 * TR-based shift-alignment guard: detection and correction of
 * one-position shifting faults.
 */

#include <gtest/gtest.h>

#include "dwm/alignment_guard.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
params(std::size_t trd = 7, std::size_t wires = 8)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

TEST(AlignmentGuard, RampCountChangesByOneBetweenPeaks)
{
    AlignmentGuard g(params());
    for (std::size_t s = 1; s + 7 < 25; ++s) {
        auto d = static_cast<long>(g.expectedCount(s + 1)) -
                 static_cast<long>(g.expectedCount(s));
        EXPECT_LE(std::abs(d), 1) << "s=" << s;
    }
    // Full window over a ramp crest counts TRD; over a trough, zero.
    EXPECT_EQ(g.expectedCount(0), 7u);
    EXPECT_EQ(g.expectedCount(7), 0u);
}

TEST(AlignmentGuard, AlignedClusterChecksClean)
{
    DomainBlockCluster dbc(params());
    AlignmentGuard g(params());
    g.install(dbc);
    for (std::size_t ws : {2u, 5u, 10u, 18u}) {
        dbc.alignWindowStart(ws);
        EXPECT_EQ(g.check(dbc), AlignmentStatus::Aligned) << ws;
    }
}

TEST(AlignmentGuard, DetectsInjectedFaultDirection)
{
    for (bool toward_left : {true, false}) {
        DomainBlockCluster dbc(params());
        AlignmentGuard g(params());
        g.install(dbc);
        dbc.alignWindowStart(3); // monotone ramp region
        dbc.injectShiftFault(toward_left);
        auto status = g.check(dbc);
        if (toward_left) {
            EXPECT_EQ(status, AlignmentStatus::OffByPlusOne);
        } else {
            EXPECT_EQ(status, AlignmentStatus::OffByMinusOne);
        }
    }
}

TEST(AlignmentGuard, CorrectionRestoresData)
{
    DomainBlockCluster dbc(params(7, 8));
    AlignmentGuard g(params(7, 8), 0);
    g.install(dbc);
    // User data on the non-guard wires.
    Rng rng(5);
    std::vector<std::uint8_t> snapshot;
    for (std::size_t r = 0; r < 32; ++r) {
        for (std::size_t w = 1; w < 8; ++w) {
            bool b = rng.nextBool();
            dbc.pokeBit(r, w, b);
            snapshot.push_back(b);
        }
    }
    dbc.alignWindowStart(4);
    dbc.injectShiftFault(true);
    ASSERT_NE(g.check(dbc), AlignmentStatus::Aligned);
    ASSERT_TRUE(g.checkAndCorrect(dbc));
    // Data rows intact after the corrective pulse.
    std::size_t i = 0;
    for (std::size_t r = 0; r < 32; ++r)
        for (std::size_t w = 1; w < 8; ++w)
            EXPECT_EQ(dbc.peekBit(r, w), snapshot[i++] != 0)
                << "row " << r << " wire " << w;
}

TEST(AlignmentGuard, PeakPositionsAreAmbiguous)
{
    DomainBlockCluster dbc(params());
    AlignmentGuard g(params());
    g.install(dbc);
    dbc.alignWindowStart(7); // trough of the ramp: both neighbors +1
    dbc.injectShiftFault(true);
    EXPECT_EQ(g.check(dbc), AlignmentStatus::Unknown);
}

TEST(AlignmentGuard, SurvivesLegalShifting)
{
    // Normal (tracked) shifts must never trip the guard.
    DomainBlockCluster dbc(params());
    AlignmentGuard g(params());
    g.install(dbc);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        if (rng.nextBool() && dbc.canShiftLeft())
            dbc.shiftLeft();
        else if (dbc.canShiftRight())
            dbc.shiftRight();
        std::size_t ws = dbc.windowStartRow();
        if (ws + 7 <= 32) {
            EXPECT_EQ(g.check(dbc), AlignmentStatus::Aligned)
                << "step " << i;
        }
    }
}

TEST(AlignmentGuard, WorksAtSmallTrd)
{
    DomainBlockCluster dbc(params(3, 4));
    AlignmentGuard g(params(3, 4));
    g.install(dbc);
    dbc.alignWindowStart(4);
    dbc.injectShiftFault(false);
    EXPECT_EQ(g.check(dbc), AlignmentStatus::OffByMinusOne);
    EXPECT_TRUE(g.checkAndCorrect(dbc));
}

} // namespace
} // namespace coruscant
