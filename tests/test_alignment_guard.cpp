/**
 * @file
 * TR-based shift-alignment guard: detection and correction of
 * one-position shifting faults.
 */

#include <gtest/gtest.h>

#include "dwm/alignment_guard.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
params(std::size_t trd = 7, std::size_t wires = 8)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

TEST(AlignmentGuard, RampCountChangesByOneBetweenPeaks)
{
    AlignmentGuard g(params());
    for (std::size_t s = 1; s + 7 < 25; ++s) {
        auto d = static_cast<long>(g.expectedCount(s + 1)) -
                 static_cast<long>(g.expectedCount(s));
        EXPECT_LE(std::abs(d), 1) << "s=" << s;
    }
    // Full window over a ramp crest counts TRD; over a trough, zero.
    EXPECT_EQ(g.expectedCount(0), 7u);
    EXPECT_EQ(g.expectedCount(7), 0u);
}

TEST(AlignmentGuard, AlignedClusterChecksClean)
{
    DomainBlockCluster dbc(params());
    AlignmentGuard g(params());
    g.install(dbc);
    for (std::size_t ws : {2u, 5u, 10u, 18u}) {
        dbc.alignWindowStart(ws);
        EXPECT_EQ(g.check(dbc), AlignmentStatus::Aligned) << ws;
    }
}

TEST(AlignmentGuard, DetectsInjectedFaultDirection)
{
    for (bool toward_left : {true, false}) {
        DomainBlockCluster dbc(params());
        AlignmentGuard g(params());
        g.install(dbc);
        dbc.alignWindowStart(3); // monotone ramp region
        dbc.injectShiftFault(toward_left);
        auto status = g.check(dbc);
        if (toward_left) {
            EXPECT_EQ(status, AlignmentStatus::OffByPlusOne);
        } else {
            EXPECT_EQ(status, AlignmentStatus::OffByMinusOne);
        }
    }
}

TEST(AlignmentGuard, CorrectionRestoresData)
{
    DomainBlockCluster dbc(params(7, 8));
    AlignmentGuard g(params(7, 8), 0);
    g.install(dbc);
    // User data on the non-guard wires.
    Rng rng(5);
    std::vector<std::uint8_t> snapshot;
    for (std::size_t r = 0; r < 32; ++r) {
        for (std::size_t w = 1; w < 8; ++w) {
            bool b = rng.nextBool();
            dbc.pokeBit(r, w, b);
            snapshot.push_back(b);
        }
    }
    dbc.alignWindowStart(4);
    dbc.injectShiftFault(true);
    ASSERT_NE(g.check(dbc), AlignmentStatus::Aligned);
    ASSERT_TRUE(g.checkAndCorrect(dbc));
    // Data rows intact after the corrective pulse.
    std::size_t i = 0;
    for (std::size_t r = 0; r < 32; ++r)
        for (std::size_t w = 1; w < 8; ++w)
            EXPECT_EQ(dbc.peekBit(r, w), snapshot[i++] != 0)
                << "row " << r << " wire " << w;
}

TEST(AlignmentGuard, PeakPositionsAreAmbiguous)
{
    DomainBlockCluster dbc(params());
    AlignmentGuard g(params());
    g.install(dbc);
    dbc.alignWindowStart(7); // trough of the ramp: both neighbors +1
    dbc.injectShiftFault(true);
    EXPECT_EQ(g.check(dbc), AlignmentStatus::Unknown);
}

TEST(AlignmentGuard, SurvivesLegalShifting)
{
    // Normal (tracked) shifts must never trip the guard.
    DomainBlockCluster dbc(params());
    AlignmentGuard g(params());
    g.install(dbc);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        if (rng.nextBool() && dbc.canShiftLeft())
            dbc.shiftLeft();
        else if (dbc.canShiftRight())
            dbc.shiftRight();
        std::size_t ws = dbc.windowStartRow();
        if (ws + 7 <= 32) {
            EXPECT_EQ(g.check(dbc), AlignmentStatus::Aligned)
                << "step " << i;
        }
    }
}

TEST(AlignmentGuard, CorrectsEverySinglePositionMisalignment)
{
    // Property: from EVERY legal window position and EITHER fault
    // direction, correct() restores alignment.  At the two extreme
    // positions the offending shift pushes the outermost data row off
    // the wire — that row's contents (guard bit included) are lost,
    // but alignment is still restored and the damage reported.
    DeviceParams p = params();
    std::size_t last = p.domainsPerWire - p.trd;
    for (std::size_t ws = 0; ws <= last; ++ws) {
        for (bool toward_left : {true, false}) {
            DomainBlockCluster dbc(p);
            AlignmentGuard g(p);
            g.install(dbc);
            dbc.alignWindowStart(ws);
            dbc.injectShiftFault(toward_left);
            GuardCorrection r = g.correct(dbc);
            EXPECT_TRUE(r.aligned)
                << "ws=" << ws << " left=" << toward_left;
            EXPECT_TRUE(r.corrected)
                << "ws=" << ws << " left=" << toward_left;
            if (r.patternDamaged)
                g.install(dbc); // owner repairs the guard track
            EXPECT_EQ(g.check(dbc), AlignmentStatus::Aligned)
                << "ws=" << ws << " left=" << toward_left;
        }
    }
}

TEST(AlignmentGuard, CorrectionPreservesSurvivingData)
{
    // Same sweep, with user data: every row that was not physically
    // pushed off the wire must be bit-exact after correction.
    DeviceParams p = params(7, 8);
    std::size_t last = p.domainsPerWire - p.trd;
    for (std::size_t ws = 0; ws <= last; ++ws) {
        for (bool toward_left : {true, false}) {
            DomainBlockCluster dbc(p);
            AlignmentGuard g(p, 0);
            g.install(dbc);
            Rng rng(17 * ws + toward_left);
            std::vector<std::uint8_t> snapshot;
            for (std::size_t r = 0; r < p.domainsPerWire; ++r)
                for (std::size_t w = 1; w < p.wiresPerDbc; ++w) {
                    bool b = rng.nextBool();
                    dbc.pokeBit(r, w, b);
                    snapshot.push_back(b);
                }
            dbc.alignWindowStart(ws);
            dbc.injectShiftFault(toward_left);
            ASSERT_TRUE(g.correct(dbc).aligned)
                << "ws=" << ws << " left=" << toward_left;
            // The over-shift at maximum excursion destroys the edge
            // data row (documented residual); all other rows survive.
            bool row0_lost = toward_left && ws == last;
            bool rowN_lost = !toward_left && ws == 0;
            std::size_t i = 0;
            for (std::size_t r = 0; r < p.domainsPerWire; ++r)
                for (std::size_t w = 1; w < p.wiresPerDbc; ++w) {
                    bool expect = snapshot[i++] != 0;
                    if ((r == 0 && row0_lost) ||
                        (r == p.domainsPerWire - 1 && rowN_lost))
                        continue;
                    EXPECT_EQ(dbc.peekBit(r, w), expect)
                        << "ws=" << ws << " left=" << toward_left
                        << " row " << r << " wire " << w;
                }
        }
    }
}

TEST(AlignmentGuard, EdgeAliasResolvedBySegmentedOuterRead)
{
    // At the last window position an over-shift leaves the window
    // count unchanged (the domain entering from the overhead region is
    // blank, the one leaving carries a 0): only the segmented TR over
    // the outer-left segment sees the deficit.
    DeviceParams p = params();
    std::size_t last = p.domainsPerWire - p.trd;
    DomainBlockCluster dbc(p);
    AlignmentGuard g(p);
    g.install(dbc);
    dbc.alignWindowStart(last);
    std::size_t window_before = dbc.transverseReadWire(g.guardWire());
    dbc.injectShiftFault(true);
    EXPECT_EQ(dbc.transverseReadWire(g.guardWire()), window_before)
        << "window count alone must alias aligned here";
    EXPECT_EQ(g.check(dbc), AlignmentStatus::OffByPlusOne);
    EXPECT_TRUE(g.checkAndCorrect(dbc));
}

TEST(AlignmentGuard, WorksAtSmallTrd)
{
    DomainBlockCluster dbc(params(3, 4));
    AlignmentGuard g(params(3, 4));
    g.install(dbc);
    dbc.alignWindowStart(4);
    dbc.injectShiftFault(false);
    EXPECT_EQ(g.check(dbc), AlignmentStatus::OffByMinusOne);
    EXPECT_TRUE(g.checkAndCorrect(dbc));
}

} // namespace
} // namespace coruscant
