/**
 * @file
 * Area model tests: paper Table I overheads and Table III PE areas.
 */

#include <gtest/gtest.h>

#include "dwm/area_model.hpp"

namespace coruscant {
namespace {

TEST(AreaModel, TableIOverheads)
{
    AreaModel model;
    EXPECT_NEAR(model.memoryOverheadFraction(PimFeatureSet::add2()),
                0.037, 0.001);
    EXPECT_NEAR(model.memoryOverheadFraction(PimFeatureSet::add5()),
                0.092, 0.001);
    EXPECT_NEAR(model.memoryOverheadFraction(PimFeatureSet::mulAdd5()),
                0.094, 0.001);
    EXPECT_NEAR(
        model.memoryOverheadFraction(PimFeatureSet::mulAdd5Bbo()),
        0.100, 0.001);
}

TEST(AreaModel, OverheadMonotoneInFeatures)
{
    AreaModel model;
    double add2 = model.memoryOverheadFraction(PimFeatureSet::add2());
    double add5 = model.memoryOverheadFraction(PimFeatureSet::add5());
    double mul = model.memoryOverheadFraction(PimFeatureSet::mulAdd5());
    double bbo =
        model.memoryOverheadFraction(PimFeatureSet::mulAdd5Bbo());
    EXPECT_LT(add2, add5);
    EXPECT_LT(add5, mul);
    EXPECT_LT(mul, bbo);
}

TEST(AreaModel, TableIIIPeAreas)
{
    // CORUSCANT column of Table III.
    EXPECT_NEAR(AreaModel::peAreaUm2(3, 2, false), 2.16, 1e-9);
    EXPECT_NEAR(AreaModel::peAreaUm2(7, 2, false), 3.60, 1e-9);
    EXPECT_NEAR(AreaModel::peAreaUm2(7, 5, false), 4.94, 1e-9);
    EXPECT_NEAR(AreaModel::peAreaUm2(3, 2, true), 3.80, 1e-9);
    EXPECT_NEAR(AreaModel::peAreaUm2(7, 5, true), 5.07, 1e-9);
}

TEST(AreaModel, PaperOverheadDomains)
{
    AreaModel model;
    EXPECT_EQ(model.baselineOverheadDomains(), 16u);
    EXPECT_EQ(model.pimOverheadDomains(7), 25u);
    EXPECT_EQ(model.pimOverheadDomains(3), 29u);
}

TEST(AreaModel, CellAreaIsTwoFSquared)
{
    AreaModel model(32.0);
    EXPECT_NEAR(model.cellAreaUm2(), 2 * 0.032 * 0.032, 1e-12);
}

TEST(AreaModel, SmallerTrdHalvesOverhead)
{
    // Paper conclusion: "Using a smaller TRD, this area can be cut in
    // less than half."
    AreaModel model;
    double full =
        model.memoryOverheadFraction(PimFeatureSet::mulAdd5Bbo());
    double small = model.memoryOverheadFraction(PimFeatureSet::add2());
    EXPECT_LT(small, full / 2);
}

} // namespace
} // namespace coruscant
