/**
 * @file
 * Device-level functional baselines: DW-NN (GMR/PCSA bit-serial
 * datapath) and SPIM (skyrmion gate netlist).
 */

#include <gtest/gtest.h>

#include "baselines/dwnn_device.hpp"
#include "baselines/spim_device.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

TEST(DwNnDevice, GmrXorTruthTable)
{
    DwNnDevice d;
    EXPECT_FALSE(d.gmrXor(false, false)); // parallel -> low R
    EXPECT_TRUE(d.gmrXor(true, false));   // anti-parallel -> high R
    EXPECT_TRUE(d.gmrXor(false, true));
    EXPECT_FALSE(d.gmrXor(true, true));
}

TEST(DwNnDevice, PcsaMajority)
{
    DwNnDevice d;
    EXPECT_FALSE(d.pcsaMajority(false, false, false));
    EXPECT_FALSE(d.pcsaMajority(true, false, false));
    EXPECT_TRUE(d.pcsaMajority(true, true, false));
    EXPECT_TRUE(d.pcsaMajority(true, true, true));
}

TEST(DwNnDevice, AdditionIsExact)
{
    DwNnDevice d;
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t a = rng.next() & 0xFFFF;
        std::uint64_t b = rng.next() & 0xFFFF;
        EXPECT_EQ(d.add(a, b, 16), a + b);
    }
}

TEST(DwNnDevice, EightBitAddMatchesPublishedCost)
{
    DwNnDevice d;
    d.add(200, 100, 8);
    EXPECT_EQ(d.ledger().cycles(), 54u); // published Table III value
    EXPECT_NEAR(d.ledger().energyPj(), 40.0, 0.5);
}

TEST(DwNnDevice, MultiplicationIsExact)
{
    DwNnDevice d;
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        std::uint64_t a = rng.next() & 0xFF;
        std::uint64_t b = rng.next() & 0xFF;
        EXPECT_EQ(d.multiply(a, b, 8), a * b);
    }
}

TEST(DwNnDevice, EmergentMultiplyCostExceedsPublishedPipelined)
{
    // Without the sum/carry pipelining the paper leaves unspecified,
    // the raw shift-and-add datapath costs more than the published
    // 163 cycles (worst case: all multiplier bits set).
    DwNnDevice d;
    d.multiply(0xFF, 0xFF, 8);
    EXPECT_GT(d.ledger().cycles(), 163u);
}

TEST(SpimDevice, GateTruthTables)
{
    SpimDevice s;
    EXPECT_TRUE(s.orGate(true, false));
    EXPECT_FALSE(s.orGate(false, false));
    EXPECT_TRUE(s.andGate(true, true));
    EXPECT_FALSE(s.andGate(true, false));
    EXPECT_TRUE(s.notGate(false));
}

TEST(SpimDevice, FullAdderTruthTable)
{
    SpimDevice s;
    for (int a = 0; a <= 1; ++a) {
        for (int b = 0; b <= 1; ++b) {
            for (int c = 0; c <= 1; ++c) {
                auto out = s.fullAdder(a, b, c);
                int total = a + b + c;
                EXPECT_EQ(out.sum, total % 2 == 1)
                    << a << b << c;
                EXPECT_EQ(out.carry, total >= 2) << a << b << c;
            }
        }
    }
}

TEST(SpimDevice, AdditionIsExact)
{
    SpimDevice s;
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t a = rng.next() & 0xFFFFF;
        std::uint64_t b = rng.next() & 0xFFFFF;
        EXPECT_EQ(s.add(a, b, 20), a + b);
    }
}

TEST(SpimDevice, EightBitAddMatchesPublishedCost)
{
    SpimDevice s;
    s.add(123, 45, 8);
    EXPECT_EQ(s.ledger().cycles(), 49u); // published Table III value
    EXPECT_NEAR(s.ledger().energyPj(), 28.0, 0.5);
}

TEST(SpimDevice, MultiplicationIsExact)
{
    SpimDevice s;
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        std::uint64_t a = rng.next() & 0xFF;
        std::uint64_t b = rng.next() & 0xFF;
        EXPECT_EQ(s.multiply(a, b, 8), a * b);
    }
}

TEST(BaselineDevices, SpimAddFasterThanDwNn)
{
    // The published ordering: SPIM 49 < DW-NN 54 cycles.
    DwNnDevice dwnn;
    SpimDevice spim;
    dwnn.add(1, 2, 8);
    spim.add(1, 2, 8);
    EXPECT_LT(spim.ledger().cycles(), dwnn.ledger().cycles());
}

TEST(BaselineDevices, DeviceModelsAgreeWithCostFormulas)
{
    // The device simulators and the Table III cost formulas must tell
    // the same story at the published calibration point.
    DwNnDevice dwnn;
    dwnn.add(77, 88, 8);
    EXPECT_EQ(dwnn.ledger().cycles(), 54u);
    SpimDevice spim;
    spim.add(77, 88, 8);
    EXPECT_EQ(spim.ledger().cycles(), 49u);
}

} // namespace
} // namespace coruscant
