/**
 * @file
 * DW-NN / SPIM cost models (paper Table III columns) and the CPU /
 * ISAAC baselines.
 */

#include <gtest/gtest.h>

#include "baselines/cpu_system.hpp"
#include "baselines/dwm_pim_baselines.hpp"
#include "core/op_cost.hpp"

namespace coruscant {
namespace {

TEST(DwNnModel, TableIIIValues)
{
    auto m = DwmPimBaseline::dwNn();
    EXPECT_EQ(m.addCost(8).cycles, 54u);
    EXPECT_NEAR(m.addCost(8).energyPj, 40.0, 1e-9);
    auto area5 = m.addCost(5, 8, ComposeMode::AreaOptimized);
    EXPECT_EQ(area5.cycles, 264u);
    EXPECT_NEAR(area5.energyPj, 169.6, 1e-9);
    auto lat5 = m.addCost(5, 8, ComposeMode::LatencyOptimized);
    EXPECT_EQ(lat5.cycles, 194u);
    EXPECT_NEAR(lat5.energyPj, 169.6, 1e-9);
    EXPECT_EQ(m.multiplyCost(8).cycles, 163u);
    EXPECT_NEAR(m.multiplyCost(8).energyPj, 308.0, 1e-9);
}

TEST(SpimModel, TableIIIValues)
{
    auto m = DwmPimBaseline::spim();
    EXPECT_EQ(m.addCost(8).cycles, 49u);
    EXPECT_NEAR(m.addCost(8).energyPj, 28.0, 1e-9);
    auto area5 = m.addCost(5, 8, ComposeMode::AreaOptimized);
    EXPECT_EQ(area5.cycles, 244u);
    EXPECT_NEAR(area5.energyPj, 121.6, 1e-9);
    auto lat5 = m.addCost(5, 8, ComposeMode::LatencyOptimized);
    EXPECT_EQ(lat5.cycles, 179u);
    EXPECT_EQ(m.multiplyCost(8).cycles, 149u);
    EXPECT_NEAR(m.multiplyCost(8).energyPj, 196.0, 1e-9);
}

TEST(BaselineAreas, TableIIIValues)
{
    auto dwnn = DwmPimBaseline::dwNn();
    EXPECT_NEAR(dwnn.areaUm2(2, false), 2.6, 1e-9);
    EXPECT_NEAR(dwnn.areaUm2(5, false, ComposeMode::LatencyOptimized),
                5.2, 1e-9);
    EXPECT_NEAR(dwnn.areaUm2(2, true), 18.9, 1e-9);
    auto spim = DwmPimBaseline::spim();
    EXPECT_NEAR(spim.areaUm2(2, false), 2.0, 1e-9);
    EXPECT_NEAR(spim.areaUm2(2, true), 16.8, 1e-9);
}

TEST(BaselineModels, FunctionalExecution)
{
    auto m = DwmPimBaseline::spim();
    EXPECT_EQ(m.execAdd({200, 100}, 8), (200u + 100u) & 0xFF);
    EXPECT_EQ(m.execAdd({1, 2, 3, 4, 5}, 8), 15u);
    EXPECT_EQ(m.execMultiply(200, 100, 8), 20000u);
}

TEST(PaperClaims, CoruscantSpeedupsOverSpim)
{
    // Paper Sec. V-B: CORUSCANT is 1.9x / 9.4x / 6.9x / 2.3x faster
    // than SPIM for 2-op add, 5-op add (area), 5-op add (latency),
    // and 2-op multiply.
    CoruscantCostModel cor(7);
    auto spim = DwmPimBaseline::spim();
    double s_add2 = static_cast<double>(spim.addCost(8).cycles) /
                    static_cast<double>(cor.add(2, 8).cycles);
    EXPECT_NEAR(s_add2, 1.9, 0.05); // 49 / 26
    double s_add5a =
        static_cast<double>(
            spim.addCost(5, 8, ComposeMode::AreaOptimized).cycles) /
        static_cast<double>(cor.add(5, 8).cycles);
    EXPECT_NEAR(s_add5a, 9.4, 0.05); // 244 / 26
    double s_add5l =
        static_cast<double>(
            spim.addCost(5, 8, ComposeMode::LatencyOptimized).cycles) /
        static_cast<double>(cor.add(5, 8).cycles);
    EXPECT_NEAR(s_add5l, 6.9, 0.05); // 179 / 26
    double s_mul = static_cast<double>(spim.multiplyCost(8).cycles) /
                   static_cast<double>(cor.multiply(8).cycles);
    EXPECT_NEAR(s_mul, 2.3, 0.05); // 149 / 64
}

TEST(PaperClaims, CoruscantEnergyGainsOverSpim)
{
    // Paper Sec. V-B energy: 2.2x / 5.5x / 5.5x / 3.4x less energy.
    CoruscantCostModel cor(7);
    CoruscantCostModel cor3(3);
    auto spim = DwmPimBaseline::spim();
    // The paper's 2.2x two-operand claim corresponds to the TRD = 3
    // adder configuration (28 pJ vs 10.15 pJ = 2.8x at our pin).
    EXPECT_GT(spim.addCost(8).energyPj / cor3.add(2, 8).energyPj, 2.2);
    EXPECT_NEAR(spim.addCost(5, 8, ComposeMode::AreaOptimized).energyPj /
                    cor.add(5, 8).energyPj,
                5.5, 0.1);
    // Multiply energy emerges from the primitive model rather than a
    // published pin; require the win, with the paper's 3.4x as the
    // anchor and generous slack (see EXPERIMENTS.md).
    double mul_gain =
        spim.multiplyCost(8).energyPj / cor.multiply(8).energyPj;
    EXPECT_GT(mul_gain, 1.5);
}

TEST(CpuSystem, StreamingLatencyScalesWithLines)
{
    CpuSystem cpu(DdrTiming::dram());
    AccessSummary s1{1000, 0, 0, 0};
    AccessSummary s2{2000, 0, 0, 0};
    EXPECT_GT(cpu.latencyCycles(s2),
              cpu.latencyCycles(s1) * 19 / 10);
}

TEST(CpuSystem, DwmFasterThanDramForSameTrace)
{
    // Paper Fig. 10: "DRAM actually is slower than the DWM memory."
    AccessSummary s{100000, 50000, 10000, 10000};
    CpuSystem dram(DdrTiming::dram());
    CpuSystem dwm(DdrTiming::dwm(), 32, /*avg_shift=*/4);
    EXPECT_LE(dwm.latencyCycles(s), dram.latencyCycles(s));
}

TEST(CpuSystem, EnergyUsesPaperConstants)
{
    CpuSystem cpu(DdrTiming::dram());
    AccessSummary s{1, 0, 1, 1};
    // 64 bytes * 1250 + 111 + 164.
    EXPECT_NEAR(cpu.energyPj(s), 64 * 1250.0 + 111.0 + 164.0, 1e-6);
}

TEST(Isaac, PublishedThroughputs)
{
    EXPECT_NEAR(IsaacModel::alexnetFps, 34.0, 1e-9);
    EXPECT_NEAR(IsaacModel::lenet5Fps, 2581.0, 1e-9);
    EXPECT_NEAR(IsaacModel::estimateFps(666e6), 34.0, 0.1);
}

} // namespace
} // namespace coruscant
