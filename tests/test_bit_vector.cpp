/**
 * @file
 * Unit tests for BitVector.
 */

#include <gtest/gtest.h>

#include "util/bit_vector.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

TEST(BitVector, DefaultIsEmpty)
{
    BitVector v;
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
}

TEST(BitVector, ConstructAllZero)
{
    BitVector v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.popcount(), 0u);
    EXPECT_FALSE(v.any());
}

TEST(BitVector, ConstructAllOne)
{
    BitVector v(100, true);
    EXPECT_EQ(v.popcount(), 100u);
    EXPECT_TRUE(v.all());
}

TEST(BitVector, SetAndGet)
{
    BitVector v(130);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.set(64, false);
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, FromUint64RoundTrip)
{
    auto v = BitVector::fromUint64(16, 0xBEEF);
    EXPECT_EQ(v.toUint64(), 0xBEEFu);
    EXPECT_EQ(v.size(), 16u);
}

TEST(BitVector, FromUint64Truncates)
{
    auto v = BitVector::fromUint64(8, 0x1FF);
    EXPECT_EQ(v.toUint64(), 0xFFu);
}

TEST(BitVector, FromStringMsbFirst)
{
    auto v = BitVector::fromString("1010");
    EXPECT_EQ(v.size(), 4u);
    EXPECT_TRUE(v.get(1));
    EXPECT_TRUE(v.get(3));
    EXPECT_FALSE(v.get(0));
    EXPECT_EQ(v.toString(), "1010");
}

TEST(BitVector, ShiftLeftSmall)
{
    auto v = BitVector::fromUint64(16, 0x00FF);
    EXPECT_EQ(v.shiftedLeft(4).toUint64(), 0x0FF0u);
}

TEST(BitVector, ShiftLeftDropsHighBits)
{
    auto v = BitVector::fromUint64(8, 0xFF);
    EXPECT_EQ(v.shiftedLeft(4).toUint64(), 0xF0u);
}

TEST(BitVector, ShiftRightSmall)
{
    auto v = BitVector::fromUint64(16, 0x0FF0);
    EXPECT_EQ(v.shiftedRight(4).toUint64(), 0x00FFu);
}

TEST(BitVector, ShiftAcrossWordBoundary)
{
    BitVector v(130);
    v.set(63, true);
    auto l = v.shiftedLeft(1);
    EXPECT_TRUE(l.get(64));
    EXPECT_EQ(l.popcount(), 1u);
    auto r = l.shiftedRight(1);
    EXPECT_TRUE(r.get(63));
}

TEST(BitVector, ShiftByWholeSizeGivesZero)
{
    BitVector v(70, true);
    EXPECT_EQ(v.shiftedLeft(70).popcount(), 0u);
    EXPECT_EQ(v.shiftedRight(70).popcount(), 0u);
    EXPECT_EQ(v.shiftedLeft(200).popcount(), 0u);
}

TEST(BitVector, BitwiseOperators)
{
    auto a = BitVector::fromUint64(8, 0b11001100);
    auto b = BitVector::fromUint64(8, 0b10101010);
    EXPECT_EQ((a & b).toUint64(), 0b10001000u);
    EXPECT_EQ((a | b).toUint64(), 0b11101110u);
    EXPECT_EQ((a ^ b).toUint64(), 0b01100110u);
    EXPECT_EQ((~a).toUint64(), 0b00110011u);
}

TEST(BitVector, NotRespectsPadding)
{
    BitVector v(70);
    auto n = ~v;
    EXPECT_EQ(n.popcount(), 70u);
    EXPECT_TRUE(n.all());
}

TEST(BitVector, SliceAndInsert)
{
    auto v = BitVector::fromUint64(32, 0xDEADBEEF);
    EXPECT_EQ(v.sliceUint64(8, 16), 0xADBEu);
    auto s = v.slice(16, 16);
    EXPECT_EQ(s.toUint64(), 0xDEADu);
    BitVector w(32);
    w.insert(16, s);
    EXPECT_EQ(w.toUint64(), 0xDEAD0000u);
    w.insertUint64(0, 16, 0xBEEF);
    EXPECT_EQ(w.toUint64(), 0xDEADBEEFu);
}

TEST(BitVector, EqualityRequiresSameSize)
{
    BitVector a(8), b(9);
    EXPECT_NE(a, b);
    BitVector c(8);
    EXPECT_EQ(a, c);
}

TEST(BitVector, FillResetsAllBits)
{
    BitVector v(100);
    v.fill(true);
    EXPECT_TRUE(v.all());
    v.fill(false);
    EXPECT_FALSE(v.any());
}

/** Property: shifting left then right by n restores low bits. */
TEST(BitVectorProperty, ShiftRoundTrip)
{
    Rng rng(42);
    for (int iter = 0; iter < 50; ++iter) {
        std::size_t size = 1 + rng.nextBelow(200);
        BitVector v(size);
        for (std::size_t i = 0; i < size; ++i)
            v.set(i, rng.nextBool());
        std::size_t n = rng.nextBelow(size);
        auto round = v.shiftedLeft(n).shiftedRight(n);
        // High n bits are lost; low size-n bits must be intact.
        for (std::size_t i = 0; i + n < size; ++i)
            EXPECT_EQ(round.get(i), v.get(i)) << "bit " << i;
        for (std::size_t i = size - n; i < size; ++i)
            EXPECT_FALSE(round.get(i));
    }
}

/** Property: popcount(a ^ b) == popcount(a) + popcount(b) - 2*popcount(a&b). */
TEST(BitVectorProperty, PopcountXorIdentity)
{
    Rng rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        std::size_t size = 1 + rng.nextBelow(300);
        BitVector a(size), b(size);
        for (std::size_t i = 0; i < size; ++i) {
            a.set(i, rng.nextBool());
            b.set(i, rng.nextBool());
        }
        EXPECT_EQ((a ^ b).popcount(),
                  a.popcount() + b.popcount() - 2 * (a & b).popcount());
    }
}

} // namespace
} // namespace coruscant
