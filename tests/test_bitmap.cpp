/**
 * @file
 * Bitmap-index query (Fig. 12): functional agreement across techniques
 * and the published latency relationships.
 */

#include <gtest/gtest.h>

#include "apps/bitmap/bitmap_index.hpp"
#include "util/logging.hpp"

namespace coruscant {
namespace {

class BitmapQuery : public ::testing::Test
{
  protected:
    BitmapQuery()
        : db(BitmapDatabase::synthesize(1 << 17, 4, 99)), eng(db)
    {}

    BitmapDatabase db;
    BitmapQueryEngine eng;
};

TEST_F(BitmapQuery, AllTechniquesAgreeWithGolden)
{
    for (std::size_t w = 2; w <= 4; ++w) {
        std::uint64_t golden = eng.goldenCount(w);
        EXPECT_EQ(eng.runCpuDram(w).matches, golden) << "w=" << w;
        EXPECT_EQ(eng.runAmbit(w).matches, golden) << "w=" << w;
        EXPECT_EQ(eng.runElp2im(w).matches, golden) << "w=" << w;
        EXPECT_EQ(eng.runCoruscant(w).matches, golden) << "w=" << w;
    }
}

TEST_F(BitmapQuery, MatchCountDecreasesWithMoreCriteria)
{
    EXPECT_GE(eng.goldenCount(2), eng.goldenCount(3));
    EXPECT_GE(eng.goldenCount(3), eng.goldenCount(4));
}

TEST_F(BitmapQuery, CoruscantLatencyIsFlatInW)
{
    // The multi-operand TR makes the query latency independent of the
    // number of criteria (up to TRD operands).
    auto c2 = eng.runCoruscant(2).cycles;
    auto c3 = eng.runCoruscant(3).cycles;
    auto c4 = eng.runCoruscant(4).cycles;
    EXPECT_EQ(c2, c3);
    EXPECT_EQ(c3, c4);
}

TEST_F(BitmapQuery, DramPimLatencyGrowsLinearly)
{
    auto e2 = eng.runElp2im(2).cycles;
    auto e4 = eng.runElp2im(4).cycles;
    EXPECT_EQ(e4, 2 * e2);
}

TEST_F(BitmapQuery, SpeedupsOverElp2imMatchPaper)
{
    // Paper Sec. V-D: 1.6x, 2.2x, 3.4x for w = 2, 3, 4.
    double r2 = static_cast<double>(eng.runElp2im(2).cycles) /
                static_cast<double>(eng.runCoruscant(2).cycles);
    double r3 = static_cast<double>(eng.runElp2im(3).cycles) /
                static_cast<double>(eng.runCoruscant(3).cycles);
    double r4 = static_cast<double>(eng.runElp2im(4).cycles) /
                static_cast<double>(eng.runCoruscant(4).cycles);
    EXPECT_NEAR(r2, 1.6, 0.25);
    EXPECT_NEAR(r3, 2.2, 0.35);
    EXPECT_NEAR(r4, 3.4, 0.45);
    EXPECT_LT(r2, r3);
    EXPECT_LT(r3, r4);
}

TEST_F(BitmapQuery, Elp2imBeatsAmbit)
{
    double ratio = static_cast<double>(eng.runAmbit(3).cycles) /
                   static_cast<double>(eng.runElp2im(3).cycles);
    EXPECT_NEAR(ratio, 3.2, 0.5); // published ELP2IM advantage
}

TEST_F(BitmapQuery, EveryPimTechniqueBeatsCpu)
{
    for (std::size_t w = 2; w <= 4; ++w) {
        auto cpu = eng.runCpuDram(w).cycles;
        EXPECT_LT(eng.runAmbit(w).cycles, cpu);
        EXPECT_LT(eng.runElp2im(w).cycles, cpu);
        EXPECT_LT(eng.runCoruscant(w).cycles, cpu);
    }
}

TEST(BitmapQueryEdge, RejectsTooManyOperandsForTrd)
{
    auto db = BitmapDatabase::synthesize(1024, 4);
    BitmapQueryEngine eng(db);
    // w = 4 needs 5 operands; TRD = 3 cannot hold them.
    EXPECT_THROW(eng.runCoruscant(4, 3), FatalError);
    // But w = 2 (3 operands) fits TRD = 3.
    EXPECT_EQ(eng.runCoruscant(2, 3).matches, eng.goldenCount(2));
}

TEST(BitmapQueryEdge, NonMultipleOfRowUsers)
{
    auto db = BitmapDatabase::synthesize(1000, 3, 5);
    BitmapQueryEngine eng(db);
    EXPECT_EQ(eng.runCoruscant(3).matches, eng.goldenCount(3));
    EXPECT_EQ(eng.runAmbit(3).matches, eng.goldenCount(3));
}

} // namespace
} // namespace coruscant
