/**
 * @file
 * Strict CLI option parsing: the contract that malformed input is a
 * diagnostic plus exit 2, never a silent fall-back to defaults.  The
 * in-process tests exercise parseArgs(); the process-level tests run
 * the real coruscant_cli binary and check its exit codes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/cli_args.hpp"

namespace coruscant {
namespace {

const std::vector<ArgSpec> kSpecs = {{"trd", ArgType::Size},
                                     {"pfault", ArgType::Double},
                                     {"policy", ArgType::String}};

TEST(CliArgs, ValidOptionsParseAndDefaultsApply)
{
    ParsedArgs o = parseArgs({"--trd", "7", "--pfault", "1e-6"}, kSpecs);
    ASSERT_TRUE(o.ok()) << o.error();
    EXPECT_TRUE(o.has("trd"));
    EXPECT_FALSE(o.has("policy"));
    EXPECT_EQ(o.getSize("trd", 3), 7u);
    EXPECT_DOUBLE_EQ(o.getDouble("pfault", 0.5), 1e-6);
    EXPECT_EQ(o.getString("policy", "per-access"), "per-access");
}

TEST(CliArgs, EmptyArgumentListIsValid)
{
    ParsedArgs o = parseArgs({}, kSpecs);
    EXPECT_TRUE(o.ok());
    EXPECT_EQ(o.getSize("trd", 7), 7u);
}

TEST(CliArgs, UnknownOptionIsRejected)
{
    ParsedArgs o = parseArgs({"--bogus", "3"}, kSpecs);
    EXPECT_FALSE(o.ok());
    EXPECT_NE(o.error().find("unknown option '--bogus'"),
              std::string::npos);
}

TEST(CliArgs, MissingValueIsRejected)
{
    ParsedArgs o = parseArgs({"--trd"}, kSpecs);
    EXPECT_FALSE(o.ok());
    EXPECT_NE(o.error().find("requires a value"), std::string::npos);

    // Also when the dangling flag follows a valid pair.
    ParsedArgs p = parseArgs({"--trd", "7", "--policy"}, kSpecs);
    EXPECT_FALSE(p.ok());
}

TEST(CliArgs, BareTokenIsRejected)
{
    ParsedArgs o = parseArgs({"seven"}, kSpecs);
    EXPECT_FALSE(o.ok());
    EXPECT_NE(o.error().find("unexpected argument"),
              std::string::npos);
}

TEST(CliArgs, MalformedNumbersAreRejected)
{
    for (const char *bad : {"seven", "", "7x", "-3", "+4", "3.5"}) {
        ParsedArgs o = parseArgs({"--trd", bad}, kSpecs);
        EXPECT_FALSE(o.ok()) << "accepted size '" << bad << "'";
    }
    for (const char *bad : {"abc", "", "1e", "--", "1.2.3"}) {
        ParsedArgs o = parseArgs({"--pfault", bad}, kSpecs);
        EXPECT_FALSE(o.ok()) << "accepted double '" << bad << "'";
    }
    // Scientific notation and signs are fine for doubles.
    EXPECT_TRUE(parseArgs({"--pfault", "-1.5e-3"}, kSpecs).ok());
}

TEST(CliArgs, LastOccurrenceWins)
{
    ParsedArgs o = parseArgs({"--trd", "3", "--trd", "7"}, kSpecs);
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.getSize("trd", 0), 7u);
}

#ifdef CORUSCANT_CLI_PATH

/** Exit code of the real CLI binary run with @p args. */
int
cliExit(const std::string &args)
{
    std::string cmd = std::string(CORUSCANT_CLI_PATH) + " " + args +
                      " >/dev/null 2>&1";
    int status = std::system(cmd.c_str());
    return WEXITSTATUS(status);
}

TEST(CliProcess, HelpExitsZero)
{
    EXPECT_EQ(cliExit("help"), 0);
    EXPECT_EQ(cliExit("--help"), 0);
}

TEST(CliProcess, UsageErrorsExitTwo)
{
    EXPECT_EQ(cliExit(""), 2);                    // no command
    EXPECT_EQ(cliExit("frobnicate"), 2);          // unknown command
    EXPECT_EQ(cliExit("ops --bogus 3"), 2);       // unknown option
    EXPECT_EQ(cliExit("ops --trd"), 2);           // missing value
    EXPECT_EQ(cliExit("ops --trd seven"), 2);     // malformed number
    EXPECT_EQ(cliExit("reliability --pfault x"), 2);
    EXPECT_EQ(cliExit("campaign --policy nope"), 2);
    EXPECT_EQ(cliExit("area --anything 1"), 2);   // area takes none
    EXPECT_EQ(cliExit("serve --batch maybe"), 2);
}

TEST(CliProcess, DataFaultFlagValidationExitsTwo)
{
    // The data-fault/ECC axis added for campaign and serve: every
    // out-of-domain value is a diagnostic plus exit 2 on both
    // commands, never a silent clamp or fall-back.
    for (const char *cmd : {"campaign", "serve"}) {
        std::string c(cmd);
        EXPECT_EQ(cliExit(c + " --ecc bogus"), 2) << cmd;
        EXPECT_EQ(cliExit(c + " --ecc"), 2) << cmd;
        EXPECT_EQ(cliExit(c + " --pdata 1.5"), 2) << cmd;
        EXPECT_EQ(cliExit(c + " --pdata -0.1"), 2) << cmd;
        EXPECT_EQ(cliExit(c + " --pstuck 2"), 2) << cmd;
        EXPECT_EQ(cliExit(c + " --retention -1e-9"), 2) << cmd;
        EXPECT_EQ(cliExit(c + " --nmr 2"), 2) << cmd; // odd 1..7 only
        EXPECT_EQ(cliExit(c + " --nmr 9"), 2) << cmd;
    }
}

TEST(CliProcess, DataFaultCampaignRunsCleanWithValidFlags)
{
    EXPECT_EQ(cliExit("campaign --trials 5 --pshift 0 --pdata 1e-4 "
                      "--ecc secded --nmr 3 --retention 1e-9"),
              0);
}

TEST(CliProcess, ObservabilityFlagsAreAccepted)
{
    // The new flags parse (and write their files) on the fast paths.
    EXPECT_EQ(cliExit("ops --trd 3 --bits 4 "
                      "--metrics-json /tmp/cli_test_m.json "
                      "--trace /tmp/cli_test_t.json"),
              0);
    EXPECT_EQ(cliExit("ops --metrics-json"), 2); // still needs a value
    EXPECT_EQ(cliExit("ops --trace"), 2);
}

#endif // CORUSCANT_CLI_PATH

} // namespace
} // namespace coruscant
