/**
 * @file
 * CNN network specs and the Table IV / Table VI throughput model.
 */

#include <gtest/gtest.h>

#include "apps/cnn/throughput_model.hpp"
#include "util/logging.hpp"

namespace coruscant {
namespace {

TEST(CnnNetwork, AlexnetOpCounts)
{
    auto net = CnnNetwork::alexnet();
    // Standard AlexNet: ~666M conv MACs + ~58.6M FC MACs.
    double macs = static_cast<double>(net.totalMacs());
    EXPECT_NEAR(macs / 1e6, 724, 10);
}

TEST(CnnNetwork, Lenet5OpCounts)
{
    auto net = CnnNetwork::lenet5();
    // 117.6K + 240K + 48K conv MACs, 10.9K FC MACs.
    EXPECT_NEAR(static_cast<double>(net.totalMacs()) / 1e3, 417, 3);
    EXPECT_GT(net.totalPoolOps(), 0u);
}

TEST(CnnNetwork, Eq2ReductionAdds)
{
    // Paper Sec. IV: the first reduction step of AlexNet requires 362
    // additions per output (conv1: (11^2-1)*3 + (3-1) = 362).
    auto net = CnnNetwork::alexnet();
    const auto &conv1 = net.layers[0];
    EXPECT_EQ(conv1.reductionAdds() / conv1.outputs(), 362u);
}

TEST(CnnModel, SupportedMatrixMatchesTableIV)
{
    EXPECT_TRUE(CnnThroughputModel::supported(
        CnnScheme::Spim, CnnMode::FullPrecision));
    EXPECT_FALSE(CnnThroughputModel::supported(
        CnnScheme::Spim, CnnMode::TernaryWeight));
    EXPECT_TRUE(CnnThroughputModel::supported(
        CnnScheme::Ambit, CnnMode::BinaryWeight));
    EXPECT_FALSE(CnnThroughputModel::supported(
        CnnScheme::Ambit, CnnMode::FullPrecision));
    EXPECT_TRUE(CnnThroughputModel::supported(
        CnnScheme::Coruscant7, CnnMode::TernaryWeight));
}

class CnnTable : public ::testing::Test
{
  protected:
    CnnThroughputModel model;
    CnnNetwork alexnet = CnnNetwork::alexnet();
    CnnNetwork lenet = CnnNetwork::lenet5();
};

TEST_F(CnnTable, AnchoredCellsMatchPaperExactly)
{
    EXPECT_NEAR(model.fps(alexnet, CnnScheme::Coruscant7,
                          CnnMode::FullPrecision),
                90.5, 0.1);
    EXPECT_NEAR(model.fps(lenet, CnnScheme::Coruscant7,
                          CnnMode::FullPrecision),
                163.0, 0.1);
    EXPECT_NEAR(model.fps(alexnet, CnnScheme::Coruscant3,
                          CnnMode::TernaryWeight),
                358.0, 0.5);
    EXPECT_NEAR(model.fps(lenet, CnnScheme::Coruscant3,
                          CnnMode::TernaryWeight),
                22172.0, 25.0);
    EXPECT_NEAR(model.fps(alexnet, CnnScheme::Elp2Im,
                          CnnMode::BinaryWeight),
                253.0, 0.5);
}

TEST_F(CnnTable, TrdOrderingHoldsEverywhere)
{
    for (const auto *net : {&alexnet, &lenet}) {
        for (auto mode :
             {CnnMode::FullPrecision, CnnMode::TernaryWeight}) {
            double c3 = model.fps(*net, CnnScheme::Coruscant3, mode);
            double c5 = model.fps(*net, CnnScheme::Coruscant5, mode);
            double c7 = model.fps(*net, CnnScheme::Coruscant7, mode);
            EXPECT_LT(c3, c5) << net->name;
            EXPECT_LT(c5, c7) << net->name;
        }
    }
}

TEST_F(CnnTable, EmergentFullPrecisionCellsNearPaper)
{
    // Paper Table IV (SPIM 32.1 / 59, CORUSCANT-5 84 / 153).
    EXPECT_NEAR(model.fps(alexnet, CnnScheme::Spim,
                          CnnMode::FullPrecision),
                32.1, 3.5);
    EXPECT_NEAR(model.fps(lenet, CnnScheme::Spim,
                          CnnMode::FullPrecision),
                59.0, 4.0);
    EXPECT_NEAR(model.fps(alexnet, CnnScheme::Coruscant5,
                          CnnMode::FullPrecision),
                84.0, 4.0);
    EXPECT_NEAR(model.fps(lenet, CnnScheme::Coruscant5,
                          CnnMode::FullPrecision),
                153.0, 6.0);
}

TEST_F(CnnTable, EmergentTernaryCellsNearPaper)
{
    // Paper: CORUSCANT-7 490, ELP2IM 96.4, Ambit 84.8 on AlexNet.
    EXPECT_NEAR(model.fps(alexnet, CnnScheme::Coruscant7,
                          CnnMode::TernaryWeight),
                490.0, 50.0);
    EXPECT_NEAR(model.fps(alexnet, CnnScheme::Elp2Im,
                          CnnMode::TernaryWeight),
                96.4, 12.0);
    EXPECT_NEAR(model.fps(alexnet, CnnScheme::Ambit,
                          CnnMode::TernaryWeight),
                84.8, 15.0);
}

TEST_F(CnnTable, PaperHeadlineSpeedups)
{
    // CORUSCANT-3 ternary is 3.7x ELP2IM and 4.2x Ambit on AlexNet.
    double c3 =
        model.fps(alexnet, CnnScheme::Coruscant3,
                  CnnMode::TernaryWeight);
    double elp = model.fps(alexnet, CnnScheme::Elp2Im,
                           CnnMode::TernaryWeight);
    double ambit = model.fps(alexnet, CnnScheme::Ambit,
                             CnnMode::TernaryWeight);
    EXPECT_NEAR(c3 / elp, 3.7, 0.5);
    EXPECT_NEAR(c3 / ambit, 4.2, 0.6);
    // SPIM is 2.2-2.8x slower than CORUSCANT at full precision.
    double c7fp = model.fps(alexnet, CnnScheme::Coruscant7,
                            CnnMode::FullPrecision);
    double spim = model.fps(alexnet, CnnScheme::Spim,
                            CnnMode::FullPrecision);
    EXPECT_NEAR(c7fp / spim, 2.8, 0.3);
}

TEST_F(CnnTable, FullPrecisionC5MatchesAmbitTernaryCuriosity)
{
    // Paper Sec. V-E: "CORUSCANT-5 at full precision is nearly
    // identical to the ternary approximation using Ambit."
    double c5fp = model.fps(alexnet, CnnScheme::Coruscant5,
                            CnnMode::FullPrecision);
    double ambit_twn = model.fps(alexnet, CnnScheme::Ambit,
                                 CnnMode::TernaryWeight);
    EXPECT_NEAR(c5fp / ambit_twn, 1.0, 0.2);
}

TEST_F(CnnTable, IsaacAnOrderOfMagnitudeBehind)
{
    double c7 = model.fps(alexnet, CnnScheme::Coruscant7,
                          CnnMode::TernaryWeight);
    double isaac = model.fps(alexnet, CnnScheme::Isaac,
                             CnnMode::FullPrecision);
    EXPECT_GT(c7 / isaac, 10.0);
}

TEST_F(CnnTable, NmrCostsRoughlyNTimes)
{
    // Paper Table VI: TMR AlexNet FP C7 = 29 (3.1x down from 90.5).
    double tmr = model.fpsWithNmr(alexnet, CnnScheme::Coruscant7,
                                  CnnMode::FullPrecision, 3);
    EXPECT_NEAR(tmr, 29.0, 2.0);
    double n5 = model.fpsWithNmr(alexnet, CnnScheme::Coruscant7,
                                 CnnMode::FullPrecision, 5);
    EXPECT_NEAR(n5, 17.5, 1.5);
    double n7 = model.fpsWithNmr(alexnet, CnnScheme::Coruscant7,
                                 CnnMode::FullPrecision, 7);
    EXPECT_NEAR(n7, 12.5, 1.5);
    // N must fit in the TRD.
    EXPECT_THROW(model.fpsWithNmr(alexnet, CnnScheme::Coruscant3,
                                  CnnMode::FullPrecision, 5),
                 FatalError);
}

TEST_F(CnnTable, NmrStillBeatsDramPimWithoutFaultTolerance)
{
    // Paper Sec. V-F: ISO-area CORUSCANT with TMR is faster than
    // Ambit and ELP2IM without fault tolerance (ternary AlexNet).
    double tmr = model.fpsWithNmr(alexnet, CnnScheme::Coruscant7,
                                  CnnMode::TernaryWeight, 3);
    EXPECT_GT(tmr, model.fps(alexnet, CnnScheme::Elp2Im,
                             CnnMode::TernaryWeight));
    EXPECT_GT(tmr, model.fps(alexnet, CnnScheme::Ambit,
                             CnnMode::TernaryWeight));
}

TEST_F(CnnTable, TableHelperEnumeratesCells)
{
    auto cells = model.table(alexnet, CnnMode::FullPrecision);
    EXPECT_EQ(cells.size(), 5u); // SPIM, ISAAC, C3, C5, C7
    auto twn = model.table(alexnet, CnnMode::TernaryWeight);
    EXPECT_EQ(twn.size(), 5u); // Ambit, ELP2IM, C3, C5, C7
    auto bwn = model.table(alexnet, CnnMode::BinaryWeight);
    EXPECT_EQ(bwn.size(), 2u); // Ambit, ELP2IM
}

} // namespace
} // namespace coruscant
