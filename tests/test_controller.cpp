/**
 * @file
 * cpim ISA and memory-controller end-to-end tests.
 */

#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

TEST(CpimIsa, ControlWordRoundTrip)
{
    for (auto op : {CpimOp::And, CpimOp::Add, CpimOp::Multiply,
                    CpimOp::Max, CpimOp::Vote, CpimOp::Copy}) {
        for (std::uint16_t block : {8, 16, 64, 512}) {
            CpimInstruction inst;
            inst.op = op;
            inst.operands = 5;
            inst.blockSize = block;
            auto round = CpimInstruction::unpackControl(
                inst.packControl());
            EXPECT_EQ(round.op, op);
            EXPECT_EQ(round.operands, 5);
            EXPECT_EQ(round.blockSize, block);
        }
    }
}

TEST(CpimIsa, ValidationRules)
{
    CpimInstruction inst;
    inst.blockSize = 12; // not a power of two
    EXPECT_FALSE(inst.validate(7).empty());
    inst.blockSize = 4; // below ISA minimum
    EXPECT_FALSE(inst.validate(7).empty());
    inst.blockSize = 8;
    inst.op = CpimOp::And;
    inst.operands = 8; // > TRD
    EXPECT_FALSE(inst.validate(7).empty());
    inst.operands = 7;
    EXPECT_TRUE(inst.validate(7).empty());
    inst.op = CpimOp::Add;
    inst.operands = 6; // > TRD-2
    EXPECT_FALSE(inst.validate(7).empty());
    inst.operands = 5;
    EXPECT_TRUE(inst.validate(7).empty());
    inst.op = CpimOp::Vote;
    inst.operands = 4;
    EXPECT_FALSE(inst.validate(7).empty());
}

class ControllerEndToEnd : public ::testing::Test
{
  protected:
    ControllerEndToEnd()
        : mem(), ctrl(mem)
    {}

    /** Write operand rows at consecutive rows of the DBC at `base`. */
    void
    stage(std::uint64_t base, const std::vector<BitVector> &rows)
    {
        for (std::size_t i = 0; i < rows.size(); ++i)
            mem.writeLine(ctrl.operandAddress(base, i), rows[i]);
    }

    DwmMainMemory mem;
    MemoryController ctrl;
};

TEST_F(ControllerEndToEnd, BulkAndThroughMemory)
{
    Rng rng(3);
    BitVector a(512), b(512), c(512);
    for (std::size_t i = 0; i < 512; ++i) {
        a.set(i, rng.nextBool());
        b.set(i, rng.nextBool());
        c.set(i, rng.nextBool());
    }
    std::uint64_t src = 0x1000;
    stage(src, {a, b, c});
    CpimInstruction inst;
    inst.op = CpimOp::And;
    inst.operands = 3;
    inst.src = src;
    inst.dst = 0x400000;
    auto result = ctrl.execute(inst);
    EXPECT_EQ(result, a & b & c);
    EXPECT_EQ(mem.readLine(inst.dst), a & b & c);
}

TEST_F(ControllerEndToEnd, PackedAdditionThroughMemory)
{
    // 64 packed 8-bit lanes, five operands.
    std::vector<BitVector> ops;
    std::vector<std::uint64_t> expect(64, 0);
    Rng rng(9);
    for (int i = 0; i < 5; ++i) {
        BitVector row(512);
        for (std::size_t lane = 0; lane < 64; ++lane) {
            std::uint64_t v = rng.next() & 0xFF;
            row.insertUint64(lane * 8, 8, v);
            expect[lane] += v;
        }
        ops.push_back(row);
    }
    std::uint64_t src = 0x2000;
    stage(src, ops);
    CpimInstruction inst;
    inst.op = CpimOp::Add;
    inst.operands = 5;
    inst.blockSize = 8;
    inst.src = src;
    inst.dst = 0x800000;
    auto result = ctrl.execute(inst);
    for (std::size_t lane = 0; lane < 64; ++lane)
        EXPECT_EQ(result.sliceUint64(lane * 8, 8), expect[lane] & 0xFF)
            << "lane " << lane;
}

TEST_F(ControllerEndToEnd, MultiplyThroughMemory)
{
    // blockSize 16 => 8-bit multiplicands in 16-bit lanes.
    BitVector a(512), b(512);
    Rng rng(21);
    std::vector<std::uint64_t> av(32), bv(32);
    for (std::size_t lane = 0; lane < 32; ++lane) {
        av[lane] = rng.next() & 0xFF;
        bv[lane] = rng.next() & 0xFF;
        a.insertUint64(lane * 16, 16, av[lane]);
        b.insertUint64(lane * 16, 16, bv[lane]);
    }
    std::uint64_t src = 0x3000;
    stage(src, {a, b});
    CpimInstruction inst;
    inst.op = CpimOp::Multiply;
    inst.operands = 2;
    inst.blockSize = 16;
    inst.src = src;
    inst.dst = 0xC00000;
    auto result = ctrl.execute(inst);
    for (std::size_t lane = 0; lane < 32; ++lane)
        EXPECT_EQ(result.sliceUint64(lane * 16, 16), av[lane] * bv[lane])
            << "lane " << lane;
}

TEST_F(ControllerEndToEnd, MaxThroughMemory)
{
    std::vector<BitVector> cands;
    std::vector<std::uint64_t> expect(64, 0);
    Rng rng(33);
    for (int i = 0; i < 7; ++i) {
        BitVector row(512);
        for (std::size_t lane = 0; lane < 64; ++lane) {
            std::uint64_t v = rng.next() & 0xFF;
            row.insertUint64(lane * 8, 8, v);
            expect[lane] = std::max(expect[lane], v);
        }
        cands.push_back(row);
    }
    std::uint64_t src = 0x4000;
    stage(src, cands);
    CpimInstruction inst;
    inst.op = CpimOp::Max;
    inst.operands = 7;
    inst.blockSize = 8;
    inst.src = src;
    inst.dst = 0x1000000;
    auto result = ctrl.execute(inst);
    for (std::size_t lane = 0; lane < 64; ++lane)
        EXPECT_EQ(result.sliceUint64(lane * 8, 8), expect[lane])
            << "lane " << lane;
}

TEST_F(ControllerEndToEnd, RejectsInvalidInstruction)
{
    CpimInstruction inst;
    inst.op = CpimOp::Add;
    inst.operands = 7; // > TRD - 2
    inst.src = 0;
    EXPECT_THROW(ctrl.execute(inst), FatalError);
}

TEST_F(ControllerEndToEnd, ChargesMemoryAndPimCosts)
{
    BitVector a(512, true), b(512, true);
    std::uint64_t src = 0x5000;
    stage(src, {a, b});
    mem.resetCosts();
    CpimInstruction inst;
    inst.op = CpimOp::Or;
    inst.operands = 2;
    inst.src = src;
    inst.dst = 0x2000000;
    ctrl.execute(inst);
    // Memory charged: 2 operand reads + 1 result write.
    EXPECT_EQ(mem.ledger().byCategory().at("read").count, 2u);
    EXPECT_EQ(mem.ledger().byCategory().at("write").count, 1u);
    // PIM unit charged the TR.
    auto src_loc = mem.addressMap().decode(src);
    auto &unit = mem.pimUnit(src_loc.bank, src_loc.subarray);
    EXPECT_GE(unit.ledger().byCategory().at("tr").count, 1u);
}

} // namespace
} // namespace coruscant
