/**
 * @file
 * Unit tests for canonical-signed-digit (Booth) recoding.
 */

#include <gtest/gtest.h>

#include "util/csd.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

/** Reconstruct the value from CSD terms (wide to allow a shift-64 term). */
std::uint64_t
reconstruct(const std::vector<CsdTerm> &terms)
{
    __int128 v = 0;
    for (const auto &t : terms)
        v += static_cast<__int128>(t.sign)
             * (static_cast<__int128>(1) << t.shift);
    return static_cast<std::uint64_t>(v);
}

TEST(Csd, Zero)
{
    EXPECT_TRUE(csdRecode(0).empty());
    EXPECT_EQ(csdWeight(0), 0u);
}

TEST(Csd, PowerOfTwoIsSingleTerm)
{
    auto terms = csdRecode(64);
    ASSERT_EQ(terms.size(), 1u);
    EXPECT_EQ(terms[0].sign, 1);
    EXPECT_EQ(terms[0].shift, 6u);
}

TEST(Csd, RunOfOnesBecomesTwoTerms)
{
    // 15 = 16 - 1
    auto terms = csdRecode(15);
    ASSERT_EQ(terms.size(), 2u);
    EXPECT_EQ(reconstruct(terms), 15u);
    EXPECT_EQ(csdWeight(15), 2u);
}

TEST(Csd, PaperExample20061)
{
    // Paper Sec. III-D.1: 20061 = "100111001011101" encodes as
    // POPOONOPONOONOP (9 ones reduced to 7 signed digits).
    EXPECT_EQ(reconstruct(csdRecode(20061)), 20061u);
    EXPECT_EQ(csdWeight(20061), 7u);
    EXPECT_EQ(csdToString(20061), "POPOONOPONOONOP");
}

TEST(Csd, NonAdjacencyProperty)
{
    Rng rng(3);
    for (int iter = 0; iter < 200; ++iter) {
        std::uint64_t v = rng.next() >> rng.nextBelow(40);
        auto terms = csdRecode(v);
        EXPECT_EQ(reconstruct(terms), v);
        for (std::size_t i = 1; i < terms.size(); ++i) {
            EXPECT_GE(terms[i].shift, terms[i - 1].shift + 2)
                << "adjacent nonzero digits for " << v;
        }
    }
}

TEST(Csd, WeightNeverExceedsPopcount)
{
    // CSD is minimal weight, so it never has more nonzero digits than
    // the plain binary form... except for isolated ones where they tie.
    Rng rng(11);
    for (int iter = 0; iter < 200; ++iter) {
        std::uint64_t v = rng.next() & 0xFFFFFFFF;
        EXPECT_LE(csdWeight(v),
                  static_cast<std::size_t>(__builtin_popcountll(v)) + 1);
    }
}

TEST(Csd, AdditionStepsPowersOfTwoNeedNone)
{
    EXPECT_EQ(csdAdditionSteps(1, 5), 0u);
    EXPECT_EQ(csdAdditionSteps(4096, 5), 0u);
}

TEST(Csd, AdditionStepsPaperExample)
{
    // The paper computes 20061 * A in two addition steps with a
    // five-operand adder.
    EXPECT_EQ(csdAdditionSteps(20061, 5), 2u);
}

TEST(Csd, AdditionStepsTwoOperandAdder)
{
    // Weight-7 constant with a 2-operand adder: 2 + 1*5 = 6 steps.
    EXPECT_EQ(csdWeight(20061), 7u);
    EXPECT_EQ(csdAdditionSteps(20061, 2), 6u);
}

TEST(Csd, ToStringRoundTripDigits)
{
    // P at MSB, O and N placed correctly: 7 = 8 - 1 -> "POON"? No:
    // 7 = +8 -1 => digits shift3:+1, shift0:-1 => "POON".
    EXPECT_EQ(csdToString(7), "POON");
    EXPECT_EQ(csdToString(0), "O");
    EXPECT_EQ(csdToString(5), "POP");
}

} // namespace
} // namespace coruscant
