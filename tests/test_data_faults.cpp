/**
 * @file
 * Data-domain fault model: determinism of the transient stream,
 * stationarity of the stuck-at defect map, retention monotonicity, the
 * geometric-gap sampler's statistics, and the end-to-end contract that
 * a SECDED-protected DwmMainMemory reads back what was written while
 * an unprotected one silently corrupts — plus the service-level
 * statistical injector that mirrors all of it per channel.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/dwm_memory.hpp"
#include "dwm/data_fault.hpp"
#include "service/fault_service.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

BitVector
randomRow(Rng &rng, std::size_t bits)
{
    BitVector v(bits);
    for (std::size_t i = 0; i < bits; ++i)
        v.set(i, rng.nextBool());
    return v;
}

TEST(DataFaultModel, DisabledModelIsInert)
{
    DataFaultModel m;
    EXPECT_FALSE(m.enabled());
    Rng rng(7);
    BitVector row = randomRow(rng, 512);
    BitVector before = row;
    EXPECT_EQ(m.perturbTransient(row), 0u);
    EXPECT_EQ(m.applyStuckAt(row, 3, 5), 0u);
    EXPECT_EQ(m.decay(row, 1 << 20), 0u);
    EXPECT_EQ(row, before);
    EXPECT_EQ(m.injectedFaults(), 0u);
}

TEST(DataFaultModel, TransientRateBoundaries)
{
    DataFaultConfig cfg;
    cfg.transientFlipRate = 1.0;
    DataFaultModel m(cfg);
    BitVector row(64);
    row.set(3, true);
    BitVector before = row;
    EXPECT_EQ(m.perturbTransient(row), 64u); // p = 1 flips every bit
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_NE(row.get(i), before.get(i));
}

TEST(DataFaultModel, SameSeedSameFaultStream)
{
    DataFaultConfig cfg;
    cfg.transientFlipRate = 0.01;
    cfg.retentionRatePerCycle = 1e-6;
    cfg.seed = 99;
    DataFaultModel a(cfg), b(cfg);
    Rng content(42);
    for (int i = 0; i < 50; ++i) {
        BitVector row = randomRow(content, 512);
        BitVector ra = row, rb = row;
        EXPECT_EQ(a.perturbTransient(ra), b.perturbTransient(rb));
        EXPECT_EQ(ra, rb);
        EXPECT_EQ(a.decay(ra, 1000), b.decay(rb, 1000));
        EXPECT_EQ(ra, rb);
    }
    EXPECT_EQ(a.injectedFaults(), b.injectedFaults());
    EXPECT_GT(a.injectedFaults(), 0u);
}

TEST(DataFaultModel, StuckAtMapIsStationary)
{
    DataFaultConfig cfg;
    cfg.stuckAtFraction = 0.05;
    cfg.seed = 7;
    DataFaultModel a(cfg);

    // Forcing all-zero and all-one rows exposes every stuck site: a
    // site changes exactly one of the two, and the union of forced
    // patterns is the defect map.
    BitVector zeros(256), ones(256);
    for (std::size_t i = 0; i < 256; ++i)
        ones.set(i, true);
    BitVector z1 = zeros, o1 = ones;
    std::uint64_t cz = a.applyStuckAt(z1, 11, 3);
    std::uint64_t co = a.applyStuckAt(o1, 11, 3);
    EXPECT_GT(cz + co, 0u); // ~13 expected sites over 256 wires

    // A second model with the same seed — and the same model asked
    // again in a different order — forces the identical pattern:
    // membership and polarity come from a stateless hash, not the
    // sampling stream.
    DataFaultModel b(cfg);
    BitVector o2 = ones, z2 = zeros;
    EXPECT_EQ(b.applyStuckAt(o2, 11, 3), co);
    EXPECT_EQ(b.applyStuckAt(z2, 11, 3), cz);
    EXPECT_EQ(z1, z2);
    EXPECT_EQ(o1, o2);

    // Re-applying to an already-forced row changes nothing (sticky,
    // idempotent), and hasStuckSite agrees with the observable map.
    BitVector z3 = z1;
    EXPECT_EQ(a.applyStuckAt(z3, 11, 3), 0u);
    EXPECT_EQ(z3, z1);
    EXPECT_TRUE(a.hasStuckSite(11, 3, 256));

    // A different (dbc, row) key draws a different (but equally
    // stationary) pattern.
    BitVector z4 = zeros;
    a.applyStuckAt(z4, 12, 3);
    BitVector z5 = zeros;
    b.applyStuckAt(z5, 12, 3);
    EXPECT_EQ(z4, z5);
}

TEST(DataFaultModel, RetentionIsMonotoneInIdleTime)
{
    DataFaultConfig cfg;
    cfg.retentionRatePerCycle = 1e-6;
    DataFaultModel m(cfg);
    double prev = 0.0;
    for (std::uint64_t t : {0ull, 100ull, 10000ull, 1000000ull,
                            100000000ull}) {
        double p = m.retentionFlipProbability(t);
        EXPECT_GE(p, prev);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
    EXPECT_EQ(m.retentionFlipProbability(0), 0.0);
    // Asymptote: after ~1e8 cycles at 1e-6/cycle the bit is coin-flip
    // territory; the probability saturates toward 1.
    EXPECT_GT(m.retentionFlipProbability(5000000000ull), 0.99);

    BitVector row(512);
    EXPECT_EQ(m.decay(row, 0), 0u); // no idle time, no decay
}

TEST(DataFaultModel, GeometricSamplerMatchesBernoulliRate)
{
    DataFaultConfig cfg;
    cfg.transientFlipRate = 0.02;
    cfg.seed = 1234;
    DataFaultModel m(cfg);
    std::uint64_t flips = 0;
    const std::uint64_t rows = 2000, bits = 512;
    BitVector row(bits);
    for (std::uint64_t i = 0; i < rows; ++i)
        flips += m.perturbTransient(row);
    double rate = static_cast<double>(flips) /
                  static_cast<double>(rows * bits);
    // ~20480 expected flips; 5 sigma is well under 15 % relative.
    EXPECT_NEAR(rate, 0.02, 0.003);
    EXPECT_EQ(m.transientFlips(), flips);
}

/** Small memory with every data-fault knob under test control. */
MemoryConfig
memConfig(double pdata, EccMode ecc, double retention = 0.0)
{
    MemoryConfig mc;
    mc.banks = 1;
    mc.subarraysPerBank = 1;
    mc.tilesPerSubarray = 2;
    mc.dbcsPerTile = 2;
    mc.reliability.dataFaultRate = pdata;
    mc.reliability.retentionRatePerCycle = retention;
    mc.reliability.dataFaultSeed = 77;
    mc.reliability.eccMode = ecc;
    return mc;
}

TEST(DataFaultMemory, SecdedMemoryReadsBackWhatWasWritten)
{
    // At 2e-4 per bit per access a 64-bit word almost never takes two
    // hits, so every read must decode to the written data.
    MemoryConfig mc = memConfig(2e-4, EccMode::Secded);
    DwmMainMemory mem(mc);
    Rng rng(5);
    const std::size_t lines = 100;
    std::vector<BitVector> written;
    std::vector<std::uint64_t> addrs;
    for (std::size_t i = 0; i < lines; ++i) {
        LineAddress loc{};
        loc.dbc = i / 50;        // 2 x 2 x 25 unique homes
        loc.tile = (i / 25) % 2;
        loc.row = i % 25;
        std::uint64_t addr = mem.addressMap().encode(loc);
        BitVector data = randomRow(rng, mc.device.wiresPerDbc);
        mem.writeLine(addr, data);
        written.push_back(data);
        addrs.push_back(addr);
    }
    for (std::size_t i = 0; i < lines; ++i)
        EXPECT_EQ(mem.readLine(addrs[i]), written[i]) << "line " << i;
    EXPECT_GT(mem.injectedDataFaults(), 0u);
    EXPECT_GT(mem.eccCorrections(), 0u);
    EXPECT_EQ(mem.eccDetectedUncorrectable(), 0u);
}

TEST(DataFaultMemory, UnprotectedMemorySilentlyCorrupts)
{
    MemoryConfig mc = memConfig(5e-3, EccMode::None);
    DwmMainMemory mem(mc);
    Rng rng(5);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < 50; ++i) {
        LineAddress loc{};
        loc.tile = i / 32;
        loc.row = i % 32;
        std::uint64_t addr = mem.addressMap().encode(loc);
        BitVector data = randomRow(rng, mc.device.wiresPerDbc);
        mem.writeLine(addr, data);
        if (mem.readLine(addr) != data)
            ++mismatches;
    }
    EXPECT_GT(mem.injectedDataFaults(), 0u);
    EXPECT_GT(mismatches, 0u); // nothing flags, nothing corrects
    EXPECT_EQ(mem.eccCorrections(), 0u);
}

TEST(DataFaultMemory, EccScrubRepairsRetentionDecay)
{
    // Aggressive decay so idle lines accumulate single-bit flips
    // between accesses; the scrub decodes + rewrites them before a
    // second flip would make words uncorrectable.
    // 400 busy writes advance the clock ~3200 cycles; at 2e-7 per bit
    // per cycle each idle row expects a fraction of a flip and no word
    // takes two, so the sweep corrects everything it finds.
    MemoryConfig mc = memConfig(0.0, EccMode::Secded, 2e-7);
    DwmMainMemory mem(mc);
    Rng rng(9);
    std::vector<std::uint64_t> addrs;
    std::vector<BitVector> written;
    for (std::size_t i = 0; i < 8; ++i) {
        LineAddress loc{};
        loc.row = i;
        std::uint64_t addr = mem.addressMap().encode(loc);
        BitVector data = randomRow(rng, mc.device.wiresPerDbc);
        mem.writeLine(addr, data);
        addrs.push_back(addr);
        written.push_back(data);
    }
    // Busy-work on another DBC advances the memory clock while rows 0-7
    // of DBC 0 sit idle.
    LineAddress busy{};
    busy.dbc = 1;
    std::uint64_t busyAddr = mem.addressMap().encode(busy);
    for (int i = 0; i < 400; ++i)
        mem.writeLine(busyAddr, written[0]);

    EccScrubReport rep = mem.scrubEcc();
    EXPECT_GT(rep.scannedRows, 0u);
    EXPECT_GT(rep.correctedRows, 0u);
    EXPECT_GT(mem.eccCorrections(), 0u);
    // The scrub rewrote the decayed rows; read-back matches.
    for (std::size_t i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(mem.readLine(addrs[i]), written[i]) << "line " << i;
}

TEST(ChannelDataFaultInjector, SameSeedSameClassifiedStream)
{
    ServiceFaultConfig cfg;
    cfg.dataFaultRate = 1e-4;
    cfg.retentionRatePerCycle = 1e-8;
    cfg.ecc = EccMode::Secded;
    ChannelDataFaultInjector a(cfg, 314, 512, 64);
    ChannelDataFaultInjector b(cfg, 314, 512, 64);
    for (int i = 0; i < 200; ++i) {
        auto sa = a.sample(12, i * 100);
        auto sb = b.sample(12, i * 100);
        EXPECT_EQ(sa.flips, sb.flips);
        EXPECT_EQ(sa.correctedWords, sb.correctedWords);
        EXPECT_EQ(sa.dueWords, sb.dueWords);
        EXPECT_EQ(sa.sdcWords, sb.sdcWords);
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u);
}

TEST(ChannelDataFaultInjector, SecdedClassifiesFlipsEccOffGoesSilent)
{
    // With SECDED the dominant single-flip events classify as
    // corrected; with ECC off the identical stream is all-silent.
    ServiceFaultConfig on;
    on.dataFaultRate = 1e-5;
    on.ecc = EccMode::Secded;
    ServiceFaultConfig off = on;
    off.ecc = EccMode::None;
    ChannelDataFaultInjector secded(on, 7, 512, 64);
    ChannelDataFaultInjector none(off, 7, 512, 64);
    std::uint64_t onCorrected = 0, onSdc = 0;
    std::uint64_t offCorrected = 0, offSdc = 0;
    for (int i = 0; i < 5000; ++i) {
        auto s = secded.sample(10, 0);
        onCorrected += s.correctedWords;
        onSdc += s.sdcWords;
        auto n = none.sample(10, 0);
        offCorrected += n.correctedWords;
        offSdc += n.sdcWords;
    }
    EXPECT_EQ(secded.injected(), none.injected()); // same raw stream
    EXPECT_GT(onCorrected, 0u);
    EXPECT_EQ(onSdc, 0u); // no triple-flip word at this rate
    EXPECT_EQ(offCorrected, 0u);
    EXPECT_GT(offSdc, 0u); // every flipped word is silent without ECC
}

TEST(ChannelDataFaultInjector, RetentionChargesOnlyTheIdleAccess)
{
    ServiceFaultConfig cfg;
    cfg.retentionRatePerCycle = 1e-6;
    cfg.ecc = EccMode::Secded;
    ChannelDataFaultInjector inj(cfg, 1, 512, 64);
    // No transient rate and no idle time: nothing can flip.
    auto quiet = inj.sample(20, 0);
    EXPECT_EQ(quiet.flips, 0u);
    // A long-idle line decays with high probability.
    std::uint64_t flips = 0;
    for (int i = 0; i < 50; ++i)
        flips += inj.sample(1, 10000000).flips;
    EXPECT_GT(flips, 0u);
}

} // namespace
} // namespace coruscant
