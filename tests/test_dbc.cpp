/**
 * @file
 * Unit tests for the domain-block cluster, including the equivalence
 * property against the reference per-wire Nanowire model.
 */

#include <gtest/gtest.h>

#include "dwm/dbc.hpp"
#include "dwm/nanowire.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
params(std::size_t wires = 16, std::size_t trd = 7)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

TEST(Dbc, RowRoundTrip)
{
    DomainBlockCluster d(params());
    auto row = BitVector::fromUint64(16, 0xA5C3);
    d.pokeRow(5, row);
    EXPECT_EQ(d.peekRow(5), row);
    EXPECT_EQ(d.peekRow(6).popcount(), 0u);
}

TEST(Dbc, PortRowReadWrite)
{
    DomainBlockCluster d(params());
    auto row = BitVector::fromUint64(16, 0x1234);
    d.writeRowAtPort(Port::Left, row);
    EXPECT_EQ(d.readRowAtPort(Port::Left), row);
    EXPECT_EQ(d.peekRow(d.rowAtPort(Port::Left)), row);
}

TEST(Dbc, ShiftMovesRowsUnderPorts)
{
    DomainBlockCluster d(params());
    auto row = BitVector::fromUint64(16, 0xFFFF);
    std::size_t r = d.rowAtPort(Port::Left);
    d.pokeRow(r, row);
    d.shiftRight();
    // Data moved toward the right extremity: the row previously under
    // the left port is now one past it; row r-? under the port.
    EXPECT_EQ(d.rowAtPort(Port::Left), r - 1);
    EXPECT_EQ(d.peekRow(r), row); // logical row content unchanged
}

TEST(Dbc, TransverseReadPerWireCounts)
{
    DomainBlockCluster d(params(8, 7));
    std::size_t ws = d.rowAtPort(Port::Left);
    // Wire w gets w ones in the window.
    for (std::size_t w = 0; w < 8; ++w)
        for (std::size_t k = 0; k < w; ++k)
            d.pokeBit(ws + k, w, true);
    auto counts = d.transverseReadAll();
    for (std::size_t w = 0; w < 8; ++w) {
        EXPECT_EQ(counts[w], w);
        EXPECT_EQ(d.transverseReadWire(w), w);
    }
}

TEST(Dbc, TransverseWriteRowSegmentShift)
{
    DomainBlockCluster d(params(4, 3));
    std::size_t ws = d.rowAtPort(Port::Left);
    auto a = BitVector::fromUint64(4, 0b0001);
    auto b = BitVector::fromUint64(4, 0b0010);
    auto c = BitVector::fromUint64(4, 0b0100);
    d.pokeRow(ws + 0, a);
    d.pokeRow(ws + 1, b);
    d.pokeRow(ws + 2, c);
    auto x = BitVector::fromUint64(4, 0b1111);
    d.transverseWriteRow(x);
    EXPECT_EQ(d.peekRow(ws + 0), x);
    EXPECT_EQ(d.peekRow(ws + 1), a);
    EXPECT_EQ(d.peekRow(ws + 2), b); // c pushed out
}

TEST(Dbc, TransverseWriteWireTouchesOneWire)
{
    DomainBlockCluster d(params(4, 3));
    std::size_t ws = d.rowAtPort(Port::Left);
    d.pokeRow(ws, BitVector::fromUint64(4, 0b1111));
    d.transverseWriteWire(2, false);
    EXPECT_EQ(d.peekRow(ws).toUint64(), 0b1011u);
    EXPECT_EQ(d.peekRow(ws + 1).toUint64(), 0b0100u); // old bit moved up
}

/**
 * Property: a DBC behaves exactly like an array of independent
 * nanowires driven in lockstep, for a random sequence of operations.
 */
TEST(DbcProperty, EquivalentToNanowireArray)
{
    const std::size_t wires = 8;
    DeviceParams p = params(wires, 7);
    DeviceParams p1 = p;
    p1.wiresPerDbc = 1;

    DomainBlockCluster dbc(p);
    std::vector<Nanowire> ref;
    for (std::size_t w = 0; w < wires; ++w)
        ref.emplace_back(p1);

    Rng rng(2024);
    // Random initial contents.
    for (std::size_t r = 0; r < p.domainsPerWire; ++r) {
        for (std::size_t w = 0; w < wires; ++w) {
            bool b = rng.nextBool();
            dbc.pokeBit(r, w, b);
            ref[w].pokeRow(r, b);
        }
    }

    for (int step = 0; step < 500; ++step) {
        switch (rng.nextBelow(6)) {
          case 0:
            if (dbc.canShiftLeft()) {
                dbc.shiftLeft();
                for (auto &n : ref)
                    n.shiftLeft();
            }
            break;
          case 1:
            if (dbc.canShiftRight()) {
                dbc.shiftRight();
                for (auto &n : ref)
                    n.shiftRight();
            }
            break;
          case 2: {
            Port port = rng.nextBool() ? Port::Left : Port::Right;
            BitVector row(wires);
            for (std::size_t w = 0; w < wires; ++w)
                row.set(w, rng.nextBool());
            dbc.writeRowAtPort(port, row);
            for (std::size_t w = 0; w < wires; ++w)
                ref[w].writeAtPort(port, row.get(w));
            break;
          }
          case 3: {
            BitVector row(wires);
            for (std::size_t w = 0; w < wires; ++w)
                row.set(w, rng.nextBool());
            dbc.transverseWriteRow(row);
            for (std::size_t w = 0; w < wires; ++w)
                ref[w].transverseWrite(row.get(w));
            break;
          }
          case 4: {
            auto counts = dbc.transverseReadAll();
            for (std::size_t w = 0; w < wires; ++w)
                ASSERT_EQ(counts[w], ref[w].transverseRead())
                    << "step " << step << " wire " << w;
            break;
          }
          case 5: {
            Port port = rng.nextBool() ? Port::Left : Port::Right;
            auto row = dbc.readRowAtPort(port);
            for (std::size_t w = 0; w < wires; ++w)
                ASSERT_EQ(row.get(w), ref[w].readAtPort(port));
            break;
          }
        }
    }

    // Final state comparison.
    ASSERT_EQ(dbc.shiftOffset(), ref[0].shiftOffset());
    for (std::size_t r = 0; r < p.domainsPerWire; ++r)
        for (std::size_t w = 0; w < wires; ++w)
            ASSERT_EQ(dbc.peekBit(r, w), ref[w].peekRow(r))
                << "row " << r << " wire " << w;
}

} // namespace
} // namespace coruscant
