/**
 * @file
 * Unit tests for DeviceParams geometry and calibration.
 */

#include <gtest/gtest.h>

#include "dwm/device_params.hpp"
#include "util/logging.hpp"

namespace coruscant {
namespace {

TEST(DeviceParams, DefaultMatchesPaperGeometry)
{
    auto p = DeviceParams::coruscantDefault();
    EXPECT_EQ(p.wiresPerDbc, 512u);
    EXPECT_EQ(p.domainsPerWire, 32u);
    EXPECT_EQ(p.trd, 7u);
    // Paper Sec. III-A: ports at data positions 14 and 20; overhead
    // domains reduce from 31 to 25; 57 total domains.
    EXPECT_EQ(p.leftPortRow(), 14u);
    EXPECT_EQ(p.rightPortRow(), 20u);
    EXPECT_EQ(p.leftOverhead() + p.rightOverhead(), 25u);
    EXPECT_EQ(p.totalDomains(), 57u);
}

TEST(DeviceParams, SingleAccessPointOverheadMatchesPaper)
{
    // TRD = 1 degenerates to a single access point: 2Y - 1 = 63
    // domains (paper Sec. III-A).
    auto p = DeviceParams::withTrd(1);
    EXPECT_EQ(p.totalDomains(), 63u);
}

TEST(DeviceParams, OverheadIsDataMinusTrd)
{
    for (std::size_t trd : {1u, 3u, 5u, 7u}) {
        auto p = DeviceParams::withTrd(trd);
        EXPECT_EQ(p.leftOverhead() + p.rightOverhead(), 32u - trd);
    }
}

TEST(DeviceParams, MaxAddOperands)
{
    EXPECT_EQ(DeviceParams::withTrd(3).maxAddOperands(), 2u);
    EXPECT_EQ(DeviceParams::withTrd(5).maxAddOperands(), 3u);
    EXPECT_EQ(DeviceParams::withTrd(7).maxAddOperands(), 5u);
}

TEST(DeviceParams, TrEnergyCalibration)
{
    auto p = DeviceParams::coruscantDefault();
    // Pinned by Table III composites (see device_params.cpp).
    EXPECT_NEAR(p.trEnergyPj(3), 0.51125, 1e-9);
    EXPECT_NEAR(p.trEnergyPj(7), 1.555, 1e-9);
    // Monotone in the window length.
    EXPECT_LT(p.trEnergyPj(3), p.trEnergyPj(5));
    EXPECT_LT(p.trEnergyPj(5), p.trEnergyPj(7));
    // Window of one is an ordinary read.
    EXPECT_DOUBLE_EQ(p.trEnergyPj(1), p.readEnergyPj);
}

TEST(DeviceParams, ValidateRejectsBadConfigs)
{
    DeviceParams p;
    p.trd = 40; // > domainsPerWire
    EXPECT_THROW(p.validate(), FatalError);
    DeviceParams q;
    q.wiresPerDbc = 0;
    EXPECT_THROW(q.validate(), FatalError);
    DeviceParams r;
    r.cycleNs = -1;
    EXPECT_THROW(r.validate(), FatalError);
}

TEST(DeviceParams, WindowFitsInsideDataRows)
{
    for (std::size_t trd : {3u, 5u, 7u}) {
        auto p = DeviceParams::withTrd(trd);
        EXPECT_LE(p.rightPortRow(), p.domainsPerWire - 1);
        EXPECT_EQ(p.rightPortRow() - p.leftPortRow() + 1, trd);
    }
}

} // namespace
} // namespace coruscant
