/**
 * @file
 * Bit-slice DRAM PIM addition (the DrAcc adder) and the CORUSCANT
 * comparison the paper's Sec. IV makes.
 */

#include <gtest/gtest.h>

#include "baselines/dram_adder.hpp"
#include "core/op_cost.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

TEST(BitSlice, PackUnpackRoundTrip)
{
    Rng rng(2);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 100; ++i)
        values.push_back(rng.next() & 0xFFFF);
    auto op = BitSliceOperand::pack(values, 16, 128);
    ASSERT_EQ(op.bits(), 16u);
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(op.unpack(i), values[i]);
}

class DramAdderTest : public ::testing::TestWithParam<bool>
{
  protected:
    std::unique_ptr<DramPimUnit>
    make(std::size_t bits)
    {
        if (GetParam())
            return std::make_unique<AmbitUnit>(bits);
        return std::make_unique<Elp2ImUnit>(bits);
    }
};

TEST_P(DramAdderTest, PackedAdditionIsExact)
{
    auto unit = make(256);
    DramBitSliceAdder adder(*unit);
    Rng rng(7);
    std::vector<std::uint64_t> av, bv;
    for (int i = 0; i < 256; ++i) {
        av.push_back(rng.next() & 0xFF);
        bv.push_back(rng.next() & 0xFF);
    }
    auto a = BitSliceOperand::pack(av, 8, 256);
    auto b = BitSliceOperand::pack(bv, 8, 256);
    auto s = adder.add(a, b);
    for (std::size_t i = 0; i < av.size(); ++i)
        EXPECT_EQ(s.unpack(i), (av[i] + bv[i]) & 0xFF) << i;
}

TEST_P(DramAdderTest, OpCountMatchesEq3)
{
    auto unit = make(64);
    DramBitSliceAdder adder(*unit);
    auto a = BitSliceOperand::pack({1, 2, 3}, 8, 64);
    auto b = BitSliceOperand::pack({4, 5, 6}, 8, 64);
    unit->resetCosts();
    adder.add(a, b);
    // 5 ops/bit - 3 = 37 bulk ops for 8 bits.
    std::uint64_t ops = 0;
    for (const auto &[k, v] : unit->ledger().byCategory())
        ops += v.count;
    // Each bulk2 may issue several commands; count operations via the
    // static formula instead and check the ledger is non-trivial.
    EXPECT_EQ(DramBitSliceAdder::opsPerAddition(8), 37u);
    EXPECT_GT(ops, 37u);
}

INSTANTIATE_TEST_SUITE_P(BothUnits, DramAdderTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "Ambit" : "Elp2Im";
                         });

TEST(DramAdder, CoruscantAdditionStepIsFarCheaper)
{
    // Paper Sec. IV: one DRAM addition step costs ~40 ELP2IM cycles
    // per value-independent step, while CORUSCANT's five-operand add
    // costs 26 device cycles and its 7->3 reduction only 4.
    Elp2ImUnit elp(256);
    DramBitSliceAdder adder(elp);
    auto a = BitSliceOperand::pack({100}, 8, 256);
    auto b = BitSliceOperand::pack({55}, 8, 256);
    elp.resetCosts();
    adder.add(a, b);
    auto dram_cycles = elp.ledger().cycles();
    CoruscantCostModel c7(7);
    EXPECT_GT(dram_cycles, 10 * c7.add(2, 8).cycles);
    EXPECT_GT(dram_cycles, 100 * c7.reduce().cycles);
}

TEST(DramAdder, WidthIndependentOfPackedCount)
{
    // The whole point of bulk PIM: cost does not grow with how many
    // values are packed in the row.
    Elp2ImUnit elp(4096);
    DramBitSliceAdder adder(elp);
    auto few_a = BitSliceOperand::pack({1, 2}, 8, 4096);
    auto few_b = BitSliceOperand::pack({3, 4}, 8, 4096);
    elp.resetCosts();
    adder.add(few_a, few_b);
    auto few = elp.ledger().cycles();

    std::vector<std::uint64_t> many(4096, 77);
    auto many_a = BitSliceOperand::pack(many, 8, 4096);
    auto many_b = BitSliceOperand::pack(many, 8, 4096);
    elp.resetCosts();
    adder.add(many_a, many_b);
    EXPECT_EQ(few, elp.ledger().cycles());
}

} // namespace
} // namespace coruscant
