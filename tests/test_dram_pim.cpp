/**
 * @file
 * Ambit and ELP2IM functional and cost tests.
 */

#include <gtest/gtest.h>

#include "baselines/dram_pim.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

BitVector
randomRow(Rng &rng, std::size_t width)
{
    BitVector row(width);
    for (std::size_t w = 0; w < width; ++w)
        row.set(w, rng.nextBool());
    return row;
}

TEST(DramSubarray, TripleRowActivateIsDestructiveMajority)
{
    DramSubarray s(4, 8);
    s.setRow(0, BitVector::fromUint64(8, 0b11001100));
    s.setRow(1, BitVector::fromUint64(8, 0b10101010));
    s.setRow(2, BitVector::fromUint64(8, 0b11110000));
    auto maj = s.tripleRowActivate(0, 1, 2);
    EXPECT_EQ(maj.toUint64(), 0b11101000u);
    // Destructive: all three rows now hold the majority.
    EXPECT_EQ(s.row(0).toUint64(), 0b11101000u);
    EXPECT_EQ(s.row(1).toUint64(), 0b11101000u);
    EXPECT_EQ(s.row(2).toUint64(), 0b11101000u);
}

TEST(DramSubarray, RowCloneAndDcc)
{
    DramSubarray s(4, 8);
    s.setRow(0, BitVector::fromUint64(8, 0xA5));
    s.rowClone(0, 3);
    EXPECT_EQ(s.row(3).toUint64(), 0xA5u);
    EXPECT_EQ(s.readInverted(3).toUint64(), 0x5Au);
}

class DramPimFunctional
    : public ::testing::TestWithParam<bool> // true = Ambit
{
  protected:
    std::unique_ptr<DramPimUnit>
    make(std::size_t bits)
    {
        if (GetParam())
            return std::make_unique<AmbitUnit>(bits);
        return std::make_unique<Elp2ImUnit>(bits);
    }
};

TEST_P(DramPimFunctional, TwoOperandTruthTables)
{
    auto unit = make(64);
    Rng rng(17);
    for (int iter = 0; iter < 20; ++iter) {
        auto a = randomRow(rng, 64);
        auto b = randomRow(rng, 64);
        EXPECT_EQ(unit->bulk2(BulkOp::And, a, b), a & b);
        EXPECT_EQ(unit->bulk2(BulkOp::Or, a, b), a | b);
        EXPECT_EQ(unit->bulk2(BulkOp::Xor, a, b), a ^ b);
        EXPECT_EQ(unit->bulk2(BulkOp::Nand, a, b), ~(a & b));
        EXPECT_EQ(unit->bulk2(BulkOp::Nor, a, b), ~(a | b));
        EXPECT_EQ(unit->bulk2(BulkOp::Xnor, a, b), ~(a ^ b));
        EXPECT_EQ(unit->bulkNot(a), ~a);
    }
}

TEST_P(DramPimFunctional, MultiOperandComposition)
{
    auto unit = make(32);
    Rng rng(23);
    std::vector<BitVector> ops;
    for (int i = 0; i < 5; ++i)
        ops.push_back(randomRow(rng, 32));
    BitVector and_all = ops[0];
    BitVector xor_all = ops[0];
    for (int i = 1; i < 5; ++i) {
        and_all &= ops[i];
        xor_all ^= ops[i];
    }
    EXPECT_EQ(unit->bulkMulti(BulkOp::And, ops), and_all);
    EXPECT_EQ(unit->bulkMulti(BulkOp::Xor, ops), xor_all);
    EXPECT_EQ(unit->bulkMulti(BulkOp::Nand, ops), ~and_all);
}

INSTANTIATE_TEST_SUITE_P(BothDesigns, DramPimFunctional,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "Ambit" : "Elp2Im";
                         });

TEST(DramPimCosts, Elp2ImFasterThanAmbit)
{
    // ELP2IM's published advantage is ~3.2x over Ambit for bitmap-scan
    // style two-operand operations.
    AmbitUnit ambit(64);
    Elp2ImUnit elp(64);
    BitVector a(64, true), b(64, true);
    ambit.bulk2(BulkOp::And, a, b);
    elp.bulk2(BulkOp::And, a, b);
    double ratio = static_cast<double>(ambit.ledger().cycles()) /
                   static_cast<double>(elp.ledger().cycles());
    EXPECT_GT(ratio, 2.8);
    EXPECT_LT(ratio, 3.8);
}

TEST(DramPimCosts, AmbitAapCounts)
{
    EXPECT_EQ(AmbitUnit::aapCount(BulkOp::And), 4u);
    EXPECT_EQ(AmbitUnit::aapCount(BulkOp::Nor), 5u);
    EXPECT_EQ(AmbitUnit::aapCount(BulkOp::Xor), 7u);
    EXPECT_EQ(AmbitUnit::aapCount(BulkOp::Not), 3u);
    EXPECT_THROW(AmbitUnit::aapCount(BulkOp::Maj), FatalError);
}

TEST(DramPimCosts, MultiOperandCostGrowsLinearly)
{
    // k-operand AND costs (k-1) two-operand steps in DRAM PIM — the
    // contrast with CORUSCANT's single TR.
    Elp2ImUnit elp(64);
    std::vector<BitVector> ops(5, BitVector(64, true));
    elp.bulkMulti(BulkOp::And, ops);
    auto c5 = elp.ledger().cycles();
    elp.resetCosts();
    std::vector<BitVector> ops2(2, BitVector(64, true));
    elp.bulkMulti(BulkOp::And, ops2);
    auto c2 = elp.ledger().cycles();
    EXPECT_EQ(c5, 4 * c2);
}

} // namespace
} // namespace coruscant
