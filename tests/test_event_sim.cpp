/**
 * @file
 * Discrete-event channel simulator: policies, invariants, and
 * cross-check against the closed-form queue model.
 */

#include <gtest/gtest.h>

#include "controller/event_sim.hpp"
#include "controller/queue_model.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

TEST(EventSim, EmptyAndSingle)
{
    EventSimulator sim(4);
    EXPECT_EQ(sim.run({}, SchedulePolicy::InOrder).makespan, 0u);
    auto s = sim.run({{10, 2, 3, 50}}, SchedulePolicy::InOrder);
    EXPECT_EQ(s.makespan, 63u);
    EXPECT_EQ(s.maxLatency, 53u);
}

TEST(EventSim, ParallelBanksOverlap)
{
    EventSimulator sim(4);
    std::vector<SimRequest> reqs;
    for (std::size_t b = 0; b < 4; ++b)
        reqs.push_back({0, b, 1, 100});
    auto s = sim.run(reqs, SchedulePolicy::InOrder);
    // Issue 4 commands serially; all four run concurrently.
    EXPECT_EQ(s.makespan, 104u);
    EXPECT_GT(s.bankUtilization, 0.9);
}

TEST(EventSim, SameBankSerializes)
{
    EventSimulator sim(4);
    std::vector<SimRequest> reqs(4, SimRequest{0, 1, 1, 100});
    auto s = sim.run(reqs, SchedulePolicy::InOrder);
    EXPECT_EQ(s.makespan, 404u);
}

TEST(EventSim, ReorderBreaksHeadOfLineBlocking)
{
    // Bank 0 gets a long request, then another bank-0 request, then
    // many bank-1 requests.  In-order stalls them all behind bank 0;
    // reorder lets bank 1 proceed.
    std::vector<SimRequest> reqs;
    reqs.push_back({0, 0, 1, 1000});
    reqs.push_back({1, 0, 1, 1000});
    for (int i = 0; i < 10; ++i)
        reqs.push_back({2, 1, 1, 10});
    EventSimulator sim(2);
    auto in_order = sim.run(reqs, SchedulePolicy::InOrder);
    auto reorder = sim.run(reqs, SchedulePolicy::BankReorder);
    EXPECT_LT(reorder.avgLatency, in_order.avgLatency / 3);
    EXPECT_LE(reorder.makespan, in_order.makespan);
}

TEST(EventSim, ReorderPreservesPerBankOrder)
{
    // Latency of same-bank requests must reflect FIFO order: the
    // second bank-0 request cannot complete before the first.
    std::vector<SimRequest> reqs = {{0, 0, 1, 100}, {0, 0, 1, 10}};
    EventSimulator sim(2);
    auto s = sim.run(reqs, SchedulePolicy::BankReorder);
    EXPECT_EQ(s.makespan, 112u); // 101, then 1 cmd + 10 service
}

TEST(EventSim, MatchesClosedFormOnUniformLoad)
{
    // Saturated uniform round-robin load: the DES and the closed-form
    // runUniform must agree within a few percent.
    const std::size_t banks = 16;
    const std::uint64_t count = 2000, busy = 40, cmds = 2;
    std::vector<SimRequest> reqs;
    for (std::uint64_t i = 0; i < count; ++i)
        reqs.push_back({0, static_cast<std::size_t>(i % banks),
                        static_cast<std::uint32_t>(cmds),
                        static_cast<std::uint32_t>(busy)});
    EventSimulator sim(banks);
    auto des = sim.run(reqs, SchedulePolicy::BankReorder);
    CommandQueueModel cq(banks);
    auto cf = cq.runUniform(count, busy, cmds);
    double ratio = static_cast<double>(des.makespan) /
                   static_cast<double>(cf.makespanCycles);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(EventSim, ArrivalTimesRespected)
{
    EventSimulator sim(2);
    auto s = sim.run({{1000, 0, 1, 10}}, SchedulePolicy::InOrder);
    EXPECT_EQ(s.makespan, 1011u);
    EXPECT_EQ(s.maxLatency, 11u);
}

TEST(EventSim, UtilizationBounds)
{
    Rng rng(9);
    std::vector<SimRequest> reqs;
    for (int i = 0; i < 500; ++i)
        reqs.push_back({rng.nextBelow(1000),
                        static_cast<std::size_t>(rng.nextBelow(8)),
                        1 + static_cast<std::uint32_t>(
                                rng.nextBelow(4)),
                        static_cast<std::uint32_t>(rng.nextBelow(60))});
    EventSimulator sim(8);
    for (auto pol :
         {SchedulePolicy::InOrder, SchedulePolicy::BankReorder}) {
        auto s = sim.run(reqs, pol);
        EXPECT_GT(s.makespan, 0u);
        EXPECT_LE(s.busUtilization, 1.0);
        EXPECT_LE(s.bankUtilization, 1.0);
        EXPECT_GE(s.avgLatency, 1.0);
    }
}

TEST(EventSim, RejectsBadBank)
{
    EventSimulator sim(2);
    EXPECT_THROW(sim.run({{0, 5, 1, 1}}, SchedulePolicy::InOrder),
                 FatalError);
}

} // namespace
} // namespace coruscant
