/**
 * @file
 * Exhaustive small-width sweeps: every input combination of 4-bit
 * multiplication and 3-operand 4-bit addition, across TRD values —
 * leaves no corner of the arithmetic untested.
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"

namespace coruscant {
namespace {

DeviceParams
params(std::size_t trd, std::size_t wires)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

class ExhaustiveMul : public ::testing::TestWithParam<
                          std::tuple<std::size_t, MulStrategy>>
{};

TEST_P(ExhaustiveMul, AllFourBitPairs)
{
    auto [trd, strategy] = GetParam();
    CoruscantUnit unit(params(trd, 8));
    for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
            auto prod = unit.multiply(BitVector::fromUint64(8, a),
                                      BitVector::fromUint64(8, b), 4,
                                      strategy);
            ASSERT_EQ(prod.toUint64(), a * b)
                << a << " * " << b << " trd=" << trd;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTrds, ExhaustiveMul,
    ::testing::Combine(::testing::Values(3u, 4u, 5u, 6u, 7u),
                       ::testing::Values(MulStrategy::OptimizedCsa,
                                         MulStrategy::Arbitrary)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::size_t, MulStrategy>> &info) {
        return "trd" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) == MulStrategy::OptimizedCsa
                    ? "_csa"
                    : "_arb");
    });

class ExhaustiveAdd : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ExhaustiveAdd, AllThreeOperandFourBitCombos)
{
    std::size_t trd = GetParam();
    CoruscantUnit unit(params(trd, 8));
    std::size_t arity = unit.params().maxAddOperands();
    if (arity < 3)
        GTEST_SKIP() << "TRD " << trd << " adder is two-operand";
    // Sum in an 8-bit block so no truncation occurs.
    for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
            for (std::uint64_t c = 0; c < 16; ++c) {
                auto sum = unit.add({BitVector::fromUint64(8, a),
                                     BitVector::fromUint64(8, b),
                                     BitVector::fromUint64(8, c)},
                                    8);
                ASSERT_EQ(sum.toUint64(), a + b + c)
                    << a << "+" << b << "+" << c;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTrds, ExhaustiveAdd,
                         ::testing::Values(3u, 5u, 7u),
                         [](const ::testing::TestParamInfo<std::size_t>
                                &info) {
                             return "trd" + std::to_string(info.param);
                         });

TEST(ExhaustiveAdd, AllTwoOperandFiveBitPairsTrd3)
{
    CoruscantUnit unit(params(3, 8));
    for (std::uint64_t a = 0; a < 32; ++a) {
        for (std::uint64_t b = 0; b < 32; ++b) {
            auto sum = unit.add({BitVector::fromUint64(8, a),
                                 BitVector::fromUint64(8, b)},
                                8);
            ASSERT_EQ(sum.toUint64(), a + b) << a << "+" << b;
        }
    }
}

TEST(ExhaustiveBulk, AllThreeOperandBitPatterns)
{
    // Every 3-operand column pattern (each wire independently draws
    // all 8 combinations) for every op at every TRD.
    for (std::size_t trd : {3u, 5u, 7u}) {
        CoruscantUnit unit(params(trd, 8));
        // Wire w gets pattern w (bit0->op0, bit1->op1, bit2->op2).
        BitVector r0(8), r1(8), r2(8);
        for (std::size_t w = 0; w < 8; ++w) {
            r0.set(w, w & 1);
            r1.set(w, w & 2);
            r2.set(w, w & 4);
        }
        auto and_r = unit.bulkBitwise(BulkOp::And, {r0, r1, r2});
        auto or_r = unit.bulkBitwise(BulkOp::Or, {r0, r1, r2});
        auto xor_r = unit.bulkBitwise(BulkOp::Xor, {r0, r1, r2});
        for (std::size_t w = 0; w < 8; ++w) {
            bool a = w & 1, b = w & 2, c = w & 4;
            EXPECT_EQ(and_r.get(w), a && b && c) << w;
            EXPECT_EQ(or_r.get(w), a || b || c) << w;
            EXPECT_EQ(xor_r.get(w), (a ^ b ^ c) != 0) << w;
        }
    }
}

TEST(ExhaustiveMax, AllTwoCandidateFourBitPairs)
{
    CoruscantUnit unit(params(7, 4));
    for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
            auto mx = unit.maxOfRows({BitVector::fromUint64(4, a),
                                      BitVector::fromUint64(4, b)},
                                     4);
            ASSERT_EQ(mx.toUint64(), std::max(a, b))
                << "max(" << a << "," << b << ")";
        }
    }
}

} // namespace
} // namespace coruscant
