/**
 * @file
 * Extension features: segmented transverse read (paper Fig. 3), the
 * Pinatubo NVM baseline, and average pooling.
 */

#include <gtest/gtest.h>

#include "apps/cnn/pim_executor.hpp"
#include "baselines/pinatubo.hpp"
#include "core/coruscant_unit.hpp"
#include "dwm/nanowire.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

TEST(SegmentedTr, OuterSegmentsPartitionTheWire)
{
    DeviceParams p = DeviceParams::withTrd(7);
    p.wiresPerDbc = 1;
    Nanowire w(p);
    Rng rng(3);
    std::size_t total = 0;
    for (std::size_t r = 0; r < p.domainsPerWire; ++r) {
        bool b = rng.nextBool();
        total += b ? 1 : 0;
        w.pokeRow(r, b);
    }
    EXPECT_EQ(w.totalOnes(), total);
    // Partition property holds at any alignment.
    while (w.canShiftLeft())
        w.shiftLeft();
    EXPECT_EQ(w.totalOnes(), total);
    while (w.canShiftRight())
        w.shiftRight();
    EXPECT_EQ(w.totalOnes(), total);
}

TEST(SegmentedTr, OutsideCountsMatchDirectCount)
{
    DeviceParams p = DeviceParams::withTrd(5);
    p.wiresPerDbc = 1;
    Nanowire w(p);
    // Ones only in the rows left of the window.
    std::size_t ws = w.rowAtPort(Port::Left);
    for (std::size_t r = 0; r < ws; ++r)
        w.pokeRow(r, true);
    EXPECT_EQ(w.transverseReadOutside(Port::Left), ws);
    EXPECT_EQ(w.transverseReadOutside(Port::Right), 0u);
    EXPECT_EQ(w.transverseRead(), 0u);
}

TEST(SegmentedTr, DbcSegmentedPopcountIsTwoTrCycles)
{
    DeviceParams p = DeviceParams::withTrd(7);
    p.wiresPerDbc = 32;
    CoruscantUnit unit(p);
    Rng rng(9);
    std::vector<std::size_t> expected(32, 0);
    for (std::size_t r = 0; r < p.domainsPerWire; ++r) {
        BitVector row(32);
        for (std::size_t w = 0; w < 32; ++w) {
            bool b = rng.nextBool();
            row.set(w, b);
            expected[w] += b ? 1 : 0;
        }
        unit.loadRow(r, row);
    }
    unit.resetCosts();
    auto counts = unit.segmentedPopcount();
    EXPECT_EQ(unit.ledger().cycles(), 2u);
    for (std::size_t w = 0; w < 32; ++w)
        EXPECT_EQ(counts[w], expected[w]) << "wire " << w;
}

TEST(Pinatubo, FunctionalOps)
{
    PinatuboUnit unit(64);
    Rng rng(5);
    std::vector<BitVector> ops;
    for (int i = 0; i < 4; ++i) {
        BitVector row(64);
        for (std::size_t w = 0; w < 64; ++w)
            row.set(w, rng.nextBool());
        ops.push_back(std::move(row));
    }
    BitVector and_all = ops[0] & ops[1] & ops[2] & ops[3];
    BitVector or_all = ops[0] | ops[1] | ops[2] | ops[3];
    EXPECT_EQ(unit.bulk(BulkOp::And, ops), and_all);
    EXPECT_EQ(unit.bulk(BulkOp::Or, ops), or_all);
    EXPECT_EQ(unit.bulk(BulkOp::Nand, ops), ~and_all);
    EXPECT_EQ(unit.bulk(BulkOp::Xor, {ops[0], ops[1]}),
              ops[0] ^ ops[1]);
}

TEST(Pinatubo, WriteEnergyDominates)
{
    // The paper's criticism: PCM write energy (29.7 pJ/bit) dwarfs
    // the sensing energy.
    PinatuboUnit unit(512);
    std::vector<BitVector> ops(2, BitVector(512, true));
    unit.resetCosts();
    unit.bulk(BulkOp::And, ops);
    auto &by = unit.ledger().byCategory();
    EXPECT_GT(by.at("write").energyPj, 10 * by.at("sense").energyPj);
}

TEST(Pinatubo, ChainingWearsTheArray)
{
    // k operands with a 2-row sense need k-1 intermediate write-backs:
    // the endurance pressure CORUSCANT avoids.
    PinatuboUnit unit(64, 2);
    std::vector<BitVector> ops(5, BitVector(64, true));
    unit.bulk(BulkOp::And, ops);
    EXPECT_EQ(unit.resultRowWrites(), 4u);
    // CORUSCANT: zero intermediate writes for the same operation.
    DeviceParams p = DeviceParams::withTrd(7);
    p.wiresPerDbc = 64;
    CoruscantUnit cor(p);
    cor.bulkBitwise(BulkOp::And, ops);
    // (one TR; nothing rewritten)
    EXPECT_EQ(cor.ledger().byCategory().count("tw"), 0u);
}

TEST(Pinatubo, CoruscantFasterForMultiOperand)
{
    PinatuboUnit pin(512);
    DeviceParams p = DeviceParams::withTrd(7);
    CoruscantUnit cor(p);
    std::vector<BitVector> ops(5, BitVector(512, true));
    pin.resetCosts();
    pin.bulk(BulkOp::And, ops);
    cor.resetCosts();
    cor.bulkBitwise(BulkOp::And, ops);
    EXPECT_LT(cor.ledger().cycles(), pin.ledger().cycles());
}

TEST(AvgPool, MatchesReference)
{
    PimCnnExecutor exec;
    Rng rng(31);
    IntTensor input(8, 8, 2);
    for (auto &v : input.data)
        v = static_cast<std::int32_t>(rng.nextBelow(4096));
    auto out = exec.avgPool(input, 2);
    ASSERT_EQ(out.h, 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            for (std::size_t c = 0; c < 2; ++c) {
                std::int32_t sum = 0;
                for (std::size_t pi = 0; pi < 2; ++pi)
                    for (std::size_t pj = 0; pj < 2; ++pj)
                        sum += input.at(2 * i + pi, 2 * j + pj, c);
                EXPECT_EQ(out.at(i, j, c), sum / 4);
            }
        }
    }
}

TEST(AvgPool, FourByFourWindow)
{
    PimCnnExecutor exec;
    IntTensor input(4, 4, 1);
    std::int32_t sum = 0;
    for (std::size_t i = 0; i < input.size(); ++i) {
        input.data[i] = static_cast<std::int32_t>(i * 3 + 1);
        sum += input.data[i];
    }
    auto out = exec.avgPool(input, 4);
    EXPECT_EQ(out.at(0, 0, 0), sum / 16);
}

TEST(AvgPool, RejectsNonPowerOfTwo)
{
    PimCnnExecutor exec;
    IntTensor input(9, 9, 1);
    EXPECT_THROW(exec.avgPool(input, 3), FatalError);
}

} // namespace
} // namespace coruscant
