/**
 * @file
 * End-to-end shift-fault tolerance: injection, guarded execution, the
 * retry ladder, DBC retirement, and the fault-campaign harness.
 */

#include <gtest/gtest.h>

#include "arch/dwm_memory.hpp"
#include "controller/memory_controller.hpp"
#include "reliability/fault_campaign.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

MemoryConfig
smallConfig(GuardPolicy policy)
{
    MemoryConfig cfg;
    cfg.banks = 1;
    cfg.subarraysPerBank = 1;
    cfg.tilesPerSubarray = 1;
    cfg.dbcsPerTile = 2;
    cfg.pimDbcsPerSubarray = 1;
    cfg.device.wiresPerDbc = 64;
    cfg.reliability.guardPolicy = policy;
    return cfg;
}

/** Byte address of @p row in the first DBC of @p dbc. */
std::uint64_t
rowAddr(const DwmMainMemory &mem, std::size_t dbc, std::size_t row)
{
    LineAddress loc{};
    loc.dbc = dbc;
    loc.row = row;
    return mem.addressMap().encode(loc);
}

/** Stage @p count operand rows of random lanes; return the lane sums. */
std::vector<std::uint64_t>
stageOperands(DwmMainMemory &mem, std::uint64_t src, std::size_t count,
              std::size_t block, Rng &rng)
{
    std::size_t wires = mem.config().device.wiresPerDbc;
    std::size_t lanes = wires / block;
    std::uint64_t mask = (1ULL << block) - 1;
    std::vector<std::uint64_t> golden(lanes, 0);
    LineAddress loc = mem.addressMap().decode(src);
    for (std::size_t i = 0; i < count; ++i) {
        BitVector row(wires);
        for (std::size_t l = 0; l < lanes; ++l) {
            std::uint64_t v = rng.next() & mask;
            row.insertUint64(l * block, block, v);
            golden[l] = (golden[l] + v) & mask;
        }
        LineAddress op = loc;
        op.row = loc.row + i;
        mem.writeLine(mem.addressMap().encode(op), row);
    }
    return golden;
}

TEST(FaultPipeline, GuardedAccessCorrectsInjectedMisalignment)
{
    DwmMainMemory mem(smallConfig(GuardPolicy::PerAccess));
    BitVector data(64);
    for (std::size_t i = 0; i < 64; ++i)
        data.set(i, i % 3 == 0);
    mem.writeLine(0, data);
    mem.injectShiftFaultAt(0, true);
    // The guarded read detects the misalignment after the alignment
    // burst and corrects it before the port touches the row.
    EXPECT_EQ(mem.readLine(0), data);
    EXPECT_GE(mem.detectedMisalignments(), 1u);
    EXPECT_GE(mem.correctedMisalignments(), 1u);
    EXPECT_EQ(mem.uncorrectableEvents(), 0u);
}

TEST(FaultPipeline, UnguardedAccessReadsWrongRowSilently)
{
    DwmMainMemory mem(smallConfig(GuardPolicy::None));
    BitVector row0(64), row1(64);
    row0.set(0, true);
    row1.set(1, true);
    mem.writeLine(rowAddr(mem, 0, 0), row0);
    mem.writeLine(rowAddr(mem, 0, 1), row1);
    mem.injectShiftFaultAt(0, true);
    // No guard: the misalignment goes unnoticed and the read returns
    // the neighbouring row — the silent corruption of the taxonomy.
    EXPECT_NE(mem.readLine(0), row0);
    EXPECT_EQ(mem.guardChecks(), 0u);
}

TEST(FaultPipeline, CheckLineReportsAndChargesGuardWork)
{
    DwmMainMemory mem(smallConfig(GuardPolicy::PerCpim));
    mem.writeLine(0, BitVector(64));
    mem.injectShiftFaultAt(0, false);
    GuardReport rep = mem.checkLine(0);
    EXPECT_TRUE(rep.checked);
    EXPECT_TRUE(rep.misaligned);
    EXPECT_TRUE(rep.corrected);
    EXPECT_FALSE(rep.uncorrectable);
    const auto &by = mem.ledger().byCategory();
    ASSERT_TRUE(by.count("guard"));
    ASSERT_TRUE(by.count("guard_fix"));
    EXPECT_GT(by.at("guard").cycles, 0u);
    EXPECT_GT(by.at("guard_fix").cycles, 0u);
}

TEST(FaultPipeline, GuardedCpimCorrectsPreExistingMisalignment)
{
    DwmMainMemory mem(smallConfig(GuardPolicy::PerCpim));
    MemoryController ctrl(mem);
    Rng rng(9);
    auto golden = stageOperands(mem, 0, 3, 8, rng);
    std::uint64_t dst =
        ctrl.operandAddress(0, 4); // past the operand rows
    mem.injectShiftFaultAt(0, true);

    CpimInstruction inst;
    inst.op = CpimOp::Add;
    inst.src = 0;
    inst.dst = dst;
    inst.operands = 3;
    inst.blockSize = 8;
    ExecReport rep = ctrl.executeGuarded(inst);
    EXPECT_NE(rep.outcome, ExecOutcome::Uncorrectable);
    EXPECT_GE(mem.correctedMisalignments(), 1u);
    BitVector got = mem.readLine(dst);
    for (std::size_t l = 0; l < golden.size(); ++l)
        EXPECT_EQ(got.sliceUint64(l * 8, 8), golden[l]) << "lane " << l;
    EXPECT_EQ(ctrl.executedInstructions(), 1u);
}

TEST(FaultPipeline, IsaViolationDiagnosticsNameTheInstruction)
{
    DwmMainMemory mem(smallConfig(GuardPolicy::None));
    MemoryController ctrl(mem);
    CpimInstruction inst;
    inst.op = CpimOp::Add;
    inst.src = 0;
    inst.dst = 64;
    inst.operands = 6; // > TRD-2: ISA violation
    inst.blockSize = 8;
    try {
        ctrl.execute(inst);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("cpim add"), std::string::npos) << msg;
        EXPECT_NE(msg.find("src=0x"), std::string::npos) << msg;
        EXPECT_NE(msg.find("operands=6"), std::string::npos) << msg;
    }
}

TEST(FaultPipeline, WornDbcIsRetiredAndRemapped)
{
    MemoryConfig cfg = smallConfig(GuardPolicy::PerAccess);
    cfg.reliability.retireThreshold = 2;
    cfg.reliability.spareDbcs = 4;
    DwmMainMemory mem(cfg);
    BitVector data(64);
    data.set(7, true);
    mem.writeLine(0, data);
    for (int i = 0; i < 3; ++i) {
        mem.injectShiftFaultAt(0, true);
        EXPECT_EQ(mem.readLine(0), data) << "round " << i;
    }
    EXPECT_GE(mem.retiredDbcs(), 1u);
    ASSERT_TRUE(mem.ledger().byCategory().count("retire"));
    // The logical address transparently follows the remap.
    EXPECT_EQ(mem.readLine(0), data);
    mem.writeLine(0, BitVector(64));
    EXPECT_EQ(mem.readLine(0), BitVector(64));
}

TEST(FaultPipeline, SpareExhaustionIsCountedNotFatal)
{
    MemoryConfig cfg = smallConfig(GuardPolicy::PerAccess);
    cfg.reliability.retireThreshold = 1;
    cfg.reliability.spareDbcs = 1;
    DwmMainMemory mem(cfg);
    BitVector a(64), b(64);
    a.set(1, true);
    b.set(2, true);
    std::uint64_t other = rowAddr(mem, 1, 0);
    mem.writeLine(0, a);
    mem.writeLine(other, b);
    for (int i = 0; i < 2; ++i) {
        mem.injectShiftFaultAt(0, true);
        EXPECT_EQ(mem.readLine(0), a);
        mem.injectShiftFaultAt(other, true);
        EXPECT_EQ(mem.readLine(other), b);
    }
    EXPECT_EQ(mem.retiredDbcs(), 1u);
    EXPECT_GE(mem.retirementFailures(), 1u);
}

TEST(FaultPipeline, SpareExhaustionIsATypedControllerOutcome)
{
    // Retirement wants a spare on every correction (threshold 1) but
    // the pool is empty: the guarded cpim must come back with the
    // typed capacity error, not a bare Uncorrectable or a silent
    // Corrected, so serving layers can shed load instead of retrying.
    MemoryConfig cfg = smallConfig(GuardPolicy::PerCpim);
    cfg.reliability.retireThreshold = 1;
    cfg.reliability.spareDbcs = 0;
    DwmMainMemory mem(cfg);
    MemoryController ctrl(mem);
    Rng rng(11);
    auto golden = stageOperands(mem, 0, 3, 8, rng);
    std::uint64_t dst = ctrl.operandAddress(0, 4);
    mem.injectShiftFaultAt(0, true);

    CpimInstruction inst;
    inst.op = CpimOp::Add;
    inst.src = 0;
    inst.dst = dst;
    inst.operands = 3;
    inst.blockSize = 8;
    ExecReport rep = ctrl.executeGuarded(inst);
    EXPECT_EQ(rep.outcome, ExecOutcome::SparesExhausted);
    EXPECT_EQ(ctrl.spareExhaustedInstructions(), 1u);
    EXPECT_GE(mem.retirementFailures(), 1u);
    // The correction itself still succeeded; the data is intact.
    BitVector got = mem.readLine(dst);
    for (std::size_t l = 0; l < golden.size(); ++l)
        EXPECT_EQ(got.sliceUint64(l * 8, 8), golden[l]) << "lane " << l;
}

TEST(FaultPipeline, RetryBackoffIsChargedExponentially)
{
    MemoryConfig cfg = smallConfig(GuardPolicy::PerCpim);
    cfg.reliability.shiftFaultRate = 0.05;
    cfg.reliability.shiftFaultSeed = 3;
    cfg.reliability.retryBackoffCycles = 64;
    cfg.reliability.maxRetries = 3;
    DwmMainMemory mem(cfg);
    MemoryController ctrl(mem);
    Rng rng(4);
    stageOperands(mem, 0, 3, 8, rng);
    CpimInstruction inst;
    inst.op = CpimOp::Add;
    inst.src = 0;
    inst.dst = ctrl.operandAddress(0, 4);
    inst.operands = 3;
    inst.blockSize = 8;
    unsigned retries = 0;
    for (int i = 0; i < 50 && retries == 0; ++i)
        retries = ctrl.executeGuarded(inst).retries;
    ASSERT_GT(retries, 0u) << "no retry triggered at 5% fault rate";
    const auto &by = mem.ledger().byCategory();
    ASSERT_TRUE(by.count("retry_backoff"));
    // First retry waits 64, the next 128, ...: total charged cycles
    // are bounded below by the first wait and are a multiple of it.
    EXPECT_GE(by.at("retry_backoff").cycles, 64u);
    EXPECT_EQ(by.at("retry_backoff").cycles % 64, 0u);
}

TEST(FaultPipeline, ZeroBackoffPreservesPreBackoffLedger)
{
    // retryBackoffCycles = 0 (the default) must leave no trace in the
    // ledger, keeping golden cost tests valid.
    MemoryConfig cfg = smallConfig(GuardPolicy::PerCpim);
    cfg.reliability.shiftFaultRate = 0.05;
    cfg.reliability.shiftFaultSeed = 3;
    cfg.reliability.maxRetries = 3;
    DwmMainMemory mem(cfg);
    MemoryController ctrl(mem);
    Rng rng(4);
    stageOperands(mem, 0, 3, 8, rng);
    CpimInstruction inst;
    inst.op = CpimOp::Add;
    inst.src = 0;
    inst.dst = ctrl.operandAddress(0, 4);
    inst.operands = 3;
    inst.blockSize = 8;
    for (int i = 0; i < 50; ++i)
        (void)ctrl.executeGuarded(inst);
    EXPECT_EQ(mem.ledger().byCategory().count("retry_backoff"), 0u);
}

TEST(FaultPipeline, ScrubSweepRealignsEveryTouchedDbc)
{
    DwmMainMemory mem(smallConfig(GuardPolicy::PeriodicScrub));
    BitVector data(64);
    data.set(3, true);
    std::uint64_t other = rowAddr(mem, 1, 0);
    mem.writeLine(0, data);
    mem.writeLine(other, data);
    mem.injectShiftFaultAt(0, true);
    mem.injectShiftFaultAt(other, false);
    ScrubReport sweep = mem.scrubAll();
    EXPECT_EQ(sweep.scanned, 2u);
    EXPECT_EQ(sweep.corrected, 2u);
    EXPECT_EQ(sweep.uncorrectable, 0u);
    EXPECT_EQ(mem.scrubAll().corrected, 0u); // second sweep is clean
}

TEST(FaultPipeline, CampaignIsBitIdenticalForFixedSeed)
{
    ControllerCampaignConfig cfg;
    cfg.trials = 200;
    cfg.shiftFaultRate = 2e-3;
    cfg.seed = 5;
    auto a = FaultCampaign::controllerCampaign(cfg);
    auto b = FaultCampaign::controllerCampaign(cfg);
    EXPECT_EQ(a.clean, b.clean);
    EXPECT_EQ(a.corrected, b.corrected);
    EXPECT_EQ(a.due, b.due);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.injectedFaults, b.injectedFaults);
    EXPECT_EQ(a.guardChecks, b.guardChecks);
    EXPECT_EQ(a.correctivePulses, b.correctivePulses);
    EXPECT_EQ(a.retiredDbcs, b.retiredDbcs);
    EXPECT_EQ(a.residualAfterScrub, b.residualAfterScrub);
}

TEST(FaultPipeline, GuardedCampaignMeetsCoverageBar)
{
    // The acceptance experiment: at p_shift = 1e-3 the per-access
    // guarded pipeline corrects at least 99 % of injected
    // misalignments end to end; unguarded, faults surface as SDC.
    ControllerCampaignConfig guarded;
    guarded.trials = 1000;
    guarded.shiftFaultRate = 1e-3;
    guarded.policy = GuardPolicy::PerAccess;
    auto g = FaultCampaign::controllerCampaign(guarded);
    EXPECT_GT(g.injectedFaults, 0u);
    EXPECT_GE(g.coverage(), 0.99);
    EXPECT_EQ(g.sdc, 0u);
    EXPECT_EQ(g.residualAfterScrub, 0u);

    ControllerCampaignConfig unguarded = guarded;
    unguarded.policy = GuardPolicy::None;
    auto u = FaultCampaign::controllerCampaign(unguarded);
    EXPECT_GT(u.sdc, 0u);
    EXPECT_EQ(u.corrected, 0u);
}

} // namespace
} // namespace coruscant
