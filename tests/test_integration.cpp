/**
 * @file
 * Cross-module integration and property tests: controller fuzzing,
 * add/reduce algebraic equivalence, interleave policies, and memory
 * stress.
 */

#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

/** Property: reduce followed by add equals direct multi-operand add. */
TEST(Integration, ReduceThenAddEqualsDirectAdd)
{
    DeviceParams p = DeviceParams::withTrd(7);
    p.wiresPerDbc = 64;
    CoruscantUnit unit(p);
    Rng rng(8);
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<BitVector> rows;
        for (int i = 0; i < 7; ++i) {
            BitVector row(64);
            for (std::size_t w = 0; w < 64; ++w)
                row.set(w, rng.nextBool());
            rows.push_back(std::move(row));
        }
        // Path A: 7->3 reduction then 3-operand add.
        auto red = unit.reduce(rows, 16);
        auto via_reduce = unit.add(
            {red.sum, red.carry, red.superCarry}, 16);
        // Path B: two grouped adds (5 + running total + 2).
        auto first = unit.add({rows[0], rows[1], rows[2], rows[3],
                               rows[4]},
                              16);
        auto direct = unit.add({first, rows[5], rows[6]}, 16);
        EXPECT_EQ(via_reduce, direct) << "iter " << iter;
    }
}

/** Fuzz: random valid cpim programs vs. a software model. */
TEST(Integration, ControllerFuzzAgainstSoftwareModel)
{
    DwmMainMemory mem;
    MemoryController ctrl(mem);
    Rng rng(4242);

    for (int iter = 0; iter < 40; ++iter) {
        // Random operation and operands.
        int which = static_cast<int>(rng.nextBelow(4));
        std::size_t m;
        CpimInstruction inst;
        inst.blockSize = 8;
        switch (which) {
          case 0:
            inst.op = CpimOp::And;
            m = 2 + rng.nextBelow(6);
            break;
          case 1:
            inst.op = CpimOp::Xor;
            m = 2 + rng.nextBelow(6);
            break;
          case 2:
            inst.op = CpimOp::Add;
            m = 2 + rng.nextBelow(4);
            break;
          default:
            inst.op = CpimOp::Max;
            m = 2 + rng.nextBelow(6);
            break;
        }
        inst.operands = static_cast<std::uint8_t>(m);
        inst.src = (rng.nextBelow(1 << 12)) * 64;
        inst.dst = (1ull << 25) + iter * 64;

        std::vector<BitVector> ops;
        for (std::size_t i = 0; i < m; ++i) {
            BitVector row(512);
            for (std::size_t w = 0; w < 512; ++w)
                row.set(w, rng.nextBool());
            mem.writeLine(ctrl.operandAddress(inst.src, i), row);
            ops.push_back(std::move(row));
        }

        auto result = ctrl.execute(inst);

        // Software model.
        BitVector expect(512);
        if (inst.op == CpimOp::And || inst.op == CpimOp::Xor) {
            expect = ops[0];
            for (std::size_t i = 1; i < m; ++i) {
                if (inst.op == CpimOp::And)
                    expect &= ops[i];
                else
                    expect ^= ops[i];
            }
        } else if (inst.op == CpimOp::Add) {
            for (std::size_t l = 0; l < 64; ++l) {
                std::uint64_t s = 0;
                for (std::size_t i = 0; i < m; ++i)
                    s += ops[i].sliceUint64(l * 8, 8);
                expect.insertUint64(l * 8, 8, s & 0xFF);
            }
        } else {
            for (std::size_t l = 0; l < 64; ++l) {
                std::uint64_t mx = 0;
                for (std::size_t i = 0; i < m; ++i)
                    mx = std::max(mx, ops[i].sliceUint64(l * 8, 8));
                expect.insertUint64(l * 8, 8, mx);
            }
        }
        ASSERT_EQ(result, expect)
            << "iter " << iter << " op " << cpimOpName(inst.op)
            << " m=" << m;
        ASSERT_EQ(mem.readLine(inst.dst), expect);
    }
}

TEST(Integration, RowFirstInterleaveRoundTrips)
{
    MemoryConfig cfg;
    cfg.interleave = Interleave::RowFirst;
    AddressMap amap(cfg);
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t addr =
            (rng.next() % cfg.capacityBytes()) & ~63ull;
        EXPECT_EQ(amap.encode(amap.decode(addr)), addr);
    }
    // Consecutive lines walk rows of one DBC.
    auto a = amap.decode(0);
    auto b = amap.decode(64);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.dbc, b.dbc);
    EXPECT_EQ(b.row, a.row + 1);
}

TEST(Integration, RowFirstReducesSequentialShifts)
{
    auto shifts = [](Interleave il) {
        MemoryConfig cfg;
        cfg.interleave = il;
        DwmMainMemory mem(cfg);
        for (std::uint64_t i = 0; i < 2000; ++i)
            mem.readLine(i * 64);
        return mem.totalShifts();
    };
    EXPECT_LT(shifts(Interleave::RowFirst),
              shifts(Interleave::BankFirst) / 2);
}

TEST(Integration, MemoryStressManyDbcs)
{
    DwmMainMemory mem;
    Rng rng(6);
    std::vector<std::pair<std::uint64_t, BitVector>> writes;
    for (int i = 0; i < 300; ++i) {
        std::uint64_t addr =
            (rng.next() % mem.config().capacityBytes()) & ~63ull;
        BitVector row(512);
        for (int b = 0; b < 16; ++b)
            row.set(rng.nextBelow(512), true);
        mem.writeLine(addr, row);
        writes.emplace_back(addr, std::move(row));
    }
    // Later writes to the same address win; verify final state.
    for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
        bool overwritten = false;
        for (auto jt = writes.rbegin(); jt != it; ++jt)
            if (jt->first == it->first)
                overwritten = true;
        if (!overwritten) {
            EXPECT_EQ(mem.readLine(it->first), it->second);
        }
    }
    EXPECT_LE(mem.touchedDbcs(), 300u);
}

TEST(Integration, BulkTwStagingSavesCycles)
{
    DeviceParams p = DeviceParams::withTrd(7);
    p.wiresPerDbc = 64;
    CoruscantUnit unit(p);
    std::vector<BitVector> ops(4, BitVector(64, true));
    unit.resetCosts();
    auto plain = unit.bulkBitwise(BulkOp::And, ops);
    auto plain_cycles = unit.ledger().cycles();
    unit.resetCosts();
    auto tw = unit.bulkBitwise(BulkOp::And, ops, 0, false, true);
    auto tw_cycles = unit.ledger().cycles();
    EXPECT_EQ(plain, tw);
    EXPECT_EQ(tw_cycles + ops.size(), plain_cycles);
}

} // namespace
} // namespace coruscant
