/**
 * @file
 * Address mapping, DWM main memory, and queue-model tests.
 */

#include <gtest/gtest.h>

#include "arch/dwm_memory.hpp"
#include "controller/queue_model.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

TEST(AddressMap, PaperCapacity)
{
    MemoryConfig cfg;
    EXPECT_EQ(cfg.capacityBytes(), 1ull << 30); // 1 GiB
    EXPECT_EQ(cfg.totalPimDbcs(), 32768u);
    EXPECT_EQ(cfg.totalDbcs(), 524288u);
    EXPECT_EQ(cfg.rowBytes(), 64u); // one cache line per DBC row
}

TEST(AddressMap, EncodeDecodeRoundTrip)
{
    MemoryConfig cfg;
    AddressMap amap(cfg);
    Rng rng(31);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t addr =
            (rng.next() % cfg.capacityBytes()) & ~63ull;
        LineAddress loc = amap.decode(addr);
        EXPECT_EQ(amap.encode(loc), addr);
        EXPECT_LT(loc.bank, cfg.banks);
        EXPECT_LT(loc.subarray, cfg.subarraysPerBank);
        EXPECT_LT(loc.tile, cfg.tilesPerSubarray);
        EXPECT_LT(loc.dbc, cfg.dbcsPerTile);
        EXPECT_LT(loc.row, cfg.device.domainsPerWire);
    }
}

TEST(AddressMap, ConsecutiveLinesInterleaveBanks)
{
    MemoryConfig cfg;
    AddressMap amap(cfg);
    auto a0 = amap.decode(0);
    auto a1 = amap.decode(64);
    EXPECT_EQ(a1.bank, (a0.bank + 1) % cfg.banks);
}

TEST(AddressMap, RejectsOutOfRange)
{
    MemoryConfig cfg;
    AddressMap amap(cfg);
    EXPECT_THROW(amap.decode(cfg.capacityBytes()), FatalError);
}

TEST(DwmMemory, ReadBackWrittenLine)
{
    DwmMainMemory mem;
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        std::uint64_t addr =
            (rng.next() % mem.config().capacityBytes()) & ~63ull;
        BitVector line(512);
        for (std::size_t b = 0; b < 512; ++b)
            line.set(b, rng.nextBool());
        mem.writeLine(addr, line);
        EXPECT_EQ(mem.readLine(addr), line) << "addr " << addr;
    }
}

TEST(DwmMemory, SparseFootprint)
{
    DwmMainMemory mem;
    mem.writeLine(0, BitVector(512, true));
    mem.writeLine(64, BitVector(512, true));
    EXPECT_EQ(mem.touchedDbcs(), 2u); // different banks
}

TEST(DwmMemory, AccessChargesShiftAwareTiming)
{
    DwmMainMemory mem;
    auto &cfg = mem.config();
    // First access to row 0 must shift from the initial port position.
    mem.readLine(0);
    auto first = mem.ledger().cycles();
    EXPECT_GT(mem.totalShifts(), 0u);
    // Re-reading the same row needs no further shifting: cheaper.
    mem.resetCosts();
    mem.readLine(0);
    EXPECT_LT(mem.ledger().cycles(), first);
    EXPECT_EQ(mem.ledger().cycles(),
              cfg.dwmTiming.readCycles(0));
}

TEST(DwmMemory, CopyLineMovesData)
{
    DwmMainMemory mem;
    BitVector line(512);
    line.set(13, true);
    mem.writeLine(128, line);
    mem.copyLine(128, 1 << 20);
    EXPECT_EQ(mem.readLine(1 << 20), line);
}

TEST(DwmMemory, PimUnitIsPerSubarrayAndPersistent)
{
    DwmMainMemory mem;
    auto &u1 = mem.pimUnit(0, 0);
    auto &u2 = mem.pimUnit(0, 0);
    EXPECT_EQ(&u1, &u2);
    auto &u3 = mem.pimUnit(1, 0);
    EXPECT_NE(&u1, &u3);
    EXPECT_THROW(mem.pimUnit(32, 0), FatalError);
}

TEST(QueueModel, SingleItem)
{
    CommandQueueModel q(4);
    auto r = q.run({{0, 100, 2}});
    EXPECT_EQ(r.makespanCycles, 102u);
}

TEST(QueueModel, ParallelServersOverlap)
{
    CommandQueueModel q(4);
    std::vector<QueueItem> items;
    for (std::size_t i = 0; i < 4; ++i)
        items.push_back({i, 100, 1});
    auto r = q.run(items);
    // Issue 4 commands, all four run concurrently.
    EXPECT_EQ(r.makespanCycles, 104u);
}

TEST(QueueModel, SameServerSerializes)
{
    CommandQueueModel q(4);
    std::vector<QueueItem> items(4, QueueItem{0, 100, 1});
    auto r = q.run(items);
    EXPECT_EQ(r.makespanCycles, 401u);
}

TEST(QueueModel, IssueBoundWhenCommandsDominate)
{
    CommandQueueModel q(1000);
    std::vector<QueueItem> items;
    for (std::size_t i = 0; i < 1000; ++i)
        items.push_back({i, 5, 4});
    auto r = q.run(items);
    EXPECT_EQ(r.makespanCycles, 4005u);
    EXPECT_GT(r.issueBoundFraction, 0.9);
}

TEST(QueueModel, UniformMatchesExplicitDispatch)
{
    for (auto [count, busy, cmds] :
         std::vector<std::tuple<std::uint64_t, std::uint64_t,
                                std::uint64_t>>{
             {100, 50, 2}, {7, 1000, 1}, {5000, 3, 4}, {64, 64, 8}}) {
        CommandQueueModel explicit_q(64);
        std::vector<QueueItem> items;
        for (std::uint64_t i = 0; i < count; ++i)
            items.push_back({static_cast<std::size_t>(i % 64), busy,
                             cmds});
        auto a = explicit_q.run(items);
        CommandQueueModel uniform_q(64);
        auto b = uniform_q.runUniform(count, busy, cmds);
        // The closed form is an upper-bound approximation; it must be
        // within a few percent of the exact schedule.
        EXPECT_GE(b.makespanCycles * 21 / 20 + 1, a.makespanCycles);
        EXPECT_LE(b.makespanCycles, a.makespanCycles * 21 / 20 + 1);
    }
}

} // namespace
} // namespace coruscant
