/**
 * @file
 * Unit tests for the single-nanowire device model.
 */

#include <gtest/gtest.h>

#include "dwm/nanowire.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
smallParams(std::size_t trd = 7)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = 1;
    return p;
}

TEST(Nanowire, InitialAlignment)
{
    Nanowire w(smallParams());
    EXPECT_EQ(w.shiftOffset(), 0);
    EXPECT_EQ(w.rowAtPort(Port::Left), w.params().leftPortRow());
    EXPECT_EQ(w.rowAtPort(Port::Right), w.params().rightPortRow());
}

TEST(Nanowire, PokePeekRoundTrip)
{
    Nanowire w(smallParams());
    for (std::size_t r = 0; r < w.params().domainsPerWire; ++r)
        w.pokeRow(r, r % 3 == 0);
    for (std::size_t r = 0; r < w.params().domainsPerWire; ++r)
        EXPECT_EQ(w.peekRow(r), r % 3 == 0) << "row " << r;
}

TEST(Nanowire, ShiftPreservesData)
{
    Nanowire w(smallParams());
    Rng rng(5);
    std::vector<bool> data;
    for (std::size_t r = 0; r < w.params().domainsPerWire; ++r) {
        bool b = rng.nextBool();
        data.push_back(b);
        w.pokeRow(r, b);
    }
    // Shift to both extremes and back; data rows must be intact.
    while (w.canShiftLeft())
        w.shiftLeft();
    while (w.canShiftRight())
        w.shiftRight();
    while (w.shiftOffset() != 0)
        w.shiftLeft();
    for (std::size_t r = 0; r < w.params().domainsPerWire; ++r)
        EXPECT_EQ(w.peekRow(r), data[r]) << "row " << r;
}

TEST(Nanowire, ShiftBoundsEnforced)
{
    Nanowire w(smallParams());
    while (w.canShiftLeft())
        w.shiftLeft();
    EXPECT_THROW(w.shiftLeft(), PanicError);
    while (w.canShiftRight())
        w.shiftRight();
    EXPECT_THROW(w.shiftRight(), PanicError);
}

TEST(Nanowire, AlignmentReadsTheRightRow)
{
    Nanowire w(smallParams());
    for (std::size_t r = 0; r < w.params().domainsPerWire; ++r)
        w.pokeRow(r, r % 2 == 0);
    for (std::size_t r = 0; r < w.params().domainsPerWire; ++r) {
        Port p = w.canAlign(r, Port::Left) ? Port::Left : Port::Right;
        ASSERT_TRUE(w.canAlign(r, p)) << "row " << r;
        w.alignRowToPort(r, p);
        EXPECT_EQ(w.readAtPort(p), r % 2 == 0) << "row " << r;
    }
}

TEST(Nanowire, EveryRowReachesSomePort)
{
    for (std::size_t trd : {1u, 3u, 5u, 7u}) {
        Nanowire w(smallParams(trd));
        for (std::size_t r = 0; r < w.params().domainsPerWire; ++r) {
            EXPECT_TRUE(w.canAlign(r, Port::Left) ||
                        w.canAlign(r, Port::Right))
                << "trd " << trd << " row " << r;
        }
    }
}

TEST(Nanowire, WriteAtPortSticks)
{
    Nanowire w(smallParams());
    w.writeAtPort(Port::Left, true);
    EXPECT_TRUE(w.readAtPort(Port::Left));
    EXPECT_TRUE(w.peekRow(w.rowAtPort(Port::Left)));
    w.writeAtPort(Port::Right, true);
    EXPECT_TRUE(w.peekRow(w.rowAtPort(Port::Right)));
}

TEST(Nanowire, TransverseReadCountsWindowOnes)
{
    Nanowire w(smallParams(7));
    std::size_t lo = w.rowAtPort(Port::Left);
    // Put ones everywhere, zeros in the window, then add back k ones.
    for (std::size_t r = 0; r < w.params().domainsPerWire; ++r)
        w.pokeRow(r, true);
    for (std::size_t r = lo; r < lo + 7; ++r)
        w.pokeRow(r, false);
    EXPECT_EQ(w.transverseRead(), 0u);
    for (std::size_t k = 0; k < 7; ++k) {
        w.pokeRow(lo + k, true);
        EXPECT_EQ(w.transverseRead(), k + 1);
    }
}

TEST(Nanowire, TransverseReadTracksAlignment)
{
    Nanowire w(smallParams(3));
    // Rows 0..31 hold 1 at even rows.
    for (std::size_t r = 0; r < 32; ++r)
        w.pokeRow(r, r % 2 == 0);
    // Window over [10, 12]: rows 10 and 12 are even -> 2 ones.
    w.alignWindowStart(10);
    EXPECT_EQ(w.transverseRead(), 2u);
    w.alignWindowStart(11);
    EXPECT_EQ(w.transverseRead(), 1u);
}

TEST(Nanowire, TransverseWriteSegmentShift)
{
    Nanowire w(smallParams(4));
    std::size_t lo = w.rowAtPort(Port::Left);
    // Window = [a, b, c, d]; TW(x) should give [x, a, b, c], d lost.
    w.pokeRow(lo + 0, true);  // a = 1
    w.pokeRow(lo + 1, false); // b = 0
    w.pokeRow(lo + 2, true);  // c = 1
    w.pokeRow(lo + 3, true);  // d = 1
    bool outside_before = w.peekRow(lo + 4);
    w.transverseWrite(false);
    EXPECT_FALSE(w.peekRow(lo + 0)); // x
    EXPECT_TRUE(w.peekRow(lo + 1));  // a
    EXPECT_FALSE(w.peekRow(lo + 2)); // b
    EXPECT_TRUE(w.peekRow(lo + 3));  // c
    EXPECT_EQ(w.peekRow(lo + 4), outside_before); // untouched
}

TEST(Nanowire, TransverseWriteRotationRestoresOrder)
{
    // TRD transverse writes, each re-injecting the bit read at the
    // right port, implement a full rotation: state must be restored.
    Nanowire w(smallParams(7));
    Rng rng(9);
    std::size_t lo = w.rowAtPort(Port::Left);
    std::vector<bool> window;
    for (std::size_t i = 0; i < 7; ++i) {
        bool b = rng.nextBool();
        window.push_back(b);
        w.pokeRow(lo + i, b);
    }
    for (std::size_t i = 0; i < 7; ++i) {
        bool out = w.readAtPort(Port::Right);
        w.transverseWrite(out);
    }
    for (std::size_t i = 0; i < 7; ++i)
        EXPECT_EQ(w.peekRow(lo + i), window[i]) << "slot " << i;
}

TEST(Nanowire, FaultModelPerturbsByOneLevel)
{
    Nanowire w(smallParams(7));
    std::size_t lo = w.rowAtPort(Port::Left);
    for (std::size_t i = 0; i < 7; ++i)
        w.pokeRow(lo + i, i < 4);
    TrFaultModel always(1.0, 123);
    for (int i = 0; i < 50; ++i) {
        std::size_t c = w.transverseRead(&always);
        EXPECT_TRUE(c == 3 || c == 5) << c;
    }
    EXPECT_EQ(always.injectedFaults(), 50u);
}

TEST(Nanowire, FaultAtLimitsStaysInRange)
{
    Nanowire w(smallParams(7));
    TrFaultModel always(1.0, 7);
    // All-zero window can only err upward.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(w.transverseRead(&always), 1u);
    std::size_t lo = w.rowAtPort(Port::Left);
    for (std::size_t i = 0; i < 7; ++i)
        w.pokeRow(lo + i, true);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(w.transverseRead(&always), 6u);
}

} // namespace
} // namespace coruscant
