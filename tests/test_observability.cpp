/**
 * @file
 * Observability layer: MetricsRegistry algebra, TraceSink recording,
 * and the wiring through the device, unit, memory, controller, and
 * service layers — including the thread-count invariance the sharded
 * engine guarantees.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/dwm_memory.hpp"
#include "controller/event_sim.hpp"
#include "controller/memory_controller.hpp"
#include "core/coruscant_unit.hpp"
#include "dwm/dbc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "reliability/fault_campaign.hpp"
#include "service/service_engine.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

using obs::ComponentMetrics;
using obs::Counter;
using obs::MetricsRegistry;
using obs::TraceSink;

// ---------------------------------------------------------------- core

TEST(Metrics, ComponentCountersAndEnergy)
{
    MetricsRegistry reg;
    ComponentMetrics &c = reg.component("a/b");
    c.add(Counter::Shifts, 3);
    c.add(Counter::TrPulses);
    c.addEnergy(1.5);
    EXPECT_EQ(c.get(Counter::Shifts), 3u);
    EXPECT_EQ(c.get(Counter::TrPulses), 1u);
    EXPECT_EQ(c.get(Counter::Writes), 0u);
    EXPECT_DOUBLE_EQ(c.energyPj(), 1.5);
    // component() is find-or-create with stable identity.
    EXPECT_EQ(&reg.component("a/b"), &c);
    EXPECT_EQ(reg.find("a/b"), &c);
    EXPECT_EQ(reg.find("missing"), nullptr);
    EXPECT_EQ(reg.total(Counter::Shifts), 3u);
}

/** Random registry whose paths overlap across instances. */
MetricsRegistry
randomRegistry(std::uint64_t seed)
{
    Rng rng(seed);
    MetricsRegistry reg;
    const char *paths[] = {"mem", "mem/dbc", "guard", "chan0",
                           "chan1"};
    for (const char *p : paths) {
        ComponentMetrics &c = reg.component(p);
        for (std::size_t k = 0; k < obs::kCounterKinds; ++k)
            c.add(static_cast<Counter>(k), rng.nextBelow(100));
        c.addEnergy(static_cast<double>(rng.nextBelow(1000)));
    }
    return reg;
}

TEST(Metrics, MergeIsAssociativeAndOrderInsensitive)
{
    MetricsRegistry a = randomRegistry(1), b = randomRegistry(2),
                    c = randomRegistry(3);

    MetricsRegistry left; // (a + b) + c
    left.merge(a);
    left.merge(b);
    left.merge(c);
    MetricsRegistry right; // a + (b + c)
    MetricsRegistry bc;
    bc.merge(b);
    bc.merge(c);
    right.merge(a);
    right.merge(bc);
    MetricsRegistry rev; // c + b + a
    rev.merge(c);
    rev.merge(b);
    rev.merge(a);

    EXPECT_EQ(left.toJson(), right.toJson());
    EXPECT_EQ(left.toJson(), rev.toJson());
    EXPECT_EQ(left.total(Counter::Shifts),
              a.total(Counter::Shifts) + b.total(Counter::Shifts) +
                  c.total(Counter::Shifts));
}

TEST(Metrics, MergePrefixedKeepsShardsApart)
{
    MetricsRegistry shard = randomRegistry(4), out;
    out.mergePrefixed(shard, "rate100/batched");
    EXPECT_EQ(out.find("mem"), nullptr);
    ASSERT_NE(out.find("rate100/batched/mem"), nullptr);
    EXPECT_EQ(out.total(Counter::Shifts),
              shard.total(Counter::Shifts));
}

TEST(Metrics, DeltaReportsOnlyNewActivity)
{
    MetricsRegistry reg;
    reg.component("x").add(Counter::Reads, 5);
    MetricsRegistry snap = reg.snapshot();
    reg.component("x").add(Counter::Reads, 2);
    reg.component("y").add(Counter::Writes, 1);
    MetricsRegistry d = reg.delta(snap);
    ASSERT_NE(d.find("x"), nullptr);
    EXPECT_EQ(d.find("x")->get(Counter::Reads), 2u);
    ASSERT_NE(d.find("y"), nullptr);
    EXPECT_EQ(d.find("y")->get(Counter::Writes), 1u);
}

TEST(Trace, DisabledSinkRecordsNothing)
{
    TraceSink t;
    t.span("op", "cat", 0, 10, 0, 0);
    t.counter("depth", 5, 0, 3.0);
    t.instant("tick", "cat", 7, 0, 0);
    t.processName(0, "p");
    EXPECT_FALSE(t.on());
    EXPECT_EQ(t.events(), 0u);
}

TEST(Trace, EnabledSinkBuffersAndSerializes)
{
    TraceSink t;
    t.enable();
    t.processName(1, "channel 1");
    t.span("gang", "dispatch", 100, 40, 1, 3, "members", 5.0);
    t.counter("queue_depth", 100, 1, 2.0);
    ASSERT_EQ(t.events(), 3u);
    std::string json = t.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"gang\""), std::string::npos);
    EXPECT_NE(json.find("\"members\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 40"), std::string::npos);
}

TEST(Trace, AppendConcatenatesInCallOrder)
{
    TraceSink a, b, merged;
    a.enable();
    b.enable();
    a.span("first", "c", 0, 1, 0, 0);
    b.span("second", "c", 0, 1, 1, 0);
    merged.append(a);
    merged.append(b);
    EXPECT_TRUE(merged.on()); // enabled-ness propagates
    ASSERT_EQ(merged.events(), 2u);
    EXPECT_EQ(merged.buffered()[0].name, "first");
    EXPECT_EQ(merged.buffered()[1].name, "second");
}

// ------------------------------------------------------------- wiring

TEST(ObsWiring, DbcCountsDevicePrimitives)
{
    DeviceParams p = DeviceParams::withTrd(7);
    p.wiresPerDbc = 32;
    DomainBlockCluster dbc(p);
    ComponentMetrics m;
    dbc.attachMetrics(&m);
    dbc.writeRowAtPort(Port::Left, BitVector(32, true));
    dbc.shiftRight();
    dbc.shiftRight();
    dbc.readRowAtPort(Port::Left);
    dbc.transverseReadAll();
    EXPECT_EQ(m.get(Counter::Writes), 1u);
    EXPECT_EQ(m.get(Counter::Shifts), 2u);
    EXPECT_EQ(m.get(Counter::Reads), 1u);
    EXPECT_EQ(m.get(Counter::TrPulses), 1u);
}

TEST(ObsWiring, UnitMetricsMirrorTheLedgerExactly)
{
    // Every charge helper mirrors its energy, so an instrumented unit's
    // component energy equals the CostLedger total to the last bit.
    DeviceParams p = DeviceParams::withTrd(7);
    p.wiresPerDbc = 64;
    CoruscantUnit unit(p);
    ComponentMetrics m;
    unit.attachMetrics(&m);
    std::vector<BitVector> ops(3, BitVector(64, true));
    unit.add(ops, 8);
    unit.bulkBitwise(BulkOp::Xor, ops);
    BitVector a = BitVector::fromUint64(64, 0x1234);
    unit.multiply(a, a, 8);
    EXPECT_GT(m.get(Counter::TrPulses), 0u);
    EXPECT_GT(m.get(Counter::Writes), 0u);
    EXPECT_DOUBLE_EQ(m.energyPj(), unit.ledger().energyPj());
}

TEST(ObsWiring, UnitTraceEmitsNamedSpans)
{
    DeviceParams p = DeviceParams::withTrd(7);
    p.wiresPerDbc = 64;
    CoruscantUnit unit(p);
    TraceSink trace;
    trace.enable();
    unit.attachTrace(&trace, 2, 5);
    BitVector a = BitVector::fromUint64(64, 77);
    unit.multiply(a, a, 8);
    ASSERT_GT(trace.events(), 0u);
    bool saw_multiply = false;
    for (const auto &e : trace.buffered()) {
        EXPECT_EQ(e.pid, 2u);
        EXPECT_EQ(e.tid, 5u);
        if (e.name == "multiply") {
            saw_multiply = true;
            EXPECT_EQ(e.ts, 0u); // began at cycle zero of this unit
            EXPECT_EQ(e.ts + e.dur, unit.ledger().cycles());
        }
    }
    EXPECT_TRUE(saw_multiply);
}

TEST(ObsWiring, MemoryAttachObsSeparatesAbstractionLevels)
{
    MemoryConfig mcfg;
    mcfg.banks = 1;
    mcfg.subarraysPerBank = 1;
    mcfg.tilesPerSubarray = 1;
    mcfg.dbcsPerTile = 2;
    DwmMainMemory mem(mcfg);
    MetricsRegistry reg;
    mem.attachObs(reg);
    mem.writeLine(0, BitVector(512, true));
    BitVector back = mem.readLine(0);
    EXPECT_TRUE(back.get(0));
    const ComponentMetrics *m = reg.find("memory");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->get(Counter::Reads), 1u);
    EXPECT_EQ(m->get(Counter::Writes), 1u);
    // The functional-DBC view counts the same traffic at its own level.
    const ComponentMetrics *dbc = reg.find("memory/dbc");
    ASSERT_NE(dbc, nullptr);
    EXPECT_EQ(dbc->get(Counter::Reads), 1u);
    EXPECT_EQ(dbc->get(Counter::Writes), 1u);
}

TEST(ObsWiring, ControllerCountsRequestsAndEmitsSpans)
{
    MemoryConfig mcfg;
    mcfg.banks = 1;
    mcfg.subarraysPerBank = 1;
    mcfg.tilesPerSubarray = 1;
    mcfg.dbcsPerTile = 2;
    DwmMainMemory mem(mcfg);
    MemoryController ctrl(mem);
    MetricsRegistry reg;
    TraceSink trace;
    trace.enable();
    mem.attachObs(reg, &trace);
    ctrl.attachObs(&reg.component("controller"), &trace);

    LineAddress loc{};
    for (std::size_t i = 0; i < 2; ++i) {
        loc.row = i;
        mem.writeLine(mem.addressMap().encode(loc),
                      BitVector(512, true));
    }
    CpimInstruction inst;
    inst.op = CpimOp::Add;
    loc.row = 0;
    inst.src = mem.addressMap().encode(loc);
    loc.row = 3;
    inst.dst = mem.addressMap().encode(loc);
    inst.operands = 2;
    inst.blockSize = 8;
    ctrl.execute(inst);

    EXPECT_EQ(reg.component("controller").get(Counter::Requests), 1u);
    bool saw_add_span = false;
    for (const auto &e : trace.buffered())
        if (e.phase == 'X' && e.name == "add" && e.cat == "cpim")
            saw_add_span = true;
    EXPECT_TRUE(saw_add_span);
    // PIM activity landed in its own component.
    const ComponentMetrics *pim = reg.find("memory/pim");
    ASSERT_NE(pim, nullptr);
    EXPECT_GT(pim->get(Counter::TrPulses), 0u);
}

TEST(ObsWiring, EventSimEmitsRequestSpansAndQueueDepth)
{
    std::vector<SimRequest> reqs;
    for (std::uint64_t i = 0; i < 6; ++i)
        reqs.push_back({i, i % 2, 1, 20});
    EventSimulator sim(2);
    TraceSink trace;
    trace.enable();
    SimStats stats =
        sim.run(reqs, SchedulePolicy::BankReorder, &trace, 9);
    EXPECT_EQ(stats.requests, 6u);
    std::size_t spans = 0, counters = 0;
    for (const auto &e : trace.buffered()) {
        if (e.phase == 'X' && e.name == "request") {
            ++spans;
            EXPECT_EQ(e.pid, 9u);
        }
        if (e.phase == 'C' && e.name == "queue_depth")
            ++counters;
    }
    EXPECT_EQ(spans, 6u);
    EXPECT_EQ(counters, 6u);
}

TEST(ObsWiring, CampaignExportsComponentActivity)
{
    ControllerCampaignConfig cfg;
    cfg.trials = 20;
    cfg.shiftFaultRate = 2e-3;
    cfg.policy = GuardPolicy::PerCpim;
    MetricsRegistry reg;
    TraceSink trace;
    trace.enable();
    cfg.metrics = &reg;
    cfg.trace = &trace;
    auto res = FaultCampaign::controllerCampaign(cfg);
    EXPECT_EQ(res.trials, 20u);
    ASSERT_NE(reg.find("controller"), nullptr);
    EXPECT_EQ(reg.find("controller")->get(Counter::Requests), 20u);
    ASSERT_NE(reg.find("memory"), nullptr);
    EXPECT_GT(reg.find("memory")->get(Counter::Writes), 0u);
    EXPECT_GT(trace.events(), 0u);
}

// ------------------------------------------------------ service layer

ServiceConfig
smallServeConfig()
{
    ServiceConfig cfg;
    cfg.channels = 4;
    cfg.banksPerChannel = 4;
    cfg.durationCycles = 20000;
    cfg.ratePerKcycle = 40.0;
    cfg.seed = 11;
    cfg.collectMetrics = true;
    cfg.collectTrace = true;
    return cfg;
}

TEST(ObsService, MetricsAndTraceAreThreadCountInvariant)
{
    ServiceConfig cfg = smallServeConfig();
    cfg.threads = 1;
    ServiceStats one = runService(cfg);
    cfg.threads = 4;
    ServiceStats four = runService(cfg);
    EXPECT_GT(one.completed, 0u);
    EXPECT_EQ(one.metrics.toJson(), four.metrics.toJson());
    EXPECT_EQ(one.trace.toJson(), four.trace.toJson());
}

TEST(ObsService, RequestCounterMatchesCompletions)
{
    ServiceConfig cfg = smallServeConfig();
    cfg.collectTrace = false;
    ServiceStats stats = runService(cfg);
    EXPECT_EQ(stats.metrics.total(Counter::Requests),
              stats.completed);
    // Energy attribution is per channel and sums to the engine total.
    EXPECT_NEAR(stats.metrics.totalEnergyPj(), stats.energyPj,
                1e-6 * stats.energyPj);
    // Per-channel components exist for every channel.
    for (std::uint32_t ch = 0; ch < cfg.channels; ++ch)
        EXPECT_NE(stats.metrics.find("channel" + std::to_string(ch)),
                  nullptr)
            << ch;
}

TEST(ObsService, DisabledCollectionKeepsRegistryEmpty)
{
    ServiceConfig cfg = smallServeConfig();
    cfg.collectMetrics = false;
    cfg.collectTrace = false;
    ServiceStats stats = runService(cfg);
    EXPECT_TRUE(stats.metrics.empty());
    EXPECT_EQ(stats.trace.events(), 0u);
}

} // namespace
} // namespace coruscant
