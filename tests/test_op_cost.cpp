/**
 * @file
 * CoruscantCostModel: the single source of truth for operation costs
 * used by every system-level model.
 */

#include <gtest/gtest.h>

#include "core/op_cost.hpp"

namespace coruscant {
namespace {

TEST(OpCost, PinnedTableIIIValues)
{
    CoruscantCostModel c7(7), c3(3);
    EXPECT_EQ(c7.add(5, 8).cycles, 26u);
    EXPECT_EQ(c7.add(2, 8).cycles, 26u);
    EXPECT_EQ(c3.add(2, 8).cycles, 19u);
    EXPECT_EQ(c7.multiply(8).cycles, 64u);
    EXPECT_NEAR(c7.add(5, 8).energyPj, 22.14, 0.01);
    EXPECT_NEAR(c3.add(2, 8).energyPj, 10.15, 0.01);
}

TEST(OpCost, ReductionIsFourCycles)
{
    EXPECT_EQ(CoruscantCostModel(7).reduce().cycles, 4u);
    EXPECT_EQ(CoruscantCostModel(3).reduce().cycles, 3u);
}

TEST(OpCost, AddScalesLinearlyInBlockSize)
{
    CoruscantCostModel c7(7);
    auto c8 = c7.add(5, 8).cycles;
    auto c16 = c7.add(5, 16).cycles;
    auto c32 = c7.add(5, 32).cycles;
    // Setup constant (10), loop 2 cycles/bit.
    EXPECT_EQ(c16 - c8, 16u);
    EXPECT_EQ(c32 - c16, 32u);
}

TEST(OpCost, MultiplyScalesLinearlyAtTrd7)
{
    // The O(n) claim at the cost-model level: cycles/bit bounded.
    CoruscantCostModel c7(7);
    double per8 = static_cast<double>(c7.multiply(8).cycles) / 8;
    double per32 = static_cast<double>(c7.multiply(32).cycles) / 32;
    EXPECT_LT(per32, per8 * 1.6);
}

TEST(OpCost, BulkConstantInOperands)
{
    CoruscantCostModel c7(7);
    // One TR regardless of operand count; staging grows linearly.
    auto c2 = c7.bulkBitwise(2).cycles;
    auto c7ops = c7.bulkBitwise(7).cycles;
    EXPECT_EQ(c7ops - c2, 2u * 5u); // 5 extra operands x (write+shift)
}

TEST(OpCost, MaxTwCheaperThanShift)
{
    CoruscantCostModel c7(7);
    EXPECT_LT(c7.max(7, 8, true).cycles,
              c7.max(7, 8, false).cycles);
}

TEST(OpCost, NmrVoteConstant)
{
    CoruscantCostModel c7(7);
    EXPECT_EQ(c7.nmrVote(3).cycles, c7.nmrVote(7).cycles);
}

TEST(OpCost, EnergyMonotoneInTrd)
{
    // Larger windows drive more current per TR.
    EXPECT_LT(CoruscantCostModel(3).add(2, 8).energyPj,
              CoruscantCostModel(5).add(2, 8).energyPj);
    EXPECT_LT(CoruscantCostModel(5).add(2, 8).energyPj,
              CoruscantCostModel(7).add(2, 8).energyPj);
}

TEST(OpCost, MemoizedQueriesMatchFreshModel)
{
    // A repeated query must come from the cache *and* be numerically
    // identical to what an un-warmed model measures.
    CoruscantCostModel warm(7);
    OpCost first = warm.multiply(16);
    EXPECT_EQ(warm.measurements(), 1u);
    EXPECT_EQ(warm.cacheHits(), 0u);

    OpCost again = warm.multiply(16);
    EXPECT_EQ(warm.measurements(), 1u); // no functional re-execution
    EXPECT_EQ(warm.cacheHits(), 1u);
    EXPECT_EQ(again.cycles, first.cycles);
    EXPECT_DOUBLE_EQ(again.energyPj, first.energyPj);
    EXPECT_EQ(again.prims, first.prims);

    CoruscantCostModel fresh(7);
    OpCost cold = fresh.multiply(16);
    EXPECT_EQ(cold.cycles, first.cycles);
    EXPECT_DOUBLE_EQ(cold.energyPj, first.energyPj);
    EXPECT_EQ(cold.prims, first.prims);
}

TEST(OpCost, DistinctKeysMeasureSeparately)
{
    CoruscantCostModel c(7);
    c.add(2, 8);
    c.add(2, 16);                       // different bits
    c.add(3, 8);                        // different operands
    c.multiply(8);                      // different op
    c.multiply(8, MulStrategy::Arbitrary); // different strategy
    c.max(7, 8, true);
    c.max(7, 8, false);                 // different flag
    EXPECT_EQ(c.measurements(), 7u);
    EXPECT_EQ(c.cacheHits(), 0u);
    c.add(2, 8);
    c.multiply(8);
    EXPECT_EQ(c.measurements(), 7u);
    EXPECT_EQ(c.cacheHits(), 2u);
}

TEST(OpCost, CacheTravelsWithCopies)
{
    CoruscantCostModel a(7);
    a.add(5, 8);
    CoruscantCostModel b = a; // used by value in the polybench model
    EXPECT_EQ(b.measurements(), 1u);
    b.add(5, 8);
    EXPECT_EQ(b.measurements(), 1u); // hit in the copied cache
    EXPECT_EQ(b.cacheHits(), 1u);
    EXPECT_EQ(a.cacheHits(), 0u);    // copies diverge afterwards
}

TEST(OpCost, RegistryRecordsEachOpOnce)
{
    CoruscantCostModel c(7);
    obs::MetricsRegistry reg;
    c.attachMetrics(&reg);
    c.add(2, 8);
    c.add(2, 8); // cache hit: no second recording
    c.multiply(8);
    const obs::ComponentMetrics *add = reg.find("opcost/add");
    const obs::ComponentMetrics *mul = reg.find("opcost/multiply");
    ASSERT_NE(add, nullptr);
    ASSERT_NE(mul, nullptr);
    EXPECT_EQ(add->prims(), c.add(2, 8).prims);
    EXPECT_GT(mul->prims().shifts, 0u);
    EXPECT_GT(add->energyPj(), 0.0);
}

TEST(OpCost, PrimCountsBackTheComposites)
{
    // Golden primitive breakdowns behind the Table III composites:
    // a TRD=7 two-operand 8-bit add is one TR per bit plus 13 result
    // writes and the 5 alignment shifts of the setup.
    CoruscantCostModel c7(7);
    OpCost add = c7.add(2, 8);
    EXPECT_EQ(add.prims.trPulses, 8u);
    EXPECT_EQ(add.prims.writes, 13u);
    EXPECT_EQ(add.prims.shifts, 5u);
    // Bulk ops read all operands in ONE transverse read.
    EXPECT_EQ(c7.bulkBitwise(7).prims.trPulses, 1u);
    EXPECT_EQ(c7.bulkBitwise(2).prims.trPulses, 1u);
}

} // namespace
} // namespace coruscant
