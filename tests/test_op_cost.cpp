/**
 * @file
 * CoruscantCostModel: the single source of truth for operation costs
 * used by every system-level model.
 */

#include <gtest/gtest.h>

#include "core/op_cost.hpp"

namespace coruscant {
namespace {

TEST(OpCost, PinnedTableIIIValues)
{
    CoruscantCostModel c7(7), c3(3);
    EXPECT_EQ(c7.add(5, 8).cycles, 26u);
    EXPECT_EQ(c7.add(2, 8).cycles, 26u);
    EXPECT_EQ(c3.add(2, 8).cycles, 19u);
    EXPECT_EQ(c7.multiply(8).cycles, 64u);
    EXPECT_NEAR(c7.add(5, 8).energyPj, 22.14, 0.01);
    EXPECT_NEAR(c3.add(2, 8).energyPj, 10.15, 0.01);
}

TEST(OpCost, ReductionIsFourCycles)
{
    EXPECT_EQ(CoruscantCostModel(7).reduce().cycles, 4u);
    EXPECT_EQ(CoruscantCostModel(3).reduce().cycles, 3u);
}

TEST(OpCost, AddScalesLinearlyInBlockSize)
{
    CoruscantCostModel c7(7);
    auto c8 = c7.add(5, 8).cycles;
    auto c16 = c7.add(5, 16).cycles;
    auto c32 = c7.add(5, 32).cycles;
    // Setup constant (10), loop 2 cycles/bit.
    EXPECT_EQ(c16 - c8, 16u);
    EXPECT_EQ(c32 - c16, 32u);
}

TEST(OpCost, MultiplyScalesLinearlyAtTrd7)
{
    // The O(n) claim at the cost-model level: cycles/bit bounded.
    CoruscantCostModel c7(7);
    double per8 = static_cast<double>(c7.multiply(8).cycles) / 8;
    double per32 = static_cast<double>(c7.multiply(32).cycles) / 32;
    EXPECT_LT(per32, per8 * 1.6);
}

TEST(OpCost, BulkConstantInOperands)
{
    CoruscantCostModel c7(7);
    // One TR regardless of operand count; staging grows linearly.
    auto c2 = c7.bulkBitwise(2).cycles;
    auto c7ops = c7.bulkBitwise(7).cycles;
    EXPECT_EQ(c7ops - c2, 2u * 5u); // 5 extra operands x (write+shift)
}

TEST(OpCost, MaxTwCheaperThanShift)
{
    CoruscantCostModel c7(7);
    EXPECT_LT(c7.max(7, 8, true).cycles,
              c7.max(7, 8, false).cycles);
}

TEST(OpCost, NmrVoteConstant)
{
    CoruscantCostModel c7(7);
    EXPECT_EQ(c7.nmrVote(3).cycles, c7.nmrVote(7).cycles);
}

TEST(OpCost, EnergyMonotoneInTrd)
{
    // Larger windows drive more current per TR.
    EXPECT_LT(CoruscantCostModel(3).add(2, 8).energyPj,
              CoruscantCostModel(5).add(2, 8).energyPj);
    EXPECT_LT(CoruscantCostModel(5).add(2, 8).energyPj,
              CoruscantCostModel(7).add(2, 8).energyPj);
}

} // namespace
} // namespace coruscant
