/**
 * @file
 * Functional CNN layers through the PIM ops vs. integer references.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "apps/cnn/pim_executor.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

std::int8_t
randomInt8(Rng &rng)
{
    return static_cast<std::int8_t>(
        static_cast<int>(rng.nextBelow(255)) - 127);
}

TEST(PimExecutor, DotProductMatchesReference)
{
    PimCnnExecutor exec;
    Rng rng(4);
    for (int iter = 0; iter < 10; ++iter) {
        std::size_t n = 1 + rng.nextBelow(100);
        std::vector<std::int8_t> a(n), b(n);
        std::int32_t expect = 0;
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = randomInt8(rng);
            b[i] = randomInt8(rng);
            expect += static_cast<std::int32_t>(a[i]) * b[i];
        }
        EXPECT_EQ(exec.dotProduct(a, b), expect) << "n=" << n;
    }
}

TEST(PimExecutor, DotProductEdgeCases)
{
    PimCnnExecutor exec;
    EXPECT_EQ(exec.dotProduct({0}, {0}), 0);
    EXPECT_EQ(exec.dotProduct({-127}, {-127}), 127 * 127);
    EXPECT_EQ(exec.dotProduct({-127}, {127}), -127 * 127);
    std::vector<std::int8_t> ones(64, 1), neg(64, -1);
    EXPECT_EQ(exec.dotProduct(ones, neg), -64);
}

TEST(PimExecutor, Conv2dMatchesReference)
{
    PimCnnExecutor exec;
    Rng rng(11);
    IntTensor input(6, 6, 2);
    for (auto &v : input.data)
        v = randomInt8(rng);
    std::vector<IntTensor> kernels;
    for (int oc = 0; oc < 3; ++oc) {
        IntTensor k(3, 3, 2);
        for (auto &v : k.data)
            v = randomInt8(rng);
        kernels.push_back(std::move(k));
    }
    std::vector<std::int32_t> bias = {5, -7, 0};
    auto out = exec.conv2d(input, kernels, bias);
    ASSERT_EQ(out.h, 4u);
    ASSERT_EQ(out.w, 4u);
    ASSERT_EQ(out.c, 3u);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            for (std::size_t oc = 0; oc < 3; ++oc) {
                std::int32_t expect = bias[oc];
                for (std::size_t ki = 0; ki < 3; ++ki)
                    for (std::size_t kj = 0; kj < 3; ++kj)
                        for (std::size_t c = 0; c < 2; ++c)
                            expect += input.at(i + ki, j + kj, c) *
                                      kernels[oc].at(ki, kj, c);
                EXPECT_EQ(out.at(i, j, oc), expect)
                    << i << "," << j << "," << oc;
            }
        }
    }
}

TEST(PimExecutor, MaxPool2x2)
{
    PimCnnExecutor exec;
    Rng rng(7);
    IntTensor input(6, 6, 3);
    for (auto &v : input.data)
        v = static_cast<std::int32_t>(rng.nextBelow(1 << 14));
    auto out = exec.maxPool(input, 2);
    ASSERT_EQ(out.h, 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            for (std::size_t c = 0; c < 3; ++c) {
                std::int32_t expect = 0;
                for (std::size_t pi = 0; pi < 2; ++pi)
                    for (std::size_t pj = 0; pj < 2; ++pj)
                        expect = std::max(expect,
                                          input.at(2 * i + pi,
                                                   2 * j + pj, c));
                EXPECT_EQ(out.at(i, j, c), expect);
            }
        }
    }
}

TEST(PimExecutor, MaxPool3x3NeedsCandidateChunking)
{
    // 9 candidates exceed TRD = 7: exercises hierarchical max.
    PimCnnExecutor exec;
    Rng rng(13);
    IntTensor input(9, 9, 1);
    for (auto &v : input.data)
        v = static_cast<std::int32_t>(rng.nextBelow(60000));
    auto out = exec.maxPool(input, 3);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            std::int32_t expect = 0;
            for (std::size_t pi = 0; pi < 3; ++pi)
                for (std::size_t pj = 0; pj < 3; ++pj)
                    expect = std::max(expect,
                                      input.at(3 * i + pi, 3 * j + pj,
                                               0));
            EXPECT_EQ(out.at(i, j, 0), expect);
        }
    }
}

TEST(PimExecutor, FullyConnectedMatchesReference)
{
    PimCnnExecutor exec;
    Rng rng(17);
    std::vector<std::int8_t> x(20);
    for (auto &v : x)
        v = randomInt8(rng);
    std::vector<std::vector<std::int8_t>> w(5,
                                            std::vector<std::int8_t>(20));
    std::vector<std::int32_t> bias(5);
    for (auto &row : w)
        for (auto &v : row)
            v = randomInt8(rng);
    for (auto &b : bias)
        b = static_cast<std::int32_t>(rng.nextBelow(100)) - 50;
    auto out = exec.fullyConnected(x, w, bias);
    for (std::size_t o = 0; o < 5; ++o) {
        std::int32_t expect = bias[o];
        for (std::size_t i = 0; i < 20; ++i)
            expect += static_cast<std::int32_t>(w[o][i]) * x[i];
        EXPECT_EQ(out[o], expect);
    }
}

TEST(PimExecutor, ReluZeroesNegatives)
{
    PimCnnExecutor exec;
    IntTensor t(2, 2, 2);
    t.data = {-5, 3, 0, -1000000, 42, -1, 7, 2000000};
    exec.reluInPlace(t);
    std::vector<std::int32_t> expect = {0, 3, 0, 0, 42, 0, 7, 2000000};
    EXPECT_EQ(t.data, expect);
}

TEST(PimExecutor, RequantizeClampsAndShifts)
{
    EXPECT_EQ(PimCnnExecutor::requantize(1024, 4), 64);
    EXPECT_EQ(PimCnnExecutor::requantize(100000, 4), 127);
    EXPECT_EQ(PimCnnExecutor::requantize(-100000, 4), -127);
    EXPECT_EQ(PimCnnExecutor::requantize(0, 4), 0);
}

TEST(PimExecutor, TinyCnnEndToEnd)
{
    // conv -> relu -> pool -> fc, fully through the PIM ops, against
    // a plain integer reference.
    PimCnnExecutor exec;
    Rng rng(23);
    IntTensor input(8, 8, 1);
    for (auto &v : input.data)
        v = randomInt8(rng);
    std::vector<IntTensor> kernels;
    for (int oc = 0; oc < 2; ++oc) {
        IntTensor k(3, 3, 1);
        for (auto &v : k.data)
            v = randomInt8(rng);
        kernels.push_back(std::move(k));
    }
    std::vector<std::int32_t> bias = {3, -4};

    auto conv = exec.conv2d(input, kernels, bias);
    exec.reluInPlace(conv);
    // Requantize to 14-bit range so pooling lanes fit.
    for (auto &v : conv.data)
        v = std::min(v, (1 << 14) - 1);
    auto pooled = exec.maxPool(conv, 2); // 6x6x2 -> 3x3x2
    // Flatten and classify.
    std::vector<std::int8_t> flat;
    for (auto v : pooled.data)
        flat.push_back(PimCnnExecutor::requantize(v, 7));
    std::vector<std::vector<std::int8_t>> w(
        4, std::vector<std::int8_t>(flat.size()));
    for (auto &row : w)
        for (auto &v : row)
            v = randomInt8(rng);
    auto logits = exec.fullyConnected(w.size() ? flat : flat, w,
                                      {0, 0, 0, 0});

    // Plain reference of the same pipeline.
    auto ref_conv = [&](std::size_t i, std::size_t j, std::size_t oc) {
        std::int32_t acc = bias[oc];
        for (std::size_t ki = 0; ki < 3; ++ki)
            for (std::size_t kj = 0; kj < 3; ++kj)
                acc += input.at(i + ki, j + kj, 0) *
                       kernels[oc].at(ki, kj, 0);
        return std::min(std::max(acc, 0), (1 << 14) - 1);
    };
    IntTensor ref_pool(3, 3, 2);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            for (std::size_t c = 0; c < 2; ++c) {
                std::int32_t m = 0;
                for (std::size_t pi = 0; pi < 2; ++pi)
                    for (std::size_t pj = 0; pj < 2; ++pj)
                        m = std::max(m, ref_conv(2 * i + pi,
                                                 2 * j + pj, c));
                ref_pool.at(i, j, c) = m;
            }
    for (std::size_t o = 0; o < w.size(); ++o) {
        std::int32_t expect = 0;
        for (std::size_t i = 0; i < flat.size(); ++i)
            expect += static_cast<std::int32_t>(w[o][i]) *
                      PimCnnExecutor::requantize(ref_pool.data[i], 7);
        EXPECT_EQ(logits[o], expect) << "logit " << o;
    }
}

} // namespace
} // namespace coruscant
