/**
 * @file
 * Unit tests for the sense-amplifier thermometer code and PIM block.
 */

#include <gtest/gtest.h>

#include "core/pim_logic.hpp"

namespace coruscant {
namespace {

TEST(SenseLevels, ThermometerRoundTrip)
{
    for (std::size_t c = 0; c <= 7; ++c) {
        auto s = SenseLevels::fromCount(c);
        EXPECT_EQ(s.count(), c);
        for (std::size_t j = 1; j <= 7; ++j)
            EXPECT_EQ(s.geq[j - 1], c >= j);
    }
}

TEST(PimLogic, SumCarrySuperCarryDecomposeTheCount)
{
    // Paper Fig. 4(b): t = S + 2C + 4C' for t in 0..7.
    for (std::size_t t = 0; t <= 7; ++t) {
        auto o = evalPimLogic(t, 7);
        std::size_t recomposed = (o.sum ? 1 : 0) + (o.carry ? 2 : 0) +
                                 (o.superCarry ? 4 : 0);
        EXPECT_EQ(recomposed, t);
    }
}

TEST(PimLogic, CarryMatchesPaperDescription)
{
    // "C ... is a function of TR levels above two and not above four
    // or above six": true for t in {2,3,6,7}.
    for (std::size_t t = 0; t <= 7; ++t) {
        bool expected = (t >= 2 && t < 4) || t >= 6;
        EXPECT_EQ(evalPimLogic(t, 7).carry, expected) << "t = " << t;
    }
}

TEST(PimLogic, OrAndXorSemantics)
{
    for (std::size_t window : {3u, 5u, 7u}) {
        for (std::size_t t = 0; t <= window; ++t) {
            auto o = evalPimLogic(t, window);
            EXPECT_EQ(o.orOut, t >= 1);
            EXPECT_EQ(o.andOut, t == window);
            EXPECT_EQ(o.xorOut, t % 2 == 1);
            EXPECT_EQ(o.sum, o.xorOut);
        }
    }
}

TEST(PimLogic, SelectBulkOpCoversInversions)
{
    auto o = evalPimLogic(3, 7); // some ones, not all
    EXPECT_TRUE(selectBulkOp(BulkOp::Or, o));
    EXPECT_FALSE(selectBulkOp(BulkOp::Nor, o));
    EXPECT_FALSE(selectBulkOp(BulkOp::And, o));
    EXPECT_TRUE(selectBulkOp(BulkOp::Nand, o));
    EXPECT_TRUE(selectBulkOp(BulkOp::Xor, o));
    EXPECT_FALSE(selectBulkOp(BulkOp::Xnor, o));
    EXPECT_FALSE(selectBulkOp(BulkOp::Maj, o)); // 3 < 4
    EXPECT_TRUE(selectBulkOp(BulkOp::Maj, evalPimLogic(4, 7)));
}

TEST(PimLogic, NotIsInvertedSingleOperand)
{
    // Zero-padded single operand: count is the operand bit itself.
    EXPECT_TRUE(selectBulkOp(BulkOp::Not, evalPimLogic(0, 7)));
    EXPECT_FALSE(selectBulkOp(BulkOp::Not, evalPimLogic(1, 7)));
}

TEST(PimLogic, BulkOpNames)
{
    EXPECT_STREQ(bulkOpName(BulkOp::And), "AND");
    EXPECT_STREQ(bulkOpName(BulkOp::Xnor), "XNOR");
    EXPECT_STREQ(bulkOpName(BulkOp::Maj), "MAJ");
}

} // namespace
} // namespace coruscant
