/**
 * @file
 * PIM program builder: lowering expression DAGs to cpim sequences and
 * executing them end-to-end through the memory controller.
 */

#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"
#include "controller/pim_program.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

class ProgramTest : public ::testing::Test
{
  protected:
    ProgramTest()
        : ctrl(mem)
    {}

    BitVector
    randomRow(std::uint64_t salt)
    {
        Rng rng(salt);
        BitVector row(512);
        for (std::size_t w = 0; w < 512; ++w)
            row.set(w, rng.nextBool());
        return row;
    }

    DwmMainMemory mem;
    MemoryController ctrl;
    static constexpr std::uint64_t scratch = 0x2000000;
};

TEST_F(ProgramTest, SingleBulkOp)
{
    auto a = randomRow(1), b = randomRow(2), c = randomRow(3);
    mem.writeLine(0x1000, a);
    mem.writeLine(0x2000, b);
    mem.writeLine(0x3000, c);

    PimProgram prog;
    auto va = prog.load(0x1000);
    auto vb = prog.load(0x2000);
    auto vc = prog.load(0x3000);
    auto r = prog.bulkOp(BulkOp::And, {va, vb, vc});
    prog.store(r, 0x9000);

    auto compiled = prog.compile(mem.config(), scratch);
    // 3 gather copies + 1 op + 1 store copy.
    EXPECT_EQ(compiled.instructions.size(), 5u);
    EXPECT_EQ(compiled.copyCount, 4u);
    PimProgramRunner runner(ctrl);
    runner.run(compiled);
    EXPECT_EQ(mem.readLine(0x9000), a & b & c);
}

TEST_F(ProgramTest, ArithmeticDag)
{
    // d = (a + b) * c over 8-bit lanes packed in 16-bit fields.
    Rng rng(7);
    BitVector a(512), b(512), c(512);
    std::vector<std::uint64_t> av(32), bv(32), cv(32);
    for (std::size_t l = 0; l < 32; ++l) {
        av[l] = rng.next() & 0x7F;
        bv[l] = rng.next() & 0x7F;
        cv[l] = rng.next() & 0xFF;
        a.insertUint64(l * 16, 16, av[l]);
        b.insertUint64(l * 16, 16, bv[l]);
        c.insertUint64(l * 16, 16, cv[l]);
    }
    mem.writeLine(0x10000, a);
    mem.writeLine(0x20000, b);
    mem.writeLine(0x30000, c);

    PimProgram prog;
    auto sum = prog.add({prog.load(0x10000), prog.load(0x20000)}, 16);
    auto product = prog.multiply(sum, prog.load(0x30000), 16);
    prog.store(product, 0x40000);

    auto compiled = prog.compile(mem.config(), scratch);
    PimProgramRunner runner(ctrl);
    runner.run(compiled);
    auto result = mem.readLine(0x40000);
    for (std::size_t l = 0; l < 32; ++l) {
        std::uint64_t expect = ((av[l] + bv[l]) * cv[l]) & 0xFFFF;
        EXPECT_EQ(result.sliceUint64(l * 16, 16), expect)
            << "lane " << l;
    }
}

TEST_F(ProgramTest, ReuseOfIntermediateValues)
{
    // x = a ^ b; y = x | a; z = x & y  — x feeds two consumers.
    auto a = randomRow(11), b = randomRow(12);
    mem.writeLine(0x5000, a);
    mem.writeLine(0x6000, b);
    PimProgram prog;
    auto va = prog.load(0x5000);
    auto vb = prog.load(0x6000);
    auto x = prog.bulkOp(BulkOp::Xor, {va, vb});
    auto y = prog.bulkOp(BulkOp::Or, {x, va});
    auto z = prog.bulkOp(BulkOp::And, {x, y});
    prog.store(z, 0x7000);
    PimProgramRunner runner(ctrl);
    runner.run(prog.compile(mem.config(), scratch));
    BitVector gx = a ^ b;
    EXPECT_EQ(mem.readLine(0x7000), gx & (gx | a));
}

TEST_F(ProgramTest, MaxExpression)
{
    BitVector r1(512), r2(512), r3(512);
    for (std::size_t l = 0; l < 64; ++l) {
        r1.insertUint64(l * 8, 8, (l * 7) % 256);
        r2.insertUint64(l * 8, 8, (l * 13) % 256);
        r3.insertUint64(l * 8, 8, (l * 29) % 256);
    }
    mem.writeLine(0x8000, r1);
    mem.writeLine(0x8040, r2);
    mem.writeLine(0x8080, r3);
    PimProgram prog;
    auto m = prog.maxOf({prog.load(0x8000), prog.load(0x8040),
                         prog.load(0x8080)},
                        8);
    prog.store(m, 0xA000);
    PimProgramRunner runner(ctrl);
    runner.run(prog.compile(mem.config(), scratch));
    auto out = mem.readLine(0xA000);
    for (std::size_t l = 0; l < 64; ++l) {
        std::uint64_t expect =
            std::max({(l * 7) % 256, (l * 13) % 256, (l * 29) % 256});
        EXPECT_EQ(out.sliceUint64(l * 8, 8), expect) << "lane " << l;
    }
}

TEST_F(ProgramTest, ScratchSpillsAcrossDbcs)
{
    // Enough operations to exceed one DBC's 32 rows of scratch.
    auto a = randomRow(42);
    mem.writeLine(0xB000, a);
    PimProgram prog;
    auto v = prog.load(0xB000);
    for (int i = 0; i < 20; ++i)
        v = prog.bulkOp(BulkOp::Xor, {v, v}); // 2 gathers + 1 result
    prog.store(v, 0xC000);
    auto compiled = prog.compile(mem.config(), scratch);
    EXPECT_GT(compiled.scratchRowsUsed, 32u);
    PimProgramRunner runner(ctrl);
    runner.run(compiled);
    // x ^ x == 0 from the first op onward.
    EXPECT_EQ(mem.readLine(0xC000).popcount(), 0u);
}

TEST_F(ProgramTest, IsaLevelConvolution)
{
    // A 3x3 valid convolution on a 4x4 image, built entirely from
    // cpim multiply/add expressions and executed through the memory
    // controller — the compiler path of paper Sec. III-E end to end.
    const int img[4][4] = {{1, 2, 3, 4},
                           {5, 6, 7, 8},
                           {9, 10, 11, 12},
                           {13, 14, 15, 16}};
    const int ker[3][3] = {{1, 0, 2}, {0, 3, 0}, {1, 0, 1}};

    // Stage every pixel and kernel weight as a 16-bit lane-0 row.
    auto rowFor = [&](int v) {
        BitVector row(512);
        row.insertUint64(0, 16, static_cast<std::uint64_t>(v));
        return row;
    };
    PimProgram prog;
    std::vector<std::vector<PimProgram::Value>> pix(
        4, std::vector<PimProgram::Value>(4));
    std::uint64_t addr = 0x100000;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            mem.writeLine(addr, rowFor(img[i][j]));
            pix[i][j] = prog.load(addr);
            addr += 64;
        }
    }
    std::vector<std::vector<PimProgram::Value>> wv(
        3, std::vector<PimProgram::Value>(3));
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            mem.writeLine(addr, rowFor(ker[i][j]));
            wv[i][j] = prog.load(addr);
            addr += 64;
        }
    }

    std::uint64_t out_base = 0x4000000;
    for (int oi = 0; oi < 2; ++oi) {
        for (int oj = 0; oj < 2; ++oj) {
            std::vector<PimProgram::Value> products;
            for (int ki = 0; ki < 3; ++ki)
                for (int kj = 0; kj < 3; ++kj)
                    products.push_back(prog.multiply(
                        pix[oi + ki][oj + kj], wv[ki][kj], 16));
            // Sum nine products: 5 + (acc + 4).
            std::vector<PimProgram::Value> first(products.begin(),
                                                 products.begin() + 5);
            auto acc = prog.add(first, 16);
            std::vector<PimProgram::Value> rest = {acc};
            rest.insert(rest.end(), products.begin() + 5,
                        products.end());
            auto result = prog.add(rest, 16);
            prog.store(result,
                       out_base + (oi * 2 + oj) * 64);
        }
    }

    auto compiled = prog.compile(mem.config(), scratch);
    PimProgramRunner runner(ctrl);
    runner.run(compiled);

    for (int oi = 0; oi < 2; ++oi) {
        for (int oj = 0; oj < 2; ++oj) {
            int expect = 0;
            for (int ki = 0; ki < 3; ++ki)
                for (int kj = 0; kj < 3; ++kj)
                    expect += img[oi + ki][oj + kj] * ker[ki][kj];
            auto line =
                mem.readLine(out_base + (oi * 2 + oj) * 64);
            EXPECT_EQ(line.sliceUint64(0, 16),
                      static_cast<std::uint64_t>(expect))
                << "output (" << oi << "," << oj << ")";
        }
    }
}

TEST_F(ProgramTest, CompileRejectsIsaViolations)
{
    PimProgram prog;
    std::vector<PimProgram::Value> vals;
    for (int i = 0; i < 6; ++i)
        vals.push_back(prog.load(0x1000 + 64 * i));
    // 6-operand addition exceeds TRD-2 = 5.
    prog.add(vals, 8);
    EXPECT_THROW(prog.compile(mem.config(), scratch), FatalError);
}

TEST_F(ProgramTest, InvalidValueHandles)
{
    PimProgram prog;
    EXPECT_THROW(prog.bulkOp(BulkOp::And, {0, 1}), FatalError);
    EXPECT_THROW(prog.store(3, 0x1000), FatalError);
}

} // namespace
} // namespace coruscant
