/**
 * @file
 * Polybench kernels (trace correctness) and the Fig. 10 / Fig. 11
 * system model.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "apps/polybench/system_model.hpp"

namespace coruscant {
namespace {

TEST(PolybenchKernels, GemmOpCountsMatchClosedForm)
{
    const std::size_t n = 16;
    auto run = runGemm(n);
    // Per output: 1 beta-mul + n * (2 muls + 1 add).
    EXPECT_EQ(run.trace.muls, n * n * (1 + 2 * n));
    EXPECT_EQ(run.trace.adds, n * n * n);
    EXPECT_EQ(run.trace.stores, n * n);
    EXPECT_EQ(run.trace.loads, n * n * (1 + 2 * n));
}

TEST(PolybenchKernels, TwoMmIsTwoGemms)
{
    const std::size_t n = 12;
    auto one = runGemm(n);
    auto two = run2mm(n);
    EXPECT_EQ(two.trace.muls, 2 * one.trace.muls);
    EXPECT_EQ(two.trace.adds, 2 * one.trace.adds);
}

TEST(PolybenchKernels, ThreeMmIsThreeGemms)
{
    const std::size_t n = 12;
    EXPECT_EQ(run3mm(n).trace.muls, 3 * runGemm(n).trace.muls);
}

TEST(PolybenchKernels, AtaxIsTwoMatvecs)
{
    const std::size_t n = 20;
    auto run = runAtax(n);
    // Each matvec: n*n mul + n*n add + n extra adds.
    EXPECT_EQ(run.trace.muls, 2 * n * n);
    EXPECT_EQ(run.trace.adds, 2 * (n * n + n));
}

TEST(PolybenchKernels, ChecksumsAreDeterministic)
{
    for (int rep = 0; rep < 2; ++rep) {
        auto a = runGemver(24);
        auto b = runGemver(24);
        EXPECT_EQ(a.checksum, b.checksum);
        EXPECT_TRUE(std::isfinite(a.checksum));
        EXPECT_NE(a.checksum, 0.0);
    }
}

TEST(PolybenchKernels, AllKernelsProduceWork)
{
    auto runs = runAllPolybench(16);
    EXPECT_EQ(runs.size(), 12u);
    for (const auto &r : runs) {
        EXPECT_GT(r.trace.muls + r.trace.adds, 0u) << r.name;
        EXPECT_GT(r.trace.loads, 0u) << r.name;
        EXPECT_TRUE(std::isfinite(r.checksum)) << r.name;
    }
}

class PolybenchModel : public ::testing::Test
{
  protected:
    PolybenchSystemModel model;
};

TEST_F(PolybenchModel, PimBeatsBothCpuSystemsOnEveryKernel)
{
    for (const auto &run : runAllPolybench(32)) {
        auto res = model.evaluate(run);
        EXPECT_GT(res.latencyGainVsDwm(), 1.0) << run.name;
        EXPECT_GT(res.latencyGainVsDram(), 1.0) << run.name;
        EXPECT_GT(res.energyGain(), 5.0) << run.name;
    }
}

TEST_F(PolybenchModel, DramCpuIsSlowerThanDwmCpu)
{
    // Paper Fig. 10: DRAM is slower than the DWM memory.
    for (const auto &run : runAllPolybench(32)) {
        auto res = model.evaluate(run);
        EXPECT_GE(res.cpuDramCycles, res.cpuDwmCycles) << run.name;
    }
}

TEST_F(PolybenchModel, GeomeansNearPaperAverages)
{
    // Paper Sec. V-C: average latency improvement 2.07x over CPU+DWM,
    // 2.20x over CPU+DRAM; energy reduction >= 25x on average.
    auto runs = runAllPolybench(48);
    double gdwm = 1, gdram = 1, gen = 1;
    for (const auto &run : runs) {
        auto res = model.evaluate(run);
        gdwm *= res.latencyGainVsDwm();
        gdram *= res.latencyGainVsDram();
        gen *= res.energyGain();
    }
    double n = static_cast<double>(runs.size());
    EXPECT_NEAR(std::pow(gdwm, 1.0 / n), 2.07, 0.5);
    EXPECT_NEAR(std::pow(gdram, 1.0 / n), 2.20, 0.6);
    EXPECT_NEAR(std::pow(gen, 1.0 / n), 25.2, 7.0);
}

TEST_F(PolybenchModel, QueueingDominatesPimRuntime)
{
    // Paper Sec. V-F: ~80% of PIM runtime is queuing delay.
    auto res = model.evaluate(runGemm(48));
    EXPECT_GT(res.pimQueueFraction, 0.6);
}

TEST_F(PolybenchModel, LatencyScalesWithProblemSize)
{
    auto small = model.evaluate(runGemm(16));
    auto large = model.evaluate(runGemm(32));
    EXPECT_GT(large.pimCycles, small.pimCycles * 6);
    EXPECT_GT(large.cpuDwmCycles, small.cpuDwmCycles * 6);
}

} // namespace
} // namespace coruscant
