/**
 * @file
 * Broad parameterized property sweeps across the operation space:
 * every TRD x arity x width combination of the arithmetic ops against
 * golden models, plus invariants that must hold universally.
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
params(std::size_t trd, std::size_t wires)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

struct SweepCase
{
    std::size_t trd;
    std::size_t block;
};

class ArithmeticSweep : public ::testing::TestWithParam<SweepCase>
{};

/** Every legal operand count at this TRD produces exact lane sums. */
TEST_P(ArithmeticSweep, AddAllArities)
{
    auto [trd, block] = GetParam();
    const std::size_t wires = block * 2;
    CoruscantUnit unit(params(trd, wires));
    Rng rng(trd * 131 + block);
    std::uint64_t mask = block >= 64 ? ~0ULL : ((1ULL << block) - 1);
    for (std::size_t m = 1; m <= unit.params().maxAddOperands(); ++m) {
        for (int iter = 0; iter < 8; ++iter) {
            std::vector<BitVector> ops;
            std::uint64_t e0 = 0, e1 = 0;
            for (std::size_t i = 0; i < m; ++i) {
                std::uint64_t v0 = rng.next() & mask;
                std::uint64_t v1 = rng.next() & mask;
                BitVector row(wires);
                row.insertUint64(0, block, v0);
                row.insertUint64(block, block, v1);
                ops.push_back(std::move(row));
                e0 += v0;
                e1 += v1;
            }
            auto sum = unit.add(ops, block);
            EXPECT_EQ(sum.sliceUint64(0, block), e0 & mask)
                << "m=" << m;
            EXPECT_EQ(sum.sliceUint64(block, block), e1 & mask)
                << "m=" << m;
        }
    }
}

/** Addition is commutative under operand permutation. */
TEST_P(ArithmeticSweep, AddCommutative)
{
    auto [trd, block] = GetParam();
    const std::size_t wires = block;
    CoruscantUnit unit(params(trd, wires));
    Rng rng(trd + block);
    std::size_t m = unit.params().maxAddOperands();
    std::vector<BitVector> ops;
    for (std::size_t i = 0; i < m; ++i) {
        BitVector row(wires);
        row.insertUint64(0, block,
                         rng.next() &
                             ((block >= 64) ? ~0ULL
                                            : ((1ULL << block) - 1)));
        ops.push_back(std::move(row));
    }
    auto forward = unit.add(ops, block);
    std::reverse(ops.begin(), ops.end());
    EXPECT_EQ(unit.add(ops, block), forward);
}

/** Reduction of m rows equals the plain lane sum for all m. */
TEST_P(ArithmeticSweep, ReduceAllArities)
{
    auto [trd, block] = GetParam();
    const std::size_t wires = block * 2;
    CoruscantUnit unit(params(trd, wires));
    Rng rng(trd * 7 + block);
    std::uint64_t mask = block >= 64 ? ~0ULL : ((1ULL << block) - 1);
    // TRD < 5 has no super carry: 3->2 reduction only.
    std::size_t max_rows = trd >= 5 ? trd : 3;
    for (std::size_t m = 1; m <= max_rows; ++m) {
        std::vector<BitVector> rows;
        std::uint64_t expect = 0;
        for (std::size_t i = 0; i < m; ++i) {
            std::uint64_t v = rng.next() & mask;
            BitVector row(wires);
            row.insertUint64(0, block, v);
            rows.push_back(std::move(row));
            expect += v;
        }
        auto red = unit.reduce(rows, block);
        std::uint64_t got = red.sum.sliceUint64(0, block) +
                            red.carry.sliceUint64(0, block);
        if (red.hasSuperCarry)
            got += red.superCarry.sliceUint64(0, block);
        EXPECT_EQ(got & mask, expect & mask) << "m=" << m;
    }
}

INSTANTIATE_TEST_SUITE_P(
    TrdBlock, ArithmeticSweep,
    ::testing::Values(SweepCase{3, 8}, SweepCase{3, 16},
                      SweepCase{4, 8}, SweepCase{5, 8},
                      SweepCase{5, 32}, SweepCase{6, 8},
                      SweepCase{7, 8}, SweepCase{7, 16},
                      SweepCase{7, 64}),
    [](const ::testing::TestParamInfo<SweepCase> &info) {
        return "trd" + std::to_string(info.param.trd) + "_b" +
               std::to_string(info.param.block);
    });

/** Distributivity: (a+b)*c == a*c + b*c through the PIM ops. */
TEST(AlgebraicProperty, MultiplicationDistributesOverAddition)
{
    CoruscantUnit unit(params(7, 32));
    Rng rng(17);
    for (int iter = 0; iter < 15; ++iter) {
        std::uint64_t a = rng.next() & 0x7F;
        std::uint64_t b = rng.next() & 0x7F;
        std::uint64_t c = rng.next() & 0xFF;
        auto pack = [&](std::uint64_t v) {
            BitVector row(32);
            row.insertUint64(0, 16, v);
            return row;
        };
        auto sum = unit.add({pack(a), pack(b)}, 16);
        auto lhs = unit.multiply(sum, pack(c), 8);
        auto ac = unit.multiply(pack(a), pack(c), 8);
        auto bc = unit.multiply(pack(b), pack(c), 8);
        auto rhs = unit.add({ac, bc}, 16);
        EXPECT_EQ(lhs.sliceUint64(0, 16), rhs.sliceUint64(0, 16))
            << a << "," << b << "," << c;
    }
}

/** Max is idempotent, commutative, and dominated by its arguments. */
TEST(AlgebraicProperty, MaxLattice)
{
    CoruscantUnit unit(params(7, 16));
    Rng rng(23);
    for (int iter = 0; iter < 15; ++iter) {
        std::uint64_t a = rng.next() & 0xFFFF;
        std::uint64_t b = rng.next() & 0xFFFF;
        auto pack = [&](std::uint64_t v) {
            return BitVector::fromUint64(16, v);
        };
        auto mab = unit.maxOfRows({pack(a), pack(b)}, 16).toUint64();
        auto mba = unit.maxOfRows({pack(b), pack(a)}, 16).toUint64();
        auto maa = unit.maxOfRows({pack(a), pack(a)}, 16).toUint64();
        EXPECT_EQ(mab, mba);
        EXPECT_EQ(maa, a);
        EXPECT_GE(mab, std::max(a, b)); // equality:
        EXPECT_EQ(mab, std::max(a, b));
    }
}

/** Bulk De Morgan: NAND(a,b) == OR(~a,~b) computed through the unit. */
TEST(AlgebraicProperty, DeMorgan)
{
    CoruscantUnit unit(params(7, 64));
    Rng rng(29);
    for (int iter = 0; iter < 10; ++iter) {
        BitVector a(64), b(64);
        for (std::size_t w = 0; w < 64; ++w) {
            a.set(w, rng.nextBool());
            b.set(w, rng.nextBool());
        }
        auto nand = unit.bulkBitwise(BulkOp::Nand, {a, b});
        auto na = unit.bulkBitwise(BulkOp::Not, {a});
        auto nb = unit.bulkBitwise(BulkOp::Not, {b});
        auto or_n = unit.bulkBitwise(BulkOp::Or, {na, nb});
        EXPECT_EQ(nand, or_n);
    }
}

/** Cost invariants: cycles depend on shape, never on data values. */
TEST(CostProperty, CyclesAreDataIndependent)
{
    CoruscantUnit unit(params(7, 32));
    Rng rng(31);
    auto run_add = [&](std::uint64_t seed) {
        Rng r(seed);
        std::vector<BitVector> ops;
        for (int i = 0; i < 5; ++i) {
            BitVector row(32);
            row.insertUint64(0, 32, r.next());
            ops.push_back(std::move(row));
        }
        unit.resetCosts();
        unit.add(ops, 8);
        return unit.ledger().cycles();
    };
    auto c1 = run_add(1);
    for (std::uint64_t s = 2; s < 8; ++s)
        EXPECT_EQ(run_add(s), c1);

    auto run_mul = [&](std::uint64_t a, std::uint64_t b) {
        BitVector ar(32), br(32);
        ar.insertUint64(0, 16, a);
        br.insertUint64(0, 16, b);
        unit.resetCosts();
        unit.multiply(ar, br, 8);
        return unit.ledger().cycles();
    };
    EXPECT_EQ(run_mul(0, 0), run_mul(255, 255));
    EXPECT_EQ(run_mul(1, 128), run_mul(170, 85));
}

} // namespace
} // namespace coruscant
