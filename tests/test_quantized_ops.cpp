/**
 * @file
 * Functional binary / ternary PIM primitives (DrAcc / NID modes).
 */

#include <gtest/gtest.h>

#include "apps/cnn/quantized_ops.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

TEST(QuantizedOps, PopcountMatchesHost)
{
    QuantizedPimOps q;
    Rng rng(5);
    for (int iter = 0; iter < 20; ++iter) {
        std::size_t n = 1 + rng.nextBelow(512);
        BitVector bits(512);
        for (std::size_t i = 0; i < n; ++i)
            bits.set(i, rng.nextBool());
        EXPECT_EQ(q.popcount(bits, n), bits.slice(0, n).popcount())
            << "n=" << n;
    }
}

TEST(QuantizedOps, PopcountEdgeCases)
{
    QuantizedPimOps q;
    BitVector zeros(512), ones(512, true);
    EXPECT_EQ(q.popcount(zeros, 512), 0u);
    EXPECT_EQ(q.popcount(ones, 512), 512u);
    EXPECT_EQ(q.popcount(ones, 1), 1u);
    EXPECT_EQ(q.popcount(ones, 0), 0u);
}

TEST(QuantizedOps, BinaryDotMatchesReference)
{
    QuantizedPimOps q;
    Rng rng(7);
    for (int iter = 0; iter < 20; ++iter) {
        std::size_t n = 1 + rng.nextBelow(300);
        BitVector a(512), w(512);
        std::int64_t expect = 0;
        for (std::size_t i = 0; i < n; ++i) {
            bool av = rng.nextBool(), wv = rng.nextBool();
            a.set(i, av);
            w.set(i, wv);
            expect += (av == wv) ? 1 : -1; // {-1,+1} product
        }
        EXPECT_EQ(q.binaryDot(a, w, n), expect) << "n=" << n;
    }
}

TEST(QuantizedOps, BinaryDotExtremes)
{
    QuantizedPimOps q;
    BitVector a(512, true), w(512, true);
    EXPECT_EQ(q.binaryDot(a, w, 100), 100); // all matching
    EXPECT_EQ(q.binaryDot(a, ~w, 100), -100); // all opposite
}

TEST(QuantizedOps, TernaryDotMatchesReference)
{
    QuantizedPimOps q;
    Rng rng(11);
    for (int iter = 0; iter < 15; ++iter) {
        std::size_t n = 1 + rng.nextBelow(200);
        std::vector<std::uint8_t> x(n);
        std::vector<std::int8_t> w(n);
        std::int64_t expect = 0;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = static_cast<std::uint8_t>(rng.nextBelow(256));
            w[i] = static_cast<std::int8_t>(
                static_cast<int>(rng.nextBelow(3)) - 1);
            expect += static_cast<std::int64_t>(x[i]) * w[i];
        }
        EXPECT_EQ(q.ternaryDot(x, w), expect) << "n=" << n;
    }
}

TEST(QuantizedOps, TernaryZeroWeightsCostNothing)
{
    QuantizedPimOps q;
    std::vector<std::uint8_t> x(50, 10);
    std::vector<std::int8_t> w(50, 0);
    q.resetCosts();
    EXPECT_EQ(q.ternaryDot(x, w), 0);
    EXPECT_EQ(q.ledger().cycles(), 0u); // nothing to accumulate
}

TEST(QuantizedOps, NoMultiplierInvolved)
{
    // The quantized path must consist of bulk ops and additions only
    // (the whole point of DrAcc/NID): no "copy" (partial-product)
    // charges appear in the ledger.
    QuantizedPimOps q;
    std::vector<std::uint8_t> x(64, 3);
    std::vector<std::int8_t> w(64);
    for (std::size_t i = 0; i < 64; ++i)
        w[i] = (i % 3 == 0) ? 1 : ((i % 3 == 1) ? -1 : 0);
    q.resetCosts();
    q.ternaryDot(x, w);
    EXPECT_EQ(q.ledger().byCategory().count("copy"), 0u);
    EXPECT_GT(q.ledger().byCategory().at("tr").count, 0u);
}

TEST(QuantizedOps, BinaryConvOutputConsistent)
{
    QuantizedPimOps q;
    // 3x3x2 window, all +1; kernel alternating.
    const std::size_t elems = 18;
    BitVector window(512, true), kernel(512);
    std::int64_t expect = 0;
    for (std::size_t i = 0; i < elems; ++i) {
        bool kv = i % 2 == 0;
        kernel.set(i, kv);
        expect += kv ? 1 : -1;
    }
    EXPECT_EQ(q.binaryConvOutput(window, kernel, elems), expect);
}

} // namespace
} // namespace coruscant
