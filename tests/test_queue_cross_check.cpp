/**
 * @file
 * Cross-checks between the closed-form CommandQueueModel and the
 * discrete-event EventSimulator on randomized workloads, pinning the
 * edge cases each model must agree on: zero-service-cycle items, a
 * single bank, and all-requests-same-arrival.
 *
 * The two models differ by construction in one way: the closed form
 * lets the command bus run ahead (issue_clock advances regardless of
 * bank state) while the DES stalls the bus until the target bank can
 * accept (head-of-line blocking).  For identical item order and
 * simultaneous arrivals the DES makespan is therefore a sound upper
 * bound on the closed form, and both are bounded by the fully
 * serialized schedule.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "controller/event_sim.hpp"
#include "controller/queue_model.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

std::vector<SimRequest>
toRequests(const std::vector<QueueItem> &items, std::uint64_t arrival)
{
    std::vector<SimRequest> reqs;
    reqs.reserve(items.size());
    for (const auto &it : items)
        reqs.push_back({arrival, it.server,
                        static_cast<std::uint32_t>(it.issueCmds),
                        static_cast<std::uint32_t>(it.busyCycles)});
    return reqs;
}

std::uint64_t
serializedBound(const std::vector<QueueItem> &items)
{
    std::uint64_t total = 0;
    for (const auto &it : items)
        total += it.issueCmds + it.busyCycles;
    return total;
}

TEST(QueueCrossCheck, RandomizedSameArrivalBounds)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed);
        const std::size_t banks = 1 + rng.nextBelow(8);
        const std::size_t count = 1 + rng.nextBelow(300);
        std::vector<QueueItem> items;
        for (std::size_t i = 0; i < count; ++i)
            items.push_back({rng.nextBelow(banks),
                             rng.nextBelow(80), // may be zero
                             1 + rng.nextBelow(3)});
        CommandQueueModel cq(banks);
        auto cf = cq.run(items);
        EventSimulator sim(banks);
        auto des =
            sim.run(toRequests(items, 0), SchedulePolicy::InOrder);
        EXPECT_GE(des.makespan, cf.makespanCycles) << "seed " << seed;
        EXPECT_LE(des.makespan, serializedBound(items))
            << "seed " << seed;
        EXPECT_LE(cf.makespanCycles, serializedBound(items))
            << "seed " << seed;
        EXPECT_EQ(des.requests, count);
    }
}

TEST(QueueCrossCheck, ZeroServiceItemsAreIssueBound)
{
    // With no bank occupancy anywhere, both models collapse to pure
    // command-bus serialization: makespan == total issue cycles.
    Rng rng(3);
    std::vector<QueueItem> items;
    std::uint64_t issue_total = 0;
    for (int i = 0; i < 200; ++i) {
        std::uint64_t cmds = 1 + rng.nextBelow(4);
        items.push_back({rng.nextBelow(8), 0, cmds});
        issue_total += cmds;
    }
    CommandQueueModel cq(8);
    EXPECT_EQ(cq.run(items).makespanCycles, issue_total);
    EventSimulator sim(8);
    auto des = sim.run(toRequests(items, 0), SchedulePolicy::InOrder);
    EXPECT_EQ(des.makespan, issue_total);
}

TEST(QueueCrossCheck, SingleBankFullySerializesTheDes)
{
    // One bank: the DES serializes issue+service end to end; the
    // closed form still pipelines issue under the previous service,
    // so it can only be faster.
    Rng rng(11);
    std::vector<QueueItem> items;
    for (int i = 0; i < 100; ++i)
        items.push_back({0, rng.nextBelow(50), 1 + rng.nextBelow(3)});
    EventSimulator sim(1);
    auto des = sim.run(toRequests(items, 0), SchedulePolicy::InOrder);
    EXPECT_EQ(des.makespan, serializedBound(items));
    CommandQueueModel cq(1);
    auto cf = cq.run(items);
    EXPECT_LE(cf.makespanCycles, des.makespan);
    // And the closed form is never faster than the busy-cycle sum.
    std::uint64_t busy = 0;
    for (const auto &it : items)
        busy += it.busyCycles;
    EXPECT_GE(cf.makespanCycles, busy);
}

TEST(QueueCrossCheck, SameArrivalShiftInvariance)
{
    // Shifting every arrival by T shifts the whole schedule by T.
    Rng rng(5);
    std::vector<QueueItem> items;
    for (int i = 0; i < 150; ++i)
        items.push_back({rng.nextBelow(4), rng.nextBelow(60),
                         1 + rng.nextBelow(2)});
    EventSimulator sim(4);
    auto at0 = sim.run(toRequests(items, 0), SchedulePolicy::InOrder);
    auto at777 =
        sim.run(toRequests(items, 777), SchedulePolicy::InOrder);
    EXPECT_EQ(at777.makespan, at0.makespan + 777);
    EXPECT_DOUBLE_EQ(at777.avgLatency, at0.avgLatency);
    EXPECT_EQ(at777.latency.p99(), at0.latency.p99());
}

TEST(QueueCrossCheck, UniformClosedFormTracksExplicitRun)
{
    // runUniform's round-robin closed form vs run() on the
    // materialized item list: equal totals, makespan within a few
    // percent (the closed form rounds per-server schedules).
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(seed);
        const std::size_t banks = 2 + rng.nextBelow(15);
        const std::uint64_t count = 200 + rng.nextBelow(2000);
        const std::uint64_t busy = rng.nextBelow(50);
        const std::uint64_t cmds = 1 + rng.nextBelow(3);
        std::vector<QueueItem> items;
        for (std::uint64_t i = 0; i < count; ++i)
            items.push_back({i % banks, busy, cmds});
        CommandQueueModel a(banks), b(banks);
        auto explicit_run = a.run(items);
        auto uniform = b.runUniform(count, busy, cmds);
        EXPECT_EQ(uniform.issueCycles, explicit_run.issueCycles);
        EXPECT_EQ(uniform.busyCycles, explicit_run.busyCycles);
        double ratio =
            static_cast<double>(uniform.makespanCycles) /
            static_cast<double>(explicit_run.makespanCycles);
        EXPECT_GT(ratio, 0.9) << "seed " << seed;
        EXPECT_LT(ratio, 1.1) << "seed " << seed;
    }
}

TEST(QueueCrossCheck, SimStatsHistogramIsConsistent)
{
    // The new latency histogram inside SimStats must agree with the
    // scalar aggregates the simulator always reported.
    Rng rng(21);
    std::vector<SimRequest> reqs;
    for (int i = 0; i < 400; ++i)
        reqs.push_back({rng.nextBelow(2000),
                        static_cast<std::size_t>(rng.nextBelow(8)),
                        1 + static_cast<std::uint32_t>(rng.nextBelow(3)),
                        static_cast<std::uint32_t>(rng.nextBelow(50))});
    EventSimulator sim(8);
    for (auto pol :
         {SchedulePolicy::InOrder, SchedulePolicy::BankReorder}) {
        auto s = sim.run(reqs, pol);
        EXPECT_EQ(s.latency.count(), s.requests);
        EXPECT_EQ(s.latency.max(), s.maxLatency);
        EXPECT_NEAR(s.latency.mean(), s.avgLatency, 1e-9);
        EXPECT_EQ(s.latency.percentile(1.0), s.maxLatency);
        EXPECT_LE(s.latency.p50(), s.latency.p99());
    }
}

} // namespace
} // namespace coruscant
