/**
 * @file
 * Large-cardinality addition via carry-save reductions
 * (CoruscantUnit::reduceAndSum) and its O(n) advantage over grouped
 * addition chains (paper Sec. III-D.3, Sec. IV-A).
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
params(std::size_t trd, std::size_t wires)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

std::vector<BitVector>
randomRows(Rng &rng, std::size_t count, std::size_t wires,
           std::size_t block, std::vector<std::uint64_t> &lane_sums)
{
    std::size_t lanes = wires / block;
    lane_sums.assign(lanes, 0);
    std::vector<BitVector> rows;
    std::uint64_t vmask = 0xFF; // keep totals well inside the lanes
    for (std::size_t i = 0; i < count; ++i) {
        BitVector row(wires);
        for (std::size_t l = 0; l < lanes; ++l) {
            std::uint64_t v = rng.next() & vmask;
            row.insertUint64(l * block, block, v);
            lane_sums[l] += v;
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

class ReduceAndSumSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 std::size_t>>
{};

TEST_P(ReduceAndSumSweep, ExactForManyRows)
{
    auto [trd, count] = GetParam();
    const std::size_t block = 32, wires = 64;
    CoruscantUnit unit(params(trd, wires));
    Rng rng(trd * 1000 + count);
    std::vector<std::uint64_t> expect;
    auto rows = randomRows(rng, count, wires, block, expect);
    auto sum = unit.reduceAndSum(rows, block);
    for (std::size_t l = 0; l < wires / block; ++l)
        EXPECT_EQ(sum.sliceUint64(l * block, block),
                  expect[l] & 0xFFFFFFFF)
            << "lane " << l;
}

INSTANTIATE_TEST_SUITE_P(
    TrdCount, ReduceAndSumSweep,
    ::testing::Combine(::testing::Values(3u, 5u, 7u),
                       ::testing::Values(1u, 2u, 6u, 10u, 25u, 60u)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t,
                                                 std::size_t>> &info) {
        return "trd" + std::to_string(std::get<0>(info.param)) +
               "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(ReduceAndSum, BeatsGroupedAdditionChains)
{
    // Paper Sec. IV-A: reducing 362 operands takes five 4-cycle 7->3
    // steps... vs ceil(log) 40-cycle CLA steps in DRAM; against our
    // own grouped-addition chains the CSA path must win clearly for
    // large reductions.
    const std::size_t count = 60, block = 32, wires = 64;
    CoruscantUnit csa(params(7, wires));
    CoruscantUnit chain(params(7, wires));
    Rng rng(5);
    std::vector<std::uint64_t> expect;
    auto rows = randomRows(rng, count, wires, block, expect);

    csa.resetCosts();
    auto s1 = csa.reduceAndSum(rows, block);
    chain.resetCosts();
    // Grouped additions: 5 at a time (the no-CSA alternative).
    std::vector<BitVector> pending = rows;
    while (pending.size() > 1) {
        std::vector<BitVector> group;
        std::size_t m = std::min<std::size_t>(5, pending.size());
        group.assign(pending.begin(), pending.begin() + m);
        pending.erase(pending.begin(), pending.begin() + m);
        pending.push_back(chain.add(group, block));
    }
    EXPECT_EQ(s1, pending[0]);
    EXPECT_LT(csa.ledger().cycles(), chain.ledger().cycles() / 2);
}

TEST(ReduceAndSum, LinearScaling)
{
    // Cycles per summed row must flatten as the row count grows
    // (the O(n) claim).
    const std::size_t block = 32, wires = 64;
    auto cost = [&](std::size_t count) {
        CoruscantUnit unit(params(7, wires));
        Rng rng(count);
        std::vector<std::uint64_t> expect;
        auto rows = randomRows(rng, count, wires, block, expect);
        unit.resetCosts();
        unit.reduceAndSum(rows, block);
        return static_cast<double>(unit.ledger().cycles()) /
               static_cast<double>(count);
    };
    double per20 = cost(20);
    double per80 = cost(80);
    // Per-row cost at 80 rows within 50% of the 20-row figure
    // (amortizing the final addition).
    EXPECT_LT(per80, per20);
    EXPECT_GT(per80, per20 * 0.3);
}

} // namespace
} // namespace coruscant
