/**
 * @file
 * Analytical reliability model (paper Table V) and Monte-Carlo
 * cross-validation through the fault injector.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "reliability/error_model.hpp"
#include "util/logging.hpp"
#include "reliability/fault_campaign.hpp"

namespace coruscant {
namespace {

TEST(ErrorModel, TableVPerBitRows)
{
    // AND, OR, C' (per bit): 3.3e-7 / 2.0e-7 / 1.4e-7 at C3/C5/C7.
    EXPECT_NEAR(TrErrorModel(3).perBitOrAndSuperCarry(), 3.33e-7,
                0.05e-7);
    EXPECT_NEAR(TrErrorModel(5).perBitOrAndSuperCarry(), 2.0e-7,
                0.05e-7);
    EXPECT_NEAR(TrErrorModel(7).perBitOrAndSuperCarry(), 1.43e-7,
                0.05e-7);
    // XOR: 1e-6 everywhere.
    for (std::size_t trd : {3u, 5u, 7u})
        EXPECT_DOUBLE_EQ(TrErrorModel(trd).perBitXor(), 1e-6);
    // C: 3.3e-7 / 4.0e-7 / 4.3e-7.
    EXPECT_NEAR(TrErrorModel(3).perBitCarry(), 3.33e-7, 0.05e-7);
    EXPECT_NEAR(TrErrorModel(5).perBitCarry(), 4.0e-7, 0.05e-7);
    EXPECT_NEAR(TrErrorModel(7).perBitCarry(), 4.29e-7, 0.05e-7);
}

TEST(ErrorModel, TableVAddRow)
{
    // add (per 8 bits): 8e-6 for every TRD.
    for (std::size_t trd : {3u, 5u, 7u})
        EXPECT_NEAR(TrErrorModel(trd).addError(8), 8e-6, 1e-12);
}

TEST(ErrorModel, MultiplyOrderingMatchesTableV)
{
    // Paper: 4.1e-4 / 2.1e-4 / 7.6e-5 at C3/C5/C7 — the smaller the
    // TRD, the more reduction rounds and thus TR opportunities.  The
    // emergent structural counts must preserve the ordering and rough
    // magnitudes.
    double m3 = TrErrorModel(3).multiplyError(8);
    double m5 = TrErrorModel(5).multiplyError(8);
    double m7 = TrErrorModel(7).multiplyError(8);
    EXPECT_GT(m3, m5);
    EXPECT_GT(m5, m7);
    EXPECT_NEAR(m7, 7.6e-5, 5e-5);
    EXPECT_GT(m3 / m7, 2.5);
}

TEST(ErrorModel, NmrImprovesByOrdersOfMagnitude)
{
    TrErrorModel m(7);
    double raw = m.addError(8);
    double tmr = m.nmrAddError(3, 8);
    double n5 = m.nmrAddError(5, 8);
    double n7 = m.nmrAddError(7, 8);
    // Paper: TMR add ~5e-12 (6 orders below 8e-6); N = 5 reaches
    // ~1e-17 and N = 7 beyond.
    EXPECT_LT(tmr, raw * 1e-4);
    EXPECT_LT(n5, tmr * 1e-3);
    EXPECT_LT(n7, n5 * 1e-2);
    EXPECT_NEAR(std::log10(tmr), std::log10(5.6e-12), 1.5);
}

TEST(ErrorModel, NmrMultiplyReachesPaperBallpark)
{
    // Paper: multiply with TMR ~5e-12; N = 5 ~5e-18.
    TrErrorModel m(7);
    EXPECT_LT(m.nmrMultiplyError(3, 8), 1e-9);
    EXPECT_LT(m.nmrMultiplyError(5, 8), 1e-14);
}

TEST(ErrorModel, RejectsBadArguments)
{
    EXPECT_THROW(TrErrorModel(0), FatalError);
    EXPECT_THROW(TrErrorModel(7, 2.0), FatalError);
    EXPECT_THROW(TrErrorModel(7).nmrError(1e-6, 4, 8), FatalError);
}

// ---------------------------------------------------------------------
// Monte-Carlo cross-validation at elevated fault rates.
// ---------------------------------------------------------------------

TEST(FaultCampaign, AddEmpiricalMatchesAnalytical)
{
    auto res = FaultCampaign::addCampaign(7, 8, 1e-3, 20000, 5);
    EXPECT_GT(res.injectedFaults, 0u);
    // Analytical first-order rate: 8e-3.
    EXPECT_NEAR(res.empiricalRate(), res.analyticalRate,
                res.analyticalRate * 0.5);
}

TEST(FaultCampaign, XorPerBitMatchesAnalytical)
{
    auto res =
        FaultCampaign::bulkCampaign(BulkOp::Xor, 7, 4, 5e-3, 4000, 9);
    EXPECT_NEAR(res.empiricalRate(), res.analyticalRate,
                res.analyticalRate * 0.5);
}

TEST(FaultCampaign, OrPerBitLowerThanXor)
{
    auto or_res =
        FaultCampaign::bulkCampaign(BulkOp::Or, 7, 4, 5e-3, 4000, 9);
    auto xor_res =
        FaultCampaign::bulkCampaign(BulkOp::Xor, 7, 4, 5e-3, 4000, 9);
    // OR only fails at the 0/1 boundary; XOR fails on every fault.
    EXPECT_LT(or_res.empiricalRate(), xor_res.empiricalRate() / 2);
}

TEST(FaultCampaign, MultiplyWorseThanAdd)
{
    auto mul = FaultCampaign::multiplyCampaign(7, 8, 1e-4, 5000, 3);
    auto add = FaultCampaign::addCampaign(7, 8, 1e-4, 5000, 3);
    EXPECT_GT(mul.empiricalRate(), add.empiricalRate());
}

TEST(FaultCampaign, TmrSuppressesErrors)
{
    auto raw = FaultCampaign::addCampaign(7, 8, 2e-3, 8000, 21);
    auto tmr = FaultCampaign::nmrAddCampaign(7, 3, 8, 2e-3, 8000, 21);
    EXPECT_GT(raw.errors, 20u);
    EXPECT_LT(tmr.empiricalRate(), raw.empiricalRate() / 10.0);
}

} // namespace
} // namespace coruscant
