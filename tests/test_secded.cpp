/**
 * @file
 * SECDED proof obligations: exhaustive single-bit correction and
 * double-bit detection over whole codewords, golden check-bit vectors
 * locking the layout, and the line-level (72, 64) organization.
 *
 * "Exhaustive" here is over error *positions* (every 1-bit pattern and
 * every 2-bit pattern of the codeword), with data content exhaustive
 * for the 8-bit code and adversarial/random for the wider ones.  These
 * are the properties the serving-side classification (one flip ->
 * corrected, two -> DUE, never miscorrect) relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "reliability/ecc/secded.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

BitVector
wordFrom(std::size_t bits, std::uint64_t value)
{
    BitVector v(bits);
    for (std::size_t i = 0; i < bits && i < 64; ++i)
        v.set(i, (value >> i) & 1);
    return v;
}

/** Flat codeword bit @p pos of ([data | check]) toggled in place. */
void
flipCodeBit(BitVector &data, BitVector &check, std::size_t pos)
{
    if (pos < data.size())
        data.set(pos, !data.get(pos));
    else
        check.set(pos - data.size(), !check.get(pos - data.size()));
}

/** Data patterns that stress the parity structure of a @p bits code. */
std::vector<BitVector>
patternsFor(std::size_t bits)
{
    std::vector<BitVector> out;
    out.push_back(BitVector(bits)); // all zero
    BitVector ones(bits);
    for (std::size_t i = 0; i < bits; ++i)
        ones.set(i, true);
    out.push_back(ones);
    out.push_back(wordFrom(bits, 0xa5a5a5a5a5a5a5a5ULL));
    Rng rng(0x5ecded ^ bits);
    for (int r = 0; r < 3; ++r) {
        BitVector v(bits);
        for (std::size_t i = 0; i < bits; ++i)
            v.set(i, rng.nextBool());
        out.push_back(v);
    }
    return out;
}

TEST(Secded, CodeGeometryMatchesTheory)
{
    // r check bits cover 2^r - r - 1 data bits; plus overall parity.
    EXPECT_EQ(SecdedCode(8).checkBits(), 5u);   // (13, 8)
    EXPECT_EQ(SecdedCode(16).checkBits(), 6u);  // (22, 16)
    EXPECT_EQ(SecdedCode(32).checkBits(), 7u);  // (39, 32)
    EXPECT_EQ(SecdedCode(64).checkBits(), 8u);  // (72, 64) classic
    EXPECT_EQ(SecdedCode(64).codeBits(), 72u);

    LineSecded line(512, 64);
    EXPECT_EQ(line.words(), 8u);
    EXPECT_EQ(line.checkLanes(), 64u); // 12.5 % lane overhead
}

TEST(Secded, GoldenCheckVectorsLockTheLayout)
{
    // Generated once from the reference construction; any layout or
    // parity-equation change must be deliberate enough to re-derive
    // these.
    struct Golden
    {
        std::size_t bits;
        std::uint64_t data;
        std::uint64_t check;
    };
    const Golden golden[] = {
        {8, 0x0000000000000000ULL, 0x00},
        {8, 0x00000000000000ffULL, 0x03},
        {8, 0x00000000000000a5ULL, 0x03},
        {8, 0x000000000000003cULL, 0x12},
        {16, 0x000000000000beefULL, 0x0e},
        {32, 0x00000000deadbeefULL, 0x63},
        {64, 0x0123456789abcdefULL, 0x9c},
        {64, 0xffffffffffffffffULL, 0xff},
        {64, 0x0000000000000001ULL, 0x83},
        {64, 0x8000000000000000ULL, 0xc7},
    };
    for (const Golden &g : golden) {
        SecdedCode code(g.bits);
        BitVector check = code.checkBitsFor(wordFrom(g.bits, g.data));
        std::uint64_t got = 0;
        for (std::size_t i = 0; i < check.size(); ++i)
            if (check.get(i))
                got |= std::uint64_t{1} << i;
        EXPECT_EQ(got, g.check)
            << g.bits << "-bit data 0x" << std::hex << g.data;
    }
}

TEST(Secded, CleanCodewordsDecodeClean)
{
    for (std::size_t bits : {8u, 16u, 32u, 64u}) {
        SecdedCode code(bits);
        for (const BitVector &data : patternsFor(bits)) {
            BitVector d = data;
            BitVector c = code.checkBitsFor(data);
            SecdedCode::Decoded r = code.decode(d, c);
            EXPECT_EQ(r.status, EccStatus::Clean);
            EXPECT_EQ(d, data);
        }
    }
}

TEST(Secded, EverySingleBitErrorCorrectsInPlace)
{
    for (std::size_t bits : {8u, 16u, 32u, 64u}) {
        SecdedCode code(bits);
        for (const BitVector &data : patternsFor(bits)) {
            BitVector goldenCheck = code.checkBitsFor(data);
            for (std::size_t pos = 0; pos < code.codeBits(); ++pos) {
                BitVector d = data;
                BitVector c = goldenCheck;
                flipCodeBit(d, c, pos);
                SecdedCode::Decoded r = code.decode(d, c);
                ASSERT_EQ(r.status, EccStatus::Corrected)
                    << bits << "-bit code, flipped bit " << pos;
                EXPECT_EQ(r.correctedBit, pos);
                EXPECT_EQ(d, data);
                EXPECT_EQ(c, goldenCheck);
            }
        }
    }
}

TEST(Secded, EveryDoubleBitErrorDetectsAndNeverMiscorrects)
{
    for (std::size_t bits : {8u, 16u, 32u, 64u}) {
        SecdedCode code(bits);
        for (const BitVector &data : patternsFor(bits)) {
            BitVector goldenCheck = code.checkBitsFor(data);
            for (std::size_t a = 0; a < code.codeBits(); ++a) {
                for (std::size_t b = a + 1; b < code.codeBits(); ++b) {
                    BitVector d = data;
                    BitVector c = goldenCheck;
                    flipCodeBit(d, c, a);
                    flipCodeBit(d, c, b);
                    BitVector corruptD = d;
                    BitVector corruptC = c;
                    SecdedCode::Decoded r = code.decode(d, c);
                    ASSERT_EQ(r.status, EccStatus::Uncorrectable)
                        << bits << "-bit code, flipped " << a << ","
                        << b;
                    // Never touches the word: no miscorrection that
                    // would turn a detectable error into a third flip.
                    EXPECT_EQ(d, corruptD);
                    EXPECT_EQ(c, corruptC);
                }
            }
        }
    }
}

TEST(Secded, ExhaustiveDataContentForTheEightBitCode)
{
    // All 256 words x all 13 single positions, plus all 78 pairs.
    SecdedCode code(8);
    for (unsigned value = 0; value < 256; ++value) {
        BitVector data = wordFrom(8, value);
        BitVector goldenCheck = code.checkBitsFor(data);
        for (std::size_t pos = 0; pos < code.codeBits(); ++pos) {
            BitVector d = data;
            BitVector c = goldenCheck;
            flipCodeBit(d, c, pos);
            SecdedCode::Decoded r = code.decode(d, c);
            ASSERT_EQ(r.status, EccStatus::Corrected);
            ASSERT_EQ(d, data);
        }
        for (std::size_t a = 0; a < code.codeBits(); ++a) {
            for (std::size_t b = a + 1; b < code.codeBits(); ++b) {
                BitVector d = data;
                BitVector c = goldenCheck;
                flipCodeBit(d, c, a);
                flipCodeBit(d, c, b);
                ASSERT_EQ(code.decode(d, c).status,
                          EccStatus::Uncorrectable);
            }
        }
    }
}

TEST(Secded, LineRoundTripAndPerWordCorrection)
{
    LineSecded line(512, 64);
    Rng rng(0x11e5ecd);
    BitVector stored(512);
    for (std::size_t i = 0; i < 512; ++i)
        stored.set(i, rng.nextBool());
    BitVector check = line.encodeCheck(stored);

    // Clean round trip.
    {
        BitVector d = stored;
        BitVector c = check;
        LineSecded::Result r = line.correct(d, c);
        EXPECT_EQ(r.status(), EccStatus::Clean);
        EXPECT_EQ(d, stored);
    }

    // One flip in every word: eight independent corrections.
    {
        BitVector d = stored;
        BitVector c = check;
        for (std::size_t w = 0; w < line.words(); ++w) {
            std::size_t bit = w * 64 + (rng.next() % 64);
            d.set(bit, !d.get(bit));
        }
        LineSecded::Result r = line.correct(d, c);
        EXPECT_EQ(r.correctedWords, 8u);
        EXPECT_EQ(r.uncorrectableWords, 0u);
        EXPECT_EQ(d, stored);
    }

    // A double flip confined to one word poisons only that word.
    {
        BitVector d = stored;
        BitVector c = check;
        d.set(3 * 64 + 5, !d.get(3 * 64 + 5));
        d.set(3 * 64 + 41, !d.get(3 * 64 + 41));
        d.set(6 * 64 + 7, !d.get(6 * 64 + 7)); // single, elsewhere
        LineSecded::Result r = line.correct(d, c);
        EXPECT_EQ(r.correctedWords, 1u);
        EXPECT_EQ(r.uncorrectableWords, 1u);
        EXPECT_EQ(r.status(), EccStatus::Uncorrectable);
        // The singly-hit word is restored.
        EXPECT_EQ(d.slice(6 * 64, 64), stored.slice(6 * 64, 64));
    }
}

} // namespace
} // namespace coruscant
