/**
 * @file
 * Request-service subsystem: workload generation, TR-gang batching,
 * bounded-queue admission, and the sharded engine's bit-for-bit
 * thread-count invariance.
 */

#include <gtest/gtest.h>

#include <vector>

#include "service/batcher.hpp"
#include "service/request.hpp"
#include "service/service_engine.hpp"
#include "service/workload.hpp"
#include "util/logging.hpp"

namespace coruscant {
namespace {

// ---------------------------------------------------------------- mix

TEST(WorkloadMix, ParsesAndNormalizes)
{
    auto m = WorkloadMix::parse("read:1,bulk:3");
    EXPECT_DOUBLE_EQ(
        m.weight[static_cast<std::size_t>(RequestClass::Read)], 1.0);
    EXPECT_DOUBLE_EQ(
        m.weight[static_cast<std::size_t>(RequestClass::BulkBitwise)],
        3.0);
    EXPECT_DOUBLE_EQ(
        m.weight[static_cast<std::size_t>(RequestClass::MacTile)], 0.0);
    EXPECT_EQ(m.describe(), "read:0.25,bulk:0.75");
}

TEST(WorkloadMix, RejectsMalformedInput)
{
    EXPECT_THROW(WorkloadMix::parse("frobnicate:1"), FatalError);
    EXPECT_THROW(WorkloadMix::parse("read"), FatalError);
    EXPECT_THROW(WorkloadMix::parse("read:x"), FatalError);
    EXPECT_THROW(WorkloadMix::parse("read:-1"), FatalError);
    EXPECT_THROW(WorkloadMix::parse(""), FatalError);
    EXPECT_THROW(WorkloadMix::parse("read:0"), FatalError);
}

// ---------------------------------------------------------- generator

TEST(WorkloadGenerator, DeterministicPerChannelStreams)
{
    WorkloadConfig cfg;
    cfg.ratePerKcycle = 20;
    cfg.durationCycles = 50000;
    WorkloadGenerator a(cfg, 42, 3), b(cfg, 42, 3), c(cfg, 42, 4);
    ServiceRequest ra, rb, rc;
    bool differs = false;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra.arrival, rb.arrival);
        EXPECT_EQ(ra.cls, rb.cls);
        EXPECT_EQ(ra.bank, rb.bank);
        EXPECT_EQ(ra.size, rb.size);
        if (c.next(rc) &&
            (rc.arrival != ra.arrival || rc.cls != ra.cls))
            differs = true;
    }
    EXPECT_FALSE(b.next(rb));
    EXPECT_TRUE(differs) << "channel streams must be independent";
}

TEST(WorkloadGenerator, PoissonHitsOfferedRate)
{
    WorkloadConfig cfg;
    cfg.ratePerKcycle = 50;
    cfg.durationCycles = 400000;
    WorkloadGenerator gen(cfg, 1, 0);
    ServiceRequest r;
    std::uint64_t n = 0, last = 0;
    while (gen.next(r)) {
        EXPECT_GE(r.arrival, last) << "arrivals must be ordered";
        EXPECT_LT(r.arrival, cfg.durationCycles);
        last = r.arrival;
        ++n;
    }
    double expected = cfg.ratePerKcycle * cfg.durationCycles / 1000.0;
    EXPECT_NEAR(static_cast<double>(n), expected, 0.05 * expected);
}

TEST(WorkloadGenerator, BurstyConservesLongRunRate)
{
    WorkloadConfig cfg;
    cfg.process = ArrivalProcess::Bursty;
    cfg.ratePerKcycle = 40;
    cfg.durationCycles = 500000;
    WorkloadGenerator gen(cfg, 9, 0);
    ServiceRequest r;
    std::uint64_t n = 0, last = 0;
    while (gen.next(r)) {
        EXPECT_GE(r.arrival, last);
        last = r.arrival;
        ++n;
    }
    double expected = cfg.ratePerKcycle * cfg.durationCycles / 1000.0;
    EXPECT_NEAR(static_cast<double>(n), expected, 0.15 * expected);
}

TEST(WorkloadGenerator, SizesRespectClassDistributions)
{
    WorkloadConfig cfg;
    cfg.mix = WorkloadMix::uniform();
    cfg.ratePerKcycle = 50;
    cfg.durationCycles = 100000;
    cfg.maxAddOperands = 5;
    WorkloadGenerator gen(cfg, 3, 1);
    ServiceRequest r;
    while (gen.next(r)) {
        switch (r.cls) {
        case RequestClass::MultiOpAdd:
            EXPECT_GE(r.size, 2u);
            EXPECT_LE(r.size, 5u);
            break;
        case RequestClass::BulkBitwise:
        case RequestClass::Reduce:
            EXPECT_EQ(r.size, 1u);
            break;
        default:
            EXPECT_GE(r.size, 1u);
            EXPECT_LE(r.size, 4u);
        }
        EXPECT_LT(r.bank, cfg.banks);
        EXPECT_LT(r.dbcGroup, cfg.dbcGroups);
    }
}

// ------------------------------------------------------------ batcher

ServiceRequest
bulkAt(std::uint64_t arrival, std::uint32_t bank, std::uint32_t group)
{
    ServiceRequest r;
    r.cls = RequestClass::BulkBitwise;
    r.arrival = arrival;
    r.bank = bank;
    r.dbcGroup = group;
    return r;
}

TEST(GangBatcher, FullGangClosesImmediately)
{
    GangBatcher b(3, 1000);
    EXPECT_TRUE(b.add(bulkAt(10, 0, 0)).members.empty());
    EXPECT_TRUE(b.add(bulkAt(11, 0, 0)).members.empty());
    TrGang g = b.add(bulkAt(12, 0, 0));
    ASSERT_EQ(g.members.size(), 3u);
    EXPECT_EQ(g.readyAt, 12u);
    EXPECT_EQ(b.pending(), 0u);
    EXPECT_EQ(b.stats().fullCloses, 1u);
}

TEST(GangBatcher, WindowFlushRespectsDeadline)
{
    GangBatcher b(7, 100);
    b.add(bulkAt(50, 2, 1));
    b.add(bulkAt(80, 2, 1));
    EXPECT_EQ(b.nextDeadline(), 150u);
    EXPECT_TRUE(b.flushDue(149).empty());
    auto due = b.flushDue(150);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].members.size(), 2u);
    EXPECT_EQ(due[0].readyAt, 150u);
    EXPECT_EQ(b.stats().windowCloses, 1u);
}

TEST(GangBatcher, OnlySameAlignmentCoalesces)
{
    GangBatcher b(7, 100);
    b.add(bulkAt(0, 0, 0));
    b.add(bulkAt(1, 0, 1)); // same bank, other DBC group
    b.add(bulkAt(2, 1, 0)); // other bank
    EXPECT_EQ(b.pending(), 3u);
    auto all = b.flushAll(500);
    ASSERT_EQ(all.size(), 3u);
    for (const auto &g : all)
        EXPECT_EQ(g.members.size(), 1u);
}

TEST(GangBatcher, RejectsNonBulkRequests)
{
    GangBatcher b(7, 100);
    ServiceRequest r;
    r.cls = RequestClass::Read;
    EXPECT_THROW(b.add(r), FatalError);
}

// ------------------------------------------------------------- engine

ServiceConfig
smallConfig()
{
    ServiceConfig cfg;
    cfg.channels = 4;
    cfg.threads = 1;
    cfg.banksPerChannel = 8;
    cfg.durationCycles = 20000;
    cfg.ratePerKcycle = 40;
    cfg.seed = 42;
    return cfg;
}

void
expectIdentical(const ServiceStats &a, const ServiceStats &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dispatchedUnits, b.dispatchedUnits);
    EXPECT_EQ(a.batch.gangs, b.batch.gangs);
    EXPECT_EQ(a.batch.gangedRequests, b.batch.gangedRequests);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_EQ(a.latency.max(), b.latency.max());
    EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
    for (double q : {0.5, 0.95, 0.99, 0.999})
        EXPECT_EQ(a.latency.percentile(q), b.latency.percentile(q));
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
    EXPECT_DOUBLE_EQ(a.busUtilization, b.busUtilization);
    EXPECT_DOUBLE_EQ(a.bankUtilization, b.bankUtilization);
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
        EXPECT_EQ(a.perClass[c].generated, b.perClass[c].generated);
        EXPECT_EQ(a.perClass[c].rejected, b.perClass[c].rejected);
        EXPECT_EQ(a.perClass[c].completed, b.perClass[c].completed);
        EXPECT_EQ(a.perClass[c].maxQueueDepth,
                  b.perClass[c].maxQueueDepth);
        EXPECT_EQ(a.perClass[c].latency.p99(),
                  b.perClass[c].latency.p99());
    }
}

TEST(ServiceEngine, ThreadShardingIsBitIdentical)
{
    // The acceptance property: for a fixed seed the sharded run must
    // match the single-threaded run exactly, for every process type.
    for (auto process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty,
          ArrivalProcess::ClosedLoop}) {
        ServiceConfig cfg = smallConfig();
        cfg.process = process;
        cfg.threads = 1;
        ServiceStats single = runService(cfg);
        for (std::uint32_t threads : {2u, 4u, 8u}) {
            cfg.threads = threads;
            ServiceStats sharded = runService(cfg);
            expectIdentical(single, sharded);
        }
    }
}

TEST(ServiceEngine, RunsAreReproducible)
{
    ServiceConfig cfg = smallConfig();
    expectIdentical(runService(cfg), runService(cfg));
}

TEST(ServiceEngine, CompletesAllAdmittedRequests)
{
    ServiceConfig cfg = smallConfig();
    ServiceStats s = runService(cfg);
    EXPECT_GT(s.generated, 0u);
    EXPECT_EQ(s.admitted, s.completed);
    EXPECT_EQ(s.generated, s.admitted + s.rejected);
    EXPECT_EQ(s.latency.count(), s.completed);
    EXPECT_GT(s.makespan, 0u);
    EXPECT_LE(s.busUtilization, 1.0);
    EXPECT_LE(s.bankUtilization, 1.0);
    std::uint64_t per_class_total = 0;
    for (const auto &pc : s.perClass)
        per_class_total += pc.completed;
    EXPECT_EQ(per_class_total, s.completed);
}

TEST(ServiceEngine, FaultFreeTaxonomyIsCleanOrRejected)
{
    // With the fault pipeline inactive, the outcome taxonomy still
    // closes: every completion is Clean, every drop is Rejected, and
    // the bins sum to the generated count.
    ServiceConfig cfg = smallConfig();
    cfg.queueCapacity = 4;
    cfg.ratePerKcycle = 400; // force backpressure rejections
    ServiceStats s = runService(cfg);
    EXPECT_EQ(s.outcomes[static_cast<std::size_t>(
                  RequestOutcome::Clean)],
              s.completed);
    EXPECT_EQ(s.outcomes[static_cast<std::size_t>(
                  RequestOutcome::Rejected)],
              s.rejected);
    EXPECT_GT(s.rejected, 0u);
    std::uint64_t total = 0;
    for (std::uint64_t n : s.outcomes)
        total += n;
    EXPECT_EQ(total, s.generated);
    EXPECT_EQ(s.outcomeLatency[static_cast<std::size_t>(
                                   RequestOutcome::Clean)]
                  .count(),
              s.completed);
}

TEST(ServiceEngine, UnboundedQueueNeverRejects)
{
    ServiceConfig cfg = smallConfig();
    cfg.queueCapacity = 0;
    cfg.ratePerKcycle = 200;
    ServiceStats s = runService(cfg);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.admitted, s.generated);
}

TEST(ServiceEngine, BackpressureShedsLoadUnderOverload)
{
    ServiceConfig cfg = smallConfig();
    cfg.queueCapacity = 4;
    cfg.ratePerKcycle = 400;
    ServiceStats s = runService(cfg);
    EXPECT_GT(s.rejected, 0u);
    for (const auto &pc : s.perClass)
        EXPECT_LE(pc.maxQueueDepth, cfg.queueCapacity);
}

TEST(ServiceEngine, ClosedLoopBoundsOutstanding)
{
    ServiceConfig cfg = smallConfig();
    cfg.process = ArrivalProcess::ClosedLoop;
    cfg.closedLoopWindow = 4;
    cfg.queueCapacity = 0; // the window is the only bound
    ServiceStats s = runService(cfg);
    EXPECT_GT(s.completed, 0u);
    EXPECT_EQ(s.rejected, 0u);
    for (const auto &pc : s.perClass)
        EXPECT_LE(pc.maxQueueDepth, cfg.closedLoopWindow);
}

TEST(ServiceEngine, GangsNeverExceedTrdOperands)
{
    ServiceConfig cfg = smallConfig();
    cfg.ratePerKcycle = 300;
    cfg.mix = WorkloadMix::parse("bulk:1");
    ServiceStats s = runService(cfg);
    EXPECT_GT(s.batch.gangs, 0u);
    // Members per gang <= TRD - 1 (plus the accumulator row = TRD).
    EXPECT_LE(s.batch.meanGangSize(),
              static_cast<double>(cfg.trd - 1));
    EXPECT_EQ(s.batch.gangedRequests,
              s.perClass[static_cast<std::size_t>(
                             RequestClass::BulkBitwise)]
                  .completed);
}

TEST(ServiceEngine, BatchingSustainsHigherThroughputUnderLoad)
{
    // The tentpole claim at one load point: bulk-heavy overload,
    // batched vs unbatched, same seed.
    ServiceConfig cfg = smallConfig();
    cfg.channels = 2;
    cfg.durationCycles = 30000;
    cfg.ratePerKcycle = 500;
    cfg.mix = WorkloadMix::parse("bulk:0.9,read:0.05,write:0.05");
    cfg.batching = true;
    ServiceStats batched = runService(cfg);
    cfg.batching = false;
    ServiceStats unbatched = runService(cfg);
    EXPECT_GT(batched.throughputPerKcycle(),
              unbatched.throughputPerKcycle());
    EXPECT_LE(batched.latency.p99(), unbatched.latency.p99());
    EXPECT_GT(batched.batch.meanGangSize(), 2.0);
    EXPECT_EQ(unbatched.batch.gangs, 0u);
}

TEST(ServiceEngine, EmptyWorkloadIsWellFormed)
{
    ServiceConfig cfg = smallConfig();
    cfg.durationCycles = 0; // no arrival fits
    ServiceStats s = runService(cfg);
    EXPECT_EQ(s.completed, 0u);
    EXPECT_EQ(s.makespan, 0u);
    EXPECT_EQ(s.throughputPerKcycle(), 0.0);
    (void)s.report(); // must not crash on empty stats
}

TEST(ServiceEngine, RejectsBadConfigs)
{
    ServiceConfig cfg = smallConfig();
    cfg.channels = 0;
    EXPECT_THROW(runService(cfg), FatalError);
    cfg = smallConfig();
    cfg.ratePerKcycle = 0;
    EXPECT_THROW(runService(cfg), FatalError);
    cfg = smallConfig();
    cfg.process = ArrivalProcess::ClosedLoop;
    cfg.closedLoopWindow = 0;
    EXPECT_THROW(runService(cfg), FatalError);
}

} // namespace
} // namespace coruscant
