/**
 * @file
 * Fault-aware serving: live injection under traffic, the per-request
 * outcome taxonomy, DBC health tracking (breaker/retirement/steering),
 * chaos ramps, and the thread-count invariance of all of it.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/fault_service.hpp"
#include "service/service_engine.hpp"
#include "util/logging.hpp"

namespace coruscant {
namespace {

ServiceConfig
faultConfig(GuardPolicy policy, double pshift)
{
    ServiceConfig cfg;
    cfg.channels = 2;
    cfg.threads = 1;
    cfg.banksPerChannel = 8;
    cfg.durationCycles = 30000;
    cfg.ratePerKcycle = 40;
    cfg.seed = 42;
    cfg.faults.policy = policy;
    cfg.faults.shiftFaultRate = pshift;
    return cfg;
}

std::uint64_t
outcome(const ServiceStats &s, RequestOutcome o)
{
    return s.outcomes[static_cast<std::size_t>(o)];
}

/** Every generated request lands in exactly one outcome bin. */
void
expectTaxonomyClosed(const ServiceStats &s)
{
    std::uint64_t total = 0;
    for (std::uint64_t n : s.outcomes)
        total += n;
    EXPECT_EQ(total, s.generated);
    EXPECT_EQ(outcome(s, RequestOutcome::Clean) +
                  outcome(s, RequestOutcome::Corrected) +
                  outcome(s, RequestOutcome::Due) +
                  outcome(s, RequestOutcome::Sdc),
              s.completed);
    EXPECT_EQ(outcome(s, RequestOutcome::Rejected), s.rejected);
    // Per-outcome latency histograms cover exactly the completions.
    std::uint64_t recorded = 0;
    for (const auto &h : s.outcomeLatency)
        recorded += h.count();
    EXPECT_EQ(recorded, s.completed);
    EXPECT_EQ(
        s.outcomeLatency[static_cast<std::size_t>(
                             RequestOutcome::Rejected)]
            .count(),
        0u);
}

// ----------------------------------------------------- configuration

TEST(ServiceFaultConfig, FlatRateAndRampSchedules)
{
    ServiceFaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    cfg.shiftFaultRate = 1e-3;
    EXPECT_TRUE(cfg.enabled());
    EXPECT_DOUBLE_EQ(cfg.rateAt(0), 1e-3);
    EXPECT_DOUBLE_EQ(cfg.rateAt(1u << 30), 1e-3);

    cfg.ramp = {{0, 1e-4}, {1000, 1e-3}, {2000, 1e-4}};
    EXPECT_DOUBLE_EQ(cfg.rateAt(0), 1e-4);
    EXPECT_DOUBLE_EQ(cfg.rateAt(999), 1e-4);
    EXPECT_DOUBLE_EQ(cfg.rateAt(1000), 1e-3);
    EXPECT_DOUBLE_EQ(cfg.rateAt(1999), 1e-3);
    EXPECT_DOUBLE_EQ(cfg.rateAt(5000), 1e-4);
}

TEST(ServiceFaultConfig, ChaosRampStormsAndRecovers)
{
    auto ramp = ServiceFaultConfig::chaosRamp(1e-3, 100000);
    ASSERT_GE(ramp.size(), 3u);
    ServiceFaultConfig cfg;
    cfg.ramp = ramp;
    EXPECT_TRUE(cfg.enabled());
    EXPECT_DOUBLE_EQ(cfg.rateAt(0), 1e-3);
    // Mid-run storm: strictly above base somewhere inside the run.
    EXPECT_GT(cfg.rateAt(50000), 1e-3);
    // Recovered by the final quarter.
    EXPECT_DOUBLE_EQ(cfg.rateAt(99999), 1e-3);
    EXPECT_THROW(ServiceFaultConfig::chaosRamp(0.0, 1000), FatalError);
}

TEST(GuardServiceCosts, MeasuredThroughRealPipeline)
{
    GuardServiceCosts c = GuardServiceCosts::measure();
    // A clean check costs guard TRs; a correction adds fix pulses on
    // top; reset and retirement (migration) touch every row, so they
    // are at least as heavy again.
    EXPECT_GT(c.checkCycles, 0u);
    EXPECT_GT(c.correctCycles, c.checkCycles);
    EXPECT_GT(c.resetCycles, c.correctCycles);
    EXPECT_GE(c.retireCycles, c.resetCycles);
    EXPECT_GT(c.checkEnergyPj, 0.0);
    EXPECT_GT(c.correctEnergyPj, c.checkEnergyPj);
    EXPECT_GT(c.retireEnergyPj, 0.0);
}

// ------------------------------------------------------ health tracker

TEST(DbcHealthTracker, BreakerOpensRetiresThenDies)
{
    ServiceFaultConfig cfg;
    cfg.breakerThreshold = 2;
    cfg.breakerCooldownCycles = 100;
    cfg.healthWindowCycles = 1000;
    cfg.tripsToRetire = 2;
    cfg.sparesPerChannel = 1;
    DbcHealthTracker t(cfg, 1, 2);

    EXPECT_TRUE(t.available(0, 0, 0));
    auto a1 = t.recordError(0, 0, 10, false);
    EXPECT_FALSE(a1.breakerOpened); // one error, threshold is two
    auto a2 = t.recordError(0, 0, 20, false);
    EXPECT_TRUE(a2.breakerOpened);
    EXPECT_FALSE(a2.retired);
    EXPECT_FALSE(t.available(0, 0, 50)); // breaker open
    EXPECT_TRUE(t.available(0, 0, 120)); // cooled down
    EXPECT_EQ(t.breakerTrips(), 1u);

    // Second trip retires onto the only spare.
    t.recordError(0, 0, 200, false);
    auto a3 = t.recordError(0, 0, 210, false);
    EXPECT_TRUE(a3.breakerOpened);
    EXPECT_TRUE(a3.retired);
    EXPECT_FALSE(a3.died);
    EXPECT_EQ(t.retiredGroups(), 1u);
    EXPECT_EQ(t.sparesLeft(), 0u);

    // The fresh group wears out again: no spare left, so it dies.
    t.recordError(0, 0, 1500, false);
    t.recordError(0, 0, 1510, false);
    t.recordError(0, 0, 1600, false);
    auto a4 = t.recordError(0, 0, 1610, false);
    EXPECT_TRUE(a4.died);
    EXPECT_EQ(t.deadGroups(), 1u);
    EXPECT_DOUBLE_EQ(t.capacityLossFraction(), 0.5);
    EXPECT_FALSE(t.available(0, 0, 1u << 20));
}

TEST(DbcHealthTracker, DueTripsImmediatelyAndWindowPrunes)
{
    ServiceFaultConfig cfg;
    cfg.breakerThreshold = 3;
    cfg.healthWindowCycles = 100;
    DbcHealthTracker t(cfg, 1, 1);
    EXPECT_TRUE(t.recordError(0, 0, 5, true).breakerOpened);
    // Corrected errors spread wider than the window never accumulate.
    for (std::uint64_t c = 20000; c < 21000; c += 200)
        EXPECT_FALSE(t.recordError(0, 0, c, false).breakerOpened);
    EXPECT_EQ(t.breakerTrips(), 1u);
}

TEST(DbcHealthTracker, SteeringPrefersHomeThenSiblingsThenOtherBanks)
{
    ServiceFaultConfig cfg;
    cfg.breakerThreshold = 1;
    cfg.breakerCooldownCycles = 1000;
    DbcHealthTracker t(cfg, 2, 2);
    std::uint32_t bank = 0, group = 0;
    EXPECT_TRUE(t.steer(bank, group, 0));
    EXPECT_EQ(bank, 0u);
    EXPECT_EQ(group, 0u); // healthy home is kept
    EXPECT_EQ(t.steeredRequests(), 0u);

    t.recordError(0, 0, 10, false); // opens (0,0)
    bank = 0;
    group = 0;
    EXPECT_TRUE(t.steer(bank, group, 20));
    EXPECT_EQ(bank, 0u);
    EXPECT_EQ(group, 1u); // same-bank sibling first
    EXPECT_EQ(t.steeredRequests(), 1u);

    t.recordError(0, 1, 30, false); // opens the sibling too
    bank = 0;
    group = 0;
    EXPECT_TRUE(t.steer(bank, group, 40));
    EXPECT_EQ(bank, 1u); // falls over to the other bank

    t.recordError(1, 0, 50, false);
    t.recordError(1, 1, 60, false);
    bank = 0;
    group = 0;
    EXPECT_FALSE(t.steer(bank, group, 70)); // nothing left
}

// ----------------------------------------------------- engine + faults

TEST(ServiceFaults, FaultFreeRunHasAllCleanTaxonomy)
{
    ServiceConfig cfg = faultConfig(GuardPolicy::PerAccess, 0.0);
    ASSERT_FALSE(cfg.faults.enabled());
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_EQ(outcome(s, RequestOutcome::Clean), s.completed);
    EXPECT_EQ(s.injectedFaults, 0u);
}

TEST(ServiceFaults, PerAccessGuardingLeavesZeroSdc)
{
    ServiceConfig cfg = faultConfig(GuardPolicy::PerAccess, 3e-3);
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.injectedFaults, 0u);
    EXPECT_GT(outcome(s, RequestOutcome::Corrected), 0u);
    EXPECT_EQ(outcome(s, RequestOutcome::Sdc), 0u);
    EXPECT_EQ(outcome(s, RequestOutcome::Due), 0u);
    // Correction latency is folded into the corrected tail: the
    // corrected distribution cannot sit below the clean median.
    const auto &clean = s.outcomeLatency[static_cast<std::size_t>(
        RequestOutcome::Clean)];
    const auto &fixed = s.outcomeLatency[static_cast<std::size_t>(
        RequestOutcome::Corrected)];
    EXPECT_GT(fixed.count(), 0u);
    EXPECT_GT(fixed.max(), 0u);
    EXPECT_GE(clean.count(), fixed.count());
}

TEST(ServiceFaults, UnguardedServingSurfacesSilentCorruption)
{
    ServiceConfig cfg = faultConfig(GuardPolicy::None, 3e-3);
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.injectedFaults, 0u);
    EXPECT_GT(outcome(s, RequestOutcome::Sdc), 0u);
    EXPECT_EQ(outcome(s, RequestOutcome::Corrected), 0u);
    EXPECT_EQ(s.guardRetries, 0u);
}

TEST(ServiceFaults, ScrubBoundsStickyExposure)
{
    ServiceConfig unguarded = faultConfig(GuardPolicy::None, 3e-3);
    ServiceConfig scrubbed =
        faultConfig(GuardPolicy::PeriodicScrub, 3e-3);
    scrubbed.faults.scrubIntervalCycles = 2048;
    ServiceStats u = runService(unguarded);
    ServiceStats s = runService(scrubbed);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.maintenanceUnits, 0u);
    // Scrub clears accumulated misalignment between sweeps, so the
    // sticky-exposure SDC count drops strictly below unguarded.
    EXPECT_LT(outcome(s, RequestOutcome::Sdc),
              outcome(u, RequestOutcome::Sdc));
}

TEST(ServiceFaults, BreakerRetirementAndSteeringUnderPressure)
{
    ServiceConfig cfg = faultConfig(GuardPolicy::PerCpim, 2e-2);
    cfg.faults.breakerThreshold = 2;
    cfg.faults.breakerCooldownCycles = 2000;
    cfg.faults.tripsToRetire = 2;
    cfg.faults.sparesPerChannel = 1;
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.breakerTrips, 0u);
    EXPECT_GT(s.steeredRequests, 0u);
    EXPECT_GT(s.retiredGroups, 0u);
    EXPECT_GT(s.maintenanceUnits, 0u); // migrations rode the bus
}

TEST(ServiceFaults, CapacityExhaustionYieldsTypedRejections)
{
    // One bank, one group, no spares: once the only group dies, every
    // later arrival is a typed capacity rejection, not a crash.
    ServiceConfig cfg = faultConfig(GuardPolicy::PerCpim, 5e-2);
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    cfg.dbcGroupsPerBank = 1;
    cfg.faults.breakerThreshold = 1;
    cfg.faults.breakerCooldownCycles = 500;
    cfg.faults.tripsToRetire = 1;
    cfg.faults.sparesPerChannel = 0;
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.deadGroups, 0u);
    EXPECT_GT(s.capacityRejections, 0u);
    EXPECT_GT(outcome(s, RequestOutcome::Rejected), 0u);
    EXPECT_GT(s.capacityLossFraction, 0.0);
    EXPECT_LE(s.capacityLossFraction, 1.0);
}

TEST(ServiceFaults, ChaosRunIsThreadCountInvariant)
{
    ServiceConfig cfg = faultConfig(GuardPolicy::PerAccess, 0.0);
    cfg.channels = 4;
    cfg.faults.ramp =
        ServiceFaultConfig::chaosRamp(1e-3, cfg.durationCycles);
    cfg.collectMetrics = true;
    cfg.threads = 1;
    ServiceStats single = runService(cfg);
    EXPECT_GT(single.injectedFaults, 0u);
    for (std::uint32_t threads : {2u, 4u}) {
        cfg.threads = threads;
        ServiceStats sharded = runService(cfg);
        EXPECT_EQ(single.makespan, sharded.makespan);
        EXPECT_EQ(single.injectedFaults, sharded.injectedFaults);
        EXPECT_EQ(single.guardRetries, sharded.guardRetries);
        EXPECT_EQ(single.breakerTrips, sharded.breakerTrips);
        EXPECT_EQ(single.retiredGroups, sharded.retiredGroups);
        EXPECT_EQ(single.deadGroups, sharded.deadGroups);
        EXPECT_EQ(single.steeredRequests, sharded.steeredRequests);
        EXPECT_EQ(single.capacityRejections,
                  sharded.capacityRejections);
        EXPECT_EQ(single.maintenanceUnits, sharded.maintenanceUnits);
        EXPECT_DOUBLE_EQ(single.capacityLossFraction,
                         sharded.capacityLossFraction);
        for (std::size_t i = 0; i < kRequestOutcomes; ++i) {
            EXPECT_EQ(single.outcomes[i], sharded.outcomes[i]) << i;
            EXPECT_EQ(single.outcomeLatency[i].count(),
                      sharded.outcomeLatency[i].count())
                << i;
            EXPECT_EQ(single.outcomeLatency[i].p99(),
                      sharded.outcomeLatency[i].p99())
                << i;
        }
        EXPECT_EQ(single.metrics.toJson(), sharded.metrics.toJson());
    }
}

TEST(ServiceFaults, FaultRunsAreReproducible)
{
    ServiceConfig cfg = faultConfig(GuardPolicy::PerCpim, 3e-3);
    ServiceStats a = runService(cfg);
    ServiceStats b = runService(cfg);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.injectedFaults, b.injectedFaults);
    for (std::size_t i = 0; i < kRequestOutcomes; ++i)
        EXPECT_EQ(a.outcomes[i], b.outcomes[i]) << i;
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

TEST(ServiceFaults, OutcomeHistogramsMergeOrderIndependently)
{
    // The merge path the sharded engine relies on: per-outcome
    // histograms accumulated per channel then merged element-wise must
    // not care which channel merges first.
    std::vector<std::uint64_t> va = {3, 70, 70, 512, 9000};
    std::vector<std::uint64_t> vb = {1, 70, 400, 100000};
    LatencyHistogram a, b;
    for (auto v : va)
        a.record(v);
    for (auto v : vb)
        b.record(v);
    LatencyHistogram ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.count(), ba.count());
    EXPECT_EQ(ab.min(), ba.min());
    EXPECT_EQ(ab.max(), ba.max());
    EXPECT_DOUBLE_EQ(ab.mean(), ba.mean());
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(ab.percentile(q), ba.percentile(q));
}

/** Data-fault serving config: transient flips at @p pdata under @p ecc. */
ServiceConfig
dataFaultConfig(double pdata, EccMode ecc, std::size_t nmr = 1)
{
    ServiceConfig cfg = faultConfig(GuardPolicy::PerAccess, 0.0);
    cfg.faults.dataFaultRate = pdata;
    cfg.faults.ecc = ecc;
    cfg.faults.pimNmr = nmr;
    return cfg;
}

TEST(ServiceFaults, SecdedServingHoldsSdcAtZero)
{
    ServiceConfig cfg = dataFaultConfig(1e-5, EccMode::Secded, 3);
    ASSERT_TRUE(cfg.faults.dataFaultsEnabled());
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.dataFaultsInjected, 0u);
    EXPECT_GT(s.eccCorrections, 0u);
    EXPECT_EQ(outcome(s, RequestOutcome::Sdc), 0u);
    EXPECT_GT(outcome(s, RequestOutcome::Corrected), 0u);
}

TEST(ServiceFaults, UnprotectedDataFaultsSurfaceAsSilentCorruption)
{
    // Same fault pressure, no check lanes: the identical flip stream
    // lands as silent corruption and nothing corrects or flags.
    ServiceConfig cfg = dataFaultConfig(1e-5, EccMode::None);
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.dataFaultsInjected, 0u);
    EXPECT_EQ(s.eccCorrections, 0u);
    EXPECT_EQ(s.eccDetectedUncorrectable, 0u);
    EXPECT_GT(outcome(s, RequestOutcome::Sdc), 0u);
}

TEST(ServiceFaults, EccDueEscalatesIntoHealthTracking)
{
    // Hot enough that some words take two flips, with the retry
    // ladder disabled so a first-sample DUE is terminal: flagged
    // (never silent) and fed to the same breaker machinery as
    // alignment DUEs.
    ServiceConfig cfg = dataFaultConfig(3e-4, EccMode::Secded, 3);
    cfg.faults.maxRetries = 0;
    cfg.faults.breakerThreshold = 2;
    cfg.faults.breakerCooldownCycles = 2000;
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.eccDetectedUncorrectable, 0u);
    EXPECT_GT(outcome(s, RequestOutcome::Due), 0u);
    EXPECT_EQ(outcome(s, RequestOutcome::Sdc), 0u);
    EXPECT_GT(s.breakerTrips, 0u);
}

TEST(ServiceFaults, RetentionScrubServingStaysCleanUnderSecded)
{
    ServiceConfig cfg = dataFaultConfig(0.0, EccMode::Secded);
    cfg.faults.retentionRatePerCycle = 1e-8;
    cfg.faults.scrubIntervalCycles = 2048;
    ServiceStats s = runService(cfg);
    expectTaxonomyClosed(s);
    EXPECT_GT(s.dataFaultsInjected, 0u);
    EXPECT_GT(s.eccCorrections, 0u);
    EXPECT_EQ(outcome(s, RequestOutcome::Sdc), 0u);
    // The ECC sweep runs as maintenance work on the serving timeline.
    EXPECT_GT(s.maintenanceUnits, 0u);
}

TEST(ServiceFaults, EccCountersSurfaceInMetricsRegistry)
{
    ServiceConfig cfg = dataFaultConfig(1e-4, EccMode::Secded, 3);
    cfg.collectMetrics = true;
    ServiceStats s = runService(cfg);
    ASSERT_GT(s.dataFaultsInjected, 0u);
    std::uint64_t faults = 0, fixes = 0, dues = 0;
    for (std::uint32_t ch = 0; ch < cfg.channels; ++ch) {
        const obs::ComponentMetrics *ecc = s.metrics.find(
            "channel" + std::to_string(ch) + "/ecc");
        ASSERT_NE(ecc, nullptr) << "channel " << ch;
        faults += ecc->get(obs::Counter::DataFaultsInjected);
        fixes += ecc->get(obs::Counter::EccCorrections);
        dues += ecc->get(obs::Counter::EccDetectedUncorrectable);
    }
    // The registry view reconciles exactly with the run totals.
    EXPECT_EQ(faults, s.dataFaultsInjected);
    EXPECT_EQ(fixes, s.eccCorrections);
    EXPECT_EQ(dues, s.eccDetectedUncorrectable);
}

TEST(ServiceFaults, EccRunIsThreadCountInvariant)
{
    ServiceConfig cfg = dataFaultConfig(1e-4, EccMode::Secded, 3);
    cfg.channels = 4;
    cfg.faults.retentionRatePerCycle = 1e-9;
    cfg.collectMetrics = true;
    cfg.threads = 1;
    ServiceStats single = runService(cfg);
    EXPECT_GT(single.dataFaultsInjected, 0u);
    for (std::uint32_t threads : {2u, 4u}) {
        cfg.threads = threads;
        ServiceStats sharded = runService(cfg);
        EXPECT_EQ(single.makespan, sharded.makespan);
        EXPECT_EQ(single.dataFaultsInjected,
                  sharded.dataFaultsInjected);
        EXPECT_EQ(single.eccCorrections, sharded.eccCorrections);
        EXPECT_EQ(single.eccDetectedUncorrectable,
                  sharded.eccDetectedUncorrectable);
        for (std::size_t i = 0; i < kRequestOutcomes; ++i)
            EXPECT_EQ(single.outcomes[i], sharded.outcomes[i]) << i;
        EXPECT_EQ(single.metrics.toJson(), sharded.metrics.toJson());
    }
}

TEST(ServiceFaults, OutcomeNamesAreStable)
{
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Clean), "clean");
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Corrected),
                 "corrected");
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Due), "due");
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Sdc), "sdc");
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Rejected),
                 "rejected");
}

} // namespace
} // namespace coruscant
