/**
 * @file
 * Shifting-fault injection: the ShiftFaultModel sampler and its wiring
 * into the nanowire / DBC shift paths.
 */

#include <gtest/gtest.h>

#include "dwm/alignment_guard.hpp"
#include "dwm/dbc.hpp"
#include "dwm/nanowire.hpp"
#include "dwm/shift_fault.hpp"

namespace coruscant {
namespace {

DeviceParams
params(std::size_t trd = 7, std::size_t wires = 8)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

TEST(ShiftFaultModel, DisabledModelNeverFires)
{
    ShiftFaultModel model; // default: probability 0
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(model.sample(), ShiftOutcome::Normal);
    EXPECT_EQ(model.injectedFaults(), 0u);
}

TEST(ShiftFaultModel, DeterministicForFixedSeed)
{
    ShiftFaultModel a(0.1, 42), b(0.1, 42);
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(a.sample(), b.sample()) << "sample " << i;
    EXPECT_EQ(a.injectedFaults(), b.injectedFaults());
    EXPECT_EQ(a.overShifts(), b.overShifts());
    EXPECT_EQ(a.underShifts(), b.underShifts());
}

TEST(ShiftFaultModel, RatesTrackConfiguration)
{
    const int n = 20000;
    ShiftFaultModel model(0.1, 7, 0.75);
    for (int i = 0; i < n; ++i)
        model.sample();
    double rate = static_cast<double>(model.injectedFaults()) / n;
    EXPECT_NEAR(rate, 0.1, 0.02);
    double over = static_cast<double>(model.overShifts()) /
                  static_cast<double>(model.injectedFaults());
    EXPECT_NEAR(over, 0.75, 0.05);
}

TEST(ShiftFaultModel, CertainOverShiftMisalignsCluster)
{
    // With every pulse over-shifting, one tracked shift leaves the
    // cluster one position off its bookkeeping — which the guard sees.
    DomainBlockCluster dbc(params());
    AlignmentGuard g(params());
    g.install(dbc);
    dbc.alignWindowStart(3);
    ASSERT_EQ(g.check(dbc), AlignmentStatus::Aligned);
    ShiftFaultModel always(1.0, 1, /*over_fraction=*/1.0);
    dbc.attachShiftFaults(&always);
    dbc.shiftLeft();
    EXPECT_EQ(always.injectedFaults(), 1u);
    EXPECT_NE(g.check(dbc), AlignmentStatus::Aligned);
    dbc.attachShiftFaults(nullptr);
    EXPECT_TRUE(g.checkAndCorrect(dbc));
}

TEST(ShiftFaultModel, CertainUnderShiftMisalignsCluster)
{
    DomainBlockCluster dbc(params());
    AlignmentGuard g(params());
    g.install(dbc);
    dbc.alignWindowStart(3);
    ShiftFaultModel always(1.0, 1, /*over_fraction=*/0.0);
    dbc.attachShiftFaults(&always);
    dbc.shiftRight();
    EXPECT_EQ(always.underShifts(), 1u);
    EXPECT_NE(g.check(dbc), AlignmentStatus::Aligned);
    dbc.attachShiftFaults(nullptr);
    EXPECT_TRUE(g.checkAndCorrect(dbc));
}

TEST(ShiftFaultModel, NanowireShiftsSampleTheModel)
{
    DeviceParams p = params();
    Nanowire wire(p);
    for (std::size_t r = 0; r < p.domainsPerWire; ++r)
        wire.pokeRow(r, r % 2 == 0);
    ShiftFaultModel always(1.0, 3, 1.0);
    wire.attachShiftFaults(&always);
    wire.shiftLeft();
    EXPECT_EQ(always.injectedFaults(), 1u);
}

TEST(ShiftFaultModel, InjectedFaultMovesFrameWithoutBookkeeping)
{
    DomainBlockCluster dbc(params());
    for (std::size_t r = 0; r < dbc.rows(); ++r)
        dbc.pokeRow(r, BitVector::fromUint64(dbc.width(), r));
    int offset_before = dbc.shiftOffset();
    dbc.injectShiftFault(true);
    EXPECT_EQ(dbc.shiftOffset(), offset_before)
        << "a shifting fault must not update the controller state";
    // Frame-relative reads now return the neighbouring row's data.
    EXPECT_EQ(dbc.peekRow(3).toUint64(), 4u);
}

} // namespace
} // namespace coruscant
