/**
 * @file
 * LatencyHistogram: bucketing accuracy, quantile bounds, and the
 * merge identity the sharded service engine depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace coruscant {
namespace {

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.p999(), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact)
{
    // Below 2^kLinearBits every value has its own bucket, so
    // percentiles are exact order statistics.
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 64; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 64u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 63u);
    EXPECT_EQ(h.percentile(0.5), 31u);  // ceil(.5*64)=32nd value
    EXPECT_EQ(h.percentile(1.0), 63u);
    EXPECT_DOUBLE_EQ(h.mean(), 31.5);
}

TEST(LatencyHistogram, SingleSampleReportsItself)
{
    // Regression: percentile() used to return the bucket's *upper*
    // edge, so one sample of 64 (the first two-wide bucket) reported
    // 65.  Results are now clamped to the observed [min, max].
    LatencyHistogram h;
    h.record(64);
    EXPECT_EQ(h.min(), 64u);
    EXPECT_EQ(h.max(), 64u);
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(h.percentile(q), 64u) << "q=" << q;

    // Same at a coarser bucket: one sample, exact answer.
    LatencyHistogram big;
    big.record(1000000);
    EXPECT_EQ(big.percentile(0.5), 1000000u);
    EXPECT_EQ(big.percentile(0.999), 1000000u);
}

TEST(LatencyHistogram, ClampNeverUndershootsMin)
{
    // All mass in high buckets: low quantiles clamp up to min, never
    // below the smallest recorded value.
    LatencyHistogram h;
    h.record(1000);
    h.record(1000000);
    EXPECT_GE(h.percentile(0.0), 1000u);
    EXPECT_LE(h.percentile(1.0), 1000000u);
}

TEST(LatencyHistogram, QuantilesWithinRelativeErrorBound)
{
    // Log bucketing guarantees the reported quantile is an upper
    // bound within one sub-bucket (~1/32) of the true order statistic.
    Rng rng(7);
    std::vector<std::uint64_t> values;
    LatencyHistogram h;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t v = rng.nextBelow(1000000);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
        std::size_t idx = static_cast<std::size_t>(
            std::max<double>(0.0, std::ceil(q * values.size()) - 1));
        double truth = static_cast<double>(values[idx]);
        double got = static_cast<double>(h.percentile(q));
        EXPECT_GE(got, truth) << "q=" << q;
        EXPECT_LE(got, truth * (1.0 + 1.0 / 32 + 1e-9) + 1.0)
            << "q=" << q;
    }
    EXPECT_EQ(h.percentile(1.0), values.back());
}

TEST(LatencyHistogram, MergeMatchesSingleHistogram)
{
    Rng rng(13);
    LatencyHistogram whole, a, b, c;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.next() >> 40;
        whole.record(v);
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    }
    // Merge in an arbitrary grouping: results must be identical.
    LatencyHistogram merged;
    merged.merge(c);
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.max(), whole.max());
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(merged.percentile(q), whole.percentile(q)) << q;
}

TEST(LatencyHistogram, WeightedRecord)
{
    LatencyHistogram h, w;
    for (int i = 0; i < 10; ++i)
        h.record(100);
    w.record(100, 10);
    EXPECT_EQ(h.count(), w.count());
    EXPECT_EQ(h.percentile(0.5), w.percentile(0.5));
    EXPECT_DOUBLE_EQ(h.mean(), w.mean());
    w.record(100, 0); // no-op
    EXPECT_EQ(w.count(), 10u);
}

TEST(LatencyHistogram, QuantilesAreMonotone)
{
    Rng rng(99);
    LatencyHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(1 + rng.nextBelow(100000));
    std::uint64_t last = 0;
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
        std::uint64_t v = h.percentile(q);
        EXPECT_GE(v, last);
        last = v;
    }
    EXPECT_EQ(last, h.max());
}

TEST(LatencyHistogram, HugeValuesDoNotOverflow)
{
    LatencyHistogram h;
    h.record(~0ull);
    h.record(1ull << 62);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), ~0ull);
    EXPECT_EQ(h.percentile(1.0), ~0ull);
    EXPECT_GE(h.percentile(0.25), 1ull << 62);
}

} // namespace
} // namespace coruscant
