/**
 * @file
 * Per-step-voted addition (paper Sec. III-F trade-off).
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
smallParams(std::size_t trd, std::size_t wires)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

TEST(StepVotedAdd, CorrectWithoutFaults)
{
    CoruscantUnit unit(smallParams(7, 32));
    Rng rng(3);
    for (int iter = 0; iter < 10; ++iter) {
        std::vector<BitVector> ops;
        std::vector<std::uint64_t> expect(4, 0);
        for (int i = 0; i < 5; ++i) {
            BitVector row(32);
            for (std::size_t l = 0; l < 4; ++l) {
                std::uint64_t v = rng.next() & 0xFF;
                row.insertUint64(l * 8, 8, v);
                expect[l] += v;
            }
            ops.push_back(std::move(row));
        }
        auto sum = unit.addStepVoted(ops, 8, 3);
        for (std::size_t l = 0; l < 4; ++l)
            EXPECT_EQ(sum.sliceUint64(l * 8, 8), expect[l] & 0xFF);
    }
}

TEST(StepVotedAdd, CostIsNTrsPlusVotePerBit)
{
    CoruscantUnit unit(smallParams(7, 8));
    std::vector<BitVector> ops(5, BitVector::fromUint64(8, 9));
    unit.resetCosts();
    unit.addStepVoted(ops, 8, 3);
    // Setup 10 + per bit: 3 TR + 1 vote + 1 write = 5 -> 10 + 40.
    EXPECT_EQ(unit.ledger().cycles(), 50u);
    unit.resetCosts();
    unit.add(ops, 8, 8);
    EXPECT_EQ(unit.ledger().cycles(), 26u); // plain add for contrast
}

TEST(StepVotedAdd, SuppressesCarryChainErrors)
{
    // At an elevated fault rate, per-step voting must beat both the
    // unprotected add and end-of-operation TMR (the paper's "nearly
    // two orders of magnitude lower fault rate" direction).
    const double p_fault = 5e-3;
    const int trials = 4000;
    DeviceParams p = smallParams(7, 8);
    Rng data(77);

    CoruscantUnit plain(p, p_fault, 1);
    CoruscantUnit end_tmr(p, p_fault, 2);
    CoruscantUnit step(p, p_fault, 3);
    int plain_err = 0, end_err = 0, step_err = 0;
    for (int t = 0; t < trials; ++t) {
        std::uint64_t a = data.next() & 0xFF, b = data.next() & 0xFF;
        std::uint64_t expect = (a + b) & 0xFF;
        std::vector<BitVector> ops = {BitVector::fromUint64(8, a),
                                      BitVector::fromUint64(8, b)};
        if (plain.add(ops, 8, 8).toUint64() != expect)
            ++plain_err;
        auto voted = end_tmr.nmrExecute(
            3, [&] { return end_tmr.add(ops, 8, 8); });
        if (voted.toUint64() != expect)
            ++end_err;
        if (step.addStepVoted(ops, 8, 3).toUint64() != expect)
            ++step_err;
    }
    EXPECT_GT(plain_err, 50);
    EXPECT_LT(end_err, plain_err / 5);
    EXPECT_LE(step_err, end_err);
}

TEST(StepVotedAdd, WorksAtTrd3)
{
    CoruscantUnit unit(smallParams(3, 16));
    std::vector<BitVector> ops = {BitVector::fromUint64(16, 200),
                                  BitVector::fromUint64(16, 100)};
    EXPECT_EQ(unit.addStepVoted(ops, 16, 3).toUint64(), 300u);
}

TEST(StepVotedAdd, RejectsEvenN)
{
    CoruscantUnit unit(smallParams(7, 8));
    std::vector<BitVector> ops(2, BitVector(8));
    EXPECT_THROW(unit.addStepVoted(ops, 8, 4), FatalError);
}

} // namespace
} // namespace coruscant
