/**
 * @file
 * DDR timing helpers and in-memory copy-path charging.
 */

#include <gtest/gtest.h>

#include "arch/dwm_memory.hpp"
#include "arch/timing.hpp"

namespace coruscant {
namespace {

TEST(DdrTiming, PaperTableII)
{
    auto dram = DdrTiming::dram();
    EXPECT_EQ(dram.tRas, 20u);
    EXPECT_EQ(dram.tRcd, 8u);
    EXPECT_EQ(dram.tRp, 8u);
    EXPECT_EQ(dram.tCas, 8u);
    EXPECT_EQ(dram.tWr, 8u);
    EXPECT_FALSE(dram.shiftBased);
    auto dwm = DdrTiming::dwm();
    EXPECT_EQ(dwm.tRas, 9u);
    EXPECT_EQ(dwm.tRcd, 4u);
    EXPECT_TRUE(dwm.shiftBased);
}

TEST(DdrTiming, DwmReplacesPrechargeWithShifts)
{
    auto dwm = DdrTiming::dwm();
    // S shows up cycle for cycle; DRAM pays fixed tRP instead.
    EXPECT_EQ(dwm.readCycles(0), 8u);
    EXPECT_EQ(dwm.readCycles(10), 18u);
    auto dram = DdrTiming::dram();
    EXPECT_EQ(dram.readCycles(0), dram.readCycles(25));
}

TEST(DdrTiming, BusBurst)
{
    BusConfig bus;
    EXPECT_EQ(bus.lineBurstCycles(), 4u); // 64 B at 16 B/cycle
}

TEST(CopyPath, IntraSubarrayCopyAvoidsTheLink)
{
    DwmMainMemory mem;
    // Two rows of the same DBC (same bank/subarray): addresses differ
    // only in the row field.
    auto loc = mem.addressMap().decode(0x1000);
    auto dst = loc;
    dst.row = loc.row + 1;
    std::uint64_t src_addr = mem.addressMap().encode(loc);
    std::uint64_t dst_addr = mem.addressMap().encode(dst);
    BitVector line(512);
    line.set(7, true);
    mem.writeLine(src_addr, line);
    mem.resetCosts();
    mem.copyLine(src_addr, dst_addr);
    EXPECT_EQ(mem.ledger().byCategory().count("interlink"), 0u);
    EXPECT_EQ(mem.readLine(dst_addr), line);
}

TEST(CopyPath, CrossBankCopyChargesTheLink)
{
    DwmMainMemory mem;
    // Consecutive lines interleave across banks (bank-first).
    BitVector line(512);
    line.set(100, true);
    mem.writeLine(0, line);
    mem.resetCosts();
    mem.copyLine(0, 64); // next line = next bank
    ASSERT_EQ(mem.ledger().byCategory().count("interlink"), 1u);
    BusConfig bus;
    EXPECT_EQ(mem.ledger().byCategory().at("interlink").cycles,
              bus.lineBurstCycles());
    EXPECT_EQ(mem.readLine(64), line);
}

} // namespace
} // namespace coruscant
