/**
 * @file
 * Memory trace generation and trace-driven replay.
 */

#include <gtest/gtest.h>

#include "arch/trace.hpp"

namespace coruscant {
namespace {

TEST(MemoryTrace, Generators)
{
    auto seq = MemoryTrace::sequential(0, 10);
    ASSERT_EQ(seq.size(), 10u);
    EXPECT_EQ(seq.events()[3].addr, 3u * 64);

    auto strided = MemoryTrace::strided(0, 5, 4096);
    EXPECT_EQ(strided.events()[2].addr, 8192u);

    auto rnd = MemoryTrace::random(1 << 20, 100, 7);
    ASSERT_EQ(rnd.size(), 100u);
    for (const auto &e : rnd.events()) {
        EXPECT_LT(e.addr, 1u << 20);
        EXPECT_EQ(e.addr % 64, 0u); // line aligned
    }

    auto rmw = MemoryTrace::readModifyWrite(0, 4);
    ASSERT_EQ(rmw.size(), 8u);
    EXPECT_EQ(rmw.events()[1].type, MemEvent::Type::Store);
}

TEST(TraceReplay, SequentialStreamOverlapsBanks)
{
    DwmMainMemory mem;
    TraceReplayer rep(mem);
    auto res = rep.replay(MemoryTrace::sequential(0, 3200));
    // Bank-first interleave: a sequential stream spreads across all
    // 32 banks, so the makespan is far below the serial time.
    EXPECT_LT(res.makespanCycles, res.serialCycles / 8);
    EXPECT_GT(res.bankUtilization, 0.25);
}

TEST(TraceReplay, SameBankStrideSerializes)
{
    DwmMainMemory mem;
    TraceReplayer rep(mem);
    // Stride of banks*64 hits the same bank every time.
    auto stride = mem.config().banks * 64;
    auto res = rep.replay(MemoryTrace::strided(0, 500, stride));
    // No overlap possible: makespan ~= serial cycles.
    EXPECT_GT(res.makespanCycles, res.serialCycles * 9 / 10);
    EXPECT_LT(res.bankUtilization, 0.1);
}

TEST(TraceReplay, RepeatedRowNeedsNoShifts)
{
    DwmMainMemory mem;
    TraceReplayer rep(mem);
    MemoryTrace t;
    for (int i = 0; i < 100; ++i)
        t.append(MemEvent::Type::Load, 0);
    auto res = rep.replay(t);
    // Only the first access shifts the port into place.
    EXPECT_LT(res.avgShiftPerAccess, 0.2);
}

TEST(TraceReplay, RandomAccessPaysShiftPenalty)
{
    // Row-first placement makes a sequential stream walk DBC rows in
    // order (one shift per access); random access re-aligns the ports
    // almost every time.
    MemoryConfig cfg;
    cfg.interleave = Interleave::RowFirst;
    DwmMainMemory mem_r(cfg);
    TraceReplayer rep_r(mem_r);
    auto rnd = rep_r.replay(MemoryTrace::random(1 << 26, 3000, 3));
    DwmMainMemory mem_s(cfg);
    TraceReplayer rep_s(mem_s);
    auto seq = rep_s.replay(MemoryTrace::sequential(0, 3000));
    EXPECT_GT(rnd.avgShiftPerAccess, 3 * seq.avgShiftPerAccess);
    EXPECT_LT(seq.avgShiftPerAccess, 2.0);
}

TEST(TraceReplay, StoresVisibleAfterReplay)
{
    DwmMainMemory mem;
    TraceReplayer rep(mem);
    BitVector ones(512, true);
    mem.writeLine(128, ones);
    auto t = MemoryTrace::readModifyWrite(128, 1);
    rep.replay(t); // store writes zeros
    EXPECT_EQ(mem.readLine(128).popcount(), 0u);
}

} // namespace
} // namespace coruscant
