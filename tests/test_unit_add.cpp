/**
 * @file
 * CoruscantUnit multi-operand addition against golden arithmetic,
 * including the paper's cycle counts (Table III / Sec. V-B).
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
smallParams(std::size_t trd, std::size_t wires = 64)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

/** Pack one value per lane into a row. */
BitVector
packLanes(std::size_t width, std::size_t block,
          const std::vector<std::uint64_t> &values)
{
    BitVector row(width);
    for (std::size_t i = 0; i < values.size(); ++i)
        row.insertUint64(i * block, block, values[i]);
    return row;
}

struct AddCase
{
    std::size_t trd;
    std::size_t operands;
    std::size_t block;
};

class AddSweep : public ::testing::TestWithParam<AddCase>
{};

TEST_P(AddSweep, LaneSumsModuloBlock)
{
    auto [trd, m, block] = GetParam();
    CoruscantUnit unit(smallParams(trd, 64));
    std::size_t lanes = 64 / block;
    Rng rng(trd * 1000 + m * 10 + block);
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<BitVector> ops;
        std::vector<std::uint64_t> expected(lanes, 0);
        for (std::size_t i = 0; i < m; ++i) {
            std::vector<std::uint64_t> vals;
            for (std::size_t l = 0; l < lanes; ++l) {
                std::uint64_t v = rng.next() &
                                  ((block >= 64) ? ~0ULL
                                                 : ((1ULL << block) - 1));
                vals.push_back(v);
                expected[l] += v;
            }
            ops.push_back(packLanes(64, block, vals));
        }
        auto sum = unit.add(ops, block);
        for (std::size_t l = 0; l < lanes; ++l) {
            std::uint64_t mask =
                block >= 64 ? ~0ULL : ((1ULL << block) - 1);
            EXPECT_EQ(sum.sliceUint64(l * block, block),
                      expected[l] & mask)
                << "lane " << l << " iter " << iter;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    TrdOperandBlockSweep, AddSweep,
    ::testing::Values(AddCase{3, 1, 8}, AddCase{3, 2, 8},
                      AddCase{3, 2, 16}, AddCase{3, 2, 32},
                      AddCase{5, 2, 8}, AddCase{5, 3, 8},
                      AddCase{5, 3, 16}, AddCase{7, 2, 8},
                      AddCase{7, 3, 8}, AddCase{7, 4, 8},
                      AddCase{7, 5, 8}, AddCase{7, 5, 16},
                      AddCase{7, 5, 32}, AddCase{7, 5, 64}),
    [](const ::testing::TestParamInfo<AddCase> &info) {
        return "trd" + std::to_string(info.param.trd) + "_m" +
               std::to_string(info.param.operands) + "_b" +
               std::to_string(info.param.block);
    });

TEST(UnitAdd, ExactSumWithWideBlock)
{
    // Five 8-bit operands in a 16-bit block: no truncation.
    CoruscantUnit unit(smallParams(7, 64));
    std::vector<std::uint64_t> vals = {255, 255, 255, 255, 255};
    std::vector<BitVector> ops;
    for (auto v : vals)
        ops.push_back(packLanes(64, 16, {v, v, v, v}));
    auto sum = unit.add(ops, 16);
    for (std::size_t l = 0; l < 4; ++l)
        EXPECT_EQ(sum.sliceUint64(l * 16, 16), 1275u);
}

TEST(UnitAdd, PaperCycleCountFiveOperandTrd7)
{
    // Paper Sec. V-B: 8-bit five-operand add = 10 setup + 16 = 26.
    CoruscantUnit unit(smallParams(7, 8));
    std::vector<BitVector> ops(5, BitVector::fromUint64(8, 17));
    unit.resetCosts();
    unit.add(ops, 8, 8);
    EXPECT_EQ(unit.ledger().cycles(), 26u);
}

TEST(UnitAdd, PaperCycleCountTwoOperandTrd7)
{
    // Table III: 2-op add at TRD = 7 also costs 26 cycles (padding
    // rows are written like operands).
    CoruscantUnit unit(smallParams(7, 8));
    std::vector<BitVector> ops(2, BitVector::fromUint64(8, 3));
    unit.resetCosts();
    unit.add(ops, 8, 8);
    EXPECT_EQ(unit.ledger().cycles(), 26u);
}

TEST(UnitAdd, PaperCycleCountTwoOperandTrd3)
{
    // Table III: 2-op add at TRD = 3 = 19 cycles (3 setup + 16).
    CoruscantUnit unit(smallParams(3, 8));
    std::vector<BitVector> ops(2, BitVector::fromUint64(8, 3));
    unit.resetCosts();
    unit.add(ops, 8, 8);
    EXPECT_EQ(unit.ledger().cycles(), 19u);
}

TEST(UnitAdd, PaperEnergyTwoOperandTrd3)
{
    CoruscantUnit unit(smallParams(3, 8));
    std::vector<BitVector> ops(2, BitVector::fromUint64(8, 3));
    unit.resetCosts();
    unit.add(ops, 8, 8);
    EXPECT_NEAR(unit.ledger().energyPj(), 10.15, 0.01);
}

TEST(UnitAdd, PaperEnergyFiveOperandTrd7)
{
    CoruscantUnit unit(smallParams(7, 8));
    std::vector<BitVector> ops(5, BitVector::fromUint64(8, 3));
    unit.resetCosts();
    unit.add(ops, 8, 8);
    EXPECT_NEAR(unit.ledger().energyPj(), 22.14, 0.01);
}

TEST(UnitAdd, LanesAreIsolated)
{
    // A carry that overflows lane 0 must not leak into lane 1.
    CoruscantUnit unit(smallParams(7, 16));
    auto a = packLanes(16, 8, {255, 1});
    auto b = packLanes(16, 8, {1, 2});
    auto sum = unit.add({a, b}, 8);
    EXPECT_EQ(sum.sliceUint64(0, 8), 0u); // 256 mod 256
    EXPECT_EQ(sum.sliceUint64(8, 8), 3u);
}

TEST(UnitAdd, SingleOperandIsIdentity)
{
    CoruscantUnit unit(smallParams(7, 32));
    auto a = packLanes(32, 8, {42, 99, 0, 255});
    EXPECT_EQ(unit.add({a}, 8), a);
}

TEST(UnitAdd, RejectsTooManyOperands)
{
    CoruscantUnit unit(smallParams(7, 16));
    std::vector<BitVector> six(6, BitVector(16));
    EXPECT_THROW(unit.add(six, 8), FatalError);
    CoruscantUnit unit3(smallParams(3, 16));
    std::vector<BitVector> three(3, BitVector(16));
    EXPECT_THROW(unit3.add(three, 8), FatalError);
}

TEST(UnitAdd, RejectsRaggedLanes)
{
    CoruscantUnit unit(smallParams(7, 16));
    std::vector<BitVector> ops(2, BitVector(16));
    EXPECT_THROW(unit.add(ops, 5, 16), FatalError); // 16 % 5 != 0
}

} // namespace
} // namespace coruscant
