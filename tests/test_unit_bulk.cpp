/**
 * @file
 * CoruscantUnit bulk-bitwise operations against golden models, swept
 * over operand counts and TRD values.
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
smallParams(std::size_t trd, std::size_t wires = 64)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

/** Golden multi-operand bitwise result. */
BitVector
golden(BulkOp op, const std::vector<BitVector> &ops)
{
    BitVector acc = ops[0];
    for (std::size_t i = 1; i < ops.size(); ++i) {
        switch (op) {
          case BulkOp::And:
          case BulkOp::Nand:
            acc &= ops[i];
            break;
          case BulkOp::Or:
          case BulkOp::Nor:
          case BulkOp::Not:
            acc |= ops[i];
            break;
          case BulkOp::Xor:
          case BulkOp::Xnor:
            acc ^= ops[i];
            break;
          default:
            ADD_FAILURE() << "unsupported";
        }
    }
    if (op == BulkOp::Nand || op == BulkOp::Nor || op == BulkOp::Xnor ||
        op == BulkOp::Not) {
        acc = ~acc;
    }
    return acc;
}

struct BulkCase
{
    std::size_t trd;
    std::size_t operands;
};

class BulkSweep : public ::testing::TestWithParam<BulkCase>
{};

TEST_P(BulkSweep, MatchesGoldenForAllOps)
{
    auto [trd, m] = GetParam();
    CoruscantUnit unit(smallParams(trd));
    Rng rng(trd * 100 + m);
    for (BulkOp op : {BulkOp::And, BulkOp::Nand, BulkOp::Or, BulkOp::Nor,
                      BulkOp::Xor, BulkOp::Xnor}) {
        for (int iter = 0; iter < 10; ++iter) {
            std::vector<BitVector> ops;
            for (std::size_t i = 0; i < m; ++i) {
                BitVector row(unit.width());
                for (std::size_t w = 0; w < row.size(); ++w)
                    row.set(w, rng.nextBool());
                ops.push_back(std::move(row));
            }
            EXPECT_EQ(unit.bulkBitwise(op, ops), golden(op, ops))
                << bulkOpName(op) << " m=" << m << " trd=" << trd;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    OperandAndTrdSweep, BulkSweep,
    ::testing::Values(BulkCase{3, 1}, BulkCase{3, 2}, BulkCase{3, 3},
                      BulkCase{5, 2}, BulkCase{5, 4}, BulkCase{5, 5},
                      BulkCase{7, 2}, BulkCase{7, 3}, BulkCase{7, 5},
                      BulkCase{7, 7}),
    [](const ::testing::TestParamInfo<BulkCase> &info) {
        return "trd" + std::to_string(info.param.trd) + "_m" +
               std::to_string(info.param.operands);
    });

TEST(UnitBulk, NotInvertsSingleOperand)
{
    CoruscantUnit unit(smallParams(7));
    auto a = BitVector::fromUint64(64, 0xDEADBEEFCAFEF00D);
    auto r = unit.bulkBitwise(BulkOp::Not, {a});
    EXPECT_EQ(r, ~a);
}

TEST(UnitBulk, MajRequiresFullWindow)
{
    CoruscantUnit unit(smallParams(7));
    std::vector<BitVector> seven(7, BitVector(64, true));
    EXPECT_EQ(unit.bulkBitwise(BulkOp::Maj, seven).popcount(), 64u);
    std::vector<BitVector> three(3, BitVector(64, true));
    EXPECT_THROW(unit.bulkBitwise(BulkOp::Maj, three), FatalError);
}

TEST(UnitBulk, RejectsTooManyOperands)
{
    CoruscantUnit unit(smallParams(3));
    std::vector<BitVector> four(4, BitVector(64));
    EXPECT_THROW(unit.bulkBitwise(BulkOp::Or, four), FatalError);
}

TEST(UnitBulk, SingleTrRegardlessOfOperandCount)
{
    // The headline claim: a 7-operand AND costs one TR, not six
    // two-operand steps.
    CoruscantUnit unit(smallParams(7));
    std::vector<BitVector> ops(7, BitVector(64, true));
    unit.resetCosts();
    unit.bulkBitwise(BulkOp::And, ops);
    auto &by = unit.ledger().byCategory();
    ASSERT_TRUE(by.count("tr"));
    EXPECT_EQ(by.at("tr").count, 1u);
}

TEST(UnitBulk, WriteBackStoresResult)
{
    CoruscantUnit unit(smallParams(7));
    auto a = BitVector::fromUint64(64, 0xF0F0);
    auto b = BitVector::fromUint64(64, 0xFF00);
    auto r = unit.bulkBitwise(BulkOp::And, {a, b}, 0, true);
    EXPECT_EQ(r.toUint64(), 0xF000u);
    // Result is resident in the left-port row.
    auto p = DeviceParams::coruscantDefault();
    EXPECT_EQ(unit.peekRow(p.leftPortRow()), r);
}

TEST(UnitBulk, CostsScaleWithActiveWires)
{
    CoruscantUnit unit(smallParams(7, 128));
    std::vector<BitVector> ops(2, BitVector(128, true));
    unit.resetCosts();
    unit.bulkBitwise(BulkOp::Or, ops, 16);
    double e16 = unit.ledger().energyPj();
    unit.resetCosts();
    unit.bulkBitwise(BulkOp::Or, ops, 128);
    double e128 = unit.ledger().energyPj();
    EXPECT_NEAR(e128 / e16, 8.0, 1e-9);
}

} // namespace
} // namespace coruscant
