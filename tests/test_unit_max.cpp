/**
 * @file
 * CoruscantUnit max function (paper Sec. IV-B) and ReLU.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
smallParams(std::size_t trd, std::size_t wires = 32)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

BitVector
packLanes(std::size_t width, std::size_t lane_w,
          const std::vector<std::uint64_t> &values)
{
    BitVector row(width);
    for (std::size_t i = 0; i < values.size(); ++i)
        row.insertUint64(i * lane_w, lane_w, values[i]);
    return row;
}

struct MaxCase
{
    std::size_t trd;
    std::size_t candidates;
    bool useTw;
};

class MaxSweep : public ::testing::TestWithParam<MaxCase>
{};

TEST_P(MaxSweep, LanewiseMaximum)
{
    auto [trd, m, use_tw] = GetParam();
    const std::size_t word = 8;
    const std::size_t lanes = 4;
    CoruscantUnit unit(smallParams(trd, word * lanes));
    Rng rng(trd * 13 + m + (use_tw ? 1 : 0));
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<BitVector> cands;
        std::vector<std::uint64_t> expected(lanes, 0);
        for (std::size_t i = 0; i < m; ++i) {
            std::vector<std::uint64_t> vals;
            for (std::size_t l = 0; l < lanes; ++l) {
                std::uint64_t v = rng.next() & 0xFF;
                vals.push_back(v);
                expected[l] = std::max(expected[l], v);
            }
            cands.push_back(packLanes(word * lanes, word, vals));
        }
        auto mx = unit.maxOfRows(cands, word, 0, use_tw);
        for (std::size_t l = 0; l < lanes; ++l)
            EXPECT_EQ(mx.sliceUint64(l * word, word), expected[l])
                << "lane " << l << " iter " << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(
    CandidateSweep, MaxSweep,
    ::testing::Values(MaxCase{7, 2, true}, MaxCase{7, 4, true},
                      MaxCase{7, 7, true}, MaxCase{7, 7, false},
                      MaxCase{5, 5, true}, MaxCase{3, 3, true},
                      MaxCase{3, 2, false}),
    [](const ::testing::TestParamInfo<MaxCase> &info) {
        return "trd" + std::to_string(info.param.trd) + "_m" +
               std::to_string(info.param.candidates) +
               (info.param.useTw ? "_tw" : "_shift");
    });

TEST(UnitMax, PaperExampleFigure8)
{
    // Fig. 8: A=0101, B=1011, C=1010, D=0011 -> max is B=1011.
    CoruscantUnit unit(smallParams(4, 4));
    std::vector<BitVector> cands = {
        BitVector::fromUint64(4, 0b0101), // A
        BitVector::fromUint64(4, 0b1011), // B
        BitVector::fromUint64(4, 0b1010), // C
        BitVector::fromUint64(4, 0b0011), // D
    };
    auto mx = unit.maxOfRows(cands, 4);
    EXPECT_EQ(mx.toUint64(), 0b1011u);
}

TEST(UnitMax, AllZeroCandidates)
{
    CoruscantUnit unit(smallParams(7, 8));
    std::vector<BitVector> cands(7, BitVector(8));
    EXPECT_EQ(unit.maxOfRows(cands, 8).toUint64(), 0u);
}

TEST(UnitMax, DuplicateMaxima)
{
    CoruscantUnit unit(smallParams(7, 8));
    std::vector<BitVector> cands = {
        BitVector::fromUint64(8, 200), BitVector::fromUint64(8, 200),
        BitVector::fromUint64(8, 199)};
    EXPECT_EQ(unit.maxOfRows(cands, 8).toUint64(), 200u);
}

TEST(UnitMax, TwSavesCyclesVersusFullShifts)
{
    // Paper Sec. IV-B: TW with segmented shifting reduces max-function
    // cycles by 28.5% at TRD = 7.
    CoruscantUnit unit(smallParams(7, 8));
    std::vector<BitVector> cands;
    Rng rng(3);
    for (int i = 0; i < 7; ++i)
        cands.push_back(BitVector::fromUint64(8, rng.next() & 0xFF));
    unit.resetCosts();
    unit.maxOfRows(cands, 8, 0, true);
    auto tw_cycles = unit.ledger().cycles();
    unit.resetCosts();
    unit.maxOfRows(cands, 8, 0, false);
    auto shift_cycles = unit.ledger().cycles();
    double saving = 1.0 - static_cast<double>(tw_cycles) /
                              static_cast<double>(shift_cycles);
    EXPECT_GT(saving, 0.20);
    EXPECT_LT(saving, 0.40);
}

TEST(UnitRelu, ZeroesNegativeLanes)
{
    CoruscantUnit unit(smallParams(7, 32));
    // 8-bit two's complement lanes: -3, 100, -128, 0.
    auto row = packLanes(32, 8, {0xFD, 100, 0x80, 0});
    auto out = unit.relu(row, 8);
    EXPECT_EQ(out.sliceUint64(0, 8), 0u);
    EXPECT_EQ(out.sliceUint64(8, 8), 100u);
    EXPECT_EQ(out.sliceUint64(16, 8), 0u);
    EXPECT_EQ(out.sliceUint64(24, 8), 0u);
}

TEST(UnitRelu, CostIsTwoCycles)
{
    CoruscantUnit unit(smallParams(7, 32));
    auto row = packLanes(32, 8, {1, 2, 3, 4});
    unit.resetCosts();
    unit.relu(row, 8);
    EXPECT_EQ(unit.ledger().cycles(), 2u);
}

} // namespace
} // namespace coruscant
