/**
 * @file
 * CoruscantUnit multiplication: both strategies, constant
 * multiplication via CSD, lane packing, and cycle counts.
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
smallParams(std::size_t trd, std::size_t wires = 64)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

BitVector
packLanes(std::size_t width, std::size_t lane_w,
          const std::vector<std::uint64_t> &values)
{
    BitVector row(width);
    for (std::size_t i = 0; i < values.size(); ++i)
        row.insertUint64(i * lane_w, lane_w, values[i]);
    return row;
}

struct MulCase
{
    std::size_t trd;
    std::size_t bits;
    MulStrategy strategy;
};

class MulSweep : public ::testing::TestWithParam<MulCase>
{};

TEST_P(MulSweep, RandomProductsAreExact)
{
    auto [trd, n, strategy] = GetParam();
    std::size_t lane_w = 2 * n;
    std::size_t wires = lane_w * 2; // two lanes
    CoruscantUnit unit(smallParams(trd, wires));
    Rng rng(trd * 77 + n);
    for (int iter = 0; iter < 30; ++iter) {
        std::uint64_t mask = (1ULL << n) - 1;
        std::uint64_t a0 = rng.next() & mask, a1 = rng.next() & mask;
        std::uint64_t b0 = rng.next() & mask, b1 = rng.next() & mask;
        auto a = packLanes(wires, lane_w, {a0, a1});
        auto b = packLanes(wires, lane_w, {b0, b1});
        auto p = unit.multiply(a, b, n, strategy);
        EXPECT_EQ(p.sliceUint64(0, lane_w), a0 * b0)
            << a0 << " * " << b0;
        EXPECT_EQ(p.sliceUint64(lane_w, lane_w), a1 * b1)
            << a1 << " * " << b1;
    }
}

INSTANTIATE_TEST_SUITE_P(
    TrdBitsStrategySweep, MulSweep,
    ::testing::Values(
        MulCase{7, 8, MulStrategy::OptimizedCsa},
        MulCase{7, 8, MulStrategy::Arbitrary},
        MulCase{7, 4, MulStrategy::OptimizedCsa},
        MulCase{7, 16, MulStrategy::OptimizedCsa},
        MulCase{5, 8, MulStrategy::OptimizedCsa},
        MulCase{5, 8, MulStrategy::Arbitrary},
        MulCase{4, 8, MulStrategy::OptimizedCsa},
        MulCase{3, 8, MulStrategy::OptimizedCsa},
        MulCase{3, 8, MulStrategy::Arbitrary},
        MulCase{3, 4, MulStrategy::OptimizedCsa}),
    [](const ::testing::TestParamInfo<MulCase> &info) {
        return "trd" + std::to_string(info.param.trd) + "_n" +
               std::to_string(info.param.bits) +
               (info.param.strategy == MulStrategy::OptimizedCsa
                    ? "_csa"
                    : "_arb");
    });

TEST(UnitMultiply, EdgeValues)
{
    CoruscantUnit unit(smallParams(7, 32));
    for (auto [a, b] : std::vector<std::pair<std::uint64_t,
                                             std::uint64_t>>{
             {0, 0}, {0, 255}, {255, 0}, {1, 255}, {255, 255},
             {128, 2}, {85, 3}}) {
        auto ar = packLanes(32, 16, {a, 0});
        auto br = packLanes(32, 16, {b, 0});
        auto p = unit.multiply(ar, br, 8);
        EXPECT_EQ(p.sliceUint64(0, 16), a * b) << a << " * " << b;
    }
}

TEST(UnitMultiply, CsaCycleCountMatchesPaperTrd7)
{
    // Paper Table III: 8-bit multiply at TRD = 7 = 64 cycles.
    // Breakdown (see unit_multiply.cpp): 17 partial-product cycles,
    // 1 alignment + 4 reduction, 10 + 32 final addition.
    CoruscantUnit unit(smallParams(7, 16));
    auto a = packLanes(16, 16, {200});
    auto b = packLanes(16, 16, {123});
    unit.resetCosts();
    unit.multiply(a, b, 8, MulStrategy::OptimizedCsa, 16);
    EXPECT_EQ(unit.ledger().cycles(), 64u);
}

TEST(UnitMultiply, CsaFasterThanArbitrary)
{
    CoruscantUnit unit(smallParams(7, 16));
    auto a = packLanes(16, 16, {200});
    auto b = packLanes(16, 16, {123});
    unit.resetCosts();
    unit.multiply(a, b, 8, MulStrategy::OptimizedCsa, 16);
    auto csa = unit.ledger().cycles();
    unit.resetCosts();
    unit.multiply(a, b, 8, MulStrategy::Arbitrary, 16);
    auto arb = unit.ledger().cycles();
    EXPECT_LT(csa, arb);
}

TEST(UnitMultiply, Trd3SlowerThanTrd7)
{
    // Paper Table III: 105 vs 64 cycles (1.64x); the emergent model
    // must preserve the ordering and rough magnitude.
    auto run = [](std::size_t trd) {
        CoruscantUnit unit(smallParams(trd, 16));
        auto a = packLanes(16, 16, {200});
        auto b = packLanes(16, 16, {123});
        unit.resetCosts();
        unit.multiply(a, b, 8, MulStrategy::OptimizedCsa, 16);
        return unit.ledger().cycles();
    };
    auto c7 = run(7);
    auto c3 = run(3);
    EXPECT_GT(c3, c7);
    EXPECT_GT(static_cast<double>(c3) / static_cast<double>(c7), 1.2);
}

TEST(UnitMultiply, ConstantPaperExample20061)
{
    // Paper Sec. III-D.1: 20061 * A in two addition steps.
    CoruscantUnit unit(smallParams(7, 64));
    auto a = packLanes(64, 32, {417, 1000});
    auto p = unit.multiplyByConstant(a, 20061, 16);
    EXPECT_EQ(p.sliceUint64(0, 32), 417u * 20061u);
    EXPECT_EQ(p.sliceUint64(32, 32), 1000u * 20061u);
}

TEST(UnitMultiply, ConstantSweep)
{
    CoruscantUnit unit(smallParams(7, 32));
    Rng rng(55);
    for (std::uint64_t c : {0ULL, 1ULL, 2ULL, 3ULL, 7ULL, 15ULL, 16ULL,
                            255ULL, 129ULL, 515ULL}) {
        std::uint64_t a = rng.next() & 0xFF;
        auto ar = packLanes(32, 16, {a, 0});
        auto p = unit.multiplyByConstant(ar, c, 8);
        EXPECT_EQ(p.sliceUint64(0, 16), (a * c) & 0xFFFF)
            << a << " * " << c;
    }
}

TEST(UnitMultiply, ConstantPowerOfTwoNeedsNoAddition)
{
    CoruscantUnit unit(smallParams(7, 16));
    auto a = packLanes(16, 16, {77});
    unit.resetCosts();
    auto p = unit.multiplyByConstant(a, 8, 8, 16);
    EXPECT_EQ(p.sliceUint64(0, 16), 77u * 8u);
    // Shift-only: no TR should have been issued.
    EXPECT_EQ(unit.ledger().byCategory().count("tr"), 0u);
}

TEST(UnitMultiply, ConstantCheaperThanArbitraryForSparseConstants)
{
    CoruscantUnit unit(smallParams(7, 16));
    auto a = packLanes(16, 16, {99});
    unit.resetCosts();
    unit.multiplyByConstant(a, 129, 8, 16); // weight-2 CSD
    auto constant_cycles = unit.ledger().cycles();
    unit.resetCosts();
    auto b = packLanes(16, 16, {129});
    unit.multiply(a, b, 8, MulStrategy::OptimizedCsa, 16);
    auto arbitrary_cycles = unit.ledger().cycles();
    EXPECT_LT(constant_cycles, arbitrary_cycles);
}

TEST(UnitMultiply, RejectsBadLaneConfig)
{
    CoruscantUnit unit(smallParams(7, 16));
    BitVector a(16), b(16);
    EXPECT_THROW(unit.multiply(a, b, 5, MulStrategy::OptimizedCsa, 16),
                 FatalError); // 16 % 10 != 0
    EXPECT_THROW(unit.multiply(a, b, 0), FatalError);
    EXPECT_THROW(unit.multiply(a, b, 33), FatalError);
}

} // namespace
} // namespace coruscant
