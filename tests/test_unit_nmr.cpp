/**
 * @file
 * CoruscantUnit N-modular-redundancy voting (paper Sec. III-F) and
 * fault-injection behaviour.
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
smallParams(std::size_t trd, std::size_t wires = 32)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

BitVector
randomRow(Rng &rng, std::size_t width)
{
    BitVector row(width);
    for (std::size_t w = 0; w < width; ++w)
        row.set(w, rng.nextBool());
    return row;
}

class NmrSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(NmrSweep, MinorityCorruptionIsOutvoted)
{
    std::size_t n = GetParam();
    CoruscantUnit unit(smallParams(7, 32));
    Rng rng(n);
    for (int iter = 0; iter < 20; ++iter) {
        BitVector truth = randomRow(rng, 32);
        std::vector<BitVector> replicas(n, truth);
        // Corrupt a strict minority of replicas at random bits.
        std::size_t bad = (n - 1) / 2;
        for (std::size_t i = 0; i < bad; ++i) {
            std::size_t bit = rng.nextBelow(32);
            replicas[i].set(bit, !replicas[i].get(bit));
        }
        EXPECT_EQ(unit.nmrVote(replicas), truth) << "N = " << n;
    }
}

TEST_P(NmrSweep, MajorityCorruptionWins)
{
    std::size_t n = GetParam();
    CoruscantUnit unit(smallParams(7, 32));
    BitVector truth(32, false);
    std::vector<BitVector> replicas(n, truth);
    std::size_t flips = (n + 1) / 2; // majority faulty at bit 3
    for (std::size_t i = 0; i < flips; ++i)
        replicas[i].set(3, true);
    auto vote = unit.nmrVote(replicas);
    EXPECT_TRUE(vote.get(3)); // the uncorrectable case
    EXPECT_EQ(vote.popcount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllRedundancyLevels, NmrSweep,
                         ::testing::Values(3u, 5u, 7u),
                         [](const ::testing::TestParamInfo<std::size_t> &i) {
                             return "N" + std::to_string(i.param);
                         });

TEST(UnitNmr, WorksAtSmallTrd)
{
    // TRD = 3 supports triple-modular redundancy via the thermometer
    // threshold.
    CoruscantUnit unit(smallParams(3, 16));
    BitVector truth = BitVector::fromUint64(16, 0xA5A5);
    std::vector<BitVector> replicas(3, truth);
    replicas[0].set(0, !truth.get(0));
    EXPECT_EQ(unit.nmrVote(replicas), truth);
    // N = 5 does not fit in a TRD = 3 window.
    std::vector<BitVector> five(5, truth);
    EXPECT_THROW(unit.nmrVote(five), FatalError);
}

TEST(UnitNmr, RejectsEvenN)
{
    CoruscantUnit unit(smallParams(7, 16));
    std::vector<BitVector> four(4, BitVector(16));
    EXPECT_THROW(unit.nmrVote(four), FatalError);
}

TEST(UnitNmr, VoteCostIsConstant)
{
    CoruscantUnit unit(smallParams(7, 16));
    std::vector<BitVector> replicas(3, BitVector(16, true));
    unit.resetCosts();
    unit.nmrVote(replicas);
    auto c3 = unit.ledger().cycles();
    std::vector<BitVector> seven(7, BitVector(16, true));
    unit.resetCosts();
    unit.nmrVote(seven);
    EXPECT_EQ(c3, unit.ledger().cycles());
    EXPECT_EQ(c3, 3u); // align + TR + result write
}

TEST(UnitNmr, NmrExecuteMasksInjectedTrFaults)
{
    // With an artificially high TR fault rate, a single bulk AND is
    // frequently wrong, but TMR over it recovers the correct result
    // most of the time.  (Statistical, with a fixed seed.)
    const double p_fault = 0.02;
    DeviceParams p = smallParams(7, 64);
    auto a = BitVector::fromUint64(64, 0x123456789ABCDEF0ULL);
    auto b = BitVector(64, true);
    BitVector expected = a; // AND with all-ones

    int plain_errors = 0, tmr_errors = 0;
    CoruscantUnit plain(p, p_fault, 11);
    CoruscantUnit tmr(p, p_fault, 12);
    for (int iter = 0; iter < 200; ++iter) {
        if (plain.bulkBitwise(BulkOp::And, {a, b}) != expected)
            ++plain_errors;
        auto voted = tmr.nmrExecute(3, [&] {
            return tmr.bulkBitwise(BulkOp::And, {a, b});
        });
        if (voted != expected)
            ++tmr_errors;
    }
    EXPECT_GT(plain_errors, 0);
    EXPECT_LT(tmr_errors, plain_errors / 4);
}

} // namespace
} // namespace coruscant
