/**
 * @file
 * CoruscantUnit 7->3 / 3->2 carry-save reduction: sum preservation,
 * cost, and lane isolation.
 */

#include <gtest/gtest.h>

#include "core/coruscant_unit.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace coruscant {
namespace {

DeviceParams
smallParams(std::size_t trd, std::size_t wires = 64)
{
    DeviceParams p = DeviceParams::withTrd(trd);
    p.wiresPerDbc = wires;
    return p;
}

BitVector
randomRow(Rng &rng, std::size_t width)
{
    BitVector row(width);
    for (std::size_t w = 0; w < width; ++w)
        row.set(w, rng.nextBool());
    return row;
}

std::uint64_t
laneSum(const std::vector<BitVector> &rows, std::size_t lane,
        std::size_t block)
{
    std::uint64_t s = 0;
    for (const auto &r : rows)
        s += r.sliceUint64(lane * block, block);
    return s;
}

struct ReduceCase
{
    std::size_t trd;
    std::size_t rows;
    std::size_t block;
};

class ReduceSweep : public ::testing::TestWithParam<ReduceCase>
{};

/** Property: sum(inputs) == S + C + C' per lane, modulo the lane. */
TEST_P(ReduceSweep, PreservesLaneSums)
{
    auto [trd, m, block] = GetParam();
    CoruscantUnit unit(smallParams(trd, 64));
    std::size_t lanes = 64 / block;
    std::uint64_t mask = block >= 64 ? ~0ULL : ((1ULL << block) - 1);
    Rng rng(trd * 31 + m * 7 + block);
    for (int iter = 0; iter < 25; ++iter) {
        std::vector<BitVector> rows;
        for (std::size_t i = 0; i < m; ++i)
            rows.push_back(randomRow(rng, 64));
        auto red = unit.reduce(rows, block);
        std::vector<BitVector> outs = {red.sum, red.carry};
        if (red.hasSuperCarry)
            outs.push_back(red.superCarry);
        for (std::size_t l = 0; l < lanes; ++l) {
            EXPECT_EQ(laneSum(outs, l, block) & mask,
                      laneSum(rows, l, block) & mask)
                << "lane " << l << " iter " << iter;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    TrdRowBlockSweep, ReduceSweep,
    ::testing::Values(ReduceCase{3, 2, 8}, ReduceCase{3, 3, 8},
                      ReduceCase{3, 3, 16}, ReduceCase{5, 4, 8},
                      ReduceCase{5, 5, 8}, ReduceCase{7, 4, 8},
                      ReduceCase{7, 6, 8}, ReduceCase{7, 7, 8},
                      ReduceCase{7, 7, 16}, ReduceCase{7, 7, 32}),
    [](const ::testing::TestParamInfo<ReduceCase> &info) {
        return "trd" + std::to_string(info.param.trd) + "_m" +
               std::to_string(info.param.rows) + "_b" +
               std::to_string(info.param.block);
    });

TEST(UnitReduce, PaperFourCycleCost)
{
    // Paper Sec. IV-A: each 7->3 reduction is O(1), 4 cycles.
    CoruscantUnit unit(smallParams(7, 64));
    std::vector<BitVector> rows(7, BitVector(64, true));
    unit.resetCosts();
    unit.reduce(rows, 8);
    EXPECT_EQ(unit.ledger().cycles(), 4u);
}

TEST(UnitReduce, Trd3ReductionIsThreeCycles)
{
    // 3->2 has no super carry: TR + 2 write phases.
    CoruscantUnit unit(smallParams(3, 64));
    std::vector<BitVector> rows(3, BitVector(64, true));
    unit.resetCosts();
    auto red = unit.reduce(rows, 8);
    EXPECT_FALSE(red.hasSuperCarry);
    EXPECT_EQ(unit.ledger().cycles(), 3u);
}

TEST(UnitReduce, SevenOnesRowsGiveSevenPerColumn)
{
    CoruscantUnit unit(smallParams(7, 16));
    std::vector<BitVector> rows(7, BitVector(16, true));
    auto red = unit.reduce(rows, 16);
    // t = 7 everywhere: S = 1, C = 1 (shifted), C' = 1 (shifted 2).
    EXPECT_EQ(red.sum.popcount(), 16u);
    EXPECT_EQ(red.carry.sliceUint64(0, 16), 0xFFFEu);
    EXPECT_EQ(red.superCarry.sliceUint64(0, 16), 0xFFFCu);
}

TEST(UnitReduce, CarriesMaskedAtLaneBoundaries)
{
    CoruscantUnit unit(smallParams(7, 16));
    // Two 8-bit lanes; ones only in the top column of lane 0.
    BitVector row(16);
    row.set(7, true);
    std::vector<BitVector> rows(7, row);
    auto red = unit.reduce(rows, 8);
    // Carry would land on wire 8 (lane 1) and super carry on wire 9:
    // both must be masked.
    EXPECT_EQ(red.carry.popcount(), 0u);
    EXPECT_EQ(red.superCarry.popcount(), 0u);
    EXPECT_TRUE(red.sum.get(7));
}

TEST(UnitReduce, RejectsOversizedBatch)
{
    CoruscantUnit unit(smallParams(7, 16));
    std::vector<BitVector> rows(8, BitVector(16));
    EXPECT_THROW(unit.reduce(rows, 8), FatalError);
}

TEST(UnitReduce, SmallTrdLimitedToThreeRows)
{
    // Without a super carry (TRD < 5), a four-row batch would lose
    // the weight-4 bit whenever a column holds four ones.
    CoruscantUnit unit4(smallParams(4, 16));
    std::vector<BitVector> four(4, BitVector(16, true));
    EXPECT_THROW(unit4.reduce(four, 8), FatalError);
    std::vector<BitVector> three(3, BitVector(16, true));
    auto red = unit4.reduce(three, 8);
    EXPECT_FALSE(red.hasSuperCarry);
    // All-ones columns: t = 3 -> S = 1, C = 1.
    EXPECT_EQ(red.sum.popcount(), 16u);
}

} // namespace
} // namespace coruscant
